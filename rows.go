package divlaws

import (
	"context"
	"fmt"

	"divlaws/internal/exec"
	"divlaws/internal/relation"
	"divlaws/internal/spill"
	"divlaws/internal/value"
)

// Rows is a streaming cursor over a query result, wrapping the
// compiled iterator pipeline. The idiom matches database/sql:
//
//	rows, err := db.Query(ctx, text)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var s string
//	    if err := rows.Scan(&s); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Tuples are produced lazily: pipelined operators (the merge-group
// division of §5.1.1 in particular) compute each quotient tuple only
// when Next asks for it. Rows is not safe for concurrent use; Close
// is idempotent and safe mid-stream.
type Rows struct {
	it      exec.Iterator
	ctx     context.Context
	cancel  context.CancelFunc
	cols    []string
	stats   *exec.Stats
	spill   *spill.Tracker
	ordered bool

	cur    relation.Tuple
	err    error
	closed bool
	done   bool
}

// Next advances to the next result tuple, reporting whether one is
// available. It returns false at end of stream, after Close, when
// the pipeline errors, or when the query's context is cancelled; use
// Err to tell exhaustion from failure.
func (r *Rows) Next() bool {
	if r.closed || r.done {
		return false
	}
	if err := r.ctx.Err(); err != nil {
		r.err = err
		r.release()
		return false
	}
	t, ok, err := r.it.Next()
	if err != nil {
		r.err = err
		r.release()
		return false
	}
	if !ok {
		// Exhausted: release pipeline resources eagerly; Close is
		// still the caller's responsibility but becomes a no-op.
		r.release()
		return false
	}
	r.cur = t
	return true
}

// release tears the pipeline down without marking the cursor closed,
// so protocol errors (Scan after exhaustion) stay distinguishable
// from Scan after Close.
func (r *Rows) release() {
	if r.done {
		return
	}
	r.done = true
	r.cur = nil
	r.cancel()
	if cerr := r.it.Close(); cerr != nil && r.err == nil {
		r.err = cerr
	}
	// The pipeline is down; close the budget tracker last so its
	// temp-file directory outlives every spill run the plan held.
	// Counters stay readable after Close for Stats.
	r.spill.Close()
}

// Scan copies the current tuple into dest, one pointer per result
// column: *string, *int64, *int, *float64, *bool, or *any. Scan
// without a preceding successful Next, after Close, or with the
// wrong arity or destination type errors.
func (r *Rows) Scan(dest ...any) error {
	if r.closed {
		return fmt.Errorf("divlaws: Scan after Close")
	}
	if r.cur == nil {
		return fmt.Errorf("divlaws: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("divlaws: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := scanValue(r.cur[i], d); err != nil {
			return fmt.Errorf("divlaws: Scan column %q: %w", r.cols[i], err)
		}
	}
	return nil
}

// scanValue converts one engine value into a Go destination pointer.
func scanValue(v value.Value, dest any) error {
	switch d := dest.(type) {
	case *any:
		*d = v.Native()
		return nil
	case *string:
		if v.Kind() != value.KindString {
			return fmt.Errorf("cannot scan %s into *string", v.Kind())
		}
		*d = v.AsString()
		return nil
	case *int64:
		if v.Kind() != value.KindInt {
			return fmt.Errorf("cannot scan %s into *int64", v.Kind())
		}
		*d = v.AsInt()
		return nil
	case *int:
		if v.Kind() != value.KindInt {
			return fmt.Errorf("cannot scan %s into *int", v.Kind())
		}
		*d = int(v.AsInt())
		return nil
	case *float64:
		if !v.IsNumeric() {
			return fmt.Errorf("cannot scan %s into *float64", v.Kind())
		}
		*d = v.AsFloat()
		return nil
	case *bool:
		if v.Kind() != value.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v.Kind())
		}
		*d = v.AsBool()
		return nil
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
}

// Columns returns the result column names in output order.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Ordered reports whether the stream carries a physical ordering
// guarantee: the statement had an ORDER BY, so the plan's outermost
// operators are Sort or TopK and Next delivers tuples in exactly the
// requested key order (ties broken by the engine's canonical tuple
// order, deterministically — including across parallel exchanges,
// where per-partition top-k results are k-way merged back into the
// global order). When Ordered is false, tuple order is
// implementation-defined and consumers that need one must sort.
func (r *Rows) Ordered() bool { return r.ordered }

// Err returns the first error encountered while streaming — a
// pipeline failure or the query context's cancellation error. It
// stays nil after a clean exhaustion or an early Close.
func (r *Rows) Err() error { return r.err }

// Close tears the pipeline down, cancelling the query's context so
// any parallel workers still running stop promptly. It is idempotent
// and safe to call mid-stream; the error (if any) from releasing the
// pipeline is reported once.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	wasDone := r.done
	prevErr := r.err
	r.release()
	if !wasDone && r.err != prevErr {
		return r.err
	}
	return nil
}

// Stats returns a point-in-time snapshot of the pipeline's
// per-operator tuple counts and, when the query ran under a memory
// budget, its spill activity. It is safe to call while the query is
// still streaming and after Close.
func (r *Rows) Stats() QueryStats {
	qs := QueryStats{Emitted: r.stats.Snapshot()}
	if r.spill != nil {
		s := r.spill.Snapshot()
		qs.Spill = SpillStats{
			Limit:        s.Limit,
			PeakBytes:    s.Peak,
			SpilledBytes: s.Spilled,
			Runs:         s.Runs,
			Partitions:   s.Partitions,
		}
	}
	return qs
}

// QueryStats is a snapshot of per-operator tuple counts, the public
// re-export of the engine's exec.Stats collector: labels name the
// operators by plan position ("root/hashdivide", "root.0/scan(r1)",
// "root/paralleldivide/part3", ...), values count tuples emitted.
// Being a snapshot, it is immune to the read-after-parallel-run
// races that direct map access would risk.
type QueryStats struct {
	Emitted map[string]int64
	// Spill reports the query's out-of-core activity; the zero value
	// when the query ran without a memory budget (WithMemoryLimit).
	Spill SpillStats
}

// SpillStats is the memory-budget ledger of one query: how much state
// the blocking operators held at peak, and how much overflowed to
// temp-file runs.
type SpillStats struct {
	// Limit is the budget the query ran under, in bytes.
	Limit int64
	// PeakBytes is the high-water mark of live charged state.
	PeakBytes int64
	// SpilledBytes counts bytes written to spill runs.
	SpilledBytes int64
	// Runs counts spill run files created.
	Runs int64
	// Partitions counts grace-hash partitioning rounds, including
	// recursive re-partitionings of oversized partitions.
	Partitions int64
}

// Get returns the count for one operator label.
func (s QueryStats) Get(label string) int64 { return s.Emitted[label] }

// Total returns the total number of tuples moved by all operators,
// the engine's measure of intermediate-result volume.
func (s QueryStats) Total() int64 {
	var t int64
	for _, n := range s.Emitted {
		t += n
	}
	return t
}
