// LIMIT and early-exit tests over the public API: the pushdown that
// cancels parallel division workers mid-stream, and the
// goroutine-hygiene checks for every way a streaming query can end.
package divlaws

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"divlaws/internal/datagen"
)

// waitGoroutines polls until the goroutine count settles back to
// baseline, failing after a deadline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// partTotal sums the per-partition exchange counters of a stats
// snapshot.
func partTotal(s QueryStats) int64 {
	var total int64
	for label, n := range s.Emitted {
		if strings.Contains(label, "/part") {
			total += n
		}
	}
	return total
}

func TestQueryLimit(t *testing.T) {
	db := openSuppliers()
	for _, tc := range []struct {
		text string
		want int
	}{
		{apiQ1 + " LIMIT 0", 0},
		{apiQ1 + " LIMIT 1", 1},
		{apiQ1 + " LIMIT 3", 3},
		{apiQ1 + " LIMIT 100", len(q1Rows)},
	} {
		rows, err := db.Query(context.Background(), tc.text)
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		got := collect(t, rows)
		if len(got) != tc.want {
			t.Errorf("%q: %d rows, want %d", tc.text, len(got), tc.want)
		}
		// Every limited row must be a real quotient row.
		for _, r := range got {
			found := false
			for _, w := range q1Rows {
				if r == w {
					found = true
				}
			}
			if !found {
				t.Errorf("%q: row %q not in the full quotient", tc.text, r)
			}
		}
	}
}

// TestLimitOneCancelsParallelWorkers is the end-to-end early-exit
// proof over the public API: SELECT … LIMIT 1 over a parallel
// division stops all workers after one row — the per-partition Stats
// stay far below the full quotient, instead of every partition
// running to completion.
func TestLimitOneCancelsParallelWorkers(t *testing.T) {
	// The quotient must dwarf the exchange's batch granularity
	// (parallel.EmitBatchSize tuples per handoff), so the workload is
	// larger than openLarge's.
	supplies, parts := datagen.SuppliersParts{
		Suppliers: 3000, Parts: 40, Colors: 4, AvgSupplied: 20, Seed: 7,
	}.Generate()
	// WithMemoryLimit(-1) pins the partitioned exchange even when the
	// environment forces a tiny spill budget; the per-partition stats
	// this test asserts on only exist on that path.
	full := Open(WithWorkers(4), WithParallelThreshold(1), WithExchangeBuffer(1), WithMemoryLimit(-1))
	full.MustRegister("supplies", MustNewRelation(supplies.Schema().Attrs(), supplies.Rows()))
	full.MustRegister("parts", MustNewRelation(parts.Schema().Attrs(), parts.Rows()))

	// Full quotient size and its partition totals, as the baseline.
	rows, err := full.Query(context.Background(), apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	fullRows := 0
	for rows.Next() {
		fullRows++
	}
	fullParts := partTotal(rows.Stats())
	rows.Close()
	if fullRows < 1000 || fullParts != int64(fullRows) {
		t.Fatalf("fixture: %d rows, %d partition emissions — need a large fully-streamed quotient", fullRows, fullParts)
	}

	rows, err = full.Query(context.Background(), apiQ1+" LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("LIMIT 1 returned %d rows", n)
	}
	if got := partTotal(rows.Stats()); got >= int64(fullRows)/2 {
		t.Errorf("workers emitted %d of %d quotient tuples despite LIMIT 1", got, fullRows)
	}
}

// TestRowsCloseMidStreamReleasesWorkers checks the public teardown
// paths leave no goroutines behind: Rows.Close mid-stream and
// context cancellation mid-stream over a parallel division.
func TestRowsCloseMidStreamReleasesWorkers(t *testing.T) {
	db := openLarge(t, WithWorkers(4), WithParallelThreshold(1), WithExchangeBuffer(2))

	t.Run("CloseMidStream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		rows, err := db.Query(context.Background(), apiQ1)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no first row, err %v", rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("CancelMidStream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := db.Query(ctx, apiQ1)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no first row, err %v", rows.Err())
		}
		cancel()
		for rows.Next() {
		}
		rows.Close()
		waitGoroutines(t, baseline)
	})

	t.Run("LimitExhaustion", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		rows, err := db.Query(context.Background(), apiQ1+" LIMIT 1")
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})
}
