package divlaws

import (
	"context"
	"fmt"
	"sync/atomic"

	"divlaws/internal/sql"
)

// Stmt is a prepared statement: the SQL text is parsed once, and
// each Query call resolves the positional ? placeholders against its
// arguments at bind time — the parsed AST is never mutated, so a
// Stmt is safe for concurrent use, including a Close racing Query.
//
// Because binding happens per call, each execution re-plans against
// the catalog's current contents: a table re-registered between two
// Query calls is picked up, exactly as with DB.Query.
type Stmt struct {
	db    *DB
	text  string
	query atomic.Pointer[sql.Query]
}

// NumInput returns the number of ? placeholders in the statement,
// or 0 after Close.
func (s *Stmt) NumInput() int {
	q := s.query.Load()
	if q == nil {
		return 0
	}
	return q.Params
}

// Text returns the statement's SQL text.
func (s *Stmt) Text() string { return s.text }

// Query binds args to the statement's placeholders, plans, and
// starts execution, returning a streaming cursor; see DB.Query for
// the execution and cancellation contract.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	q := s.query.Load()
	if q == nil {
		return nil, fmt.Errorf("divlaws: Query on closed statement")
	}
	return s.db.queryParsed(ctx, q, args)
}

// Close releases the statement. Further Query calls error; Close is
// idempotent.
func (s *Stmt) Close() error {
	s.query.Store(nil)
	return nil
}
