// Physical ordering tests over the public API: ORDER BY streams in
// key order through Rows (no presentation-layer re-sorting), and
// ORDER BY + LIMIT over a parallel division runs as a per-partition
// top-k with bounded worker emission.
package divlaws

import (
	"context"
	"sort"
	"strings"
	"testing"

	"divlaws/internal/datagen"
)

// drainOrdered scans the first column of every row as int64.
func drainOrdered(t *testing.T, rows *Rows) []int64 {
	t.Helper()
	defer rows.Close()
	var out []int64
	for rows.Next() {
		var v int64
		var rest any
		cols := rows.Columns()
		ptrs := []any{&v}
		for i := 1; i < len(cols); i++ {
			ptrs = append(ptrs, &rest)
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// openDividePair registers a generated divide workload large enough
// to parallelize.
func openDividePair(opts ...Option) *DB {
	r1, r2 := datagen.DividePair{
		Groups: 3000, GroupSize: 4, DivisorSize: 4,
		Domain: 40, HitRate: 0.9, Seed: 5,
	}.Generate()
	db := Open(opts...)
	db.MustRegister("r1", MustNewRelation(r1.Schema().Attrs(), r1.Rows()))
	db.MustRegister("r2", MustNewRelation(r2.Schema().Attrs(), r2.Rows()))
	return db
}

func TestQueryOrderByStreamsInOrder(t *testing.T) {
	db := openDividePair(WithWorkers(4), WithParallelThreshold(1))
	rows, err := db.Query(context.Background(),
		"SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b ORDER BY a DESC")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Ordered() {
		t.Fatal("ORDER BY result must report Ordered")
	}
	got := drainOrdered(t, rows)
	if len(got) == 0 {
		t.Fatal("empty quotient")
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] > got[j] }) {
		head := got
		if len(head) > 10 {
			head = head[:10]
		}
		t.Fatalf("stream not descending: %v…", head)
	}

	// The same query without ORDER BY reports unordered.
	rows, err = db.Query(context.Background(), "SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Ordered() {
		t.Fatal("plain query must not report Ordered")
	}
	rows.Close()
}

// TestQueryOrderByLimitTopKOverParallel is the acceptance check:
// ORDER BY + LIMIT k over a parallel division streams the global
// top k in order, the Explain report shows the TopK pushdown, and
// the per-partition stats stay bounded by k.
func TestQueryOrderByLimitTopKOverParallel(t *testing.T) {
	const k = 7
	// WithMemoryLimit(-1) pins the partitioned exchange even when the
	// environment forces a tiny spill budget: the per-partition emission
	// bound asserted below is a property of that path.
	db := openDividePair(WithWorkers(4), WithParallelThreshold(1), WithMemoryLimit(-1))
	const q = "SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b ORDER BY a LIMIT 7"

	// Reference: the full quotient, sorted ascending.
	full, err := db.Query(context.Background(), "SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b")
	if err != nil {
		t.Fatal(err)
	}
	want := drainOrdered(t, full)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(want) <= k {
		t.Fatalf("fixture quotient too small: %d rows", len(want))
	}
	want = want[:k]

	ex, err := db.Explain(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Report, "TopK[k=7;") || !strings.Contains(ex.Report, "top-k: per-partition heap(k=7)") {
		t.Fatalf("Explain missing the TopK pushdown:\n%s", ex.Report)
	}

	rows, err := db.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Ordered() {
		t.Fatal("top-k result must report Ordered")
	}
	got := drainOrdered(t, rows)
	if len(got) != k {
		t.Fatalf("%d rows, want %d", len(got), k)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d (got %v, want %v)", i, got[i], want[i], got, want)
		}
	}

	// Bounded worker emission: every partition contributed at most k
	// tuples to the exchange.
	var parts int
	for label, n := range rows.Stats().Emitted {
		if !strings.Contains(label, "/part") {
			continue
		}
		parts++
		if n > k {
			t.Errorf("partition %s emitted %d tuples, bound is %d", label, n, k)
		}
	}
	if parts < 2 {
		t.Fatalf("query did not run as a parallel top-k (%d partitions)", parts)
	}
}
