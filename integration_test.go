// Integration tests spanning the full stack: SQL front end →
// law-based optimizer → physical execution engine, checked against
// the reference interpreter; figure regeneration; and parallel
// operators under load.
package divlaws

import (
	"context"
	"strings"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/division"
	"divlaws/internal/exec"
	"divlaws/internal/figures"
	"divlaws/internal/fim"
	"divlaws/internal/optimizer"
	"divlaws/internal/parallel"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/scenarios"
	"divlaws/internal/schema"
	"divlaws/internal/sql"
	"divlaws/internal/value"
)

// newSuppliersDB builds a deterministic mid-sized database.
func newSuppliersDB(t *testing.T) *sql.DB {
	t.Helper()
	supplies, parts := datagen.SuppliersParts{
		Suppliers: 40, Parts: 24, Colors: 4, AvgSupplied: 10, Seed: 99,
	}.Generate()
	db := sql.NewDB()
	db.Register("supplies", supplies)
	db.Register("parts", parts)
	return db
}

func TestSQLThroughOptimizerAndEngine(t *testing.T) {
	db := newSuppliersDB(t)
	queries := []string{
		`SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#`,
		`SELECT s# FROM supplies AS s DIVIDE BY (
            SELECT p# FROM parts WHERE color = 'color0') AS p ON s.p# = p.p#`,
		`SELECT s.s#, p.color FROM supplies AS s, parts AS p
         WHERE s.p# = p.p# AND p.color <> 'color1'`,
		`SELECT color, count(p#) AS n FROM parts GROUP BY color HAVING count(p#) >= 2`,
	}
	for _, q := range queries {
		node, err := db.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		reference := plan.Eval(node)

		// Optimizer must preserve semantics.
		res := optimizer.Optimize(node, optimizer.Options{AllowDataDependent: true})
		if got := plan.Eval(res.Plan); !got.EquivalentTo(reference) {
			t.Fatalf("optimizer changed %q:\n%v\nvs\n%v", q, got, reference)
		}

		// Physical engine must agree with the interpreter, on both
		// the raw and the optimized plan.
		for _, n := range []plan.Node{node, res.Plan} {
			got, err := exec.Run(context.Background(), exec.Compile(n, nil))
			if err != nil {
				t.Fatalf("exec %q: %v", q, err)
			}
			if !got.EquivalentTo(reference) {
				t.Fatalf("engine diverged for %q", q)
			}
		}
	}
}

func TestQ1EqualsQ3OnGeneratedData(t *testing.T) {
	if testing.Short() {
		t.Skip("correlated NOT EXISTS is slow by design")
	}
	supplies, parts := datagen.SuppliersParts{
		Suppliers: 10, Parts: 8, Colors: 2, AvgSupplied: 5, Seed: 3,
	}.Generate()
	db := sql.NewDB()
	db.Register("supplies", supplies)
	db.Register("parts", parts)
	q1, err := db.Query(`SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#`)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := db.Query(`SELECT DISTINCT s#, color
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = p1.color AND NOT EXISTS (
    SELECT * FROM supplies AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`)
	if err != nil {
		t.Fatal(err)
	}
	if !q1.EquivalentTo(q3) {
		t.Fatalf("Q1 and Q3 disagree:\n%v\nvs\n%v", q1, q3)
	}
}

func TestEveryScenarioThroughEngine(t *testing.T) {
	// Every law scenario's LHS and RHS must agree when run on the
	// physical engine, not just the interpreter.
	for _, s := range scenarios.All() {
		lhs := s.Build(400, 2)
		rhs := s.MustApply(lhs)
		want := plan.Eval(lhs)
		for side, n := range map[string]plan.Node{"lhs": lhs, "rhs": rhs} {
			got, err := exec.Run(context.Background(), exec.Compile(n, nil))
			if err != nil {
				t.Fatalf("%s %s: %v", s.Name, side, err)
			}
			if !got.EquivalentTo(want) {
				t.Fatalf("%s %s diverges on the engine", s.Name, side)
			}
		}
	}
}

func TestFiguresStable(t *testing.T) {
	// Figure rendering must be deterministic (goldens rely on it).
	for _, f := range figures.All() {
		if f.Render() != f.Render() {
			t.Errorf("%s renders nondeterministically", f.ID)
		}
		if !strings.Contains(f.Render(), "(a)") {
			t.Errorf("%s missing caption structure", f.ID)
		}
	}
}

func TestParallelAgreesUnderLoad(t *testing.T) {
	r1, r2 := datagen.DividePair{
		Groups: 2000, GroupSize: 8, DivisorSize: 10,
		Domain: 100, HitRate: 0.25, Seed: 5,
	}.Generate()
	if !parallel.Divide(r1, r2, 8).Equal(division.Divide(r1, r2)) {
		t.Error("parallel divide diverged under load")
	}
	g1, g2 := datagen.GreatDividePair{
		Groups: 600, GroupSize: 8,
		DivisorGroups: 16, DivisorGroupSize: 5,
		Domain: 100, HitRate: 0.25, Seed: 5,
	}.Generate()
	if !parallel.GreatDivide(g1, g2, 8).EquivalentTo(division.GreatDivide(g1, g2)) {
		t.Error("parallel great divide diverged under load")
	}
}

func TestFIMThroughSQLAndMiner(t *testing.T) {
	// The §3 pipeline expressed in SQL must match the DivideMiner's
	// level-2 output.
	gen := datagen.Baskets{Transactions: 60, Items: 8, AvgSize: 4, Skew: 0, Seed: 13}
	lists := make(map[int64][]int64)
	for _, tx := range gen.Generate() {
		lists[tx.ID] = tx.Items
	}
	trans := fim.FromLists(lists)
	const minSup = 10

	results := fim.DivideMiner{}.Mine(trans, minSup)
	pairSupport := map[string]int{}
	for _, r := range results {
		if len(r.Items) == 2 {
			pairSupport[r.Items.Key()] = r.Support
		}
	}
	if len(pairSupport) == 0 {
		t.Skip("no frequent pairs at this support; dataset too sparse")
	}

	// Rebuild the level-2 candidates as a SQL table and count via
	// DIVIDE BY.
	cand := relation.New(schema.New("itemset", "item"))
	for _, r := range results {
		if len(r.Items) != 2 {
			continue
		}
		key := value.String(r.Items.Key())
		for _, it := range r.Items {
			cand.Insert(relation.Tuple{key, value.Int(it)})
		}
	}
	db := sql.NewDB()
	db.Register("transactions", trans.Relation())
	db.Register("candidates", cand)
	support, err := db.Query(`
SELECT itemset, count(tid) AS support
FROM (SELECT tid, itemset
      FROM transactions AS t DIVIDE BY candidates AS c ON t.item = c.item) AS q
GROUP BY itemset
HAVING count(tid) >= ` + itoa(minSup))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, tp := range support.Tuples() {
		got[tp[0].AsString()] = int(tp[1].AsInt())
	}
	for k, v := range pairSupport {
		if got[k] != v {
			t.Errorf("pair %s: SQL support %d, miner support %d", k, got[k], v)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
