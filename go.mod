module divlaws

go 1.22
