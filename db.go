package divlaws

import (
	"context"
	"fmt"
	"sync"

	"divlaws/internal/exec"
	"divlaws/internal/laws"
	"divlaws/internal/optimizer"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/spill"
	"divlaws/internal/sql"
	"divlaws/internal/value"
)

// ErrMemoryBudget is the sentinel wrapped by every failure caused by
// a query exceeding its memory budget after all spilling recourse is
// exhausted — for example a single key group or the divisor alone
// outgrowing the limit. Match with errors.Is. Queries that merely
// exceed the budget in passing spill to disk and succeed; this error
// means the query genuinely cannot run under the configured limit.
var ErrMemoryBudget = spill.ErrBudget

// ErrSpillIO is the sentinel wrapped by spill temp-file read/write
// failures (disk full, permissions). Match with errors.Is. It
// surfaces as a query error through Rows.Err, never a panic.
var ErrSpillIO = spill.ErrIO

// config is the tunable behavior of a DB, set once at Open.
type config struct {
	workers        int
	threshold      float64
	optimize       bool
	detect         bool
	dataDependent  bool
	exchangeBuffer int
	batchSize      int
	batch          exec.BatchMode
	memoryLimit    int64
}

// Option configures a DB at Open time.
type Option func(*config)

// WithWorkers makes the planner parallelize large divisions across n
// goroutines (the paper's Law 2/c2 and Law 13 partitionings). n < 2
// keeps execution sequential.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithParallelThreshold sets the minimum estimated dividend
// cardinality before a division is parallelized; it only matters
// together with WithWorkers.
func WithParallelThreshold(rows float64) Option {
	return func(c *config) { c.threshold = rows }
}

// WithExchangeBuffer sets the bounded-channel capacity — counted in
// tuple batches — between a parallel division's partition workers
// and the consuming pipeline (the streaming exchange). Smaller
// buffers tighten backpressure: workers compute little beyond what
// the consumer has taken, so LIMIT and early Rows.Close waste less
// work. Larger buffers decouple fast workers from a slow consumer.
// n < 1 keeps the default (exec.DefaultExchangeBuffer).
func WithExchangeBuffer(n int) Option { return func(c *config) { c.exchangeBuffer = n } }

// WithBatchSize sets the tuple capacity of the batches flowing
// through the vectorized execution path and the parallel exchange.
// Larger batches amortize per-call overhead further at the cost of
// latency to first result; n < 1 keeps the default (64 tuples).
func WithBatchSize(n int) Option { return func(c *config) { c.batchSize = n } }

// WithoutBatching disables the vectorized batch-at-a-time execution
// path, compiling every operator tuple-at-a-time. It is primarily a
// correctness oracle and benchmarking baseline; it also overrides the
// DIVLAWS_FORCE_BATCH environment variable.
func WithoutBatching() Option { return func(c *config) { c.batch = exec.BatchOff } }

// WithMemoryLimit bounds, per query, the bytes of input state the
// blocking operators may hold live in memory. Under pressure the
// engine degrades to out-of-core execution instead of failing: sorts
// spill sorted runs to temp files and k-way merge them back, and the
// hash division and hash join operators grace-hash partition their
// state to disk and recurse per partition. Results are identical to
// unlimited execution (including ORDER BY output order). A query
// whose irreducible state — the divisor, or a single key group after
// maximal partitioning — cannot fit returns an error matching
// ErrMemoryBudget rather than exhausting the process.
//
// n <= 0 leaves the budget unlimited (the default), except that 0
// defers to the DIVLAWS_FORCE_SPILL environment variable (a byte
// budget, or 64KiB for any other non-empty value) while a negative n
// is explicitly unlimited, overriding the environment.
func WithMemoryLimit(n int64) Option {
	return func(c *config) {
		if n > 0 {
			c.memoryLimit = n
		} else if n < 0 {
			c.memoryLimit = -1
		}
	}
}

// WithoutOptimizer disables the law-based rewrite pass, executing
// the bound plan as written.
func WithoutOptimizer() Option { return func(c *config) { c.optimize = false } }

// WithoutDetection disables the NOT EXISTS → division pattern
// detector, so universal quantification runs as nested iteration.
func WithoutDetection() Option { return func(c *config) { c.detect = false } }

// WithDataDependentRules enables rewrite rules whose preconditions
// must be checked against the data (the paper's c1-style conditions)
// in addition to the always-safe rules.
func WithDataDependentRules() Option { return func(c *config) { c.dataDependent = true } }

// DB is an embedded division-laws engine: a catalog of registered
// relations plus the full query pipeline — SQL front end (including
// the paper's DIVIDE BY syntax and ? placeholders), NOT EXISTS
// detection, law-based optimization, parallelization, and the
// streaming Volcano execution engine.
//
// A DB is safe for concurrent use: Register takes a write lock,
// queries a read lock, and registered relations are immutable.
// Construct with Open; the zero DB is not usable.
type DB struct {
	mu    sync.RWMutex
	inner *sql.DB
	cfg   config
}

// Open returns an empty database with the given options. The default
// configuration optimizes with the always-safe law set, detects NOT
// EXISTS division patterns, and executes sequentially.
func Open(opts ...Option) *DB {
	cfg := config{
		workers:   1,
		threshold: optimizer.DefaultParallelThreshold,
		optimize:  true,
		detect:    true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &DB{inner: sql.NewDB(), cfg: cfg}
}

// Workers returns the configured parallelism degree: the number of
// goroutines large divisions are partitioned across (WithWorkers).
// 1 means sequential execution. Servers embedding a DB use this to
// label benchmark output honestly.
func (db *DB) Workers() int { return db.cfg.workers }

// BatchSize returns the effective tuple capacity of the batches used
// by the vectorized execution path (WithBatchSize, default
// relation.DefaultBatchCap).
func (db *DB) BatchSize() int {
	if db.cfg.batchSize > 0 {
		return db.cfg.batchSize
	}
	return relation.DefaultBatchCap
}

// ExchangeBuffer returns the effective bounded-channel capacity, in
// tuple batches, between parallel division workers and the consuming
// pipeline (WithExchangeBuffer, default exec.DefaultExchangeBuffer).
func (db *DB) ExchangeBuffer() int {
	if db.cfg.exchangeBuffer > 0 {
		return db.cfg.exchangeBuffer
	}
	return exec.DefaultExchangeBuffer
}

// MemoryLimit returns the per-query memory budget in bytes
// (WithMemoryLimit): the effective value after resolving the
// DIVLAWS_FORCE_SPILL environment override, 0 meaning unlimited.
// Servers embedding a DB use this to report the engine's budget.
func (db *DB) MemoryLimit() int64 {
	return exec.CompileOptions{MemoryLimit: db.cfg.memoryLimit}.EffectiveMemoryLimit()
}

// Register adds (or replaces) a named table. The relation's contents
// are referenced, not copied; relations are immutable, so later
// Register calls with the same name replace the table without
// affecting queries already running against the old contents.
func (db *DB) Register(name string, r *Relation) error {
	if name == "" {
		return fmt.Errorf("divlaws: empty table name")
	}
	if r == nil || r.rel == nil {
		return fmt.Errorf("divlaws: Register %q with nil relation", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.inner.Register(name, r.rel)
	return nil
}

// MustRegister is Register, panicking on error; for program setup.
func (db *DB) MustRegister(name string, r *Relation) {
	if err := db.Register(name, r); err != nil {
		panic(err)
	}
}

// Table returns the registered relation with the given name.
func (db *DB) Table(name string) (*Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.inner.Table(name)
	if !ok {
		return nil, false
	}
	return &Relation{rel: rel}, true
}

// Query plans and starts a SELECT statement — DIVIDE BY included —
// binding any ? placeholders to args, and returns a streaming cursor
// over the result. The pipeline is the compiled iterator tree, not a
// materialized relation: blocking operators (hash builds, divisions)
// do their work under ctx during Query, and the quotient tuples of
// pipelined operators stream out as Rows.Next is called.
//
// Cancelling ctx stops the pipeline — including parallel division
// workers mid-partition — and subsequent Rows.Next calls report
// false with Rows.Err returning the context's error. The caller must
// Close the returned Rows.
func (db *DB) Query(ctx context.Context, text string, args ...any) (*Rows, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return db.queryParsed(ctx, q, args)
}

// Prepare parses a statement once for repeated execution. The
// statement may contain positional ? placeholders; they are resolved
// at bind time, on each Stmt.Query call.
func (db *DB) Prepare(text string) (*Stmt, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	st := &Stmt{db: db, text: text}
	st.query.Store(q)
	return st, nil
}

// Explanation is the result of Explain: the rendered report plus the
// structured signals callers would otherwise have to parse out of
// the prose.
type Explanation struct {
	// Report renders every stage of the rewrite pipeline: detection,
	// law-based optimization with costs and the rule trace, and the
	// partitioning strategy of parallel operators.
	Report string
	// Detected reports whether a NOT EXISTS universal-quantification
	// pattern was rewritten into a first-class division.
	Detected bool
}

// Explain plans the statement and reports how it would run — without
// executing anything.
func (db *DB) Explain(ctx context.Context, text string, args ...any) (Explanation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Explanation{}, err
	}
	q, err := sql.Parse(text)
	if err != nil {
		return Explanation{}, err
	}
	bound, err := bindArgs(q, args)
	if err != nil {
		return Explanation{}, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ex, err := db.inner.ExplainQuery(bound, sql.ExplainOptions{
		Detect:             db.cfg.detect,
		Optimize:           db.cfg.optimize,
		AllowDataDependent: db.cfg.dataDependent,
		Workers:            db.cfg.workers,
		ParallelThreshold:  db.cfg.threshold,
		Batch:              db.cfg.batch,
	})
	if err != nil {
		return Explanation{}, err
	}
	return Explanation{Report: ex.Report, Detected: ex.Detected}, nil
}

// queryParsed is the shared execution path behind Query and
// Stmt.Query: bind args, plan, compile, and open the pipeline.
func (db *DB) queryParsed(ctx context.Context, q *sql.Query, args []any) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	node, err := db.plan(q, args)
	if err != nil {
		return nil, err
	}
	stats := exec.NewStats()
	opts := exec.CompileOptions{
		ExchangeBuffer: db.cfg.exchangeBuffer,
		BatchSize:      db.cfg.batchSize,
		Batch:          db.cfg.batch,
		MemoryLimit:    db.cfg.memoryLimit,
	}
	// Build the tracker here rather than letting CompileWith own one,
	// so Rows can report spill counters after the pipeline closes; the
	// cursor closes it (removing any temp files) on release.
	if lim := opts.EffectiveMemoryLimit(); lim > 0 {
		opts.Spill = spill.NewTracker(lim)
	}
	it := exec.CompileWith(node, stats, opts)
	qctx, cancel := context.WithCancel(ctx)
	if err := it.Open(qctx); err != nil {
		it.Close()
		opts.Spill.Close()
		cancel()
		return nil, err
	}
	return &Rows{
		it:      it,
		ctx:     qctx,
		cancel:  cancel,
		cols:    outputColumns(node.Schema()),
		stats:   stats,
		spill:   opts.Spill,
		ordered: planOrdered(node),
	}, nil
}

// planOrdered reports whether the plan's output carries a physical
// ordering: a Sort or TopK reachable from the root through
// order-preserving operators only — Limit, Rename, and Project
// (which streams without reordering; the optimizer only ever places
// one above a TopK as part of the order-safe pushdown).
func planOrdered(n plan.Node) bool {
	switch t := n.(type) {
	case *plan.Sort, *plan.TopK:
		return true
	case *plan.Limit:
		return planOrdered(t.Input)
	case *plan.Rename:
		return planOrdered(t.Input)
	case *plan.Project:
		return planOrdered(t.Input)
	default:
		return false
	}
}

// plan binds the arguments and lowers the query through detection,
// optimization, and parallelization under the DB's configuration.
func (db *DB) plan(q *sql.Query, args []any) (plan.Node, error) {
	bound, err := bindArgs(q, args)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var node plan.Node
	if db.cfg.detect {
		node, _, err = db.inner.PlanQueryWithDetection(bound)
	} else {
		node, err = db.inner.Bind(bound)
	}
	if err != nil {
		return nil, err
	}
	if db.cfg.optimize || db.cfg.workers >= 2 {
		// Nil rules means the optimizer's full always-safe set; an
		// empty non-nil set parallelizes without law rewrites.
		var rules []laws.Rule
		if !db.cfg.optimize {
			rules = []laws.Rule{}
		}
		res := optimizer.Optimize(node, optimizer.Options{
			AllowDataDependent: db.cfg.dataDependent,
			Rules:              rules,
			Parallel: optimizer.ParallelOptions{
				Workers:   db.cfg.workers,
				Threshold: db.cfg.threshold,
			},
		})
		node = res.Plan
	}
	return node, nil
}

// bindArgs converts the Go arguments and substitutes them for the
// statement's placeholders.
func bindArgs(q *sql.Query, args []any) (*sql.Query, error) {
	vals := make([]value.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("divlaws: argument %d: %w", i, err)
		}
		vals[i] = v
	}
	return sql.SubstituteParams(q, vals)
}

// toValue converts a Go scalar into an engine value without
// panicking on unsupported types.
func toValue(x any) (value.Value, error) {
	switch v := x.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.Bool(v), nil
	case int:
		return value.Int(int64(v)), nil
	case int32:
		return value.Int(int64(v)), nil
	case int64:
		return value.Int(v), nil
	case float32:
		return value.Float(float64(v)), nil
	case float64:
		return value.Float(v), nil
	case string:
		return value.String(v), nil
	default:
		return value.Value{}, fmt.Errorf("unsupported type %T", x)
	}
}

// outputColumns flattens a plan's output schema into result column
// names.
func outputColumns(sch schema.Schema) []string {
	return append([]string(nil), sch.Attrs()...)
}

// Relation is an immutable set-semantics relation, the unit of
// Register. Build one with NewRelation.
type Relation struct {
	rel *relation.Relation
}

// NewRelation builds a relation over the named columns from untyped
// rows. Supported cell types are nil, bool, int, int32, int64,
// float32, float64, and string; duplicate rows are absorbed (set
// semantics).
func NewRelation(columns []string, rows [][]any) (*Relation, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("divlaws: relation needs at least one column")
	}
	seen := make(map[string]bool, len(columns))
	for _, c := range columns {
		if c == "" {
			return nil, fmt.Errorf("divlaws: empty column name")
		}
		if seen[c] {
			return nil, fmt.Errorf("divlaws: duplicate column %q", c)
		}
		seen[c] = true
	}
	rel := relation.New(schema.New(columns...))
	for i, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("divlaws: row %d has %d cells, want %d", i, len(row), len(columns))
		}
		t := make(relation.Tuple, len(row))
		for j, cell := range row {
			v, err := toValue(cell)
			if err != nil {
				return nil, fmt.Errorf("divlaws: row %d, column %q: %w", i, columns[j], err)
			}
			t[j] = v
		}
		rel.InsertOwned(t)
	}
	return &Relation{rel: rel}, nil
}

// MustNewRelation is NewRelation, panicking on error; for literals
// in program setup.
func MustNewRelation(columns []string, rows [][]any) *Relation {
	r, err := NewRelation(columns, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Columns returns the relation's attribute names in order.
func (r *Relation) Columns() []string { return append([]string(nil), r.rel.Schema().Attrs()...) }

// Len returns the relation's cardinality.
func (r *Relation) Len() int { return r.rel.Len() }

// Rows returns the relation's tuples as untyped Go rows, a copy.
func (r *Relation) Rows() [][]any { return r.rel.Rows() }
