// Tests for the public embedding surface: Open/Register, streaming
// Query, prepared statements with bind-time ? resolution, Explain,
// and QueryStats.
package divlaws

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// openSuppliers builds the paper's §4 suppliers-and-parts scenario
// through the public constructors.
func openSuppliers(opts ...Option) *DB {
	db := Open(opts...)
	db.MustRegister("supplies", MustNewRelation([]string{"s#", "p#"}, [][]any{
		{"s1", "p1"}, {"s1", "p2"}, {"s1", "p3"},
		{"s2", "p3"}, {"s2", "p4"},
		{"s3", "p1"}, {"s3", "p2"}, {"s3", "p3"}, {"s3", "p4"}, {"s3", "p5"},
		{"s4", "p5"},
	}))
	db.MustRegister("parts", MustNewRelation([]string{"p#", "color"}, [][]any{
		{"p1", "red"}, {"p2", "red"},
		{"p3", "blue"}, {"p4", "blue"},
		{"p5", "green"},
	}))
	return db
}

const apiQ1 = `SELECT s#, color
FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#`

// q1Rows is the expected "supplier supplies all parts of the color"
// answer, sorted.
var q1Rows = []string{
	"s1/red", "s2/blue", "s3/blue", "s3/green", "s3/red", "s4/green",
}

// collect drains a cursor into sorted "a/b" strings via Scan.
func collect(t *testing.T, rows *Rows) []string {
	t.Helper()
	defer rows.Close()
	var out []string
	for rows.Next() {
		var s, c string
		if err := rows.Scan(&s, &c); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		out = append(out, s+"/"+c)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	sort.Strings(out)
	return out
}

func TestQueryStreamsQuotient(t *testing.T) {
	db := openSuppliers()
	rows, err := db.Query(context.Background(), apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "s#" || cols[1] != "color" {
		t.Errorf("Columns = %v", cols)
	}
	got := collect(t, rows)
	if fmt.Sprint(got) != fmt.Sprint(q1Rows) {
		t.Errorf("Q1 = %v, want %v", got, q1Rows)
	}
}

func TestQueryPlaceholders(t *testing.T) {
	db := openSuppliers()
	rows, err := db.Query(context.Background(), `SELECT s#
FROM supplies AS s DIVIDE BY (
  SELECT p# FROM parts WHERE color = ?) AS p
ON s.p# = p.p#`, "blue")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != "[s2 s3]" {
		t.Errorf("blue suppliers = %v", got)
	}
}

func TestPreparedStatementRebinds(t *testing.T) {
	db := openSuppliers()
	stmt, err := db.Prepare(`SELECT s#
FROM supplies AS s DIVIDE BY (
  SELECT p# FROM parts WHERE color = ?) AS p
ON s.p# = p.p#`)
	if err != nil {
		t.Fatal(err)
	}
	if n := stmt.NumInput(); n != 1 {
		t.Errorf("NumInput = %d", n)
	}
	want := map[string]string{
		"blue":  "[s2 s3]",
		"red":   "[s1 s3]",
		"green": "[s3 s4]",
	}
	for color, expect := range want {
		rows, err := stmt.Query(context.Background(), color)
		if err != nil {
			t.Fatalf("%s: %v", color, err)
		}
		var got []string
		for rows.Next() {
			var s string
			if err := rows.Scan(&s); err != nil {
				t.Fatal(err)
			}
			got = append(got, s)
		}
		rows.Close()
		sort.Strings(got)
		if fmt.Sprint(got) != expect {
			t.Errorf("%s suppliers = %v, want %s", color, got, expect)
		}
	}

	// Wrong arity is a bind-time error.
	if _, err := stmt.Query(context.Background()); err == nil {
		t.Error("missing argument should error")
	}
	if _, err := stmt.Query(context.Background(), "blue", "red"); err == nil {
		t.Error("extra argument should error")
	}

	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(context.Background(), "blue"); err == nil {
		t.Error("Query on closed statement should error")
	}
	if err := stmt.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestStmtConcurrentQueryAndClose(t *testing.T) {
	// Close racing Query must neither race (run under -race in CI)
	// nor panic: each Query either runs on the loaded AST or reports
	// the statement closed.
	db := openSuppliers()
	stmt, err := db.Prepare(`SELECT s#
FROM supplies AS s DIVIDE BY (
  SELECT p# FROM parts WHERE color = ?) AS p
ON s.p# = p.p#`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := stmt.Query(context.Background(), "blue")
			if err != nil {
				if !strings.Contains(err.Error(), "closed statement") {
					t.Errorf("unexpected Query error: %v", err)
				}
				return
			}
			for rows.Next() {
			}
			rows.Close()
		}()
	}
	stmt.Close()
	wg.Wait()
	if n := stmt.NumInput(); n != 0 {
		t.Errorf("NumInput after Close = %d", n)
	}
}

func TestExplainReportsPipeline(t *testing.T) {
	// 2 workers: the 5-part divisor must hold at least 2 tuples per
	// worker for Law 13 partitioning to engage.
	db := openSuppliers(WithWorkers(2), WithParallelThreshold(1))
	ex, err := db.Explain(context.Background(), apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"logical plan", "optimized plan", "partitioning"} {
		if !strings.Contains(ex.Report, want) {
			t.Errorf("Explain report missing %q:\n%s", want, ex.Report)
		}
	}
	notExists := `SELECT DISTINCT s#, color
	 FROM supplies AS s1, parts AS p1
	 WHERE NOT EXISTS (
	   SELECT * FROM parts AS p2
	   WHERE p2.color = p1.color AND NOT EXISTS (
	     SELECT * FROM supplies AS s2
	     WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`
	if ex, err := db.Explain(context.Background(), notExists); err != nil || !ex.Detected {
		t.Errorf("NOT EXISTS detection flag: detected=%v err=%v", ex.Detected, err)
	}
	if ex, err := db.Explain(context.Background(), apiQ1); err != nil || ex.Detected {
		t.Errorf("plain DIVIDE BY must not set Detected, got %v err=%v", ex.Detected, err)
	}
	if _, err := db.Explain(context.Background(), `SELECT`); err == nil {
		t.Error("Explain of a parse error should error")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Explain(cancelled, apiQ1); err == nil {
		t.Error("Explain under a cancelled context should error")
	}
}

func TestQueryMatchesMaterializingCompatPath(t *testing.T) {
	// The streaming public path and the internal materializing
	// compatibility path must agree on every §4 query shape.
	db := openSuppliers(WithDataDependentRules())
	queries := []string{
		apiQ1,
		`SELECT s# FROM supplies AS s DIVIDE BY (
		   SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#`,
		`SELECT DISTINCT s#, color
		 FROM supplies AS s1, parts AS p1
		 WHERE NOT EXISTS (
		   SELECT * FROM parts AS p2
		   WHERE p2.color = p1.color AND NOT EXISTS (
		     SELECT * FROM supplies AS s2
		     WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`,
		`SELECT color, count(p#) AS n FROM parts GROUP BY color HAVING count(p#) >= 2`,
	}
	for _, q := range queries {
		rows, err := db.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var streamed []string
		for rows.Next() {
			dest := make([]any, len(rows.Columns()))
			ptrs := make([]any, len(dest))
			for i := range dest {
				ptrs[i] = &dest[i]
			}
			if err := rows.Scan(ptrs...); err != nil {
				t.Fatal(err)
			}
			streamed = append(streamed, fmt.Sprint(dest...))
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		sort.Strings(streamed)

		ref, err := db.inner.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		pos := ref.Schema().Positions(rows.Columns())
		for _, tup := range ref.Tuples() {
			row := make([]any, len(pos))
			for i, p := range pos {
				row[i] = tup[p].Native()
			}
			want = append(want, fmt.Sprint(row...))
		}
		sort.Strings(want)
		if fmt.Sprint(streamed) != fmt.Sprint(want) {
			t.Errorf("query %s:\nstreamed %v\nwant     %v", q, streamed, want)
		}
	}
}

func TestQueryStats(t *testing.T) {
	db := openSuppliers()
	rows, err := db.Query(context.Background(), apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	rows.Close()
	st := rows.Stats()
	if st.Total() == 0 {
		t.Error("Stats().Total() == 0 after a full stream")
	}
	var sawDivide bool
	for label := range st.Emitted {
		if strings.Contains(label, "divide") {
			sawDivide = true
		}
	}
	if !sawDivide {
		t.Errorf("no division operator in stats: %v", st.Emitted)
	}
	// The snapshot is a copy: mutating it must not corrupt the
	// collector.
	st.Emitted["bogus"] = 1
	if rows.Stats().Get("bogus") != 0 {
		t.Error("Stats snapshot aliases the collector")
	}
}

func TestRegisterAndRelationErrors(t *testing.T) {
	db := Open()
	if err := db.Register("", MustNewRelation([]string{"a"}, nil)); err == nil {
		t.Error("empty table name should error")
	}
	if err := db.Register("t", nil); err == nil {
		t.Error("nil relation should error")
	}
	if _, err := NewRelation(nil, nil); err == nil {
		t.Error("no columns should error")
	}
	if _, err := NewRelation([]string{"a", "a"}, nil); err == nil {
		t.Error("duplicate column should error")
	}
	if _, err := NewRelation([]string{""}, nil); err == nil {
		t.Error("empty column name should error")
	}
	if _, err := NewRelation([]string{"a"}, [][]any{{1, 2}}); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := NewRelation([]string{"a"}, [][]any{{struct{}{}}}); err == nil {
		t.Error("unsupported cell type should error")
	}

	r := MustNewRelation([]string{"a", "b"}, [][]any{{1, "x"}, {1, "x"}, {2, "y"}})
	if r.Len() != 2 {
		t.Errorf("set semantics: Len = %d, want 2", r.Len())
	}
	if cols := r.Columns(); len(cols) != 2 || cols[0] != "a" {
		t.Errorf("Columns = %v", cols)
	}
	if rows := r.Rows(); len(rows) != 2 || rows[0][0] != int64(1) || rows[0][1] != "x" {
		t.Errorf("Rows = %v", rows)
	}
}

func TestQueryErrors(t *testing.T) {
	db := openSuppliers()
	if _, err := db.Query(context.Background(), `SELECT`); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := db.Query(context.Background(), `SELECT x FROM nosuch`); err == nil {
		t.Error("unknown table should surface")
	}
	if _, err := db.Query(context.Background(), `SELECT s# FROM supplies WHERE p# = ?`); err == nil {
		t.Error("missing argument should surface")
	}
	if _, err := db.Query(context.Background(), `SELECT s# FROM supplies WHERE p# = ?`, struct{}{}); err == nil {
		t.Error("unsupported argument type should surface")
	}
}

func TestTableLookup(t *testing.T) {
	db := openSuppliers()
	r, ok := db.Table("parts")
	if !ok || r.Len() != 5 {
		t.Errorf("Table(parts) = %v, %v", r, ok)
	}
	if _, ok := db.Table("nosuch"); ok {
		t.Error("Table(nosuch) should be absent")
	}
}

func TestScanDestinations(t *testing.T) {
	db := Open()
	db.MustRegister("t", MustNewRelation([]string{"i", "f", "s", "b"}, [][]any{
		{7, 2.5, "x", true},
	}))
	rows, err := db.Query(context.Background(), `SELECT i, f, s, b FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no row")
	}
	var (
		i  int64
		f  float64
		s  string
		b  bool
		av any
	)
	if err := rows.Scan(&i, &f, &s, &b); err != nil {
		t.Fatal(err)
	}
	if i != 7 || f != 2.5 || s != "x" || !b {
		t.Errorf("scanned %v %v %v %v", i, f, s, b)
	}
	var ii int
	if err := rows.Scan(&ii, &av, &av, &av); err != nil || ii != 7 {
		t.Errorf("int/any scan: %v %v", ii, err)
	}
	if err := rows.Scan(&s, &f, &s, &b); err == nil {
		t.Error("kind mismatch should error")
	}
	if err := rows.Scan(&i); err == nil {
		t.Error("arity mismatch should error")
	}
	var bad struct{}
	if err := rows.Scan(&i, &f, &s, &bad); err == nil {
		t.Error("unsupported destination should error")
	}
}
