// Benchmarks regenerating the paper's efficiency claims:
//
//   - BenchmarkLaw*/lhs vs /rhs: evaluation cost of each law's two
//     sides (the paper's per-law optimization argument, §5).
//   - BenchmarkSmallDivideAlgos: the physical algorithm ablation the
//     paper cites from Graefe [14] and Graefe & Cole [16].
//   - BenchmarkGreatDivideDefs: Theorem 1's three definitions plus
//     the hash operator.
//   - BenchmarkFirstClassVsSimulated: the quadratic-intermediate
//     result of Leinders & Van den Bussche [25].
//   - BenchmarkQ1DivideVsQ3NotExists: the §4 SQL comparison.
//   - BenchmarkFIM: the §3 frequent itemset application.
package divlaws

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/division"
	"divlaws/internal/exec"
	"divlaws/internal/fim"
	"divlaws/internal/laws"
	"divlaws/internal/optimizer"
	"divlaws/internal/parallel"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/scenarios"
	"divlaws/internal/schema"
	"divlaws/internal/sql"
	"divlaws/internal/value"
)

// benchScale keeps the default `go test -bench=.` run fast; use
// -benchtime and the cmd/lawbench tool for larger sweeps.
const benchScale = 2000

// BenchmarkLaws times both sides of every law over the shared
// scenario workloads.
func BenchmarkLaws(b *testing.B) {
	for _, s := range scenarios.All() {
		lhs := s.Build(benchScale, 1)
		rhs := s.MustApply(lhs)
		b.Run(s.Name+"/lhs", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.Eval(lhs)
			}
		})
		b.Run(s.Name+"/rhs", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.Eval(rhs)
			}
		})
	}
}

// BenchmarkSmallDivideAlgos ablates the physical small-divide
// algorithms across group counts.
func BenchmarkSmallDivideAlgos(b *testing.B) {
	for _, groups := range []int{100, 1000} {
		r1, r2 := datagen.DividePair{
			Groups: groups, GroupSize: 10, DivisorSize: 10,
			Domain: 100, HitRate: 0.3, Seed: 1,
		}.Generate()
		for _, algo := range division.Algorithms() {
			b.Run(fmt.Sprintf("%s/groups=%d", algo, groups), func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(float64(r1.Len()), "dividend-rows")
				for i := 0; i < b.N; i++ {
					division.DivideWith(algo, r1, r2)
				}
			})
		}
	}
}

// BenchmarkGreatDivideDefs times the three equivalent definitions of
// Theorem 1 and the hash operator.
func BenchmarkGreatDivideDefs(b *testing.B) {
	r1, r2 := datagen.GreatDividePair{
		Groups: 400, GroupSize: 8,
		DivisorGroups: 10, DivisorGroupSize: 5,
		Domain: 80, HitRate: 0.3, Seed: 1,
	}.Generate()
	for _, algo := range division.GreatAlgorithms() {
		b.Run(string(algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				division.GreatDivideWith(algo, r1, r2)
			}
		})
	}
}

// BenchmarkFirstClassVsSimulated contrasts the first-class operator
// with Healy's basic-algebra simulation as the dividend grows; the
// simulation's intermediate is quadratic in |quotient candidates| ×
// |divisor|.
func BenchmarkFirstClassVsSimulated(b *testing.B) {
	for _, groups := range []int{100, 400, 1600} {
		r1, r2 := datagen.DividePair{
			Groups: groups, GroupSize: 6, DivisorSize: 8,
			Domain: 64, HitRate: 0.3, Seed: 1,
		}.Generate()
		direct := &plan.Divide{Dividend: plan.NewScan("r1", r1), Divisor: plan.NewScan("r2", r2)}
		simulated := exec.SimulatedDividePlan("r1", r1, "r2", r2)
		b.Run(fmt.Sprintf("first-class/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(context.Background(), exec.Compile(direct, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("simulated/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(context.Background(), exec.Compile(simulated, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQ1DivideVsQ3NotExists reproduces the §4 comparison: the
// DIVIDE BY formulation against the double-NOT-EXISTS simulation.
func BenchmarkQ1DivideVsQ3NotExists(b *testing.B) {
	supplies, parts := datagen.SuppliersParts{
		Suppliers: 15, Parts: 12, Colors: 3, AvgSupplied: 6, Seed: 1,
	}.Generate()
	db := sql.NewDB()
	db.Register("supplies", supplies)
	db.Register("parts", parts)
	const q1 = `SELECT s#, color
FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#`
	const q3 = `SELECT DISTINCT s#, color
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = p1.color AND NOT EXISTS (
    SELECT * FROM supplies AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`

	var want *relation.Relation
	b.Run("q1-divide", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q1)
			if err != nil {
				b.Fatal(err)
			}
			want = res
		}
	})
	b.Run("q3-not-exists", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q3)
			if err != nil {
				b.Fatal(err)
			}
			if want != nil && !res.EquivalentTo(want) {
				b.Fatal("Q3 disagrees with Q1")
			}
		}
	})
}

// BenchmarkFIM compares the great-divide Apriori against the
// classical hash-counting baseline (§3).
func BenchmarkFIM(b *testing.B) {
	gen := datagen.Baskets{
		Transactions: 400, Items: 30, AvgSize: 5, Skew: 0.8, Seed: 1,
	}
	lists := make(map[int64][]int64)
	for _, tx := range gen.Generate() {
		lists[tx.ID] = tx.Items
	}
	trans := fim.FromLists(lists)
	const minSupport = 60
	b.Run("apriori-great-divide", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fim.DivideMiner{}.Mine(trans, minSupport)
		}
	})
	b.Run("apriori-hash-count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fim.HashMiner{}.Mine(trans, minSupport)
		}
	})
}

// BenchmarkMergeGroupPipelining contrasts the blocking hash-division
// with the group-preserving merge operator on a pre-grouped
// dividend, the execution property behind Law 1's pipeline argument.
func BenchmarkMergeGroupPipelining(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 2000, GroupSize: 8, DivisorSize: 8,
		Domain: 64, HitRate: 0.3, Seed: 1,
	}.Generate()
	for _, algo := range []division.Algorithm{division.AlgoHash, division.AlgoMergeSort} {
		node := &plan.Divide{
			Dividend: plan.NewScan("r1", r1),
			Divisor:  plan.NewScan("r2", r2),
			Algo:     algo,
		}
		b.Run(string(algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(context.Background(), exec.Compile(node, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNotExistsDetection measures the §4 detection win: the
// same Q3 text executed via nested iteration (fallback) vs the
// detected first-class division plan.
func BenchmarkNotExistsDetection(b *testing.B) {
	supplies, parts := datagen.SuppliersParts{
		Suppliers: 15, Parts: 12, Colors: 3, AvgSupplied: 6, Seed: 1,
	}.Generate()
	db := sql.NewDB()
	db.Register("supplies", supplies)
	db.Register("parts", parts)
	const q3 = `SELECT DISTINCT s#, color
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = p1.color AND NOT EXISTS (
    SELECT * FROM supplies AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`

	detected, wasDetected, err := db.PlanWithDetection(q3)
	if err != nil || !wasDetected {
		b.Fatalf("detection failed: %v", err)
	}
	fallback, err := db.Plan(q3)
	if err != nil {
		b.Fatal(err)
	}
	want := plan.Eval(fallback)
	if !plan.Eval(detected).EquivalentTo(want) {
		b.Fatal("detected plan wrong")
	}
	b.Run("detected-divide", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.Eval(detected)
		}
	})
	b.Run("nested-iteration", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.Eval(fallback)
		}
	})
}

// BenchmarkParallelDivide measures the Law 2 parallel strategy
// across worker counts, with two per-partition operators: the
// already-linear hash-division (where the paper's §5.2.1 proviso —
// the division must dominate the partition/merge cost — fails, so
// overhead wins) and the per-divisor-scan Maier evaluation (where
// parallelism pays off).
func BenchmarkParallelDivide(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 4000, GroupSize: 10, DivisorSize: 12,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	for _, algo := range []division.Algorithm{division.AlgoHash, division.AlgoMaier} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					parallel.DivideWith(algo, r1, r2, workers)
				}
			})
		}
	}
}

// BenchmarkParallelGreatDivide measures the Law 13 strategy. Each
// worker scans the replicated dividend against its divisor
// partition, so total CPU grows with workers; wall-clock gains
// require the per-group work to dominate, as the paper's proviso
// states.
func BenchmarkParallelGreatDivide(b *testing.B) {
	g1, g2 := datagen.GreatDividePair{
		Groups: 1500, GroupSize: 10,
		DivisorGroups: 32, DivisorGroupSize: 6,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				parallel.GreatDivide(g1, g2, workers)
			}
		})
	}
}

// BenchmarkParallelDivideExec measures the exchange-operator path:
// plan.ParallelDivide compiled to the fan-out iterator, across
// worker counts and per-partition algorithms. Together with
// BenchmarkParallelDivide (the raw strategy, no iterator overhead)
// this tracks the scaling curve per worker count.
func BenchmarkParallelDivideExec(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 4000, GroupSize: 10, DivisorSize: 12,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	for _, algo := range []division.Algorithm{division.AlgoHash, division.AlgoMaier} {
		for _, workers := range []int{1, 2, 4, 8} {
			node := &plan.ParallelDivide{
				Dividend: plan.NewScan("r1", r1),
				Divisor:  plan.NewScan("r2", r2),
				Algo:     algo, Workers: workers,
			}
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Run(context.Background(), exec.Compile(node, nil)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelGreatDivideExec is the Law 13 exchange operator
// through the compiled iterator across worker counts.
func BenchmarkParallelGreatDivideExec(b *testing.B) {
	g1, g2 := datagen.GreatDividePair{
		Groups: 1500, GroupSize: 10,
		DivisorGroups: 32, DivisorGroupSize: 6,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	for _, workers := range []int{1, 2, 4, 8} {
		node := &plan.ParallelGreatDivide{
			Dividend: plan.NewScan("g1", g1),
			Divisor:  plan.NewScan("g2", g2),
			Workers:  workers,
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(context.Background(), exec.Compile(node, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreconditionC1VsC2 quantifies §5.1.1's remark that
// "testing condition c1 can be expensive, an RDBMS may use a
// stricter condition c2": the cost of deciding Law 2's two
// preconditions as the partitions grow.
func BenchmarkPreconditionC1VsC2(b *testing.B) {
	for _, groups := range []int{500, 5000} {
		r1, r2 := datagen.DividePair{
			Groups: groups, GroupSize: 8, DivisorSize: 8,
			Domain: 64, HitRate: 0.25, Seed: 1,
		}.Generate()
		// Split with a shared boundary group so c2 fails and c1 must
		// do real work.
		sorted := r1.Sorted()
		half := len(sorted) / 2
		lo := relation.New(r1.Schema())
		hi := relation.New(r1.Schema())
		for i, t := range sorted {
			if i <= half {
				lo.Insert(t)
			}
			if i >= half {
				hi.Insert(t)
			}
		}
		b.Run(fmt.Sprintf("c2/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				laws.C2(lo, hi, r2)
			}
		})
		b.Run(fmt.Sprintf("c1/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				laws.C1(lo, hi, r2)
			}
		})
	}
}

// BenchmarkOptimizer measures the rewriter itself: plan traversal
// with schema-only rules vs with data-dependent preconditions
// enabled.
func BenchmarkOptimizer(b *testing.B) {
	s, _ := scenarios.ByName("Law 9")
	inner := s.Build(4000, 3)
	for name, allow := range map[string]bool{"catalog-only": false, "data-dependent": true} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				optimizer.Optimize(inner, optimizer.Options{AllowDataDependent: allow})
			}
		})
	}
}

// BenchmarkTupleKey contrasts the two tuple-identity encodings: the
// allocating injective string key and the incremental 64-bit hash
// the engine's hash operators now run on.
func BenchmarkTupleKey(b *testing.B) {
	t := relation.Tuple{
		value.Int(123456), value.String("supplier-42"),
		value.Float(3.25), value.Bool(true),
	}
	b.Run("string-key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.Key()
		}
	})
	b.Run("hash64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.Hash64()
		}
	})
	pos := []int{0, 2}
	b.Run("string-key-proj", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.Project(pos).Key()
		}
	})
	b.Run("hash64-proj", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.Hash64Proj(pos)
		}
	})
}

// BenchmarkRelationInsert measures set-semantics insertion through
// the hashkey dedup table: fresh tuples (cloned and owned) and the
// duplicate-heavy re-insert path that allocates nothing.
func BenchmarkRelationInsert(b *testing.B) {
	const rows = 4096
	sch := schema.New("a", "b", "c")
	tuples := make([]relation.Tuple, rows)
	for i := range tuples {
		tuples[i] = relation.Tuple{
			value.Int(int64(i)), value.String("grp"), value.Int(int64(i % 7)),
		}
	}
	b.Run("insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := relation.New(sch)
			for _, t := range tuples {
				r.Insert(t)
			}
		}
	})
	b.Run("insert-owned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := relation.New(sch)
			for _, t := range tuples {
				r.InsertOwned(t)
			}
		}
	})
	b.Run("insert-dup", func(b *testing.B) {
		b.ReportAllocs()
		r := relation.New(sch)
		for _, t := range tuples {
			r.InsertOwned(t)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Insert(tuples[i%rows])
		}
	})
	b.Run("contains", func(b *testing.B) {
		b.ReportAllocs()
		r := relation.New(sch)
		for _, t := range tuples {
			r.InsertOwned(t)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !r.Contains(tuples[i%rows]) {
				b.Fatal("missing tuple")
			}
		}
	})
}

// BenchmarkParallelDivideFirstRow measures time-to-first-row of the
// streaming exchange: compile, Open (which materializes the inputs,
// partitions, and launches the workers), and one Next. Before the
// pipelined exchange this paid for the full quotient of every
// partition inside Open; now it returns as soon as the first
// partition resolves, with the other workers parked on the bounded
// channel and torn down by Close.
func BenchmarkParallelDivideFirstRow(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 4000, GroupSize: 10, DivisorSize: 12,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	for _, algo := range []division.Algorithm{division.AlgoHash, division.AlgoMaier} {
		for _, workers := range []int{1, 2, 4, 8} {
			node := &plan.ParallelDivide{
				Dividend: plan.NewScan("r1", r1),
				Divisor:  plan.NewScan("r2", r2),
				Algo:     algo, Workers: workers,
			}
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					it := exec.CompileWith(node, nil, exec.CompileOptions{ExchangeBuffer: 1})
					if err := it.Open(context.Background()); err != nil {
						b.Fatal(err)
					}
					if _, ok, err := it.Next(); err != nil || !ok {
						b.Fatalf("Next = (%t, %v)", ok, err)
					}
					if err := it.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelGreatDivideFirstRow is the Law 13 exchange's
// time-to-first-row; see BenchmarkParallelDivideFirstRow.
func BenchmarkParallelGreatDivideFirstRow(b *testing.B) {
	g1, g2 := datagen.GreatDividePair{
		Groups: 1500, GroupSize: 10,
		DivisorGroups: 32, DivisorGroupSize: 6,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	for _, workers := range []int{1, 2, 4, 8} {
		node := &plan.ParallelGreatDivide{
			Dividend: plan.NewScan("g1", g1),
			Divisor:  plan.NewScan("g2", g2),
			Workers:  workers,
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it := exec.CompileWith(node, nil, exec.CompileOptions{ExchangeBuffer: 1})
				if err := it.Open(context.Background()); err != nil {
					b.Fatal(err)
				}
				if _, ok, err := it.Next(); err != nil || !ok {
					b.Fatalf("Next = (%t, %v)", ok, err)
				}
				if err := it.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelDividePeakAlloc reports the live heap held while
// a parallel division is mid-stream (after the first row, GC
// forced): the streaming exchange holds the partitioned inputs plus
// one bounded buffer, where the materializing exchange additionally
// held every partition's quotient and the merged copy.
func BenchmarkParallelDividePeakAlloc(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 4000, GroupSize: 10, DivisorSize: 12,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	node := &plan.ParallelDivide{
		Dividend: plan.NewScan("r1", r1),
		Divisor:  plan.NewScan("r2", r2),
		Workers:  4,
	}
	var ms runtime.MemStats
	var total float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := exec.CompileWith(node, nil, exec.CompileOptions{ExchangeBuffer: 1})
		if err := it.Open(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := it.Next(); err != nil || !ok {
			b.Fatalf("Next = (%t, %v)", ok, err)
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		total += float64(ms.HeapAlloc)
		if err := it.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(total/float64(b.N), "live-B")
}

// BenchmarkTopK contrasts the fused TopK operator with the unfused
// Limit-over-Sort pipeline it replaces: same input, same keys, same
// k — the bounded heap touches every tuple once and holds k live,
// where the sort materializes and orders the whole input.
func BenchmarkTopK(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 4000, GroupSize: 10, DivisorSize: 12,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	div := &plan.Divide{Dividend: plan.NewScan("r1", r1), Divisor: plan.NewScan("r2", r2)}
	keys := []plan.SortKey{{Attr: div.Schema().Attrs()[0], Desc: true}}
	for _, k := range []int64{1, 10, 100} {
		fused := &plan.TopK{Input: div, Keys: keys, K: k}
		unfused := &plan.Limit{Input: &plan.Sort{Input: div, Keys: keys}, N: k}
		b.Run(fmt.Sprintf("topk/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Drain(context.Background(), exec.Compile(fused, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sort-limit/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Drain(context.Background(), exec.Compile(unfused, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrderByLimitFirstRow measures first-row latency of
// ORDER BY + LIMIT 1 over a parallel division across worker counts:
// the order-aware exchange runs one bounded top-1 heap per partition
// and merges, so the first (and only) row costs the division itself
// plus an O(workers) merge — never a quotient materialization.
func BenchmarkOrderByLimitFirstRow(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 4000, GroupSize: 10, DivisorSize: 12,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	div := &plan.Divide{Dividend: plan.NewScan("r1", r1), Divisor: plan.NewScan("r2", r2)}
	keys := []plan.SortKey{{Attr: div.Schema().Attrs()[0]}}
	for _, workers := range []int{1, 2, 4, 8} {
		var node plan.Node = &plan.TopK{Input: div, Keys: keys, K: 1}
		if workers >= 2 {
			node = &plan.TopK{
				Input: &plan.ParallelDivide{
					Dividend: div.Dividend, Divisor: div.Divisor, Workers: workers,
				},
				Keys: keys, K: 1,
			}
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it := exec.CompileWith(node, nil, exec.CompileOptions{ExchangeBuffer: 1})
				if err := it.Open(context.Background()); err != nil {
					b.Fatal(err)
				}
				if _, ok, err := it.Next(); err != nil || !ok {
					b.Fatalf("Next = (%t, %v)", ok, err)
				}
				if err := it.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopKPeakAlloc reports the live heap held mid-stream
// (after the first row, GC forced) by the order-aware exchange: the
// partitioned inputs plus O(k·workers) retained tuples — the
// acceptance measurement that the per-partition bound keeps the
// quotient unmaterialized. Compare against
// BenchmarkParallelDividePeakAlloc, the unordered exchange on the
// same inputs.
func BenchmarkTopKPeakAlloc(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 4000, GroupSize: 10, DivisorSize: 12,
		Domain: 200, HitRate: 0.25, Seed: 1,
	}.Generate()
	div := &plan.Divide{Dividend: plan.NewScan("r1", r1), Divisor: plan.NewScan("r2", r2)}
	node := &plan.TopK{
		Input: &plan.ParallelDivide{
			Dividend: div.Dividend, Divisor: div.Divisor, Workers: 4,
		},
		Keys: []plan.SortKey{{Attr: div.Schema().Attrs()[0]}},
		K:    10,
	}
	var ms runtime.MemStats
	var total float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := exec.CompileWith(node, nil, exec.CompileOptions{ExchangeBuffer: 1})
		if err := it.Open(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := it.Next(); err != nil || !ok {
			b.Fatalf("Next = (%t, %v)", ok, err)
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		total += float64(ms.HeapAlloc)
		if err := it.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(total/float64(b.N), "live-B")
}

// BenchmarkQueryLimitOne measures the end-to-end early-exit path
// through the public API: SELECT … LIMIT 1 over a parallel division,
// parse to teardown. The limited query must not pay for the full
// quotient.
func BenchmarkQueryLimitOne(b *testing.B) {
	supplies, parts := datagen.SuppliersParts{
		Suppliers: 2000, Parts: 60, Colors: 5, AvgSupplied: 30, Seed: 3,
	}.Generate()
	db := Open(WithWorkers(4), WithParallelThreshold(1), WithExchangeBuffer(1))
	db.MustRegister("supplies", MustNewRelation(supplies.Schema().Attrs(), supplies.Rows()))
	db.MustRegister("parts", MustNewRelation(parts.Schema().Attrs(), parts.Rows()))
	q := `SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#`
	for _, tc := range []struct{ name, text string }{
		{"limit-1", q + " LIMIT 1"},
		{"full", q},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := db.Query(context.Background(), tc.text)
				if err != nil {
					b.Fatal(err)
				}
				for rows.Next() {
				}
				if err := rows.Close(); err != nil {
					b.Fatal(err)
				}
				if err := rows.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchVsTuple pairs the tuple-at-a-time Volcano path with
// the vectorized batch path per operator class: the streaming trio
// (scan, filter, project) where the per-Next interface overhead
// dominates, the blocking hash-division drains, the parallel
// exchange, ordered operators, and — since PR 7 — the probe-side
// operators (hash join, semijoin, set ops, product, theta join,
// merge division), whose probe phases stream whole input batches
// through batched hash-table lookups instead of per-tuple Next.
func BenchmarkBatchVsTuple(b *testing.B) {
	r1, r2 := datagen.DividePair{
		Groups: 2000, GroupSize: 4, DivisorSize: 4,
		Domain: 40, HitRate: 0.9, Seed: 11,
	}.Generate()
	g1, g2 := datagen.GreatDividePair{
		Groups: 2000, GroupSize: 4, DivisorGroups: 4, DivisorGroupSize: 4,
		Domain: 40, HitRate: 0.9, Seed: 11,
	}.Generate()
	r1s := plan.NewScan("r1", r1)
	r2s := plan.NewScan("r2", r2)
	u1, _ := datagen.DividePair{
		Groups: 2000, GroupSize: 4, DivisorSize: 4,
		Domain: 40, HitRate: 0.9, Seed: 13,
	}.Generate()
	// Join build side: (b, c) covering half the b domain, so the
	// probe phase mixes hits and misses.
	jr := relation.New(schema.New("b", "c"))
	for i := 0; i < 20; i++ {
		jr.Insert(relation.Tuple{value.Int(int64(i)), value.Int(int64(i % 3))})
	}
	jrs := plan.NewScan("jr", jr)
	// Product right side: small and schema-disjoint from r1.
	pr := relation.New(schema.New("d"))
	for i := 0; i < 2; i++ {
		pr.Insert(relation.Tuple{value.Int(int64(i))})
	}
	classes := []struct {
		name string
		node plan.Node
	}{
		{"scan", r1s},
		{"filter", &plan.Select{Input: r1s, Pred: pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(1000))}},
		{"project", &plan.Project{Input: r1s, Attrs: []string{"b"}}},
		{"pipeline", &plan.Limit{
			Input: &plan.Project{
				Input: &plan.Select{Input: r1s, Pred: pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(100))},
				Attrs: []string{"a"},
			},
			N: 500,
		}},
		{"hash-divide", &plan.Divide{Dividend: r1s, Divisor: r2s}},
		{"merge-divide", &plan.Divide{Dividend: r1s, Divisor: r2s, Algo: division.AlgoMergeSort}},
		{"great-divide", &plan.GreatDivide{Dividend: plan.NewScan("g1", g1), Divisor: plan.NewScan("g2", g2)}},
		{"parallel-divide", &plan.ParallelDivide{Dividend: r1s, Divisor: r2s, Workers: 4}},
		{"topk", &plan.TopK{Input: r1s, Keys: []plan.SortKey{{Attr: "b"}, {Attr: "a", Desc: true}}, K: 100}},
		{"union", plan.Union(r1s, plan.NewScan("u1", u1))},
		{"intersect", plan.Intersect(r1s, plan.NewScan("u1", u1))},
		{"hash-join", &plan.Join{Left: r1s, Right: jrs}},
		{"semijoin", &plan.SemiJoin{Left: r1s, Right: jrs}},
		{"product", &plan.Product{Left: r1s, Right: plan.NewScan("pr", pr)}},
	}
	for _, c := range classes {
		for _, mode := range []struct {
			name  string
			batch exec.BatchMode
		}{
			{"tuple", exec.BatchOff},
			{"batch", exec.BatchForce},
		} {
			b.Run(c.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					it := exec.CompileWith(c.node, nil, exec.CompileOptions{Batch: mode.batch})
					if _, err := exec.Drain(context.Background(), it); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
