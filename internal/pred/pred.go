// Package pred provides the predicate ASTs used in selections and
// theta-joins. Unlike opaque func(Tuple) bool predicates, these ASTs
// expose the set of attributes they reference, which the rewrite laws
// require: Law 3 applies only to predicates p(A) over quotient
// attributes, Law 4 to predicates p(B) over divisor attributes, etc.
package pred

import (
	"fmt"
	"sort"
	"strings"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// Op is a comparison operator.
type Op uint8

// The comparison operators.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Negate returns the complementary operator: ¬(a < b) is a >= b.
func (o Op) Negate() Op {
	switch o {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	default:
		panic(fmt.Sprintf("pred: negate of invalid op %d", uint8(o)))
	}
}

// apply evaluates the operator on two values using the total order.
// Eq/Ne use strict Equal-by-comparison semantics (numeric 2 == 2.0).
func (o Op) apply(a, b value.Value) bool {
	c := value.Compare(a, b)
	switch o {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	default:
		panic(fmt.Sprintf("pred: invalid op %d", uint8(o)))
	}
}

// Operand is an attribute reference or a constant in a comparison.
type Operand struct {
	Attr  string      // attribute name if IsAttr
	Const value.Value // constant value otherwise
	IsAtt bool
}

// Attr returns an attribute operand.
func Attr(name string) Operand { return Operand{Attr: name, IsAtt: true} }

// Const returns a constant operand.
func Const(v value.Value) Operand { return Operand{Const: v} }

// ConstInt returns an integer constant operand.
func ConstInt(i int64) Operand { return Const(value.Int(i)) }

// ConstString returns a string constant operand.
func ConstString(s string) Operand { return Const(value.String(s)) }

func (o Operand) eval(t relation.Tuple, sch schema.Schema) value.Value {
	if !o.IsAtt {
		return o.Const
	}
	return t[sch.MustIndex(o.Attr)]
}

// String renders the operand.
func (o Operand) String() string {
	if o.IsAtt {
		return o.Attr
	}
	if o.Const.Kind() == value.KindString {
		return "'" + o.Const.String() + "'"
	}
	return o.Const.String()
}

// Predicate is a boolean condition over a tuple.
type Predicate interface {
	// Eval evaluates the predicate against a tuple with the given
	// schema.
	Eval(t relation.Tuple, sch schema.Schema) bool
	// Attrs returns the sorted, deduplicated attribute names the
	// predicate references.
	Attrs() []string
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// Cmp is a binary comparison, e.g. b < 3 or r1.b = r2.b.
type Cmp struct {
	Left  Operand
	Op    Op
	Right Operand
}

// Compare builds a comparison predicate.
func Compare(left Operand, op Op, right Operand) Cmp {
	return Cmp{Left: left, Op: op, Right: right}
}

// Eval implements Predicate.
func (c Cmp) Eval(t relation.Tuple, sch schema.Schema) bool {
	return c.Op.apply(c.Left.eval(t, sch), c.Right.eval(t, sch))
}

// Attrs implements Predicate.
func (c Cmp) Attrs() []string {
	var out []string
	if c.Left.IsAtt {
		out = append(out, c.Left.Attr)
	}
	if c.Right.IsAtt && (!c.Left.IsAtt || c.Right.Attr != c.Left.Attr) {
		out = append(out, c.Right.Attr)
	}
	sort.Strings(out)
	return out
}

// String implements Predicate.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is a conjunction of predicates. An empty And is true.
type And []Predicate

// Eval implements Predicate.
func (a And) Eval(t relation.Tuple, sch schema.Schema) bool {
	for _, p := range a {
		if !p.Eval(t, sch) {
			return false
		}
	}
	return true
}

// Attrs implements Predicate.
func (a And) Attrs() []string { return mergeAttrs(a) }

// String implements Predicate.
func (a And) String() string { return joinPreds(a, " AND ", "TRUE") }

// Or is a disjunction of predicates. An empty Or is false.
type Or []Predicate

// Eval implements Predicate.
func (o Or) Eval(t relation.Tuple, sch schema.Schema) bool {
	for _, p := range o {
		if p.Eval(t, sch) {
			return true
		}
	}
	return false
}

// Attrs implements Predicate.
func (o Or) Attrs() []string { return mergeAttrs(o) }

// String implements Predicate.
func (o Or) String() string { return joinPreds(o, " OR ", "FALSE") }

// Not negates a predicate.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (n Not) Eval(t relation.Tuple, sch schema.Schema) bool { return !n.P.Eval(t, sch) }

// Attrs implements Predicate.
func (n Not) Attrs() []string { return n.P.Attrs() }

// String implements Predicate.
func (n Not) String() string { return "NOT (" + n.P.String() + ")" }

// Literal is the constant predicate TRUE or FALSE.
type Literal bool

// True and False are the constant predicates.
const (
	True  Literal = true
	False Literal = false
)

// Eval implements Predicate.
func (l Literal) Eval(relation.Tuple, schema.Schema) bool { return bool(l) }

// Attrs implements Predicate.
func (l Literal) Attrs() []string { return nil }

// String implements Predicate.
func (l Literal) String() string {
	if l {
		return "TRUE"
	}
	return "FALSE"
}

// Negate returns ¬p, pushing the negation into comparisons where
// possible so the result stays introspectable.
func Negate(p Predicate) Predicate {
	switch q := p.(type) {
	case Cmp:
		return Cmp{Left: q.Left, Op: q.Op.Negate(), Right: q.Right}
	case Not:
		return q.P
	case Literal:
		return Literal(!bool(q))
	case And:
		out := make(Or, len(q))
		for i, sub := range q {
			out[i] = Negate(sub)
		}
		return out
	case Or:
		out := make(And, len(q))
		for i, sub := range q {
			out[i] = Negate(sub)
		}
		return out
	default:
		return Not{P: p}
	}
}

// OnlyOver reports whether the predicate references attributes only
// from the given set. This is the check "p(X)" in the laws: Law 3
// demands p(A), Law 4 demands p(B).
func OnlyOver(p Predicate, attrs schema.Schema) bool {
	for _, a := range p.Attrs() {
		if !attrs.Contains(a) {
			return false
		}
	}
	return true
}

// Conjuncts flattens nested Ands into a list of conjuncts.
func Conjuncts(p Predicate) []Predicate {
	if a, ok := p.(And); ok {
		var out []Predicate
		for _, sub := range a {
			out = append(out, Conjuncts(sub)...)
		}
		return out
	}
	return []Predicate{p}
}

// EquiPairs extracts the (left, right) attribute pairs if p is a
// conjunction of attribute=attribute comparisons, and reports whether
// it has exactly that shape. Used by the SQL binder to decide whether
// a DIVIDE BY condition denotes a small/great divide (paper §4).
func EquiPairs(p Predicate) (pairs [][2]string, ok bool) {
	for _, c := range Conjuncts(p) {
		cmp, isCmp := c.(Cmp)
		if !isCmp || cmp.Op != Eq || !cmp.Left.IsAtt || !cmp.Right.IsAtt {
			return nil, false
		}
		pairs = append(pairs, [2]string{cmp.Left.Attr, cmp.Right.Attr})
	}
	return pairs, true
}

func mergeAttrs(ps []Predicate) []string {
	set := map[string]struct{}{}
	for _, p := range ps {
		for _, a := range p.Attrs() {
			set[a] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func joinPreds(ps []Predicate, sep, empty string) string {
	if len(ps) == 0 {
		return empty
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}
