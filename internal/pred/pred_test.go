package pred

import (
	"reflect"
	"testing"
	"testing/quick"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

var (
	sch = schema.New("a", "b")
	t12 = relation.Tuple{value.Int(1), value.Int(2)}
	t22 = relation.Tuple{value.Int(2), value.Int(2)}
)

func TestOpString(t *testing.T) {
	want := map[Op]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Op(9): "op(9)"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op(%d).String() = %q want %q", op, op.String(), s)
		}
	}
}

func TestOpNegate(t *testing.T) {
	want := map[Op]Op{Eq: Ne, Ne: Eq, Lt: Ge, Ge: Lt, Gt: Le, Le: Gt}
	for op, neg := range want {
		if op.Negate() != neg {
			t.Errorf("%v.Negate() = %v want %v", op, op.Negate(), neg)
		}
	}
}

func TestOpNegatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Op(77).Negate()
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		p    Predicate
		tpl  relation.Tuple
		want bool
	}{
		{Compare(Attr("a"), Eq, ConstInt(1)), t12, true},
		{Compare(Attr("a"), Eq, ConstInt(1)), t22, false},
		{Compare(Attr("a"), Ne, ConstInt(1)), t22, true},
		{Compare(Attr("a"), Lt, Attr("b")), t12, true},
		{Compare(Attr("a"), Lt, Attr("b")), t22, false},
		{Compare(Attr("a"), Le, Attr("b")), t22, true},
		{Compare(Attr("b"), Gt, ConstInt(1)), t12, true},
		{Compare(Attr("b"), Ge, ConstInt(2)), t12, true},
		{Compare(ConstString("x"), Eq, ConstString("x")), t12, true},
	}
	for _, tc := range cases {
		if got := tc.p.Eval(tc.tpl, sch); got != tc.want {
			t.Errorf("%s on %v = %t want %t", tc.p, tc.tpl, got, tc.want)
		}
	}
}

func TestCmpAttrs(t *testing.T) {
	cases := []struct {
		p    Predicate
		want []string
	}{
		{Compare(Attr("b"), Lt, Attr("a")), []string{"a", "b"}},
		{Compare(Attr("a"), Eq, Attr("a")), []string{"a"}},
		{Compare(Attr("a"), Eq, ConstInt(3)), []string{"a"}},
		{Compare(ConstInt(1), Eq, ConstInt(2)), nil},
	}
	for _, tc := range cases {
		if got := tc.p.Attrs(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s Attrs = %v want %v", tc.p, got, tc.want)
		}
	}
}

func TestAndOrNotLiteral(t *testing.T) {
	aLt2 := Compare(Attr("a"), Lt, ConstInt(2))
	bEq2 := Compare(Attr("b"), Eq, ConstInt(2))
	if !(And{aLt2, bEq2}).Eval(t12, sch) {
		t.Error("And true case")
	}
	if (And{aLt2, bEq2}).Eval(t22, sch) {
		t.Error("And false case")
	}
	if !(And{}).Eval(t22, sch) {
		t.Error("empty And is TRUE")
	}
	if !(Or{aLt2, Compare(Attr("a"), Eq, ConstInt(2))}).Eval(t22, sch) {
		t.Error("Or true case")
	}
	if (Or{}).Eval(t12, sch) {
		t.Error("empty Or is FALSE")
	}
	if (Not{aLt2}).Eval(t12, sch) || !(Not{aLt2}).Eval(t22, sch) {
		t.Error("Not wrong")
	}
	if !True.Eval(t12, sch) || False.Eval(t12, sch) {
		t.Error("literals wrong")
	}
	if True.String() != "TRUE" || False.String() != "FALSE" {
		t.Error("literal strings")
	}
	if got := (And{aLt2, bEq2}).Attrs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("And Attrs = %v", got)
	}
	if (Not{aLt2}).String() != "NOT (a < 2)" {
		t.Errorf("Not String = %q", (Not{aLt2}).String())
	}
	if (And{}).String() != "TRUE" || (Or{}).String() != "FALSE" {
		t.Error("empty junction strings")
	}
}

func TestNegate(t *testing.T) {
	aLt2 := Compare(Attr("a"), Lt, ConstInt(2))
	bEq2 := Compare(Attr("b"), Eq, ConstInt(2))
	tuples := []relation.Tuple{t12, t22, {value.Int(5), value.Int(0)}}
	preds := []Predicate{
		aLt2, bEq2,
		And{aLt2, bEq2},
		Or{aLt2, bEq2},
		Not{aLt2},
		True, False,
		Not{And{aLt2, Not{bEq2}}},
	}
	for _, p := range preds {
		n := Negate(p)
		for _, tpl := range tuples {
			if p.Eval(tpl, sch) == n.Eval(tpl, sch) {
				t.Errorf("Negate(%s) not complementary on %v", p, tpl)
			}
		}
	}
	// Negation of a comparison stays a comparison (introspectable).
	if _, ok := Negate(aLt2).(Cmp); !ok {
		t.Error("Negate(Cmp) should remain Cmp")
	}
	// Double negation unwraps.
	if _, ok := Negate(Not{P: opaque{}}).(opaque); !ok {
		t.Error("Negate(Not{p}) should unwrap to p")
	}
	// Unknown predicate types get wrapped.
	if _, ok := Negate(opaque{}).(Not); !ok {
		t.Error("Negate(opaque) should wrap in Not")
	}
}

// opaque is a Predicate implementation outside the package's known
// cases, to exercise Negate's default branch.
type opaque struct{}

func (opaque) Eval(relation.Tuple, schema.Schema) bool { return true }
func (opaque) Attrs() []string                         { return nil }
func (opaque) String() string                          { return "opaque" }

func TestOnlyOver(t *testing.T) {
	p := Compare(Attr("b"), Lt, ConstInt(3))
	if !OnlyOver(p, schema.New("b")) {
		t.Error("p(b) is over {b}")
	}
	if OnlyOver(p, schema.New("a")) {
		t.Error("p(b) is not over {a}")
	}
	if !OnlyOver(True, schema.New()) {
		t.Error("TRUE is over any set")
	}
	mixed := And{p, Compare(Attr("a"), Eq, ConstInt(1))}
	if OnlyOver(mixed, schema.New("b")) {
		t.Error("mixed predicate is not only over {b}")
	}
	if !OnlyOver(mixed, schema.New("a", "b", "c")) {
		t.Error("mixed predicate is over superset")
	}
}

func TestConjuncts(t *testing.T) {
	p1 := Compare(Attr("a"), Eq, ConstInt(1))
	p2 := Compare(Attr("b"), Eq, ConstInt(2))
	p3 := Compare(Attr("a"), Lt, Attr("b"))
	nested := And{p1, And{p2, p3}}
	got := Conjuncts(nested)
	if len(got) != 3 {
		t.Fatalf("Conjuncts len = %d", len(got))
	}
	if got := Conjuncts(p1); len(got) != 1 {
		t.Errorf("Conjuncts of atom = %v", got)
	}
}

func TestEquiPairs(t *testing.T) {
	eq1 := Compare(Attr("x"), Eq, Attr("y"))
	eq2 := Compare(Attr("u"), Eq, Attr("v"))
	pairs, ok := EquiPairs(And{eq1, eq2})
	if !ok || len(pairs) != 2 || pairs[0] != [2]string{"x", "y"} || pairs[1] != [2]string{"u", "v"} {
		t.Errorf("EquiPairs = %v, %t", pairs, ok)
	}
	if _, ok := EquiPairs(Compare(Attr("x"), Lt, Attr("y"))); ok {
		t.Error("non-equi comparison should not be equi pairs")
	}
	if _, ok := EquiPairs(Compare(Attr("x"), Eq, ConstInt(1))); ok {
		t.Error("attr=const should not be equi pairs")
	}
	if _, ok := EquiPairs(Or{eq1, eq2}); ok {
		t.Error("disjunction should not be equi pairs")
	}
}

func TestOperandString(t *testing.T) {
	if Attr("a").String() != "a" {
		t.Error("Attr String")
	}
	if ConstInt(3).String() != "3" {
		t.Error("int const String")
	}
	if ConstString("blue").String() != "'blue'" {
		t.Error("string const should be quoted")
	}
}

func TestDeMorganProperty(t *testing.T) {
	// Negate must satisfy De Morgan over random comparison forests.
	f := func(av, bv int8, lim int8) bool {
		tpl := relation.Tuple{value.Int(int64(av)), value.Int(int64(bv))}
		p := And{
			Compare(Attr("a"), Lt, ConstInt(int64(lim))),
			Or{
				Compare(Attr("b"), Ge, ConstInt(int64(lim))),
				Compare(Attr("a"), Eq, Attr("b")),
			},
		}
		return Negate(p).Eval(tpl, sch) == !p.Eval(tpl, sch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
