package hashkey

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSum64StringMatchesSum64 pins the contract the engine relies on:
// the string and byte-slice kernels agree on every input, across all
// tail lengths (0–7 residual bytes) and chunk counts.
func TestSum64StringMatchesSum64(t *testing.T) {
	inputs := []string{"", "a", "divide", "\x00\x01\x02", "longer input with spaces"}
	for n := 0; n <= 40; n++ {
		inputs = append(inputs, strings.Repeat("x", n), "supplier-000042"[:min(n, 15)])
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		inputs = append(inputs, string(b))
	}
	for _, s := range inputs {
		if got, want := Sum64String(s), Sum64([]byte(s)); got != want {
			t.Errorf("Sum64String(%q) = %#x, Sum64 of same bytes = %#x", s, got, want)
		}
		if AddString(12345, s) != AddBytes(12345, []byte(s)) {
			t.Errorf("AddString and AddBytes disagree on %q under a nonzero seed", s)
		}
	}
}

// TestWideKernelSeparates proves the length-fold tail keeps the
// classic word-kernel confusables apart: zero-padding, chunk-boundary
// splits, and permuted chunk contents.
func TestWideKernelSeparates(t *testing.T) {
	pairs := [][2]string{
		{"", "\x00"},
		{"a", "a\x00"},
		{"a\x00\x00", "a\x00"},
		{"12345678", "123456789"[:8] + "\x00"},
		{"abcdefgh", "abcdefg"},
		{"abcdefghi", "abcdefgh"},
		{"abcdefgh12345678", "12345678abcdefgh"},
	}
	for _, p := range pairs {
		if Sum64String(p[0]) == Sum64String(p[1]) {
			t.Errorf("Sum64String(%q) == Sum64String(%q)", p[0], p[1])
		}
	}
	// Distinctness over a dense corpus: short strings and all
	// single-byte perturbations of an 8-byte block.
	seen := map[uint64]string{}
	check := func(s string) {
		h := Sum64String(s)
		if prev, dup := seen[h]; dup && prev != s {
			t.Errorf("Sum64String collision: %q and %q both hash to %#x", prev, s, h)
		}
		seen[h] = s
	}
	for i := 0; i < 256; i++ {
		check(string([]byte{byte(i)}))
		check("prefix--" + string([]byte{byte(i)}))
	}
	for pos := 0; pos < 8; pos++ {
		for bit := 0; bit < 8; bit++ {
			b := []byte("abcdefgh")
			b[pos] ^= 1 << bit
			check(string(b))
		}
	}
}

func TestAddUint64Mixes(t *testing.T) {
	// The word mixer must be deterministic, sensitive to the running
	// state, and avalanche single-bit input differences into the low
	// bits (the Table derives slots from them).
	u := uint64(0x0123456789abcdef)
	if AddUint64(New(), u) != AddUint64(New(), u) {
		t.Error("AddUint64 is not deterministic")
	}
	if AddUint64(New(), u) == AddUint64(AddByte(New(), 1), u) {
		t.Error("AddUint64 ignores the running hash state")
	}
	const low = 0xffff
	seen := map[uint64]uint64{}
	for bit := 0; bit < 64; bit++ {
		h := AddUint64(New(), uint64(1)<<bit)
		if prev, dup := seen[h&low]; dup {
			t.Errorf("inputs 1<<%d and %#x share low bits %#x", bit, prev, h&low)
		}
		seen[h&low] = uint64(1) << bit
	}
}

// tableModel drives a Table alongside a reference map from string
// keys to values, verifying candidates the way real callers do.
type tableModel struct {
	table Table
	keys  []string
}

func (m *tableModel) insert(k string) (int, bool) {
	p := m.table.Probe(Sum64String(k))
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		if m.keys[v] == k {
			return v, false
		}
	}
	p.Insert(len(m.keys))
	m.keys = append(m.keys, k)
	return len(m.keys) - 1, true
}

func (m *tableModel) lookup(k string) int {
	p := m.table.Probe(Sum64String(k))
	for {
		v, ok := p.Next()
		if !ok {
			return -1
		}
		if m.keys[v] == k {
			return v
		}
	}
}

func TestTableInsertLookupGrowth(t *testing.T) {
	var m tableModel
	const n = 5000
	for i := 0; i < n; i++ {
		k := string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)) + "-" + itoa(i)
		if _, created := m.insert(k); !created {
			t.Fatalf("key %q unexpectedly present", k)
		}
		if _, created := m.insert(k); created {
			t.Fatalf("key %q inserted twice", k)
		}
	}
	if m.table.Len() != n {
		t.Fatalf("Len = %d, want %d", m.table.Len(), n)
	}
	for i := 0; i < n; i++ {
		k := string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)) + "-" + itoa(i)
		if v := m.lookup(k); v < 0 || m.keys[v] != k {
			t.Fatalf("lookup(%q) = %d", k, v)
		}
	}
	if m.lookup("missing") != -1 {
		t.Error("lookup of a missing key succeeded")
	}
}

func TestTableZeroValueAndReset(t *testing.T) {
	var m tableModel
	if m.lookup("x") != -1 {
		t.Error("zero table claims to contain a key")
	}
	m.insert("x")
	if m.lookup("x") != 0 {
		t.Error("insert into zero table lost the key")
	}
	m.table.Reset()
	m.keys = nil
	if m.lookup("x") != -1 || m.table.Len() != 0 {
		t.Error("Reset did not clear the table")
	}
	m.insert("y")
	if m.lookup("y") != 0 {
		t.Error("insert after Reset failed")
	}
}

func TestTableUnderForcedCollisions(t *testing.T) {
	restore := SetMaskForTesting(0x3) // 4 distinct hashes for everything
	defer restore()
	var m tableModel
	rng := rand.New(rand.NewSource(7))
	ref := map[string]int{}
	for i := 0; i < 800; i++ {
		k := itoa(rng.Intn(200))
		id, created := m.insert(k)
		if want, ok := ref[k]; ok {
			if created || id != want {
				t.Fatalf("key %q: got (%d,%v), want (%d,false)", k, id, created, want)
			}
		} else {
			if !created {
				t.Fatalf("new key %q reported as duplicate", k)
			}
			ref[k] = id
		}
	}
	for k, want := range ref {
		if got := m.lookup(k); got != want {
			t.Fatalf("lookup(%q) = %d, want %d", k, got, want)
		}
	}
	if m.table.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.table.Len(), len(ref))
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Set(i) {
			t.Errorf("bit %d already set", i)
		}
		if b.Set(i) {
			t.Errorf("bit %d set twice", i)
		}
	}
}

// benchHashSink defeats dead-code elimination in the hash benchmarks.
var benchHashSink uint64

// BenchmarkHashString times the wide string kernel across tail-only,
// chunk+tail, and multi-chunk inputs.
func BenchmarkHashString(b *testing.B) {
	for _, tc := range []struct{ name, s string }{
		{"7b", "sup-001"},
		{"15b", "supplier-000042"},
		{"32b", strings.Repeat("supplier", 4)},
		{"64b", strings.Repeat("supplier", 8)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += Sum64String(tc.s)
			}
			benchHashSink = sink
		})
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
