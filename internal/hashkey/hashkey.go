// Package hashkey is the engine's 64-bit hashing layer: FNV-1a
// primitives that fold a tuple's injective key encoding into a uint64
// without materializing it, an open-addressed hash table that maps
// hashes to small integer handles, and the bitmap used by the
// hash-division operators.
//
// The table never stores keys. Callers keep their own tuple storage,
// store indexes into it as table values, and verify every candidate a
// probe returns against that storage, so results stay exact even when
// hashes collide. SetMaskForTesting degrades every hash to a few bits
// to force collisions and exercise that verification.
package hashkey

import "sync/atomic"

// FNV-1a parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// 64-bit finalizer constants (Murmur3 fmix64), used by the
// word-at-a-time mixer in AddUint64.
const (
	mix64a = 0xff51afd7ed558ccd
	mix64b = 0xc4ceb9fe1a85ec53
)

// New returns the FNV-1a offset basis, the initial hash state.
func New() uint64 { return offset64 }

// AddByte folds one byte into h.
func AddByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * prime64 }

// AddUint64 folds a 64-bit payload into h in one multiply–xorshift
// round (the Murmur3 finalizer applied to h^u) instead of eight
// serial AddByte steps. Every numeric tuple field funnels through
// here, so its latency sets the per-row floor of every hash
// operator's probe phase; two data-independent multiplies beat FNV's
// eight dependent ones while mixing at least as well — the finalizer
// avalanches every input bit into every output bit, which the
// open-addressed Table needs because it derives slots from the low
// bits.
func AddUint64(h uint64, u uint64) uint64 {
	h ^= u
	h ^= h >> 33
	h *= mix64a
	h ^= h >> 33
	h *= mix64b
	h ^= h >> 33
	return h
}

// AddString folds the bytes of s into h.
func AddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = AddByte(h, s[i])
	}
	return h
}

// AddBytes folds b into h.
func AddBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = AddByte(h, c)
	}
	return h
}

// Sum64 returns the FNV-1a hash of b.
func Sum64(b []byte) uint64 { return AddBytes(New(), b) }

// Sum64String returns the FNV-1a hash of s, equal to Sum64 of the
// same bytes.
func Sum64String(s string) uint64 { return AddString(New(), s) }

// testMask, when nonzero, is ANDed onto every hash entering a Table,
// collapsing the hash space so collisions become routine. It exists
// only for tests; see SetMaskForTesting.
var testMask atomic.Uint64

// SetMaskForTesting makes every Table degrade hashes to h & m,
// forcing collisions so tests can prove the verification paths keep
// results exact. It returns a function restoring the previous mask.
// Not for concurrent use with other tests mutating the mask.
func SetMaskForTesting(m uint64) (restore func()) {
	old := testMask.Swap(m)
	return func() { testMask.Store(old) }
}

func adjust(h uint64) uint64 {
	if m := testMask.Load(); m != 0 {
		return h & m
	}
	return h
}

const minCap = 16

// Table is an open-addressed, linear-probing hash table mapping
// 64-bit hashes to caller-side integer handles (indexes into the
// caller's storage, at most 1<<31-1). Several entries may share a
// hash: Probe walks all of them and the caller tells equal keys
// apart. The zero Table is empty and ready to use; it grows at 3/4
// load and never shrinks.
type Table struct {
	hashes []uint64
	vals   []int32
	n      int
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// Reset discards all entries, keeping the allocated capacity.
func (t *Table) Reset() {
	for i := range t.vals {
		t.vals[i] = -1
	}
	t.n = 0
}

func (t *Table) alloc(c int) {
	t.hashes = make([]uint64, c)
	t.vals = make([]int32, c)
	for i := range t.vals {
		t.vals[i] = -1
	}
}

// Probe starts a lookup for hash h. Call Next until it reports no
// more candidates; Insert may then add a value under h. Probe and
// Next allocate nothing.
func (t *Table) Probe(h uint64) Probe {
	h = adjust(h)
	p := Probe{t: t, h: h}
	if len(t.vals) > 0 {
		p.i = h & uint64(len(t.vals)-1)
	} else {
		p.empty = true
	}
	return p
}

// Probe is an in-progress lookup over a Table. It is a value type;
// it must not outlive the next Insert on its table.
type Probe struct {
	t     *Table
	h     uint64
	i     uint64
	empty bool // table had no slots when the probe started
}

// Next returns the next candidate value stored under the probed
// hash; ok is false once an empty slot ends the probe. The caller
// must verify the candidate's key, as different keys can hash alike.
func (p *Probe) Next() (val int, ok bool) {
	if p.empty {
		return 0, false
	}
	t := p.t
	mask := uint64(len(t.vals) - 1)
	for {
		v := t.vals[p.i]
		if v < 0 {
			return 0, false
		}
		match := t.hashes[p.i] == p.h
		p.i = (p.i + 1) & mask
		if match {
			return int(v), true
		}
	}
}

// Insert stores val under the probed hash. It must only be called
// after Next has reported no more candidates — the probe then rests
// on an empty slot and the caller has verified the key is absent.
func (p *Probe) Insert(val int) {
	t := p.t
	if (t.n+1)*4 > len(t.vals)*3 {
		t.grow()
		t.insert(p.h, val)
		return
	}
	// Next leaves p.i one past the returned candidate, so the empty
	// slot that ended the probe is p.i itself only when the probe
	// stopped there; re-derive it by walking from p.i (it is empty or
	// the walk is short — Insert is the cold path of a miss).
	i := p.i
	mask := uint64(len(t.vals) - 1)
	for t.vals[i] >= 0 {
		i = (i + 1) & mask
	}
	t.hashes[i] = p.h
	t.vals[i] = int32(val)
	t.n++
}

// insert places (h, val) at the first empty slot of its probe chain.
func (t *Table) insert(h uint64, val int) {
	mask := uint64(len(t.vals) - 1)
	i := h & mask
	for t.vals[i] >= 0 {
		i = (i + 1) & mask
	}
	t.hashes[i] = h
	t.vals[i] = int32(val)
	t.n++
}

func (t *Table) grow() {
	c := len(t.vals) * 2
	if c < minCap {
		c = minCap
	}
	oldH, oldV := t.hashes, t.vals
	t.alloc(c)
	t.n = 0
	for i, v := range oldV {
		if v >= 0 {
			t.insert(oldH[i], int(v))
		}
	}
}

// Bitset is a fixed-size bitmap; hash-division uses one per quotient
// candidate to record which divisor elements the group has covered.
type Bitset []uint64

// NewBitset returns a bitmap holding n bits, all clear.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i and reports whether it was previously clear.
func (b Bitset) Set(i int) bool {
	w, m := i/64, uint64(1)<<(i%64)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}
