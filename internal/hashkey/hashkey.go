// Package hashkey is the engine's 64-bit hashing layer: wide
// (word-at-a-time) primitives that fold a tuple's injective key
// encoding into a uint64 without materializing it, an open-addressed
// hash table that maps hashes to small integer handles, and the
// bitmap used by the hash-division operators.
//
// The table never stores keys. Callers keep their own tuple storage,
// store indexes into it as table values, and verify every candidate a
// probe returns against that storage, so results stay exact even when
// hashes collide. SetMaskForTesting degrades every hash to a few bits
// to force collisions and exercise that verification.
package hashkey

import (
	"encoding/binary"
	"sync/atomic"
)

// offset64 is the FNV-1a offset basis, kept as the initial hash state
// so an empty input hashes to a well-known nonzero constant.
const offset64 = 14695981039346656037

// prime64 is the FNV-1a prime, used only by the byte-at-a-time
// AddByte fallback.
const prime64 = 1099511628211

// 64-bit finalizer constants (Murmur3 fmix64), used by the
// word-at-a-time mixer in AddUint64.
const (
	mix64a = 0xff51afd7ed558ccd
	mix64b = 0xc4ceb9fe1a85ec53
)

// New returns the initial hash state.
func New() uint64 { return offset64 }

// AddByte folds one byte into h (one FNV-1a round). It survives as
// the odd-byte fallback; the hot paths fold whole words through
// AddUint64 instead.
func AddByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * prime64 }

// AddUint64 folds a 64-bit payload into h in one multiply–xorshift
// round (the Murmur3 finalizer applied to h^u) instead of eight
// serial AddByte steps. Every tuple field — and every string's tail
// round — funnels through here, so its latency sets the per-row
// floor of every hash operator's probe phase; two data-independent
// multiplies beat FNV's eight dependent ones while mixing at least
// as well — the finalizer avalanches every input bit into every
// output bit, which the open-addressed Table needs because it
// derives slots from the low bits. (Interior string chunks use the
// cheaper chunkPrime fold; see AddString.)
func AddUint64(h uint64, u uint64) uint64 {
	h ^= u
	h ^= h >> 33
	h *= mix64a
	h ^= h >> 33
	h *= mix64b
	h ^= h >> 33
	return h
}

// chunkPrime is the odd multiplier of the interior chunk fold in
// AddString/AddBytes (2⁶⁴/φ). Because it is odd, each chunk round
// h′ = (h ⊕ chunk)·chunkPrime is a bijection of the state, so no
// entropy is ever lost along a string — two strings with a differing
// chunk keep differing states all the way to the tail round.
const chunkPrime = 0x9E3779B97F4A7C15

// AddString folds the bytes of s into h word-at-a-time: full 8-byte
// little-endian chunks each cost one xor-multiply round, and a single
// length-fold tail round absorbs the remaining 0–7 bytes together
// with the byte length. The interior rounds are deliberately cheaper
// than AddUint64 — a full finalizer per chunk triples the latency
// chain of a long key for avalanche nobody reads, since only the
// final state reaches a Table. The tail round IS a full AddUint64,
// so the returned hash is always finalizer-avalanched no matter how
// the chunks mixed, which the open-addressed Table needs because it
// derives slots from the low bits. Folding the length into the tail
// keeps zero-padding pairs ("a" vs "a\x00") apart: the tail word
// carries the residual bytes in its low 56 bits and len(s) mod 256
// in its top byte, and inputs whose lengths differ by 8 or more
// already differ in chunk count. AddString(h, s) ==
// AddBytes(h, []byte(s)) for equal contents, always.
func AddString(h uint64, s string) uint64 {
	n := len(s)
	for len(s) >= 8 {
		h = (h ^ le64String(s)) * chunkPrime
		s = s[8:]
	}
	var tail uint64
	switch {
	case len(s) >= 4:
		// Two overlapping 4-byte reads cover 4–7 residual bytes
		// without a per-byte loop. Overlapping positions OR equal
		// values, so the packed word reproduces the bytes exactly —
		// injective for each length, and the length byte separates
		// the lengths.
		k := len(s) - 4
		lo := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24
		hi := uint64(s[k]) | uint64(s[k+1])<<8 | uint64(s[k+2])<<16 | uint64(s[k+3])<<24
		tail = lo | hi<<(8*uint(k))
	case len(s) > 0:
		// 1–3 bytes: first, middle, last — distinct packings per
		// length once the length byte is folded in.
		tail = uint64(s[0]) | uint64(s[len(s)/2])<<8 | uint64(s[len(s)-1])<<16
	}
	return AddUint64(h, tail|uint64(n)<<56)
}

// AddBytes folds b into h, chunked and tail-packed exactly like
// AddString.
func AddBytes(h uint64, b []byte) uint64 {
	n := len(b)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * chunkPrime
		b = b[8:]
	}
	var tail uint64
	switch {
	case len(b) >= 4:
		k := len(b) - 4
		lo := uint64(binary.LittleEndian.Uint32(b))
		hi := uint64(binary.LittleEndian.Uint32(b[k:]))
		tail = lo | hi<<(8*uint(k))
	case len(b) > 0:
		tail = uint64(b[0]) | uint64(b[len(b)/2])<<8 | uint64(b[len(b)-1])<<16
	}
	return AddUint64(h, tail|uint64(n)<<56)
}

// le64String reads the first 8 bytes of s as a little-endian word —
// the string twin of binary.LittleEndian.Uint64, written so the
// compiler collapses it to a single load on little-endian targets.
func le64String(s string) uint64 {
	_ = s[7]
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

// Sum64 returns the wide-kernel hash of b.
func Sum64(b []byte) uint64 { return AddBytes(New(), b) }

// Sum64String returns the wide-kernel hash of s, equal to Sum64 of
// the same bytes.
func Sum64String(s string) uint64 { return AddString(New(), s) }

// testMask, when nonzero, is ANDed onto every hash entering a Table,
// collapsing the hash space so collisions become routine. It exists
// only for tests; see SetMaskForTesting.
var testMask atomic.Uint64

// SetMaskForTesting makes every Table degrade hashes to h & m,
// forcing collisions so tests can prove the verification paths keep
// results exact. It returns a function restoring the previous mask.
// Not for concurrent use with other tests mutating the mask.
func SetMaskForTesting(m uint64) (restore func()) {
	old := testMask.Swap(m)
	return func() { testMask.Store(old) }
}

func adjust(h uint64) uint64 {
	if m := testMask.Load(); m != 0 {
		return h & m
	}
	return h
}

const minCap = 16

// Table is an open-addressed, linear-probing hash table mapping
// 64-bit hashes to caller-side integer handles (indexes into the
// caller's storage, at most 1<<31-1). Only the low 32 bits of each
// hash are stored as the slot tag — the low bits also derive the
// slot, so growth re-slots correctly, and a narrower tag merely lets
// the occasional unequal key through to the caller's verification,
// which runs on every candidate anyway. Several entries may share a
// tag: Probe walks all of them and the caller tells equal keys
// apart. The zero Table is empty and ready to use; it grows at 3/4
// load and never shrinks.
type Table struct {
	tags []uint32
	vals []int32
	n    int
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// Bytes returns the heap footprint of the table's backing arrays
// (4 bytes per tag slot + 4 per value slot), for memory-budget
// accounting. It jumps when the table grows and never shrinks, like
// the arrays themselves.
func (t *Table) Bytes() int64 {
	return int64(len(t.tags))*4 + int64(len(t.vals))*4
}

// Reset discards all entries, keeping the allocated capacity.
func (t *Table) Reset() {
	for i := range t.vals {
		t.vals[i] = -1
	}
	t.n = 0
}

func (t *Table) alloc(c int) {
	t.tags = make([]uint32, c)
	t.vals = make([]int32, c)
	for i := range t.vals {
		t.vals[i] = -1
	}
}

// Probe starts a lookup for hash h. Call Next until it reports no
// more candidates; Insert may then add a value under h. Probe and
// Next allocate nothing.
func (t *Table) Probe(h uint64) Probe {
	tag := uint32(adjust(h))
	p := Probe{t: t, tag: tag}
	if len(t.vals) > 0 {
		p.i = uint64(tag) & uint64(len(t.vals)-1)
	} else {
		p.empty = true
	}
	return p
}

// Probe is an in-progress lookup over a Table. It is a value type;
// it must not outlive the next Insert on its table.
type Probe struct {
	t     *Table
	tag   uint32
	i     uint64
	empty bool // table had no slots when the probe started
}

// Next returns the next candidate value stored under the probed
// hash; ok is false once an empty slot ends the probe. The caller
// must verify the candidate's key, as different keys can hash alike.
func (p *Probe) Next() (val int, ok bool) {
	if p.empty {
		return 0, false
	}
	t := p.t
	mask := uint64(len(t.vals) - 1)
	for {
		v := t.vals[p.i]
		if v < 0 {
			return 0, false
		}
		match := t.tags[p.i] == p.tag
		p.i = (p.i + 1) & mask
		if match {
			return int(v), true
		}
	}
}

// Insert stores val under the probed hash. It must only be called
// after Next has reported no more candidates — the probe then rests
// on an empty slot and the caller has verified the key is absent.
func (p *Probe) Insert(val int) {
	t := p.t
	if (t.n+1)*4 > len(t.vals)*3 {
		t.grow()
		t.insert(p.tag, val)
		return
	}
	// Next leaves p.i one past the returned candidate, so the empty
	// slot that ended the probe is p.i itself only when the probe
	// stopped there; re-derive it by walking from p.i (it is empty or
	// the walk is short — Insert is the cold path of a miss).
	i := p.i
	mask := uint64(len(t.vals) - 1)
	for t.vals[i] >= 0 {
		i = (i + 1) & mask
	}
	t.tags[i] = p.tag
	t.vals[i] = int32(val)
	t.n++
}

// insert places (tag, val) at the first empty slot of its probe
// chain.
func (t *Table) insert(tag uint32, val int) {
	mask := uint64(len(t.vals) - 1)
	i := uint64(tag) & mask
	for t.vals[i] >= 0 {
		i = (i + 1) & mask
	}
	t.tags[i] = tag
	t.vals[i] = int32(val)
	t.n++
}

func (t *Table) grow() {
	c := len(t.vals) * 2
	if c < minCap {
		c = minCap
	}
	oldT, oldV := t.tags, t.vals
	t.alloc(c)
	t.n = 0
	for i, v := range oldV {
		if v >= 0 {
			t.insert(oldT[i], int(v))
		}
	}
}

// Bitset is a fixed-size bitmap; hash-division uses one per quotient
// candidate to record which divisor elements the group has covered.
type Bitset []uint64

// NewBitset returns a bitmap holding n bits, all clear.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i and reports whether it was previously clear.
func (b Bitset) Set(i int) bool {
	w, m := i/64, uint64(1)<<(i%64)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}
