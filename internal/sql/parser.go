package sql

import (
	"fmt"
	"strconv"
)

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting with %q", p.cur().Text)
	}
	q.Params = p.params
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	// params counts ? placeholders across the whole statement,
	// assigning source-order ordinals.
	params int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// at reports whether the current token has the given kind and,
// unless text is empty, the given text.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errf("expected %s, found %q", text, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	q.Distinct = p.accept(tokKeyword, "DISTINCT")

	if p.accept(tokSymbol, "*") {
		q.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, *c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: *c}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, perr := strconv.ParseInt(t.Text, 10, 64)
		if perr != nil {
			return nil, p.errf("LIMIT requires a non-negative integer, got %q", t.Text)
		}
		q.Limit = n
		q.HasLimit = true
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseScalar()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.As = t.Text
	}
	return item, nil
}

// parseTableRef parses a table factor followed by zero or more
// DIVIDE BY clauses (left-associative).
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTableFactor()
	if err != nil {
		return nil, err
	}
	for p.at(tokKeyword, "DIVIDE") {
		p.next()
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		right, err := p.parseTableFactor()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &DivideTable{Dividend: left, Divisor: right, On: cond}
	}
	return left, nil
}

func (p *parser) parseTableFactor() (TableRef, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		p.accept(tokKeyword, "AS")
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, fmt.Errorf("sql: derived table requires an alias: %w", err)
		}
		return &SubqueryTable{Query: sub, Alias: alias.Text}, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	bt := &BaseTable{Name: name.Text, Alias: name.Text}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		bt.Alias = alias.Text
	} else if p.at(tokIdent, "") {
		bt.Alias = p.next().Text
	}
	return bt, nil
}

// parseExpr parses OR-level boolean expressions.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BoolOp{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BoolOp{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		if p.at(tokKeyword, "EXISTS") {
			e, err := p.parseExists()
			if err != nil {
				return nil, err
			}
			e.(*ExistsExpr).Negated = true
			return e, nil
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	if p.at(tokKeyword, "EXISTS") {
		return p.parseExists()
	}
	return p.parsePredicate()
}

func (p *parser) parseExists() (Expr, error) {
	if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	sub, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &ExistsExpr{Query: sub}, nil
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.accept(tokSymbol, "(") {
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind != tokSymbol {
		return nil, p.errf("expected comparison operator, found %q", t.Text)
	}
	switch t.Text {
	case "=", "<>", "<", "<=", ">", ">=":
		p.next()
	default:
		return nil, p.errf("expected comparison operator, found %q", t.Text)
	}
	right, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	return &Comparison{Left: left, Op: t.Text, Right: right}, nil
}

// parseScalar parses a column reference, literal, placeholder, or
// aggregate call.
func (p *parser) parseScalar() (Expr, error) {
	t := p.cur()
	if t.Kind == tokSymbol && t.Text == "?" {
		p.next()
		ph := &Placeholder{Ordinal: p.params}
		p.params++
		return ph, nil
	}
	switch t.Kind {
	case tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
			return &Literal{Int: i, Kind: 'i'}, nil
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Literal{Float: f, Kind: 'f'}, nil
	case tokString:
		p.next()
		return &Literal{Str: t.Text, Kind: 's'}, nil
	case tokIdent:
		// Aggregate call?
		if isAggName(t.Text) && p.toks[p.pos+1].Kind == tokSymbol && p.toks[p.pos+1].Text == "(" {
			return p.parseAggCall()
		}
		return p.parseColumnRef()
	default:
		return nil, p.errf("expected scalar expression, found %q", t.Text)
	}
}

func isAggName(s string) bool {
	switch s {
	case "count", "COUNT", "Count", "sum", "SUM", "min", "MIN", "max", "MAX", "avg", "AVG":
		return true
	}
	return false
}

func (p *parser) parseAggCall() (Expr, error) {
	name := p.next().Text
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	call := &AggCall{Func: lowerASCII(name)}
	if p.accept(tokSymbol, "*") {
		call.Star = true
	} else {
		col, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		call.Arg = col
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) parseColumnRef() (*ColumnRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ref := &ColumnRef{Column: t.Text}
	if p.accept(tokSymbol, ".") {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref.Table = t.Text
		ref.Column = col.Text
	}
	return ref, nil
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
