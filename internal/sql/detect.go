package sql

import (
	"fmt"

	"divlaws/internal/plan"
)

// DetectDivision recognizes the universal-quantification idioms of
// the paper's §4 — doubly nested NOT EXISTS subqueries — and
// rewrites them to division plans. The section remarks that "it is
// not simple to devise a query-rewriting algorithm for a query
// optimizer that is able to detect those existential quantification
// constructs that can be replaced by a (great) divide operator.
// Only if the appropriate joins between inner and outer query are
// present does the query solve a real set containment problem."
// This function is that algorithm, for two canonical patterns.
//
// Great-divide pattern (the paper's Q3):
//
//	SELECT DISTINCT <A ∪ C columns>
//	FROM t1 AS x, t2 AS y
//	WHERE NOT EXISTS (
//	    SELECT * FROM t2 AS y2
//	    WHERE y2.C = y.C [AND …]          -- group correlation
//	      AND NOT EXISTS (
//	        SELECT * FROM t1 AS x2
//	        WHERE x2.B = y2.B [AND …]     -- element join
//	          AND x2.A = x.A [AND …]))    -- candidate correlation
//
// rewrites to t1 ÷* t2 when the A/B columns cover all of t1 and the
// B/C columns cover all of t2 (otherwise the NOT EXISTS groups
// differently than division would, and the detector declines).
//
// Small-divide pattern (the paper's Q2 expressed with NOT EXISTS,
// e.g. "suppliers that supply all blue parts"):
//
//	SELECT DISTINCT <A columns>
//	FROM t1 AS x
//	WHERE NOT EXISTS (
//	    SELECT * FROM t2 AS y
//	    WHERE <restrictions on y only>
//	      AND NOT EXISTS (
//	        SELECT * FROM t1 AS x2
//	        WHERE x2.B = y.B [AND …]
//	          AND x2.A = x.A [AND …]))
//
// rewrites to t1 ÷ πB(σ<restrictions>(t2)).
//
// The detector is deliberately conservative: every predicate in the
// chain must have exactly the shapes above; inequalities between
// tables, disjunctions, extra tables, or partial column coverage
// cause it to decline rather than risk a wrong rewrite.
func (db *DB) DetectDivision(q *Query) (plan.Node, bool) {
	node, err := db.tryDetectDivision(q)
	if err != nil || node == nil {
		return nil, false
	}
	// Preserve the outer query's ORDER BY and LIMIT on the detected
	// plan, exactly as bindQuery layers them on the nested-iteration
	// fallback: Sort below, Limit above (fused to TopK by the
	// optimizer). A sort column outside the quotient schema — or a
	// negative limit — declines the rewrite so the fallback path
	// reports its usual behavior.
	if q.HasLimit && q.Limit < 0 {
		return nil, false
	}
	if len(q.OrderBy) > 0 {
		// The detected quotient plan has no SELECT-list projection to
		// widen, so sort columns must live in the quotient schema (nil
		// pre-projection).
		sorted, err := db.bindOrderBy(q, node, nil)
		if err != nil {
			return nil, false
		}
		node = sorted
	}
	if q.HasLimit {
		node = &plan.Limit{Input: node, N: q.Limit}
	}
	return node, true
}

// errNoMatch distinguishes "pattern absent" from binder errors.
var errNoMatch = fmt.Errorf("sql: not a division pattern")

func (db *DB) tryDetectDivision(q *Query) (plan.Node, error) {
	if q.Where == nil || q.GroupBy != nil || q.Having != nil {
		return nil, errNoMatch
	}
	switch len(q.From) {
	case 1:
		return db.detectSmall(q)
	case 2:
		return db.detectGreat(q)
	default:
		return nil, errNoMatch
	}
}

// detectGreat handles the two-table (Q3) pattern.
func (db *DB) detectGreat(q *Query) (plan.Node, error) {
	dividendTbl, ok1 := q.From[0].(*BaseTable)
	divisorTbl, ok2 := q.From[1].(*BaseTable)
	if !ok1 || !ok2 {
		return nil, errNoMatch
	}
	outerNE, ok := q.Where.(*ExistsExpr)
	if !ok || !outerNE.Negated {
		return nil, errNoMatch
	}

	mid, midTable, midConjuncts, inner, innerTable, innerConjuncts, err :=
		unpackNestedNotExists(outerNE, divisorTbl.Name, dividendTbl.Name)
	if err != nil {
		return nil, err
	}
	// A LIMIT inside either NOT EXISTS block changes which subquery
	// results exist at all, so the equivalence to division breaks —
	// decline and fall back to nested iteration.
	if mid.HasLimit || inner.HasLimit {
		return nil, errNoMatch
	}

	// Middle conjuncts: every one must be y2.c = y.c.
	cCols := map[string]bool{}
	for _, e := range midConjuncts {
		l, r, ok := equality(e)
		if !ok {
			return nil, errNoMatch
		}
		col, ok := selfJoinColumn(l, r, midTable.Alias, divisorTbl.Alias)
		if !ok {
			return nil, errNoMatch
		}
		cCols[col] = true
	}
	if len(cCols) == 0 {
		return nil, errNoMatch
	}

	bPairs, aCols, err := classifyInner(innerConjuncts, innerTable.Alias, midTable.Alias, dividendTbl.Alias)
	if err != nil {
		return nil, err
	}

	// Coverage: A ∪ B must be all of t1's columns, B ∪ C all of t2's.
	dividendRel, ok := db.catalog[dividendTbl.Name]
	if !ok {
		return nil, errNoMatch
	}
	divisorRel, ok := db.catalog[divisorTbl.Name]
	if !ok {
		return nil, errNoMatch
	}
	dividendCovered := map[string]bool{}
	for c := range aCols {
		dividendCovered[c] = true
	}
	divisorCovered := map[string]bool{}
	for c := range cCols {
		divisorCovered[c] = true
	}
	for _, p := range bPairs {
		dividendCovered[p[0]] = true
		divisorCovered[p[1]] = true
	}
	for _, c := range dividendRel.Schema().Attrs() {
		if !dividendCovered[c] {
			return nil, errNoMatch
		}
	}
	for _, c := range divisorRel.Schema().Attrs() {
		if !divisorCovered[c] {
			return nil, errNoMatch
		}
	}

	// Build t1 ÷* t2 with divisor B columns renamed to t1's names.
	dividend, err := db.bindTableRef(dividendTbl)
	if err != nil {
		return nil, err
	}
	divisor, err := db.bindTableRef(divisorTbl)
	if err != nil {
		return nil, err
	}
	var divisorNode plan.Node = divisor
	for _, p := range bPairs {
		from := divisorTbl.Alias + "." + p[1]
		to := dividendTbl.Alias + "." + p[0]
		if from != to {
			divisorNode = &plan.Rename{Input: divisorNode, From: from, To: to}
		}
	}
	div := &plan.GreatDivide{Dividend: dividend, Divisor: divisorNode}
	return db.projectDetected(q, div)
}

// detectSmall handles the one-table pattern with a restricted
// divisor.
func (db *DB) detectSmall(q *Query) (plan.Node, error) {
	dividendTbl, ok := q.From[0].(*BaseTable)
	if !ok {
		return nil, errNoMatch
	}
	outerNE, ok := q.Where.(*ExistsExpr)
	if !ok || !outerNE.Negated {
		return nil, errNoMatch
	}

	mid := outerNE.Query
	if len(mid.From) != 1 || mid.Where == nil {
		return nil, errNoMatch
	}
	midTable, ok := mid.From[0].(*BaseTable)
	if !ok {
		return nil, errNoMatch
	}
	midConjuncts, innerNE := splitExistsConjunction(mid.Where)
	if midConjuncts == nil || innerNE == nil || !innerNE.Negated {
		return nil, errNoMatch
	}
	inner := innerNE.Query
	if len(inner.From) != 1 || inner.Where == nil {
		return nil, errNoMatch
	}
	innerTable, ok := inner.From[0].(*BaseTable)
	if !ok || innerTable.Name != dividendTbl.Name {
		return nil, errNoMatch
	}
	innerConjuncts, stray := splitExistsConjunction(inner.Where)
	if innerConjuncts == nil || stray != nil {
		return nil, errNoMatch
	}
	// A LIMIT inside either NOT EXISTS block breaks the equivalence to
	// division; see detectGreat.
	if mid.HasLimit || inner.HasLimit {
		return nil, errNoMatch
	}

	// Middle conjuncts must be restrictions on the divisor alone: no
	// references to any other alias.
	for _, e := range midConjuncts {
		if !restrictionOn(e, midTable.Alias) {
			return nil, errNoMatch
		}
	}

	bPairs, aCols, err := classifyInner(innerConjuncts, innerTable.Alias, midTable.Alias, dividendTbl.Alias)
	if err != nil {
		return nil, err
	}

	// Coverage: A ∪ B = all of t1's columns.
	dividendRel, ok := db.catalog[dividendTbl.Name]
	if !ok {
		return nil, errNoMatch
	}
	covered := map[string]bool{}
	for c := range aCols {
		covered[c] = true
	}
	for _, p := range bPairs {
		covered[p[0]] = true
	}
	for _, c := range dividendRel.Schema().Attrs() {
		if !covered[c] {
			return nil, errNoMatch
		}
	}

	// Build t1 ÷ πB(σ<restrictions>(t2)).
	dividend, err := db.bindTableRef(dividendTbl)
	if err != nil {
		return nil, err
	}
	divisor, err := db.bindTableRef(midTable)
	if err != nil {
		return nil, err
	}
	var divisorNode plan.Node = divisor
	if len(midConjuncts) > 0 {
		p, err := db.toPred(andAll(midConjuncts), divisor.Schema(), false)
		if err != nil {
			return nil, errNoMatch
		}
		divisorNode = &plan.Select{Input: divisorNode, Pred: p}
	}
	bAttrs := make([]string, len(bPairs))
	for i, p := range bPairs {
		bAttrs[i] = midTable.Alias + "." + p[1]
	}
	divisorNode = &plan.Project{Input: divisorNode, Attrs: bAttrs}
	for _, p := range bPairs {
		from := midTable.Alias + "." + p[1]
		to := dividendTbl.Alias + "." + p[0]
		if from != to {
			divisorNode = &plan.Rename{Input: divisorNode, From: from, To: to}
		}
	}
	div := &plan.Divide{Dividend: dividend, Divisor: divisorNode}
	return db.projectDetected(q, div)
}

// unpackNestedNotExists validates the two-level NOT EXISTS chain and
// returns its components.
func unpackNestedNotExists(outer *ExistsExpr, wantMidTable, wantInnerTable string) (
	mid *Query, midTable *BaseTable, midConjuncts []Expr,
	inner *Query, innerTable *BaseTable, innerConjuncts []Expr, err error,
) {
	mid = outer.Query
	if len(mid.From) != 1 || mid.Where == nil {
		return nil, nil, nil, nil, nil, nil, errNoMatch
	}
	var ok bool
	midTable, ok = mid.From[0].(*BaseTable)
	if !ok || midTable.Name != wantMidTable {
		return nil, nil, nil, nil, nil, nil, errNoMatch
	}
	var innerNE *ExistsExpr
	midConjuncts, innerNE = splitExistsConjunction(mid.Where)
	if midConjuncts == nil || innerNE == nil || !innerNE.Negated {
		return nil, nil, nil, nil, nil, nil, errNoMatch
	}
	inner = innerNE.Query
	if len(inner.From) != 1 || inner.Where == nil {
		return nil, nil, nil, nil, nil, nil, errNoMatch
	}
	innerTable, ok = inner.From[0].(*BaseTable)
	if !ok || innerTable.Name != wantInnerTable {
		return nil, nil, nil, nil, nil, nil, errNoMatch
	}
	var stray *ExistsExpr
	innerConjuncts, stray = splitExistsConjunction(inner.Where)
	if innerConjuncts == nil || stray != nil {
		return nil, nil, nil, nil, nil, nil, errNoMatch
	}
	return mid, midTable, midConjuncts, inner, innerTable, innerConjuncts, nil
}

// classifyInner splits the innermost conjuncts into element joins
// (x2.b = y2.b) and candidate correlations (x2.a = x.a).
func classifyInner(conjuncts []Expr, innerAlias, midAlias, outerAlias string) (
	bPairs [][2]string, aCols map[string]bool, err error,
) {
	aCols = map[string]bool{}
	for _, e := range conjuncts {
		l, r, ok := equality(e)
		if !ok {
			return nil, nil, errNoMatch
		}
		if col, pairOK := joinPair(l, r, innerAlias, midAlias); pairOK {
			bPairs = append(bPairs, col)
			continue
		}
		if col, selfOK := selfJoinColumn(l, r, innerAlias, outerAlias); selfOK {
			aCols[col] = true
			continue
		}
		return nil, nil, errNoMatch
	}
	if len(bPairs) == 0 || len(aCols) == 0 {
		return nil, nil, errNoMatch
	}
	return bPairs, aCols, nil
}

// selfJoinColumn matches l = r as alias1.c = alias2.c (either
// order) and returns c.
func selfJoinColumn(l, r *ColumnRef, alias1, alias2 string) (string, bool) {
	if l.Table == alias1 && r.Table == alias2 && l.Column == r.Column {
		return l.Column, true
	}
	if r.Table == alias1 && l.Table == alias2 && l.Column == r.Column {
		return l.Column, true
	}
	return "", false
}

// joinPair matches l = r between two aliases (either order) and
// returns (left-alias column, right-alias column).
func joinPair(l, r *ColumnRef, alias1, alias2 string) ([2]string, bool) {
	if l.Table == alias1 && r.Table == alias2 {
		return [2]string{l.Column, r.Column}, true
	}
	if r.Table == alias1 && l.Table == alias2 {
		return [2]string{r.Column, l.Column}, true
	}
	return [2]string{}, false
}

// restrictionOn reports whether the expression references only the
// given alias (qualified or unqualified columns plus literals).
func restrictionOn(e Expr, alias string) bool {
	switch x := e.(type) {
	case *Comparison:
		return operandLocal(x.Left, alias) && operandLocal(x.Right, alias)
	case *BoolOp:
		return restrictionOn(x.Left, alias) && restrictionOn(x.Right, alias)
	case *NotExpr:
		return restrictionOn(x.Inner, alias)
	default:
		return false
	}
}

func operandLocal(e Expr, alias string) bool {
	switch x := e.(type) {
	case *ColumnRef:
		return x.Table == "" || x.Table == alias
	case *Literal:
		return true
	default:
		return false
	}
}

// andAll folds conjuncts into one expression.
func andAll(es []Expr) Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &BoolOp{Op: "AND", Left: out, Right: e}
	}
	return out
}

// projectDetected applies q's select list on the division plan. A
// select item outside the quotient schema A ∪ C rejects the rewrite
// (e.g. selecting the dividend's element column, whose multiplicity
// the division does not preserve).
func (db *DB) projectDetected(q *Query, div plan.Node) (plan.Node, error) {
	if q.Star {
		return div, nil
	}
	sch := div.Schema()
	var fromAttrs, outNames []string
	for _, item := range q.Select {
		col, ok := item.Expr.(*ColumnRef)
		if !ok {
			return nil, errNoMatch
		}
		attr, err := resolveColumn(sch, col)
		if err != nil {
			return nil, errNoMatch
		}
		fromAttrs = append(fromAttrs, attr)
		outNames = append(outNames, outputName(item))
	}
	if err := checkDistinctNames(outNames); err != nil {
		return nil, err
	}
	return renameOutputs(&plan.Project{Input: div, Attrs: fromAttrs}, fromAttrs, outNames), nil
}

// splitExistsConjunction flattens an AND tree, separating at most
// one [NOT] EXISTS subterm from plain comparisons. It returns
// (nil, nil) on unsupported shapes (OR, NOT, two EXISTS); an empty
// non-nil comparisons slice means "no plain comparisons".
func splitExistsConjunction(e Expr) (comparisons []Expr, exists *ExistsExpr) {
	switch x := e.(type) {
	case *BoolOp:
		if x.Op != "AND" {
			return nil, nil
		}
		lc, le := splitExistsConjunction(x.Left)
		if lc == nil && le == nil {
			return nil, nil
		}
		rc, re := splitExistsConjunction(x.Right)
		if rc == nil && re == nil {
			return nil, nil
		}
		if le != nil && re != nil {
			return nil, nil
		}
		out := make([]Expr, 0, len(lc)+len(rc))
		out = append(out, lc...)
		out = append(out, rc...)
		if le != nil {
			return out, le
		}
		return out, re
	case *ExistsExpr:
		return []Expr{}, x
	case *Comparison:
		return []Expr{x}, nil
	default:
		return nil, nil
	}
}

// equality extracts the two column references of a pure
// column-equals-column comparison.
func equality(e Expr) (l, r *ColumnRef, ok bool) {
	cmp, isCmp := e.(*Comparison)
	if !isCmp || cmp.Op != "=" {
		return nil, nil, false
	}
	l, lok := cmp.Left.(*ColumnRef)
	r, rok := cmp.Right.(*ColumnRef)
	if !lok || !rok || l.Table == "" || r.Table == "" {
		return nil, nil, false
	}
	return l, r, true
}

// PlanWithDetection parses and binds a query, first attempting the
// division-pattern detection; on a match the returned plan contains
// a first-class divide instead of nested iteration.
func (db *DB) PlanWithDetection(text string) (plan.Node, bool, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, false, err
	}
	return db.PlanQueryWithDetection(q)
}

// PlanQueryWithDetection is PlanWithDetection over an already-parsed
// (and, for prepared statements, parameter-substituted) query.
func (db *DB) PlanQueryWithDetection(q *Query) (plan.Node, bool, error) {
	if node, ok := db.DetectDivision(q); ok {
		return node, true, nil
	}
	node, err := db.Bind(q)
	return node, false, err
}
