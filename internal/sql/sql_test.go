package sql

import (
	"strings"
	"testing"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// suppliersDB builds the paper's §4 suppliers-and-parts scenario.
//
//	red   parts: p1, p2
//	blue  parts: p3, p4
//	green parts: p5
func suppliersDB() *DB {
	db := NewDB()
	db.Register("supplies", relation.FromRows(schema.New("s#", "p#"), [][]any{
		{"s1", "p1"}, {"s1", "p2"}, {"s1", "p3"},
		{"s2", "p3"}, {"s2", "p4"},
		{"s3", "p1"}, {"s3", "p2"}, {"s3", "p3"}, {"s3", "p4"}, {"s3", "p5"},
		{"s4", "p5"},
	}))
	db.Register("parts", relation.FromRows(schema.New("p#", "color"), [][]any{
		{"p1", "red"}, {"p2", "red"},
		{"p3", "blue"}, {"p4", "blue"},
		{"p5", "green"},
	}))
	return db
}

// q1Expected is the answer to "for each color, the suppliers that
// supply all parts with that color".
func q1Expected() *relation.Relation {
	return relation.FromRows(schema.New("s#", "color"), [][]any{
		{"s1", "red"}, {"s3", "red"},
		{"s2", "blue"}, {"s3", "blue"},
		{"s3", "green"}, {"s4", "green"},
	})
}

const (
	queryQ1 = `
SELECT s#, color
FROM supplies AS s DIVIDE BY parts AS p
     ON s.p# = p.p#`

	queryQ2 = `
SELECT s#
FROM supplies AS s DIVIDE BY (
       SELECT p#
       FROM parts
       WHERE color = 'blue') AS p
     ON s.p# = p.p#`

	queryQ3 = `
SELECT DISTINCT s#, color
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
        SELECT *
        FROM parts AS p2
        WHERE p2.color = p1.color AND
              NOT EXISTS (
                SELECT *
                FROM supplies AS s2
                WHERE s2.p# = p2.p# AND
                      s2.s# = s1.s#))`
)

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT s#, 'it''s' FROM t WHERE a <= 2.5 -- comment\nAND b <> 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.Kind == tokEOF {
			break
		}
		kinds = append(kinds, tok.Text)
	}
	want := []string{"SELECT", "s#", ",", "it's", "FROM", "t", "WHERE", "a", "<=", "2.5", "AND", "b", "<>", "3"}
	if strings.Join(kinds, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", kinds, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex("a ; b"); err == nil {
		t.Error("stray semicolon should fail")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Error("bare ! should fail")
	}
	if toks, err := lex("a != b"); err != nil || toks[1].Text != "<>" {
		t.Error("!= should lex as <>")
	}
}

func TestParseQ1Shape(t *testing.T) {
	q, err := Parse(queryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 {
		t.Fatalf("FROM items = %d", len(q.From))
	}
	div, ok := q.From[0].(*DivideTable)
	if !ok {
		t.Fatalf("FROM[0] = %T, want DivideTable", q.From[0])
	}
	if bt, ok := div.Dividend.(*BaseTable); !ok || bt.Name != "supplies" || bt.Alias != "s" {
		t.Errorf("dividend = %+v", div.Dividend)
	}
	if bt, ok := div.Divisor.(*BaseTable); !ok || bt.Name != "parts" || bt.Alias != "p" {
		t.Errorf("divisor = %+v", div.Divisor)
	}
	if _, ok := div.On.(*Comparison); !ok {
		t.Errorf("ON = %T", div.On)
	}
	if len(q.Select) != 2 {
		t.Errorf("select list = %v", q.Select)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t extra junk (",
		"SELECT a FROM (SELECT b FROM t)",        // derived table needs alias
		"SELECT a FROM t DIVIDE t2 ON a = b",     // missing BY
		"SELECT a FROM t DIVIDE BY t2 a = b",     // missing ON
		"SELECT a FROM t WHERE a =",              // dangling comparison
		"SELECT a FROM t WHERE EXISTS SELECT",    // missing parens
		"SELECT count(a FROM t",                  // unclosed call
		"SELECT a FROM t WHERE NOT EXISTS (foo)", // not a query
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestQ1GreatDivide(t *testing.T) {
	db := suppliersDB()
	n, err := db.Plan(queryQ1)
	if err != nil {
		t.Fatal(err)
	}
	// Q1's divisor has a non-joined attribute (color), so the binder
	// must choose the great divide (paper §4).
	if got := countGreatDivides(n); got != 1 {
		t.Errorf("plan should contain one great divide:\n%s", plan.Format(n))
	}
	res, err := db.Query(queryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EquivalentTo(q1Expected()) {
		t.Errorf("Q1 = %v, want %v", res, q1Expected())
	}
}

func TestQ2SmallDivide(t *testing.T) {
	db := suppliersDB()
	n, err := db.Plan(queryQ2)
	if err != nil {
		t.Fatal(err)
	}
	// Q2's divisor exposes only the joined p# column: small divide.
	if got := countSmallDivides(n); got != 1 {
		t.Errorf("plan should contain one small divide:\n%s", plan.Format(n))
	}
	res, err := db.Query(queryQ2)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(schema.New("s#"), [][]any{{"s2"}, {"s3"}})
	if !res.Equal(want) {
		t.Errorf("Q2 = %v, want %v", res, want)
	}
}

func TestQ3NotExistsMatchesQ1(t *testing.T) {
	// The paper's central comparison: the double-NOT-EXISTS
	// formulation must compute exactly the DIVIDE BY answer.
	db := suppliersDB()
	q3, err := db.Query(queryQ3)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := db.Query(queryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !q3.EquivalentTo(q1) {
		t.Errorf("Q3 = %v\nQ1 = %v", q3, q1)
	}
}

func TestSimpleSelections(t *testing.T) {
	db := suppliersDB()
	res, err := db.Query("SELECT p# FROM parts WHERE color = 'blue'")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(schema.New("p#"), [][]any{{"p3"}, {"p4"}})
	if !res.Equal(want) {
		t.Errorf("blue parts = %v", res)
	}

	res, err = db.Query("SELECT * FROM parts WHERE color <> 'blue'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("SELECT * rows = %d", res.Len())
	}
}

func TestJoinViaWhere(t *testing.T) {
	db := suppliersDB()
	res, err := db.Query(`
SELECT s.s#, p.color
FROM supplies AS s, parts AS p
WHERE s.p# = p.p# AND p.color = 'green'`)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(schema.New("s#", "color"), [][]any{
		{"s3", "green"}, {"s4", "green"},
	})
	if !res.EquivalentTo(want) {
		t.Errorf("join result = %v", res)
	}
}

func TestAggregatesAndHaving(t *testing.T) {
	db := suppliersDB()
	res, err := db.Query(`
SELECT s#, count(p#) AS parts_supplied
FROM supplies
GROUP BY s#
HAVING count(p#) >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(schema.New("s#", "parts_supplied"), [][]any{
		{"s1", 3}, {"s2", 2}, {"s3", 5},
	})
	if !res.EquivalentTo(want) {
		t.Errorf("grouped = %v, want %v", res, want)
	}
}

func TestGlobalAggregate(t *testing.T) {
	db := suppliersDB()
	res, err := db.Query("SELECT count(*) AS n FROM parts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Tuples()[0][0].Equal(relation.ToValue(5)) {
		t.Errorf("count(*) = %v", res)
	}
}

func TestFrequentItemsetQuery(t *testing.T) {
	// §3: support counting via DIVIDE BY, then GROUP BY + HAVING on
	// the quotient. Candidates {A,B} and {C}; transactions t1..t4.
	db := NewDB()
	db.Register("transactions", relation.FromRows(schema.New("tid", "item"), [][]any{
		{1, "A"}, {1, "B"}, {1, "C"},
		{2, "A"}, {2, "B"},
		{3, "B"}, {3, "C"},
		{4, "A"}, {4, "B"}, {4, "D"},
	}))
	db.Register("candidates", relation.FromRows(schema.New("itemset", "item"), [][]any{
		{"AB", "A"}, {"AB", "B"},
		{"C", "C"},
	}))
	quotient, err := db.Query(`
SELECT tid, itemset
FROM transactions AS t DIVIDE BY candidates AS c ON t.item = c.item`)
	if err != nil {
		t.Fatal(err)
	}
	wantQuotient := relation.FromRows(schema.New("tid", "itemset"), [][]any{
		{1, "AB"}, {2, "AB"}, {4, "AB"},
		{1, "C"}, {3, "C"},
	})
	if !quotient.EquivalentTo(wantQuotient) {
		t.Fatalf("quotient = %v, want %v", quotient, wantQuotient)
	}
	support, err := db.Query(`
SELECT itemset, count(tid) AS support
FROM (SELECT tid, itemset
      FROM transactions AS t DIVIDE BY candidates AS c ON t.item = c.item) AS q
GROUP BY itemset
HAVING count(tid) >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(schema.New("itemset", "support"), [][]any{{"AB", 3}})
	if !support.EquivalentTo(want) {
		t.Errorf("support = %v, want %v", support, want)
	}
}

func TestMultiColumnDivideCondition(t *testing.T) {
	// Footnote 5: R1(a,b,c) DIVIDE BY R2(b,c) ON both columns is a
	// small divide.
	db := NewDB()
	db.Register("r1", relation.Ints([]string{"a", "b", "c"}, [][]int64{
		{1, 1, 1}, {1, 2, 2}, {2, 1, 1},
	}))
	db.Register("r2", relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}, {2, 2}}))
	n, err := db.Plan("SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b AND r1.c = r2.c")
	if err != nil {
		t.Fatal(err)
	}
	if countSmallDivides(n) != 1 {
		t.Fatalf("expected small divide:\n%s", plan.Format(n))
	}
	res := plan.Eval(n)
	want := relation.Ints([]string{"a"}, [][]int64{{1}})
	if !res.Equal(want) {
		t.Errorf("quotient = %v", res)
	}
}

func TestBindErrors(t *testing.T) {
	db := suppliersDB()
	bad := []string{
		"SELECT x FROM parts",                                              // unknown column
		"SELECT p# FROM nosuch",                                            // unknown table
		"SELECT p# FROM parts, parts",                                      // duplicate alias
		"SELECT p# FROM parts AS a, parts AS a",                            // duplicate alias
		"SELECT p# FROM parts WHERE color = 'b' HAVING count(*) > 1",       // HAVING without GROUP BY is fine only with aggregates; this has one — use a truly bad one below
		"SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# < p.p#", // non-equi ON
		"SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# = s.s#", // pair within dividend
		"SELECT p#, p# FROM parts",                                         // duplicate output name
		"SELECT sum(*) FROM parts",                                         // sum(*) invalid
		"SELECT p# FROM parts GROUP BY color",                              // p# not grouped
		"SELECT color FROM parts WHERE count(*) > 1",                       // aggregate in WHERE
	}
	for _, text := range bad {
		if text == "SELECT p# FROM parts WHERE color = 'b' HAVING count(*) > 1" {
			continue
		}
		if _, err := db.Query(text); err == nil {
			t.Errorf("Query(%q) should fail", text)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := suppliersDB()
	if _, err := db.Query("SELECT p# FROM supplies AS s, parts AS p"); err == nil {
		t.Error("ambiguous p# should fail")
	}
	// Qualification resolves it.
	if _, err := db.Query("SELECT p.p# FROM supplies AS s, parts AS p"); err != nil {
		t.Errorf("qualified p# should bind: %v", err)
	}
}

func TestChainedDivide(t *testing.T) {
	// DIVIDE BY is left-associative; dividing twice narrows further.
	db := suppliersDB()
	// Suppliers supplying all blue parts and all green parts:
	res, err := db.Query(`
SELECT s#
FROM supplies AS s
     DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') AS bp ON s.p# = bp.p#`)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(schema.New("s#"), [][]any{{"s2"}, {"s3"}})
	if !res.Equal(want) {
		t.Errorf("blue division = %v", res)
	}
}

func TestOrderByParsesAndBinds(t *testing.T) {
	db := suppliersDB()
	if _, err := db.Query("SELECT p# FROM parts ORDER BY p# DESC"); err != nil {
		t.Errorf("ORDER BY should be accepted: %v", err)
	}
}

func TestTableAccessors(t *testing.T) {
	db := suppliersDB()
	if _, ok := db.Table("parts"); !ok {
		t.Error("Table(parts) missing")
	}
	if _, ok := db.Table("nope"); ok {
		t.Error("Table(nope) should miss")
	}
}

func countSmallDivides(n plan.Node) int {
	total := 0
	if _, ok := n.(*plan.Divide); ok {
		total++
	}
	for _, c := range n.Children() {
		total += countSmallDivides(c)
	}
	return total
}

func countGreatDivides(n plan.Node) int {
	total := 0
	if _, ok := n.(*plan.GreatDivide); ok {
		total++
	}
	for _, c := range n.Children() {
		total += countGreatDivides(c)
	}
	return total
}
