package sql

import (
	"strings"
	"testing"

	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func TestASTStringForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&ColumnRef{Table: "t", Column: "c"}, "t.c"},
		{&ColumnRef{Column: "c"}, "c"},
		{&Literal{Int: 3, Kind: 'i'}, "3"},
		{&Literal{Float: 2.5, Kind: 'f'}, "2.5"},
		{&Literal{Str: "x", Kind: 's'}, "'x'"},
		{&Comparison{Left: &ColumnRef{Column: "a"}, Op: "<", Right: &Literal{Int: 1, Kind: 'i'}}, "a < 1"},
		{&BoolOp{Op: "AND", Left: &Literal{Int: 1, Kind: 'i'}, Right: &Literal{Int: 2, Kind: 'i'}}, "(1 AND 2)"},
		{&NotExpr{Inner: &Literal{Int: 1, Kind: 'i'}}, "NOT (1)"},
		{&ExistsExpr{}, "EXISTS (...)"},
		{&ExistsExpr{Negated: true}, "NOT EXISTS (...)"},
		{&AggCall{Func: "count", Star: true}, "count(*)"},
		{&AggCall{Func: "sum", Arg: &ColumnRef{Column: "x"}}, "sum(x)"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestDescribeRef(t *testing.T) {
	cases := []struct {
		ref  TableRef
		want string
	}{
		{&BaseTable{Name: "t", Alias: "t"}, "t"},
		{&BaseTable{Name: "t", Alias: "x"}, "t AS x"},
		{&SubqueryTable{Alias: "q"}, "(subquery) AS q"},
		{&DivideTable{
			Dividend: &BaseTable{Name: "a", Alias: "a"},
			Divisor:  &BaseTable{Name: "b", Alias: "b"},
		}, "a DIVIDE BY b"},
	}
	for _, tc := range cases {
		if got := describeRef(tc.ref); got != tc.want {
			t.Errorf("describeRef = %q, want %q", got, tc.want)
		}
	}
}

func TestAllComparisonOperators(t *testing.T) {
	db := suppliersDB()
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		q := "SELECT p# FROM parts WHERE p# " + op + " 'p3'"
		if _, err := db.Query(q); err != nil {
			t.Errorf("operator %s: %v", op, err)
		}
	}
}

func TestHavingVariants(t *testing.T) {
	db := suppliersDB()
	// HAVING with AND / OR / NOT and column operands.
	queries := []string{
		`SELECT s#, count(p#) AS n FROM supplies GROUP BY s#
         HAVING count(p#) >= 2 AND count(p#) <= 4`,
		`SELECT s#, count(p#) AS n FROM supplies GROUP BY s#
         HAVING count(p#) = 2 OR count(p#) = 5`,
		`SELECT s#, count(p#) AS n FROM supplies GROUP BY s#
         HAVING NOT count(p#) < 3`,
		`SELECT s#, min(p#) AS lo, max(p#) AS hi FROM supplies GROUP BY s#
         HAVING min(p#) <> max(p#)`,
		`SELECT s#, count(p#) AS n FROM supplies GROUP BY s# HAVING s# > 's1'`,
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
	// Aggregate not computed in HAVING: sum over a string column is
	// registered; missing aggregate detection happens via internal map.
	if _, err := db.Query(`SELECT s# FROM supplies GROUP BY s# HAVING avg(p#) > 1 AND count(p#) > 0`); err != nil {
		t.Errorf("HAVING-only aggregates should be computed: %v", err)
	}
}

func TestWhereBooleanShapes(t *testing.T) {
	db := suppliersDB()
	queries := []string{
		`SELECT p# FROM parts WHERE color = 'red' OR color = 'blue'`,
		`SELECT p# FROM parts WHERE NOT color = 'red'`,
		`SELECT p# FROM parts WHERE (color = 'red' AND p# <> 'p1') OR color = 'green'`,
		`SELECT p# FROM parts WHERE EXISTS (
            SELECT * FROM supplies AS s WHERE s.p# = parts.p#)`,
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
}

func TestExistsPredIntrospection(t *testing.T) {
	db := suppliersDB()
	p := &existsPred{db: db, sub: &Query{}, negated: true}
	if p.String() != "NOT EXISTS (subquery)" {
		t.Errorf("String = %q", p.String())
	}
	p.negated = false
	if p.String() != "EXISTS (subquery)" {
		t.Errorf("String = %q", p.String())
	}
	attrs := p.Attrs()
	if len(attrs) != 1 || !strings.Contains(attrs[0], "correlated") {
		t.Errorf("Attrs = %v; must be a sentinel that never matches a schema", attrs)
	}
	// The sentinel keeps rewrite laws away: OnlyOver is always false.
	if pred.OnlyOver(p, schema.New("a", "b", "c")) {
		t.Error("correlated predicates must not satisfy OnlyOver")
	}
}

func TestValueLiteralKinds(t *testing.T) {
	if got := valueLiteral(value.Int(3)).(*Literal); got.Kind != 'i' || got.Int != 3 {
		t.Errorf("int literal = %+v", got)
	}
	if got := valueLiteral(value.Float(2.5)).(*Literal); got.Kind != 'f' || got.Float != 2.5 {
		t.Errorf("float literal = %+v", got)
	}
	if got := valueLiteral(value.String("x")).(*Literal); got.Kind != 's' || got.Str != "x" {
		t.Errorf("string literal = %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("bool correlation should panic")
		}
	}()
	valueLiteral(value.Bool(true))
}

func TestCorrelatedQueryOverFloats(t *testing.T) {
	db := NewDB()
	db.Register("m", relation.FromRows(schema.New("id", "score"), [][]any{
		{1, 0.5}, {2, 0.9},
	}))
	res, err := db.Query(`
SELECT id FROM m AS outer_m WHERE EXISTS (
  SELECT * FROM m AS inner_m WHERE inner_m.score > outer_m.score)`)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(schema.New("id"), [][]any{{1}})
	if !res.Equal(want) {
		t.Errorf("float correlation = %v", res)
	}
}

func TestParsePredicateParenthesized(t *testing.T) {
	q, err := Parse(`SELECT a FROM t WHERE (a = 1 OR a = 2) AND a <> 3`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Where.(*BoolOp); !ok {
		t.Errorf("Where = %T", q.Where)
	}
}

func TestDetectHelpers(t *testing.T) {
	// selfJoinColumn orientation.
	l := &ColumnRef{Table: "x", Column: "c"}
	r := &ColumnRef{Table: "y", Column: "c"}
	if col, ok := selfJoinColumn(l, r, "x", "y"); !ok || col != "c" {
		t.Error("forward self-join")
	}
	if col, ok := selfJoinColumn(l, r, "y", "x"); !ok || col != "c" {
		t.Error("reversed self-join")
	}
	if _, ok := selfJoinColumn(l, &ColumnRef{Table: "y", Column: "d"}, "x", "y"); ok {
		t.Error("different columns must not self-join")
	}
	// restrictionOn shapes.
	local := &Comparison{Left: &ColumnRef{Table: "y", Column: "c"}, Op: "=", Right: &Literal{Str: "v", Kind: 's'}}
	foreign := &Comparison{Left: &ColumnRef{Table: "z", Column: "c"}, Op: "=", Right: &Literal{Str: "v", Kind: 's'}}
	if !restrictionOn(local, "y") || restrictionOn(foreign, "y") {
		t.Error("restrictionOn alias check")
	}
	if !restrictionOn(&BoolOp{Op: "AND", Left: local, Right: local}, "y") {
		t.Error("restrictionOn AND")
	}
	if !restrictionOn(&NotExpr{Inner: local}, "y") {
		t.Error("restrictionOn NOT")
	}
	if restrictionOn(&ExistsExpr{}, "y") {
		t.Error("EXISTS is not a plain restriction")
	}
}

func TestPlanWithDetectionFallsBack(t *testing.T) {
	db := suppliersDB()
	node, detected, err := db.PlanWithDetection(`SELECT p# FROM parts WHERE color = 'red'`)
	if err != nil || detected || node == nil {
		t.Errorf("plain query: detected=%t err=%v", detected, err)
	}
	if _, _, err := db.PlanWithDetection(`SELECT FROM`); err == nil {
		t.Error("parse errors must propagate")
	}
	if _, _, err := db.PlanWithDetection(`SELECT zzz FROM parts`); err == nil {
		t.Error("bind errors must propagate")
	}
}
