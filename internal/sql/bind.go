package sql

import (
	"fmt"
	"slices"
	"strings"

	"divlaws/internal/algebra"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// DB couples a catalog of named relations with the SQL front end.
//
// It is the module-internal engine surface: parsing, binding, and
// planning. External programs embed the engine through the public
// root package (divlaws.Open), whose DB delegates its catalog and
// planning to this type and streams results off the compiled
// iterator pipeline; this DB's Query remains as the thin
// materializing compatibility path.
type DB struct {
	catalog map[string]*relation.Relation
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{catalog: make(map[string]*relation.Relation)} }

// Register adds (or replaces) a named table.
func (db *DB) Register(name string, rel *relation.Relation) { db.catalog[name] = rel }

// Table returns a registered table.
func (db *DB) Table(name string) (*relation.Relation, bool) {
	r, ok := db.catalog[name]
	return r, ok
}

// Query parses, binds, and evaluates a SELECT statement, returning
// the fully materialized result. It is the compatibility path; the
// public divlaws package streams the same plans through the exec
// engine instead.
func (db *DB) Query(text string) (*relation.Relation, error) {
	n, err := db.Plan(text)
	if err != nil {
		return nil, err
	}
	return plan.Eval(n), nil
}

// Plan parses and binds a SELECT statement into a logical plan.
func (db *DB) Plan(text string) (plan.Node, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return db.Bind(q)
}

// Bind translates a parsed query into a logical plan.
func (db *DB) Bind(q *Query) (plan.Node, error) {
	node, err := db.bindQuery(q)
	if err != nil {
		return nil, err
	}
	return node, nil
}

// bindQuery lowers one query block. ORDER BY becomes a physical
// plan.Sort over the block's output, and LIMIT a plan.Limit above it
// — so ORDER BY + LIMIT binds to Limit∘Sort, which the optimizer
// fuses into the single plan.TopK operator.
func (db *DB) bindQuery(q *Query) (plan.Node, error) {
	node, pre, err := db.bindQueryBody(q)
	if err != nil {
		return nil, err
	}
	node, err = db.bindOrderBy(q, node, pre)
	if err != nil {
		return nil, err
	}
	if q.HasLimit {
		if q.Limit < 0 {
			return nil, fmt.Errorf("sql: LIMIT %d is negative", q.Limit)
		}
		node = &plan.Limit{Input: node, N: q.Limit}
	}
	return node, nil
}

// preProjection records the schema context a query block's SELECT
// list projected away — the node beneath the projection plus the
// projected attributes and their output names — so ORDER BY can
// reach back to columns the projection dropped.
type preProjection struct {
	input     plan.Node
	fromAttrs []string
	outNames  []string
}

// bindOrderBy is the single sort-binding path of the binder: it
// resolves every ORDER BY item against the query block's output
// schema (projection aliases included, since renames are already
// applied) and wraps the plan in a Sort node carrying the resolved
// keys.
//
// A sort column absent from the output schema is resolved against
// the pre-projection schema instead: the projection is widened to
// carry the column through the Sort, and a final projection strips
// it again (order-preserving — first-seen semantics), so
//
//	SELECT city FROM t ORDER BY pop DESC
//
// binds to Project[city](Sort[pop desc](Project[city,pop](t))).
// Columns found in neither schema are errors — ordering is a
// physical operator, not a presentation-level hint.
func (db *DB) bindOrderBy(q *Query, node plan.Node, pre *preProjection) (plan.Node, error) {
	if len(q.OrderBy) == 0 {
		return node, nil
	}
	keys := make([]plan.SortKey, len(q.OrderBy))
	var extras []string
	for i, o := range q.OrderBy {
		c := o.Col
		attr, err := resolveColumn(node.Schema(), &c)
		if err != nil {
			if pre == nil {
				return nil, fmt.Errorf("sql: ORDER BY: %w", err)
			}
			c2 := o.Col
			preAttr, preErr := resolveColumn(pre.input.Schema(), &c2)
			if preErr != nil {
				return nil, fmt.Errorf("sql: ORDER BY: %w", err)
			}
			if j := slices.Index(pre.fromAttrs, preAttr); j >= 0 {
				// The column is projected, just under an alias: sort on
				// its output name, no widening needed.
				attr = pre.outNames[j]
			} else if slices.Contains(pre.outNames, preAttr) {
				// Widening would collide with an output alias of the
				// same name; keep the strict error.
				return nil, fmt.Errorf("sql: ORDER BY: %w", err)
			} else {
				attr = preAttr
				if !slices.Contains(extras, preAttr) {
					extras = append(extras, preAttr)
				}
			}
		}
		keys[i] = plan.SortKey{Attr: attr, Desc: o.Desc}
	}
	if len(extras) == 0 {
		return &plan.Sort{Input: node, Keys: keys}, nil
	}
	// Widen the projection with the extra sort columns, apply the
	// output renames, sort, then strip back down to the output names.
	wide := append(append([]string(nil), pre.fromAttrs...), extras...)
	widened := renameOutputs(&plan.Project{Input: pre.input, Attrs: wide}, pre.fromAttrs, pre.outNames)
	sorted := &plan.Sort{Input: widened, Keys: keys}
	return &plan.Project{Input: sorted, Attrs: pre.outNames}, nil
}

// bindQueryBody lowers one query block up to (but excluding) ORDER
// BY and LIMIT. The second result is the pre-projection context for
// ORDER BY widening; it is nil for SELECT *, whose output schema is
// the full input schema.
func (db *DB) bindQueryBody(q *Query) (plan.Node, *preProjection, error) {
	node, err := db.bindFrom(q.From)
	if err != nil {
		return nil, nil, err
	}
	if q.Where != nil {
		p, err := db.toPred(q.Where, node.Schema(), false)
		if err != nil {
			return nil, nil, err
		}
		node = &plan.Select{Input: node, Pred: p}
	}

	aggs := collectAggs(q)
	if len(aggs) > 0 || len(q.GroupBy) > 0 {
		return db.bindGrouped(q, node, aggs)
	}
	if q.Having != nil {
		return nil, nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
	}
	return db.bindProjection(q, node)
}

// bindFrom builds the product of the FROM items with qualified
// attribute names.
func (db *DB) bindFrom(refs []TableRef) (plan.Node, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("sql: empty FROM clause")
	}
	var node plan.Node
	for _, ref := range refs {
		n, err := db.bindTableRef(ref)
		if err != nil {
			return nil, err
		}
		if node == nil {
			node = n
			continue
		}
		if !node.Schema().DisjointFrom(n.Schema()) {
			return nil, fmt.Errorf("sql: duplicate table alias in FROM near %s", describeRef(ref))
		}
		node = &plan.Product{Left: node, Right: n}
	}
	return node, nil
}

// bindTableRef lowers one table reference.
func (db *DB) bindTableRef(ref TableRef) (plan.Node, error) {
	switch r := ref.(type) {
	case *BaseTable:
		rel, ok := db.catalog[r.Name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", r.Name)
		}
		return qualifiedScan(r.Name, r.Alias, rel), nil
	case *SubqueryTable:
		sub, err := db.bindQuery(r.Query)
		if err != nil {
			return nil, err
		}
		// Re-qualify the subquery's output columns under the alias.
		node := sub
		for _, attr := range sub.Schema().Attrs() {
			node = &plan.Rename{Input: node, From: attr, To: r.Alias + "." + attr}
		}
		return node, nil
	case *DivideTable:
		return db.bindDivide(r)
	default:
		return nil, fmt.Errorf("sql: unsupported table reference %T", ref)
	}
}

// qualifiedScan scans a base table with attributes renamed to
// alias.column.
func qualifiedScan(name, alias string, rel *relation.Relation) plan.Node {
	attrs := rel.Schema().Attrs()
	qualified := make([]string, len(attrs))
	for i, a := range attrs {
		qualified[i] = alias + "." + a
	}
	return plan.NewScan(name, algebra.RenameAll(rel, qualified...))
}

// bindDivide lowers the paper's <quotient> construct. Following §4,
// the ON condition must be a conjunction of equi-comparisons between
// dividend and divisor columns; the quotient is a small divide when
// the condition covers every divisor attribute and a great divide
// otherwise.
func (db *DB) bindDivide(r *DivideTable) (plan.Node, error) {
	dividend, err := db.bindTableRef(r.Dividend)
	if err != nil {
		return nil, err
	}
	divisor, err := db.bindTableRef(r.Divisor)
	if err != nil {
		return nil, err
	}
	combined := dividend.Schema().Concat(divisor.Schema())
	onPred, err := db.toPred(r.On, combined, false)
	if err != nil {
		return nil, err
	}
	pairs, ok := pred.EquiPairs(onPred)
	if !ok || len(pairs) == 0 {
		return nil, fmt.Errorf("sql: DIVIDE BY requires a conjunction of equi-joins in ON, got %q", r.On)
	}

	// Orient each pair as (dividend attribute, divisor attribute).
	divisorToDividend := make(map[string]string, len(pairs))
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		switch {
		case dividend.Schema().Contains(a) && divisor.Schema().Contains(b):
			divisorToDividend[b] = a
		case dividend.Schema().Contains(b) && divisor.Schema().Contains(a):
			divisorToDividend[a] = b
		default:
			return nil, fmt.Errorf("sql: DIVIDE BY ON pair %s = %s must relate dividend and divisor columns", a, b)
		}
	}

	// Rename divisor join columns to the dividend's names so the
	// division operators see a shared attribute set B.
	var divisorNode plan.Node = divisor
	for from, to := range divisorToDividend {
		divisorNode = &plan.Rename{Input: divisorNode, From: from, To: to}
	}

	// All divisor attributes joined => small divide (paper §4).
	if len(divisorToDividend) == divisor.Schema().Len() {
		return &plan.Divide{Dividend: dividend, Divisor: divisorNode}, nil
	}
	return &plan.GreatDivide{Dividend: dividend, Divisor: divisorNode}, nil
}

// bindProjection applies the SELECT list of a non-aggregating query.
// ORDER BY is bound later, by bindQuery, against the projected
// output schema.
func (db *DB) bindProjection(q *Query, node plan.Node) (plan.Node, *preProjection, error) {
	if q.Star {
		return node, nil, nil
	}
	var fromAttrs []string
	var outNames []string
	for _, item := range q.Select {
		col, ok := item.Expr.(*ColumnRef)
		if !ok {
			return nil, nil, fmt.Errorf("sql: select item %q requires GROUP BY context", item.Expr)
		}
		attr, err := resolveColumn(node.Schema(), col)
		if err != nil {
			return nil, nil, err
		}
		fromAttrs = append(fromAttrs, attr)
		outNames = append(outNames, outputName(item))
	}
	if err := checkDistinctNames(outNames); err != nil {
		return nil, nil, err
	}
	pre := &preProjection{input: node, fromAttrs: fromAttrs, outNames: outNames}
	return renameOutputs(&plan.Project{Input: node, Attrs: fromAttrs}, fromAttrs, outNames), pre, nil
}

// bindGrouped applies GROUP BY / HAVING / aggregate select lists.
func (db *DB) bindGrouped(q *Query, node plan.Node, aggs []*AggCall) (plan.Node, *preProjection, error) {
	inSchema := node.Schema()
	by := make([]string, len(q.GroupBy))
	for i, col := range q.GroupBy {
		c := col
		attr, err := resolveColumn(inSchema, &c)
		if err != nil {
			return nil, nil, err
		}
		by[i] = attr
	}

	// One AggSpec per distinct aggregate expression.
	specs := make([]algebra.AggSpec, 0, len(aggs))
	internal := make(map[string]string) // AggCall.String() -> output attr
	for _, call := range aggs {
		key := call.String()
		if _, done := internal[key]; done {
			continue
		}
		name := fmt.Sprintf("·agg%d", len(specs))
		spec := algebra.AggSpec{As: name}
		switch call.Func {
		case "count":
			spec.Func = algebra.Count
			if !call.Star {
				attr, err := resolveColumn(inSchema, call.Arg)
				if err != nil {
					return nil, nil, err
				}
				spec.Attr = attr
			}
		case "sum", "min", "max", "avg":
			if call.Star {
				return nil, nil, fmt.Errorf("sql: %s(*) is not valid", call.Func)
			}
			attr, err := resolveColumn(inSchema, call.Arg)
			if err != nil {
				return nil, nil, err
			}
			spec.Attr = attr
			switch call.Func {
			case "sum":
				spec.Func = algebra.Sum
			case "min":
				spec.Func = algebra.Min
			case "max":
				spec.Func = algebra.Max
			default:
				spec.Func = algebra.Avg
			}
		default:
			return nil, nil, fmt.Errorf("sql: unknown aggregate %q", call.Func)
		}
		internal[key] = name
		specs = append(specs, spec)
	}

	var grouped plan.Node = &plan.Group{Input: node, By: by, Aggs: specs}

	if q.Having != nil {
		p, err := db.havingPred(q.Having, grouped.Schema(), internal)
		if err != nil {
			return nil, nil, err
		}
		grouped = &plan.Select{Input: grouped, Pred: p}
	}

	if q.Star {
		return nil, nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY")
	}
	var fromAttrs, outNames []string
	for _, item := range q.Select {
		switch e := item.Expr.(type) {
		case *ColumnRef:
			attr, err := resolveColumn(grouped.Schema(), e)
			if err != nil {
				return nil, nil, fmt.Errorf("sql: select column %q must appear in GROUP BY: %w", e, err)
			}
			fromAttrs = append(fromAttrs, attr)
		case *AggCall:
			name, ok := internal[e.String()]
			if !ok {
				return nil, nil, fmt.Errorf("sql: unresolved aggregate %q", e)
			}
			fromAttrs = append(fromAttrs, name)
		default:
			return nil, nil, fmt.Errorf("sql: unsupported select item %q", item.Expr)
		}
		outNames = append(outNames, outputName(item))
	}
	if err := checkDistinctNames(outNames); err != nil {
		return nil, nil, err
	}
	pre := &preProjection{input: grouped, fromAttrs: fromAttrs, outNames: outNames}
	return renameOutputs(&plan.Project{Input: grouped, Attrs: fromAttrs}, fromAttrs, outNames), pre, nil
}

// havingPred converts a HAVING expression over the grouped schema,
// mapping aggregate calls to their internal output attributes.
func (db *DB) havingPred(e Expr, sch schema.Schema, internal map[string]string) (pred.Predicate, error) {
	switch x := e.(type) {
	case *BoolOp:
		l, err := db.havingPred(x.Left, sch, internal)
		if err != nil {
			return nil, err
		}
		r, err := db.havingPred(x.Right, sch, internal)
		if err != nil {
			return nil, err
		}
		if x.Op == "AND" {
			return pred.And{l, r}, nil
		}
		return pred.Or{l, r}, nil
	case *NotExpr:
		inner, err := db.havingPred(x.Inner, sch, internal)
		if err != nil {
			return nil, err
		}
		return pred.Negate(inner), nil
	case *Comparison:
		l, err := db.havingOperand(x.Left, sch, internal)
		if err != nil {
			return nil, err
		}
		r, err := db.havingOperand(x.Right, sch, internal)
		if err != nil {
			return nil, err
		}
		op, err := compareOp(x.Op)
		if err != nil {
			return nil, err
		}
		return pred.Compare(l, op, r), nil
	default:
		return nil, fmt.Errorf("sql: unsupported HAVING expression %q", e)
	}
}

func (db *DB) havingOperand(e Expr, sch schema.Schema, internal map[string]string) (pred.Operand, error) {
	switch x := e.(type) {
	case *AggCall:
		name, ok := internal[x.String()]
		if !ok {
			return pred.Operand{}, fmt.Errorf("sql: HAVING aggregate %q not computed", x)
		}
		return pred.Attr(name), nil
	case *ColumnRef:
		attr, err := resolveColumn(sch, x)
		if err != nil {
			return pred.Operand{}, err
		}
		return pred.Attr(attr), nil
	case *Literal:
		return pred.Const(literalValue(x)), nil
	case *BoundArg:
		return pred.Const(x.Val), nil
	case *Placeholder:
		return pred.Operand{}, fmt.Errorf("sql: unbound placeholder ? (bind arguments with SubstituteParams before planning)")
	default:
		return pred.Operand{}, fmt.Errorf("sql: unsupported HAVING operand %q", e)
	}
}

// toPred converts a WHERE/ON expression over the given schema.
// aggregatesAllowed is false here; aggregates belong in HAVING.
func (db *DB) toPred(e Expr, sch schema.Schema, _ bool) (pred.Predicate, error) {
	switch x := e.(type) {
	case *BoolOp:
		l, err := db.toPred(x.Left, sch, false)
		if err != nil {
			return nil, err
		}
		r, err := db.toPred(x.Right, sch, false)
		if err != nil {
			return nil, err
		}
		if x.Op == "AND" {
			return pred.And{l, r}, nil
		}
		return pred.Or{l, r}, nil
	case *NotExpr:
		inner, err := db.toPred(x.Inner, sch, false)
		if err != nil {
			return nil, err
		}
		return pred.Negate(inner), nil
	case *Comparison:
		l, err := db.toOperand(x.Left, sch)
		if err != nil {
			return nil, err
		}
		r, err := db.toOperand(x.Right, sch)
		if err != nil {
			return nil, err
		}
		op, err := compareOp(x.Op)
		if err != nil {
			return nil, err
		}
		return pred.Compare(l, op, r), nil
	case *ExistsExpr:
		return &existsPred{db: db, sub: x.Query, negated: x.Negated}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported predicate %q", e)
	}
}

func (db *DB) toOperand(e Expr, sch schema.Schema) (pred.Operand, error) {
	switch x := e.(type) {
	case *ColumnRef:
		attr, err := resolveColumn(sch, x)
		if err != nil {
			return pred.Operand{}, err
		}
		return pred.Attr(attr), nil
	case *Literal:
		return pred.Const(literalValue(x)), nil
	case *BoundArg:
		return pred.Const(x.Val), nil
	case *Placeholder:
		return pred.Operand{}, fmt.Errorf("sql: unbound placeholder ? (bind arguments with SubstituteParams before planning)")
	case *AggCall:
		return pred.Operand{}, fmt.Errorf("sql: aggregate %q not allowed here (use HAVING)", x)
	default:
		return pred.Operand{}, fmt.Errorf("sql: unsupported operand %q", e)
	}
}

func compareOp(op string) (pred.Op, error) {
	switch op {
	case "=":
		return pred.Eq, nil
	case "<>":
		return pred.Ne, nil
	case "<":
		return pred.Lt, nil
	case "<=":
		return pred.Le, nil
	case ">":
		return pred.Gt, nil
	case ">=":
		return pred.Ge, nil
	default:
		return 0, fmt.Errorf("sql: unknown operator %q", op)
	}
}

func literalValue(l *Literal) value.Value {
	switch l.Kind {
	case 'i':
		return value.Int(l.Int)
	case 'f':
		return value.Float(l.Float)
	default:
		return value.String(l.Str)
	}
}

// resolveColumn maps a possibly-qualified reference to a qualified
// attribute of the schema: "t.c" matches exactly "t.c"; bare "c"
// matches a unique attribute named "c" or suffixed ".c".
func resolveColumn(sch schema.Schema, col *ColumnRef) (string, error) {
	if col.Table != "" {
		name := col.Table + "." + col.Column
		if sch.Contains(name) {
			return name, nil
		}
		return "", fmt.Errorf("sql: unknown column %q in %v", name, sch)
	}
	var matches []string
	for _, a := range sch.Attrs() {
		if a == col.Column || strings.HasSuffix(a, "."+col.Column) {
			matches = append(matches, a)
		}
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("sql: unknown column %q in %v", col.Column, sch)
	case 1:
		return matches[0], nil
	default:
		return "", fmt.Errorf("sql: ambiguous column %q (candidates %v)", col.Column, matches)
	}
}

// outputName picks the result column name of a select item.
func outputName(item SelectItem) string {
	if item.As != "" {
		return item.As
	}
	switch e := item.Expr.(type) {
	case *ColumnRef:
		return e.Column
	case *AggCall:
		return e.Func
	default:
		return "?column?"
	}
}

func checkDistinctNames(names []string) error {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return fmt.Errorf("sql: duplicate output column %q; use AS to disambiguate", n)
		}
		seen[n] = true
	}
	return nil
}

// renameOutputs renames projected attributes to their output names.
func renameOutputs(node plan.Node, from, to []string) plan.Node {
	out := node
	for i := range from {
		if from[i] != to[i] {
			out = &plan.Rename{Input: out, From: from[i], To: to[i]}
		}
	}
	return out
}

// collectAggs gathers aggregate calls from the select list and
// HAVING clause.
func collectAggs(q *Query) []*AggCall {
	var out []*AggCall
	for _, item := range q.Select {
		if call, ok := item.Expr.(*AggCall); ok {
			out = append(out, call)
		}
	}
	out = append(out, aggsInExpr(q.Having)...)
	return out
}

func aggsInExpr(e Expr) []*AggCall {
	switch x := e.(type) {
	case nil:
		return nil
	case *AggCall:
		return []*AggCall{x}
	case *BoolOp:
		return append(aggsInExpr(x.Left), aggsInExpr(x.Right)...)
	case *NotExpr:
		return aggsInExpr(x.Inner)
	case *Comparison:
		return append(aggsInExpr(x.Left), aggsInExpr(x.Right)...)
	default:
		return nil
	}
}
