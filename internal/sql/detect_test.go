package sql

import (
	"math/rand"
	"testing"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func TestDetectGreatDivideOnQ3(t *testing.T) {
	db := suppliersDB()
	node, detected, err := db.PlanWithDetection(queryQ3)
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Fatal("Q3 should be detected as a great divide")
	}
	if countGreatDivides(node) != 1 {
		t.Fatalf("detected plan lacks a great divide:\n%s", plan.Format(node))
	}
	// The rewritten plan must compute exactly Q3's (= Q1's) answer.
	got := plan.Eval(node)
	if !got.EquivalentTo(q1Expected()) {
		t.Errorf("detected plan = %v, want %v", got, q1Expected())
	}
}

func TestDetectSmallDivideAllBlueParts(t *testing.T) {
	db := suppliersDB()
	const q = `
SELECT DISTINCT s#
FROM supplies AS s1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = 'blue' AND NOT EXISTS (
    SELECT * FROM supplies AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`
	node, detected, err := db.PlanWithDetection(q)
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Fatal("single-table pattern should be detected as a small divide")
	}
	if countSmallDivides(node) != 1 {
		t.Fatalf("detected plan lacks a small divide:\n%s", plan.Format(node))
	}
	got := plan.Eval(node)
	want := relation.FromRows(schema.New("s#"), [][]any{{"s2"}, {"s3"}})
	if !got.Equal(want) {
		t.Errorf("detected = %v, want %v", got, want)
	}
	// And it must agree with the nested-iteration fallback.
	fallback, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EquivalentTo(fallback) {
		t.Errorf("detector disagrees with fallback: %v vs %v", got, fallback)
	}
}

func TestDetectSmallDivideEmptyRestriction(t *testing.T) {
	// Restriction matching nothing: NOT EXISTS over the empty set is
	// vacuously true, so all suppliers qualify; division by the empty
	// divisor must agree.
	db := suppliersDB()
	const q = `
SELECT DISTINCT s#
FROM supplies AS s1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = 'no-such-color' AND NOT EXISTS (
    SELECT * FROM supplies AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`
	node, detected, err := db.PlanWithDetection(q)
	if err != nil || !detected {
		t.Fatalf("detected=%t err=%v", detected, err)
	}
	got := plan.Eval(node)
	fallback, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EquivalentTo(fallback) {
		t.Errorf("empty-restriction mismatch: %v vs %v", got, fallback)
	}
	if got.Len() != 4 {
		t.Errorf("all 4 suppliers should qualify, got %v", got)
	}
}

func TestDetectorAgreesWithFallbackOnRandomData(t *testing.T) {
	// The strongest guarantee: on random databases the detected plan
	// and the nested-iteration execution return identical rows.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		supplies := relation.New(schema.New("s#", "p#"))
		for i := 0; i < 12+rng.Intn(20); i++ {
			supplies.Insert(relation.Tuple{
				value.Int(int64(rng.Intn(5))), value.Int(int64(rng.Intn(6))),
			})
		}
		parts := relation.New(schema.New("p#", "color"))
		for p := 0; p < 6; p++ {
			parts.Insert(relation.Tuple{
				value.Int(int64(p)), value.Int(int64(rng.Intn(3))),
			})
		}
		db := NewDB()
		db.Register("supplies", supplies)
		db.Register("parts", parts)

		node, detected, err := db.PlanWithDetection(queryQ3)
		if err != nil || !detected {
			t.Fatalf("trial %d: detected=%t err=%v", trial, detected, err)
		}
		got := plan.Eval(node)
		fallback, err := db.Query(queryQ3)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EquivalentTo(fallback) {
			t.Fatalf("trial %d: detector wrong\ndetected:\n%v\nfallback:\n%v\nsupplies:\n%v\nparts:\n%v",
				trial, got, fallback, supplies, parts)
		}
	}
}

func TestDetectorDeclinesNonPatterns(t *testing.T) {
	db := suppliersDB()
	declined := []string{
		// Plain queries.
		`SELECT s# FROM supplies`,
		`SELECT s#, color FROM supplies AS s, parts AS p WHERE s.p# = p.p#`,
		// Single NOT EXISTS (anti-join, not division).
		`SELECT DISTINCT s# FROM supplies AS s1 WHERE NOT EXISTS (
            SELECT * FROM parts AS p WHERE p.p# = s1.p#)`,
		// EXISTS instead of NOT EXISTS at the outer level.
		`SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE EXISTS (
            SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND NOT EXISTS (
              SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`,
		// Inequality correlation: not a containment test.
		`SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS (
            SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND NOT EXISTS (
              SELECT * FROM supplies AS s2 WHERE s2.p# < p2.p# AND s2.s# = s1.s#))`,
		// Middle query over the wrong table.
		`SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS (
            SELECT * FROM supplies AS x WHERE x.s# = s1.s# AND NOT EXISTS (
              SELECT * FROM supplies AS s2 WHERE s2.p# = x.p# AND s2.s# = s1.s#))`,
		// Missing candidate correlation (inner references only y2).
		`SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS (
            SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND NOT EXISTS (
              SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p#))`,
		// OR in the chain.
		`SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS (
            SELECT * FROM parts AS p2 WHERE p2.color = p1.color OR NOT EXISTS (
              SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`,
	}
	for _, q := range declined {
		parsed, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if node, ok := db.DetectDivision(parsed); ok {
			t.Errorf("detector should decline %q, produced:\n%s", q, plan.Format(node))
		}
	}
}

func TestDetectorDeclinesPartialCoverage(t *testing.T) {
	// supplies3 has an extra column the correlation does not cover:
	// the NOT EXISTS pools elements across regions, division would
	// group by (s#, region) — semantics differ, so decline.
	db := NewDB()
	db.Register("supplies3", relation.FromRows(schema.New("s#", "region", "p#"), [][]any{
		{"s1", "east", "p1"}, {"s1", "west", "p2"},
	}))
	db.Register("parts", relation.FromRows(schema.New("p#", "color"), [][]any{
		{"p1", "red"}, {"p2", "red"},
	}))
	const q = `
SELECT DISTINCT s#, color
FROM supplies3 AS s1, parts AS p1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = p1.color AND NOT EXISTS (
    SELECT * FROM supplies3 AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if node, ok := db.DetectDivision(parsed); ok {
		t.Errorf("partial coverage must be declined, produced:\n%s", plan.Format(node))
	}
	// The fallback still answers it (slowly).
	if _, err := db.Query(q); err != nil {
		t.Errorf("fallback must still work: %v", err)
	}
}

func TestDetectorDeclinesSelectingElementColumn(t *testing.T) {
	// Selecting s1.p# (the element column) is outside the quotient
	// schema; the detector must decline rather than drop it.
	db := suppliersDB()
	const q = `
SELECT DISTINCT p#, color
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = p1.color AND NOT EXISTS (
    SELECT * FROM supplies AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.DetectDivision(parsed); ok {
		t.Error("selecting the element column must be declined")
	}
}
