package sql

import (
	"strings"
	"testing"

	"divlaws/internal/plan"
)

// TestOrderByBindsSortNode pins the tentpole shape: ORDER BY is a
// physical plan.Sort over the query block's output, with resolved
// keys and directions — no presentation-level validate-and-discard.
func TestOrderByBindsSortNode(t *testing.T) {
	db := suppliersDB()
	node, err := db.Plan("SELECT p#, color FROM parts ORDER BY color DESC, p#")
	if err != nil {
		t.Fatal(err)
	}
	srt, ok := node.(*plan.Sort)
	if !ok {
		t.Fatalf("plan root = %T, want *plan.Sort\n%s", node, plan.Format(node))
	}
	want := []plan.SortKey{{Attr: "color", Desc: true}, {Attr: "p#"}}
	if len(srt.Keys) != len(want) {
		t.Fatalf("keys = %v, want %v", srt.Keys, want)
	}
	for i, k := range srt.Keys {
		if k != want[i] {
			t.Fatalf("key %d = %v, want %v", i, k, want[i])
		}
	}
	if !strings.Contains(plan.Format(node), "Sort[color DESC, p#]") {
		t.Fatalf("plan rendering missing Sort:\n%s", plan.Format(node))
	}
}

// TestOrderByResolvesOutputAlias checks the single sort-binding path
// sees projection aliases: the sort runs after renameOutputs.
func TestOrderByResolvesOutputAlias(t *testing.T) {
	db := suppliersDB()
	node, err := db.Plan("SELECT p# AS part FROM parts ORDER BY part")
	if err != nil {
		t.Fatal(err)
	}
	srt, ok := node.(*plan.Sort)
	if !ok {
		t.Fatalf("plan root = %T\n%s", node, plan.Format(node))
	}
	if srt.Keys[0].Attr != "part" {
		t.Fatalf("key = %v, want output alias part", srt.Keys[0])
	}
}

// TestOrderByNonOutputColumn is the widening path: a sort column the
// SELECT list projected away binds against the pre-projection schema
// — the projection is widened to carry it through the Sort and a
// final projection strips it, so the output schema is unchanged.
func TestOrderByNonOutputColumn(t *testing.T) {
	db := suppliersDB()
	node, err := db.Plan("SELECT p# FROM parts ORDER BY color DESC, p#")
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := node.(*plan.Project)
	if !ok {
		t.Fatalf("plan root = %T, want the stripping *plan.Project\n%s", node, plan.Format(node))
	}
	if len(proj.Attrs) != 1 || proj.Attrs[0] != "p#" {
		t.Fatalf("strip attrs = %v, want [p#]", proj.Attrs)
	}
	srt, ok := proj.Input.(*plan.Sort)
	if !ok {
		t.Fatalf("strip input = %T, want *plan.Sort\n%s", proj.Input, plan.Format(node))
	}
	want := []plan.SortKey{{Attr: "parts.color", Desc: true}, {Attr: "p#"}}
	for i, k := range srt.Keys {
		if k != want[i] {
			t.Fatalf("key %d = %v, want %v", i, k, want[i])
		}
	}
	got, err := db.Query("SELECT p# FROM parts ORDER BY color DESC, p#")
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"p1", "p2", "p5", "p3", "p4"} // red, red, green, blue, blue
	for i, tup := range got.Tuples() {
		if tup[0].AsString() != order[i] {
			t.Fatalf("row %d = %v, want %s", i, tup, order[i])
		}
	}
}

// TestOrderByNonOutputAliasedSource: referencing a projected column
// by its source name when the SELECT list renamed it sorts on the
// output alias — no widening, the Sort stays the plan root.
func TestOrderByNonOutputAliasedSource(t *testing.T) {
	db := suppliersDB()
	node, err := db.Plan("SELECT p# AS part FROM parts ORDER BY p#")
	if err != nil {
		t.Fatal(err)
	}
	srt, ok := node.(*plan.Sort)
	if !ok {
		t.Fatalf("plan root = %T, want *plan.Sort (no widening)\n%s", node, plan.Format(node))
	}
	if srt.Keys[0].Attr != "part" {
		t.Fatalf("key = %v, want the output alias part", srt.Keys[0])
	}
}

// TestOrderByUnknownColumnStillErrors: widening reaches back to the
// pre-projection schema only; a column in neither schema is still a
// binding error.
func TestOrderByUnknownColumnStillErrors(t *testing.T) {
	db := suppliersDB()
	if _, err := db.Plan("SELECT p# FROM parts ORDER BY nosuch"); err == nil {
		t.Fatal("ORDER BY on an unknown column must fail to bind")
	}
}

// TestOrderByNonOutputGrouped: the widening path through the grouped
// binder — sort on a grouping column the SELECT list dropped.
func TestOrderByNonOutputGrouped(t *testing.T) {
	db := suppliersDB()
	got, err := db.Query("SELECT count(*) AS n FROM parts GROUP BY color ORDER BY color")
	if err != nil {
		t.Fatal(err)
	}
	// blue=2, green=1, red=2 in color order; set semantics collapse
	// the two count-2 groups after the strip, preserving first-seen
	// order: [2, 1].
	tuples := got.Tuples()
	if len(tuples) != 2 {
		t.Fatalf("%d rows, want 2 after set-semantics strip\n%v", len(tuples), tuples)
	}
	if tuples[0][0].AsInt() != 2 || tuples[1][0].AsInt() != 1 {
		t.Fatalf("rows = %v, want counts [2 1]", tuples)
	}
}

// TestOrderByGroupedQuery exercises the unified path through the
// grouped binder: sort on a projected aggregate output name.
func TestOrderByGroupedQuery(t *testing.T) {
	db := suppliersDB()
	node, err := db.Plan("SELECT color, count(*) AS n FROM parts GROUP BY color ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := node.(*plan.Sort); !ok {
		t.Fatalf("plan root = %T, want *plan.Sort\n%s", node, plan.Format(node))
	}
	got, err := db.Query("SELECT color, count(*) AS n FROM parts GROUP BY color ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	tuples := got.Tuples()
	if len(tuples) != 3 {
		t.Fatalf("%d groups, want 3", len(tuples))
	}
	// red=2, blue=2, green=1 — descending counts, ties canonical.
	if tuples[len(tuples)-1][1].AsInt() != 1 {
		t.Fatalf("last group = %v, want the smallest count last", tuples[len(tuples)-1])
	}
}

// TestOrderByOrderedRowsCompatPath checks Eval of a Sort plan
// materializes with sorted insertion order, so even the compat path
// observes the requested order.
func TestOrderByOrderedRowsCompatPath(t *testing.T) {
	db := suppliersDB()
	got, err := db.Query("SELECT p# FROM parts ORDER BY p# DESC")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"p5", "p4", "p3", "p2", "p1"}
	tuples := got.Tuples()
	if len(tuples) != len(want) {
		t.Fatalf("%d rows, want %d", len(tuples), len(want))
	}
	for i, tup := range tuples {
		if tup[0].AsString() != want[i] {
			t.Fatalf("row %d = %v, want %s", i, tup, want[i])
		}
	}
}

// TestDetectionPreservesOrderBy is the satellite for detect.go: the
// NOT EXISTS → division detector used to decline any query with an
// ORDER BY; with physical ordering it preserves the outer ORDER BY
// (and LIMIT) across the rewrite.
func TestDetectionPreservesOrderBy(t *testing.T) {
	db := suppliersDB()
	node, detected, err := db.PlanWithDetection(queryQ3 + " ORDER BY color, s# DESC")
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Fatalf("ordered Q3 must still be detected\n%s", plan.Format(node))
	}
	srt, ok := node.(*plan.Sort)
	if !ok {
		t.Fatalf("detected plan root = %T, want *plan.Sort\n%s", node, plan.Format(node))
	}
	if len(srt.Keys) != 2 || srt.Keys[0].Desc || !srt.Keys[1].Desc {
		t.Fatalf("sort keys = %v, want [color, s# DESC]", srt.Keys)
	}
	if plan.CountDivides(node) != 1 {
		t.Fatalf("detected plan lost its division\n%s", plan.Format(node))
	}
	// Ordered result must equal the unordered division result as sets.
	want := q1Expected()
	if got := plan.Eval(node); !got.EquivalentTo(want) {
		t.Fatalf("ordered detected plan wrong:\n%v\nwant\n%v", got, want)
	}
}

// TestDetectionPreservesOrderByWithLimit covers the fused shape: an
// ordered, limited universal quantification still rewrites to a
// division, with Limit over Sort over the divide.
func TestDetectionPreservesOrderByWithLimit(t *testing.T) {
	db := suppliersDB()
	node, detected, err := db.PlanWithDetection(queryQ3 + " ORDER BY s# LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Fatal("ordered+limited Q3 must still be detected")
	}
	lim, ok := node.(*plan.Limit)
	if !ok {
		t.Fatalf("plan root = %T, want *plan.Limit\n%s", node, plan.Format(node))
	}
	if _, ok := lim.Input.(*plan.Sort); !ok {
		t.Fatalf("Limit input = %T, want *plan.Sort", lim.Input)
	}
	got := plan.Eval(node)
	if got.Len() != 2 {
		t.Fatalf("%d rows, want 2", got.Len())
	}
	// Top-2 by s#: s1 appears once ("s1","red"); second row is an s2.
	for _, tup := range got.Tuples() {
		s := tup[0].AsString()
		if s != "s1" && s != "s2" {
			t.Fatalf("row %v not among the two smallest suppliers", tup)
		}
	}
}

// TestDetectionDeclinesNonQuotientOrderBy: a sort column outside the
// quotient schema (the dividend's element column p#, whose
// multiplicity division does not preserve) must decline the rewrite
// and fall back to nested iteration, which widens its projection to
// order by it.
func TestDetectionDeclinesNonQuotientOrderBy(t *testing.T) {
	db := suppliersDB()
	q := `
SELECT DISTINCT s#
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
        SELECT *
        FROM parts AS p2
        WHERE p2.color = p1.color AND
              NOT EXISTS (
                SELECT *
                FROM supplies AS s2
                WHERE s2.p# = p2.p# AND
                      s2.s# = s1.s#)) ORDER BY p1.color`
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if node, detected := db.DetectDivision(parsed); detected {
		t.Fatalf("ORDER BY on a non-quotient column must decline the rewrite\n%s", plan.Format(node))
	}
	// The fallback binds the non-output sort column against the
	// pre-projection schema: widen, sort, strip. The stripped result
	// is the same quotient set the unordered statement computes.
	node, detected, err := db.PlanWithDetection(q)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Fatalf("fallback plan unexpectedly detected as a division\n%s", plan.Format(node))
	}
	proj, ok := node.(*plan.Project)
	if !ok {
		t.Fatalf("plan root = %T, want the stripping *plan.Project\n%s", node, plan.Format(node))
	}
	srt, ok := proj.Input.(*plan.Sort)
	if !ok {
		t.Fatalf("strip input = %T, want *plan.Sort\n%s", proj.Input, plan.Format(node))
	}
	if len(srt.Keys) != 1 || srt.Keys[0].Attr != "p1.color" {
		t.Fatalf("sort keys = %v, want [p1.color]", srt.Keys)
	}
	want, err := db.Query(strings.TrimSuffix(strings.TrimSpace(q), "ORDER BY p1.color"))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Eval(node); !got.EquivalentTo(want) {
		t.Fatalf("widened ordered plan wrong:\n%v\nwant\n%v", got, want)
	}
}

// TestExplainRendersTopKPartitioning checks the EXPLAIN surface: an
// ORDER BY + LIMIT over a parallelized division renders the TopK
// node and the per-partition pushdown detail.
func TestExplainRendersTopKPartitioning(t *testing.T) {
	db := suppliersDB()
	// Workers=2: the tiny parts divisor (5 rows) still clears the
	// 2-per-worker floor of the great-divide parallelization.
	ex, err := db.Explain(queryQ1+" ORDER BY s# LIMIT 2", ExplainOptions{
		Optimize: true, Workers: 2, ParallelThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The fused TopK is pushed below the output renames/projection,
	// so its keys are in the divide's qualified attribute space.
	if !strings.Contains(ex.Report, "TopK[k=2; s.s#]") {
		t.Fatalf("report missing pushed-down TopK node:\n%s", ex.Report)
	}
	if !strings.Contains(ex.Report, "top-k: per-partition heap(k=2)") {
		t.Fatalf("report missing top-k partitioning detail:\n%s", ex.Report)
	}
	if !strings.Contains(ex.Report, "FuseTopK(k=2)") {
		t.Fatalf("report missing FuseTopK trace:\n%s", ex.Report)
	}
	if !strings.Contains(ex.Report, "PushTopK(per-partition k=2 + merge)") {
		t.Fatalf("report missing order-aware Parallelize trace:\n%s", ex.Report)
	}

	// k=0 compiles to the generic TopKIter (subtree never opened), so
	// the report must not claim a per-partition pushdown.
	ex0, err := db.Explain(queryQ1+" ORDER BY s# LIMIT 0", ExplainOptions{
		Optimize: true, Workers: 2, ParallelThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ex0.Report, "top-k: per-partition") || strings.Contains(ex0.Report, "PushTopK") {
		t.Fatalf("k=0 report claims a pushdown that never runs:\n%s", ex0.Report)
	}
}
