package sql_test

import (
	"fmt"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/sql"
)

// ExampleDB_Query runs the paper's Q2: suppliers supplying all blue
// parts, via the proposed DIVIDE BY syntax.
func ExampleDB_Query() {
	db := sql.NewDB()
	db.Register("supplies", relation.FromRows(schema.New("s#", "p#"), [][]any{
		{"s1", "p1"},
		{"s2", "p1"}, {"s2", "p2"},
	}))
	db.Register("parts", relation.FromRows(schema.New("p#", "color"), [][]any{
		{"p1", "blue"}, {"p2", "blue"},
	}))
	res, err := db.Query(`
SELECT s#
FROM supplies AS s DIVIDE BY (
    SELECT p# FROM parts WHERE color = 'blue') AS p
ON s.p# = p.p#`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res)
	// Output:
	// s#
	// s2
}

// ExampleDB_PlanWithDetection shows the NOT EXISTS pattern being
// rewritten to a first-class division.
func ExampleDB_PlanWithDetection() {
	db := sql.NewDB()
	db.Register("supplies", relation.FromRows(schema.New("s#", "p#"), [][]any{
		{"s1", "p1"}, {"s1", "p2"},
	}))
	db.Register("parts", relation.FromRows(schema.New("p#", "color"), [][]any{
		{"p1", "red"}, {"p2", "red"},
	}))
	_, detected, err := db.PlanWithDetection(`
SELECT DISTINCT s#, color
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
  SELECT * FROM parts AS p2
  WHERE p2.color = p1.color AND NOT EXISTS (
    SELECT * FROM supplies AS s2
    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))`)
	fmt.Println(detected, err)
	// Output:
	// true <nil>
}
