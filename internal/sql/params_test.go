package sql

import (
	"strings"
	"testing"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func TestParseCountsPlaceholders(t *testing.T) {
	cases := []struct {
		text string
		want int
	}{
		{`SELECT s# FROM supplies WHERE p# = 'p1'`, 0},
		{`SELECT s# FROM supplies WHERE p# = ?`, 1},
		{`SELECT s# FROM supplies AS s DIVIDE BY (
		    SELECT p# FROM parts WHERE color = ?) AS p ON s.p# = p.p#`, 1},
		{`SELECT s# FROM supplies WHERE p# = ? OR p# = ?`, 2},
	}
	for _, tc := range cases {
		q, err := Parse(tc.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.text, err)
		}
		if q.Params != tc.want {
			t.Errorf("Parse(%q).Params = %d, want %d", tc.text, q.Params, tc.want)
		}
	}
}

func TestSubstituteParamsResolvesAtBindTime(t *testing.T) {
	db := suppliersDB()
	q, err := Parse(`SELECT s#
FROM supplies AS s DIVIDE BY (
  SELECT p# FROM parts WHERE color = ?) AS p
ON s.p# = p.p#`)
	if err != nil {
		t.Fatal(err)
	}

	// The same parsed AST binds repeatedly with different arguments.
	for _, tc := range []struct {
		color string
		want  []string
	}{
		{"blue", []string{"s2", "s3"}},
		{"red", []string{"s1", "s3"}},
		{"green", []string{"s3", "s4"}},
	} {
		bound, err := SubstituteParams(q, []value.Value{value.String(tc.color)})
		if err != nil {
			t.Fatal(err)
		}
		node, err := db.Bind(bound)
		if err != nil {
			t.Fatal(err)
		}
		got := plan.Eval(node)
		if got.Len() != len(tc.want) {
			t.Fatalf("color %s: %d rows, want %d:\n%v", tc.color, got.Len(), len(tc.want), got)
		}
		for _, s := range tc.want {
			if !strings.Contains(got.String(), s) {
				t.Errorf("color %s: missing %s in\n%v", tc.color, s, got)
			}
		}
	}

	// The original AST still contains the placeholder (no mutation).
	if _, err := db.Bind(q); err == nil || !strings.Contains(err.Error(), "unbound placeholder") {
		t.Errorf("binding unsubstituted AST should report the placeholder, got %v", err)
	}
}

func TestSubstituteParamsArgCount(t *testing.T) {
	q, err := Parse(`SELECT s# FROM supplies WHERE p# = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SubstituteParams(q, nil); err == nil {
		t.Error("missing argument should error")
	}
	if _, err := SubstituteParams(q, []value.Value{value.Int(1), value.Int(2)}); err == nil {
		t.Error("extra argument should error")
	}
}

func TestSubstituteParamsAllKinds(t *testing.T) {
	db := NewDB()
	db.Register("nums", relation.FromRows(schema.New("a", "b"), [][]any{
		{1, 1.5}, {2, 1.5}, {2, 7.0},
	}))
	q, err := Parse(`SELECT a FROM nums WHERE a >= ? AND b = ?`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := SubstituteParams(q, []value.Value{value.Int(2), value.Float(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	node, err := db.Bind(bound)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Eval(node); got.Len() != 1 {
		t.Errorf("bound numeric query = %v", got)
	}
}
