package sql

import (
	"fmt"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// existsPred implements correlated [NOT] EXISTS with nested-
// iteration semantics: for every candidate tuple, outer column
// references inside the subquery are replaced by the tuple's values
// and the subquery is bound and evaluated afresh. This is the
// naive execution strategy for the paper's query Q3 — deliberately
// so, since Q3 exists to be compared against the DIVIDE BY plan.
type existsPred struct {
	db      *DB
	sub     *Query
	negated bool
}

// Eval implements pred.Predicate.
func (e *existsPred) Eval(t relation.Tuple, sch schema.Schema) bool {
	substituted := e.db.substituteQuery(e.sub, sch, t, nil)
	node, err := e.db.bindQuery(substituted)
	if err != nil {
		panic(fmt.Sprintf("sql: correlated subquery failed to bind: %v", err))
	}
	nonEmpty := !plan.Eval(node).Empty()
	return nonEmpty != e.negated
}

// Attrs implements pred.Predicate. Correlated predicates may touch
// any outer attribute, so they advertise a sentinel name that never
// appears in a real schema; this keeps rewrite laws from relocating
// them (pred.OnlyOver is always false).
func (e *existsPred) Attrs() []string { return []string{"·correlated·"} }

// String implements pred.Predicate.
func (e *existsPred) String() string {
	if e.negated {
		return "NOT EXISTS (subquery)"
	}
	return "EXISTS (subquery)"
}

// substituteQuery deep-copies q, replacing column references that
// resolve in the outer schema (and not in any enclosing subquery
// scope on the stack) with literal values from the outer tuple.
func (db *DB) substituteQuery(q *Query, outer schema.Schema, t relation.Tuple, stack []schema.Schema) *Query {
	// The subquery's own FROM scope shadows outer names.
	var own schema.Schema
	if from, err := db.bindFrom(q.From); err == nil {
		own = from.Schema()
	}
	stack = append(stack, own)

	out := &Query{
		Distinct: q.Distinct,
		Star:     q.Star,
		From:     q.From,
		GroupBy:  q.GroupBy,
		OrderBy:  q.OrderBy,
		Select:   q.Select,
		Limit:    q.Limit,
		HasLimit: q.HasLimit,
	}
	out.Where = db.substituteExpr(q.Where, outer, t, stack)
	out.Having = db.substituteExpr(q.Having, outer, t, stack)
	return out
}

func (db *DB) substituteExpr(e Expr, outer schema.Schema, t relation.Tuple, stack []schema.Schema) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *BoolOp:
		return &BoolOp{
			Op:    x.Op,
			Left:  db.substituteExpr(x.Left, outer, t, stack),
			Right: db.substituteExpr(x.Right, outer, t, stack),
		}
	case *NotExpr:
		return &NotExpr{Inner: db.substituteExpr(x.Inner, outer, t, stack)}
	case *Comparison:
		return &Comparison{
			Op:    x.Op,
			Left:  db.substituteScalar(x.Left, outer, t, stack),
			Right: db.substituteScalar(x.Right, outer, t, stack),
		}
	case *ExistsExpr:
		return &ExistsExpr{
			Negated: x.Negated,
			Query:   db.substituteQuery(x.Query, outer, t, stack),
		}
	default:
		return e
	}
}

func (db *DB) substituteScalar(e Expr, outer schema.Schema, t relation.Tuple, stack []schema.Schema) Expr {
	col, ok := e.(*ColumnRef)
	if !ok {
		return e
	}
	// Shadowed by an enclosing subquery scope? Then leave it alone.
	for _, sch := range stack {
		if _, err := resolveColumn(sch, col); err == nil {
			return e
		}
	}
	attr, err := resolveColumn(outer, col)
	if err != nil {
		return e // unresolved here; binding will report it
	}
	idx := outer.MustIndex(attr)
	return valueLiteral(t[idx])
}

// valueLiteral converts a runtime value back into a literal AST
// node.
func valueLiteral(v value.Value) Expr {
	switch v.Kind() {
	case value.KindInt:
		return &Literal{Int: v.AsInt(), Kind: 'i'}
	case value.KindFloat:
		return &Literal{Float: v.AsFloat(), Kind: 'f'}
	case value.KindString:
		return &Literal{Str: v.AsString(), Kind: 's'}
	default:
		panic(fmt.Sprintf("sql: cannot correlate on %s values", v.Kind()))
	}
}
