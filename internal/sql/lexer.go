// Package sql implements a SQL front end for the paper's §4 syntax
// proposal: a lexer, recursive-descent parser, and binder that
// translates queries — including the hypothetical
//
//	<table reference> DIVIDE BY <table reference> ON <search condition>
//
// construct — into logical plans over a catalog of relations. The
// binder applies the paper's disambiguation rule: the quotient is a
// small divide when every divisor attribute appears in the ON
// clause's conjunction of equi-joins, and a great divide otherwise.
// Correlated [NOT] EXISTS subqueries are supported so the paper's
// query Q3 (the double-negation formulation) runs for comparison.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . * ? =, <>, <, <=, >, >=
)

// token is one lexical unit; Pos is a byte offset for error
// messages.
type token struct {
	Kind tokenKind
	Text string // keywords are uppercased; identifiers keep case
	Pos  int
}

// keywords recognized by the parser.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"AS": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"EXISTS": true, "DIVIDE": true, "ASC": true, "DESC": true,
	"LIMIT": true,
}

// lex tokenizes the input. Identifiers may contain '#' to support
// the paper's s#/p# column names.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < len(input) && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{Kind: tokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, token{Kind: tokIdent, Text: word, Pos: start})
			}
		case unicode.IsDigit(c):
			start := i
			seenDot := false
			for i < len(input) {
				d := rune(input[i])
				if d == '.' && !seenDot && i+1 < len(input) && unicode.IsDigit(rune(input[i+1])) {
					seenDot = true
					i++
					continue
				}
				if !unicode.IsDigit(d) {
					break
				}
				i++
			}
			toks = append(toks, token{Kind: tokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, token{Kind: tokString, Text: sb.String(), Pos: start})
		case strings.ContainsRune("(),.*?", c):
			toks = append(toks, token{Kind: tokSymbol, Text: string(c), Pos: i})
			i++
		case c == '=':
			toks = append(toks, token{Kind: tokSymbol, Text: "=", Pos: i})
			i++
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '>' || input[i+1] == '=') {
				toks = append(toks, token{Kind: tokSymbol, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, token{Kind: tokSymbol, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{Kind: tokSymbol, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, token{Kind: tokSymbol, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{Kind: tokSymbol, Text: "<>", Pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{Kind: tokEOF, Pos: len(input)})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '#'
}
