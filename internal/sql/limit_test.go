package sql

import (
	"strings"
	"testing"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func TestParseLimit(t *testing.T) {
	cases := []struct {
		text  string
		n     int64
		has   bool
		order int // ORDER BY items, to prove clause ordering
	}{
		{"SELECT * FROM r", 0, false, 0},
		{"SELECT * FROM r LIMIT 0", 0, true, 0},
		{"SELECT * FROM r LIMIT 5", 5, true, 0},
		{"SELECT a FROM r WHERE a > 1 ORDER BY a LIMIT 10", 10, true, 1},
		{"SELECT a FROM r GROUP BY a HAVING count(*) > 2 LIMIT 3", 3, true, 0},
	}
	for _, tc := range cases {
		q, err := Parse(tc.text)
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		if q.HasLimit != tc.has || q.Limit != tc.n {
			t.Errorf("%q: Limit = (%d, %t), want (%d, %t)", tc.text, q.Limit, q.HasLimit, tc.n, tc.has)
		}
		if len(q.OrderBy) != tc.order {
			t.Errorf("%q: OrderBy = %d items, want %d", tc.text, len(q.OrderBy), tc.order)
		}
	}
}

func TestParseLimitErrors(t *testing.T) {
	for _, text := range []string{
		"SELECT * FROM r LIMIT",       // missing count
		"SELECT * FROM r LIMIT x",     // not a number
		"SELECT * FROM r LIMIT 1.5",   // not an integer
		"SELECT * FROM r LIMIT 'a'",   // string
		"SELECT * FROM r LIMIT 5 6",   // trailing input
		"SELECT * FROM r LIMIT 5 , 6", // no comma form
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%q: expected parse error", text)
		}
	}
}

func TestParseLimitInSubquery(t *testing.T) {
	q, err := Parse("SELECT * FROM (SELECT a FROM r LIMIT 2) AS s LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasLimit || q.Limit != 1 {
		t.Fatalf("outer limit = (%d, %t)", q.Limit, q.HasLimit)
	}
	sub, ok := q.From[0].(*SubqueryTable)
	if !ok {
		t.Fatalf("From[0] = %T", q.From[0])
	}
	if !sub.Query.HasLimit || sub.Query.Limit != 2 {
		t.Fatalf("inner limit = (%d, %t)", sub.Query.Limit, sub.Query.HasLimit)
	}
}

func TestLimitParamsSurviveBinding(t *testing.T) {
	q, err := Parse("SELECT a FROM r WHERE a = ? LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := SubstituteParams(q, []value.Value{value.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !bound.HasLimit || bound.Limit != 7 {
		t.Fatalf("bound limit = (%d, %t), want (7, true)", bound.Limit, bound.HasLimit)
	}
}

func limitTestDB() *DB {
	db := NewDB()
	r := relation.New(schema.New("a", "b"))
	for i := int64(0); i < 20; i++ {
		r.Insert(relation.Tuple{value.Int(i), value.Int(i % 3)})
	}
	db.Register("r", r)
	return db
}

func TestBindLimitProducesPlanNode(t *testing.T) {
	db := limitTestDB()
	node, err := db.Plan("SELECT a FROM r LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	lim, ok := node.(*plan.Limit)
	if !ok {
		t.Fatalf("plan root = %T, want *plan.Limit\n%s", node, plan.Format(node))
	}
	if lim.N != 4 {
		t.Fatalf("Limit N = %d", lim.N)
	}
	if !strings.Contains(plan.Format(node), "Limit[4]") {
		t.Fatalf("plan rendering missing Limit:\n%s", plan.Format(node))
	}
}

func TestQueryLimitCompatPath(t *testing.T) {
	db := limitTestDB()
	for _, tc := range []struct {
		text string
		want int
	}{
		{"SELECT a FROM r LIMIT 0", 0},
		{"SELECT a FROM r LIMIT 1", 1},
		{"SELECT a FROM r LIMIT 5", 5},
		{"SELECT a FROM r LIMIT 100", 20}, // beyond result size
	} {
		got, err := db.Query(tc.text)
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		if got.Len() != tc.want {
			t.Errorf("%q: %d rows, want %d", tc.text, got.Len(), tc.want)
		}
	}
}

func TestDetectionPreservesOuterLimit(t *testing.T) {
	db := suppliersDB()
	node, detected, err := db.PlanWithDetection(queryQ3 + " LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Fatal("Q3 with LIMIT should still be detected")
	}
	lim, ok := node.(*plan.Limit)
	if !ok {
		t.Fatalf("detected plan root = %T, want *plan.Limit\n%s", node, plan.Format(node))
	}
	if lim.N != 1 {
		t.Fatalf("Limit N = %d", lim.N)
	}
	if got := plan.Eval(node); got.Len() != 1 {
		t.Fatalf("detected plan with LIMIT 1 returned %d rows", got.Len())
	}
}

func TestDetectionDeclinesInnerLimit(t *testing.T) {
	// A LIMIT inside a NOT EXISTS block changes which subquery results
	// exist, so the division rewrite is unsound; the detector must
	// fall back to nested iteration (which honors the inner limit).
	db := suppliersDB()
	const q = `
SELECT DISTINCT s#, color
FROM supplies AS s1, parts AS p1
WHERE NOT EXISTS (
        SELECT *
        FROM parts AS p2
        WHERE p2.color = p1.color AND
              NOT EXISTS (
                SELECT *
                FROM supplies AS s2
                WHERE s2.p# = p2.p# AND
                      s2.s# = s1.s#) LIMIT 0)`
	_, detected, err := db.PlanWithDetection(q)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Fatal("inner LIMIT must decline the division rewrite")
	}
}

func TestOrderByWithLimitRejected(t *testing.T) {
	// Historic name kept for continuity: ORDER BY + LIMIT is no longer
	// rejected — it binds to Limit over a physical Sort (which the
	// optimizer fuses into TopK), and the combination means the true
	// top n, not n arbitrary sorted rows.
	db := limitTestDB()
	node, err := db.Plan("SELECT a FROM r ORDER BY a DESC LIMIT 3")
	if err != nil {
		t.Fatalf("ORDER BY with LIMIT must bind now: %v", err)
	}
	lim, ok := node.(*plan.Limit)
	if !ok {
		t.Fatalf("plan root = %T, want *plan.Limit\n%s", node, plan.Format(node))
	}
	srt, ok := lim.Input.(*plan.Sort)
	if !ok {
		t.Fatalf("Limit input = %T, want *plan.Sort\n%s", lim.Input, plan.Format(node))
	}
	if len(srt.Keys) != 1 || srt.Keys[0].Attr != "a" || !srt.Keys[0].Desc {
		t.Fatalf("sort keys = %v, want [a DESC]", srt.Keys)
	}
	// The compat path must return the true top 3: the three largest a.
	got, err := db.Query("SELECT a FROM r ORDER BY a DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("%d rows, want 3", got.Len())
	}
	for i, tup := range got.Tuples() {
		if want := int64(19 - i); tup[0].AsInt() != want {
			t.Fatalf("row %d = %v, want a=%d (descending top-3)", i, tup, want)
		}
	}
	// Each clause alone stays fine.
	if _, err := db.Plan("SELECT a FROM r ORDER BY a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Plan("SELECT a FROM r LIMIT 3"); err != nil {
		t.Fatal(err)
	}
	// Physical ordering is strict: an unresolvable sort column is an
	// error now, not a presentation-level shrug.
	if _, err := db.Plan("SELECT a FROM r ORDER BY nope"); err == nil {
		t.Fatal("ORDER BY over an unknown column must fail to bind")
	}
}

func TestLimitIterPreservesFinalTupleOnCloseError(t *testing.T) {
	// Covered at the exec level: see internal/exec (LimitIter keeps
	// the N-th tuple and defers a teardown error); here we pin the
	// end-to-end behavior that LIMIT 1 over the compat path returns
	// its row.
	db := limitTestDB()
	got, err := db.Query("SELECT a FROM r LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("%d rows", got.Len())
	}
}
