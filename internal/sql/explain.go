package sql

import (
	"fmt"
	"strings"

	"divlaws/internal/exec"
	"divlaws/internal/laws"
	"divlaws/internal/optimizer"
	"divlaws/internal/plan"
)

// ExplainOptions configures Explain.
type ExplainOptions struct {
	// Detect rewrites NOT EXISTS universal quantification into
	// first-class divisions before anything else.
	Detect bool
	// Optimize applies the division rewrite laws.
	Optimize bool
	// AllowDataDependent enables c1-style data-dependent rule
	// preconditions during optimization.
	AllowDataDependent bool
	// Workers, when >= 2, parallelizes divisions whose estimated
	// dividend cardinality exceeds ParallelThreshold.
	Workers int
	// ParallelThreshold is the parallelization cutoff; 0 means
	// optimizer.DefaultParallelThreshold.
	ParallelThreshold float64
	// Batch selects the execution path reflected by the report's
	// [batch] plan annotation: operators the compiler would run
	// batch-at-a-time on the final plan are marked [batch]. The zero
	// value (exec.BatchAuto) mirrors the executor's automatic
	// selection, including the DIVLAWS_FORCE_BATCH override.
	Batch exec.BatchMode
}

// Explained is the result of Explain: the final executable plan and
// a human-readable report of how it was derived.
type Explained struct {
	// Plan is the plan after all requested rewrites.
	Plan plan.Node
	// Detected reports whether a NOT EXISTS pattern was rewritten to
	// a division.
	Detected bool
	// Report is the rendered explanation: logical plan, optimized
	// plan with costs, the rule trace, and — for parallel operators —
	// the chosen partitioning strategy.
	Report string
}

// Explain plans a SELECT statement and renders every stage of the
// rewrite pipeline: detection, law-based optimization, and
// parallelization. It is the plan-printing surface behind divsql's
// -explain flag.
func (db *DB) Explain(text string, opts ExplainOptions) (Explained, error) {
	q, err := Parse(text)
	if err != nil {
		return Explained{}, err
	}
	return db.ExplainQuery(q, opts)
}

// ExplainQuery is Explain over an already-parsed (and, for prepared
// statements, parameter-substituted) query.
func (db *DB) ExplainQuery(q *Query, opts ExplainOptions) (Explained, error) {
	var ex Explained
	var node plan.Node
	var err error
	if opts.Detect {
		node, ex.Detected, err = db.PlanQueryWithDetection(q)
	} else {
		node, err = db.Bind(q)
	}
	if err != nil {
		return Explained{}, err
	}

	// batchAnnot marks the nodes the compiler would run on the
	// vectorized batch path with [batch], replaying the executor's
	// selection over the final plan (only the final plan executes, so
	// only its render is annotated).
	batchAnnot := func(final plan.Node) func(plan.Node) string {
		marked := exec.BatchNodes(final, exec.CompileOptions{Batch: opts.Batch})
		return func(n plan.Node) string {
			if marked[n] {
				return "[batch]"
			}
			return ""
		}
	}
	rewrites := opts.Optimize || opts.Workers >= 2

	var b strings.Builder
	if ex.Detected {
		b.WriteString("-- NOT EXISTS pattern rewritten to a division --\n")
	}
	if rewrites {
		fmt.Fprintf(&b, "-- logical plan --\n%s\n", plan.Format(node))
	} else {
		fmt.Fprintf(&b, "-- logical plan --\n%s\n", plan.FormatWith(node, batchAnnot(node)))
	}

	if rewrites {
		res := optimizer.Optimize(node, optimizer.Options{
			AllowDataDependent: opts.AllowDataDependent,
			Rules:              rulesFor(opts),
			Parallel: optimizer.ParallelOptions{
				Workers:   opts.Workers,
				Threshold: opts.ParallelThreshold,
			},
		})
		node = res.Plan
		header := "optimized plan"
		if !opts.Optimize {
			header = "parallelized plan"
		}
		fmt.Fprintf(&b, "\n-- %s (cost %.0f -> %.0f) --\n%s\n", header, res.Initial, res.Final, plan.FormatWith(node, batchAnnot(node)))
		for _, a := range res.Trace {
			fmt.Fprintf(&b, "   applied %s at %s (gain %.0f)\n", a.Rule, a.Before, a.Gain)
		}
		writePartitioning(&b, node)
	}
	ex.Plan = node
	ex.Report = b.String()
	return ex, nil
}

// rulesFor picks the law rule set: the full set when optimization is
// requested (nil means laws.All() to the optimizer), none when only
// parallelization is.
func rulesFor(opts ExplainOptions) []laws.Rule {
	if opts.Optimize {
		return nil
	}
	return []laws.Rule{}
}

// writePartitioning appends one line per parallel operator naming
// its partitioning strategy, and one per top-k over an exchange
// naming the per-partition pushdown.
func writePartitioning(b *strings.Builder, n plan.Node) {
	plan.Transform(n, func(node plan.Node) plan.Node {
		switch t := node.(type) {
		case *plan.ParallelDivide:
			fmt.Fprintf(b, "   partitioning: %s across %d workers (Law 2/c2)\n", t.Partitioning(), t.Workers)
		case *plan.ParallelGreatDivide:
			fmt.Fprintf(b, "   partitioning: %s across %d workers (Law 13)\n", t.Partitioning(), t.Workers)
		case *plan.TopK:
			if t.K <= 0 {
				// The compiler only fuses a positive bound into the
				// exchange; k=0 runs as a generic TopKIter that never
				// opens the subtree.
				return node
			}
			switch in := t.Input.(type) {
			case *plan.ParallelDivide:
				fmt.Fprintf(b, "   top-k: per-partition heap(k=%d) in %d workers over %s, k-way merge at the consumer\n",
					t.K, in.Workers, in.Partitioning())
			case *plan.ParallelGreatDivide:
				fmt.Fprintf(b, "   top-k: per-partition heap(k=%d) in %d workers over %s, k-way merge at the consumer\n",
					t.K, in.Workers, in.Partitioning())
			}
		}
		return node
	})
}
