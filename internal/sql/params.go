package sql

import (
	"fmt"

	"divlaws/internal/value"
)

// SubstituteParams resolves every ? placeholder in the statement to
// the positional argument with its ordinal, returning a new Query;
// q itself is never mutated, so a prepared statement's parsed AST
// can be bound many times (and concurrently) with different
// arguments. The walk rebuilds only expression trees — table names,
// aliases and column lists are shared with q.
//
// It errors when the argument count does not match q.Params, which
// is why binding is the stage that resolves parameters: the parse
// result is argument-independent, and nothing downstream (detection,
// binding, optimization) ever sees a placeholder.
func SubstituteParams(q *Query, args []value.Value) (*Query, error) {
	if len(args) != q.Params {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), got %d argument(s)", q.Params, len(args))
	}
	if q.Params == 0 {
		return q, nil
	}
	return substQuery(q, args)
}

func substQuery(q *Query, args []value.Value) (*Query, error) {
	out := *q
	if len(q.Select) > 0 {
		out.Select = make([]SelectItem, len(q.Select))
		for i, item := range q.Select {
			e, err := substExpr(item.Expr, args)
			if err != nil {
				return nil, err
			}
			out.Select[i] = SelectItem{Expr: e, As: item.As}
		}
	}
	if len(q.From) > 0 {
		out.From = make([]TableRef, len(q.From))
		for i, ref := range q.From {
			r, err := substTableRef(ref, args)
			if err != nil {
				return nil, err
			}
			out.From[i] = r
		}
	}
	var err error
	if out.Where, err = substExpr(q.Where, args); err != nil {
		return nil, err
	}
	if out.Having, err = substExpr(q.Having, args); err != nil {
		return nil, err
	}
	return &out, nil
}

func substTableRef(ref TableRef, args []value.Value) (TableRef, error) {
	switch r := ref.(type) {
	case *BaseTable:
		return r, nil
	case *SubqueryTable:
		sub, err := substQuery(r.Query, args)
		if err != nil {
			return nil, err
		}
		return &SubqueryTable{Query: sub, Alias: r.Alias}, nil
	case *DivideTable:
		dividend, err := substTableRef(r.Dividend, args)
		if err != nil {
			return nil, err
		}
		divisor, err := substTableRef(r.Divisor, args)
		if err != nil {
			return nil, err
		}
		on, err := substExpr(r.On, args)
		if err != nil {
			return nil, err
		}
		return &DivideTable{Dividend: dividend, Divisor: divisor, On: on}, nil
	default:
		return nil, fmt.Errorf("sql: cannot bind parameters in table reference %T", ref)
	}
}

func substExpr(e Expr, args []value.Value) (Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Placeholder:
		if x.Ordinal < 0 || x.Ordinal >= len(args) {
			return nil, fmt.Errorf("sql: placeholder ordinal %d out of range", x.Ordinal)
		}
		return &BoundArg{Val: args[x.Ordinal]}, nil
	case *ColumnRef, *Literal, *BoundArg, *AggCall:
		return e, nil
	case *BoolOp:
		l, err := substExpr(x.Left, args)
		if err != nil {
			return nil, err
		}
		r, err := substExpr(x.Right, args)
		if err != nil {
			return nil, err
		}
		return &BoolOp{Op: x.Op, Left: l, Right: r}, nil
	case *NotExpr:
		inner, err := substExpr(x.Inner, args)
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	case *Comparison:
		l, err := substExpr(x.Left, args)
		if err != nil {
			return nil, err
		}
		r, err := substExpr(x.Right, args)
		if err != nil {
			return nil, err
		}
		return &Comparison{Left: l, Op: x.Op, Right: r}, nil
	case *ExistsExpr:
		sub, err := substQuery(x.Query, args)
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Query: sub, Negated: x.Negated}, nil
	default:
		return nil, fmt.Errorf("sql: cannot bind parameters in expression %T", e)
	}
}
