package sql

import (
	"strings"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/plan"
)

const explainQ1 = `SELECT s#, color
FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#`

func explainDB() *DB {
	supplies, parts := datagen.SuppliersParts{
		Suppliers: 25, Parts: 15, Colors: 3, AvgSupplied: 7, Seed: 1,
	}.Generate()
	db := NewDB()
	db.Register("supplies", supplies)
	db.Register("parts", parts)
	return db
}

func TestExplainParallelShowsPartitioning(t *testing.T) {
	db := explainDB()
	ex, err := db.Explain(explainQ1, ExplainOptions{
		Optimize: true, AllowDataDependent: true,
		Workers: 4, ParallelThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Report, "ParallelGreatDivide[") {
		t.Errorf("report lacks parallel operator:\n%s", ex.Report)
	}
	if !strings.Contains(ex.Report, "partitioning: hash(") {
		t.Errorf("report lacks partitioning line:\n%s", ex.Report)
	}
	if !strings.Contains(ex.Report, "workers=4") {
		t.Errorf("report lacks worker count:\n%s", ex.Report)
	}

	// The parallelized plan must return the same rows as the plain
	// query path.
	want, err := db.Query(explainQ1)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Eval(ex.Plan); !got.EquivalentTo(want) {
		t.Errorf("parallel plan returned %d rows, want %d", got.Len(), want.Len())
	}
}

func TestExplainSequentialHasNoPartitioning(t *testing.T) {
	db := explainDB()
	ex, err := db.Explain(explainQ1, ExplainOptions{Optimize: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ex.Report, "partitioning:") {
		t.Errorf("sequential explain mentions partitioning:\n%s", ex.Report)
	}
	if !strings.Contains(ex.Report, "-- logical plan --") {
		t.Errorf("report lacks logical plan section:\n%s", ex.Report)
	}
}

func TestExplainJoinUnderDivisionIsOneBatchRegion(t *testing.T) {
	// PR 7 made the probe-side operators (products, joins, set ops)
	// batch-native, so a join feeding a division no longer breaks the
	// batch pipeline: the whole plan — join below, division above —
	// must render as one contiguous [batch] region with no adapter
	// boundary (i.e. no unannotated operator) anywhere in the tree.
	db := explainDB()
	q := `SELECT j.s#
FROM (SELECT s1.s#, s1.p# FROM supplies AS s1, parts AS p1 WHERE s1.p# = p1.p#) AS j
DIVIDE BY parts AS p ON j.p# = p.p#`
	ex, err := db.Explain(q, ExplainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"Product", "Select[", "GreatDivide"} {
		if !strings.Contains(ex.Report, op) {
			t.Fatalf("plan lacks the expected %s operator:\n%s", op, ex.Report)
		}
	}
	inPlan := false
	for _, line := range strings.Split(ex.Report, "\n") {
		switch {
		case strings.HasPrefix(line, "-- logical plan --"):
			inPlan = true
			continue
		case strings.TrimSpace(line) == "":
			inPlan = false
			continue
		}
		if inPlan && !strings.Contains(line, "[batch]") {
			t.Errorf("operator outside the batch region: %s\n%s", line, ex.Report)
		}
	}

	// The annotated plan must still return the right rows.
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Eval(ex.Plan); !got.EquivalentTo(want) {
		t.Errorf("explained plan returned %d rows, want %d", got.Len(), want.Len())
	}
}

func TestExplainParallelizeOnly(t *testing.T) {
	db := explainDB()
	ex, err := db.Explain(explainQ1, ExplainOptions{Workers: 2, ParallelThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Without Optimize the law rules must not fire, but the
	// parallelization pass still must.
	for _, line := range strings.Split(ex.Report, "\n") {
		if strings.Contains(line, "applied") && !strings.Contains(line, "Parallelize") {
			t.Errorf("law rule fired without Optimize: %s", line)
		}
	}
	if !strings.Contains(ex.Report, "Parallelize(Law 13") {
		t.Errorf("parallelize pass did not fire:\n%s", ex.Report)
	}
}
