package sql

import (
	"fmt"

	"divlaws/internal/value"
)

// Query is a parsed SELECT statement.
type Query struct {
	Distinct bool
	Select   []SelectItem // empty means SELECT *
	Star     bool
	From     []TableRef
	Where    Expr // nil if absent
	GroupBy  []ColumnRef
	Having   Expr // nil if absent
	OrderBy  []OrderItem
	// Limit caps the result cardinality when HasLimit is set. The
	// binder lowers it to a plan.Limit node, which the engine pushes
	// down as an early-exit signal: streaming operators beneath it
	// (parallel exchanges in particular) are cancelled once Limit
	// tuples have surfaced.
	Limit    int64
	HasLimit bool
	// Params is the number of ? placeholders in the whole statement,
	// including subqueries. It is set on the statement's outermost
	// Query by Parse; nested query blocks leave it zero.
	Params int
}

// SelectItem is one output column: a column reference or an
// aggregate call, optionally renamed.
type SelectItem struct {
	Expr Expr   // *ColumnRef or *AggCall
	As   string // optional alias
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// TableRef is a table factor or a DIVIDE BY quotient.
type TableRef interface{ tableRef() }

// BaseTable references a catalog table with an optional alias.
type BaseTable struct {
	Name  string
	Alias string // defaults to Name
}

func (*BaseTable) tableRef() {}

// SubqueryTable is a derived table: (SELECT ...) AS alias.
type SubqueryTable struct {
	Query *Query
	Alias string
}

func (*SubqueryTable) tableRef() {}

// DivideTable is the paper's <quotient> production:
// dividend DIVIDE BY divisor ON condition.
type DivideTable struct {
	Dividend TableRef
	Divisor  TableRef
	On       Expr
}

func (*DivideTable) tableRef() {}

// Expr is a boolean or scalar expression node.
type Expr interface{ fmt.Stringer }

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

// String renders the reference as written.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant: int64, float64 or string payload.
type Literal struct {
	Int    int64
	Float  float64
	Str    string
	Kind   byte // 'i', 'f', 's'
	IsNull bool
}

// String renders the literal in SQL syntax.
func (l *Literal) String() string {
	switch l.Kind {
	case 'i':
		return fmt.Sprintf("%d", l.Int)
	case 'f':
		return fmt.Sprintf("%g", l.Float)
	default:
		return "'" + l.Str + "'"
	}
}

// Placeholder is a positional ? parameter. Ordinal is its zero-based
// position in source order across the whole statement; the binder
// refuses queries still containing placeholders — SubstituteParams
// replaces them with BoundArg values at bind time.
type Placeholder struct {
	Ordinal int
}

// String implements Expr.
func (*Placeholder) String() string { return "?" }

// BoundArg is a placeholder after parameter binding: an
// already-typed constant carrying any value kind (including bool and
// NULL, which Literal cannot express).
type BoundArg struct {
	Val value.Value
}

// String implements Expr.
func (b *BoundArg) String() string { return b.Val.String() }

// Comparison is left op right with op in =, <>, <, <=, >, >=.
type Comparison struct {
	Left  Expr
	Op    string
	Right Expr
}

// String implements Expr.
func (c *Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// BoolOp is AND/OR over two operands.
type BoolOp struct {
	Op          string // "AND" or "OR"
	Left, Right Expr
}

// String implements Expr.
func (b *BoolOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

// NotExpr negates an expression.
type NotExpr struct{ Inner Expr }

// String implements Expr.
func (n *NotExpr) String() string { return "NOT (" + n.Inner.String() + ")" }

// ExistsExpr is [NOT] EXISTS (subquery); Negated folds the NOT in.
type ExistsExpr struct {
	Query   *Query
	Negated bool
}

// String implements Expr.
func (e *ExistsExpr) String() string {
	if e.Negated {
		return "NOT EXISTS (...)"
	}
	return "EXISTS (...)"
}

// AggCall is an aggregate function call in a select list or HAVING:
// count(*), count(col), sum(col), min/max/avg(col).
type AggCall struct {
	Func string // lowercase function name
	Arg  *ColumnRef
	Star bool
}

// String implements Expr.
func (a *AggCall) String() string {
	if a.Star {
		return a.Func + "(*)"
	}
	return a.Func + "(" + a.Arg.String() + ")"
}

// describeRef renders a TableRef for error messages.
func describeRef(t TableRef) string {
	switch r := t.(type) {
	case *BaseTable:
		if r.Alias != "" && r.Alias != r.Name {
			return r.Name + " AS " + r.Alias
		}
		return r.Name
	case *SubqueryTable:
		return "(subquery) AS " + r.Alias
	case *DivideTable:
		return describeRef(r.Dividend) + " DIVIDE BY " + describeRef(r.Divisor)
	default:
		return fmt.Sprintf("%T", t)
	}
}
