package relation

import (
	"strings"
	"testing"
	"testing/quick"

	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func tup(xs ...int64) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.Int(x)
	}
	return t
}

func TestTupleEqual(t *testing.T) {
	if !tup(1, 2).Equal(tup(1, 2)) {
		t.Error("equal tuples")
	}
	if tup(1, 2).Equal(tup(1, 3)) || tup(1).Equal(tup(1, 2)) {
		t.Error("unequal tuples")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	a := Tuple{value.String("a"), value.String("bc")}
	b := Tuple{value.String("ab"), value.String("c")}
	if a.Key() == b.Key() {
		t.Error("tuple keys must be injective across boundaries")
	}
	if tup(1, 2).Key() != tup(1, 2).Key() {
		t.Error("equal tuples must share a key")
	}
}

func TestTupleCloneConcatProject(t *testing.T) {
	orig := tup(1, 2, 3)
	c := orig.Clone()
	c[0] = value.Int(99)
	if !orig[0].Equal(value.Int(1)) {
		t.Error("Clone must not share storage")
	}
	if got := tup(1).Concat(tup(2, 3)); !got.Equal(tup(1, 2, 3)) {
		t.Errorf("Concat = %v", got)
	}
	if got := tup(10, 20, 30).Project([]int{2, 0}); !got.Equal(tup(30, 10)) {
		t.Errorf("Project = %v", got)
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{tup(1, 2), tup(1, 2), 0},
		{tup(1, 2), tup(1, 3), -1},
		{tup(2), tup(1, 9), 1},
		{tup(1), tup(1, 0), -1}, // prefix sorts first
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTupleString(t *testing.T) {
	tt := Tuple{value.Int(1), value.String("blue")}
	if tt.String() != "1, blue" {
		t.Errorf("String = %q", tt.String())
	}
}

func TestInsertSetSemantics(t *testing.T) {
	r := New(schema.New("a", "b"))
	if !r.Insert(tup(1, 2)) {
		t.Error("first insert should be new")
	}
	if r.Insert(tup(1, 2)) {
		t.Error("duplicate insert should report false")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(tup(1, 2)) || r.Contains(tup(2, 1)) {
		t.Error("Contains wrong")
	}
	if !r.ContainsKey(tup(1, 2).Key()) {
		t.Error("ContainsKey wrong")
	}
}

func TestInsertArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected arity panic")
		}
	}()
	New(schema.New("a")).Insert(tup(1, 2))
}

func TestInsertClonesTuple(t *testing.T) {
	r := New(schema.New("a"))
	raw := tup(1)
	r.Insert(raw)
	raw[0] = value.Int(99)
	if !r.Tuples()[0].Equal(tup(1)) {
		t.Error("Insert must clone the tuple")
	}
}

func TestInsertAll(t *testing.T) {
	r := Ints([]string{"a"}, [][]int64{{1}, {2}})
	s := Ints([]string{"a"}, [][]int64{{2}, {3}})
	r.InsertAll(s)
	if r.Len() != 3 {
		t.Errorf("union Len = %d", r.Len())
	}
}

func TestSortedAndString(t *testing.T) {
	r := Ints([]string{"a", "b"}, [][]int64{{2, 1}, {1, 2}, {1, 1}})
	got := r.Sorted()
	if !got[0].Equal(tup(1, 1)) || !got[1].Equal(tup(1, 2)) || !got[2].Equal(tup(2, 1)) {
		t.Errorf("Sorted = %v", got)
	}
	want := "a b\n1 1\n1 2\n2 1"
	if r.String() != want {
		t.Errorf("String = %q want %q", r.String(), want)
	}
}

func TestCloneAndEqual(t *testing.T) {
	r := Ints([]string{"a", "b"}, [][]int64{{1, 2}, {3, 4}})
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone should be Equal")
	}
	c.Insert(tup(5, 6))
	if r.Equal(c) || r.Len() == c.Len() {
		t.Error("clone must be independent")
	}
	different := Ints([]string{"a", "b"}, [][]int64{{1, 2}, {3, 5}})
	if r.Equal(different) {
		t.Error("different tuples should not be Equal")
	}
	otherSchema := Ints([]string{"x", "y"}, [][]int64{{1, 2}, {3, 4}})
	if r.Equal(otherSchema) {
		t.Error("different schemas should not be Equal")
	}
}

func TestEquivalentToIgnoresColumnOrder(t *testing.T) {
	r := Ints([]string{"a", "b"}, [][]int64{{1, 2}, {3, 4}})
	s := Ints([]string{"b", "a"}, [][]int64{{2, 1}, {4, 3}})
	if !r.EquivalentTo(s) {
		t.Error("column-permuted relations should be equivalent")
	}
	ne := Ints([]string{"b", "a"}, [][]int64{{1, 2}, {3, 4}})
	if r.EquivalentTo(ne) {
		t.Error("value-permuted relation should not be equivalent")
	}
	other := Ints([]string{"a", "c"}, [][]int64{{1, 2}})
	if r.EquivalentTo(other) {
		t.Error("different attribute sets should not be equivalent")
	}
}

func TestReorder(t *testing.T) {
	r := Ints([]string{"a", "b"}, [][]int64{{1, 2}})
	got := r.Reorder([]string{"b", "a"})
	if !got.Schema().Equal(schema.New("b", "a")) {
		t.Errorf("Reorder schema = %v", got.Schema())
	}
	if !got.Contains(tup(2, 1)) {
		t.Error("Reorder should permute tuple values")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reorder with non-permutation should panic")
		}
	}()
	r.Reorder([]string{"a", "z"})
}

func TestIntsValidatesRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ragged row")
		}
	}()
	Ints([]string{"a", "b"}, [][]int64{{1}})
}

func TestFromRowsAndToValue(t *testing.T) {
	sch := schema.New("i", "f", "s", "b", "n")
	r := FromRows(sch, [][]any{{1, 2.5, "x", true, nil}})
	tpl := r.Tuples()[0]
	if !tpl[0].Equal(value.Int(1)) || !tpl[1].Equal(value.Float(2.5)) ||
		!tpl[2].Equal(value.String("x")) || !tpl[3].Equal(value.Bool(true)) || !tpl[4].IsNull() {
		t.Errorf("FromRows tuple = %v", tpl)
	}
	if !ToValue(int64(7)).Equal(value.Int(7)) {
		t.Error("ToValue(int64)")
	}
	if !ToValue(value.Int(3)).Equal(value.Int(3)) {
		t.Error("ToValue passthrough")
	}
	defer func() {
		if recover() == nil {
			t.Error("ToValue should panic on unsupported type")
		}
	}()
	ToValue(struct{}{})
}

func TestFromRowsArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected arity panic")
		}
	}()
	FromRows(schema.New("a"), [][]any{{1, 2}})
}

func TestSetSemanticsProperty(t *testing.T) {
	// Inserting any multiset of rows yields cardinality == number of
	// distinct rows, independent of order.
	f := func(xs []uint8) bool {
		r := New(schema.New("a"))
		distinct := map[uint8]bool{}
		for _, x := range xs {
			r.Insert(tup(int64(x)))
			distinct[x] = true
		}
		return r.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringHeaderOnlyWhenEmpty(t *testing.T) {
	r := New(schema.New("a", "b"))
	if got := r.String(); got != "a b" || strings.Contains(got, "\n") {
		t.Errorf("empty relation String = %q", got)
	}
}
