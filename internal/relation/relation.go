// Package relation implements set-semantics relations: immutable
// schemas over ordered attributes, tuples of typed values, duplicate
// elimination on insert, canonical ordering, and set-level equality.
//
// Every operator in the paper (Appendix A) has set semantics, so the
// Relation type dedups tuples via an injective byte key and all
// comparisons between relations are order-insensitive.
//
// The package also carries the engine's row-shaped performance
// primitives: Batch (the reused slab the batch execution path
// exchanges), the batch hash kernels Hash64Batch/Hash64ProjBatch
// (one tight pass per batch through the wide hashkey mixer), and
// Slab, the append-only bump allocator the join emit paths carve
// output tuples from (see Slab for its lifetime rule).
package relation

import (
	"fmt"
	"sort"
	"strings"

	"divlaws/internal/hashkey"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// Tuple is an ordered list of values, positionally aligned with a
// relation's schema.
type Tuple []value.Value

// Equal reports whether two tuples have the same length and pairwise
// Equal values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Key returns the injective byte encoding of the tuple used for set
// semantics and hash-based operators.
func (t Tuple) Key() string { return string(t.AppendKey(nil)) }

// AppendKey appends the tuple's injective encoding to dst.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendKey(dst)
	}
	return dst
}

// Hash64 returns the FNV-1a hash of the tuple's injective encoding,
// computed incrementally — no bytes are materialized. Equal tuples
// hash equally; distinct tuples may collide, so hash-based operators
// verify candidates with Equal.
func (t Tuple) Hash64() uint64 {
	h := hashkey.New()
	for _, v := range t {
		h = v.HashKey(h)
	}
	return h
}

// Hash64Proj returns Hash64 of the projection t[pos...] without
// materializing it: it equals t.Project(pos).Hash64().
func (t Tuple) Hash64Proj(pos []int) uint64 {
	h := hashkey.New()
	for _, p := range pos {
		h = t[p].HashKey(h)
	}
	return h
}

// ProjEqual reports whether the projection t[pos...] equals u,
// without materializing the projection.
func (t Tuple) ProjEqual(pos []int, u Tuple) bool {
	if len(pos) != len(u) {
		return false
	}
	for i, p := range pos {
		if !t[p].Equal(u[i]) {
			return false
		}
	}
	return true
}

// ConcatProj returns t ◦ u[pos...] as a fresh tuple in one
// allocation, the fused Concat(Project) of the hash-join emit path.
func (t Tuple) ConcatProj(u Tuple, pos []int) Tuple {
	out := make(Tuple, 0, len(t)+len(pos))
	out = append(out, t...)
	for _, p := range pos {
		out = append(out, u[p])
	}
	return out
}

// Clone returns a copy of the tuple sharing no storage with t.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Concat returns the concatenation t ◦ u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Project returns the tuple restricted to the given source positions.
func (t Tuple) Project(pos []int) Tuple {
	out := make(Tuple, len(pos))
	for i, p := range pos {
		out[i] = t[p]
	}
	return out
}

// Footprint approximates the live heap bytes held by the tuple: the
// slice header and backing array plus each value's payload. Operators
// charge this against a memory budget, so it deliberately rounds up.
func (t Tuple) Footprint() int64 {
	const sliceHeader = 24
	n := int64(sliceHeader)
	for _, v := range t {
		n += v.Footprint()
	}
	return n
}

// Compare orders tuples lexicographically by value.Compare.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// String renders the tuple like the paper's figures: "1, blue".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// Relation is a set of tuples over a fixed schema. The zero Relation
// is unusable; construct with New.
type Relation struct {
	sch    schema.Schema
	tuples []Tuple
	seen   hashkey.Table
}

// New returns an empty relation with the given schema.
func New(sch schema.Schema) *Relation {
	return &Relation{sch: sch}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() schema.Schema { return r.sch }

// Len returns the cardinality |r|.
func (r *Relation) Len() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Insert adds a tuple under set semantics, reporting whether it was
// new. The tuple is cloned, so callers may reuse their slice. Insert
// panics if the arity does not match the schema.
func (r *Relation) Insert(t Tuple) bool {
	if !r.addIfAbsent(t) {
		return false
	}
	r.tuples = append(r.tuples, t.Clone())
	return true
}

// InsertOwned is Insert without the defensive clone: the relation
// aliases t, so the caller must not mutate it afterwards. Hot paths
// use it for tuples that are freshly built or already owned by
// another relation (tuples are immutable by convention — see
// Tuples).
func (r *Relation) InsertOwned(t Tuple) bool {
	if !r.addIfAbsent(t) {
		return false
	}
	r.tuples = append(r.tuples, t)
	return true
}

// addIfAbsent reserves a dedup-table slot for t if no equal tuple is
// present; when it reports true the caller must append exactly one
// tuple. Key strings are never built: the table stores 64-bit hashes
// and candidates are verified against the stored tuples.
func (r *Relation) addIfAbsent(t Tuple) bool {
	if len(t) != r.sch.Len() {
		panic(fmt.Sprintf("relation: arity %d tuple into schema %v", len(t), r.sch))
	}
	p := r.seen.Probe(t.Hash64())
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		if r.tuples[v].Equal(t) {
			return false
		}
	}
	p.Insert(len(r.tuples))
	return true
}

// InsertAll inserts every tuple of s (schemas must have equal arity;
// attribute names are not checked, mirroring positional set union).
// The tuples are shared with s, not cloned.
func (r *Relation) InsertAll(s *Relation) {
	for _, t := range s.tuples {
		r.InsertOwned(t)
	}
}

// Contains reports whether the tuple is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	p := r.seen.Probe(t.Hash64())
	for {
		v, ok := p.Next()
		if !ok {
			return false
		}
		if r.tuples[v].Equal(t) {
			return true
		}
	}
}

// ContainsKey reports whether a tuple with the given injective key
// encoding (Tuple.Key) is present.
func (r *Relation) ContainsKey(key string) bool {
	var scratch [64]byte
	p := r.seen.Probe(value.HashEncodedKey(hashkey.New(), key))
	for {
		v, ok := p.Next()
		if !ok {
			return false
		}
		if string(r.tuples[v].AppendKey(scratch[:0])) == key {
			return true
		}
	}
}

// Tuples returns the relation's tuples in insertion order. The slice
// and its tuples must not be mutated.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Sorted returns the tuples in canonical (lexicographic) order as a
// fresh slice.
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := New(r.sch)
	for _, t := range r.tuples {
		out.Insert(t)
	}
	return out
}

// Equal reports set equality: same schema (ordered) and the same set
// of tuples.
func (r *Relation) Equal(s *Relation) bool {
	if !r.sch.Equal(s.sch) || r.Len() != s.Len() {
		return false
	}
	for _, t := range r.tuples {
		if !s.Contains(t) {
			return false
		}
	}
	return true
}

// EquivalentTo reports equality up to attribute order: both relations
// must have the same attribute set, and after aligning s's columns to
// r's order the tuple sets must match. This is how the laws state
// equivalences: π_{A∪C}(...) may emit columns in a different order on
// each side.
func (r *Relation) EquivalentTo(s *Relation) bool {
	if r.Len() != s.Len() || !r.sch.EqualSet(s.sch) {
		return false
	}
	pos := s.sch.Positions(r.sch.Attrs())
	for _, t := range s.tuples {
		if !r.Contains(t.Project(pos)) {
			return false
		}
	}
	return true
}

// Reorder returns a relation with columns rearranged into the given
// attribute order, which must be a permutation of the schema.
func (r *Relation) Reorder(attrs []string) *Relation {
	target := schema.New(attrs...)
	if !target.EqualSet(r.sch) {
		panic(fmt.Sprintf("relation: Reorder %v is not a permutation of %v", attrs, r.sch))
	}
	pos := r.sch.Positions(attrs)
	out := New(target)
	for _, t := range r.tuples {
		out.InsertOwned(t.Project(pos))
	}
	return out
}

// String renders the relation as a small table in canonical order,
// matching the layout of the paper's figures:
//
//	a b
//	1 1
//	2 3
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.sch.Attrs(), " "))
	for _, t := range r.Sorted() {
		b.WriteByte('\n')
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, " "))
	}
	return b.String()
}

// Ints is a test and example helper: it builds a relation of integer
// tuples over the named attributes.
func Ints(attrs []string, rows [][]int64) *Relation {
	r := New(schema.New(attrs...))
	for _, row := range rows {
		if len(row) != len(attrs) {
			panic(fmt.Sprintf("relation: Ints row %v does not match attrs %v", row, attrs))
		}
		t := make(Tuple, len(row))
		for i, x := range row {
			t[i] = value.Int(x)
		}
		r.InsertOwned(t)
	}
	return r
}

// FromRows builds a relation from untyped rows, converting Go values
// (int, int64, float64, string, bool, nil) to values. It panics on an
// unsupported type; it is a constructor for tests, examples and
// loaders, not a hot path.
func FromRows(sch schema.Schema, rows [][]any) *Relation {
	r := New(sch)
	for _, row := range rows {
		if len(row) != sch.Len() {
			panic(fmt.Sprintf("relation: row arity %d vs schema %v", len(row), sch))
		}
		t := make(Tuple, len(row))
		for i, x := range row {
			t[i] = ToValue(x)
		}
		r.Insert(t)
	}
	return r
}

// Rows returns the relation's tuples as untyped Go rows in insertion
// order — the inverse of FromRows. It copies; use it to hand
// relations to row-based surfaces (the public API's constructors),
// not in hot paths.
func (r *Relation) Rows() [][]any {
	out := make([][]any, len(r.tuples))
	for i, t := range r.tuples {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = v.Native()
		}
		out[i] = row
	}
	return out
}

// ToValue converts a Go scalar to a Value, panicking on unsupported
// types.
func ToValue(x any) value.Value {
	switch v := x.(type) {
	case nil:
		return value.Null
	case bool:
		return value.Bool(v)
	case int:
		return value.Int(int64(v))
	case int64:
		return value.Int(v)
	case float64:
		return value.Float(v)
	case string:
		return value.String(v)
	case value.Value:
		return v
	default:
		panic(fmt.Sprintf("relation: unsupported Go value %T", x))
	}
}
