package relation

import (
	"testing"

	"divlaws/internal/value"
)

func batchTuple(xs ...int64) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.Int(x)
	}
	return t
}

func TestBatchAppendResetReuse(t *testing.T) {
	b := NewBatch(4)
	if b.Len() != 0 || b.Cap() != 4 || b.Full() {
		t.Fatalf("fresh batch: len=%d cap=%d full=%t", b.Len(), b.Cap(), b.Full())
	}
	for i := int64(0); i < 4; i++ {
		b.Append(batchTuple(i))
	}
	if !b.Full() || b.Len() != 4 {
		t.Fatalf("after 4 appends: len=%d full=%t", b.Len(), b.Full())
	}
	if !b.Tuple(2).Equal(batchTuple(2)) {
		t.Fatalf("Tuple(2) = %v", b.Tuple(2))
	}
	first := &b.Tuples()[0]
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("after Reset: len=%d", b.Len())
	}
	b.Append(batchTuple(9))
	if &b.Tuples()[0] != first {
		t.Fatal("Reset did not retain the slab")
	}
}

func TestBatchSetTuplesAdoptsWindow(t *testing.T) {
	b := NewBatch(2)
	b.Append(batchTuple(1))
	window := []Tuple{batchTuple(10), batchTuple(11), batchTuple(12)}
	b.SetTuples(window)
	if b.Len() != 3 || !b.Tuple(0).Equal(batchTuple(10)) {
		t.Fatalf("adopted window: len=%d first=%v", b.Len(), b.Tuple(0))
	}
	if &b.Tuples()[0] != &window[0] {
		t.Fatal("SetTuples copied instead of aliasing")
	}
	// Append after adoption reverts to the owned slab.
	b.Append(batchTuple(7))
	if b.Len() != 1 || !b.Tuple(0).Equal(batchTuple(7)) {
		t.Fatalf("append after adoption: len=%d first=%v", b.Len(), b.Tuple(0))
	}
	if !window[0].Equal(batchTuple(10)) {
		t.Fatal("append after adoption mutated the adopted slice")
	}
}

func TestBatchPoolRecycles(t *testing.T) {
	b := GetBatch(8)
	if b.Len() != 0 || b.Cap() < 8 {
		t.Fatalf("GetBatch(8): len=%d cap=%d", b.Len(), b.Cap())
	}
	b.Append(batchTuple(1))
	PutBatch(b)
	c := GetBatch(4)
	if c.Len() != 0 {
		t.Fatalf("recycled batch not empty: len=%d", c.Len())
	}
	PutBatch(c)
	PutBatch(nil) // must not panic
}

func TestHash64ProjBatch(t *testing.T) {
	ts := []Tuple{batchTuple(1, 2, 3), batchTuple(4, 5, 6)}
	pos := []int{2, 0}
	got := Hash64ProjBatch(ts, pos, nil)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for i, t2 := range ts {
		if got[i] != t2.Hash64Proj(pos) {
			t.Fatalf("hash %d mismatch", i)
		}
	}
}

func TestTupleIndexBatchHelpers(t *testing.T) {
	ts := []Tuple{batchTuple(1, 10), batchTuple(2, 20), batchTuple(1, 10)}
	var ix TupleIndex
	ids, created := ix.IDBatch(ts, nil, nil)
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 0 {
		t.Fatalf("IDBatch ids = %v", ids)
	}
	if !created[0] || !created[1] || created[2] {
		t.Fatalf("IDBatch created = %v", created)
	}

	var proj TupleIndex
	pos := []int{0}
	pids, pcreated := proj.IDProjBatch(ts, pos, nil, nil)
	if pids[0] != 0 || pids[1] != 1 || pids[2] != 0 || pcreated[2] {
		t.Fatalf("IDProjBatch = %v %v", pids, pcreated)
	}
	look := proj.LookupProjBatch([]Tuple{batchTuple(2, 99), batchTuple(3, 99)}, pos, nil)
	if look[0] != 1 || look[1] != -1 {
		t.Fatalf("LookupProjBatch = %v", look)
	}
}
