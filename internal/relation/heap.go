package relation

import (
	"sort"

	"divlaws/internal/value"
)

// KeyedCompare returns a total-order tuple comparator over the given
// column positions, with desc[i] inverting the i-th key. Ties across
// all keys fall back to the canonical whole-tuple order, so the
// comparator is deterministic: equal results sort identically on
// every run and on every partition worker. desc may be nil (all
// ascending); otherwise len(desc) must equal len(pos).
func KeyedCompare(pos []int, desc []bool) func(a, b Tuple) int {
	return func(a, b Tuple) int {
		for i, p := range pos {
			if c := value.Compare(a[p], b[p]); c != 0 {
				if desc != nil && desc[i] {
					return -c
				}
				return c
			}
		}
		return a.Compare(b)
	}
}

// TopKHeap keeps the k smallest tuples offered to it under a total
// order, in O(k) live memory: a bounded binary max-heap whose root is
// the largest kept tuple, evicted whenever a smaller tuple arrives.
// It is the physical core of the top-k operators — the whole-stream
// TopKIter and the per-partition bound inside parallel exchange
// workers both wrap it.
type TopKHeap struct {
	k    int
	cmp  func(a, b Tuple) int
	rows []Tuple
}

// NewTopKHeap returns a heap retaining the k smallest tuples under
// cmp. k <= 0 retains nothing.
func NewTopKHeap(k int, cmp func(a, b Tuple) int) *TopKHeap {
	return &TopKHeap{k: k, cmp: cmp}
}

// Add offers one tuple, reporting whether it was kept (which may
// evict a previously kept tuple).
func (h *TopKHeap) Add(t Tuple) bool {
	if h.k <= 0 {
		return false
	}
	if len(h.rows) < h.k {
		h.rows = append(h.rows, t)
		h.up(len(h.rows) - 1)
		return true
	}
	if h.cmp(t, h.rows[0]) >= 0 {
		return false
	}
	h.rows[0] = t
	h.down(0)
	return true
}

// Len returns the number of tuples currently kept.
func (h *TopKHeap) Len() int { return len(h.rows) }

// Sorted consumes the heap, returning the kept tuples in ascending
// comparator order.
func (h *TopKHeap) Sorted() []Tuple {
	out := h.rows
	h.rows = nil
	sort.Slice(out, func(i, j int) bool { return h.cmp(out[i], out[j]) < 0 })
	return out
}

func (h *TopKHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.cmp(h.rows[i], h.rows[p]) <= 0 {
			return
		}
		h.rows[i], h.rows[p] = h.rows[p], h.rows[i]
		i = p
	}
}

func (h *TopKHeap) down(i int) {
	n := len(h.rows)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.cmp(h.rows[l], h.rows[big]) > 0 {
			big = l
		}
		if r < n && h.cmp(h.rows[r], h.rows[big]) > 0 {
			big = r
		}
		if big == i {
			return
		}
		h.rows[i], h.rows[big] = h.rows[big], h.rows[i]
		i = big
	}
}
