package relation

import (
	"slices"

	"divlaws/internal/hashkey"
)

// TupleIndex assigns dense integer ids (0, 1, 2, …, in first-seen
// order) to distinct tuples — the building block behind every hash
// operator in the engine: join build sides, dedup sets, divisor
// bit-numbering tables, grouping keys. It stores 64-bit hashes in an
// open-addressed table and verifies every probe candidate against
// the stored tuple, so ids are exact even under hash collisions.
//
// The zero TupleIndex is empty and ready to use. Lookups allocate
// nothing; an insertion of a projection materializes the projected
// tuple once, when the key is new.
type TupleIndex struct {
	table hashkey.Table
	keys  []Tuple
}

// Len returns the number of distinct keys indexed.
func (ix *TupleIndex) Len() int { return len(ix.keys) }

// Key returns the tuple with the given id. The result is owned by
// the index and must not be mutated (it may be shared with output
// relations).
func (ix *TupleIndex) Key(id int) Tuple { return ix.keys[id] }

// Keys returns all indexed tuples in id order; the slice and its
// tuples must not be mutated.
func (ix *TupleIndex) Keys() []Tuple { return ix.keys }

// Reset discards all keys, keeping allocated capacity.
func (ix *TupleIndex) Reset() {
	ix.table.Reset()
	ix.keys = ix.keys[:0]
}

// ID returns t's id, assigning the next free id if t is new; created
// reports whether it did. The index aliases t when it is new, so the
// caller must not mutate it afterwards.
func (ix *TupleIndex) ID(t Tuple) (id int, created bool) {
	p := ix.table.Probe(t.Hash64())
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		if ix.keys[v].Equal(t) {
			return v, false
		}
	}
	id = len(ix.keys)
	p.Insert(id)
	ix.keys = append(ix.keys, t)
	return id, true
}

// IDProj is ID for the projection t[pos...]; the projection is
// materialized only when it is new.
func (ix *TupleIndex) IDProj(t Tuple, pos []int) (id int, created bool) {
	p := ix.table.Probe(t.Hash64Proj(pos))
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		if t.ProjEqual(pos, ix.keys[v]) {
			return v, false
		}
	}
	id = len(ix.keys)
	p.Insert(id)
	ix.keys = append(ix.keys, t.Project(pos))
	return id, true
}

// Lookup returns t's id, or -1 if t is not indexed. It allocates
// nothing.
func (ix *TupleIndex) Lookup(t Tuple) int {
	p := ix.table.Probe(t.Hash64())
	for {
		v, ok := p.Next()
		if !ok {
			return -1
		}
		if ix.keys[v].Equal(t) {
			return v
		}
	}
}

// IDBatch assigns ids to every tuple of ts in order, appending each
// tuple's (id, created) to ids and created — the batch-at-a-time form
// of ID, amortizing the per-call overhead across a batch. The index
// aliases newly inserted tuples, so the caller must not mutate them.
func (ix *TupleIndex) IDBatch(ts []Tuple, ids []int, created []bool) ([]int, []bool) {
	for _, t := range ts {
		id, c := ix.ID(t)
		ids = append(ids, id)
		created = append(created, c)
	}
	return ids, created
}

// IDProjBatch is IDBatch for the projections ts[i][pos...]; a
// projection is materialized only when it is new.
func (ix *TupleIndex) IDProjBatch(ts []Tuple, pos []int, ids []int, created []bool) ([]int, []bool) {
	for _, t := range ts {
		id, c := ix.IDProj(t, pos)
		ids = append(ids, id)
		created = append(created, c)
	}
	return ids, created
}

// LookupBatch appends the id of every tuple of ts (or -1) to ids —
// the whole-tuple batch probe behind batch set operators. It grows
// ids once up front and allocates nothing else.
func (ix *TupleIndex) LookupBatch(ts []Tuple, ids []int) []int {
	ids = slices.Grow(ids, len(ts))
	for _, t := range ts {
		ids = append(ids, ix.Lookup(t))
	}
	return ids
}

// LookupProjBatch appends the id of every projection ts[i][pos...]
// (or -1) to ids — the batch probe behind batch hash operators. It
// grows ids once up front and allocates nothing else.
func (ix *TupleIndex) LookupProjBatch(ts []Tuple, pos []int, ids []int) []int {
	ids = slices.Grow(ids, len(ts))
	for _, t := range ts {
		ids = append(ids, ix.LookupProj(t, pos))
	}
	return ids
}

// LookupProj returns the id of the projection t[pos...], or -1. It
// allocates nothing.
func (ix *TupleIndex) LookupProj(t Tuple, pos []int) int {
	p := ix.table.Probe(t.Hash64Proj(pos))
	for {
		v, ok := p.Next()
		if !ok {
			return -1
		}
		if t.ProjEqual(pos, ix.keys[v]) {
			return v
		}
	}
}
