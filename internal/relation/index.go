package relation

import (
	"slices"

	"divlaws/internal/hashkey"
)

// TupleIndex assigns dense integer ids (0, 1, 2, …, in first-seen
// order) to distinct tuples — the building block behind every hash
// operator in the engine: join build sides, dedup sets, divisor
// bit-numbering tables, grouping keys. It hashes tuples to 64 bits,
// stores compact tags in an open-addressed table, and verifies every
// probe candidate against the stored tuple, so ids are exact even
// under hash collisions.
//
// The zero TupleIndex is empty and ready to use. Lookups allocate
// nothing; an insertion of a projection materializes the projected
// tuple once, when the key is new.
type TupleIndex struct {
	table hashkey.Table
	keys  []Tuple
	// hashes is scratch for the batch methods' hash pass, reused
	// across batches so steady-state batch probing allocates nothing.
	hashes []uint64
}

// Len returns the number of distinct keys indexed.
func (ix *TupleIndex) Len() int { return len(ix.keys) }

// TableBytes returns the heap footprint of the index's hash-table
// backing arrays (the keys' tuple storage is accounted separately by
// callers, which own the tuples).
func (ix *TupleIndex) TableBytes() int64 { return ix.table.Bytes() }

// Key returns the tuple with the given id. The result is owned by
// the index and must not be mutated (it may be shared with output
// relations).
func (ix *TupleIndex) Key(id int) Tuple { return ix.keys[id] }

// Keys returns all indexed tuples in id order; the slice and its
// tuples must not be mutated.
func (ix *TupleIndex) Keys() []Tuple { return ix.keys }

// Reset discards all keys, keeping allocated capacity.
func (ix *TupleIndex) Reset() {
	ix.table.Reset()
	ix.keys = ix.keys[:0]
}

// ID returns t's id, assigning the next free id if t is new; created
// reports whether it did. The index aliases t when it is new, so the
// caller must not mutate it afterwards.
func (ix *TupleIndex) ID(t Tuple) (id int, created bool) {
	return ix.idHashed(t.Hash64(), t)
}

// IDProj is ID for the projection t[pos...]; the projection is
// materialized only when it is new.
func (ix *TupleIndex) IDProj(t Tuple, pos []int) (id int, created bool) {
	return ix.idProjHashed(t.Hash64Proj(pos), t, pos)
}

// Lookup returns t's id, or -1 if t is not indexed. It allocates
// nothing. The hash and the probe walk share one frame: this is the
// fused per-row probe the innermost join loops sit on, where a
// second call per row is measurable, so it deliberately duplicates
// LookupHashed's walk instead of delegating to it.
func (ix *TupleIndex) Lookup(t Tuple) int {
	p := ix.table.Probe(t.Hash64())
	for {
		v, ok := p.Next()
		if !ok {
			return -1
		}
		if ix.keys[v].Equal(t) {
			return v
		}
	}
}

// IDBatch assigns ids to every tuple of ts in order, appending each
// tuple's (id, created) to ids and created — the batch-at-a-time form
// of ID. It runs two passes: Hash64Batch computes the whole batch's
// hashes into reused scratch, then a pure probe loop consumes them,
// so the hash kernel and the table's probe chains each stay hot. The
// index aliases newly inserted tuples, so the caller must not mutate
// them.
func (ix *TupleIndex) IDBatch(ts []Tuple, ids []int, created []bool) ([]int, []bool) {
	ix.hashes = Hash64Batch(ts, ix.hashes[:0])
	for i, t := range ts {
		id, c := ix.idHashed(ix.hashes[i], t)
		ids = append(ids, id)
		created = append(created, c)
	}
	return ids, created
}

// IDProjBatch is IDBatch for the projections ts[i][pos...]; a
// projection is materialized only when it is new.
func (ix *TupleIndex) IDProjBatch(ts []Tuple, pos []int, ids []int, created []bool) ([]int, []bool) {
	ix.hashes = Hash64ProjBatch(ts, pos, ix.hashes[:0])
	for i, t := range ts {
		id, c := ix.idProjHashed(ix.hashes[i], t, pos)
		ids = append(ids, id)
		created = append(created, c)
	}
	return ids, created
}

// idHashed is ID with the tuple's hash already computed.
func (ix *TupleIndex) idHashed(h uint64, t Tuple) (id int, created bool) {
	p := ix.table.Probe(h)
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		if ix.keys[v].Equal(t) {
			return v, false
		}
	}
	id = len(ix.keys)
	p.Insert(id)
	ix.keys = append(ix.keys, t)
	return id, true
}

// idProjHashed is IDProj with the projection's hash already computed.
func (ix *TupleIndex) idProjHashed(h uint64, t Tuple, pos []int) (id int, created bool) {
	p := ix.table.Probe(h)
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		if t.ProjEqual(pos, ix.keys[v]) {
			return v, false
		}
	}
	id = len(ix.keys)
	p.Insert(id)
	ix.keys = append(ix.keys, t.Project(pos))
	return id, true
}

// LookupBatch appends the id of every tuple of ts (or -1) to ids —
// the whole-tuple batch probe behind batch set operators. Like
// IDBatch it hashes the batch in one pass first; it grows ids once up
// front and allocates nothing else in steady state.
func (ix *TupleIndex) LookupBatch(ts []Tuple, ids []int) []int {
	ix.hashes = Hash64Batch(ts, ix.hashes[:0])
	ids = slices.Grow(ids, len(ts))
	for i, t := range ts {
		ids = append(ids, ix.LookupHashed(ix.hashes[i], t))
	}
	return ids
}

// LookupProjBatch appends the id of every projection ts[i][pos...]
// (or -1) to ids — the batch probe behind batch hash operators. Same
// two-pass shape as LookupBatch.
func (ix *TupleIndex) LookupProjBatch(ts []Tuple, pos []int, ids []int) []int {
	ix.hashes = Hash64ProjBatch(ts, pos, ix.hashes[:0])
	ids = slices.Grow(ids, len(ts))
	for i, t := range ts {
		ids = append(ids, ix.LookupProjHashed(ix.hashes[i], t, pos))
	}
	return ids
}

// LookupHashed is Lookup with the tuple's hash already computed.
func (ix *TupleIndex) LookupHashed(h uint64, t Tuple) int {
	p := ix.table.Probe(h)
	for {
		v, ok := p.Next()
		if !ok {
			return -1
		}
		if ix.keys[v].Equal(t) {
			return v
		}
	}
}

// LookupProjHashed is LookupProj with the projection's hash already
// computed.
func (ix *TupleIndex) LookupProjHashed(h uint64, t Tuple, pos []int) int {
	p := ix.table.Probe(h)
	for {
		v, ok := p.Next()
		if !ok {
			return -1
		}
		if t.ProjEqual(pos, ix.keys[v]) {
			return v
		}
	}
}

// LookupProj returns the id of the projection t[pos...], or -1. It
// allocates nothing. Like Lookup it is fused — hash plus probe walk
// in one frame — because it is the per-row probe of the hash join.
func (ix *TupleIndex) LookupProj(t Tuple, pos []int) int {
	p := ix.table.Probe(t.Hash64Proj(pos))
	for {
		v, ok := p.Next()
		if !ok {
			return -1
		}
		if t.ProjEqual(pos, ix.keys[v]) {
			return v
		}
	}
}
