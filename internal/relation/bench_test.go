package relation

import (
	"testing"

	"divlaws/internal/value"
)

// Sinks defeating dead-code elimination.
var (
	benchHashSink  uint64
	benchTupleSink Tuple
)

// BenchmarkHashTupleWide times the per-row and batch hash paths over
// a mixed string/int tuple — the shape every hash operator probes
// with on string-keyed workloads.
func BenchmarkHashTupleWide(b *testing.B) {
	t := Tuple{value.String("supplier-000042"), value.Int(7), value.String("part-000007")}
	b.Run("Hash64", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += t.Hash64()
		}
		benchHashSink = sink
	})
	b.Run("Hash64ProjBatch", func(b *testing.B) {
		ts := make([]Tuple, DefaultBatchCap)
		for i := range ts {
			ts[i] = t
		}
		pos := []int{0, 2}
		var dst []uint64
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			dst = Hash64ProjBatch(ts, pos, dst[:0])
			sink += dst[len(dst)-1]
		}
		benchHashSink = sink
	})
}

// BenchmarkConcatSlab compares the join emit path's tuple
// concatenation through a per-iterator slab against the one-make-per-
// tuple baseline.
func BenchmarkConcatSlab(b *testing.B) {
	left := Tuple{value.String("supplier-000042"), value.Int(7)}
	right := Tuple{value.String("part-000007"), value.Int(9)}
	b.Run("make", func(b *testing.B) {
		b.ReportAllocs()
		var out Tuple
		for i := 0; i < b.N; i++ {
			out = left.Concat(right)
		}
		benchTupleSink = out
	})
	b.Run("slab", func(b *testing.B) {
		b.ReportAllocs()
		var s Slab
		var out Tuple
		for i := 0; i < b.N; i++ {
			out = s.Concat(left, right)
		}
		benchTupleSink = out
	})
}
