package relation

import (
	"math/rand"
	"sort"
	"testing"

	"divlaws/internal/value"
)

func intTuple(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	return t
}

func TestKeyedCompare(t *testing.T) {
	a := intTuple(1, 2)
	b := intTuple(1, 3)
	asc := KeyedCompare([]int{1}, nil)
	if asc(a, b) >= 0 || asc(b, a) <= 0 || asc(a, a) != 0 {
		t.Fatal("ascending single-key compare wrong")
	}
	desc := KeyedCompare([]int{1}, []bool{true})
	if desc(a, b) <= 0 || desc(b, a) >= 0 {
		t.Fatal("descending single-key compare wrong")
	}
	// Key tie falls back to the canonical whole-tuple order.
	c := intTuple(0, 2)
	tie := KeyedCompare([]int{1}, nil)
	if tie(c, a) >= 0 {
		t.Fatal("canonical tie-break missing")
	}
	// The fallback is NOT inverted by desc keys: only keys invert.
	tieDesc := KeyedCompare([]int{1}, []bool{true})
	if tieDesc(c, a) >= 0 {
		t.Fatal("tie-break must stay canonical under DESC keys")
	}
}

// TestTopKHeapAgainstSort is the property check: for random streams
// and every k, the heap's sorted output equals sort-then-truncate.
func TestTopKHeapAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cmp := KeyedCompare([]int{0}, []bool{false})
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60)
		tuples := make([]Tuple, n)
		for i := range tuples {
			tuples[i] = intTuple(int64(rng.Intn(25)), int64(i))
		}
		for _, k := range []int{0, 1, 3, n / 2, n, n + 5} {
			h := NewTopKHeap(k, cmp)
			for _, tup := range tuples {
				h.Add(tup)
			}
			got := h.Sorted()

			want := append([]Tuple(nil), tuples...)
			sort.Slice(want, func(i, j int) bool { return cmp(want[i], want[j]) < 0 })
			if k < len(want) {
				want = want[:k]
			}
			if k < 0 || k == 0 {
				want = nil
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d n=%d: %d tuples, want %d", k, n, len(got), len(want))
			}
			for i := range got {
				if cmp(got[i], want[i]) != 0 || !got[i].Equal(want[i]) {
					t.Fatalf("k=%d n=%d: row %d = %v, want %v", k, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTopKHeapBoundedLen(t *testing.T) {
	cmp := KeyedCompare([]int{0}, nil)
	h := NewTopKHeap(4, cmp)
	for i := int64(0); i < 1000; i++ {
		h.Add(intTuple(i % 97))
		if h.Len() > 4 {
			t.Fatalf("heap grew to %d, bound is 4", h.Len())
		}
	}
}
