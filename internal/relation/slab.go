package relation

import "divlaws/internal/value"

// Slab chunk sizing, in value slots. Chunks start small and double up
// to the cap: a 1024-slot chunk is ~32 KiB at 32 accounted bytes per
// slot — large enough that chunk turnover vanishes from emit-path
// profiles — but charging 32 KiB up front against a tight spill
// budget (the default spill-sweep limit is 64 KiB) would crowd out
// the build side and force extra partitioning, so short-lived or
// tightly budgeted iterators only ever pay for small chunks. With
// doubling, total over-allocation is bounded by the last chunk; a
// 64-slot first chunk (2 KiB) keeps emit-light queries cheap while
// reaching the cap in four refills, and measured strictly fewer
// bytes per join than a smaller start (more, smaller chunks cost
// more in chunk turnover than they save in tail waste).
const (
	slabFirstChunkValues = 64
	slabMaxChunkValues   = 1024
)

// slabChargeBackoff is how many Allocs a slab waits before retrying a
// refused budget charge, so a hard-refusing tracker is not probed
// under its mutex on every emitted tuple.
const slabChargeBackoff = 64

// slabValueBytes is the accounted heap cost per value slot, matching
// the struct size value.Value's Footprint uses.
const slabValueBytes = 32

// Slab is a bump allocator for emitted tuples — the join, product,
// and theta-join emit paths carve each output tuple out of a shared
// chunk instead of paying one make per Concat.
//
// Lifetime rule: chunks are append-only and GC-owned. A full chunk is
// retired by dropping the slab's reference to it, never by resetting
// it, so every tuple ever sliced out stays valid for as long as its
// consumer holds it — emitted tuples are immutable and are never
// invalidated by later slab activity. The cost is that a retired
// chunk lives until its last tuple does, which is exactly the
// lifetime the tuples themselves need.
//
// The zero Slab is ready to use and unaccounted. Setting Charge and
// Release (before first use) accounts the live chunk's bytes against
// a memory budget: the previous chunk's charge is released when it is
// retired — its memory now belongs to the emitted tuples, which
// downstream buffering operators account themselves — so at most one
// chunk is ever charged. If Charge refuses a fresh chunk, Alloc
// degrades to exact per-tuple uncharged allocations and retries the
// budget on the next refill, preserving spill-vs-unlimited output
// equivalence under any budget.
//
// A Slab is not safe for concurrent use; each iterator owns its own.
type Slab struct {
	Charge  func(int64) error
	Release func(int64)

	chunk   []value.Value
	off     int
	charged int64
	nextCap int
	backoff int // Allocs to skip before retrying a refused Charge
}

// Alloc returns a zeroed tuple of n values carved from the live
// chunk. The tuple's capacity is clipped to its length, so appends by
// the caller can never bleed into neighboring tuples.
func (s *Slab) Alloc(n int) Tuple {
	if s.off+n > len(s.chunk) {
		if !s.refill(n) {
			return make(Tuple, n)
		}
	}
	t := Tuple(s.chunk[s.off : s.off+n : s.off+n])
	s.off += n
	return t
}

// refill retires the live chunk and charges a fresh one, reporting
// whether the budget allowed it.
func (s *Slab) refill(n int) bool {
	c := s.nextCap
	if c == 0 {
		c = slabFirstChunkValues
	}
	if n > c {
		c = n
	}
	if next := 2 * c; next < slabMaxChunkValues {
		s.nextCap = next
	} else {
		s.nextCap = slabMaxChunkValues
	}
	bytes := int64(c) * slabValueBytes
	if s.Charge != nil {
		if s.backoff > 0 {
			s.backoff--
			return false
		}
		if err := s.Charge(bytes); err != nil {
			// Budget refused: don't hammer the tracker on every Alloc —
			// retry after a few dozen fallback tuples.
			s.backoff = slabChargeBackoff
			return false
		}
		if s.charged > 0 {
			s.Release(s.charged)
		}
		s.charged = bytes
	}
	s.chunk = make([]value.Value, c)
	s.off = 0
	return true
}

// Concat returns a⧺b allocated from the slab — the slab form of
// Tuple.Concat.
func (s *Slab) Concat(a, b Tuple) Tuple {
	t := s.Alloc(len(a) + len(b))
	copy(t, a)
	copy(t[len(a):], b)
	return t
}

// ConcatProj returns a⧺b[pos...] allocated from the slab — the slab
// form of Tuple.ConcatProj.
func (s *Slab) ConcatProj(a, b Tuple, pos []int) Tuple {
	t := s.Alloc(len(a) + len(pos))
	copy(t, a)
	for i, p := range pos {
		t[len(a)+i] = b[p]
	}
	return t
}

// Close releases the live chunk's budget charge and drops the chunk,
// returning the slab to its initial small-chunk state. Tuples already
// allocated remain valid (the chunk is GC-owned); the slab itself is
// reusable afterwards. Budgeted iterators call Close whenever they
// release the rest of their charge — e.g. between grace-join
// partitions — so a slab never squats on a tight budget across
// phases.
func (s *Slab) Close() {
	if s.charged > 0 {
		s.Release(s.charged)
		s.charged = 0
	}
	s.chunk, s.off, s.nextCap, s.backoff = nil, 0, 0, 0
}
