package relation

import (
	"slices"
	"sync"
)

// DefaultBatchCap is the tuple capacity a Batch is slab-allocated
// with when no explicit capacity is requested. It matches the
// parallel exchanges' emission batch size, so a batch pipeline
// consumes worker batches without re-slicing.
const DefaultBatchCap = 64

// Batch is a reusable slab of tuples, the unit of the batch-at-a-time
// execution path. A Batch either owns its slab (Append fills it up to
// capacity, Reset truncates without releasing) or temporarily adopts
// a foreign window (SetTuples aliases an existing slice — a relation
// segment, an exchange batch — without copying).
//
// Ownership contract: a Batch returned by a producer (an iterator's
// NextBatch, for example) remains valid only until the producer's
// next call — the producer reuses the slab. The tuples themselves are
// immutable and may be retained freely; only the slice is recycled.
type Batch struct {
	tuples []Tuple
	// slab is the owned backing array, kept across SetTuples calls so
	// adopting a window does not leak the allocation.
	slab []Tuple
	// adopted marks tuples as a SetTuples view rather than the slab.
	adopted bool
}

// NewBatch returns an empty batch with the given tuple capacity
// (DefaultBatchCap when n <= 0).
func NewBatch(n int) *Batch {
	if n <= 0 {
		n = DefaultBatchCap
	}
	slab := make([]Tuple, 0, n)
	return &Batch{tuples: slab, slab: slab}
}

// Len returns the number of tuples in the batch.
func (b *Batch) Len() int { return len(b.tuples) }

// Cap returns the capacity of the owned slab.
func (b *Batch) Cap() int { return cap(b.slab) }

// Full reports whether the owned slab is at capacity.
func (b *Batch) Full() bool { return len(b.tuples) >= cap(b.slab) }

// Tuples returns the batch's tuples. The slice is only valid until
// the producing operator's next call; the tuples themselves are
// immutable and may be retained.
func (b *Batch) Tuples() []Tuple { return b.tuples }

// Tuple returns the i-th tuple.
func (b *Batch) Tuple(i int) Tuple { return b.tuples[i] }

// Append adds a tuple to the owned slab. After SetTuples, Append
// first reverts to the owned slab (dropping the adopted window).
func (b *Batch) Append(t Tuple) {
	if b.adopted {
		b.tuples = b.slab[:0]
		b.adopted = false
	}
	b.tuples = append(b.tuples, t)
	b.slab = b.tuples
}

// Reset empties the batch, keeping the owned slab for reuse.
func (b *Batch) Reset() {
	b.slab = b.slab[:0]
	b.tuples = b.slab
	b.adopted = false
}

// SetTuples makes the batch a zero-copy view over ts (which the
// caller must keep immutable while the view is alive). The owned slab
// is retained for later Reset/Append reuse.
func (b *Batch) SetTuples(ts []Tuple) {
	b.tuples = ts
	b.adopted = true
}

// batchPool is the free-list behind GetBatch/PutBatch: batch slabs
// are recycled across queries so steady-state batch execution
// allocates nothing per batch.
var batchPool = sync.Pool{New: func() any { return NewBatch(DefaultBatchCap) }}

// GetBatch takes an empty batch from the free-list, growing its slab
// to at least n tuples (DefaultBatchCap when n <= 0). Return it with
// PutBatch when the pipeline is done with it.
func GetBatch(n int) *Batch {
	b := batchPool.Get().(*Batch)
	if n <= 0 {
		n = DefaultBatchCap
	}
	if cap(b.slab) < n {
		b.slab = make([]Tuple, 0, n)
	}
	b.Reset()
	return b
}

// PutBatch returns a batch to the free-list. The caller must not use
// b afterwards. Nil is ignored.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	// Drop tuple references so the pool does not pin query data.
	b.slab = b.slab[:cap(b.slab)]
	for i := range b.slab {
		b.slab[i] = nil
	}
	b.Reset()
	batchPool.Put(b)
}

// Hash64ProjBatch appends Hash64Proj(pos) of every tuple in ts to
// dst — the batch-at-a-time form of the zero-alloc probe-hash
// computation. Hashing a whole batch in one pass keeps the wide-hash
// kernel hot and the pos slice in registers, then lets the caller run
// a pure probe loop over precomputed hashes; the batch probe methods
// on TupleIndex are built on it.
func Hash64ProjBatch(ts []Tuple, pos []int, dst []uint64) []uint64 {
	dst = slices.Grow(dst, len(ts))
	for _, t := range ts {
		dst = append(dst, t.Hash64Proj(pos))
	}
	return dst
}

// Hash64Batch appends Hash64 of every tuple in ts to dst — the
// whole-tuple twin of Hash64ProjBatch.
func Hash64Batch(ts []Tuple, dst []uint64) []uint64 {
	dst = slices.Grow(dst, len(ts))
	for _, t := range ts {
		dst = append(dst, t.Hash64())
	}
	return dst
}
