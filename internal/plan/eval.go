package plan

import (
	"fmt"
	"strings"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/parallel"
	"divlaws/internal/relation"
)

// Eval materializes the plan bottom-up, the reference interpreter
// used to check law equivalences and as the fallback executor.
func Eval(n Node) *relation.Relation {
	switch t := n.(type) {
	case *Scan:
		return t.Rel
	case *Select:
		return algebra.Select(Eval(t.Input), t.Pred)
	case *Project:
		return algebra.Project(Eval(t.Input), t.Attrs...)
	case *Set:
		l, r := Eval(t.Left), Eval(t.Right)
		switch t.Op {
		case UnionOp:
			return algebra.Union(l, r)
		case IntersectOp:
			return algebra.Intersect(l, r)
		case DiffOp:
			return algebra.Diff(l, r)
		default:
			panic(fmt.Sprintf("plan: unknown set op %d", uint8(t.Op)))
		}
	case *Product:
		return algebra.Product(Eval(t.Left), Eval(t.Right))
	case *Join:
		return algebra.NaturalJoin(Eval(t.Left), Eval(t.Right))
	case *ThetaJoin:
		return algebra.ThetaJoin(Eval(t.Left), Eval(t.Right), t.Pred)
	case *SemiJoin:
		return algebra.SemiJoin(Eval(t.Left), Eval(t.Right))
	case *AntiSemiJoin:
		return algebra.AntiSemiJoin(Eval(t.Left), Eval(t.Right))
	case *Divide:
		algo := t.Algo
		if algo == "" {
			algo = division.AlgoHash
		}
		return division.DivideWith(algo, Eval(t.Dividend), Eval(t.Divisor))
	case *GreatDivide:
		algo := t.Algo
		if algo == "" {
			algo = division.GreatAlgoHash
		}
		return division.GreatDivideWith(algo, Eval(t.Dividend), Eval(t.Divisor))
	case *ParallelDivide:
		algo := t.Algo
		if algo == "" {
			algo = division.AlgoHash
		}
		return parallel.DivideWith(algo, Eval(t.Dividend), Eval(t.Divisor), t.Workers)
	case *ParallelGreatDivide:
		algo := t.Algo
		if algo == "" {
			algo = division.GreatAlgoHash
		}
		return parallel.GreatDivideWith(algo, Eval(t.Dividend), Eval(t.Divisor), t.Workers)
	case *Sort:
		// Relations are sets, but insertion order is preserved by
		// Tuples(), so the compat path observes the ordering by
		// rebuilding the relation with sorted insertion order.
		in := Eval(t.Input)
		out := relation.New(in.Schema())
		for _, tup := range SortedTuples(in, t.Keys) {
			out.InsertOwned(tup)
		}
		return out
	case *TopK:
		// Must agree with Eval(Limit{Sort}) tuple-for-tuple, which the
		// shared SortedTuples ordering (canonical tie-break) guarantees.
		in := Eval(t.Input)
		out := relation.New(in.Schema())
		for i, tup := range SortedTuples(in, t.Keys) {
			if int64(i) >= t.K {
				break
			}
			out.InsertOwned(tup)
		}
		return out
	case *Limit:
		in := Eval(t.Input)
		if int64(in.Len()) <= t.N {
			return in
		}
		out := relation.New(in.Schema())
		for i, tup := range in.Tuples() {
			if int64(i) >= t.N {
				break
			}
			out.InsertOwned(tup)
		}
		return out
	case *Group:
		return algebra.Group(Eval(t.Input), t.By, t.Aggs)
	case *Rename:
		return algebra.Rename(Eval(t.Input), t.From, t.To)
	default:
		panic(fmt.Sprintf("plan: Eval of unknown node %T", n))
	}
}

// Format renders the plan as an indented tree, one operator per
// line, the shape optimizer traces print:
//
//	Divide
//	  Scan(r1)
//	  Union
//	    Scan(r2a)
//	    Scan(r2b)
func Format(n Node) string {
	return FormatWith(n, nil)
}

// FormatWith is Format with a per-node annotation hook: annot, when
// non-nil, is called for every node and its return value (if
// non-empty) is appended after the operator, space-separated. Explain
// uses it to mark the nodes the compiler runs on the batch path.
func FormatWith(n Node, annot func(Node) string) string {
	var b strings.Builder
	format(&b, n, 0, annot)
	return b.String()
}

func format(b *strings.Builder, n Node, depth int, annot func(Node) string) {
	if depth > 0 {
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.String())
	if annot != nil {
		if s := annot(n); s != "" {
			b.WriteByte(' ')
			b.WriteString(s)
		}
	}
	for _, c := range n.Children() {
		format(b, c, depth+1, annot)
	}
}

// Equal reports structural equality of two plans: same operators
// with the same parameters over equal children. Scans compare by
// name and relation identity.
func Equal(a, b Node) bool {
	if sa, ok := a.(*Scan); ok {
		sb, ok := b.(*Scan)
		return ok && sa.Name == sb.Name && sa.Rel == sb.Rel
	}
	if a.String() != b.String() {
		return false
	}
	ca, cb := a.Children(), b.Children()
	if len(ca) != len(cb) {
		return false
	}
	if fmt.Sprintf("%T", a) != fmt.Sprintf("%T", b) {
		return false
	}
	for i := range ca {
		if !Equal(ca[i], cb[i]) {
			return false
		}
	}
	return true
}

// Transform applies fn to every node bottom-up, rebuilding the tree
// as needed. fn receives a node whose children are already
// transformed and returns its replacement.
func Transform(n Node, fn func(Node) Node) Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]Node, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = Transform(c, fn)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newCh)
		}
	}
	return fn(n)
}

// Count returns the number of nodes in the plan.
func Count(n Node) int {
	total := 1
	for _, c := range n.Children() {
		total += Count(c)
	}
	return total
}

// CountDivides returns how many (small or great) divide nodes the
// plan contains; rewrites that eliminate divisions use it in tests.
func CountDivides(n Node) int {
	total := 0
	switch n.(type) {
	case *Divide, *GreatDivide, *ParallelDivide, *ParallelGreatDivide:
		total++
	}
	for _, c := range n.Children() {
		total += CountDivides(c)
	}
	return total
}
