package plan

import (
	"fmt"
	"sort"
	"strings"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// SortKey is one resolved physical ordering key: an attribute of the
// input schema plus a direction. The binder resolves ORDER BY items
// to SortKeys against the query block's output schema, so plan
// operators never re-run name resolution.
type SortKey struct {
	Attr string
	Desc bool
}

// String renders the key the way ORDER BY wrote it.
func (k SortKey) String() string {
	if k.Desc {
		return k.Attr + " DESC"
	}
	return k.Attr
}

func formatKeys(keys []SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.String()
	}
	return strings.Join(parts, ", ")
}

// Sort is the physical ordering operator τ_keys(input): it emits its
// input's tuples in key order (ties broken by the canonical tuple
// order, so plans are deterministic). Relations are sets, so Sort
// changes no tuple membership — only the order the streaming engine
// delivers them in; Eval materializes the result with sorted
// insertion order for the compat path.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() schema.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node {
	mustArity("Sort", ch, 1)
	return &Sort{Input: ch[0], Keys: s.Keys}
}

// String implements Node.
func (s *Sort) String() string { return fmt.Sprintf("Sort[%s]", formatKeys(s.Keys)) }

// TopK is the fused form of Limit[k] over Sort[keys]: the k smallest
// tuples of the input under the keys, emitted in key order. Unlike
// the unfused pair it never materializes the full sorted input — the
// physical TopKIter keeps a bounded heap of k tuples, and over a
// parallel exchange each partition worker keeps its own k-bounded
// heap with a final k-way merge at the consumer.
type TopK struct {
	Input Node
	Keys  []SortKey
	K     int64
}

// Schema implements Node.
func (t *TopK) Schema() schema.Schema { return t.Input.Schema() }

// Children implements Node.
func (t *TopK) Children() []Node { return []Node{t.Input} }

// WithChildren implements Node.
func (t *TopK) WithChildren(ch []Node) Node {
	mustArity("TopK", ch, 1)
	return &TopK{Input: ch[0], Keys: t.Keys, K: t.K}
}

// String implements Node.
func (t *TopK) String() string { return fmt.Sprintf("TopK[k=%d; %s]", t.K, formatKeys(t.Keys)) }

// SortedTuples returns r's tuples ordered by the keys (resolved
// against r's schema), ties broken canonically — the reference
// ordering Eval and the physical operators must agree on.
func SortedTuples(r *relation.Relation, keys []SortKey) []relation.Tuple {
	pos := make([]int, len(keys))
	desc := make([]bool, len(keys))
	for i, k := range keys {
		pos[i] = r.Schema().MustIndex(k.Attr)
		desc[i] = k.Desc
	}
	cmp := relation.KeyedCompare(pos, desc)
	out := append([]relation.Tuple(nil), r.Tuples()...)
	sort.Slice(out, func(i, j int) bool { return cmp(out[i], out[j]) < 0 })
	return out
}
