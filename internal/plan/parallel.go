package plan

import (
	"fmt"
	"strings"

	"divlaws/internal/division"
	"divlaws/internal/schema"
)

// ParallelDivide is the intra-operator parallel form of Divide: the
// dividend is range-partitioned on the quotient attributes A across
// Workers goroutines, each partition divided independently, and the
// quotients unioned. The partitioning makes precondition c2 of Law 2
// hold between any two partitions by construction (§5.1.1), so the
// rewrite is always safe.
type ParallelDivide struct {
	Dividend, Divisor Node
	// Algo optionally pins the per-partition physical algorithm;
	// empty means the engine default (hash-division).
	Algo division.Algorithm
	// Workers is the partition/goroutine count; 0 means GOMAXPROCS,
	// 1 degrades to the sequential operator.
	Workers int
}

// Schema implements Node.
func (d *ParallelDivide) Schema() schema.Schema {
	split, err := division.SmallSplit(d.Dividend.Schema(), d.Divisor.Schema())
	if err != nil {
		panic(err)
	}
	return split.A
}

// Children implements Node.
func (d *ParallelDivide) Children() []Node { return []Node{d.Dividend, d.Divisor} }

// WithChildren implements Node.
func (d *ParallelDivide) WithChildren(ch []Node) Node {
	mustArity("ParallelDivide", ch, 2)
	return &ParallelDivide{Dividend: ch[0], Divisor: ch[1], Algo: d.Algo, Workers: d.Workers}
}

// Partitioning describes the chosen partitioning strategy for
// EXPLAIN output: range partitioning on the quotient attributes.
func (d *ParallelDivide) Partitioning() string {
	split, err := division.SmallSplit(d.Dividend.Schema(), d.Divisor.Schema())
	if err != nil {
		return "range(?)"
	}
	return fmt.Sprintf("range(%s)", strings.Join(split.A.Attrs(), ", "))
}

// String implements Node.
func (d *ParallelDivide) String() string {
	algo := d.Algo
	if algo == "" {
		algo = division.AlgoHash
	}
	return fmt.Sprintf("ParallelDivide[%s, workers=%d, %s]", algo, d.Workers, d.Partitioning())
}

// ParallelGreatDivide is the intra-operator parallel form of
// GreatDivide: the dividend is replicated, the divisor hash-
// partitioned on its group attributes C across Workers goroutines,
// and the per-partition quotients unioned. Hash partitioning keeps
// every divisor group in one partition, so the πC-disjointness
// premise of Law 13 holds by construction (§5.2.1).
type ParallelGreatDivide struct {
	Dividend, Divisor Node
	Algo              division.Algorithm
	Workers           int
}

// Schema implements Node.
func (d *ParallelGreatDivide) Schema() schema.Schema {
	split, err := division.GreatSplit(d.Dividend.Schema(), d.Divisor.Schema())
	if err != nil {
		panic(err)
	}
	return split.A.Concat(split.C)
}

// Children implements Node.
func (d *ParallelGreatDivide) Children() []Node { return []Node{d.Dividend, d.Divisor} }

// WithChildren implements Node.
func (d *ParallelGreatDivide) WithChildren(ch []Node) Node {
	mustArity("ParallelGreatDivide", ch, 2)
	return &ParallelGreatDivide{Dividend: ch[0], Divisor: ch[1], Algo: d.Algo, Workers: d.Workers}
}

// Partitioning describes the chosen partitioning strategy for
// EXPLAIN output: hash partitioning on the divisor group attributes.
func (d *ParallelGreatDivide) Partitioning() string {
	split, err := division.GreatSplit(d.Dividend.Schema(), d.Divisor.Schema())
	if err != nil {
		return "hash(?)"
	}
	return fmt.Sprintf("hash(%s)", strings.Join(split.C.Attrs(), ", "))
}

// String implements Node.
func (d *ParallelGreatDivide) String() string {
	algo := d.Algo
	if algo == "" {
		algo = division.GreatAlgoHash
	}
	return fmt.Sprintf("ParallelGreatDivide[%s, workers=%d, %s]", algo, d.Workers, d.Partitioning())
}
