package plan

import (
	"strings"
	"testing"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

func scanR1() *Scan {
	return NewScan("r1", relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 1}, {3, 3}, {3, 4},
	}))
}

func scanR2() *Scan {
	return NewScan("r2", relation.Ints([]string{"b"}, [][]int64{{1}, {3}}))
}

func TestSchemas(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	cases := []struct {
		n    Node
		want schema.Schema
	}{
		{r1, schema.New("a", "b")},
		{&Select{Input: r1, Pred: pred.True}, schema.New("a", "b")},
		{&Project{Input: r1, Attrs: []string{"b"}}, schema.New("b")},
		{Union(r1, r1), schema.New("a", "b")},
		{Intersect(r1, r1), schema.New("a", "b")},
		{Diff(r1, r1), schema.New("a", "b")},
		{&Product{Left: &Project{Input: r1, Attrs: []string{"a"}}, Right: r2}, schema.New("a", "b")},
		{&Join{Left: r1, Right: r2}, schema.New("a", "b")},
		{&SemiJoin{Left: r1, Right: r2}, schema.New("a", "b")},
		{&AntiSemiJoin{Left: r1, Right: r2}, schema.New("a", "b")},
		{&Divide{Dividend: r1, Divisor: r2}, schema.New("a")},
		{&Group{Input: r1, By: []string{"a"}, Aggs: []algebra.AggSpec{{Func: algebra.Count, As: "c"}}}, schema.New("a", "c")},
		{&Rename{Input: r2, From: "b", To: "x"}, schema.New("x")},
	}
	for _, tc := range cases {
		if got := tc.n.Schema(); !got.Equal(tc.want) {
			t.Errorf("%s schema = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestGreatDivideSchema(t *testing.T) {
	r1 := scanR1()
	r2 := NewScan("r2", relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}}))
	n := &GreatDivide{Dividend: r1, Divisor: r2}
	if got := n.Schema(); !got.Equal(schema.New("a", "c")) {
		t.Errorf("GreatDivide schema = %v", got)
	}
}

func TestDivideSchemaPanicsOnViolation(t *testing.T) {
	bad := &Divide{Dividend: scanR2(), Divisor: scanR2()}
	defer func() {
		if recover() == nil {
			t.Error("expected schema panic")
		}
	}()
	bad.Schema()
}

func TestEvalMatchesAlgebra(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	div := &Divide{Dividend: r1, Divisor: r2}
	want := division.Divide(r1.Rel, r2.Rel)
	if got := Eval(div); !got.Equal(want) {
		t.Errorf("Eval(Divide) = %v want %v", got, want)
	}

	sel := &Select{Input: r1, Pred: pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(3))}
	if got := Eval(sel); !got.Equal(algebra.Select(r1.Rel, sel.Pred)) {
		t.Error("Eval(Select) mismatch")
	}

	pi := &Project{Input: r1, Attrs: []string{"a"}}
	if got := Eval(pi); !got.Equal(algebra.Project(r1.Rel, "a")) {
		t.Error("Eval(Project) mismatch")
	}

	if got := Eval(Union(r1, r1)); !got.Equal(r1.Rel) {
		t.Error("Eval(Union) mismatch")
	}
	if got := Eval(Intersect(r1, r1)); !got.Equal(r1.Rel) {
		t.Error("Eval(Intersect) mismatch")
	}
	if got := Eval(Diff(r1, r1)); !got.Empty() {
		t.Error("Eval(Diff) mismatch")
	}

	piA := &Project{Input: r1, Attrs: []string{"a"}}
	if got := Eval(&Product{Left: piA, Right: r2}); !got.Equal(algebra.Product(Eval(piA), r2.Rel)) {
		t.Error("Eval(Product) mismatch")
	}
	if got := Eval(&Join{Left: r1, Right: r2}); !got.Equal(algebra.NaturalJoin(r1.Rel, r2.Rel)) {
		t.Error("Eval(Join) mismatch")
	}
	if got := Eval(&SemiJoin{Left: r1, Right: r2}); !got.Equal(algebra.SemiJoin(r1.Rel, r2.Rel)) {
		t.Error("Eval(SemiJoin) mismatch")
	}
	if got := Eval(&AntiSemiJoin{Left: r1, Right: r2}); !got.Equal(algebra.AntiSemiJoin(r1.Rel, r2.Rel)) {
		t.Error("Eval(AntiSemiJoin) mismatch")
	}

	grp := &Group{Input: r1, By: []string{"a"}, Aggs: []algebra.AggSpec{{Func: algebra.Count, As: "c"}}}
	if got := Eval(grp); !got.Equal(algebra.Group(r1.Rel, grp.By, grp.Aggs)) {
		t.Error("Eval(Group) mismatch")
	}
	if got := Eval(&Rename{Input: r2, From: "b", To: "x"}); !got.Schema().Equal(schema.New("x")) {
		t.Error("Eval(Rename) mismatch")
	}

	theta := &ThetaJoin{
		Left:  &Project{Input: r1, Attrs: []string{"a"}},
		Right: &Rename{Input: r2, From: "b", To: "x"},
		Pred:  pred.Compare(pred.Attr("a"), pred.Lt, pred.Attr("x")),
	}
	wantTheta := algebra.ThetaJoin(algebra.Project(r1.Rel, "a"), algebra.Rename(r2.Rel, "b", "x"), theta.Pred)
	if got := Eval(theta); !got.Equal(wantTheta) {
		t.Error("Eval(ThetaJoin) mismatch")
	}
}

func TestEvalGreatDivide(t *testing.T) {
	r1 := scanR1()
	r2 := NewScan("r2", relation.Ints([]string{"b", "c"}, [][]int64{
		{1, 1}, {2, 1}, {4, 1}, {1, 2}, {3, 2},
	}))
	got := Eval(&GreatDivide{Dividend: r1, Divisor: r2})
	want := division.GreatDivide(r1.Rel, r2.Rel)
	if !got.Equal(want) {
		t.Errorf("Eval(GreatDivide) = %v want %v", got, want)
	}
}

func TestEvalPinnedAlgorithms(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	for _, algo := range division.Algorithms() {
		n := &Divide{Dividend: r1, Divisor: r2, Algo: algo}
		if got := Eval(n); !got.Equal(division.DivideWith(algo, r1.Rel, r2.Rel)) {
			t.Errorf("pinned %s mismatch", algo)
		}
	}
}

func TestFormat(t *testing.T) {
	n := &Divide{Dividend: scanR1(), Divisor: Union(scanR2(), scanR2())}
	got := Format(n)
	want := "Divide\n  Scan(r1)\n  Union\n    Scan(r2)\n    Scan(r2)"
	if got != want {
		t.Errorf("Format:\n%s\nwant:\n%s", got, want)
	}
}

func TestStringForms(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	cases := []struct {
		n    Node
		want string
	}{
		{&Select{Input: r1, Pred: pred.True}, "Select[TRUE]"},
		{&Project{Input: r1, Attrs: []string{"a", "b"}}, "Project[a, b]"},
		{&Divide{Dividend: r1, Divisor: r2, Algo: division.AlgoHash}, "Divide[hash]"},
		{&GreatDivide{Dividend: r1, Divisor: r2}, "GreatDivide"},
		{&Rename{Input: r1, From: "a", To: "z"}, "Rename[a->z]"},
		{&Group{Input: r1, By: []string{"a"}, Aggs: []algebra.AggSpec{{Func: algebra.Sum, Attr: "b", As: "s"}}},
			"Group[by=(a); sum(b)->s]"},
	}
	for _, tc := range cases {
		if got := tc.n.String(); got != tc.want {
			t.Errorf("String = %q want %q", got, tc.want)
		}
	}
	if UnionOp.String() != "Union" || IntersectOp.String() != "Intersect" || DiffOp.String() != "Diff" {
		t.Error("SetOp strings")
	}
	if !strings.HasPrefix(SetOp(9).String(), "SetOp(") {
		t.Error("unknown SetOp string")
	}
}

func TestEqual(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	a := &Divide{Dividend: r1, Divisor: r2}
	b := &Divide{Dividend: r1, Divisor: r2}
	if !Equal(a, b) {
		t.Error("identical plans should be Equal")
	}
	c := &Divide{Dividend: r1, Divisor: scanR2()} // different Scan identity
	if Equal(a, c) {
		t.Error("different scan identity should not be Equal")
	}
	d := &Select{Input: r1, Pred: pred.True}
	e := &Select{Input: r1, Pred: pred.False}
	if Equal(d, e) {
		t.Error("different predicates should not be Equal")
	}
}

func TestWithChildren(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	div := &Divide{Dividend: r1, Divisor: r2, Algo: division.AlgoCount}
	swapped := div.WithChildren([]Node{r1, scanR2()}).(*Divide)
	if swapped.Algo != division.AlgoCount {
		t.Error("WithChildren must preserve parameters")
	}
	if swapped == div {
		t.Error("WithChildren must copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("arity panic expected")
		}
	}()
	div.WithChildren([]Node{r1})
}

func TestTransform(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	tree := &Select{Input: &Divide{Dividend: r1, Divisor: r2}, Pred: pred.True}
	// Replace every Select with its input (identity predicate removal).
	got := Transform(tree, func(n Node) Node {
		if s, ok := n.(*Select); ok && s.Pred == pred.Predicate(pred.True) {
			return s.Input
		}
		return n
	})
	if _, ok := got.(*Divide); !ok {
		t.Errorf("Transform result = %T", got)
	}
	// Unchanged trees should come back structurally identical.
	same := Transform(tree, func(n Node) Node { return n })
	if !Equal(same, tree) {
		t.Error("identity transform should preserve structure")
	}
}

func TestCountAndCountDivides(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	tree := &Select{
		Input: Union(
			&Divide{Dividend: r1, Divisor: r2},
			&Divide{Dividend: r1, Divisor: r2},
		),
		Pred: pred.True,
	}
	if got := Count(tree); got != 8 {
		t.Errorf("Count = %d want 8", got)
	}
	if got := CountDivides(tree); got != 2 {
		t.Errorf("CountDivides = %d want 2", got)
	}
}

func TestWithChildrenRoundTripAllNodes(t *testing.T) {
	// Every node type must rebuild itself from its own children,
	// preserving parameters and arity — the contract Transform
	// relies on.
	r1, r2 := scanR1(), scanR2()
	r2g := NewScan("r2g", relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}}))
	nodes := []Node{
		&Select{Input: r1, Pred: pred.True},
		&Project{Input: r1, Attrs: []string{"a"}},
		Union(r1, r1),
		Intersect(r1, r1),
		Diff(r1, r1),
		&Product{Left: &Project{Input: r1, Attrs: []string{"a"}}, Right: r2},
		&Join{Left: r1, Right: r2},
		&ThetaJoin{Left: &Project{Input: r1, Attrs: []string{"a"}}, Right: &Rename{Input: r2, From: "b", To: "x"},
			Pred: pred.Compare(pred.Attr("a"), pred.Lt, pred.Attr("x"))},
		&SemiJoin{Left: r1, Right: r2},
		&AntiSemiJoin{Left: r1, Right: r2},
		&Divide{Dividend: r1, Divisor: r2, Algo: division.AlgoCount},
		&GreatDivide{Dividend: r1, Divisor: r2g, Algo: division.GreatAlgoHash},
		&Group{Input: r1, By: []string{"a"}, Aggs: []algebra.AggSpec{{Func: algebra.Count, As: "c"}}},
		&Rename{Input: r2, From: "b", To: "x"},
	}
	for _, n := range nodes {
		rebuilt := n.WithChildren(n.Children())
		if !Equal(n, rebuilt) {
			t.Errorf("%T: WithChildren(Children()) not structurally equal", n)
		}
		if !n.Schema().Equal(rebuilt.Schema()) {
			t.Errorf("%T: schema changed across rebuild", n)
		}
		if !Eval(n).Equal(Eval(rebuilt)) {
			t.Errorf("%T: evaluation changed across rebuild", n)
		}
		// String must be stable and nonempty.
		if n.String() == "" || n.String() != rebuilt.String() {
			t.Errorf("%T: String unstable", n)
		}
	}
}

func TestWithChildrenArityPanics(t *testing.T) {
	r1, r2 := scanR1(), scanR2()
	nodes := []Node{
		&Select{Input: r1, Pred: pred.True},
		&Project{Input: r1, Attrs: []string{"a"}},
		Union(r1, r1),
		&Product{Left: r1, Right: r2},
		&Join{Left: r1, Right: r2},
		&ThetaJoin{Left: r1, Right: r2, Pred: pred.True},
		&SemiJoin{Left: r1, Right: r2},
		&AntiSemiJoin{Left: r1, Right: r2},
		&GreatDivide{Dividend: r1, Divisor: r2},
		&Group{Input: r1, By: []string{"a"}},
		&Rename{Input: r2, From: "b", To: "x"},
		r1, // Scan expects zero children
	}
	for _, n := range nodes {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: expected arity panic", n)
				}
			}()
			n.WithChildren(make([]Node, 5))
		}()
	}
}

func TestScanWithChildrenIdentity(t *testing.T) {
	s := scanR1()
	if s.WithChildren(nil) != Node(s) {
		t.Error("Scan.WithChildren(nil) should return the scan itself")
	}
}

func TestGreatDivideSchemaPanicsOnViolation(t *testing.T) {
	bad := &GreatDivide{Dividend: scanR2(), Divisor: scanR2()}
	defer func() {
		if recover() == nil {
			t.Error("expected schema panic")
		}
	}()
	bad.Schema()
}

func TestEvalUnknownSetOpPanics(t *testing.T) {
	bad := &Set{Op: SetOp(9), Left: scanR1(), Right: scanR1()}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Eval(bad)
}

func TestEvalUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Eval(bogusNode{})
}

type bogusNode struct{}

func (bogusNode) Schema() schema.Schema       { return schema.New("x") }
func (bogusNode) Children() []Node            { return nil }
func (bogusNode) WithChildren(ch []Node) Node { return bogusNode{} }
func (bogusNode) String() string              { return "Bogus" }
