package plan

import (
	"strings"
	"testing"

	"divlaws/internal/division"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func parallelFixture() (*relation.Relation, *relation.Relation, *relation.Relation) {
	r1 := relation.New(schema.New("a", "b"))
	for i := int64(0); i < 24; i++ {
		r1.Insert(relation.Tuple{value.Int(i % 6), value.Int(i % 4)})
	}
	r2 := relation.New(schema.New("b"))
	r2.Insert(relation.Tuple{value.Int(1)})
	r2.Insert(relation.Tuple{value.Int(2)})
	rg := relation.New(schema.New("b", "c"))
	for i := int64(0); i < 12; i++ {
		rg.Insert(relation.Tuple{value.Int(i % 4), value.Int(i % 3)})
	}
	return r1, r2, rg
}

func TestParallelDivideNode(t *testing.T) {
	r1, r2, _ := parallelFixture()
	seq := &Divide{Dividend: NewScan("r1", r1), Divisor: NewScan("r2", r2)}
	par := &ParallelDivide{Dividend: NewScan("r1", r1), Divisor: NewScan("r2", r2), Workers: 3}

	if !par.Schema().EqualSet(seq.Schema()) {
		t.Errorf("schema mismatch: %v vs %v", par.Schema(), seq.Schema())
	}
	if !Eval(par).Equal(Eval(seq)) {
		t.Error("ParallelDivide Eval diverged from Divide")
	}
	s := par.String()
	for _, want := range []string{"workers=3", "range(a)", string(division.AlgoHash)} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	rebuilt := par.WithChildren(par.Children()).(*ParallelDivide)
	if rebuilt.Workers != 3 || rebuilt.Algo != par.Algo {
		t.Errorf("WithChildren dropped fields: %+v", rebuilt)
	}
}

func TestParallelGreatDivideNode(t *testing.T) {
	r1, _, rg := parallelFixture()
	seq := &GreatDivide{Dividend: NewScan("r1", r1), Divisor: NewScan("rg", rg)}
	par := &ParallelGreatDivide{Dividend: NewScan("r1", r1), Divisor: NewScan("rg", rg), Workers: 5}

	if !par.Schema().EqualSet(seq.Schema()) {
		t.Errorf("schema mismatch: %v vs %v", par.Schema(), seq.Schema())
	}
	if !Eval(par).EquivalentTo(Eval(seq)) {
		t.Error("ParallelGreatDivide Eval diverged from GreatDivide")
	}
	s := par.String()
	for _, want := range []string{"workers=5", "hash(c)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if n := CountDivides(par); n != 1 {
		t.Errorf("CountDivides = %d, want 1", n)
	}
}
