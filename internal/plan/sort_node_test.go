package plan

import (
	"testing"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func sortFixture() *Scan {
	r := relation.New(schema.New("a", "b"))
	for _, row := range [][2]int64{{3, 1}, {1, 2}, {2, 0}, {5, 9}, {4, 4}} {
		r.Insert(relation.Tuple{value.Int(row[0]), value.Int(row[1])})
	}
	return NewScan("r", r)
}

func TestSortNode(t *testing.T) {
	s := &Sort{Input: sortFixture(), Keys: []SortKey{{Attr: "a", Desc: true}}}
	if got := s.String(); got != "Sort[a DESC]" {
		t.Fatalf("String = %q", got)
	}
	if !s.Schema().Equal(s.Input.Schema()) {
		t.Fatal("Sort must not change the schema")
	}
	if len(s.Children()) != 1 {
		t.Fatal("Sort has one child")
	}
	re := s.WithChildren([]Node{sortFixture()}).(*Sort)
	if len(re.Keys) != 1 || !re.Keys[0].Desc {
		t.Fatal("WithChildren dropped the keys")
	}

	got := Eval(s)
	vals := make([]int64, 0, got.Len())
	for _, tup := range got.Tuples() {
		vals = append(vals, tup[0].AsInt())
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1] < vals[i] {
			t.Fatalf("Eval(Sort DESC) insertion order not descending: %v", vals)
		}
	}
}

func TestTopKNode(t *testing.T) {
	k := &TopK{Input: sortFixture(), Keys: []SortKey{{Attr: "a"}}, K: 2}
	if got := k.String(); got != "TopK[k=2; a]" {
		t.Fatalf("String = %q", got)
	}
	re := k.WithChildren([]Node{sortFixture()}).(*TopK)
	if re.K != 2 || len(re.Keys) != 1 {
		t.Fatal("WithChildren dropped parameters")
	}

	got := Eval(k)
	if got.Len() != 2 {
		t.Fatalf("Eval(TopK k=2) = %d rows", got.Len())
	}
	for i, want := range []int64{1, 2} {
		if got.Tuples()[i][0].AsInt() != want {
			t.Fatalf("row %d = %v, want a=%d", i, got.Tuples()[i], want)
		}
	}
}

// TestTopKEvalAgreesWithLimitSort pins the fusion contract: Eval of
// TopK and Eval of Limit over Sort pick the same tuples in the same
// insertion order, because both rank with SortedTuples.
func TestTopKEvalAgreesWithLimitSort(t *testing.T) {
	keys := []SortKey{{Attr: "b", Desc: true}}
	fused := &TopK{Input: sortFixture(), Keys: keys, K: 3}
	unfused := &Limit{Input: &Sort{Input: sortFixture(), Keys: keys}, N: 3}
	a, b := Eval(fused), Eval(unfused)
	if !a.Equal(b) {
		t.Fatalf("TopK = %v, Limit(Sort) = %v", a, b)
	}
	for i := range a.Tuples() {
		if !a.Tuples()[i].Equal(b.Tuples()[i]) {
			t.Fatalf("insertion order diverges at %d: %v vs %v", i, a.Tuples()[i], b.Tuples()[i])
		}
	}
}

func TestTopKEvalZeroAndOversized(t *testing.T) {
	if got := Eval(&TopK{Input: sortFixture(), Keys: []SortKey{{Attr: "a"}}, K: 0}); got.Len() != 0 {
		t.Fatalf("k=0 produced %d rows", got.Len())
	}
	if got := Eval(&TopK{Input: sortFixture(), Keys: []SortKey{{Attr: "a"}}, K: 100}); got.Len() != 5 {
		t.Fatalf("oversized k produced %d rows", got.Len())
	}
}
