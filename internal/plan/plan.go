// Package plan defines the logical query algebra: an immutable
// expression tree over relations with the operators of the paper's
// Appendix A plus the small and great divide as first-class nodes.
//
// The rewrite laws (package laws) are transformations over these
// trees; Eval is the reference interpreter that materializes any
// plan bottom-up using package algebra and package division, so law
// equivalences can be checked by evaluating both sides.
package plan

import (
	"fmt"
	"strings"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// Node is a logical plan operator.
type Node interface {
	// Schema returns the output schema of the operator. It panics on
	// schema violations (the same contract as package algebra).
	Schema() schema.Schema
	// Children returns the operator's inputs in order.
	Children() []Node
	// WithChildren returns a copy of the operator with the inputs
	// replaced. len(ch) must match len(Children()).
	WithChildren(ch []Node) Node
	// String renders the operator itself (one line, no children).
	String() string
}

// Scan is a leaf node reading a named base relation.
type Scan struct {
	Name string
	Rel  *relation.Relation
}

// NewScan builds a leaf over a materialized relation.
func NewScan(name string, rel *relation.Relation) *Scan { return &Scan{Name: name, Rel: rel} }

// Schema implements Node.
func (s *Scan) Schema() schema.Schema { return s.Rel.Schema() }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (s *Scan) WithChildren(ch []Node) Node {
	mustArity("Scan", ch, 0)
	return s
}

// String implements Node.
func (s *Scan) String() string { return fmt.Sprintf("Scan(%s)", s.Name) }

// Select is σ_p(input).
type Select struct {
	Input Node
	Pred  pred.Predicate
}

// Schema implements Node.
func (s *Select) Schema() schema.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Select) WithChildren(ch []Node) Node {
	mustArity("Select", ch, 1)
	return &Select{Input: ch[0], Pred: s.Pred}
}

// String implements Node.
func (s *Select) String() string { return fmt.Sprintf("Select[%s]", s.Pred) }

// Project is π_attrs(input).
type Project struct {
	Input Node
	Attrs []string
}

// Schema implements Node.
func (p *Project) Schema() schema.Schema {
	sch, _ := p.Input.Schema().Project(p.Attrs)
	return sch
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// WithChildren implements Node.
func (p *Project) WithChildren(ch []Node) Node {
	mustArity("Project", ch, 1)
	return &Project{Input: ch[0], Attrs: p.Attrs}
}

// String implements Node.
func (p *Project) String() string { return fmt.Sprintf("Project[%s]", strings.Join(p.Attrs, ", ")) }

// SetOp identifies a binary set operator.
type SetOp uint8

// The set operators.
const (
	UnionOp SetOp = iota
	IntersectOp
	DiffOp
)

// String returns the operator symbol.
func (o SetOp) String() string {
	switch o {
	case UnionOp:
		return "Union"
	case IntersectOp:
		return "Intersect"
	case DiffOp:
		return "Diff"
	default:
		return fmt.Sprintf("SetOp(%d)", uint8(o))
	}
}

// Set is a union, intersection, or difference of union-compatible
// inputs.
type Set struct {
	Op          SetOp
	Left, Right Node
}

// Schema implements Node.
func (s *Set) Schema() schema.Schema { return s.Left.Schema() }

// Children implements Node.
func (s *Set) Children() []Node { return []Node{s.Left, s.Right} }

// WithChildren implements Node.
func (s *Set) WithChildren(ch []Node) Node {
	mustArity(s.Op.String(), ch, 2)
	return &Set{Op: s.Op, Left: ch[0], Right: ch[1]}
}

// String implements Node.
func (s *Set) String() string { return s.Op.String() }

// Union returns left ∪ right.
func Union(l, r Node) *Set { return &Set{Op: UnionOp, Left: l, Right: r} }

// Intersect returns left ∩ right.
func Intersect(l, r Node) *Set { return &Set{Op: IntersectOp, Left: l, Right: r} }

// Diff returns left − right.
func Diff(l, r Node) *Set { return &Set{Op: DiffOp, Left: l, Right: r} }

// Product is the Cartesian product left × right.
type Product struct {
	Left, Right Node
}

// Schema implements Node.
func (p *Product) Schema() schema.Schema { return p.Left.Schema().Concat(p.Right.Schema()) }

// Children implements Node.
func (p *Product) Children() []Node { return []Node{p.Left, p.Right} }

// WithChildren implements Node.
func (p *Product) WithChildren(ch []Node) Node {
	mustArity("Product", ch, 2)
	return &Product{Left: ch[0], Right: ch[1]}
}

// String implements Node.
func (p *Product) String() string { return "Product" }

// Join is the natural join left ⋈ right.
type Join struct {
	Left, Right Node
}

// Schema implements Node.
func (j *Join) Schema() schema.Schema { return j.Left.Schema().Union(j.Right.Schema()) }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *Join) WithChildren(ch []Node) Node {
	mustArity("Join", ch, 2)
	return &Join{Left: ch[0], Right: ch[1]}
}

// String implements Node.
func (j *Join) String() string { return "Join" }

// ThetaJoin is left ⋈θ right over disjoint schemas.
type ThetaJoin struct {
	Left, Right Node
	Pred        pred.Predicate
}

// Schema implements Node.
func (j *ThetaJoin) Schema() schema.Schema { return j.Left.Schema().Concat(j.Right.Schema()) }

// Children implements Node.
func (j *ThetaJoin) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *ThetaJoin) WithChildren(ch []Node) Node {
	mustArity("ThetaJoin", ch, 2)
	return &ThetaJoin{Left: ch[0], Right: ch[1], Pred: j.Pred}
}

// String implements Node.
func (j *ThetaJoin) String() string { return fmt.Sprintf("ThetaJoin[%s]", j.Pred) }

// SemiJoin is the left semi-join left ⋉ right.
type SemiJoin struct {
	Left, Right Node
}

// Schema implements Node.
func (j *SemiJoin) Schema() schema.Schema { return j.Left.Schema() }

// Children implements Node.
func (j *SemiJoin) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *SemiJoin) WithChildren(ch []Node) Node {
	mustArity("SemiJoin", ch, 2)
	return &SemiJoin{Left: ch[0], Right: ch[1]}
}

// String implements Node.
func (j *SemiJoin) String() string { return "SemiJoin" }

// AntiSemiJoin is the left anti-semi-join.
type AntiSemiJoin struct {
	Left, Right Node
}

// Schema implements Node.
func (j *AntiSemiJoin) Schema() schema.Schema { return j.Left.Schema() }

// Children implements Node.
func (j *AntiSemiJoin) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *AntiSemiJoin) WithChildren(ch []Node) Node {
	mustArity("AntiSemiJoin", ch, 2)
	return &AntiSemiJoin{Left: ch[0], Right: ch[1]}
}

// String implements Node.
func (j *AntiSemiJoin) String() string { return "AntiSemiJoin" }

// Divide is the small divide dividend ÷ divisor.
type Divide struct {
	Dividend, Divisor Node
	// Algo optionally pins a physical algorithm; empty means the
	// engine default (hash-division).
	Algo division.Algorithm
}

// Schema implements Node.
func (d *Divide) Schema() schema.Schema {
	split, err := division.SmallSplit(d.Dividend.Schema(), d.Divisor.Schema())
	if err != nil {
		panic(err)
	}
	return split.A
}

// Children implements Node.
func (d *Divide) Children() []Node { return []Node{d.Dividend, d.Divisor} }

// WithChildren implements Node.
func (d *Divide) WithChildren(ch []Node) Node {
	mustArity("Divide", ch, 2)
	return &Divide{Dividend: ch[0], Divisor: ch[1], Algo: d.Algo}
}

// String implements Node.
func (d *Divide) String() string {
	if d.Algo != "" {
		return fmt.Sprintf("Divide[%s]", d.Algo)
	}
	return "Divide"
}

// GreatDivide is dividend ÷* divisor.
type GreatDivide struct {
	Dividend, Divisor Node
	Algo              division.Algorithm
}

// Schema implements Node.
func (d *GreatDivide) Schema() schema.Schema {
	split, err := division.GreatSplit(d.Dividend.Schema(), d.Divisor.Schema())
	if err != nil {
		panic(err)
	}
	return split.A.Concat(split.C)
}

// Children implements Node.
func (d *GreatDivide) Children() []Node { return []Node{d.Dividend, d.Divisor} }

// WithChildren implements Node.
func (d *GreatDivide) WithChildren(ch []Node) Node {
	mustArity("GreatDivide", ch, 2)
	return &GreatDivide{Dividend: ch[0], Divisor: ch[1], Algo: d.Algo}
}

// String implements Node.
func (d *GreatDivide) String() string {
	if d.Algo != "" {
		return fmt.Sprintf("GreatDivide[%s]", d.Algo)
	}
	return "GreatDivide"
}

// Group is the grouping operator Byγ_Aggs(input).
type Group struct {
	Input Node
	By    []string
	Aggs  []algebra.AggSpec
}

// Schema implements Node.
func (g *Group) Schema() schema.Schema {
	attrs := append([]string(nil), g.By...)
	for _, a := range g.Aggs {
		attrs = append(attrs, a.As)
	}
	return schema.New(attrs...)
}

// Children implements Node.
func (g *Group) Children() []Node { return []Node{g.Input} }

// WithChildren implements Node.
func (g *Group) WithChildren(ch []Node) Node {
	mustArity("Group", ch, 1)
	return &Group{Input: ch[0], By: g.By, Aggs: g.Aggs}
}

// String implements Node.
func (g *Group) String() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		parts[i] = a.String()
	}
	return fmt.Sprintf("Group[by=(%s); %s]", strings.Join(g.By, ", "), strings.Join(parts, ", "))
}

// Limit caps its input at the first N tuples. Relations are sets, so
// which N tuples survive is implementation-defined; the operator
// exists as an early-exit signal: the physical LimitIter stops
// pulling — and tears down streaming subtrees such as parallel
// exchanges — as soon as N tuples have surfaced.
type Limit struct {
	Input Node
	N     int64
}

// Schema implements Node.
func (l *Limit) Schema() schema.Schema { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// WithChildren implements Node.
func (l *Limit) WithChildren(ch []Node) Node {
	mustArity("Limit", ch, 1)
	return &Limit{Input: ch[0], N: l.N}
}

// String implements Node.
func (l *Limit) String() string { return fmt.Sprintf("Limit[%d]", l.N) }

// Rename renames one attribute of its input.
type Rename struct {
	Input    Node
	From, To string
}

// Schema implements Node.
func (r *Rename) Schema() schema.Schema { return r.Input.Schema().Rename(r.From, r.To) }

// Children implements Node.
func (r *Rename) Children() []Node { return []Node{r.Input} }

// WithChildren implements Node.
func (r *Rename) WithChildren(ch []Node) Node {
	mustArity("Rename", ch, 1)
	return &Rename{Input: ch[0], From: r.From, To: r.To}
}

// String implements Node.
func (r *Rename) String() string { return fmt.Sprintf("Rename[%s->%s]", r.From, r.To) }

func mustArity(op string, ch []Node, n int) {
	if len(ch) != n {
		panic(fmt.Sprintf("plan: %s expects %d children, got %d", op, n, len(ch)))
	}
}
