package laws

import (
	"math/bits"

	"divlaws/internal/division"
	"divlaws/internal/hashkey"
	"divlaws/internal/relation"
)

// C1 evaluates the paper's precondition c1(r1', r1”) for Law 2 with
// divisor r2: for every quotient-candidate value a present in both
// dividend partitions, either one partition's group already contains
// the whole divisor, or even the union of the two groups does not.
// This rules out the Figure 5 situation where a group's divisor
// coverage is dispersed across the partitions.
//
// The relations must share a schema A ∪ B with B = r2's schema.
//
// The evaluation runs on the engine's 64-bit hash layer: divisor B
// values are bit-numbered through a relation.TupleIndex and each
// partition's groups carry a coverage bitmap, so no key strings are
// built and the union check is a word-wise OR + popcount. Results
// stay exact under hash collisions because TupleIndex verifies every
// probe (the collision test pits this against a string-keyed oracle
// under a masked hash).
func C1(r1a, r1b, r2 *relation.Relation) bool {
	split, err := smallSplitRels(r1a, r2)
	if err != nil {
		return false
	}
	bOrder := r2.Schema().Positions(split.B.Attrs())

	// Bit-number the divisor's B values.
	var divisor relation.TupleIndex
	for _, d := range r2.Tuples() {
		divisor.IDProj(d, bOrder)
	}
	nDiv := divisor.Len()

	covA := coverageByGroup(r1a, split, &divisor)
	covB := coverageByGroup(r1b, split, &divisor)

	for idA, a := range covA.groups.Keys() {
		idB := covB.groups.Lookup(a)
		if idB < 0 {
			continue
		}
		if covA.seen[idA] == nDiv || covB.seen[idB] == nDiv {
			continue
		}
		// Neither group alone contains the divisor; the union must
		// not either.
		union := 0
		bitsA, bitsB := covA.bits[idA], covB.bits[idB]
		for w := range bitsA {
			union += bits.OnesCount64(bitsA[w] | bitsB[w])
		}
		if union == nDiv {
			return false
		}
	}
	return true
}

// C2 evaluates the paper's stricter, cheaper precondition
// c2(r1', r1”) ≡ πA(r1') ∩ πA(r1”) = ∅ for Law 2 with divisor
// schema B = r2's schema. C2 implies C1.
func C2(r1a, r1b, r2 *relation.Relation) bool {
	split, err := smallSplitRels(r1a, r2)
	if err != nil {
		return false
	}
	aPosA := r1a.Schema().Positions(split.A.Attrs())
	aPosB := r1b.Schema().Positions(split.A.Attrs())
	var seen relation.TupleIndex
	for _, t := range r1a.Tuples() {
		seen.IDProj(t, aPosA)
	}
	for _, t := range r1b.Tuples() {
		if seen.LookupProj(t, aPosB) >= 0 {
			return false
		}
	}
	return true
}

// groupCoverage maps one partition's quotient candidates (A values)
// to bitmaps of the divisor elements their groups contain.
type groupCoverage struct {
	groups relation.TupleIndex
	bits   []hashkey.Bitset
	seen   []int
}

// coverageByGroup folds a dividend partition into per-group divisor
// coverage against the shared bit numbering.
func coverageByGroup(r *relation.Relation, split division.Split, divisor *relation.TupleIndex) groupCoverage {
	aPos := r.Schema().Positions(split.A.Attrs())
	bPos := r.Schema().Positions(split.B.Attrs())
	nDiv := divisor.Len()
	var cov groupCoverage
	for _, t := range r.Tuples() {
		id, created := cov.groups.IDProj(t, aPos)
		if created {
			cov.bits = append(cov.bits, hashkey.NewBitset(nDiv))
			cov.seen = append(cov.seen, 0)
		}
		if bit := divisor.LookupProj(t, bPos); bit >= 0 {
			if cov.bits[id].Set(bit) {
				cov.seen[id]++
			}
		}
	}
	return cov
}

func smallSplitRels(r1, r2 *relation.Relation) (division.Split, error) {
	return division.SmallSplit(r1.Schema(), r2.Schema())
}
