package laws

import (
	"divlaws/internal/division"
	"divlaws/internal/relation"
)

// C1 evaluates the paper's precondition c1(r1', r1”) for Law 2 with
// divisor r2: for every quotient-candidate value a present in both
// dividend partitions, either one partition's group already contains
// the whole divisor, or even the union of the two groups does not.
// This rules out the Figure 5 situation where a group's divisor
// coverage is dispersed across the partitions.
//
// The relations must share a schema A ∪ B with B = r2's schema.
func C1(r1a, r1b, r2 *relation.Relation) bool {
	split, err := smallSplitRels(r1a, r2)
	if err != nil {
		return false
	}
	aPosA := r1a.Schema().Positions(split.A.Attrs())
	bPosA := r1a.Schema().Positions(split.B.Attrs())
	aPosB := r1b.Schema().Positions(split.A.Attrs())
	bPosB := r1b.Schema().Positions(split.B.Attrs())
	bOrder := r2.Schema().Positions(split.B.Attrs())

	// Group both partitions' image sets by A.
	imageA := imagesByGroup(r1a, aPosA, bPosA)
	imageB := imagesByGroup(r1b, aPosB, bPosB)

	divisor := make([]string, 0, r2.Len())
	for _, d := range r2.Tuples() {
		divisor = append(divisor, d.Project(bOrder).Key())
	}

	for ak, imgA := range imageA {
		imgB, shared := imageB[ak]
		if !shared {
			continue
		}
		if coversAll(imgA, divisor) || coversAll(imgB, divisor) {
			continue
		}
		// Neither group alone contains the divisor; the union must
		// not either.
		union := make(map[string]struct{}, len(imgA)+len(imgB))
		for k := range imgA {
			union[k] = struct{}{}
		}
		for k := range imgB {
			union[k] = struct{}{}
		}
		if coversAll(union, divisor) {
			return false
		}
	}
	return true
}

// C2 evaluates the paper's stricter, cheaper precondition
// c2(r1', r1”) ≡ πA(r1') ∩ πA(r1”) = ∅ for Law 2 with divisor
// schema B = r2's schema. C2 implies C1.
func C2(r1a, r1b, r2 *relation.Relation) bool {
	split, err := smallSplitRels(r1a, r2)
	if err != nil {
		return false
	}
	aPosA := r1a.Schema().Positions(split.A.Attrs())
	aPosB := r1b.Schema().Positions(split.A.Attrs())
	seen := make(map[string]struct{}, r1a.Len())
	for _, t := range r1a.Tuples() {
		seen[t.Project(aPosA).Key()] = struct{}{}
	}
	for _, t := range r1b.Tuples() {
		if _, hit := seen[t.Project(aPosB).Key()]; hit {
			return false
		}
	}
	return true
}

func imagesByGroup(r *relation.Relation, aPos, bPos []int) map[string]map[string]struct{} {
	out := make(map[string]map[string]struct{})
	for _, t := range r.Tuples() {
		ak := t.Project(aPos).Key()
		img, ok := out[ak]
		if !ok {
			img = make(map[string]struct{})
			out[ak] = img
		}
		img[t.Project(bPos).Key()] = struct{}{}
	}
	return out
}

func coversAll(img map[string]struct{}, divisor []string) bool {
	for _, d := range divisor {
		if _, ok := img[d]; !ok {
			return false
		}
	}
	return true
}

func smallSplitRels(r1, r2 *relation.Relation) (division.Split, error) {
	return division.SmallSplit(r1.Schema(), r2.Schema())
}
