package laws

import (
	"math/rand"
	"testing"

	"divlaws/internal/algebra"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// figure4Relations returns r1, r2', r2” of the paper's Figure 4.
func figure4Relations() (r1, r2a, r2b *relation.Relation) {
	r1 = relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
		{4, 1}, {4, 3},
	})
	r2a = relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	r2b = relation.Ints([]string{"b"}, [][]int64{{3}, {4}})
	return r1, r2a, r2b
}

func TestLaw1Figure4(t *testing.T) {
	// Figure 4: dividing by the union {1,3,4} equals the staged form;
	// the partitions overlap on b = 3.
	r1, r2a, r2b := figure4Relations()
	lhs := &plan.Divide{
		Dividend: scan("r1", r1),
		Divisor:  plan.Union(scan("r2a", r2a), scan("r2b", r2b)),
	}
	rhs := checkEquivalence(t, Law1(), lhs)
	// The paper's Figure 4(g): quotient {2, 3}.
	want := relation.Ints([]string{"a"}, [][]int64{{2}, {3}})
	if got := plan.Eval(rhs); !got.Equal(want) {
		t.Errorf("Figure 4 quotient = %v, want %v", got, want)
	}
	// The rewrite keeps two divides but stages them by partition.
	if plan.CountDivides(rhs) != 2 {
		t.Errorf("expected staged double divide, got:\n%s", plan.Format(rhs))
	}
	// Figure 4(f): the intermediate semi-join result.
	semiJoin := rhs.(*plan.Divide).Dividend
	wantMid := relation.Ints([]string{"a", "b"}, [][]int64{
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
		{4, 1}, {4, 3},
	})
	if got := plan.Eval(semiJoin); !got.Equal(wantMid) {
		t.Errorf("Figure 4(f) intermediate = %v, want %v", got, wantMid)
	}
}

func TestLaw1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(25), 5)
		r2a := randRelation(rng, []string{"b"}, 1+rng.Intn(4), 5)
		r2b := randRelation(rng, []string{"b"}, 1+rng.Intn(4), 5)
		lhs := &plan.Divide{
			Dividend: scan("r1", r1),
			Divisor:  plan.Union(scan("r2a", r2a), scan("r2b", r2b)),
		}
		checkEquivalence(t, Law1(), lhs)
	}
}

// figure5Relations returns the Law 2 counterexample of Figure 5.
func figure5Relations() (r1a, r1b, r2 *relation.Relation) {
	r1a = relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}, {1, 3}})
	r1b = relation.Ints([]string{"a", "b"}, [][]int64{{1, 2}, {1, 4}})
	r2 = relation.Ints([]string{"b"}, [][]int64{{1}, {4}})
	return r1a, r1b, r2
}

func TestLaw2RejectsFigure5(t *testing.T) {
	// Figure 5: value a=1 is dispersed across the partitions; both
	// c2 and c1 must reject, because the naive distribution would
	// lose the quotient coming from the union.
	r1a, r1b, r2 := figure5Relations()
	lhs := &plan.Divide{
		Dividend: plan.Union(scan("r1a", r1a), scan("r1b", r1b)),
		Divisor:  scan("r2", r2),
	}
	mustReject(t, Law2(), lhs)
	mustReject(t, Law2C1(), lhs)
	// And indeed the two sides differ here, so rejecting is the only
	// sound choice: (r1'∪r1'')÷r2 = {1} but the distributed form is ∅.
	union := plan.Eval(lhs)
	distributed := algebra.Union(
		plan.Eval(&plan.Divide{Dividend: scan("x", r1a), Divisor: scan("r2", r2)}),
		plan.Eval(&plan.Divide{Dividend: scan("y", r1b), Divisor: scan("r2", r2)}),
	)
	if union.Equal(distributed) {
		t.Fatal("Figure 5 should be a genuine counterexample")
	}
	if union.Len() != 1 || !union.Contains(relation.Tuple{value.Int(1)}) {
		t.Errorf("(r1' ∪ r1'') ÷ r2 = %v, want {1}", union)
	}
	if !distributed.Empty() {
		t.Errorf("(r1'÷r2) ∪ (r1''÷r2) = %v, want empty", distributed)
	}
}

func TestLaw2FiresOnDisjointPartitions(t *testing.T) {
	r1a := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}})
	r1b := relation.Ints([]string{"a", "b"}, [][]int64{{2, 1}, {2, 2}, {3, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	lhs := &plan.Divide{
		Dividend: plan.Union(scan("r1a", r1a), scan("r1b", r1b)),
		Divisor:  scan("r2", r2),
	}
	rhs := checkEquivalence(t, Law2(), lhs)
	if _, ok := rhs.(*plan.Set); !ok {
		t.Errorf("Law 2 should produce a union of divides:\n%s", plan.Format(rhs))
	}
	checkEquivalence(t, Law2C1(), lhs)
}

func TestLaw2C1FiresWhereC2Rejects(t *testing.T) {
	// Partitions share the group a=1, but that group already
	// contains the whole divisor within the first partition, so c1
	// holds while c2 fails.
	r1a := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}})
	r1b := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {2, 1}, {2, 2}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	lhs := &plan.Divide{
		Dividend: plan.Union(scan("r1a", r1a), scan("r1b", r1b)),
		Divisor:  scan("r2", r2),
	}
	mustReject(t, Law2(), lhs)
	checkEquivalence(t, Law2C1(), lhs)
}

func TestLaw2Property(t *testing.T) {
	// Whenever Law 2 (under c2 or c1) fires on random data the two
	// sides must agree; checkEquivalence enforces that. Count firing
	// rates to make sure the test is not vacuous.
	rng := rand.New(rand.NewSource(42))
	fired := 0
	for trial := 0; trial < 250; trial++ {
		r1a := randRelation(rng, []string{"a", "b"}, rng.Intn(10), 6)
		r1b := randRelation(rng, []string{"a", "b"}, rng.Intn(10), 6)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 6)
		lhs := &plan.Divide{
			Dividend: plan.Union(scan("r1a", r1a), scan("r1b", r1b)),
			Divisor:  scan("r2", r2),
		}
		for _, rule := range []Rule{Law2(), Law2C1()} {
			if _, ok := rule.Apply(lhs); ok {
				checkEquivalence(t, rule, lhs)
				fired++
			}
		}
	}
	if fired == 0 {
		t.Fatal("Law 2 never fired on random data; generator too adversarial")
	}
}

func TestLaw2C1NeverWeakerThanC2(t *testing.T) {
	// c2 implies c1 (paper §5.1.1): wherever Law 2 fires, Law 2 (c1)
	// must fire as well.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		r1a := randRelation(rng, []string{"a", "b"}, rng.Intn(8), 5)
		r1b := randRelation(rng, []string{"a", "b"}, rng.Intn(8), 5)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 5)
		lhs := &plan.Divide{
			Dividend: plan.Union(scan("r1a", r1a), scan("r1b", r1b)),
			Divisor:  scan("r2", r2),
		}
		if _, c2fired := Law2().Apply(lhs); c2fired {
			if _, c1fired := Law2C1().Apply(lhs); !c1fired {
				t.Fatalf("c2 fired but c1 did not:\nr1a:\n%v\nr1b:\n%v\nr2:\n%v", r1a, r1b, r2)
			}
		}
	}
}

func TestLaw3PushAndPull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 5)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 5)
		p := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(int64(rng.Intn(5))))
		lhs := &plan.Select{
			Input: &plan.Divide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)},
			Pred:  p,
		}
		rhs := checkEquivalence(t, Law3(), lhs)
		// The rewrite must push the select below the divide.
		d, ok := rhs.(*plan.Divide)
		if !ok {
			t.Fatalf("Law 3 should produce a Divide root:\n%s", plan.Format(rhs))
		}
		if _, ok := d.Dividend.(*plan.Select); !ok {
			t.Fatalf("Law 3 should select on the dividend:\n%s", plan.Format(rhs))
		}
		// And the reverse direction must restore an equivalent plan.
		back := checkEquivalence(t, Law3Reverse(), d)
		if _, ok := back.(*plan.Select); !ok {
			t.Fatalf("Law 3 (reverse) should produce a Select root:\n%s", plan.Format(back))
		}
	}
}

func TestLaw3ReverseRejectsPredicateOverB(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	overB := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(3))
	lhs := &plan.Divide{
		Dividend: &plan.Select{Input: scan("r1", r1), Pred: overB},
		Divisor:  scan("r2", r2),
	}
	mustReject(t, Law3Reverse(), lhs)
}

func TestLaw4ReplicateSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fired := 0
	for trial := 0; trial < 120; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 5)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(4), 5)
		p := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(int64(1+rng.Intn(5))))
		lhs := &plan.Divide{
			Dividend: scan("r1", r1),
			Divisor:  &plan.Select{Input: scan("r2", r2), Pred: p},
		}
		if _, ok := Law4().Apply(lhs); !ok {
			continue // empty restricted divisor: guard must reject
		}
		fired++
		rhs := checkEquivalence(t, Law4(), lhs)
		d := rhs.(*plan.Divide)
		if _, ok := d.Dividend.(*plan.Select); !ok {
			t.Fatalf("Law 4 should replicate the selection onto the dividend:\n%s", plan.Format(rhs))
		}
		// Reverse: dropping the replicated selection.
		back := checkEquivalence(t, Law4Reverse(), d)
		if plan.CountDivides(back) != 1 {
			t.Fatalf("Law 4 (reverse) malformed:\n%s", plan.Format(back))
		}
	}
	if fired == 0 {
		t.Fatal("Law 4 never fired; generator too adversarial")
	}
}

func TestLaw4RejectsEmptyRestrictedDivisor(t *testing.T) {
	// Boundary condition: with σp(B)(r2) = ∅ the two sides differ
	// (r ÷ ∅ = πA(r)), so the rule must refuse to fire.
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 5}, {2, 7}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{5}})
	p := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(0))
	lhs := &plan.Divide{
		Dividend: scan("r1", r1),
		Divisor:  &plan.Select{Input: scan("r2", r2), Pred: p},
	}
	mustReject(t, Law4(), lhs)
	// And the sides genuinely differ, so rejection is required.
	lhsVal := plan.Eval(lhs)
	rhsVal := plan.Eval(&plan.Divide{
		Dividend: &plan.Select{Input: scan("r1", r1), Pred: p},
		Divisor:  &plan.Select{Input: scan("r2", r2), Pred: p},
	})
	if lhsVal.Equal(rhsVal) {
		t.Fatal("expected a genuine counterexample for the empty restricted divisor")
	}
}

func TestLaw4ReverseRejectsDifferentPredicates(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	p1 := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(3))
	p2 := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(4))
	lhs := &plan.Divide{
		Dividend: &plan.Select{Input: scan("r1", r1), Pred: p1},
		Divisor:  &plan.Select{Input: scan("r2", r2), Pred: p2},
	}
	mustReject(t, Law4Reverse(), lhs)
}

func TestLaw5Intersection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		x := randRelation(rng, []string{"a", "b"}, rng.Intn(20), 4)
		y := randRelation(rng, []string{"a", "b"}, rng.Intn(20), 4)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 4)
		lhs := &plan.Divide{
			Dividend: plan.Intersect(scan("x", x), scan("y", y)),
			Divisor:  scan("r2", r2),
		}
		rhs := checkEquivalence(t, Law5(), lhs)
		// Reverse restores a single divide.
		back := checkEquivalence(t, Law5Reverse(), rhs)
		if plan.CountDivides(back) != 1 {
			t.Fatalf("Law 5 (reverse) should merge the divides:\n%s", plan.Format(back))
		}
	}
}

func TestLaw5ReverseRejectsDifferentDivisors(t *testing.T) {
	x := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	r2other := relation.Ints([]string{"b"}, [][]int64{{2}})
	lhs := plan.Intersect(
		&plan.Divide{Dividend: scan("x", x), Divisor: scan("r2", r2)},
		&plan.Divide{Dividend: scan("x", x), Divisor: scan("r2o", r2other)},
	)
	mustReject(t, Law5Reverse(), lhs)
}

func TestLaw6Difference(t *testing.T) {
	// r1' = σ_{a>0}(r), r1'' = σ_{a>2}(r): nested restrictions.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		base := scan("r", randRelation(rng, []string{"a", "b"}, 2+rng.Intn(25), 6))
		r2 := scan("r2", randRelation(rng, []string{"b"}, 1+rng.Intn(3), 6))
		pWide := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(0))
		pNarrow := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(2))
		lhs := &plan.Divide{
			Dividend: plan.Diff(
				&plan.Select{Input: base, Pred: pWide},
				&plan.Select{Input: base, Pred: pNarrow},
			),
			Divisor: r2,
		}
		checkEquivalence(t, Law6(), lhs)
	}
}

func TestLaw6RejectsNonNestedRestrictions(t *testing.T) {
	// Disjoint ranges do not satisfy r1' ⊇ r1'' unless r1'' is empty;
	// build data where σ_{a<2}(r) has tuples not in σ_{a>2}(r).
	base := scan("r", relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {3, 1}}))
	r2 := scan("r2", relation.Ints([]string{"b"}, [][]int64{{1}}))
	lhs := &plan.Divide{
		Dividend: plan.Diff(
			&plan.Select{Input: base, Pred: pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(2))},
			&plan.Select{Input: base, Pred: pred.Compare(pred.Attr("a"), pred.Lt, pred.ConstInt(2))},
		),
		Divisor: r2,
	}
	mustReject(t, Law6(), lhs)
}

func TestLaw6RejectsPredicatesOverB(t *testing.T) {
	base := scan("r", relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}}))
	r2 := scan("r2", relation.Ints([]string{"b"}, [][]int64{{1}}))
	pB := pred.Compare(pred.Attr("b"), pred.Gt, pred.ConstInt(0))
	lhs := &plan.Divide{
		Dividend: plan.Diff(
			&plan.Select{Input: base, Pred: pB},
			&plan.Select{Input: base, Pred: pB},
		),
		Divisor: r2,
	}
	mustReject(t, Law6(), lhs)
}

func TestLaw7DropsSubtrahend(t *testing.T) {
	// The paper's motivating case: σ_{a≤10} vs σ_{a>10} partitions.
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 2}, {5, 1}, {20, 1}, {20, 2}, {30, 1},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	low := &plan.Select{Input: scan("r1", r1), Pred: pred.Compare(pred.Attr("a"), pred.Le, pred.ConstInt(10))}
	high := &plan.Select{Input: scan("r1", r1), Pred: pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(10))}
	lhs := plan.Diff(
		&plan.Divide{Dividend: low, Divisor: scan("r2", r2)},
		&plan.Divide{Dividend: high, Divisor: scan("r2", r2)},
	)
	rhs := checkEquivalence(t, Law7(), lhs)
	if plan.CountDivides(rhs) != 1 {
		t.Fatalf("Law 7 should eliminate one divide:\n%s", plan.Format(rhs))
	}
}

func TestLaw7RejectsOverlappingCandidates(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	d := &plan.Divide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)}
	lhs := plan.Diff(d, &plan.Divide{Dividend: scan("r1b", r1), Divisor: scan("r2", r2)})
	mustReject(t, Law7(), lhs)
}

func TestLaw8Figure7(t *testing.T) {
	// Figure 7: r1*(a1) × r1**(a2, b) ÷ r2(b).
	r1s := relation.Ints([]string{"a1"}, [][]int64{{1}, {2}})
	r1ss := relation.Ints([]string{"a2", "b"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 2}, {3, 3},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{2}, {3}})
	lhs := &plan.Divide{
		Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
		Divisor:  scan("r2", r2),
	}
	rhs := checkEquivalence(t, Law8(), lhs)
	want := relation.Ints([]string{"a1", "a2"}, [][]int64{{1, 1}, {1, 3}, {2, 1}, {2, 3}})
	if got := plan.Eval(rhs); !got.Equal(want) {
		t.Errorf("Figure 7(f) = %v, want %v", got, want)
	}
	// Figure 7(e): the inner division r1** ÷ r2 = {1, 3}.
	prod := rhs.(*plan.Product)
	wantInner := relation.Ints([]string{"a2"}, [][]int64{{1}, {3}})
	if got := plan.Eval(prod.Right); !got.Equal(wantInner) {
		t.Errorf("Figure 7(e) = %v, want %v", got, wantInner)
	}
	// Reverse direction.
	checkEquivalence(t, Law8Reverse(), rhs)
}

func TestLaw8Property(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		r1s := randRelation(rng, []string{"a1"}, 1+rng.Intn(5), 4)
		r1ss := randRelation(rng, []string{"a2", "b"}, 1+rng.Intn(15), 4)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 4)
		lhs := &plan.Divide{
			Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
			Divisor:  scan("r2", r2),
		}
		checkEquivalence(t, Law8(), lhs)
	}
}

func TestLaw8RejectsWhenDivisorSpansFactors(t *testing.T) {
	// B attributes split across both factors: Law 8 must not fire.
	r1s := relation.Ints([]string{"a1", "b1"}, [][]int64{{1, 1}})
	r1ss := relation.Ints([]string{"a2", "b2"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 1}})
	lhs := &plan.Divide{
		Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
		Divisor:  scan("r2", r2),
	}
	mustReject(t, Law8(), lhs)
}

func TestLaw9Figure8(t *testing.T) {
	// Figure 8: r1*(a, b1), r1**(b2), r2(b1, b2) with πb2(r2) ⊆ r1**.
	r1s := relation.Ints([]string{"a", "b1"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	r1ss := relation.Ints([]string{"b2"}, [][]int64{{1}, {2}})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 2}, {3, 1}, {3, 2}})
	lhs := &plan.Divide{
		Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
		Divisor:  scan("r2", r2),
	}
	rhs := checkEquivalence(t, Law9(), lhs)
	want := relation.Ints([]string{"a"}, [][]int64{{1}, {3}})
	if got := plan.Eval(rhs); !got.Equal(want) {
		t.Errorf("Figure 8(g) = %v, want %v", got, want)
	}
	// The rewrite eliminates the product entirely.
	d := rhs.(*plan.Divide)
	if _, ok := d.Dividend.(*plan.Scan); !ok {
		t.Errorf("Law 9 should divide the left factor directly:\n%s", plan.Format(rhs))
	}
	// Figure 8(e): πb1(r2) = {1, 3}.
	wantDivisor := relation.Ints([]string{"b1"}, [][]int64{{1}, {3}})
	if got := plan.Eval(d.Divisor); !got.Equal(wantDivisor) {
		t.Errorf("Figure 8(e) = %v, want %v", got, wantDivisor)
	}
}

func TestLaw9RejectsWhenCoverageFails(t *testing.T) {
	// πb2(r2) ⊄ r1**: the data premise fails.
	r1s := relation.Ints([]string{"a", "b1"}, [][]int64{{1, 1}})
	r1ss := relation.Ints([]string{"b2"}, [][]int64{{1}})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 1}, {1, 9}})
	lhs := &plan.Divide{
		Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
		Divisor:  scan("r2", r2),
	}
	mustReject(t, Law9(), lhs)
}

func TestLaw9Property(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fired := 0
	for trial := 0; trial < 150; trial++ {
		r1s := randRelation(rng, []string{"a", "b1"}, 1+rng.Intn(12), 4)
		r1ss := randRelation(rng, []string{"b2"}, 1+rng.Intn(4), 4)
		r2 := randRelation(rng, []string{"b1", "b2"}, 1+rng.Intn(5), 4)
		lhs := &plan.Divide{
			Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
			Divisor:  scan("r2", r2),
		}
		if _, ok := Law9().Apply(lhs); ok {
			checkEquivalence(t, Law9(), lhs)
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("Law 9 never fired; generator too adversarial")
	}
}

func TestLaw10SemiJoinCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 5)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 5)
		r3 := randRelation(rng, []string{"a"}, rng.Intn(4), 5)
		lhs := &plan.SemiJoin{
			Left:  &plan.Divide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)},
			Right: scan("r3", r3),
		}
		rhs := checkEquivalence(t, Law10(), lhs)
		d, ok := rhs.(*plan.Divide)
		if !ok {
			t.Fatalf("Law 10 should produce a Divide root:\n%s", plan.Format(rhs))
		}
		back := checkEquivalence(t, Law10Reverse(), d)
		if _, ok := back.(*plan.SemiJoin); !ok {
			t.Fatalf("Law 10 (reverse) should produce a SemiJoin root:\n%s", plan.Format(back))
		}
	}
}

func TestLaw10RejectsWrongSemiJoinSchema(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	r3 := relation.Ints([]string{"a", "z"}, [][]int64{{1, 1}})
	lhs := &plan.SemiJoin{
		Left:  &plan.Divide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)},
		Right: scan("r3", r3),
	}
	mustReject(t, Law10(), lhs)
}

func TestLaw11Figure10(t *testing.T) {
	// Figure 10: r1 = aγsum(x)→b(r0); r2 = {4}; quotient {2}.
	r0 := relation.Ints([]string{"a", "x"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	group := &plan.Group{
		Input: scan("r0", r0),
		By:    []string{"a"},
		Aggs:  []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "b"}},
	}
	r2 := relation.Ints([]string{"b"}, [][]int64{{4}})
	lhs := &plan.Divide{Dividend: group, Divisor: scan("r2", r2)}
	rhs := checkEquivalence(t, Law11(), lhs)
	want := relation.Ints([]string{"a"}, [][]int64{{2}})
	if got := plan.Eval(rhs); !got.Equal(want) {
		t.Errorf("Figure 10(e) = %v, want %v", got, want)
	}
	if plan.CountDivides(rhs) != 0 {
		t.Errorf("Law 11 should eliminate the division:\n%s", plan.Format(rhs))
	}
}

func TestLaw11Cases(t *testing.T) {
	r0 := relation.Ints([]string{"a", "x"}, [][]int64{{1, 1}, {2, 3}})
	group := &plan.Group{
		Input: scan("r0", r0),
		By:    []string{"a"},
		Aggs:  []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "b"}},
	}
	// Case 1: empty divisor → quotient is r1 itself.
	empty := relation.New(schema.New("b"))
	lhs := &plan.Divide{Dividend: group, Divisor: scan("r2", empty)}
	rhs := checkEquivalence(t, Law11(), lhs)
	if _, ok := rhs.(*plan.Project); !ok {
		t.Errorf("case |r2|=0 should return πA(dividend):\n%s", plan.Format(rhs))
	}
	// Case 3: |r2| > 1 → empty quotient.
	big := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	lhs = &plan.Divide{Dividend: group, Divisor: scan("r2", big)}
	rhs = checkEquivalence(t, Law11(), lhs)
	if got := plan.Eval(rhs); !got.Empty() {
		t.Errorf("case |r2|>1 should be empty, got %v", got)
	}
}

func TestLaw11RejectsWrongGroupShape(t *testing.T) {
	// Grouping keyed by B, not A: Law 11 must not fire (Law 12's
	// shape instead).
	r0 := relation.Ints([]string{"x", "b"}, [][]int64{{1, 1}}) // bγsum(x)→a
	group := &plan.Group{
		Input: scan("r0", r0),
		By:    []string{"b"},
		Aggs:  []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "a"}},
	}
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	mustReject(t, Law11(), &plan.Divide{Dividend: group, Divisor: scan("r2", r2)})
}

func TestLaw12Figure11(t *testing.T) {
	// Figure 11: r1 = bγsum(x)→a(r0); r2 = {1, 3}; quotient {6}.
	r0 := relation.Ints([]string{"x", "b"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	group := &plan.Group{
		Input: scan("r0", r0),
		By:    []string{"b"},
		Aggs:  []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "a"}},
	}
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	lhs := &plan.Divide{Dividend: group, Divisor: scan("r2", r2)}
	rhs := checkEquivalence(t, Law12(), lhs)
	want := relation.Ints([]string{"a"}, [][]int64{{6}})
	if got := plan.Eval(rhs); !got.Equal(want) {
		t.Errorf("Figure 11(e) = %v, want %v", got, want)
	}
	if plan.CountDivides(rhs) != 0 {
		t.Errorf("Law 12 should eliminate the division:\n%s", plan.Format(rhs))
	}
}

func TestLaw12EmptyWhenGroupsDiffer(t *testing.T) {
	// Two divisor values mapping to different aggregates: πA of the
	// semi-join has two tuples, so the guarded rewrite must be empty.
	r0 := relation.Ints([]string{"x", "b"}, [][]int64{{1, 1}, {5, 3}})
	group := &plan.Group{
		Input: scan("r0", r0),
		By:    []string{"b"},
		Aggs:  []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "a"}},
	}
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	lhs := &plan.Divide{Dividend: group, Divisor: scan("r2", r2)}
	rhs := checkEquivalence(t, Law12(), lhs)
	if got := plan.Eval(rhs); !got.Empty() {
		t.Errorf("guarded rewrite should be empty, got %v", got)
	}
}

func TestLaw12RejectsWithoutForeignKey(t *testing.T) {
	r0 := relation.Ints([]string{"x", "b"}, [][]int64{{1, 1}})
	group := &plan.Group{
		Input: scan("r0", r0),
		By:    []string{"b"},
		Aggs:  []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "a"}},
	}
	// r2 has value 9 not present in r1.b: FK premise fails.
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {9}})
	mustReject(t, Law12(), &plan.Divide{Dividend: group, Divisor: scan("r2", r2)})
}

func TestLaw12Property(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	fired := 0
	for trial := 0; trial < 150; trial++ {
		r0 := randRelation(rng, []string{"x", "b"}, 1+rng.Intn(12), 5)
		group := &plan.Group{
			Input: scan("r0", r0),
			By:    []string{"b"},
			Aggs:  []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "a"}},
		}
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 5)
		lhs := &plan.Divide{Dividend: group, Divisor: scan("r2", r2)}
		if _, ok := Law12().Apply(lhs); ok {
			checkEquivalence(t, Law12(), lhs)
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("Law 12 never fired; generator too adversarial")
	}
}
