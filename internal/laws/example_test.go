package laws_test

import (
	"fmt"

	"divlaws/internal/laws"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
)

// ExampleLaw3 pushes a quotient-attribute selection through a
// division, the paper's §5.1.2 push-down.
func ExampleLaw3() {
	r1 := plan.NewScan("r1", relation.Ints([]string{"a", "b"},
		[][]int64{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}}))
	r2 := plan.NewScan("r2", relation.Ints([]string{"b"}, [][]int64{{1}, {2}}))

	lhs := &plan.Select{
		Input: &plan.Divide{Dividend: r1, Divisor: r2},
		Pred:  pred.Compare(pred.Attr("a"), pred.Lt, pred.ConstInt(2)),
	}
	rhs, _ := laws.Law3().Apply(lhs)
	fmt.Println(plan.Format(rhs))
	fmt.Println(plan.Eval(rhs))
	// Output:
	// Divide
	//   Select[a < 2]
	//     Scan(r1)
	//   Scan(r2)
	// a
	// 1
}

// ExampleLaw9 eliminates a Cartesian product whose factor is covered
// by the divisor (§5.1.5, Figure 8).
func ExampleLaw9() {
	r1s := plan.NewScan("r1s", relation.Ints([]string{"a", "b1"},
		[][]int64{{1, 1}, {1, 3}, {2, 3}}))
	r1ss := plan.NewScan("r1ss", relation.Ints([]string{"b2"}, [][]int64{{1}, {2}}))
	r2 := plan.NewScan("r2", relation.Ints([]string{"b1", "b2"},
		[][]int64{{1, 2}, {3, 1}, {3, 2}}))

	lhs := &plan.Divide{
		Dividend: &plan.Product{Left: r1s, Right: r1ss},
		Divisor:  r2,
	}
	rhs, ok := laws.Law9().Apply(lhs)
	fmt.Println("rewritten:", ok)
	fmt.Println(plan.Format(rhs))
	// Output:
	// rewritten: true
	// Divide
	//   Scan(r1s)
	//   Project[b1]
	//     Scan(r2)
}

// ExampleC2 checks the cheap partition-disjointness precondition of
// Law 2.
func ExampleC2() {
	lo := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	hi := relation.Ints([]string{"a", "b"}, [][]int64{{2, 1}})
	shared := relation.Ints([]string{"a", "b"}, [][]int64{{1, 2}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	fmt.Println(laws.C2(lo, hi, r2))
	fmt.Println(laws.C2(lo, shared, r2))
	// Output:
	// true
	// false
}
