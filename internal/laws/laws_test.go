package laws

import (
	"math/rand"
	"testing"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// checkEquivalence applies the rule to lhs and verifies that both
// plans evaluate to the same relation. It returns the rewritten plan
// for further structural assertions.
func checkEquivalence(t *testing.T, r Rule, lhs plan.Node) plan.Node {
	t.Helper()
	rhs, ok := r.Apply(lhs)
	if !ok {
		t.Fatalf("%s did not match plan:\n%s", r.Name, plan.Format(lhs))
	}
	want := plan.Eval(lhs)
	got := plan.Eval(rhs)
	if !got.EquivalentTo(want) {
		t.Fatalf("%s broke equivalence:\nlhs plan:\n%s\nrhs plan:\n%s\nlhs result:\n%v\nrhs result:\n%v",
			r.Name, plan.Format(lhs), plan.Format(rhs), want, got)
	}
	return rhs
}

// mustReject asserts the rule does not fire on the plan.
func mustReject(t *testing.T, r Rule, lhs plan.Node) {
	t.Helper()
	if rhs, ok := r.Apply(lhs); ok {
		t.Fatalf("%s should not have matched plan:\n%s\nrewrote to:\n%s",
			r.Name, plan.Format(lhs), plan.Format(rhs))
	}
}

// randRelation builds a relation over the given attributes with
// values drawn from a small domain.
func randRelation(rng *rand.Rand, attrs []string, n, dom int) *relation.Relation {
	r := relation.New(schema.New(attrs...))
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, len(attrs))
		for j := range attrs {
			t[j] = value.Int(int64(rng.Intn(dom)))
		}
		r.Insert(t)
	}
	return r
}

func scan(name string, r *relation.Relation) *plan.Scan { return plan.NewScan(name, r) }

func TestAllRegistersEveryLaw(t *testing.T) {
	rules := All()
	names := make(map[string]bool, len(rules))
	for _, r := range rules {
		if names[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		names[r.Name] = true
		if r.Description == "" {
			t.Errorf("rule %q lacks a description", r.Name)
		}
		if r.Apply == nil {
			t.Errorf("rule %q lacks an Apply", r.Name)
		}
	}
	for _, want := range []string{
		"Law 1", "Law 2", "Law 2 (c1)", "Law 3", "Law 4", "Law 5", "Law 6",
		"Law 7", "Law 8", "Law 9", "Law 10", "Law 11", "Law 12",
		"Law 13", "Law 14", "Law 15", "Law 16", "Law 17",
		"Example 1", "Example 2",
	} {
		if !names[want] {
			t.Errorf("rule %q not registered", want)
		}
	}
}

func TestByName(t *testing.T) {
	if r, ok := ByName("Law 9"); !ok || r.Name != "Law 9" {
		t.Error("ByName(Law 9) failed")
	}
	if _, ok := ByName("Law 99"); ok {
		t.Error("ByName should miss unknown rules")
	}
}

func TestRulesRejectUnrelatedPlans(t *testing.T) {
	// No rule may fire on a bare scan or a simple projection.
	rng := rand.New(rand.NewSource(1))
	base := scan("r", randRelation(rng, []string{"a", "b"}, 10, 4))
	pi := &plan.Project{Input: base, Attrs: []string{"a"}}
	for _, r := range All() {
		if _, ok := r.Apply(base); ok {
			t.Errorf("%s fired on a bare Scan", r.Name)
		}
		if _, ok := r.Apply(pi); ok {
			t.Errorf("%s fired on a bare Project", r.Name)
		}
	}
}

func TestDataDependentFlags(t *testing.T) {
	wantData := map[string]bool{
		"Law 2": true, "Law 2 (c1)": true, "Law 4": true, "Law 4 (reverse)": true,
		"Law 6": true, "Law 7": true,
		"Law 9": true, "Law 11": true, "Law 12": true, "Law 13": true,
		"Example 2": true,
	}
	for _, r := range All() {
		if want := wantData[r.Name]; r.DataDependent != want {
			t.Errorf("%s DataDependent = %t, want %t", r.Name, r.DataDependent, want)
		}
	}
}
