// Package laws implements the paper's seventeen algebraic laws for
// small and great divide as rewrite rules over logical plans, plus
// the preconditions c1 and c2 of Law 2 and the worked Examples 1-4.
//
// Each Rule recognizes the left-hand side of one law and produces
// the right-hand side (or vice versa for the *Reverse rules, since
// an algebraic law is a bidirectional logical equivalence; we
// register the directions that are useful as optimizer transforms).
//
// Preconditions come in two flavours, mirroring §5.1.1:
//
//   - schema-only checks (attribute disjointness, predicate scope),
//     which are free, and
//   - data-dependent checks such as c1, πA-disjointness (Law 7) or
//     the foreign-key premise of Law 12, which require inspecting
//     relation contents. The rules evaluate the relevant subplans to
//     decide; the paper notes exactly this trade-off ("testing
//     condition c1 can be expensive, an RDBMS may use the stricter
//     condition c2").
package laws

import (
	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// Rule is one rewrite rule derived from a law.
type Rule struct {
	// Name is the paper's identifier, e.g. "Law 3" or
	// "Law 3 (reverse)".
	Name string
	// Description summarizes the transformation.
	Description string
	// DataDependent reports whether the precondition inspects
	// relation contents (c1-style) rather than only schemas
	// (c2-style).
	DataDependent bool
	// Apply attempts the rewrite on the root of n. It returns the
	// rewritten plan and true, or nil and false when the pattern or
	// precondition does not match.
	Apply func(n plan.Node) (plan.Node, bool)
}

// All returns every registered rule in a stable order.
func All() []Rule {
	return []Rule{
		Law1(), Law2(), Law2C1(), Law3(), Law3Reverse(), Law4(), Law4Reverse(),
		Law5(), Law5Reverse(), Law6(), Law7(), Law8(), Law8Reverse(), Law9(),
		Law10(), Law10Reverse(), Law11(), Law12(),
		Law13(), Law14(), Law14Reverse(), Law15(), Law15Reverse(),
		Law16(), Law16Reverse(), Law17(), Law17Reverse(),
		Example1Rule(), Example2Rule(),
	}
}

// ByName returns the rule with the given name, or false.
func ByName(name string) (Rule, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// smallSplit computes the A/B split of a small divide node from its
// children's schemas, returning false on schema violations.
func smallSplit(d *plan.Divide) (division.Split, bool) {
	s, err := division.SmallSplit(d.Dividend.Schema(), d.Divisor.Schema())
	return s, err == nil
}

// greatSplit computes the A/B/C split of a great divide node.
func greatSplit(d *plan.GreatDivide) (division.Split, bool) {
	s, err := division.GreatSplit(d.Dividend.Schema(), d.Divisor.Schema())
	return s, err == nil
}

// projectionsDisjoint evaluates πX(a) ∩ πX(b) = ∅, the data-
// dependent disjointness premise shared by Laws 7 and 13 and by
// condition c2.
func projectionsDisjoint(a, b plan.Node, attrs []string) bool {
	ra := plan.Eval(&plan.Project{Input: a, Attrs: attrs})
	rb := plan.Eval(&plan.Project{Input: b, Attrs: attrs})
	small, big := ra, rb
	if big.Len() < small.Len() {
		small, big = big, small
	}
	for _, t := range small.Tuples() {
		if big.Contains(t) {
			return false
		}
	}
	return true
}

// subsetOf evaluates whether every tuple of a is in b, aligning
// column order.
func subsetOf(a, b *relation.Relation) bool {
	if !a.Schema().EqualSet(b.Schema()) {
		return false
	}
	if !a.Schema().Equal(b.Schema()) {
		a = a.Reorder(b.Schema().Attrs())
	}
	for _, t := range a.Tuples() {
		if !b.Contains(t) {
			return false
		}
	}
	return true
}

// sameSet reports whether two attribute lists denote the same set.
func sameSet(xs []string, s schema.Schema) bool {
	return schema.New(xs...).EqualSet(s)
}
