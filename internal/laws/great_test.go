package laws

import (
	"math/rand"
	"testing"

	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
)

// greatFixture returns the Figure 2 dividend/divisor pair.
func greatFixture() (r1, r2 *relation.Relation) {
	r1 = relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 1}, {3, 3}, {3, 4},
	})
	r2 = relation.Ints([]string{"b", "c"}, [][]int64{
		{1, 1}, {2, 1}, {4, 1}, {1, 2}, {3, 2},
	})
	return r1, r2
}

func TestLaw13PartitionedDivisor(t *testing.T) {
	r1, r2 := greatFixture()
	// Partition the Figure 2 divisor by group: c=1 vs c=2 — the
	// hash-partitioning on C the paper describes for parallelism.
	r2a := relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}, {2, 1}, {4, 1}})
	r2b := relation.Ints([]string{"b", "c"}, [][]int64{{1, 2}, {3, 2}})
	lhs := &plan.GreatDivide{
		Dividend: scan("r1", r1),
		Divisor:  plan.Union(scan("r2a", r2a), scan("r2b", r2b)),
	}
	rhs := checkEquivalence(t, Law13(), lhs)
	if u, ok := rhs.(*plan.Set); !ok || u.Op != plan.UnionOp {
		t.Fatalf("Law 13 should produce a union of great divides:\n%s", plan.Format(rhs))
	}
	// The result must still be Figure 2(c).
	want := relation.Ints([]string{"a", "c"}, [][]int64{{2, 1}, {2, 2}, {3, 2}})
	if got := plan.Eval(rhs); !got.EquivalentTo(want) {
		t.Errorf("partitioned great divide = %v, want %v", got, want)
	}
	_ = r2
}

func TestLaw13RejectsOverlappingGroups(t *testing.T) {
	r1, _ := greatFixture()
	// Both partitions contain tuples of group c=1; dividing
	// separately would lose elements of the group, so the rule must
	// reject.
	r2a := relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}, {2, 1}})
	r2b := relation.Ints([]string{"b", "c"}, [][]int64{{4, 1}})
	lhs := &plan.GreatDivide{
		Dividend: scan("r1", r1),
		Divisor:  plan.Union(scan("r2a", r2a), scan("r2b", r2b)),
	}
	mustReject(t, Law13(), lhs)
}

func TestLaw13Property(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	fired := 0
	for trial := 0; trial < 150; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 5)
		r2a := randRelation(rng, []string{"b", "c"}, rng.Intn(6), 5)
		r2b := randRelation(rng, []string{"b", "c"}, rng.Intn(6), 5)
		lhs := &plan.GreatDivide{
			Dividend: scan("r1", r1),
			Divisor:  plan.Union(scan("r2a", r2a), scan("r2b", r2b)),
		}
		if _, ok := Law13().Apply(lhs); ok {
			checkEquivalence(t, Law13(), lhs)
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("Law 13 never fired; generator too adversarial")
	}
}

func TestLaw14PushesQuotientSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 5)
		r2 := randRelation(rng, []string{"b", "c"}, 1+rng.Intn(8), 5)
		p := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(int64(rng.Intn(4))))
		lhs := &plan.Select{
			Input: &plan.GreatDivide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)},
			Pred:  p,
		}
		rhs := checkEquivalence(t, Law14(), lhs)
		gd, ok := rhs.(*plan.GreatDivide)
		if !ok {
			t.Fatalf("Law 14 should produce a GreatDivide root:\n%s", plan.Format(rhs))
		}
		back := checkEquivalence(t, Law14Reverse(), gd)
		if _, ok := back.(*plan.Select); !ok {
			t.Fatalf("Law 14 (reverse) should produce a Select root:\n%s", plan.Format(back))
		}
	}
}

func TestLaw14RejectsSelectionOverC(t *testing.T) {
	r1, r2 := greatFixture()
	overC := pred.Compare(pred.Attr("c"), pred.Eq, pred.ConstInt(1))
	lhs := &plan.Select{
		Input: &plan.GreatDivide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)},
		Pred:  overC,
	}
	mustReject(t, Law14(), lhs)
}

func TestLaw15PushesGroupSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 100; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 5)
		r2 := randRelation(rng, []string{"b", "c"}, 1+rng.Intn(8), 5)
		p := pred.Compare(pred.Attr("c"), pred.Le, pred.ConstInt(int64(rng.Intn(4))))
		lhs := &plan.Select{
			Input: &plan.GreatDivide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)},
			Pred:  p,
		}
		rhs := checkEquivalence(t, Law15(), lhs)
		gd, ok := rhs.(*plan.GreatDivide)
		if !ok {
			t.Fatalf("Law 15 should produce a GreatDivide root:\n%s", plan.Format(rhs))
		}
		if _, ok := gd.Divisor.(*plan.Select); !ok {
			t.Fatalf("Law 15 should select on the divisor:\n%s", plan.Format(rhs))
		}
		back := checkEquivalence(t, Law15Reverse(), gd)
		if _, ok := back.(*plan.Select); !ok {
			t.Fatalf("Law 15 (reverse) should produce a Select root:\n%s", plan.Format(back))
		}
	}
}

func TestLaw15RejectsSelectionOverA(t *testing.T) {
	r1, r2 := greatFixture()
	overA := pred.Compare(pred.Attr("a"), pred.Eq, pred.ConstInt(2))
	lhs := &plan.Select{
		Input: &plan.GreatDivide{Dividend: scan("r1", r1), Divisor: scan("r2", r2)},
		Pred:  overA,
	}
	mustReject(t, Law15(), lhs)
}

func TestLaw16ReplicatesElementSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 100; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 5)
		r2 := randRelation(rng, []string{"b", "c"}, 1+rng.Intn(8), 5)
		p := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(int64(1+rng.Intn(5))))
		lhs := &plan.GreatDivide{
			Dividend: scan("r1", r1),
			Divisor:  &plan.Select{Input: scan("r2", r2), Pred: p},
		}
		rhs := checkEquivalence(t, Law16(), lhs)
		gd := rhs.(*plan.GreatDivide)
		if _, ok := gd.Dividend.(*plan.Select); !ok {
			t.Fatalf("Law 16 should replicate the selection onto the dividend:\n%s", plan.Format(rhs))
		}
		back := checkEquivalence(t, Law16Reverse(), gd)
		if plan.CountDivides(back) != 1 {
			t.Fatalf("Law 16 (reverse) malformed:\n%s", plan.Format(back))
		}
	}
}

func TestLaw16EmptyRestrictedDivisorStillSound(t *testing.T) {
	// Unlike Law 4, the great divide union over zero divisor groups
	// is empty on both sides, so Law 16 needs no nonemptiness guard.
	r1, r2 := greatFixture()
	never := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(-1))
	lhs := &plan.GreatDivide{
		Dividend: scan("r1", r1),
		Divisor:  &plan.Select{Input: scan("r2", r2), Pred: never},
	}
	rhs := checkEquivalence(t, Law16(), lhs)
	if got := plan.Eval(rhs); !got.Empty() {
		t.Errorf("expected empty result, got %v", got)
	}
}

func TestLaw17ProductFactorsOut(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		r1s := randRelation(rng, []string{"a1"}, 1+rng.Intn(4), 4)
		r1ss := randRelation(rng, []string{"a2", "b"}, 1+rng.Intn(15), 4)
		r2 := randRelation(rng, []string{"b", "c"}, 1+rng.Intn(6), 4)
		lhs := &plan.GreatDivide{
			Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
			Divisor:  scan("r2", r2),
		}
		rhs := checkEquivalence(t, Law17(), lhs)
		prod, ok := rhs.(*plan.Product)
		if !ok {
			t.Fatalf("Law 17 should produce a Product root:\n%s", plan.Format(rhs))
		}
		back := checkEquivalence(t, Law17Reverse(), prod)
		if _, ok := back.(*plan.GreatDivide); !ok {
			t.Fatalf("Law 17 (reverse) should produce a GreatDivide root:\n%s", plan.Format(back))
		}
	}
}

func TestLaw17RejectsWhenLeftTouchesDivisor(t *testing.T) {
	r1s := relation.Ints([]string{"b"}, [][]int64{{1}})
	r1ss := relation.Ints([]string{"a2", "x"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}})
	lhs := &plan.GreatDivide{
		Dividend: &plan.Product{Left: scan("r1s", r1s), Right: scan("r1ss", r1ss)},
		Divisor:  scan("r2", r2),
	}
	mustReject(t, Law17(), lhs)
}
