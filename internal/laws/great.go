package laws

import (
	"divlaws/internal/plan"
	"divlaws/internal/pred"
)

// Law13 distributes a great divide over a divisor union whose group
// attributes are disjoint:
// r1 ÷* (r2' ∪ r2”) = (r1 ÷* r2') ∪ (r1 ÷* r2”) when
// πC(r2') ∩ πC(r2”) = ∅ (§5.2.1). This is the paper's handle for
// partitioned-parallel great division.
func Law13() Rule {
	return Rule{
		Name:          "Law 13",
		Description:   "r1 ÷* (r2' ∪ r2'') = (r1 ÷* r2') ∪ (r1 ÷* r2'') when πC disjoint",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			u, ok := d.Divisor.(*plan.Set)
			if !ok || u.Op != plan.UnionOp {
				return nil, false
			}
			s, ok := greatSplit(d)
			if !ok {
				return nil, false
			}
			if !projectionsDisjoint(u.Left, u.Right, s.C.Attrs()) {
				return nil, false
			}
			return plan.Union(
				&plan.GreatDivide{Dividend: d.Dividend, Divisor: u.Left, Algo: d.Algo},
				&plan.GreatDivide{Dividend: d.Dividend, Divisor: u.Right, Algo: d.Algo},
			), true
		},
	}
}

// Law14 pushes a selection over quotient attributes A into the
// dividend: σp(A)(r1 ÷* r2) = σp(A)(r1) ÷* r2 (§5.2.2).
func Law14() Rule {
	return Rule{
		Name:        "Law 14",
		Description: "σp(A)(r1 ÷* r2) = σp(A)(r1) ÷* r2",
		Apply: func(n plan.Node) (plan.Node, bool) {
			sel, ok := n.(*plan.Select)
			if !ok {
				return nil, false
			}
			d, ok := sel.Input.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			s, ok := greatSplit(d)
			if !ok || !pred.OnlyOver(sel.Pred, s.A) {
				return nil, false
			}
			return &plan.GreatDivide{
				Dividend: &plan.Select{Input: d.Dividend, Pred: sel.Pred},
				Divisor:  d.Divisor,
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law14Reverse pulls a dividend selection over A above the great
// divide.
func Law14Reverse() Rule {
	return Rule{
		Name:        "Law 14 (reverse)",
		Description: "σp(A)(r1) ÷* r2 = σp(A)(r1 ÷* r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			sel, ok := d.Dividend.(*plan.Select)
			if !ok {
				return nil, false
			}
			s, ok := greatSplit(d)
			if !ok || !pred.OnlyOver(sel.Pred, s.A) {
				return nil, false
			}
			return &plan.Select{
				Input: &plan.GreatDivide{Dividend: sel.Input, Divisor: d.Divisor, Algo: d.Algo},
				Pred:  sel.Pred,
			}, true
		},
	}
}

// Law15 pushes a selection over divisor group attributes C into the
// divisor: σp(C)(r1 ÷* r2) = r1 ÷* σp(C)(r2) (§5.2.2).
func Law15() Rule {
	return Rule{
		Name:        "Law 15",
		Description: "σp(C)(r1 ÷* r2) = r1 ÷* σp(C)(r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			sel, ok := n.(*plan.Select)
			if !ok {
				return nil, false
			}
			d, ok := sel.Input.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			s, ok := greatSplit(d)
			if !ok || !pred.OnlyOver(sel.Pred, s.C) {
				return nil, false
			}
			return &plan.GreatDivide{
				Dividend: d.Dividend,
				Divisor:  &plan.Select{Input: d.Divisor, Pred: sel.Pred},
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law15Reverse pulls a divisor selection over C above the great
// divide.
func Law15Reverse() Rule {
	return Rule{
		Name:        "Law 15 (reverse)",
		Description: "r1 ÷* σp(C)(r2) = σp(C)(r1 ÷* r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			sel, ok := d.Divisor.(*plan.Select)
			if !ok {
				return nil, false
			}
			s, ok := greatSplit(d)
			if !ok || !pred.OnlyOver(sel.Pred, s.C) {
				return nil, false
			}
			return &plan.Select{
				Input: &plan.GreatDivide{Dividend: d.Dividend, Divisor: sel.Input, Algo: d.Algo},
				Pred:  sel.Pred,
			}, true
		},
	}
}

// Law16 replicates a divisor selection over the element attributes B
// onto the dividend:
// r1 ÷* σp(B)(r2) = σp(B)(r1) ÷* σp(B)(r2) (§5.2.2).
func Law16() Rule {
	return Rule{
		Name:        "Law 16",
		Description: "r1 ÷* σp(B)(r2) = σp(B)(r1) ÷* σp(B)(r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			sel, ok := d.Divisor.(*plan.Select)
			if !ok {
				return nil, false
			}
			s, ok := greatSplit(d)
			if !ok || !pred.OnlyOver(sel.Pred, s.B) {
				return nil, false
			}
			return &plan.GreatDivide{
				Dividend: &plan.Select{Input: d.Dividend, Pred: sel.Pred},
				Divisor:  d.Divisor,
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law16Reverse drops a dividend selection that replicates the
// divisor's B-restriction.
func Law16Reverse() Rule {
	return Rule{
		Name:        "Law 16 (reverse)",
		Description: "σp(B)(r1) ÷* σp(B)(r2) = r1 ÷* σp(B)(r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			ds, ok := d.Dividend.(*plan.Select)
			if !ok {
				return nil, false
			}
			vs, ok := d.Divisor.(*plan.Select)
			if !ok || ds.Pred.String() != vs.Pred.String() {
				return nil, false
			}
			s, ok := greatSplit(d)
			if !ok || !pred.OnlyOver(ds.Pred, s.B) {
				return nil, false
			}
			return &plan.GreatDivide{Dividend: ds.Input, Divisor: d.Divisor, Algo: d.Algo}, true
		},
	}
}

// Law17 narrows a great divide of a Cartesian product to the factor
// carrying the element attributes:
// (r1* × r1**) ÷* r2 = r1* × (r1** ÷* r2) (§5.2.3).
func Law17() Rule {
	return Rule{
		Name:        "Law 17",
		Description: "(r1* × r1**) ÷* r2 = r1* × (r1** ÷* r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			prod, ok := d.Dividend.(*plan.Product)
			if !ok {
				return nil, false
			}
			divisor := d.Divisor.Schema()
			left, right := prod.Left.Schema(), prod.Right.Schema()
			b := right.Intersect(divisor)
			// The left factor must carry only quotient attributes and
			// the right factor must still host a valid great divide.
			if !left.DisjointFrom(divisor) || b.Len() == 0 || right.Minus(b).Len() == 0 {
				return nil, false
			}
			return &plan.Product{
				Left:  prod.Left,
				Right: &plan.GreatDivide{Dividend: prod.Right, Divisor: d.Divisor, Algo: d.Algo},
			}, true
		},
	}
}

// Law17Reverse folds a product with a great divide back into a
// great divide of a product, the direction Example 4 uses to merge
// an equi-join into the dividend.
func Law17Reverse() Rule {
	return Rule{
		Name:        "Law 17 (reverse)",
		Description: "r1* × (r1** ÷* r2) = (r1* × r1**) ÷* r2",
		Apply: func(n plan.Node) (plan.Node, bool) {
			prod, ok := n.(*plan.Product)
			if !ok {
				return nil, false
			}
			d, ok := prod.Right.(*plan.GreatDivide)
			if !ok {
				return nil, false
			}
			if !prod.Left.Schema().DisjointFrom(d.Dividend.Schema()) ||
				!prod.Left.Schema().DisjointFrom(d.Divisor.Schema()) {
				return nil, false
			}
			return &plan.GreatDivide{
				Dividend: &plan.Product{Left: prod.Left, Right: d.Dividend},
				Divisor:  d.Divisor,
				Algo:     d.Algo,
			}, true
		},
	}
}
