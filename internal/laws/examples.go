package laws

import (
	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
)

// Example1Rule implements the paper's Example 1: a dividend-only
// restriction on element attributes B,
//
//	σp(B)(r1) ÷ r2 = (σp(B)(r1) ÷ σp(B)(r2)) −
//	                 πA(πA(r1) × σ¬p(B)(r2))
//
// The subtrahend "switches the quotient off" whenever the divisor
// has any tuple violating p, because such a tuple can never be
// matched by the restricted dividend.
func Example1Rule() Rule {
	return Rule{
		Name:        "Example 1",
		Description: "σp(B)(r1) ÷ r2 = (σp(B)(r1) ÷ σp(B)(r2)) − πA(πA(r1) × σ¬p(B)(r2))",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			sel, ok := d.Dividend.(*plan.Select)
			if !ok {
				return nil, false
			}
			s, ok := smallSplit(d)
			if !ok || !pred.OnlyOver(sel.Pred, s.B) {
				return nil, false
			}
			a := s.A.Attrs()
			positive := &plan.Divide{
				Dividend: d.Dividend,
				Divisor:  &plan.Select{Input: d.Divisor, Pred: sel.Pred},
				Algo:     d.Algo,
			}
			kill := &plan.Project{
				Input: &plan.Product{
					Left:  &plan.Project{Input: sel.Input, Attrs: a},
					Right: &plan.Select{Input: d.Divisor, Pred: pred.Negate(sel.Pred)},
				},
				Attrs: a,
			}
			return plan.Diff(positive, kill), true
		},
	}
}

// Example2Rule implements the paper's Example 2, a consequence of
// Law 9: dividing out a common factor,
//
//	(r1 × s) ÷ (r2 × s) = r1 ÷ r2
//
// valid when s is nonempty (an empty common factor empties the
// dividend while r1 ÷ r2 need not be empty).
func Example2Rule() Rule {
	return Rule{
		Name:          "Example 2",
		Description:   "(r1 × s) ÷ (r2 × s) = r1 ÷ r2 for nonempty s",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			dp, ok := d.Dividend.(*plan.Product)
			if !ok {
				return nil, false
			}
			vp, ok := d.Divisor.(*plan.Product)
			if !ok || !plan.Equal(dp.Right, vp.Right) {
				return nil, false
			}
			// Residual division r1 ÷ r2 must be well-formed: r2's
			// schema strictly inside r1's.
			if _, err := division.SmallSplit(dp.Left.Schema(), vp.Left.Schema()); err != nil {
				return nil, false
			}
			if plan.Eval(dp.Right).Empty() {
				return nil, false
			}
			return &plan.Divide{Dividend: dp.Left, Divisor: vp.Left, Algo: d.Algo}, true
		},
	}
}

// Example3 builds the paper's Example 3 as a pair of equivalent
// plans over the given scans:
//
//	lhs = (r1* ⋈_{b1<b2} r1**) ÷ r2
//	rhs = (r1* ÷ πb1(σ_{b1<b2}(r2))) − πa(πa(r1*) × σ_{b1≥b2}(r2))
//
// where r1*(a, b1), r1**(b2), r2(b1, b2) and r2.b2 is a foreign key
// into r1**. The rhs avoids the theta-join entirely.
func Example3(r1s, r1ss, r2 plan.Node) (lhs, rhs plan.Node) {
	lt := pred.Compare(pred.Attr("b1"), pred.Lt, pred.Attr("b2"))
	ge := pred.Compare(pred.Attr("b1"), pred.Ge, pred.Attr("b2"))
	lhs = &plan.Divide{
		Dividend: &plan.ThetaJoin{Left: r1s, Right: r1ss, Pred: lt},
		Divisor:  r2,
	}
	rhs = plan.Diff(
		&plan.Divide{
			Dividend: r1s,
			Divisor:  &plan.Project{Input: &plan.Select{Input: r2, Pred: lt}, Attrs: []string{"b1"}},
		},
		&plan.Project{
			Input: &plan.Product{
				Left:  &plan.Project{Input: r1s, Attrs: []string{"a"}},
				Right: &plan.Select{Input: r2, Pred: ge},
			},
			Attrs: []string{"a"},
		},
	)
	return lhs, rhs
}

// Example4 builds the paper's Example 4 as a pair of equivalent
// plans: pushing an equi-join below a great divide,
//
//	lhs = r1* ⋈_{a1=a2} (r1** ÷* r2)
//	rhs = (r1* ⋈_{a1=a2} r1**) ÷* r2
//
// where r1*(a1), r1**(a2, b1), r2(b1, b2).
func Example4(r1s, r1ss, r2 plan.Node) (lhs, rhs plan.Node) {
	eq := pred.Compare(pred.Attr("a1"), pred.Eq, pred.Attr("a2"))
	lhs = &plan.ThetaJoin{
		Left:  r1s,
		Right: &plan.GreatDivide{Dividend: r1ss, Divisor: r2},
		Pred:  eq,
	}
	rhs = &plan.GreatDivide{
		Dividend: &plan.ThetaJoin{Left: r1s, Right: r1ss, Pred: eq},
		Divisor:  r2,
	}
	return lhs, rhs
}
