package laws

import (
	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
)

// Law1 rewrites r1 ÷ (r2' ∪ r2”) into (r1 ⋉ (r1 ÷ r2')) ÷ r2”
// (§5.1.1). It holds for arbitrary, even overlapping, divisor
// partitions and enables pipeline parallelism on grouped dividends.
func Law1() Rule {
	return Rule{
		Name:        "Law 1",
		Description: "r1 ÷ (r2' ∪ r2'') = (r1 ⋉ (r1 ÷ r2')) ÷ r2''",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			u, ok := d.Divisor.(*plan.Set)
			if !ok || u.Op != plan.UnionOp {
				return nil, false
			}
			if _, ok := smallSplit(d); !ok {
				return nil, false
			}
			inner := &plan.Divide{Dividend: d.Dividend, Divisor: u.Left, Algo: d.Algo}
			return &plan.Divide{
				Dividend: &plan.SemiJoin{Left: d.Dividend, Right: inner},
				Divisor:  u.Right,
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law2 rewrites (r1' ∪ r1”) ÷ r2 into (r1' ÷ r2) ∪ (r1” ÷ r2)
// under the stricter schema-cheap precondition c2: the partitions'
// quotient-candidate projections must be disjoint (§5.1.1). C2 is
// data-dependent but needs only the A projections, not the divisor.
func Law2() Rule {
	return Rule{
		Name:          "Law 2",
		Description:   "(r1' ∪ r1'') ÷ r2 = (r1' ÷ r2) ∪ (r1'' ÷ r2) under c2",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, u, split, ok := matchDividendUnion(n)
			if !ok {
				return nil, false
			}
			if !projectionsDisjoint(u.Left, u.Right, split.A.Attrs()) {
				return nil, false
			}
			return plan.Union(
				&plan.Divide{Dividend: u.Left, Divisor: d.Divisor, Algo: d.Algo},
				&plan.Divide{Dividend: u.Right, Divisor: d.Divisor, Algo: d.Algo},
			), true
		},
	}
}

// Law2C1 is Law 2 under the weakest precondition c1, which must
// inspect the divisor as well (§5.1.1, Figure 5). It fires in cases
// c2 rejects, at a higher checking cost.
func Law2C1() Rule {
	return Rule{
		Name:          "Law 2 (c1)",
		Description:   "(r1' ∪ r1'') ÷ r2 = (r1' ÷ r2) ∪ (r1'' ÷ r2) under c1",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, u, _, ok := matchDividendUnion(n)
			if !ok {
				return nil, false
			}
			if !C1(plan.Eval(u.Left), plan.Eval(u.Right), plan.Eval(d.Divisor)) {
				return nil, false
			}
			return plan.Union(
				&plan.Divide{Dividend: u.Left, Divisor: d.Divisor, Algo: d.Algo},
				&plan.Divide{Dividend: u.Right, Divisor: d.Divisor, Algo: d.Algo},
			), true
		},
	}
}

func matchDividendUnion(n plan.Node) (*plan.Divide, *plan.Set, division.Split, bool) {
	d, ok := n.(*plan.Divide)
	if !ok {
		return nil, nil, division.Split{}, false
	}
	u, ok := d.Dividend.(*plan.Set)
	if !ok || u.Op != plan.UnionOp {
		return nil, nil, division.Split{}, false
	}
	s, ok := smallSplit(d)
	if !ok {
		return nil, nil, division.Split{}, false
	}
	return d, u, s, true
}

// Law3 pushes a selection over quotient attributes through the
// division: σp(A)(r1 ÷ r2) = σp(A)(r1) ÷ r2 (§5.1.2). Any predicate
// over the quotient references only A, so the push-down direction is
// unconditional.
func Law3() Rule {
	return Rule{
		Name:        "Law 3",
		Description: "σp(A)(r1 ÷ r2) = σp(A)(r1) ÷ r2 (push selection into dividend)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			s, ok := n.(*plan.Select)
			if !ok {
				return nil, false
			}
			d, ok := s.Input.(*plan.Divide)
			if !ok {
				return nil, false
			}
			if _, ok := smallSplit(d); !ok {
				return nil, false
			}
			return &plan.Divide{
				Dividend: &plan.Select{Input: d.Dividend, Pred: s.Pred},
				Divisor:  d.Divisor,
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law3Reverse pulls a dividend selection over A above the division.
func Law3Reverse() Rule {
	return Rule{
		Name:        "Law 3 (reverse)",
		Description: "σp(A)(r1) ÷ r2 = σp(A)(r1 ÷ r2) (pull selection above divide)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			sel, ok := d.Dividend.(*plan.Select)
			if !ok {
				return nil, false
			}
			s, ok := smallSplit(d)
			if !ok || !pred.OnlyOver(sel.Pred, s.A) {
				return nil, false
			}
			return &plan.Select{
				Input: &plan.Divide{Dividend: sel.Input, Divisor: d.Divisor, Algo: d.Algo},
				Pred:  sel.Pred,
			}, true
		},
	}
}

// Law4 replicates a divisor selection over B onto the dividend:
// r1 ÷ σp(B)(r2) = σp(B)(r1) ÷ σp(B)(r2) (§5.1.2). A divisor
// predicate references only B, which is part of the dividend schema.
//
// Boundary condition the paper leaves implicit: the law requires
// σp(B)(r2) ≠ ∅. With an empty restricted divisor, r ÷ ∅ = πA(r)
// under Codd's definition, so the left side keeps every dividend
// group while the right side keeps only groups satisfying p. The
// rule therefore verifies nonemptiness on the data.
func Law4() Rule {
	return Rule{
		Name:          "Law 4",
		Description:   "r1 ÷ σp(B)(r2) = σp(B)(r1) ÷ σp(B)(r2) (replicate selection)",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			sel, ok := d.Divisor.(*plan.Select)
			if !ok {
				return nil, false
			}
			if _, ok := smallSplit(d); !ok {
				return nil, false
			}
			if plan.Eval(d.Divisor).Empty() {
				return nil, false
			}
			return &plan.Divide{
				Dividend: &plan.Select{Input: d.Dividend, Pred: sel.Pred},
				Divisor:  d.Divisor,
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law4Reverse removes a replicated dividend selection when the same
// predicate already restricts the divisor. Like Law4 it requires the
// restricted divisor to be nonempty.
func Law4Reverse() Rule {
	return Rule{
		Name:          "Law 4 (reverse)",
		Description:   "σp(B)(r1) ÷ σp(B)(r2) = r1 ÷ σp(B)(r2) (drop replicated selection)",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			ds, ok := d.Dividend.(*plan.Select)
			if !ok {
				return nil, false
			}
			vs, ok := d.Divisor.(*plan.Select)
			if !ok || ds.Pred.String() != vs.Pred.String() {
				return nil, false
			}
			s, ok := smallSplit(d)
			if !ok || !pred.OnlyOver(ds.Pred, s.B) {
				return nil, false
			}
			if plan.Eval(d.Divisor).Empty() {
				return nil, false
			}
			return &plan.Divide{Dividend: ds.Input, Divisor: d.Divisor, Algo: d.Algo}, true
		},
	}
}

// Law5 distributes division over a dividend intersection:
// (r1' ∩ r1”) ÷ r2 = (r1' ÷ r2) ∩ (r1” ÷ r2) (§5.1.3).
func Law5() Rule {
	return Rule{
		Name:        "Law 5",
		Description: "(r1' ∩ r1'') ÷ r2 = (r1' ÷ r2) ∩ (r1'' ÷ r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			in, ok := d.Dividend.(*plan.Set)
			if !ok || in.Op != plan.IntersectOp {
				return nil, false
			}
			if _, ok := smallSplit(d); !ok {
				return nil, false
			}
			return plan.Intersect(
				&plan.Divide{Dividend: in.Left, Divisor: d.Divisor, Algo: d.Algo},
				&plan.Divide{Dividend: in.Right, Divisor: d.Divisor, Algo: d.Algo},
			), true
		},
	}
}

// Law5Reverse merges two divisions by the same divisor under an
// intersection back into one division.
func Law5Reverse() Rule {
	return Rule{
		Name:        "Law 5 (reverse)",
		Description: "(r1' ÷ r2) ∩ (r1'' ÷ r2) = (r1' ∩ r1'') ÷ r2",
		Apply: func(n plan.Node) (plan.Node, bool) {
			in, ok := n.(*plan.Set)
			if !ok || in.Op != plan.IntersectOp {
				return nil, false
			}
			dl, ok := in.Left.(*plan.Divide)
			if !ok {
				return nil, false
			}
			dr, ok := in.Right.(*plan.Divide)
			if !ok || !plan.Equal(dl.Divisor, dr.Divisor) {
				return nil, false
			}
			if !dl.Dividend.Schema().Equal(dr.Dividend.Schema()) {
				return nil, false
			}
			return &plan.Divide{
				Dividend: plan.Intersect(dl.Dividend, dr.Dividend),
				Divisor:  dl.Divisor,
				Algo:     dl.Algo,
			}, true
		},
	}
}

// Law6 distributes division over a dividend difference of two
// restrictions of the same relation, σp'(A)(r) ⊇ σp”(A)(r):
// (r1' − r1”) ÷ r2 = (r1' ÷ r2) − (r1” ÷ r2) (§5.1.4). The
// containment premise is verified on the data.
func Law6() Rule {
	return Rule{
		Name:          "Law 6",
		Description:   "(σp'(A)(r) − σp''(A)(r)) ÷ r2 = (σp'(A)(r) ÷ r2) − (σp''(A)(r) ÷ r2), r1' ⊇ r1''",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			diff, ok := d.Dividend.(*plan.Set)
			if !ok || diff.Op != plan.DiffOp {
				return nil, false
			}
			ls, ok := diff.Left.(*plan.Select)
			if !ok {
				return nil, false
			}
			rs, ok := diff.Right.(*plan.Select)
			if !ok || !plan.Equal(ls.Input, rs.Input) {
				return nil, false
			}
			s, ok := smallSplit(d)
			if !ok || !pred.OnlyOver(ls.Pred, s.A) || !pred.OnlyOver(rs.Pred, s.A) {
				return nil, false
			}
			if !subsetOf(plan.Eval(diff.Right), plan.Eval(diff.Left)) {
				return nil, false
			}
			return plan.Diff(
				&plan.Divide{Dividend: diff.Left, Divisor: d.Divisor, Algo: d.Algo},
				&plan.Divide{Dividend: diff.Right, Divisor: d.Divisor, Algo: d.Algo},
			), true
		},
	}
}

// Law7 drops the subtrahend division entirely when the dividends'
// quotient candidates are disjoint:
// (r1' ÷ r2) − (r1” ÷ r2) = r1' ÷ r2 (§5.1.4). This saves the whole
// computation of r1” ÷ r2.
func Law7() Rule {
	return Rule{
		Name:          "Law 7",
		Description:   "(r1' ÷ r2) − (r1'' ÷ r2) = r1' ÷ r2 when πA(r1') ∩ πA(r1'') = ∅",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			diff, ok := n.(*plan.Set)
			if !ok || diff.Op != plan.DiffOp {
				return nil, false
			}
			dl, ok := diff.Left.(*plan.Divide)
			if !ok {
				return nil, false
			}
			dr, ok := diff.Right.(*plan.Divide)
			if !ok || !plan.Equal(dl.Divisor, dr.Divisor) {
				return nil, false
			}
			s, ok := smallSplit(dl)
			if !ok || !dr.Dividend.Schema().EqualSet(dl.Dividend.Schema()) {
				return nil, false
			}
			if !projectionsDisjoint(dl.Dividend, dr.Dividend, s.A.Attrs()) {
				return nil, false
			}
			return dl, true
		},
	}
}

// Law8 narrows a division of a Cartesian product to the factor
// carrying the divisor attributes:
// (r1* × r1**) ÷ r2 = r1* × (r1** ÷ r2) (§5.1.5), where r1* holds
// quotient attributes only.
func Law8() Rule {
	return Rule{
		Name:        "Law 8",
		Description: "(r1* × r1**) ÷ r2 = r1* × (r1** ÷ r2)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			prod, ok := d.Dividend.(*plan.Product)
			if !ok {
				return nil, false
			}
			b := d.Divisor.Schema()
			left, right := prod.Left.Schema(), prod.Right.Schema()
			// B must live entirely in the right factor, and the right
			// factor must keep at least one quotient attribute so the
			// inner division is well-formed.
			if !b.SubsetOf(right) || !left.DisjointFrom(b) || right.Minus(b).Len() == 0 {
				return nil, false
			}
			return &plan.Product{
				Left:  prod.Left,
				Right: &plan.Divide{Dividend: prod.Right, Divisor: d.Divisor, Algo: d.Algo},
			}, true
		},
	}
}

// Law8Reverse folds a product of a relation with a division back
// into a division of a product.
func Law8Reverse() Rule {
	return Rule{
		Name:        "Law 8 (reverse)",
		Description: "r1* × (r1** ÷ r2) = (r1* × r1**) ÷ r2",
		Apply: func(n plan.Node) (plan.Node, bool) {
			prod, ok := n.(*plan.Product)
			if !ok {
				return nil, false
			}
			d, ok := prod.Right.(*plan.Divide)
			if !ok {
				return nil, false
			}
			if !prod.Left.Schema().DisjointFrom(d.Dividend.Schema()) {
				return nil, false
			}
			return &plan.Divide{
				Dividend: &plan.Product{Left: prod.Left, Right: d.Dividend},
				Divisor:  d.Divisor,
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law9 eliminates a product factor that is already covered by the
// divisor: if πB2(r2) ⊆ r1** then
// (r1* × r1**) ÷ r2 = r1* ÷ πB1(r2) (§5.1.5). The coverage premise
// is data-dependent.
func Law9() Rule {
	return Rule{
		Name:          "Law 9",
		Description:   "(r1* × r1**) ÷ r2 = r1* ÷ πB1(r2) when πB2(r2) ⊆ r1**",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			prod, ok := d.Dividend.(*plan.Product)
			if !ok {
				return nil, false
			}
			b := d.Divisor.Schema()
			b2 := prod.Right.Schema()
			// The right factor must consist purely of divisor
			// attributes, with some divisor attributes (B1) left for
			// the residual division against the left factor.
			if !b2.SubsetOf(b) {
				return nil, false
			}
			b1 := b.Minus(b2)
			if b1.Len() == 0 || !b1.SubsetOf(prod.Left.Schema()) {
				return nil, false
			}
			if prod.Left.Schema().Minus(b1).Len() == 0 {
				return nil, false // no quotient attributes would remain
			}
			piB2 := plan.Eval(&plan.Project{Input: d.Divisor, Attrs: b2.Attrs()})
			if !subsetOf(piB2, plan.Eval(prod.Right)) {
				return nil, false
			}
			return &plan.Divide{
				Dividend: prod.Left,
				Divisor:  &plan.Project{Input: d.Divisor, Attrs: b1.Attrs()},
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law10 commutes a semi-join over quotient attributes with the
// division: (r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2 (§5.1.6), profitable
// when r3 is small and filters r1 before the division.
func Law10() Rule {
	return Rule{
		Name:        "Law 10",
		Description: "(r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2 (filter dividend first)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			sj, ok := n.(*plan.SemiJoin)
			if !ok {
				return nil, false
			}
			d, ok := sj.Left.(*plan.Divide)
			if !ok {
				return nil, false
			}
			s, ok := smallSplit(d)
			if !ok || !sj.Right.Schema().EqualSet(s.A) {
				return nil, false
			}
			return &plan.Divide{
				Dividend: &plan.SemiJoin{Left: d.Dividend, Right: sj.Right},
				Divisor:  d.Divisor,
				Algo:     d.Algo,
			}, true
		},
	}
}

// Law10Reverse moves the semi-join above the division, profitable
// when the division shrinks its input dramatically.
func Law10Reverse() Rule {
	return Rule{
		Name:        "Law 10 (reverse)",
		Description: "(r1 ⋉ r3) ÷ r2 = (r1 ÷ r2) ⋉ r3 (divide first)",
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			sj, ok := d.Dividend.(*plan.SemiJoin)
			if !ok {
				return nil, false
			}
			s, err := division.SmallSplit(sj.Left.Schema(), d.Divisor.Schema())
			if err != nil || !sj.Right.Schema().EqualSet(s.A) {
				return nil, false
			}
			return &plan.SemiJoin{
				Left:  &plan.Divide{Dividend: sj.Left, Divisor: d.Divisor, Algo: d.Algo},
				Right: sj.Right,
			}, true
		},
	}
}

// Law11 simplifies a division whose dividend groups are singletons
// because the dividend is an aggregation keyed by the quotient
// attributes, r1 = Aγf(X)→B(r0) (§5.1.7): depending on the divisor
// cardinality the quotient is r1 itself (|r2| = 0), πA(r1 ⋉ r2)
// (|r2| = 1), or empty (|r2| > 1). The divisor cardinality is read
// from the data at rewrite time.
func Law11() Rule {
	return Rule{
		Name:          "Law 11",
		Description:   "Aγf(X)→B(r0) ÷ r2 simplifies by divisor cardinality",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			g, ok := d.Dividend.(*plan.Group)
			if !ok {
				return nil, false
			}
			s, ok := smallSplit(d)
			if !ok || !sameSet(g.By, s.A) || !sameSet(aggOutputs(g), s.B) {
				return nil, false
			}
			switch plan.Eval(d.Divisor).Len() {
			case 0:
				// The paper writes "r1" for this case; by Definition 2
				// r1 ÷ ∅ = πA(r1), so the quotient keeps only A.
				return &plan.Project{Input: d.Dividend, Attrs: s.A.Attrs()}, true
			case 1:
				return &plan.Project{
					Input: &plan.SemiJoin{Left: d.Dividend, Right: d.Divisor},
					Attrs: s.A.Attrs(),
				}, true
			default:
				return emptyWithSchema(d.Dividend, s.A.Attrs()), true
			}
		},
	}
}

// Law12 simplifies a division whose dividend has singleton groups
// per divisor value, r1 = Bγf(X)→A(r0), when the divisor is a
// foreign key into the dividend (§5.1.7): the quotient is
// πA(r1 ⋉ r2) when that projection is a single tuple, else empty.
// The guard |πA(r1 ⋉ r2)| = 1 is expressed algebraically via a
// self-product, keeping the rewrite a pure plan.
func Law12() Rule {
	return Rule{
		Name:          "Law 12",
		Description:   "Bγf(X)→A(r0) ÷ r2 = guarded πA(r1 ⋉ r2) under FK r2.B ⊆ πB(r1)",
		DataDependent: true,
		Apply: func(n plan.Node) (plan.Node, bool) {
			d, ok := n.(*plan.Divide)
			if !ok {
				return nil, false
			}
			g, ok := d.Dividend.(*plan.Group)
			if !ok {
				return nil, false
			}
			s, ok := smallSplit(d)
			if !ok || !sameSet(g.By, s.B) || !sameSet(aggOutputs(g), s.A) {
				return nil, false
			}
			// FK premise: r2.B ⊆ πB(r1).
			piB := plan.Eval(&plan.Project{Input: d.Dividend, Attrs: s.B.Attrs()})
			if !subsetOf(plan.Eval(d.Divisor), piB) {
				return nil, false
			}
			q := &plan.Project{
				Input: &plan.SemiJoin{Left: d.Dividend, Right: d.Divisor},
				Attrs: s.A.Attrs(),
			}
			return keepIfSingleton(q, s.A.Attrs()), true
		},
	}
}

// aggOutputs lists the output attribute names of a Group node.
func aggOutputs(g *plan.Group) []string {
	out := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		out[i] = a.As
	}
	return out
}

// emptyWithSchema builds a plan that evaluates to the empty relation
// with the given projection of input's schema.
func emptyWithSchema(input plan.Node, attrs []string) plan.Node {
	return &plan.Select{
		Input: &plan.Project{Input: input, Attrs: attrs},
		Pred:  pred.False,
	}
}

// keepIfSingleton returns a plan computing q when |q| = 1 and ∅
// otherwise, using only basic algebra: q minus the tuples that have
// a distinct partner in q × ρ(q).
func keepIfSingleton(q plan.Node, attrs []string) plan.Node {
	// Rename every attribute of the copy apart.
	var copyNode plan.Node = q
	renamed := make([]string, len(attrs))
	for i, a := range attrs {
		renamed[i] = freshName(a, attrs)
		copyNode = &plan.Rename{Input: copyNode, From: a, To: renamed[i]}
	}
	var differs pred.Or
	for i, a := range attrs {
		differs = append(differs, pred.Compare(pred.Attr(a), pred.Ne, pred.Attr(renamed[i])))
	}
	paired := &plan.Product{Left: q, Right: copyNode}
	nonSingleton := &plan.Project{
		Input: &plan.Select{Input: paired, Pred: differs},
		Attrs: attrs,
	}
	return plan.Diff(q, nonSingleton)
}

// freshName derives an attribute name not colliding with existing.
func freshName(base string, existing []string) string {
	candidate := base + "'"
	for {
		clash := false
		for _, e := range existing {
			if e == candidate {
				clash = true
				break
			}
		}
		if !clash {
			return candidate
		}
		candidate += "'"
	}
}
