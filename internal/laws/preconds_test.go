package laws

import (
	"math/rand"
	"testing"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/hashkey"
	"divlaws/internal/relation"
)

// c1Oracle is the original string-keyed C1, kept as the reference
// the hash-layer implementation is checked against — including under
// forced hash collisions.
func c1Oracle(r1a, r1b, r2 *relation.Relation) bool {
	split, err := smallSplitRels(r1a, r2)
	if err != nil {
		return false
	}
	aPosA := r1a.Schema().Positions(split.A.Attrs())
	bPosA := r1a.Schema().Positions(split.B.Attrs())
	aPosB := r1b.Schema().Positions(split.A.Attrs())
	bPosB := r1b.Schema().Positions(split.B.Attrs())
	bOrder := r2.Schema().Positions(split.B.Attrs())

	imageA := oracleImagesByGroup(r1a, aPosA, bPosA)
	imageB := oracleImagesByGroup(r1b, aPosB, bPosB)

	divisor := make([]string, 0, r2.Len())
	for _, d := range r2.Tuples() {
		divisor = append(divisor, d.Project(bOrder).Key())
	}

	for ak, imgA := range imageA {
		imgB, shared := imageB[ak]
		if !shared {
			continue
		}
		if oracleCoversAll(imgA, divisor) || oracleCoversAll(imgB, divisor) {
			continue
		}
		union := make(map[string]struct{}, len(imgA)+len(imgB))
		for k := range imgA {
			union[k] = struct{}{}
		}
		for k := range imgB {
			union[k] = struct{}{}
		}
		if oracleCoversAll(union, divisor) {
			return false
		}
	}
	return true
}

// c2Oracle is the original string-keyed C2.
func c2Oracle(r1a, r1b, r2 *relation.Relation) bool {
	split, err := smallSplitRels(r1a, r2)
	if err != nil {
		return false
	}
	aPosA := r1a.Schema().Positions(split.A.Attrs())
	aPosB := r1b.Schema().Positions(split.A.Attrs())
	seen := make(map[string]struct{}, r1a.Len())
	for _, t := range r1a.Tuples() {
		seen[t.Project(aPosA).Key()] = struct{}{}
	}
	for _, t := range r1b.Tuples() {
		if _, hit := seen[t.Project(aPosB).Key()]; hit {
			return false
		}
	}
	return true
}

func oracleImagesByGroup(r *relation.Relation, aPos, bPos []int) map[string]map[string]struct{} {
	out := make(map[string]map[string]struct{})
	for _, t := range r.Tuples() {
		ak := t.Project(aPos).Key()
		img, ok := out[ak]
		if !ok {
			img = make(map[string]struct{})
			out[ak] = img
		}
		img[t.Project(bPos).Key()] = struct{}{}
	}
	return out
}

func oracleCoversAll(img map[string]struct{}, divisor []string) bool {
	for _, d := range divisor {
		if _, ok := img[d]; !ok {
			return false
		}
	}
	return true
}

// TestPrecondsMatchStringKeyedOracle pits the hash-layer C1/C2
// against the string-keyed originals, both normally and with every
// hash degraded to 3 bits so collisions are routine.
func TestPrecondsMatchStringKeyedOracle(t *testing.T) {
	run := func(t *testing.T) {
		rng := rand.New(rand.NewSource(321))
		for trial := 0; trial < 400; trial++ {
			r1a := randRelation(rng, []string{"a", "b"}, rng.Intn(12), 5)
			r1b := randRelation(rng, []string{"a", "b"}, rng.Intn(12), 5)
			r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(4), 5)
			if got, want := C1(r1a, r1b, r2), c1Oracle(r1a, r1b, r2); got != want {
				t.Fatalf("C1 = %v, oracle %v:\nr1a:\n%v\nr1b:\n%v\nr2:\n%v", got, want, r1a, r1b, r2)
			}
			if got, want := C2(r1a, r1b, r2), c2Oracle(r1a, r1b, r2); got != want {
				t.Fatalf("C2 = %v, oracle %v:\nr1a:\n%v\nr1b:\n%v\nr2:\n%v", got, want, r1a, r1b, r2)
			}
		}
	}
	t.Run("full hashes", run)
	t.Run("3-bit hashes", func(t *testing.T) {
		restore := hashkey.SetMaskForTesting(7)
		defer restore()
		run(t)
	})
}

func TestC2Figure5(t *testing.T) {
	r1a, r1b, r2 := figure5Relations()
	if C2(r1a, r1b, r2) {
		t.Error("Figure 5 partitions share a=1; c2 must fail")
	}
	if C1(r1a, r1b, r2) {
		t.Error("Figure 5 is the paper's c1 counterexample; c1 must fail")
	}
}

func TestC2DisjointPartitions(t *testing.T) {
	r1a := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r1b := relation.Ints([]string{"a", "b"}, [][]int64{{2, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	if !C2(r1a, r1b, r2) || !C1(r1a, r1b, r2) {
		t.Error("disjoint partitions must satisfy both c1 and c2")
	}
}

func TestC1HoldsWhenOneSideCovers(t *testing.T) {
	// Shared group a=1, fully covered within the first partition.
	r1a := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}})
	r1b := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	if C2(r1a, r1b, r2) {
		t.Error("shared candidate should fail c2")
	}
	if !C1(r1a, r1b, r2) {
		t.Error("coverage within one partition should satisfy c1")
	}
}

func TestC1HoldsWhenUnionDoesNotCover(t *testing.T) {
	// Shared group a=1 missing b=9 even in the union: the third
	// disjunct of c1.
	r1a := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r1b := relation.Ints([]string{"a", "b"}, [][]int64{{1, 2}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}, {9}})
	if !C1(r1a, r1b, r2) {
		t.Error("union not covering the divisor should satisfy c1")
	}
}

func TestC1RejectsDispersedCoverage(t *testing.T) {
	// Neither side covers alone, but the union does: exactly the
	// Figure 5 pathology.
	r1a := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r1b := relation.Ints([]string{"a", "b"}, [][]int64{{1, 2}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	if C1(r1a, r1b, r2) {
		t.Error("dispersed coverage must fail c1")
	}
}

func TestBadSchemasFailPreconditions(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	bad := relation.Ints([]string{"z"}, [][]int64{{1}})
	if C1(r1, r1, bad) || C2(r1, r1, bad) {
		t.Error("schema-invalid inputs must fail the preconditions")
	}
}

func TestC2ImpliesC1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		r1a := randRelation(rng, []string{"a", "b"}, rng.Intn(10), 5)
		r1b := randRelation(rng, []string{"a", "b"}, rng.Intn(10), 5)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(4), 5)
		if C2(r1a, r1b, r2) && !C1(r1a, r1b, r2) {
			t.Fatalf("c2 held but c1 failed:\nr1a:\n%v\nr1b:\n%v\nr2:\n%v", r1a, r1b, r2)
		}
	}
}

func TestC1ExactlyCharacterizesLaw2Property(t *testing.T) {
	// Soundness: when c1 holds, the distributed form equals the
	// union form. (c1 is sufficient; it may also hold vacuously.)
	rng := rand.New(rand.NewSource(100))
	holds, fails := 0, 0
	for trial := 0; trial < 400; trial++ {
		r1a := randRelation(rng, []string{"a", "b"}, rng.Intn(8), 4)
		r1b := randRelation(rng, []string{"a", "b"}, rng.Intn(8), 4)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(3), 4)
		union := division.Divide(algebra.Union(r1a, r1b), r2)
		distributed := algebra.Union(division.Divide(r1a, r2), division.Divide(r1b, r2))
		if C1(r1a, r1b, r2) {
			holds++
			if !union.Equal(distributed) {
				t.Fatalf("c1 held but Law 2 broke:\nr1a:\n%v\nr1b:\n%v\nr2:\n%v\nunion:\n%v\ndistributed:\n%v",
					r1a, r1b, r2, union, distributed)
			}
		} else {
			fails++
			// When c1 fails the sides must actually differ — c1 is
			// also necessary for this dividend decomposition.
			if union.Equal(distributed) {
				t.Fatalf("c1 failed but the sides agree:\nr1a:\n%v\nr1b:\n%v\nr2:\n%v", r1a, r1b, r2)
			}
		}
	}
	if holds == 0 || fails == 0 {
		t.Fatalf("degenerate sampling: holds=%d fails=%d", holds, fails)
	}
}
