package laws

import (
	"math/rand"
	"testing"

	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
)

func TestExample1Figure6(t *testing.T) {
	// Figure 6: r1 as in Figure 4, r2 = {1, 3, 4}, p ≡ b < 3.
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
		{4, 1}, {4, 3},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}, {4}})
	p := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(3))
	lhs := &plan.Divide{
		Dividend: &plan.Select{Input: scan("r1", r1), Pred: p},
		Divisor:  scan("r2", r2),
	}
	rhs := checkEquivalence(t, Example1Rule(), lhs)
	// Figure 6(e)/(i): both sides are empty because σ_{b≥3}(r2) ≠ ∅.
	if got := plan.Eval(rhs); !got.Empty() {
		t.Errorf("Figure 6 result should be empty, got %v", got)
	}
	// Figure 6(f): the positive part alone is {1, 2, 3, 4}.
	diff := rhs.(*plan.Set)
	wantPositive := relation.Ints([]string{"a"}, [][]int64{{1}, {2}, {3}, {4}})
	if got := plan.Eval(diff.Left); !got.Equal(wantPositive) {
		t.Errorf("Figure 6(f) = %v, want %v", got, wantPositive)
	}
	// Figure 6(h): the kill term covers all candidates.
	if got := plan.Eval(diff.Right); !got.Equal(wantPositive) {
		t.Errorf("Figure 6(h) = %v, want %v", got, wantPositive)
	}
}

func TestExample1NonKillCase(t *testing.T) {
	// When every divisor tuple satisfies p, the kill term is empty
	// and the rewrite reduces to Law 4's shape.
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}, {2, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	p := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(5))
	lhs := &plan.Divide{
		Dividend: &plan.Select{Input: scan("r1", r1), Pred: p},
		Divisor:  scan("r2", r2),
	}
	rhs := checkEquivalence(t, Example1Rule(), lhs)
	want := relation.Ints([]string{"a"}, [][]int64{{1}})
	if got := plan.Eval(rhs); !got.Equal(want) {
		t.Errorf("result = %v, want %v", got, want)
	}
}

func TestExample1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 150; trial++ {
		r1 := randRelation(rng, []string{"a", "b"}, 2+rng.Intn(20), 6)
		r2 := randRelation(rng, []string{"b"}, 1+rng.Intn(4), 6)
		p := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(int64(rng.Intn(7))))
		lhs := &plan.Divide{
			Dividend: &plan.Select{Input: scan("r1", r1), Pred: p},
			Divisor:  scan("r2", r2),
		}
		checkEquivalence(t, Example1Rule(), lhs)
	}
}

func TestExample1RejectsPredicateOverA(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	overA := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(0))
	lhs := &plan.Divide{
		Dividend: &plan.Select{Input: scan("r1", r1), Pred: overA},
		Divisor:  scan("r2", r2),
	}
	mustReject(t, Example1Rule(), lhs)
}

func TestExample2CancelCommonFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		r1 := randRelation(rng, []string{"a", "b1"}, 2+rng.Intn(15), 4)
		r2 := randRelation(rng, []string{"b1"}, 1+rng.Intn(3), 4)
		s := randRelation(rng, []string{"b2"}, 1+rng.Intn(3), 4)
		sScan := scan("s", s)
		lhs := &plan.Divide{
			Dividend: &plan.Product{Left: scan("r1", r1), Right: sScan},
			Divisor:  &plan.Product{Left: scan("r2", r2), Right: sScan},
		}
		rhs := checkEquivalence(t, Example2Rule(), lhs)
		d, ok := rhs.(*plan.Divide)
		if !ok {
			t.Fatalf("Example 2 should produce a bare divide:\n%s", plan.Format(rhs))
		}
		if _, ok := d.Dividend.(*plan.Scan); !ok {
			t.Fatalf("Example 2 should cancel the common factor:\n%s", plan.Format(rhs))
		}
	}
}

func TestExample2RejectsEmptyCommonFactor(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b1"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b1"}, [][]int64{{2}})
	s := relation.New(relation.Ints([]string{"b2"}, nil).Schema())
	sScan := scan("s", s)
	lhs := &plan.Divide{
		Dividend: &plan.Product{Left: scan("r1", r1), Right: sScan},
		Divisor:  &plan.Product{Left: scan("r2", r2), Right: sScan},
	}
	mustReject(t, Example2Rule(), lhs)
	// The counterexample is genuine: with s = ∅ the left side is
	// π_a of an empty dividend (empty), while r1 ÷ r2 here is empty
	// too ONLY IF r2 ⊄ image; build data where r1 ÷ r2 is nonempty.
	r2match := relation.Ints([]string{"b1"}, [][]int64{{1}})
	lhs2 := &plan.Divide{
		Dividend: &plan.Product{Left: scan("r1", r1), Right: sScan},
		Divisor:  &plan.Product{Left: scan("r2m", r2match), Right: sScan},
	}
	mustReject(t, Example2Rule(), lhs2)
	if !plan.Eval(lhs2).Empty() {
		t.Fatal("lhs with empty factor should be empty")
	}
	residual := plan.Eval(&plan.Divide{Dividend: scan("r1", r1), Divisor: scan("r2m", r2match)})
	if residual.Empty() {
		t.Fatal("residual divide should be nonempty, proving the guard necessary")
	}
}

func TestExample2RejectsDifferentFactors(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b1"}, [][]int64{{1, 1}})
	r2 := relation.Ints([]string{"b1"}, [][]int64{{1}})
	s1 := scan("s1", relation.Ints([]string{"b2"}, [][]int64{{1}}))
	s2 := scan("s2", relation.Ints([]string{"b2"}, [][]int64{{1}}))
	lhs := &plan.Divide{
		Dividend: &plan.Product{Left: scan("r1", r1), Right: s1},
		Divisor:  &plan.Product{Left: scan("r2", r2), Right: s2},
	}
	// Different scan identities: structural equality fails, rule
	// must not fire even though the data is identical.
	mustReject(t, Example2Rule(), lhs)
}

func TestExample3Figure9(t *testing.T) {
	// Figure 9: r1*(a, b1), r1**(b2), r2(b1, b2).
	r1s := relation.Ints([]string{"a", "b1"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	r1ss := relation.Ints([]string{"b2"}, [][]int64{{1}, {2}, {4}})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 4}, {3, 4}})
	lhs, rhs := Example3(scan("r1s", r1s), scan("r1ss", r1ss), scan("r2", r2))
	want := relation.Ints([]string{"a"}, [][]int64{{1}, {3}})
	lhsVal, rhsVal := plan.Eval(lhs), plan.Eval(rhs)
	if !lhsVal.Equal(want) {
		t.Errorf("Figure 9(f) lhs = %v, want %v", lhsVal, want)
	}
	if !rhsVal.Equal(want) {
		t.Errorf("Figure 9(f) rhs = %v, want %v", rhsVal, want)
	}
	// The rewritten plan avoids the theta-join between r1* and r1**
	// entirely — the paper's motivation (no index on r1*.b1/r1**.b2
	// needed).
	if n := countThetaJoins(rhs); n != 0 {
		t.Errorf("rhs still contains %d theta-join(s):\n%s", n, plan.Format(rhs))
	}
	if countThetaJoins(lhs) != 1 {
		t.Errorf("lhs should contain the theta-join:\n%s", plan.Format(lhs))
	}
}

func countThetaJoins(n plan.Node) int {
	total := 0
	if _, ok := n.(*plan.ThetaJoin); ok {
		total++
	}
	for _, c := range n.Children() {
		total += countThetaJoins(c)
	}
	return total
}

func TestExample3Property(t *testing.T) {
	// The Example 3 derivation requires r2.b2 references r1** (FK)
	// — generate r1** as a superset of πb2(r2).
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 100; trial++ {
		r1s := randRelation(rng, []string{"a", "b1"}, 2+rng.Intn(15), 5)
		r2 := randRelation(rng, []string{"b1", "b2"}, 1+rng.Intn(5), 5)
		r1ss := relation.New(relation.Ints([]string{"b2"}, nil).Schema())
		for _, tp := range r2.Tuples() {
			r1ss.Insert(tp[1:2])
		}
		for i := 0; i < rng.Intn(3); i++ {
			r1ss.Insert(relation.Tuple{relation.ToValue(int64(rng.Intn(5)))})
		}
		if r1ss.Empty() {
			continue
		}
		lhs, rhs := Example3(scan("r1s", r1s), scan("r1ss", r1ss), scan("r2", r2))
		lhsVal, rhsVal := plan.Eval(lhs), plan.Eval(rhs)
		if !lhsVal.EquivalentTo(rhsVal) {
			t.Fatalf("Example 3 mismatch:\nlhs:\n%v\nrhs:\n%v\nr1s:\n%v\nr1ss:\n%v\nr2:\n%v",
				lhsVal, rhsVal, r1s, r1ss, r2)
		}
	}
}

func TestExample4EquiJoinPushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 100; trial++ {
		r1s := randRelation(rng, []string{"a1"}, 1+rng.Intn(5), 4)
		r1ss := randRelation(rng, []string{"a2", "b1"}, 2+rng.Intn(15), 4)
		r2 := randRelation(rng, []string{"b1", "b2"}, 1+rng.Intn(5), 4)
		lhs, rhs := Example4(scan("r1s", r1s), scan("r1ss", r1ss), scan("r2", r2))
		lhsVal, rhsVal := plan.Eval(lhs), plan.Eval(rhs)
		if !lhsVal.EquivalentTo(rhsVal) {
			t.Fatalf("Example 4 mismatch:\nlhs:\n%v\nrhs:\n%v", lhsVal, rhsVal)
		}
	}
}

func TestExample4ViaRuleChain(t *testing.T) {
	// The paper derives Example 4 with Law 17 and Law 14. Verify the
	// chain mechanically: starting from the lhs
	// σ_{a1=a2}(r1* × (r1** ÷* r2)), Law 17 (reverse) inside the
	// select, then Law 14's push … ends at (r1* ⋈ r1**) ÷* r2 after
	// recognizing the theta-join; here we chain the two rule
	// applications on the inner nodes and compare evaluations.
	r1s := relation.Ints([]string{"a1"}, [][]int64{{1}, {2}})
	r1ss := relation.Ints([]string{"a2", "b1"}, [][]int64{{1, 1}, {1, 2}, {2, 1}})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 1}, {2, 1}})
	eq := pred.Compare(pred.Attr("a1"), pred.Eq, pred.Attr("a2"))

	// Step 0: σ(r1* × (r1** ÷* r2)) — theta-join unfolded as the
	// paper's derivation does.
	inner := &plan.Product{
		Left:  scan("r1s", r1s),
		Right: &plan.GreatDivide{Dividend: scan("r1ss", r1ss), Divisor: scan("r2", r2)},
	}
	step0 := &plan.Select{Input: inner, Pred: eq}

	// Step 1: Law 17 (reverse) on the product.
	folded, ok := Law17Reverse().Apply(inner)
	if !ok {
		t.Fatal("Law 17 (reverse) did not fire")
	}
	step1 := &plan.Select{Input: folded, Pred: eq}
	if !plan.Eval(step0).EquivalentTo(plan.Eval(step1)) {
		t.Fatal("step 1 broke equivalence")
	}

	// Step 2: Law 14 pushes the selection into the dividend.
	step2, ok := Law14().Apply(step1)
	if !ok {
		t.Fatal("Law 14 did not fire")
	}
	if !plan.Eval(step1).EquivalentTo(plan.Eval(step2)) {
		t.Fatal("step 2 broke equivalence")
	}
	// Final shape: a great divide over a selected product — the
	// theta-join (r1* ⋈_{a1=a2} r1**) ÷* r2.
	gd, ok := step2.(*plan.GreatDivide)
	if !ok {
		t.Fatalf("final plan should be a GreatDivide:\n%s", plan.Format(step2))
	}
	if _, ok := gd.Dividend.(*plan.Select); !ok {
		t.Fatalf("final dividend should be the selected product:\n%s", plan.Format(step2))
	}
}
