package division

import (
	"math/rand"
	"testing"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// fig1Dividend is relation r1 from the paper's Figure 1 (reused in
// Figure 2).
func fig1Dividend() *relation.Relation {
	return relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
	})
}

func TestFigure1SmallDivide(t *testing.T) {
	// Paper Figure 1: r1 ÷ r2 = r3 with r2 = {1, 3}, r3 = {2, 3}.
	r1 := fig1Dividend()
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	want := relation.Ints([]string{"a"}, [][]int64{{2}, {3}})
	for _, algo := range Algorithms() {
		got := DivideWith(algo, r1, r2)
		if !got.Equal(want) {
			t.Errorf("%s: r1 ÷ r2 = %v, want %v", algo, got, want)
		}
	}
}

func TestFigure2GreatDivide(t *testing.T) {
	// Paper Figure 2: r1 ÷* r2 = r3.
	r1 := fig1Dividend()
	r2 := relation.Ints([]string{"b", "c"}, [][]int64{
		{1, 1}, {2, 1}, {4, 1},
		{1, 2}, {3, 2},
	})
	want := relation.Ints([]string{"a", "c"}, [][]int64{{2, 1}, {2, 2}, {3, 2}})
	for _, algo := range GreatAlgorithms() {
		got := GreatDivideWith(algo, r1, r2)
		if !got.EquivalentTo(want) {
			t.Errorf("%s: r1 ÷* r2 = %v, want %v", algo, got, want)
		}
	}
}

func TestSmallSplit(t *testing.T) {
	s, err := SmallSplit(schema.New("a", "b", "c"), schema.New("b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.A.Equal(schema.New("a")) || !s.B.Equal(schema.New("b", "c")) {
		t.Errorf("split = %+v", s)
	}
	if _, err := SmallSplit(schema.New("a"), schema.New()); err == nil {
		t.Error("empty divisor schema should fail")
	}
	if _, err := SmallSplit(schema.New("a", "b"), schema.New("z")); err == nil {
		t.Error("non-subset divisor should fail")
	}
	if _, err := SmallSplit(schema.New("b"), schema.New("b")); err == nil {
		t.Error("empty quotient attribute set should fail")
	}
}

func TestGreatSplit(t *testing.T) {
	s, err := GreatSplit(schema.New("a", "b"), schema.New("b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.A.Equal(schema.New("a")) || !s.B.Equal(schema.New("b")) || !s.C.Equal(schema.New("c")) {
		t.Errorf("split = %+v", s)
	}
	if _, err := GreatSplit(schema.New("a"), schema.New("c")); err == nil {
		t.Error("disjoint schemas should fail")
	}
	if _, err := GreatSplit(schema.New("b"), schema.New("b", "c")); err == nil {
		t.Error("no quotient attributes should fail")
	}
	if _, err := GreatSplit(schema.New("a", "b"), schema.New("b")); err == nil {
		t.Error("no group attributes should fail (that is a small divide)")
	}
}

func TestDivideEmptyDivisor(t *testing.T) {
	// r1 ÷ ∅ = πA(r1): every group trivially contains the empty set.
	r1 := fig1Dividend()
	r2 := relation.New(schema.New("b"))
	want := relation.Ints([]string{"a"}, [][]int64{{1}, {2}, {3}})
	for _, algo := range Algorithms() {
		if got := DivideWith(algo, r1, r2); !got.Equal(want) {
			t.Errorf("%s: r1 ÷ ∅ = %v, want %v", algo, got, want)
		}
	}
}

func TestDivideEmptyDividend(t *testing.T) {
	r1 := relation.New(schema.New("a", "b"))
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}})
	for _, algo := range Algorithms() {
		if got := DivideWith(algo, r1, r2); !got.Empty() {
			t.Errorf("%s: ∅ ÷ r2 = %v, want empty", algo, got)
		}
	}
}

func TestDivideNoQualifyingGroup(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {2, 2}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	for _, algo := range Algorithms() {
		if got := DivideWith(algo, r1, r2); !got.Empty() {
			t.Errorf("%s: expected empty quotient, got %v", algo, got)
		}
	}
}

func TestDivideDivisorValueAbsentFromDividend(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {99}})
	for _, algo := range Algorithms() {
		if got := DivideWith(algo, r1, r2); !got.Empty() {
			t.Errorf("%s: divisor value outside dividend should empty the quotient, got %v", algo, got)
		}
	}
}

func TestDivideMultiAttributeB(t *testing.T) {
	// B = {b1, b2}: containment over composite elements.
	r1 := relation.Ints([]string{"a", "b1", "b2"}, [][]int64{
		{1, 1, 1}, {1, 2, 2},
		{2, 1, 1}, {2, 2, 2}, {2, 3, 3},
	})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 1}, {2, 2}})
	want := relation.Ints([]string{"a"}, [][]int64{{1}, {2}})
	for _, algo := range Algorithms() {
		if got := DivideWith(algo, r1, r2); !got.Equal(want) {
			t.Errorf("%s: composite-B divide = %v", algo, got)
		}
	}
	// Divisor column order must not matter.
	r2swapped := relation.Ints([]string{"b2", "b1"}, [][]int64{{1, 1}, {2, 2}})
	for _, algo := range Algorithms() {
		if got := DivideWith(algo, r1, r2swapped); !got.Equal(want) {
			t.Errorf("%s: swapped divisor columns = %v", algo, got)
		}
	}
}

func TestDivideMultiAttributeA(t *testing.T) {
	r1 := relation.Ints([]string{"a1", "a2", "b"}, [][]int64{
		{1, 1, 1}, {1, 1, 2},
		{1, 2, 1},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	want := relation.Ints([]string{"a1", "a2"}, [][]int64{{1, 1}})
	for _, algo := range Algorithms() {
		if got := DivideWith(algo, r1, r2); !got.Equal(want) {
			t.Errorf("%s: composite-A divide = %v", algo, got)
		}
	}
}

func TestDivideWithUnknownAlgoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DivideWith("nope", fig1Dividend(), relation.Ints([]string{"b"}, [][]int64{{1}}))
}

func TestGreatDivideWithUnknownAlgoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GreatDivideWith("nope", fig1Dividend(), relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}}))
}

func TestDivideSchemaViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid schemas")
		}
	}()
	Divide(relation.Ints([]string{"a"}, nil), relation.Ints([]string{"b"}, nil))
}

func TestGreatDivideEmptyDivisor(t *testing.T) {
	r1 := fig1Dividend()
	r2 := relation.New(schema.New("b", "c"))
	for _, algo := range GreatAlgorithms() {
		if got := GreatDivideWith(algo, r1, r2); !got.Empty() {
			t.Errorf("%s: r1 ÷* ∅ = %v, want empty (no divisor groups)", algo, got)
		}
	}
}

func TestGreatDivideEmptyDividend(t *testing.T) {
	r1 := relation.New(schema.New("a", "b"))
	r2 := relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}})
	for _, algo := range GreatAlgorithms() {
		if got := GreatDivideWith(algo, r1, r2); !got.Empty() {
			t.Errorf("%s: ∅ ÷* r2 = %v, want empty", algo, got)
		}
	}
}

func TestGreatDivideMultiAttributeC(t *testing.T) {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}, {2, 1}})
	r2 := relation.Ints([]string{"b", "c1", "c2"}, [][]int64{
		{1, 10, 100},
		{2, 10, 100},
		{1, 20, 200},
	})
	want := relation.Ints([]string{"a", "c1", "c2"}, [][]int64{
		{1, 10, 100}, {1, 20, 200}, {2, 20, 200},
	})
	for _, algo := range GreatAlgorithms() {
		if got := GreatDivideWith(algo, r1, r2); !got.EquivalentTo(want) {
			t.Errorf("%s: multi-C great divide = %v, want %v", algo, got, want)
		}
	}
}

// randDatabase builds a random dividend/divisor pair with small
// domains so containment happens often.
func randDatabase(rng *rand.Rand, nDividend, nDivisor, aDom, bDom, cDom int) (r1, r2 *relation.Relation) {
	r1 = relation.New(schema.New("a", "b"))
	for i := 0; i < nDividend; i++ {
		r1.Insert(relation.Tuple{
			value.Int(int64(rng.Intn(aDom))),
			value.Int(int64(rng.Intn(bDom))),
		})
	}
	r2 = relation.New(schema.New("b", "c"))
	for i := 0; i < nDivisor; i++ {
		r2.Insert(relation.Tuple{
			value.Int(int64(rng.Intn(bDom))),
			value.Int(int64(rng.Intn(cDom))),
		})
	}
	return r1, r2
}

func TestAllSmallDivideAlgorithmsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		r1, r2full := randDatabase(rng, rng.Intn(30), rng.Intn(8), 5, 6, 1)
		r2 := relation.New(schema.New("b"))
		for _, tpl := range r2full.Tuples() {
			r2.Insert(tpl[:1])
		}
		ref := NaiveDivide(r1, r2)
		for _, algo := range Algorithms() {
			if got := DivideWith(algo, r1, r2); !got.Equal(ref) {
				t.Fatalf("trial %d: %s disagrees with naive:\nr1:\n%v\nr2:\n%v\nnaive:\n%v\n%s:\n%v",
					trial, algo, r1, r2, ref, algo, got)
			}
		}
	}
}

func TestTheorem1GreatDivideDefinitionsEquivalentProperty(t *testing.T) {
	// Theorem 1: ÷*1 (group loop), ÷*2 (Demolombe), ÷*3 (Todd) are
	// equivalent; the hash operator must agree as well.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		r1, r2 := randDatabase(rng, rng.Intn(30), rng.Intn(12), 4, 5, 3)
		ref := GroupLoopGreatDivide(r1, r2)
		for _, algo := range GreatAlgorithms() {
			got := GreatDivideWith(algo, r1, r2)
			if !got.EquivalentTo(ref) {
				t.Fatalf("trial %d: %s disagrees with group-loop:\nr1:\n%v\nr2:\n%v\ngroup-loop:\n%v\n%s:\n%v",
					trial, algo, r1, r2, ref, algo, got)
			}
		}
	}
}

func TestTheorem2NonCommutativity(t *testing.T) {
	// Theorem 2: r2 ÷ r1 is schema-invalid when r1 ÷ r2 is valid
	// (the divisor must have strictly fewer attributes).
	r1sch, r2sch := schema.New("a", "b"), schema.New("b")
	if _, err := SmallSplit(r1sch, r2sch); err != nil {
		t.Fatalf("forward direction should be valid: %v", err)
	}
	if _, err := SmallSplit(r2sch, r1sch); err == nil {
		t.Error("r2 ÷ r1 must be an invalid expression")
	}
}

func TestTheorem3NonAssociativity(t *testing.T) {
	// Theorem 3: schemas cannot satisfy both r1 ÷ (r2 ÷ r3) and
	// (r1 ÷ r2) ÷ r3 with equal results in general. We exhibit the
	// schema-level contradiction: with A1 ⊇ A2 ⊇ A3 the left form
	// has schema A1 − (A2 − A3) and the right A1 − A2 − A3, which
	// differ whenever A3 ∩ A2 ≠ ∅.
	a1 := schema.New("x", "y", "z")
	a2 := schema.New("y", "z")
	a3 := schema.New("z")
	inner, err := SmallSplit(a2, a3) // r2 ÷ r3 : schema {y}
	if err != nil {
		t.Fatal(err)
	}
	leftOuter, err := SmallSplit(a1, inner.A) // r1 ÷ (r2 ÷ r3) : schema {x, z}
	if err != nil {
		t.Fatal(err)
	}
	right1, err := SmallSplit(a1, a2) // r1 ÷ r2 : schema {x}
	if err != nil {
		t.Fatal(err)
	}
	// (r1 ÷ r2) ÷ r3 is invalid: {z} is not a subset of {x}.
	if _, err := SmallSplit(right1.A, a3); err == nil {
		t.Error("(r1 ÷ r2) ÷ r3 should be schema-invalid here")
	}
	if leftOuter.A.Equal(right1.A) {
		t.Error("result schemas must differ, illustrating non-associativity")
	}
}

func TestGreatDivideDegeneratesToSmallDivide(t *testing.T) {
	// Darwen & Date: with a single divisor group, great divide's
	// quotient restricted to A equals the small divide by that group.
	r1 := fig1Dividend()
	r2 := relation.Ints([]string{"b", "c"}, [][]int64{{1, 7}, {3, 7}})
	small := Divide(r1, relation.Ints([]string{"b"}, [][]int64{{1}, {3}}))
	great := GreatDivide(r1, r2)
	if great.Len() != small.Len() {
		t.Fatalf("degenerate great divide size %d vs small %d", great.Len(), small.Len())
	}
	for _, q := range small.Tuples() {
		if !great.Contains(q.Concat(relation.Tuple{value.Int(7)})) {
			t.Errorf("quotient %v missing from great divide", q)
		}
	}
}
