package division

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"divlaws/internal/hashkey"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// These tests degrade every hashkey table to a handful of distinct
// hash values (SetMaskForTesting), so almost every probe walks a
// collision chain, and assert that the hash-based operators still
// agree with independent string-keyed reference implementations that
// use nothing but Go maps and Tuple.Key. That proves the collision
// verification — not hash uniqueness — carries the correctness.

// keySet renders a relation as its sorted set of injective tuple
// keys, an oracle independent of hash-based Equal/Contains.
func keySet(r *relation.Relation) string {
	keys := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		keys = append(keys, t.Key())
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// stringKeyDivide is the reference small divide: image sets held in
// Go maps keyed on Tuple.Key strings. It returns the quotient's key
// set.
func stringKeyDivide(r1, r2 *relation.Relation) string {
	split := mustSmallSplit(r1, r2)
	aPos := r1.Schema().Positions(split.A.Attrs())
	bPos := r1.Schema().Positions(split.B.Attrs())
	bOrder := r2.Schema().Positions(split.B.Attrs())

	divisor := map[string]bool{}
	for _, d := range r2.Tuples() {
		divisor[d.Project(bOrder).Key()] = true
	}
	images := map[string]map[string]bool{}
	for _, t := range r1.Tuples() {
		ak := t.Project(aPos).Key()
		if images[ak] == nil {
			images[ak] = map[string]bool{}
		}
		images[ak][t.Project(bPos).Key()] = true
	}
	var quotient []string
	for ak, img := range images {
		all := true
		for bk := range divisor {
			if !img[bk] {
				all = false
				break
			}
		}
		if all {
			quotient = append(quotient, ak)
		}
	}
	sort.Strings(quotient)
	return strings.Join(quotient, "|")
}

// stringKeyGreatDivide is the reference great divide over string
// keys: per divisor group (C key), check set containment of its B
// set in each dividend image.
func stringKeyGreatDivide(r1, r2 *relation.Relation) string {
	split := mustGreatSplit(r1, r2)
	aPos := r1.Schema().Positions(split.A.Attrs())
	b1Pos := r1.Schema().Positions(split.B.Attrs())
	b2Pos := r2.Schema().Positions(split.B.Attrs())
	cPos := r2.Schema().Positions(split.C.Attrs())

	groups := map[string]map[string]bool{}
	for _, t := range r2.Tuples() {
		ck := t.Project(cPos).Key()
		if groups[ck] == nil {
			groups[ck] = map[string]bool{}
		}
		groups[ck][t.Project(b2Pos).Key()] = true
	}
	images := map[string]map[string]bool{}
	for _, t := range r1.Tuples() {
		ak := t.Project(aPos).Key()
		if images[ak] == nil {
			images[ak] = map[string]bool{}
		}
		images[ak][t.Project(b1Pos).Key()] = true
	}
	var quotient []string
	for ak, img := range images {
		for ck, bs := range groups {
			all := true
			for bk := range bs {
				if !img[bk] {
					all = false
					break
				}
			}
			if all {
				quotient = append(quotient, ak+ck)
			}
		}
	}
	sort.Strings(quotient)
	return strings.Join(quotient, "|")
}

func TestSmallDivideUnderForcedCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x7) // 8 distinct hashes total
	defer restore()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		r1, r2full := randDatabase(rng, 1+rng.Intn(40), 1+rng.Intn(8), 5, 6, 1)
		r2 := relation.New(schema.New("b"))
		for _, tp := range r2full.Tuples() {
			r2.Insert(tp[:1])
		}
		if r1.Empty() || r2.Empty() {
			continue
		}
		want := stringKeyDivide(r1, r2)
		for _, algo := range Algorithms() {
			got := keySet(DivideWith(algo, r1, r2))
			if got != want {
				t.Fatalf("trial %d: %s quotient %q, reference %q\nr1=%v\nr2=%v",
					trial, algo, got, want, r1, r2)
			}
		}
	}
}

func TestGreatDivideUnderForcedCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x7)
	defer restore()
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		r1, r2 := randDatabase(rng, 1+rng.Intn(40), 1+rng.Intn(12), 4, 5, 3)
		if r1.Empty() || r2.Empty() {
			continue
		}
		want := stringKeyGreatDivide(r1, r2)
		for _, algo := range GreatAlgorithms() {
			got := keySet(GreatDivideWith(algo, r1, r2))
			if got != want {
				t.Fatalf("trial %d: %s quotient %q, reference %q\nr1=%v\nr2=%v",
					trial, algo, got, want, r1, r2)
			}
		}
	}
}

// TestDivisionUnderForcedCollisionsStringKeys re-runs the masked
// sweeps with decorated string attributes of varying length, so every
// collision-chain probe in both division families goes through the
// word-at-a-time string hash kernel (chunked bodies and all tail
// lengths) instead of the single-mix integer path.
func TestDivisionUnderForcedCollisionsStringKeys(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x7)
	defer restore()
	rng := rand.New(rand.NewSource(103))
	sv := func(prefix string, n int) value.Value {
		return value.String(prefix + strings.Repeat("x", n%9) + "-" + strconv.Itoa(n))
	}
	for trial := 0; trial < 60; trial++ {
		r1 := relation.New(schema.New("a", "b"))
		r2 := relation.New(schema.New("b"))
		r2g := relation.New(schema.New("b", "c"))
		for i := 0; i < 1+rng.Intn(5); i++ {
			r2.Insert(relation.Tuple{sv("part-", rng.Intn(8))})
		}
		for i := 0; i < 2+rng.Intn(10); i++ {
			r2g.Insert(relation.Tuple{sv("part-", rng.Intn(8)), sv("color-", rng.Intn(3))})
		}
		for i := 0; i < 5+rng.Intn(40); i++ {
			r1.Insert(relation.Tuple{sv("supplier-", rng.Intn(8)), sv("part-", rng.Intn(8))})
		}
		want := stringKeyDivide(r1, r2)
		for _, algo := range Algorithms() {
			if got := keySet(DivideWith(algo, r1, r2)); got != want {
				t.Fatalf("trial %d: %s quotient %q, reference %q\nr1=%v\nr2=%v",
					trial, algo, got, want, r1, r2)
			}
		}
		wantG := stringKeyGreatDivide(r1, r2g)
		for _, algo := range GreatAlgorithms() {
			if got := keySet(GreatDivideWith(algo, r1, r2g)); got != wantG {
				t.Fatalf("trial %d: great %s quotient %q, reference %q\nr1=%v\nr2=%v",
					trial, algo, got, wantG, r1, r2g)
			}
		}
	}
}

// TestStreamingStatesAbsorbDuplicates feeds raw duplicate-laden
// streams (no pre-dedup relation) into the divide states under
// forced collisions, as the streaming iterators do.
func TestStreamingStatesAbsorbDuplicates(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x3)
	defer restore()
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 100; trial++ {
		r1, r2 := randDatabase(rng, 1+rng.Intn(30), 1+rng.Intn(10), 4, 5, 3)
		if r1.Empty() || r2.Empty() {
			continue
		}
		st, err := NewGreatDivideState(r1.Schema(), r2.Schema())
		if err != nil {
			t.Fatal(err)
		}
		// Feed every tuple several times: the state must dedup.
		for rep := 0; rep < 3; rep++ {
			for _, tp := range r2.Tuples() {
				st.AddDivisor(tp)
			}
		}
		for rep := 0; rep < 3; rep++ {
			for _, tp := range r1.Tuples() {
				st.AddDividend(tp)
			}
		}
		if got, want := keySet(st.Result()), stringKeyGreatDivide(r1, r2); got != want {
			t.Fatalf("trial %d: streamed great divide %q, reference %q", trial, got, want)
		}

		r2small := relation.New(schema.New("b"))
		for _, tp := range r2.Tuples() {
			r2small.Insert(tp[:1])
		}
		sst, err := NewDivideState(r1.Schema(), r2small.Schema())
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			for _, tp := range r2small.Tuples() {
				sst.AddDivisor(tp)
			}
		}
		for rep := 0; rep < 3; rep++ {
			for _, tp := range r1.Tuples() {
				sst.AddDividend(tp)
			}
		}
		if got, want := keySet(sst.Result()), stringKeyDivide(r1, r2small); got != want {
			t.Fatalf("trial %d: streamed small divide %q, reference %q", trial, got, want)
		}
	}
}

// FuzzDivideUnderCollisions is the fuzz entry point: arbitrary byte
// strings become small dividend/divisor pairs, every algorithm must
// match the string-keyed reference while hashes are masked to 3 bits.
func FuzzDivideUnderCollisions(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, []byte{1, 2})
	f.Add([]byte{0, 0, 0, 1, 1, 0, 1, 1}, []byte{0, 1})
	f.Add([]byte{5, 4, 3, 2, 1, 0}, []byte{})
	f.Fuzz(func(t *testing.T, dividend, divisor []byte) {
		restore := hashkey.SetMaskForTesting(0x7)
		defer restore()
		r1, r2 := relFromBytes(dividend, divisor)
		if r1.Empty() || r2.Empty() {
			return
		}
		want := stringKeyDivide(r1, r2)
		for _, algo := range Algorithms() {
			if got := keySet(DivideWith(algo, r1, r2)); got != want {
				t.Fatalf("%s quotient %q, reference %q", algo, got, want)
			}
		}
	})
}

// TestRelationDedupUnderForcedCollisions checks the set-semantics
// core itself: Insert/Contains against a map[string] oracle.
func TestRelationDedupUnderForcedCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x1) // two hash values only
	defer restore()
	rng := rand.New(rand.NewSource(107))
	r := relation.New(schema.New("a", "b"))
	ref := map[string]bool{}
	for i := 0; i < 500; i++ {
		tp := relation.Tuple{
			value.Int(int64(rng.Intn(20))),
			value.String(string(rune('a' + rng.Intn(5)))),
		}
		k := tp.Key()
		if got, want := r.Insert(tp), !ref[k]; got != want {
			t.Fatalf("insert %d: Insert=%v, want %v", i, got, want)
		}
		ref[k] = true
		if !r.Contains(tp) || !r.ContainsKey(k) {
			t.Fatalf("insert %d: tuple not found after insert", i)
		}
	}
	if r.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(ref))
	}
	if r.Contains(relation.Tuple{value.Int(999), value.String("zz")}) {
		t.Error("Contains invents a tuple")
	}
}
