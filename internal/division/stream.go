package division

import (
	"divlaws/internal/hashkey"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// DivideState incrementally computes the small divide r1 ÷ r2 from
// streamed tuples: feed every divisor tuple with AddDivisor, then
// every dividend tuple with AddDividend, then call Result. It is
// Graefe's hash-division turned inside out so physical operators can
// consume their child iterators directly, with no intermediate
// relation materialization and no per-tuple key allocations —
// duplicate inputs are absorbed by the bit-numbering table and the
// candidate bitmaps, so callers need not pre-deduplicate.
type DivideState struct {
	split      Split
	aPos, bPos []int // dividend positions
	bOrder     []int // divisor positions

	divisor relation.TupleIndex // B value -> bit index
	cands   relation.TupleIndex // A value -> candidate id
	bits    []hashkey.Bitset    // per candidate: divisor bits covered
	seen    []int               // per candidate: count of set bits
	sealed  bool
	bytes   int64 // approximate live footprint, for memory budgets
}

// indexEntryOverhead approximates the per-entry bookkeeping of a
// TupleIndex beyond the retained tuple itself (keys-slice slot, id).
// The hash-table backing arrays are accounted exactly through
// TableBytes in Bytes instead, so budget charges jump when a table
// doubles rather than drifting behind its real capacity — and this
// constant deliberately no longer estimates table slots.
const indexEntryOverhead = 24

// projFootprint approximates the heap bytes of t's projection onto
// pos without materializing it.
func projFootprint(t relation.Tuple, pos []int) int64 {
	n := int64(24) // slice header
	for _, p := range pos {
		n += t[p].Footprint()
	}
	return n
}

// Bytes approximates the state's live heap footprint: retained key
// tuples, candidate bitmaps, and counters. Operators running under a
// memory budget charge its growth after every Add.
func (s *DivideState) Bytes() int64 {
	return s.bytes + s.divisor.TableBytes() + s.cands.TableBytes()
}

// NewDivideState validates the schemas and returns an empty state.
func NewDivideState(dividend, divisor schema.Schema) (*DivideState, error) {
	split, err := SmallSplit(dividend, divisor)
	if err != nil {
		return nil, err
	}
	return &DivideState{
		split:  split,
		aPos:   dividend.Positions(split.A.Attrs()),
		bPos:   dividend.Positions(split.B.Attrs()),
		bOrder: divisor.Positions(split.B.Attrs()),
	}, nil
}

// AddDivisor feeds one divisor tuple. All divisor tuples must be fed
// before the first dividend tuple; duplicates are fine.
func (s *DivideState) AddDivisor(t relation.Tuple) {
	if s.sealed {
		panic("division: AddDivisor after AddDividend")
	}
	if _, created := s.divisor.IDProj(t, s.bOrder); created {
		s.bytes += projFootprint(t, s.bOrder) + indexEntryOverhead
	}
}

// AddDividend feeds one dividend tuple. The state does not retain t.
func (s *DivideState) AddDividend(t relation.Tuple) {
	s.sealed = true
	n := s.divisor.Len()
	if n == 0 {
		// Empty divisor: every dividend group qualifies; just collect
		// the distinct quotient candidates.
		if _, created := s.cands.IDProj(t, s.aPos); created {
			s.bytes += projFootprint(t, s.aPos) + indexEntryOverhead
		}
		return
	}
	bit := s.divisor.LookupProj(t, s.bPos)
	if bit < 0 {
		return // matches no divisor tuple
	}
	id, created := s.cands.IDProj(t, s.aPos)
	if created {
		s.bits = append(s.bits, hashkey.NewBitset(n))
		s.seen = append(s.seen, 0)
		s.bytes += projFootprint(t, s.aPos) + indexEntryOverhead + int64(n/8) + 32
	}
	if s.bits[id].Set(bit) {
		s.seen[id]++
	}
}

// Result returns the quotient relation. Candidates are emitted in
// first-seen order, matching the materialized HashDivide.
func (s *DivideState) Result() *relation.Relation {
	out := relation.New(s.split.A)
	s.EachResult(func(t relation.Tuple) error {
		out.InsertOwned(t)
		return nil
	})
	return out
}

// EachResult streams the quotient tuples to fn in first-seen
// candidate order, without materializing a relation — the emission
// path of the streaming exchange operators. Tuples are owned by the
// state and must not be mutated. fn's first error stops the scan and
// is returned.
func (s *DivideState) EachResult(fn func(relation.Tuple) error) error {
	n := s.divisor.Len()
	for id, a := range s.cands.Keys() {
		if n == 0 || s.seen[id] == n {
			if err := fn(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// GreatDivideState incrementally computes the great divide r1 ÷* r2
// from streamed tuples, mirroring DivideState for the counting
// set-containment division: divisor first, then dividend, then
// Result. Duplicate input tuples are absorbed (the divisor side by a
// full-tuple dedup, the dividend side by per-candidate B bitmaps).
type GreatDivideState struct {
	split       Split
	aPos, b1Pos []int // dividend positions
	b2Pos, cPos []int // divisor positions

	divisorSeen relation.TupleIndex // full divisor tuples (dedup)
	bIx         relation.TupleIndex // distinct B values
	gIx         relation.TupleIndex // distinct C groups
	members     [][]int32           // per B id: divisor groups containing it
	sizes       []int32             // per group: distinct B count
	cands       relation.TupleIndex // distinct A values
	cBits       []hashkey.Bitset    // per candidate: B ids covered
	hits        [][]int32           // per candidate: per-group hit count
	sealed      bool
	bytes       int64 // approximate live footprint, for memory budgets
}

// Bytes approximates the state's live heap footprint; see
// DivideState.Bytes.
func (s *GreatDivideState) Bytes() int64 {
	return s.bytes + s.divisorSeen.TableBytes() + s.bIx.TableBytes() +
		s.gIx.TableBytes() + s.cands.TableBytes()
}

// NewGreatDivideState validates the schemas and returns an empty
// state.
func NewGreatDivideState(dividend, divisor schema.Schema) (*GreatDivideState, error) {
	split, err := GreatSplit(dividend, divisor)
	if err != nil {
		return nil, err
	}
	return &GreatDivideState{
		split: split,
		aPos:  dividend.Positions(split.A.Attrs()),
		b1Pos: dividend.Positions(split.B.Attrs()),
		b2Pos: divisor.Positions(split.B.Attrs()),
		cPos:  divisor.Positions(split.C.Attrs()),
	}, nil
}

// AddDivisor feeds one divisor tuple; the state retains it only when
// it is new. All divisor tuples must precede the first dividend
// tuple.
func (s *GreatDivideState) AddDivisor(t relation.Tuple) {
	if s.sealed {
		panic("division: AddDivisor after AddDividend")
	}
	if _, created := s.divisorSeen.ID(t); !created {
		return
	}
	s.bytes += t.Footprint() + indexEntryOverhead
	bID, bNew := s.bIx.IDProj(t, s.b2Pos)
	if bNew {
		s.members = append(s.members, nil)
		s.bytes += projFootprint(t, s.b2Pos) + indexEntryOverhead + 24
	}
	gID, gNew := s.gIx.IDProj(t, s.cPos)
	if gNew {
		s.sizes = append(s.sizes, 0)
		s.bytes += projFootprint(t, s.cPos) + indexEntryOverhead + 4
	}
	s.sizes[gID]++
	s.members[bID] = append(s.members[bID], int32(gID))
	s.bytes += 4
}

// AddDividend feeds one dividend tuple. The state does not retain t.
func (s *GreatDivideState) AddDividend(t relation.Tuple) {
	s.sealed = true
	bID := s.bIx.LookupProj(t, s.b1Pos)
	if bID < 0 {
		return // B value absent from every divisor group
	}
	id, created := s.cands.IDProj(t, s.aPos)
	if created {
		s.cBits = append(s.cBits, hashkey.NewBitset(s.bIx.Len()))
		s.hits = append(s.hits, make([]int32, s.gIx.Len()))
		s.bytes += projFootprint(t, s.aPos) + indexEntryOverhead +
			int64(s.bIx.Len()/8) + 32 + int64(s.gIx.Len())*4 + 24
	}
	// Count each distinct B value once per candidate, even if the
	// stream repeats (A, B) pairs.
	if s.cBits[id].Set(bID) {
		hits := s.hits[id]
		for _, g := range s.members[bID] {
			hits[g]++
		}
	}
}

// Result returns the quotient relation over A ∪ C: a pair (a, c)
// qualifies when a's group covered every distinct B value of divisor
// group c.
func (s *GreatDivideState) Result() *relation.Relation {
	out := relation.New(s.split.A.Concat(s.split.C))
	s.EachResult(func(t relation.Tuple) error {
		out.InsertOwned(t)
		return nil
	})
	return out
}

// EachResult streams the quotient tuples (a, c) to fn in first-seen
// candidate order; see DivideState.EachResult. Each emitted tuple is
// freshly concatenated, so fn may retain it.
func (s *GreatDivideState) EachResult(fn func(relation.Tuple) error) error {
	for id, a := range s.cands.Keys() {
		hits := s.hits[id]
		for g, size := range s.sizes {
			if hits[g] == size {
				if err := fn(a.Concat(s.gIx.Key(g))); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
