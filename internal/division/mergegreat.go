package division

import (
	"sort"

	"divlaws/internal/relation"
)

// MergeGreatDivide is a sort-based set-containment division in the
// style of the merge-sort division of Graefe & Cole lifted to the
// many-to-many case (cf. Rantzau et al. [36]): both inputs are
// sorted — the dividend on (A, B), the divisor on (C, B) — and each
// dividend group is merged against each divisor group. Sorting makes
// group boundaries free and the per-pair containment test a linear
// merge, at the price of the two sorts; on inputs already grouped on
// A and C the sorts are no-ops in a real system (the paper's
// "group-preserving" argument).
func MergeGreatDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustGreatSplit(r1, r2)
	aPos := r1.Schema().Positions(split.A.Attrs())
	b1Pos := r1.Schema().Positions(split.B.Attrs())
	b2Pos := r2.Schema().Positions(split.B.Attrs())
	cPos := r2.Schema().Positions(split.C.Attrs())

	// Dividend rows sorted by (A, B).
	dividend := make([]sortedRow, 0, r1.Len())
	for _, t := range r1.Tuples() {
		dividend = append(dividend, sortedRow{key: t.Project(aPos), b: t.Project(b1Pos)})
	}
	sort.Slice(dividend, func(i, j int) bool {
		if c := dividend[i].key.Compare(dividend[j].key); c != 0 {
			return c < 0
		}
		return dividend[i].b.Compare(dividend[j].b) < 0
	})

	// Divisor rows sorted by (C, B).
	divisor := make([]sortedRow, 0, r2.Len())
	for _, t := range r2.Tuples() {
		divisor = append(divisor, sortedRow{key: t.Project(cPos), b: t.Project(b2Pos)})
	}
	sort.Slice(divisor, func(i, j int) bool {
		if c := divisor[i].key.Compare(divisor[j].key); c != 0 {
			return c < 0
		}
		return divisor[i].b.Compare(divisor[j].b) < 0
	})

	// Divisor group boundaries.
	type span struct{ lo, hi int } // divisor[lo:hi] is one C group
	var groups []span
	for i := 0; i < len(divisor); {
		j := i + 1
		for j < len(divisor) && divisor[j].key.Compare(divisor[i].key) == 0 {
			j++
		}
		groups = append(groups, span{lo: i, hi: j})
		i = j
	}

	out := relation.New(split.A.Concat(split.C))
	for i := 0; i < len(dividend); {
		j := i + 1
		for j < len(dividend) && dividend[j].key.Compare(dividend[i].key) == 0 {
			j++
		}
		// Merge the group dividend[i:j] against every divisor group.
		for _, g := range groups {
			if containsSortedRows(dividend[i:j], divisor[g.lo:g.hi]) {
				out.Insert(dividend[i].key.Concat(divisor[g.lo].key))
			}
		}
		i = j
	}
	return out
}

// sortedRow pairs a group key with one element value for the
// sort-based merge.
type sortedRow struct{ key, b relation.Tuple }

// containsSortedRows reports whether the B values of group (sorted)
// contain all B values of want (sorted): a single linear merge.
func containsSortedRows(group, want []sortedRow) bool {
	gi := 0
	for _, w := range want {
		for gi < len(group) && group[gi].b.Compare(w.b) < 0 {
			gi++
		}
		if gi >= len(group) || group[gi].b.Compare(w.b) != 0 {
			return false
		}
		gi++
	}
	return true
}
