package division_test

import (
	"fmt"

	"divlaws/internal/division"
	"divlaws/internal/relation"
)

// ExampleDivide reproduces the paper's Figure 1: which groups of the
// dividend contain both divisor elements 1 and 3?
func ExampleDivide() {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	fmt.Println(division.Divide(r1, r2))
	// Output:
	// a
	// 2
	// 3
}

// ExampleGreatDivide reproduces Figure 2: the divisor has two groups
// keyed by c, and each dividend group is tested against each.
func ExampleGreatDivide() {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
	})
	r2 := relation.Ints([]string{"b", "c"}, [][]int64{
		{1, 1}, {2, 1}, {4, 1},
		{1, 2}, {3, 2},
	})
	fmt.Println(division.GreatDivide(r1, r2))
	// Output:
	// a c
	// 2 1
	// 2 2
	// 3 2
}

// ExampleDivideWith picks a specific physical algorithm; all six
// compute the same quotient.
func ExampleDivideWith() {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}, {2, 1}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {2}})
	q := division.DivideWith(division.AlgoMergeSort, r1, r2)
	fmt.Println(q)
	// Output:
	// a
	// 1
}
