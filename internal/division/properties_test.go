package division

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divlaws/internal/algebra"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// relFromBytes deterministically builds a dividend and divisor from
// fuzz bytes, giving testing/quick a structured input space.
func relFromBytes(dividend, divisor []byte) (r1, r2 *relation.Relation) {
	r1 = relation.New(schema.New("a", "b"))
	for i := 0; i+1 < len(dividend); i += 2 {
		r1.Insert(relation.Tuple{
			value.Int(int64(dividend[i] % 6)),
			value.Int(int64(dividend[i+1] % 6)),
		})
	}
	r2 = relation.New(schema.New("b"))
	for _, b := range divisor {
		r2.Insert(relation.Tuple{value.Int(int64(b % 6))})
	}
	return r1, r2
}

func TestQuotientIsSubsetOfCandidates(t *testing.T) {
	// r1 ÷ r2 ⊆ πA(r1), always.
	f := func(dividend, divisor []byte) bool {
		r1, r2 := relFromBytes(dividend, divisor)
		if r2.Empty() {
			return true
		}
		q := Divide(r1, r2)
		candidates := algebra.Project(r1, "a")
		for _, tp := range q.Tuples() {
			if !candidates.Contains(tp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuotientTimesDivisorWithinDividend(t *testing.T) {
	// (r1 ÷ r2) × r2 ⊆ r1: every quotient group contains the whole
	// divisor.
	f := func(dividend, divisor []byte) bool {
		r1, r2 := relFromBytes(dividend, divisor)
		if r2.Empty() {
			return true
		}
		q := Divide(r1, r2)
		back := algebra.Product(q, r2)
		for _, tp := range back.Tuples() {
			if !r1.Contains(tp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuotientIsMaximal(t *testing.T) {
	// The quotient is the LARGEST x with x × r2 ⊆ r1: every excluded
	// candidate a must be missing some divisor element.
	f := func(dividend, divisor []byte) bool {
		r1, r2 := relFromBytes(dividend, divisor)
		if r2.Empty() {
			return true
		}
		q := Divide(r1, r2)
		for _, cand := range algebra.Project(r1, "a").Tuples() {
			if q.Contains(cand) {
				continue
			}
			covered := true
			for _, d := range r2.Tuples() {
				if !r1.Contains(cand.Concat(d)) {
					covered = false
					break
				}
			}
			if covered {
				return false // excluded but fully covered: not maximal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDivideAntiMonotoneInDivisor(t *testing.T) {
	// r2 ⊆ r2' implies r1 ÷ r2 ⊇ r1 ÷ r2'.
	f := func(dividend, divisor, extra []byte) bool {
		r1, r2 := relFromBytes(dividend, divisor)
		bigger := r2.Clone()
		for _, b := range extra {
			bigger.Insert(relation.Tuple{value.Int(int64(b % 6))})
		}
		qSmall := Divide(r1, r2)
		qBig := Divide(r1, bigger)
		for _, tp := range qBig.Tuples() {
			if !qSmall.Contains(tp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDivideMonotoneInDividend(t *testing.T) {
	// r1 ⊆ r1' implies r1 ÷ r2 ⊆ r1' ÷ r2.
	f := func(dividend, divisor, extra []byte) bool {
		r1, r2 := relFromBytes(dividend, divisor)
		bigger := r1.Clone()
		for i := 0; i+1 < len(extra); i += 2 {
			bigger.Insert(relation.Tuple{
				value.Int(int64(extra[i] % 6)),
				value.Int(int64(extra[i+1] % 6)),
			})
		}
		qSmall := Divide(r1, r2)
		qBig := Divide(bigger, r2)
		for _, tp := range qSmall.Tuples() {
			if !qBig.Contains(tp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreatDivideRestrictionIsSmallDivide(t *testing.T) {
	// For each divisor group c, σ_{c}(r1 ÷* r2) projected to A equals
	// r1 ÷ πB(σ_{C=c}(r2)) — Definition 4 itself, verified against
	// the hash operator.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		r1, r2 := randDatabase(rng, rng.Intn(30), 1+rng.Intn(12), 4, 5, 3)
		if r2.Empty() {
			continue
		}
		great := HashGreatDivide(r1, r2)
		for _, c := range algebra.Project(r2, "c").Tuples() {
			group := relation.New(schema.New("b"))
			for _, tp := range r2.Tuples() {
				if tp[1].Equal(c[0]) {
					group.Insert(tp[:1])
				}
			}
			small := Divide(r1, group)
			// Collect the great-divide rows for this c.
			fromGreat := relation.New(schema.New("a"))
			for _, tp := range great.Tuples() {
				if tp[1].Equal(c[0]) {
					fromGreat.Insert(tp[:1])
				}
			}
			if !small.Equal(fromGreat) {
				t.Fatalf("trial %d group %v: small=%v greatslice=%v", trial, c, small, fromGreat)
			}
		}
	}
}

func TestGreatDivideQuotientCountBounds(t *testing.T) {
	// |r1 ÷* r2| ≤ |πA(r1)| · |πC(r2)|.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		r1, r2 := randDatabase(rng, rng.Intn(40), rng.Intn(15), 5, 5, 4)
		if r1.Empty() || r2.Empty() {
			continue
		}
		q := GreatDivide(r1, r2)
		bound := algebra.Project(r1, "a").Len() * algebra.Project(r2, "c").Len()
		if q.Len() > bound {
			t.Fatalf("quotient %d exceeds bound %d", q.Len(), bound)
		}
	}
}
