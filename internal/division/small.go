package division

import (
	"sort"

	"divlaws/internal/algebra"
	"divlaws/internal/relation"
)

// NaiveDivide evaluates Codd's definition directly (Definition 1):
// a dividend group qualifies iff its image set under r1 contains the
// divisor. O(|r1| · |r2|) with hashed image sets.
func NaiveDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustSmallSplit(r1, r2)
	aPos := r1.Schema().Positions(split.A.Attrs())
	bPos := r1.Schema().Positions(split.B.Attrs())
	bOrder := r2.Schema().Positions(split.B.Attrs())

	// Image sets: i_r1(a) = { b | (a,b) ∈ r1 }.
	type group struct {
		a     relation.Tuple
		image map[string]struct{}
	}
	groups := make(map[string]*group)
	var order []string
	for _, t := range r1.Tuples() {
		at := t.Project(aPos)
		k := at.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{a: at, image: make(map[string]struct{})}
			groups[k] = g
			order = append(order, k)
		}
		g.image[t.Project(bPos).Key()] = struct{}{}
	}

	out := relation.New(split.A)
	for _, k := range order {
		g := groups[k]
		contains := true
		for _, d := range r2.Tuples() {
			if _, ok := g.image[d.Project(bOrder).Key()]; !ok {
				contains = false
				break
			}
		}
		if contains {
			out.Insert(g.a)
		}
	}
	return out
}

// HealyDivide evaluates Definition 2:
//
//	r1 ÷ r2 = πA(r1) − πA((πA(r1) × r2) − r1)
//
// This is the pure-algebra simulation whose intermediate result
// πA(r1) × r2 is quadratic — the behaviour Leinders & Van den
// Bussche proved unavoidable for any basic-algebra expression [25].
func HealyDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustSmallSplit(r1, r2)
	piA := algebra.Project(r1, split.A.Attrs()...)
	candidates := algebra.Product(piA, r2)
	// Align the dividend's columns to A then B before the difference.
	r1Aligned := r1.Reorder(candidates.Schema().Attrs())
	missing := algebra.Diff(candidates, r1Aligned)
	return algebra.Diff(piA, algebra.Project(missing, split.A.Attrs()...))
}

// MaierDivide evaluates Definition 3:
//
//	r1 ÷ r2 = ⋂_{t∈r2} πA(σ_{B=t}(r1))
//
// An empty divisor yields πA(r1), the intersection over an empty
// index set within the quotient-candidate universe (consistent with
// the other definitions).
func MaierDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustSmallSplit(r1, r2)
	aPos := r1.Schema().Positions(split.A.Attrs())
	bPos := r1.Schema().Positions(split.B.Attrs())
	bOrder := r2.Schema().Positions(split.B.Attrs())

	var result *relation.Relation
	for _, d := range r2.Tuples() {
		want := d.Project(bOrder).Key()
		sel := relation.New(split.A)
		for _, t := range r1.Tuples() {
			if t.Project(bPos).Key() == want {
				sel.Insert(t.Project(aPos))
			}
		}
		if result == nil {
			result = sel
		} else {
			result = algebra.Intersect(result, sel)
		}
		if result.Empty() {
			break // intersection can only shrink
		}
	}
	if result == nil {
		return algebra.Project(r1, split.A.Attrs()...)
	}
	return result
}

// HashDivide is Graefe's hash-division: the divisor is loaded into a
// hash table assigning each tuple a bit position; a single scan of
// the dividend sets bits in a per-group bitmap; groups with all bits
// set are quotients. O(|r1| + |r2|) expected time, with no per-tuple
// key allocations (see DivideState, which it wraps).
func HashDivide(r1, r2 *relation.Relation) *relation.Relation {
	st, err := NewDivideState(r1.Schema(), r2.Schema())
	if err != nil {
		panic(err)
	}
	for _, d := range r2.Tuples() {
		st.AddDivisor(d)
	}
	for _, t := range r1.Tuples() {
		st.AddDividend(t)
	}
	return st.Result()
}

// MergeSortDivide sorts the dividend on (A, B) and the divisor on B,
// then merges each dividend group against the sorted divisor in one
// pass per group — the merge-sort division of Graefe & Cole.
func MergeSortDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustSmallSplit(r1, r2)
	aPos := r1.Schema().Positions(split.A.Attrs())
	bPos := r1.Schema().Positions(split.B.Attrs())
	bOrder := r2.Schema().Positions(split.B.Attrs())

	// Sorted divisor B-tuples (deduplicated by set semantics already).
	divisor := make([]relation.Tuple, 0, r2.Len())
	for _, d := range r2.Tuples() {
		divisor = append(divisor, d.Project(bOrder))
	}
	sort.Slice(divisor, func(i, j int) bool { return divisor[i].Compare(divisor[j]) < 0 })

	// Dividend sorted by (A, B).
	type row struct{ a, b relation.Tuple }
	rows := make([]row, 0, r1.Len())
	for _, t := range r1.Tuples() {
		rows = append(rows, row{a: t.Project(aPos), b: t.Project(bPos)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if c := rows[i].a.Compare(rows[j].a); c != 0 {
			return c < 0
		}
		return rows[i].b.Compare(rows[j].b) < 0
	})

	out := relation.New(split.A)
	if len(divisor) == 0 {
		for _, r := range rows {
			out.Insert(r.a)
		}
		return out
	}
	i := 0
	for i < len(rows) {
		// Scan one dividend group, merging with the divisor list.
		groupA := rows[i].a
		d := 0
		for i < len(rows) && rows[i].a.Compare(groupA) == 0 {
			if d < len(divisor) {
				switch c := rows[i].b.Compare(divisor[d]); {
				case c == 0:
					d++
				case c > 0:
					// Divisor element missing from the group; group
					// cannot qualify, but we must still consume it.
					// (No advance of d: divisor[d] was skipped.)
				}
			}
			i++
		}
		if d == len(divisor) {
			out.Insert(groupA)
		}
	}
	return out
}

// CountDivide is the indirect counting approach (paper footnote 1,
// after Graefe & Cole): semi-join the dividend with the divisor,
// count matching B values per group, and keep groups whose count
// equals |r2|. Correct because relations are sets.
func CountDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustSmallSplit(r1, r2)
	if r2.Empty() {
		return algebra.Project(r1, split.A.Attrs()...)
	}
	matched := algebra.SemiJoin(r1, r2)
	counted := algebra.Group(matched, split.A.Attrs(),
		[]algebra.AggSpec{{Func: algebra.Count, As: "·count"}})
	out := relation.New(split.A)
	n := int64(r2.Len())
	last := counted.Schema().Len() - 1
	aPos := make([]int, split.A.Len())
	for i := range aPos {
		aPos[i] = i
	}
	for _, t := range counted.Tuples() {
		if t[last].AsInt() == n {
			out.Insert(t.Project(aPos))
		}
	}
	return out
}
