// Package division implements the paper's two division operators as
// first-class physical algorithms:
//
//   - small divide r1 ÷ r2 (Codd's relational division, §2.1), with
//     the three equivalent logical definitions (Codd, Healy, Maier)
//     plus the efficient special-purpose algorithms the paper cites:
//     hash-division, merge-sort division, and counting division
//     (Graefe; Graefe & Cole; Rantzau et al.).
//
//   - great divide r1 ÷* r2 (§2.2), with the three equivalent
//     definitions of Theorem 1 — set containment division (Def. 4),
//     Demolombe's generalized division (Def. 5), Todd's great divide
//     (Def. 6) — plus a hash-based many-to-many algorithm.
//
// Schema conventions follow the paper. For the small divide, the
// dividend r1 has schema A ∪ B and the divisor r2 has schema B, with
// A and B nonempty and disjoint; the quotient has schema A. For the
// great divide the divisor has schema B ∪ C and the quotient A ∪ C.
package division

import (
	"fmt"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// Split describes how a division decomposes the operand schemas into
// the paper's attribute sets.
type Split struct {
	A schema.Schema // quotient attributes (dividend-only)
	B schema.Schema // common "element" attributes
	C schema.Schema // divisor group attributes (great divide only)
}

// SmallSplit computes and validates the A/B split for r1 ÷ r2:
// B is r2's entire schema, which must be a nonempty subset of r1's,
// and A = R1 − B must be nonempty (paper §2.1).
func SmallSplit(r1, r2 schema.Schema) (Split, error) {
	b := r2
	if b.Len() == 0 {
		return Split{}, fmt.Errorf("division: divisor schema must be nonempty")
	}
	if !b.SubsetOf(r1) {
		return Split{}, fmt.Errorf("division: divisor schema %v not contained in dividend schema %v", b, r1)
	}
	a := r1.Minus(b)
	if a.Len() == 0 {
		return Split{}, fmt.Errorf("division: dividend schema %v adds no quotient attributes over divisor %v", r1, b)
	}
	return Split{A: a, B: b}, nil
}

// GreatSplit computes and validates the A/B/C split for r1 ÷* r2:
// B = R1 ∩ R2 nonempty, A = R1 − B nonempty, C = R2 − B nonempty
// (paper §2.2; with C = ∅ great divide degenerates to small divide,
// which callers should express as Divide).
func GreatSplit(r1, r2 schema.Schema) (Split, error) {
	b := r1.Intersect(r2)
	if b.Len() == 0 {
		return Split{}, fmt.Errorf("division: dividend %v and divisor %v share no attributes", r1, r2)
	}
	a := r1.Minus(b)
	if a.Len() == 0 {
		return Split{}, fmt.Errorf("division: dividend %v has no quotient attributes", r1)
	}
	c := r2.Minus(b)
	if c.Len() == 0 {
		return Split{}, fmt.Errorf("division: divisor %v has no group attributes; use small divide", r2)
	}
	return Split{A: a, B: b, C: c}, nil
}

// mustSmallSplit panics on invalid schemas; the division operators
// treat schema violations as programming errors, like package algebra.
func mustSmallSplit(r1, r2 *relation.Relation) Split {
	s, err := SmallSplit(r1.Schema(), r2.Schema())
	if err != nil {
		panic(err)
	}
	return s
}

func mustGreatSplit(r1, r2 *relation.Relation) Split {
	s, err := GreatSplit(r1.Schema(), r2.Schema())
	if err != nil {
		panic(err)
	}
	return s
}

// Algorithm names a physical small-divide implementation.
type Algorithm string

// The registered small-divide algorithms.
const (
	AlgoNaive     Algorithm = "naive"      // Codd's image-set definition, nested loops
	AlgoHealy     Algorithm = "healy"      // Healy's algebraic simulation (Definition 2)
	AlgoMaier     Algorithm = "maier"      // Maier's per-divisor intersection (Definition 3)
	AlgoHash      Algorithm = "hash"       // Graefe's hash-division
	AlgoMergeSort Algorithm = "merge-sort" // sort-based group scan
	AlgoCount     Algorithm = "count"      // counting division (semi-join + group count)
)

// Algorithms lists the registered small-divide algorithms in a
// stable order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoNaive, AlgoHealy, AlgoMaier, AlgoHash, AlgoMergeSort, AlgoCount}
}

// Divide computes r1 ÷ r2 with the default algorithm
// (hash-division). It panics on schema violations.
func Divide(r1, r2 *relation.Relation) *relation.Relation {
	return HashDivide(r1, r2)
}

// DivideWith computes r1 ÷ r2 using the named algorithm.
func DivideWith(algo Algorithm, r1, r2 *relation.Relation) *relation.Relation {
	switch algo {
	case AlgoNaive:
		return NaiveDivide(r1, r2)
	case AlgoHealy:
		return HealyDivide(r1, r2)
	case AlgoMaier:
		return MaierDivide(r1, r2)
	case AlgoHash:
		return HashDivide(r1, r2)
	case AlgoMergeSort:
		return MergeSortDivide(r1, r2)
	case AlgoCount:
		return CountDivide(r1, r2)
	default:
		panic(fmt.Sprintf("division: unknown algorithm %q", algo))
	}
}

// GreatAlgorithm names a physical great-divide implementation.
type GreatAlgorithm string

// The registered great-divide algorithms, one per definition of
// Theorem 1 plus the hash-based physical operator.
const (
	GreatAlgoGroupLoop Algorithm = "group-loop" // Definition 4 (set containment division)
	GreatAlgoDemolombe Algorithm = "demolombe"  // Definition 5 (generalized division)
	GreatAlgoTodd      Algorithm = "todd"       // Definition 6 (great divide)
	GreatAlgoHash      Algorithm = "hash"       // counting set-containment division
	GreatAlgoMerge     Algorithm = "merge-sort" // sort-based set-containment division
)

// GreatAlgorithms lists the registered great-divide algorithms.
func GreatAlgorithms() []Algorithm {
	return []Algorithm{GreatAlgoGroupLoop, GreatAlgoDemolombe, GreatAlgoTodd, GreatAlgoHash, GreatAlgoMerge}
}

// GreatDivide computes r1 ÷* r2 with the default algorithm (hash).
// It panics on schema violations.
func GreatDivide(r1, r2 *relation.Relation) *relation.Relation {
	return HashGreatDivide(r1, r2)
}

// GreatDivideWith computes r1 ÷* r2 using the named algorithm.
func GreatDivideWith(algo Algorithm, r1, r2 *relation.Relation) *relation.Relation {
	switch algo {
	case GreatAlgoGroupLoop:
		return GroupLoopGreatDivide(r1, r2)
	case GreatAlgoDemolombe:
		return DemolombeGreatDivide(r1, r2)
	case GreatAlgoTodd:
		return ToddGreatDivide(r1, r2)
	case GreatAlgoHash:
		return HashGreatDivide(r1, r2)
	case GreatAlgoMerge:
		return MergeGreatDivide(r1, r2)
	default:
		panic(fmt.Sprintf("division: unknown great-divide algorithm %q", algo))
	}
}
