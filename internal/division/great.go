package division

import (
	"divlaws/internal/algebra"
	"divlaws/internal/relation"
)

// GroupLoopGreatDivide evaluates Definition 4 (set containment
// division):
//
//	r1 ÷*1 r2 = ⋃_{t∈πC(r2)} (r1 ÷ πB(σ_{C=t}(r2))) × (t)
//
// iterating over the divisor groups and dividing by each.
func GroupLoopGreatDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustGreatSplit(r1, r2)
	cPos := r2.Schema().Positions(split.C.Attrs())
	bPos := r2.Schema().Positions(split.B.Attrs())

	// Partition the divisor into groups by C.
	type group struct {
		c relation.Tuple
		b *relation.Relation
	}
	groups := make(map[string]*group)
	var order []string
	for _, t := range r2.Tuples() {
		ct := t.Project(cPos)
		k := ct.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{c: ct, b: relation.New(split.B)}
			groups[k] = g
			order = append(order, k)
		}
		g.b.Insert(t.Project(bPos))
	}

	out := relation.New(split.A.Concat(split.C))
	for _, k := range order {
		g := groups[k]
		for _, q := range Divide(r1, g.b).Tuples() {
			out.Insert(q.Concat(g.c))
		}
	}
	return out
}

// DemolombeGreatDivide evaluates Definition 5 (generalized division):
//
//	r1 ÷*2 r2 = (πA(r1) × πC(r2)) −
//	            π_{A∪C}((πA(r1) × r2) − (r1 × πC(r2)))
func DemolombeGreatDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustGreatSplit(r1, r2)
	a, b, c := split.A.Attrs(), split.B.Attrs(), split.C.Attrs()

	piA := algebra.Project(r1, a...)
	piC := algebra.Project(r2, c...)
	universe := algebra.Product(piA, piC) // schema A ∪ C

	// (πA(r1) × r2) has schema A ∪ B ∪ C (divisor order B then C).
	left := algebra.Product(piA, r2.Reorder(append(append([]string(nil), b...), c...)))
	// (r1 × πC(r2)) has schema A ∪ B ∪ C as well after reordering r1.
	right := algebra.Product(r1.Reorder(append(append([]string(nil), a...), b...)), piC)

	missing := algebra.Project(algebra.Diff(left, right), append(append([]string(nil), a...), c...)...)
	return algebra.Diff(universe, missing)
}

// ToddGreatDivide evaluates Definition 6 (Todd's great divide):
//
//	r1 ÷*3 r2 = (πA(r1) × πC(r2)) −
//	            π_{A∪C}((πA(r1) × r2) − (r1 ⋈ r2))
//
// differing from Definition 5 only in the join replacing the product.
func ToddGreatDivide(r1, r2 *relation.Relation) *relation.Relation {
	split := mustGreatSplit(r1, r2)
	a, b, c := split.A.Attrs(), split.B.Attrs(), split.C.Attrs()

	piA := algebra.Project(r1, a...)
	piC := algebra.Project(r2, c...)
	universe := algebra.Product(piA, piC)

	left := algebra.Product(piA, r2.Reorder(append(append([]string(nil), b...), c...)))
	joined := algebra.NaturalJoin(r1, r2) // schema A ∪ B ∪ C

	missing := algebra.Project(algebra.Diff(left, joined.Reorder(left.Schema().Attrs())),
		append(append([]string(nil), a...), c...)...)
	return algebra.Diff(universe, missing)
}

// HashGreatDivide is the counting set-containment division: hash
// every distinct B value, represent each divisor group as a set of
// B ids, index dividend groups by the B ids they contain, and count
// per (dividend group, divisor group) matches. A pair qualifies when
// the count reaches the divisor group's size. Expected time
// O(|r1| + |r2| + matches), with no per-tuple key allocations (see
// GreatDivideState, which it wraps).
func HashGreatDivide(r1, r2 *relation.Relation) *relation.Relation {
	st, err := NewGreatDivideState(r1.Schema(), r2.Schema())
	if err != nil {
		panic(err)
	}
	for _, t := range r2.Tuples() {
		st.AddDivisor(t)
	}
	for _, t := range r1.Tuples() {
		st.AddDividend(t)
	}
	return st.Result()
}
