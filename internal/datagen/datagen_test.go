package datagen

import (
	"testing"

	"divlaws/internal/division"
	"divlaws/internal/schema"
	"divlaws/internal/scj"
)

func TestSuppliersPartsShape(t *testing.T) {
	g := SuppliersParts{Suppliers: 20, Parts: 30, Colors: 4, AvgSupplied: 6, Seed: 1}
	supplies, parts := g.Generate()
	if parts.Len() != 30 {
		t.Errorf("parts Len = %d", parts.Len())
	}
	if supplies.Empty() {
		t.Fatal("supplies empty")
	}
	if !supplies.Schema().Equal(schema.New("s#", "p#")) ||
		!parts.Schema().Equal(schema.New("p#", "color")) {
		t.Errorf("schemas: %v %v", supplies.Schema(), parts.Schema())
	}
	// Determinism.
	s2, p2 := g.Generate()
	if !s2.Equal(supplies) || !p2.Equal(parts) {
		t.Error("generator must be deterministic for a fixed seed")
	}
	// Different seeds should differ (overwhelmingly likely).
	s3, _ := SuppliersParts{Suppliers: 20, Parts: 30, Colors: 4, AvgSupplied: 6, Seed: 2}.Generate()
	if s3.Equal(supplies) {
		t.Error("different seeds should differ")
	}
}

func TestSuppliersPartsDivisible(t *testing.T) {
	// The generator biases toward whole-color coverage; the great
	// divide over its output must be nonempty.
	supplies, parts := SuppliersParts{Suppliers: 40, Parts: 30, Colors: 3, AvgSupplied: 8, Seed: 7}.Generate()
	q := division.GreatDivide(supplies, parts.Reorder([]string{"p#", "color"}))
	if q.Empty() {
		t.Error("generated scenario yields an empty quotient; bias failed")
	}
}

func TestBaskets(t *testing.T) {
	g := Baskets{Transactions: 50, Items: 20, AvgSize: 4, Skew: 0.8, Seed: 3}
	txs := g.Generate()
	if len(txs) != 50 {
		t.Fatalf("transactions = %d", len(txs))
	}
	total := 0
	for _, tx := range txs {
		if len(tx.Items) == 0 {
			t.Error("empty basket generated")
		}
		seen := map[int64]bool{}
		for _, it := range tx.Items {
			if it < 0 || it >= 20 {
				t.Errorf("item %d outside universe", it)
			}
			if seen[it] {
				t.Error("duplicate item in basket")
			}
			seen[it] = true
		}
		total += len(tx.Items)
	}
	avg := float64(total) / 50
	if avg < 1.5 || avg > 8 {
		t.Errorf("average basket size %.1f implausible for AvgSize 4", avg)
	}
	rel := g.Relation()
	if rel.Empty() || !rel.Schema().Equal(schema.New("tid", "item")) {
		t.Errorf("vertical relation wrong: %v", rel.Schema())
	}
}

func TestBasketsSkewConcentrates(t *testing.T) {
	uniform := Baskets{Transactions: 400, Items: 50, AvgSize: 4, Skew: 0, Seed: 5}
	skewed := Baskets{Transactions: 400, Items: 50, AvgSize: 4, Skew: 1.5, Seed: 5}
	top := func(g Baskets) float64 {
		counts := make(map[int64]int)
		n := 0
		for _, tx := range g.Generate() {
			for _, it := range tx.Items {
				counts[it]++
				n++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / float64(n)
	}
	if top(skewed) <= top(uniform) {
		t.Error("skewed distribution should concentrate on hot items")
	}
}

func TestTransactionsNested(t *testing.T) {
	txs := []Transaction{{ID: 1, Items: []int64{1, 2}}, {ID: 2, Items: []int64{2}}}
	n := TransactionsNested(txs)
	if n.Len() != 2 {
		t.Fatalf("nested Len = %d", n.Len())
	}
	flat := TransactionsRelation(txs)
	back := scj.Unnest(n)
	if !back.EquivalentTo(flat.Reorder([]string{"tid", "item"})) && back.Len() != flat.Len() {
		t.Errorf("nested/flat mismatch: %v vs %v", back, flat)
	}
}

func TestDividePairHitRate(t *testing.T) {
	g := DividePair{Groups: 200, GroupSize: 5, DivisorSize: 6, Domain: 50, HitRate: 0.3, Seed: 9}
	r1, r2 := g.Generate()
	if r2.Len() != 6 {
		t.Fatalf("divisor Len = %d", r2.Len())
	}
	q := division.Divide(r1, r2)
	frac := float64(q.Len()) / 200
	// Constructed hits are 30%; random extras may add a few.
	if frac < 0.2 || frac > 0.7 {
		t.Errorf("quotient fraction = %.2f, want near 0.3", frac)
	}
	// Zero hit rate with a large domain yields a mostly-empty quotient.
	r1z, r2z := DividePair{Groups: 100, GroupSize: 3, DivisorSize: 8, Domain: 1000, HitRate: 0, Seed: 9}.Generate()
	if q := division.Divide(r1z, r2z); q.Len() > 5 {
		t.Errorf("zero hit rate should give few quotients, got %d", q.Len())
	}
}

func TestGreatDividePair(t *testing.T) {
	g := GreatDividePair{
		Groups: 100, GroupSize: 4,
		DivisorGroups: 5, DivisorGroupSize: 4,
		Domain: 40, HitRate: 0.5, Seed: 11,
	}
	r1, r2 := g.Generate()
	if got := r2.Len(); got != 20 {
		t.Fatalf("divisor tuples = %d, want 20", got)
	}
	q := division.GreatDivide(r1, r2)
	if q.Empty() {
		t.Error("expected nonempty great-divide quotient")
	}
}
