// Package datagen produces the synthetic workloads driving property
// tests and benchmarks: suppliers-and-parts databases (paper §4),
// Quest-style market-basket transaction sets (paper §3), and random
// dividend/divisor pairs with controllable containment density.
//
// All generators are deterministic given their seed, so benchmark
// runs are reproducible.
package datagen

import (
	"fmt"
	"math/rand"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/scj"
	"divlaws/internal/value"
)

// SuppliersParts configures the paper's §4 scenario generator.
type SuppliersParts struct {
	Suppliers int // number of suppliers
	Parts     int // number of parts
	Colors    int // number of distinct colors
	// AvgSupplied is the mean number of parts each supplier
	// supplies.
	AvgSupplied int
	Seed        int64
}

// Generate produces the supplies(s#, p#) and parts(p#, color)
// tables. Suppliers are biased to supply whole color groups so
// division queries have nonempty answers.
func (g SuppliersParts) Generate() (supplies, parts *relation.Relation) {
	rng := rand.New(rand.NewSource(g.Seed))
	parts = relation.New(schema.New("p#", "color"))
	colorOf := make(map[int]int, g.Parts)
	for p := 0; p < g.Parts; p++ {
		c := rng.Intn(g.Colors)
		colorOf[p] = c
		parts.Insert(relation.Tuple{
			value.String(fmt.Sprintf("p%d", p)),
			value.String(fmt.Sprintf("color%d", c)),
		})
	}
	// Parts per color, for whole-group supply decisions.
	byColor := make(map[int][]int, g.Colors)
	for p, c := range colorOf {
		byColor[c] = append(byColor[c], p)
	}

	supplies = relation.New(schema.New("s#", "p#"))
	for s := 0; s < g.Suppliers; s++ {
		sid := value.String(fmt.Sprintf("s%d", s))
		supplied := make(map[int]bool)
		// Roughly half the suppliers adopt 1-2 full color groups,
		// guaranteeing division hits; everyone adds random parts.
		if rng.Intn(2) == 0 && g.Colors > 0 {
			for k := 0; k < 1+rng.Intn(2); k++ {
				for _, p := range byColor[rng.Intn(g.Colors)] {
					supplied[p] = true
				}
			}
		}
		for len(supplied) < g.AvgSupplied {
			supplied[rng.Intn(g.Parts)] = true
		}
		for p := range supplied {
			supplies.Insert(relation.Tuple{sid, value.String(fmt.Sprintf("p%d", p))})
		}
	}
	return supplies, parts
}

// Baskets configures the Quest-style market-basket generator used
// for frequent itemset discovery benchmarks: a universe of items
// with Zipf-like popularity, transactions of geometric-ish size.
type Baskets struct {
	Transactions int
	Items        int     // universe size
	AvgSize      int     // mean transaction size
	Skew         float64 // Zipf exponent; 0 = uniform
	Seed         int64
}

// Transaction is one basket: an id and its item set.
type Transaction struct {
	ID    int64
	Items []int64
}

// Generate produces the raw baskets.
func (g Baskets) Generate() []Transaction {
	rng := rand.New(rand.NewSource(g.Seed))
	sampler := newZipf(rng, g.Items, g.Skew)
	out := make([]Transaction, g.Transactions)
	for i := range out {
		size := 1 + rng.Intn(2*g.AvgSize-1) // mean ≈ AvgSize
		set := make(map[int64]bool, size)
		for len(set) < size && len(set) < g.Items {
			set[sampler()] = true
		}
		items := make([]int64, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		out[i] = Transaction{ID: int64(i), Items: items}
	}
	return out
}

// Relation renders the baskets in the paper's vertical layout:
// transactions(tid, item).
func (g Baskets) Relation() *relation.Relation {
	return TransactionsRelation(g.Generate())
}

// TransactionsRelation converts baskets to transactions(tid, item).
func TransactionsRelation(txs []Transaction) *relation.Relation {
	r := relation.New(schema.New("tid", "item"))
	for _, tx := range txs {
		for _, it := range tx.Items {
			r.Insert(relation.Tuple{value.Int(tx.ID), value.Int(it)})
		}
	}
	return r
}

// TransactionsNested converts baskets to the nested representation
// used by the set containment join.
func TransactionsNested(txs []Transaction) *scj.Nested {
	n := scj.NewNested(schema.New("tid"), "items")
	for _, tx := range txs {
		set := scj.NewItemSet()
		for _, it := range tx.Items {
			set.Add(value.Int(it))
		}
		n.Insert(scj.Row{Scalars: relation.Tuple{value.Int(tx.ID)}, Set: set})
	}
	return n
}

// newZipf returns a sampler over [0, n) with the given skew; skew 0
// degenerates to uniform.
func newZipf(rng *rand.Rand, n int, skew float64) func() int64 {
	if skew <= 0 {
		return func() int64 { return int64(rng.Intn(n)) }
	}
	z := rand.NewZipf(rng, 1+skew, 1, uint64(n-1))
	return func() int64 { return int64(z.Uint64()) }
}

// DividePair configures the random dividend/divisor generator for
// small-divide benchmarks.
type DividePair struct {
	Groups      int // distinct quotient-candidate values in the dividend
	GroupSize   int // average tuples per group
	DivisorSize int // tuples in the divisor
	Domain      int // size of the element (B) domain
	// HitRate is the fraction of groups constructed to contain the
	// entire divisor.
	HitRate float64
	Seed    int64
	// Strings renders both attributes as composite identifier strings
	// ("supplier-000042/region-042", "part-000007/bin-07") instead of
	// ints — the string-keyed workloads behind the wide-hash
	// benchmarks, shaped like the composite natural keys (entity id
	// plus qualifiers, 18–28 bytes) that string-keyed joins and
	// divisions see in practice. The relational structure is
	// identical to the int form.
	Strings bool
}

// aValue and bValue render a quotient-candidate or element id under
// the pair's value kind.
func (g DividePair) aValue(a int64) value.Value {
	if g.Strings {
		return value.String(fmt.Sprintf("supplier-%06d/region-%03d", a, a%997))
	}
	return value.Int(a)
}

// BValue renders an element id exactly as Generate does — for
// harnesses that build auxiliary relations (join build sides) that
// must share the pair's key domain.
func (g DividePair) BValue(b int64) value.Value { return g.bValue(b) }

func (g DividePair) bValue(b int64) value.Value {
	if g.Strings {
		return value.String(fmt.Sprintf("part-%06d/bin-%02d", b, b%89))
	}
	return value.Int(b)
}

// Generate produces r1(a, b) and r2(b).
func (g DividePair) Generate() (r1, r2 *relation.Relation) {
	rng := rand.New(rand.NewSource(g.Seed))
	r2 = relation.New(schema.New("b"))
	divisor := make([]int64, 0, g.DivisorSize)
	for len(divisor) < g.DivisorSize {
		b := int64(rng.Intn(g.Domain))
		if r2.Insert(relation.Tuple{g.bValue(b)}) {
			divisor = append(divisor, b)
		}
	}
	r1 = relation.New(schema.New("a", "b"))
	for a := 0; a < g.Groups; a++ {
		av := g.aValue(int64(a))
		if rng.Float64() < g.HitRate {
			for _, b := range divisor {
				r1.Insert(relation.Tuple{av, g.bValue(b)})
			}
		}
		for i := 0; i < g.GroupSize; i++ {
			r1.Insert(relation.Tuple{av, g.bValue(int64(rng.Intn(g.Domain)))})
		}
	}
	return r1, r2
}

// GreatDividePair configures random inputs for great-divide
// benchmarks: the divisor has several groups keyed by c.
type GreatDividePair struct {
	Groups           int // dividend groups
	GroupSize        int
	DivisorGroups    int
	DivisorGroupSize int
	Domain           int
	HitRate          float64
	Seed             int64
}

// Generate produces r1(a, b) and r2(b, c).
func (g GreatDividePair) Generate() (r1, r2 *relation.Relation) {
	rng := rand.New(rand.NewSource(g.Seed))
	r2 = relation.New(schema.New("b", "c"))
	groups := make([][]int64, g.DivisorGroups)
	for c := range groups {
		seen := make(map[int64]bool)
		for len(seen) < g.DivisorGroupSize {
			b := int64(rng.Intn(g.Domain))
			if !seen[b] {
				seen[b] = true
				groups[c] = append(groups[c], b)
				r2.Insert(relation.Tuple{value.Int(b), value.Int(int64(c))})
			}
		}
	}
	r1 = relation.New(schema.New("a", "b"))
	for a := 0; a < g.Groups; a++ {
		av := value.Int(int64(a))
		if rng.Float64() < g.HitRate && g.DivisorGroups > 0 {
			for _, b := range groups[rng.Intn(g.DivisorGroups)] {
				r1.Insert(relation.Tuple{av, value.Int(b)})
			}
		}
		for i := 0; i < g.GroupSize; i++ {
			r1.Insert(relation.Tuple{av, value.Int(int64(rng.Intn(g.Domain)))})
		}
	}
	return r1, r2
}
