package optimizer

import (
	"strings"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/plan"
)

func bigDividePair() (*plan.Scan, *plan.Scan) {
	r1, r2 := datagen.DividePair{
		Groups: 600, GroupSize: 4, DivisorSize: 4,
		Domain: 40, HitRate: 0.5, Seed: 3,
	}.Generate()
	return plan.NewScan("r1", r1), plan.NewScan("r2", r2)
}

func TestFuseTopK(t *testing.T) {
	d, v := bigDividePair()
	div := &plan.Divide{Dividend: d, Divisor: v}
	keys := []plan.SortKey{{Attr: d.Schema().Attrs()[0]}}
	n := &plan.Limit{Input: &plan.Sort{Input: div, Keys: keys}, N: 5}

	fused, trace := FuseTopK(n)
	topk, ok := fused.(*plan.TopK)
	if !ok {
		t.Fatalf("fused root = %T\n%s", fused, plan.Format(fused))
	}
	if topk.K != 5 || len(topk.Keys) != 1 {
		t.Fatalf("fused = %s", topk)
	}
	if len(trace) != 1 || !strings.Contains(trace[0].Rule, "FuseTopK") {
		t.Fatalf("trace = %v", trace)
	}
	if trace[0].Gain <= 0 {
		t.Fatalf("fusion gain %v must be positive (TopK beats Sort+Limit in the model)", trace[0].Gain)
	}
	// Semantics preserved.
	if !plan.Eval(fused).Equal(plan.Eval(n)) {
		t.Fatal("fusion changed the result")
	}
}

// TestFuseTopKPushesThroughRenameProject checks the order-safe
// descent: the fused TopK sinks below Rename and full-width Project
// (with keys remapped), but stops at a narrowing projection.
func TestFuseTopKPushesThroughRenameProject(t *testing.T) {
	d, v := bigDividePair()
	a := d.Schema().Attrs()[0]
	div := &plan.Divide{Dividend: d, Divisor: v}
	shaped := &plan.Rename{
		Input: &plan.Project{Input: div, Attrs: div.Schema().Attrs()},
		From:  a, To: "out",
	}
	n := &plan.Limit{Input: &plan.Sort{Input: shaped, Keys: []plan.SortKey{{Attr: "out"}}}, N: 3}

	fused, _ := FuseTopK(n)
	ren, ok := fused.(*plan.Rename)
	if !ok {
		t.Fatalf("root = %T, want Rename above the pushed TopK\n%s", fused, plan.Format(fused))
	}
	proj, ok := ren.Input.(*plan.Project)
	if !ok {
		t.Fatalf("below Rename = %T, want Project\n%s", ren.Input, plan.Format(fused))
	}
	topk, ok := proj.Input.(*plan.TopK)
	if !ok {
		t.Fatalf("below Project = %T, want TopK\n%s", proj.Input, plan.Format(fused))
	}
	if topk.Keys[0].Attr != a {
		t.Fatalf("key = %v, want remapped %q", topk.Keys[0], a)
	}
	if _, ok := topk.Input.(*plan.Divide); !ok {
		t.Fatalf("TopK input = %T, want the Divide", topk.Input)
	}
	if !plan.Eval(fused).Equal(plan.Eval(n)) {
		t.Fatal("pushdown changed the result")
	}

	// Narrowing projection (dedup possible): no descent. The great
	// divide's two-attribute quotient (a, c) narrows to one column.
	g1, g2 := datagen.GreatDividePair{
		Groups: 50, GroupSize: 4, DivisorGroups: 4, DivisorGroupSize: 3,
		Domain: 30, HitRate: 0.5, Seed: 3,
	}.Generate()
	gdiv := &plan.GreatDivide{Dividend: plan.NewScan("g1", g1), Divisor: plan.NewScan("g2", g2)}
	if gdiv.Schema().Len() < 2 {
		t.Fatalf("fixture quotient too narrow: %v", gdiv.Schema())
	}
	narrowAttr := gdiv.Schema().Attrs()[0]
	narrow := &plan.Project{Input: gdiv, Attrs: []string{narrowAttr}}
	n2 := &plan.Limit{Input: &plan.Sort{Input: narrow, Keys: []plan.SortKey{{Attr: narrowAttr}}}, N: 3}
	fused2, _ := FuseTopK(n2)
	if _, ok := fused2.(*plan.TopK); !ok {
		t.Fatalf("narrowing projection: root = %T, want TopK to stay above it\n%s", fused2, plan.Format(fused2))
	}
}

// TestParallelizeOrderAware: a TopK over a large division
// parallelizes the division beneath it and records the per-partition
// pushdown in the trace.
func TestParallelizeOrderAware(t *testing.T) {
	d, v := bigDividePair()
	topk := &plan.TopK{
		Input: &plan.Divide{Dividend: d, Divisor: v},
		Keys:  []plan.SortKey{{Attr: d.Schema().Attrs()[0]}},
		K:     4,
	}
	out, trace := Parallelize(topk, ParallelOptions{Workers: 4, Threshold: 1})
	re, ok := out.(*plan.TopK)
	if !ok {
		t.Fatalf("root = %T\n%s", out, plan.Format(out))
	}
	if _, ok := re.Input.(*plan.ParallelDivide); !ok {
		t.Fatalf("TopK input = %T, want ParallelDivide", re.Input)
	}
	var sawPar, sawPush bool
	for _, a := range trace {
		if strings.Contains(a.Rule, "Parallelize(Law 2/c2") {
			sawPar = true
		}
		if strings.Contains(a.Rule, "PushTopK(per-partition k=4") {
			sawPush = true
		}
	}
	if !sawPar || !sawPush {
		t.Fatalf("trace = %+v, want Parallelize and PushTopK entries", trace)
	}
}

// TestOptimizeFusesAndParallelizes runs the whole Optimize pipeline:
// Limit over Sort over a large division comes out as TopK over
// ParallelDivide.
func TestOptimizeFusesAndParallelizes(t *testing.T) {
	d, v := bigDividePair()
	n := &plan.Limit{
		Input: &plan.Sort{
			Input: &plan.Divide{Dividend: d, Divisor: v},
			Keys:  []plan.SortKey{{Attr: d.Schema().Attrs()[0], Desc: true}},
		},
		N: 7,
	}
	res := Optimize(n, Options{Parallel: ParallelOptions{Workers: 4, Threshold: 1}})
	topk, ok := res.Plan.(*plan.TopK)
	if !ok {
		t.Fatalf("optimized root = %T\n%s", res.Plan, plan.Format(res.Plan))
	}
	if _, ok := topk.Input.(*plan.ParallelDivide); !ok {
		t.Fatalf("TopK input = %T, want ParallelDivide\n%s", topk.Input, plan.Format(res.Plan))
	}
	if res.Final >= res.Initial {
		t.Fatalf("cost did not improve: %v -> %v", res.Initial, res.Final)
	}
}

func TestCostEstimatesForSortAndTopK(t *testing.T) {
	d, _ := bigDividePair()
	keys := []plan.SortKey{{Attr: d.Schema().Attrs()[0]}}
	srt := &plan.Sort{Input: d, Keys: keys}
	if Rows(srt) != Rows(d) {
		t.Fatal("Sort must not change cardinality")
	}
	if Cost(srt) <= Cost(d) {
		t.Fatal("Sort must cost more than its input")
	}
	topk := &plan.TopK{Input: d, Keys: keys, K: 5}
	if got := Rows(topk); got != 5 {
		t.Fatalf("TopK rows = %v, want 5", got)
	}
	pair := &plan.Limit{Input: srt, N: 5}
	if Cost(topk) >= Cost(pair) {
		t.Fatalf("TopK (%v) must be cheaper than Sort+Limit (%v)", Cost(topk), Cost(pair))
	}
}
