package optimizer

import (
	"fmt"
	"strings"

	"divlaws/internal/laws"
	"divlaws/internal/plan"
)

// maxPasses bounds the fixpoint iteration; rewrite systems with
// bidirectional rules could otherwise oscillate.
const maxPasses = 8

// Applied records one rule application during optimization.
type Applied struct {
	Rule   string
	Before string // one-line description of the rewritten node
	Gain   float64
}

// Result carries the optimized plan and the trace of rule
// applications.
type Result struct {
	Plan    plan.Node
	Trace   []Applied
	Initial float64 // estimated cost before
	Final   float64 // estimated cost after
}

// String renders the trace like an optimizer debug log.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost %.1f -> %.1f\n", r.Initial, r.Final)
	for _, a := range r.Trace {
		fmt.Fprintf(&b, "  %-18s gain %8.1f  at %s\n", a.Rule, a.Gain, a.Before)
	}
	return b.String()
}

// Options configures optimization.
type Options struct {
	// Rules is the rule set to use; nil means laws.All().
	Rules []laws.Rule
	// AllowDataDependent enables rules whose preconditions inspect
	// relation contents (c1-style checks). Disabled they are skipped,
	// modelling an optimizer restricted to catalog-only information.
	AllowDataDependent bool
	// MinGain is the minimum estimated cost improvement a rewrite
	// must deliver to be kept; 0 keeps any non-worsening rewrite
	// with positive gain.
	MinGain float64
	// Parallel, when Workers >= 2, runs the Parallelize pass after
	// the law rewrites, turning large divisions into their
	// intra-operator parallel forms.
	Parallel ParallelOptions
}

// Optimize rewrites the plan with the division laws, keeping every
// rule application that lowers the estimated cost. It runs bottom-up
// passes to a fixpoint (bounded by maxPasses).
func Optimize(n plan.Node, opts Options) Result {
	rules := opts.Rules
	if rules == nil {
		rules = laws.All()
	}
	res := Result{Initial: Cost(n)}
	current := n
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		current = plan.Transform(current, func(node plan.Node) plan.Node {
			best := node
			bestCost := Cost(node)
			var bestRule string
			for _, r := range rules {
				if r.DataDependent && !opts.AllowDataDependent {
					continue
				}
				rewritten, ok := r.Apply(node)
				if !ok {
					continue
				}
				c := Cost(rewritten)
				if bestCost-c > opts.MinGain {
					best, bestCost, bestRule = rewritten, c, r.Name
				}
			}
			if bestRule != "" {
				res.Trace = append(res.Trace, Applied{
					Rule:   bestRule,
					Before: node.String(),
					Gain:   Cost(node) - bestCost,
				})
				improved = true
			}
			return best
		})
		if !improved {
			break
		}
	}
	current, topkTrace := FuseTopK(current)
	res.Trace = append(res.Trace, topkTrace...)
	current, parTrace := Parallelize(current, opts.Parallel)
	res.Trace = append(res.Trace, parTrace...)
	res.Plan = current
	res.Final = Cost(current)
	return res
}

// MustEquivalent panics unless the optimized plan evaluates to the
// same relation as the original; used by tests and the CLI's
// --verify mode to guard the rewrite pipeline end-to-end.
func MustEquivalent(original, optimized plan.Node) {
	a := plan.Eval(original)
	b := plan.Eval(optimized)
	if !a.EquivalentTo(b) {
		panic(fmt.Sprintf("optimizer: rewrite changed the result\noriginal:\n%s\n%v\noptimized:\n%s\n%v",
			plan.Format(original), a, plan.Format(optimized), b))
	}
}
