package optimizer

import (
	"fmt"

	"divlaws/internal/plan"
)

// FuseTopK rewrites every Limit[k] directly over a Sort into a
// single TopK node: the pair means "the k smallest under the sort
// keys" (the binder emits exactly this shape for ORDER BY + LIMIT),
// and the fused operator computes it with an O(k) bounded heap
// instead of materializing and sorting the whole input. The rewrite
// is unconditionally safe — the physical operators share one tuple
// comparator with a deterministic canonical tie-break, so both forms
// pick the same k tuples in the same order.
//
// The fused node is then pushed below the binder's output-shaping
// operators (Rename, and Project when it is a pure column
// permutation): those are order-preserving bijections in the
// physical engine, so bounding beneath them bounds the same tuples —
// and it lands the TopK directly on a division, where Parallelize
// and the compiler can turn it into a per-partition top-k over the
// exchange workers. Like Parallelize, FuseTopK is a structural pass,
// applied whenever the optimizer runs regardless of the law rule
// set.
func FuseTopK(n plan.Node) (plan.Node, []Applied) {
	var trace []Applied
	out := plan.Transform(n, func(node plan.Node) plan.Node {
		lim, ok := node.(*plan.Limit)
		if !ok {
			return node
		}
		srt, ok := lim.Input.(*plan.Sort)
		if !ok {
			return node
		}
		fused := &plan.TopK{Input: srt.Input, Keys: srt.Keys, K: lim.N}
		trace = append(trace, Applied{
			Rule:   fmt.Sprintf("FuseTopK(k=%d)", lim.N),
			Before: node.String(),
			Gain:   Cost(node) - Cost(fused),
		})
		return pushTopK(fused)
	})
	return out, trace
}

// pushTopK sinks a TopK below order-preserving bijective operators.
// Rename only relabels (the key attribute is mapped back through
// it); a full-width Project is a column permutation of a set — no
// tuple is deduplicated and stream order is preserved — so the bound
// commutes. Anything else stops the descent. Pushing below a
// permutation can change which tuple wins a tie on all sort keys at
// the k boundary (the canonical tie-break sees a different column
// order); either choice is a correct SQL top-k, and the result stays
// deterministic for the chosen plan.
func pushTopK(t *plan.TopK) plan.Node {
	switch c := t.Input.(type) {
	case *plan.Rename:
		keys := make([]plan.SortKey, len(t.Keys))
		for i, k := range t.Keys {
			if k.Attr == c.To {
				k.Attr = c.From
			}
			keys[i] = k
		}
		return &plan.Rename{
			Input: pushTopK(&plan.TopK{Input: c.Input, Keys: keys, K: t.K}),
			From:  c.From, To: c.To,
		}
	case *plan.Project:
		if len(c.Attrs) != c.Input.Schema().Len() {
			return t
		}
		return &plan.Project{
			Input: pushTopK(&plan.TopK{Input: c.Input, Keys: t.Keys, K: t.K}),
			Attrs: c.Attrs,
		}
	default:
		return t
	}
}
