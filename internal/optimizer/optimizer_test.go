package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"divlaws/internal/laws"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func scan(name string, r *relation.Relation) *plan.Scan { return plan.NewScan(name, r) }

func randRelation(rng *rand.Rand, attrs []string, n, dom int) *relation.Relation {
	r := relation.New(schema.New(attrs...))
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, len(attrs))
		for j := range attrs {
			t[j] = value.Int(int64(rng.Intn(dom)))
		}
		r.Insert(t)
	}
	return r
}

func TestCostMonotoneInInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := scan("s", randRelation(rng, []string{"a", "b"}, 10, 5))
	big := scan("b", randRelation(rng, []string{"a", "b"}, 1000, 50))
	if Cost(small) >= Cost(big) {
		t.Error("scan cost should grow with cardinality")
	}
	r2 := scan("r2", randRelation(rng, []string{"b"}, 3, 5))
	if Cost(&plan.Divide{Dividend: big, Divisor: r2}) <= Cost(big) {
		t.Error("divide must cost more than its input")
	}
}

func TestCostPrefersSelectedDividend(t *testing.T) {
	// σp(A)(r1 ÷ r2) should cost more than σp(A)(r1) ÷ r2: the
	// selection shrinks the divide's input. This is what makes Law 3
	// fire as an optimization.
	rng := rand.New(rand.NewSource(2))
	r1 := scan("r1", randRelation(rng, []string{"a", "b"}, 500, 40))
	r2 := scan("r2", randRelation(rng, []string{"b"}, 4, 40))
	p := pred.Compare(pred.Attr("a"), pred.Eq, pred.ConstInt(1))
	above := &plan.Select{Input: &plan.Divide{Dividend: r1, Divisor: r2}, Pred: p}
	below := &plan.Divide{Dividend: &plan.Select{Input: r1, Pred: p}, Divisor: r2}
	if Cost(below) >= Cost(above) {
		t.Errorf("cost(pushed) = %.1f should beat cost(unpushed) = %.1f", Cost(below), Cost(above))
	}
}

func TestSelectivityShapes(t *testing.T) {
	eq := pred.Compare(pred.Attr("a"), pred.Eq, pred.ConstInt(1))
	lt := pred.Compare(pred.Attr("a"), pred.Lt, pred.ConstInt(1))
	if selectivity(eq) >= selectivity(lt) {
		t.Error("equality should be more selective than range")
	}
	if selectivity(pred.And{eq, lt}) >= selectivity(eq) {
		t.Error("conjunction should be more selective than either conjunct")
	}
	if selectivity(pred.Or{eq, lt}) <= selectivity(lt) {
		t.Error("disjunction should be less selective")
	}
	if selectivity(pred.True) != 1 || selectivity(pred.False) != 0 {
		t.Error("literal selectivities")
	}
	if got := selectivity(pred.Not{P: pred.True}); got != 0 {
		t.Errorf("NOT TRUE selectivity = %v", got)
	}
	ne := pred.Compare(pred.Attr("a"), pred.Ne, pred.ConstInt(1))
	if selectivity(ne) <= selectivity(eq) {
		t.Error("inequality should pass more than equality")
	}
}

func TestOptimizePushesSelectionBelowDivide(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r1 := scan("r1", randRelation(rng, []string{"a", "b"}, 300, 30))
	r2 := scan("r2", randRelation(rng, []string{"b"}, 3, 30))
	p := pred.Compare(pred.Attr("a"), pred.Eq, pred.ConstInt(7))
	original := &plan.Select{Input: &plan.Divide{Dividend: r1, Divisor: r2}, Pred: p}

	res := Optimize(original, Options{})
	if len(res.Trace) == 0 {
		t.Fatal("optimizer applied no rules")
	}
	if res.Final >= res.Initial {
		t.Errorf("cost did not improve: %.1f -> %.1f", res.Initial, res.Final)
	}
	d, ok := res.Plan.(*plan.Divide)
	if !ok {
		t.Fatalf("expected Divide root after Law 3:\n%s", plan.Format(res.Plan))
	}
	if _, ok := d.Dividend.(*plan.Select); !ok {
		t.Fatalf("selection not pushed:\n%s", plan.Format(res.Plan))
	}
	MustEquivalent(original, res.Plan)
}

func TestOptimizeLaw9EliminatesProduct(t *testing.T) {
	// Law 9 is data-dependent; it must fire only with
	// AllowDataDependent.
	r1s := scan("r1s", relation.Ints([]string{"a", "b1"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	}))
	r1ss := scan("r1ss", relation.Ints([]string{"b2"}, [][]int64{{1}, {2}}))
	r2 := scan("r2", relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 2}, {3, 1}, {3, 2}}))
	original := &plan.Divide{
		Dividend: &plan.Product{Left: r1s, Right: r1ss},
		Divisor:  r2,
	}
	restricted := Optimize(original, Options{AllowDataDependent: false})
	if len(restricted.Trace) != 0 {
		t.Errorf("catalog-only optimizer should not fire Law 9, applied %v", restricted.Trace)
	}
	full := Optimize(original, Options{AllowDataDependent: true})
	fired := false
	for _, a := range full.Trace {
		if a.Rule == "Law 9" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("Law 9 did not fire; trace: %v\nplan:\n%s", full.Trace, plan.Format(full.Plan))
	}
	MustEquivalent(original, full.Plan)
}

func TestOptimizeGreatDivideSelections(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r1 := scan("r1", randRelation(rng, []string{"a", "b"}, 400, 20))
	r2 := scan("r2", randRelation(rng, []string{"b", "c"}, 50, 20))
	p := pred.And{
		pred.Compare(pred.Attr("a"), pred.Eq, pred.ConstInt(3)),
	}
	original := &plan.Select{
		Input: &plan.GreatDivide{Dividend: r1, Divisor: r2},
		Pred:  p,
	}
	res := Optimize(original, Options{})
	if _, ok := res.Plan.(*plan.GreatDivide); !ok {
		t.Fatalf("Law 14 should leave a GreatDivide root:\n%s", plan.Format(res.Plan))
	}
	MustEquivalent(original, res.Plan)
}

func TestOptimizeTerminates(t *testing.T) {
	// Bidirectional rule pairs (Law 3 / Law 3 reverse) must not
	// oscillate: the cost gate plus bounded passes guarantee
	// termination.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		r1 := scan("r1", randRelation(rng, []string{"a", "b"}, 10+rng.Intn(50), 8))
		r2 := scan("r2", randRelation(rng, []string{"b"}, 1+rng.Intn(4), 8))
		p := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(int64(rng.Intn(8))))
		original := &plan.Select{Input: &plan.Divide{Dividend: r1, Divisor: r2}, Pred: p}
		res := Optimize(original, Options{AllowDataDependent: true})
		MustEquivalent(original, res.Plan)
	}
}

func TestOptimizeRandomPlansPreserveSemantics(t *testing.T) {
	// Fuzz the whole pipeline: random plans with divides, unions,
	// selections; optimization must never change results.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		r1a := scan("r1a", randRelation(rng, []string{"a", "b"}, rng.Intn(20), 5))
		r1b := scan("r1b", randRelation(rng, []string{"a", "b"}, rng.Intn(20), 5))
		r2a := scan("r2a", randRelation(rng, []string{"b"}, 1+rng.Intn(3), 5))
		r2b := scan("r2b", randRelation(rng, []string{"b"}, 1+rng.Intn(3), 5))
		var original plan.Node
		switch trial % 4 {
		case 0:
			original = &plan.Divide{Dividend: plan.Union(r1a, r1b), Divisor: r2a}
		case 1:
			original = &plan.Divide{Dividend: r1a, Divisor: plan.Union(r2a, r2b)}
		case 2:
			original = &plan.Select{
				Input: &plan.Divide{Dividend: plan.Intersect(r1a, r1b), Divisor: r2a},
				Pred:  pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(1)),
			}
		default:
			original = plan.Diff(
				&plan.Divide{Dividend: r1a, Divisor: r2a},
				&plan.Divide{Dividend: r1b, Divisor: r2a},
			)
		}
		res := Optimize(original, Options{AllowDataDependent: true})
		MustEquivalent(original, res.Plan)
	}
}

func TestResultString(t *testing.T) {
	res := Result{
		Initial: 100, Final: 50,
		Trace: []Applied{{Rule: "Law 3", Before: "Select[x]", Gain: 50}},
	}
	s := res.String()
	if !strings.Contains(s, "Law 3") || !strings.Contains(s, "100.0 -> 50.0") {
		t.Errorf("Result.String = %q", s)
	}
}

func TestMustEquivalentPanicsOnMismatch(t *testing.T) {
	a := scan("a", relation.Ints([]string{"x"}, [][]int64{{1}}))
	b := scan("b", relation.Ints([]string{"x"}, [][]int64{{2}}))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustEquivalent(a, b)
}

func TestEstimatedUnknownNode(t *testing.T) {
	// Unknown node types get pessimistic costs, not panics.
	n := &fakeNode{child: scan("r", relation.Ints([]string{"a"}, [][]int64{{1}, {2}}))}
	e := Estimated(n)
	if e.Cost <= 0 {
		t.Error("unknown node should still be costed")
	}
}

type fakeNode struct{ child plan.Node }

func (f *fakeNode) Schema() schema.Schema { return f.child.Schema() }
func (f *fakeNode) Children() []plan.Node { return []plan.Node{f.child} }
func (f *fakeNode) WithChildren(ch []plan.Node) plan.Node {
	return &fakeNode{child: ch[0]}
}
func (f *fakeNode) String() string { return "Fake" }

func TestOptimizeWithExplicitRules(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r1 := scan("r1", randRelation(rng, []string{"a", "b"}, 100, 10))
	r2 := scan("r2", randRelation(rng, []string{"b"}, 2, 10))
	p := pred.Compare(pred.Attr("a"), pred.Eq, pred.ConstInt(1))
	original := &plan.Select{Input: &plan.Divide{Dividend: r1, Divisor: r2}, Pred: p}
	law3, _ := laws.ByName("Law 3")
	res := Optimize(original, Options{Rules: []laws.Rule{law3}})
	if len(res.Trace) != 1 || res.Trace[0].Rule != "Law 3" {
		t.Errorf("explicit rule set misbehaved: %v", res.Trace)
	}
}

func TestRowsEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r1 := scan("r1", randRelation(rng, []string{"a", "b"}, 100, 10))
	n := float64(r1.Rel.Len())
	if got := Rows(r1); got != n {
		t.Errorf("Rows(scan) = %g, want %g", got, n)
	}
	sel := &plan.Select{Input: r1, Pred: pred.Compare(pred.Attr("a"), pred.Eq, pred.ConstInt(1))}
	if got := Rows(sel); got >= n || got <= 0 {
		t.Errorf("Rows(select) = %g, want shrunk below %g", got, n)
	}
	grp := &plan.Group{Input: r1, By: nil}
	if got := Rows(grp); got != 1 {
		t.Errorf("Rows(global group) = %g, want 1", got)
	}
	ren := &plan.Rename{Input: r1, From: "a", To: "z"}
	if got := Rows(ren); got != n {
		t.Errorf("Rows(rename) = %g, want %g", got, n)
	}
}

func TestEstimatedSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := scan("x", randRelation(rng, []string{"a"}, 50, 30))
	y := scan("y", randRelation(rng, []string{"a"}, 30, 30))
	union := Estimated(plan.Union(x, y))
	inter := Estimated(plan.Intersect(x, y))
	diff := Estimated(plan.Diff(x, y))
	if union.Rows <= inter.Rows || union.Rows <= diff.Rows {
		t.Error("union should estimate the largest of the set ops")
	}
	theta := &plan.ThetaJoin{
		Left:  x,
		Right: &plan.Rename{Input: y, From: "a", To: "b"},
		Pred:  pred.Compare(pred.Attr("a"), pred.Lt, pred.Attr("b")),
	}
	join := &plan.Join{Left: x, Right: scan("z", randRelation(rng, []string{"a", "c"}, 30, 30))}
	if Estimated(theta).Cost <= Estimated(join).Cost {
		t.Error("nested-loop theta-join should cost more than hash join at like sizes")
	}
	anti := &plan.AntiSemiJoin{Left: x, Right: y}
	if Estimated(anti).Rows <= 0 {
		t.Error("anti-semi-join rows estimate must be positive")
	}
	gd := &plan.GreatDivide{
		Dividend: scan("d", randRelation(rng, []string{"a", "b"}, 40, 10)),
		Divisor:  scan("v", randRelation(rng, []string{"b", "c"}, 10, 10)),
	}
	if Estimated(gd).Rows <= 0 {
		t.Error("great divide rows estimate must be positive")
	}
}
