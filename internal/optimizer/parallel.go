package optimizer

import (
	"fmt"

	"divlaws/internal/plan"
)

// DefaultParallelThreshold is the estimated dividend cardinality
// above which a division is worth parallelizing: below it the
// partition-and-merge overhead dominates the per-partition work (the
// paper's §5.2.1 proviso).
const DefaultParallelThreshold = 1024

// ParallelOptions configures the parallelization pass.
type ParallelOptions struct {
	// Workers is the per-operator goroutine count; values below 2
	// disable the pass.
	Workers int
	// Threshold is the minimum estimated dividend cardinality for a
	// division to be rewritten; 0 means DefaultParallelThreshold.
	Threshold float64
}

// Parallelize rewrites Divide and GreatDivide nodes whose estimated
// dividend cardinality exceeds the threshold into their intra-
// operator parallel forms, the rewrites the paper derives from Law 2
// under c2 (range partitioning on the quotient attributes) and Law
// 13 (hash partitioning on the divisor group attributes). Both are
// safe unconditionally — the partitioning establishes the laws'
// preconditions by construction — so the threshold is purely a cost
// heuristic. The trace records each rewrite like a rule application.
//
// The pass is limit-aware by design: divisions beneath a plan.Limit
// are still parallelized, because the exchange operators stream —
// reaching the limit cancels the workers mid-quotient, so the
// parallel form costs at most what the limit consumes while the
// first rows still arrive a partition-width faster. The threshold
// keeps using the dividend estimate, not the limit, since the
// division must consume its whole dividend regardless of how little
// of the quotient the parent wants.
func Parallelize(n plan.Node, opts ParallelOptions) (plan.Node, []Applied) {
	if opts.Workers < 2 {
		return n, nil
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultParallelThreshold
	}
	var trace []Applied
	out := plan.Transform(n, func(node plan.Node) plan.Node {
		switch t := node.(type) {
		case *plan.Divide:
			if Rows(t.Dividend) < threshold {
				return node
			}
			rewritten := &plan.ParallelDivide{
				Dividend: t.Dividend, Divisor: t.Divisor,
				Algo: t.Algo, Workers: opts.Workers,
			}
			trace = append(trace, Applied{
				Rule:   fmt.Sprintf("Parallelize(Law 2/c2, workers=%d)", opts.Workers),
				Before: t.String(),
				Gain:   Cost(node) - Cost(rewritten),
			})
			return rewritten
		case *plan.GreatDivide:
			// Law 13 parallelizes across the divisor, so beyond the
			// dividend threshold the divisor must have enough tuples
			// to partition — mirroring the executor, which degrades
			// to sequential below 2 tuples per worker (and EXPLAIN
			// should not promise parallelism that will not happen).
			if Rows(t.Dividend) < threshold || Rows(t.Divisor) < float64(2*opts.Workers) {
				return node
			}
			rewritten := &plan.ParallelGreatDivide{
				Dividend: t.Dividend, Divisor: t.Divisor,
				Algo: t.Algo, Workers: opts.Workers,
			}
			trace = append(trace, Applied{
				Rule:   fmt.Sprintf("Parallelize(Law 13, workers=%d)", opts.Workers),
				Before: t.String(),
				Gain:   Cost(node) - Cost(rewritten),
			})
			return rewritten
		case *plan.TopK:
			// Order awareness: Transform runs bottom-up, so a division
			// beneath this TopK has already been rewritten to its
			// exchange form. The ordering survives parallelization —
			// exec pushes the bound into the partition workers (O(k)
			// heap each) and k-way merges at the consumer — so the pass
			// records the pushdown in the trace instead of declining
			// the rewrite; no structural change is needed here. The
			// compiler only fuses positive bounds (k=0 never opens the
			// subtree), so only those are traced.
			if t.K <= 0 {
				return node
			}
			switch t.Input.(type) {
			case *plan.ParallelDivide, *plan.ParallelGreatDivide:
				trace = append(trace, Applied{
					Rule:   fmt.Sprintf("PushTopK(per-partition k=%d + merge)", t.K),
					Before: t.String(),
				})
			}
			return node
		default:
			return node
		}
	})
	return out, trace
}
