package optimizer

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/division"
	"divlaws/internal/exec"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func dividePlan(seed int64) (*plan.Divide, *relation.Relation, *relation.Relation) {
	r1, r2 := datagen.DividePair{
		Groups: 300, GroupSize: 6, DivisorSize: 6,
		Domain: 60, HitRate: 0.3, Seed: seed,
	}.Generate()
	return &plan.Divide{
		Dividend: plan.NewScan("r1", r1),
		Divisor:  plan.NewScan("r2", r2),
	}, r1, r2
}

func TestParallelizeThreshold(t *testing.T) {
	node, r1, _ := dividePlan(1)
	dividendRows := float64(r1.Len())

	// Above the threshold: rewritten.
	got, trace := Parallelize(node, ParallelOptions{Workers: 4, Threshold: dividendRows / 2})
	pd, ok := got.(*plan.ParallelDivide)
	if !ok {
		t.Fatalf("above threshold: got %T, want *plan.ParallelDivide", got)
	}
	if pd.Workers != 4 {
		t.Errorf("Workers = %d, want 4", pd.Workers)
	}
	if len(trace) != 1 || !strings.Contains(trace[0].Rule, "Law 2/c2") {
		t.Errorf("trace = %+v, want one Law 2/c2 application", trace)
	}

	// Below the threshold: untouched.
	got, trace = Parallelize(node, ParallelOptions{Workers: 4, Threshold: dividendRows * 10})
	if _, ok := got.(*plan.Divide); !ok {
		t.Errorf("below threshold: got %T, want *plan.Divide", got)
	}
	if len(trace) != 0 {
		t.Errorf("below threshold: unexpected trace %+v", trace)
	}

	// Workers < 2 disables the pass regardless of cardinality.
	got, _ = Parallelize(node, ParallelOptions{Workers: 1, Threshold: 1})
	if _, ok := got.(*plan.Divide); !ok {
		t.Errorf("workers=1: got %T, want *plan.Divide", got)
	}
}

func TestParallelizeGreatDivide(t *testing.T) {
	r1, r2 := datagen.GreatDividePair{
		Groups: 200, GroupSize: 6,
		DivisorGroups: 16, DivisorGroupSize: 4,
		Domain: 60, HitRate: 0.3, Seed: 2,
	}.Generate()
	node := &plan.GreatDivide{
		Dividend: plan.NewScan("r1", r1),
		Divisor:  plan.NewScan("r2", r2),
	}
	got, trace := Parallelize(node, ParallelOptions{Workers: 4, Threshold: 1})
	pgd, ok := got.(*plan.ParallelGreatDivide)
	if !ok {
		t.Fatalf("got %T, want *plan.ParallelGreatDivide", got)
	}
	if len(trace) != 1 || !strings.Contains(trace[0].Rule, "Law 13") {
		t.Errorf("trace = %+v, want one Law 13 application", trace)
	}
	if !plan.Eval(pgd).EquivalentTo(plan.Eval(node)) {
		t.Error("parallelized great divide changed the result")
	}
}

// TestOptimizeWithParallelOptions checks the end-to-end pipeline:
// Optimize applies the laws, then parallelizes, and the trace shows
// both stages.
func TestOptimizeWithParallelOptions(t *testing.T) {
	node, _, _ := dividePlan(3)
	res := Optimize(node, Options{
		Parallel: ParallelOptions{Workers: 8, Threshold: 1},
	})
	found := false
	plan.Transform(res.Plan, func(n plan.Node) plan.Node {
		if _, ok := n.(*plan.ParallelDivide); ok {
			found = true
		}
		return n
	})
	if !found {
		t.Fatalf("optimized plan has no ParallelDivide:\n%s", plan.Format(res.Plan))
	}
	if !plan.Eval(res.Plan).Equal(plan.Eval(node)) {
		t.Error("optimized parallel plan changed the result")
	}
}

// TestParallelPlanCompilesSetEqual is the acceptance property: a
// plan containing Divide over a dividend above the threshold
// compiles to a parallel iterator whose results are set-equal to the
// sequential ones, across all division algorithms and random inputs.
func TestParallelPlanCompilesSetEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		r1 := relation.New(schema.New("a", "b"))
		for i := 0; i < 40+rng.Intn(120); i++ {
			r1.Insert(relation.Tuple{
				value.Int(int64(rng.Intn(20))), value.Int(int64(rng.Intn(8))),
			})
		}
		r2 := relation.New(schema.New("b"))
		for i := 0; i < 1+rng.Intn(4); i++ {
			r2.Insert(relation.Tuple{value.Int(int64(rng.Intn(8)))})
		}
		workers := 2 + rng.Intn(7)
		for _, algo := range division.Algorithms() {
			seq := &plan.Divide{
				Dividend: plan.NewScan("r1", r1),
				Divisor:  plan.NewScan("r2", r2),
				Algo:     algo,
			}
			par, _ := Parallelize(seq, ParallelOptions{Workers: workers, Threshold: 1})
			if _, ok := par.(*plan.ParallelDivide); !ok {
				t.Fatalf("trial %d: got %T, want *plan.ParallelDivide", trial, par)
			}
			want, err := exec.Run(context.Background(), exec.Compile(seq, nil))
			if err != nil {
				t.Fatalf("trial %d (%s): sequential: %v", trial, algo, err)
			}
			got, err := exec.Run(context.Background(), exec.Compile(par, exec.NewStats()))
			if err != nil {
				t.Fatalf("trial %d (%s): parallel: %v", trial, algo, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (%s, workers=%d): %d vs %d rows",
					trial, algo, workers, got.Len(), want.Len())
			}
		}
	}
}

// TestParallelizeUnderLimit proves the pass is limit-aware: a
// division beneath a plan.Limit is still parallelized (the streaming
// exchange plus early exit make the parallel form strictly better
// under LIMIT), and the Limit node itself survives on top.
func TestParallelizeUnderLimit(t *testing.T) {
	node, r1, _ := dividePlan(5)
	limited := &plan.Limit{Input: node, N: 1}
	got, trace := Parallelize(limited, ParallelOptions{Workers: 4, Threshold: float64(r1.Len()) / 2})
	lim, ok := got.(*plan.Limit)
	if !ok {
		t.Fatalf("root = %T, want *plan.Limit", got)
	}
	if _, ok := lim.Input.(*plan.ParallelDivide); !ok {
		t.Fatalf("Limit input = %T, want *plan.ParallelDivide", lim.Input)
	}
	if len(trace) != 1 {
		t.Fatalf("trace = %v", trace)
	}
	// The limit caps the cardinality estimate above the exchange.
	if rows := Rows(got); rows != 1 {
		t.Errorf("Rows(Limit[1]) = %g, want 1", rows)
	}
	if rows := Rows(lim.Input); rows <= 1 {
		t.Errorf("Rows under the limit should stay the division estimate, got %g", rows)
	}
}
