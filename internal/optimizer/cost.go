// Package optimizer applies the division rewrite laws as cost-driven
// transformation rules over logical plans, the role the paper
// assigns them in §1.1: "together with heuristics and/or cost
// estimations, the optimizer applies transformation rules to
// subexpressions of the query such that the entire query can be
// evaluated with the minimal resource consumption".
package optimizer

import (
	"divlaws/internal/plan"
	"divlaws/internal/pred"
)

// Default selectivity and shrinkage factors of the cardinality
// estimator. They follow the classic System R style constants.
const (
	eqSelectivity    = 0.1
	rangeSelectivity = 1.0 / 3
	joinSelectivity  = 0.1
	groupShrink      = 1.0 / 3
	divideShrink     = 1.0 / 4
	semiJoinShrink   = 0.5
	diffShrink       = 0.5
)

// perTupleCost weights CPU work per tuple touched; materializing
// operators pay extra per output tuple.
const (
	cpuWeight  = 1.0
	hashWeight = 1.2
	sortWeight = 2.0
	// partitionWeight prices the hash-and-route pass of a parallel
	// exchange: one hash per tuple, cheaper than an operator's full
	// per-tuple work.
	partitionWeight = 0.25
)

// Estimate describes the optimizer's view of a plan: its expected
// output cardinality and cumulative cost.
type Estimate struct {
	Rows float64
	Cost float64
}

// Cost estimates the total cost of evaluating the plan. Leaf
// cardinalities are exact (scans are materialized); everything above
// uses standard independence heuristics.
func Cost(n plan.Node) float64 { return Estimated(n).Cost }

// Rows estimates the output cardinality of the plan.
func Rows(n plan.Node) float64 { return Estimated(n).Rows }

// Estimated computes rows and cost bottom-up.
func Estimated(n plan.Node) Estimate {
	switch t := n.(type) {
	case *plan.Scan:
		rows := float64(t.Rel.Len())
		return Estimate{Rows: rows, Cost: rows * cpuWeight}
	case *plan.Select:
		in := Estimated(t.Input)
		rows := in.Rows * selectivity(t.Pred)
		return Estimate{Rows: rows, Cost: in.Cost + in.Rows*cpuWeight}
	case *plan.Project:
		in := Estimated(t.Input)
		rows := in.Rows * 0.9 // projection may dedup a little
		return Estimate{Rows: rows, Cost: in.Cost + in.Rows*hashWeight}
	case *plan.Set:
		l, r := Estimated(t.Left), Estimated(t.Right)
		var rows float64
		switch t.Op {
		case plan.UnionOp:
			rows = l.Rows + r.Rows
		case plan.IntersectOp:
			rows = minf(l.Rows, r.Rows) * 0.5
		default: // DiffOp
			rows = l.Rows * diffShrink
		}
		return Estimate{Rows: rows, Cost: l.Cost + r.Cost + (l.Rows+r.Rows)*hashWeight}
	case *plan.Product:
		l, r := Estimated(t.Left), Estimated(t.Right)
		rows := l.Rows * r.Rows
		return Estimate{Rows: rows, Cost: l.Cost + r.Cost + rows*cpuWeight}
	case *plan.Join:
		l, r := Estimated(t.Left), Estimated(t.Right)
		rows := l.Rows * r.Rows * joinSelectivity
		return Estimate{Rows: rows, Cost: l.Cost + r.Cost + (l.Rows+r.Rows)*hashWeight + rows*cpuWeight}
	case *plan.ThetaJoin:
		l, r := Estimated(t.Left), Estimated(t.Right)
		rows := l.Rows * r.Rows * selectivity(t.Pred)
		// Theta-joins over arbitrary predicates pay nested-loop cost.
		return Estimate{Rows: rows, Cost: l.Cost + r.Cost + l.Rows*r.Rows*cpuWeight}
	case *plan.SemiJoin:
		l, r := Estimated(t.Left), Estimated(t.Right)
		rows := l.Rows * semiJoinShrink
		return Estimate{Rows: rows, Cost: l.Cost + r.Cost + (l.Rows+r.Rows)*hashWeight}
	case *plan.AntiSemiJoin:
		l, r := Estimated(t.Left), Estimated(t.Right)
		rows := l.Rows * semiJoinShrink
		return Estimate{Rows: rows, Cost: l.Cost + r.Cost + (l.Rows+r.Rows)*hashWeight}
	case *plan.Divide:
		d, v := Estimated(t.Dividend), Estimated(t.Divisor)
		rows := d.Rows * divideShrink
		// Hash-division is linear in both inputs.
		return Estimate{Rows: rows, Cost: d.Cost + v.Cost + (d.Rows+v.Rows)*hashWeight}
	case *plan.GreatDivide:
		d, v := Estimated(t.Dividend), Estimated(t.Divisor)
		rows := d.Rows * divideShrink
		return Estimate{Rows: rows, Cost: d.Cost + v.Cost + (d.Rows+v.Rows)*hashWeight}
	case *plan.ParallelDivide:
		d, v := Estimated(t.Dividend), Estimated(t.Divisor)
		rows := d.Rows * divideShrink
		w := float64(t.Workers)
		if w < 1 {
			w = 1
		}
		// Wall-clock view: each worker divides ~1/w of the dividend
		// against the full divisor concurrently; the range
		// partitioning pass and the quotient merge are sequential
		// overhead (the paper's §5.2.1 proviso).
		divide := (d.Rows/w + v.Rows) * hashWeight
		overhead := d.Rows*partitionWeight + rows*hashWeight
		return Estimate{Rows: rows, Cost: d.Cost + v.Cost + divide + overhead}
	case *plan.ParallelGreatDivide:
		d, v := Estimated(t.Dividend), Estimated(t.Divisor)
		rows := d.Rows * divideShrink
		w := float64(t.Workers)
		if w < 1 {
			w = 1
		}
		// Law 13 replicates the dividend across workers; the model
		// optimistically assumes the per-group division work — not
		// the replicated scan — dominates and divides by w, which is
		// exactly the regime (per §5.2.1) where the rewrite should
		// fire at all.
		divide := (d.Rows + v.Rows) * hashWeight / w
		overhead := v.Rows*partitionWeight + rows*hashWeight
		return Estimate{Rows: rows, Cost: d.Cost + v.Cost + divide + overhead}
	case *plan.Limit:
		in := Estimated(t.Input)
		rows := minf(in.Rows, float64(t.N))
		// The physical LimitIter stops pulling at N, so a streaming
		// subtree's cost is partially avoided; the model keeps the
		// child's full cost (blocking subtrees pay it anyway) plus a
		// per-emitted-tuple pass.
		return Estimate{Rows: rows, Cost: in.Cost + rows*cpuWeight}
	case *plan.Sort:
		in := Estimated(t.Input)
		// Full materialize-and-sort pays the sort weight per input
		// tuple; cardinality is unchanged (ordering a set).
		return Estimate{Rows: in.Rows, Cost: in.Cost + in.Rows*sortWeight}
	case *plan.TopK:
		in := Estimated(t.Input)
		rows := minf(in.Rows, float64(t.K))
		// A bounded heap touches every input tuple once at CPU weight
		// — strictly cheaper than Sort (sortWeight per tuple) + Limit,
		// which is what makes the FuseTopK rewrite always profitable.
		return Estimate{Rows: rows, Cost: in.Cost + in.Rows*cpuWeight + rows*cpuWeight}
	case *plan.Group:
		in := Estimated(t.Input)
		rows := in.Rows * groupShrink
		if len(t.By) == 0 {
			rows = 1
		}
		return Estimate{Rows: rows, Cost: in.Cost + in.Rows*hashWeight}
	case *plan.Rename:
		return Estimated(t.Input)
	default:
		// Unknown operators are costed pessimistically so rules that
		// introduce them never look free.
		var rows, cost float64
		for _, c := range n.Children() {
			e := Estimated(c)
			rows += e.Rows
			cost += e.Cost + e.Rows*sortWeight
		}
		return Estimate{Rows: rows, Cost: cost}
	}
}

// selectivity estimates the fraction of tuples passing a predicate.
func selectivity(p pred.Predicate) float64 {
	switch q := p.(type) {
	case pred.Cmp:
		if q.Op == pred.Eq {
			return eqSelectivity
		}
		if q.Op == pred.Ne {
			return 1 - eqSelectivity
		}
		return rangeSelectivity
	case pred.And:
		s := 1.0
		for _, sub := range q {
			s *= selectivity(sub)
		}
		return s
	case pred.Or:
		s := 0.0
		for _, sub := range q {
			s += selectivity(sub) * (1 - s)
		}
		return s
	case pred.Not:
		return 1 - selectivity(q.P)
	case pred.Literal:
		if bool(q) {
			return 1
		}
		return 0
	default:
		return rangeSelectivity
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
