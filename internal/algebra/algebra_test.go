package algebra

import (
	"testing"
	"testing/quick"

	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func ints(attrs []string, rows ...[]int64) *relation.Relation {
	return relation.Ints(attrs, rows)
}

func TestUnion(t *testing.T) {
	r := ints([]string{"a"}, []int64{1}, []int64{2})
	s := ints([]string{"a"}, []int64{2}, []int64{3})
	got := Union(r, s)
	want := ints([]string{"a"}, []int64{1}, []int64{2}, []int64{3})
	if !got.Equal(want) {
		t.Errorf("Union = %v", got)
	}
}

func TestUnionAlignsColumns(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 2})
	s := ints([]string{"b", "a"}, []int64{4, 3})
	got := Union(r, s)
	want := ints([]string{"a", "b"}, []int64{1, 2}, []int64{3, 4})
	if !got.Equal(want) {
		t.Errorf("aligned Union = %v", got)
	}
}

func TestSetOpsIncompatiblePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for incompatible schemas")
		}
	}()
	Union(ints([]string{"a"}, []int64{1}), ints([]string{"b"}, []int64{1}))
}

func TestIntersect(t *testing.T) {
	r := ints([]string{"a"}, []int64{1}, []int64{2}, []int64{3})
	s := ints([]string{"a"}, []int64{2}, []int64{3}, []int64{4})
	got := Intersect(r, s)
	if !got.Equal(ints([]string{"a"}, []int64{2}, []int64{3})) {
		t.Errorf("Intersect = %v", got)
	}
}

func TestDiff(t *testing.T) {
	r := ints([]string{"a"}, []int64{1}, []int64{2}, []int64{3})
	s := ints([]string{"a"}, []int64{2})
	if got := Diff(r, s); !got.Equal(ints([]string{"a"}, []int64{1}, []int64{3})) {
		t.Errorf("Diff = %v", got)
	}
	if got := Diff(s, r); !got.Empty() {
		t.Errorf("Diff reversed = %v", got)
	}
}

func TestProduct(t *testing.T) {
	r := ints([]string{"a"}, []int64{1}, []int64{2})
	s := ints([]string{"b"}, []int64{10}, []int64{20})
	got := Product(r, s)
	want := ints([]string{"a", "b"},
		[]int64{1, 10}, []int64{1, 20}, []int64{2, 10}, []int64{2, 20})
	if !got.Equal(want) {
		t.Errorf("Product = %v", got)
	}
	if got := Product(r, relation.New(schema.New("c"))); !got.Empty() {
		t.Error("product with empty relation should be empty")
	}
}

func TestProject(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 1}, []int64{1, 2}, []int64{2, 1})
	got := Project(r, "a")
	if !got.Equal(ints([]string{"a"}, []int64{1}, []int64{2})) {
		t.Errorf("Project should dedup: %v", got)
	}
	if got := Project(r, "b", "a"); !got.Contains(relation.Tuple{value.Int(2), value.Int(1)}) {
		t.Errorf("Project reorder = %v", got)
	}
}

func TestSelect(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 5}, []int64{2, 3}, []int64{3, 9})
	p := pred.Compare(pred.Attr("b"), pred.Gt, pred.ConstInt(4))
	got := Select(r, p)
	want := ints([]string{"a", "b"}, []int64{1, 5}, []int64{3, 9})
	if !got.Equal(want) {
		t.Errorf("Select = %v", got)
	}
	if got := Select(r, pred.False); !got.Empty() {
		t.Error("Select FALSE should be empty")
	}
	if got := Select(r, pred.True); !got.Equal(r) {
		t.Error("Select TRUE should be identity")
	}
}

func TestThetaJoin(t *testing.T) {
	r := ints([]string{"a"}, []int64{1}, []int64{2}, []int64{3})
	s := ints([]string{"b"}, []int64{2}, []int64{3})
	lt := pred.Compare(pred.Attr("a"), pred.Lt, pred.Attr("b"))
	got := ThetaJoin(r, s, lt)
	want := ints([]string{"a", "b"},
		[]int64{1, 2}, []int64{1, 3}, []int64{2, 3})
	if !got.Equal(want) {
		t.Errorf("ThetaJoin = %v", got)
	}
	// r ⋈θ s == σθ(r × s), the defining identity.
	if !got.Equal(Select(Product(r, s), lt)) {
		t.Error("theta-join must equal selection over product")
	}
}

func TestNaturalJoin(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 10}, []int64{2, 20})
	s := ints([]string{"b", "c"}, []int64{10, 100}, []int64{10, 101}, []int64{30, 300})
	got := NaturalJoin(r, s)
	want := ints([]string{"a", "b", "c"},
		[]int64{1, 10, 100}, []int64{1, 10, 101})
	if !got.Equal(want) {
		t.Errorf("NaturalJoin = %v", got)
	}
}

func TestNaturalJoinNoCommonIsProduct(t *testing.T) {
	r := ints([]string{"a"}, []int64{1})
	s := ints([]string{"b"}, []int64{2})
	if got := NaturalJoin(r, s); !got.Equal(Product(r, s)) {
		t.Errorf("NaturalJoin disjoint = %v", got)
	}
}

func TestSemiJoin(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	s := ints([]string{"b"}, []int64{10}, []int64{30})
	got := SemiJoin(r, s)
	want := ints([]string{"a", "b"}, []int64{1, 10}, []int64{3, 30})
	if !got.Equal(want) {
		t.Errorf("SemiJoin = %v", got)
	}
	// Defining identity: r ⋉ s = π[r](r ⋈ s).
	if !got.Equal(Project(NaturalJoin(r, s), "a", "b")) {
		t.Error("semi-join identity violated")
	}
}

func TestSemiJoinDegenerate(t *testing.T) {
	r := ints([]string{"a"}, []int64{1}, []int64{2})
	nonempty := ints([]string{"b"}, []int64{9})
	empty := relation.New(schema.New("b"))
	if got := SemiJoin(r, nonempty); !got.Equal(r) {
		t.Errorf("semi-join with disjoint nonempty = %v", got)
	}
	if got := SemiJoin(r, empty); !got.Empty() {
		t.Errorf("semi-join with disjoint empty = %v", got)
	}
}

func TestAntiSemiJoin(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 10}, []int64{2, 20})
	s := ints([]string{"b"}, []int64{10})
	got := AntiSemiJoin(r, s)
	if !got.Equal(ints([]string{"a", "b"}, []int64{2, 20})) {
		t.Errorf("AntiSemiJoin = %v", got)
	}
	// r ⋉ s ∪ r ▷ s partitions r.
	if !Union(SemiJoin(r, s), got).Equal(r) {
		t.Error("semi/anti-semi must partition r")
	}
}

func TestLeftOuterJoin(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 10}, []int64{2, 20})
	s := ints([]string{"b", "c"}, []int64{10, 100})
	got := LeftOuterJoin(r, s)
	if got.Len() != 2 {
		t.Fatalf("LeftOuterJoin Len = %d", got.Len())
	}
	if !got.Contains(relation.Tuple{value.Int(1), value.Int(10), value.Int(100)}) {
		t.Error("matched tuple missing")
	}
	if !got.Contains(relation.Tuple{value.Int(2), value.Int(20), value.Null}) {
		t.Error("dangling tuple should be NULL-padded")
	}
}

func TestRename(t *testing.T) {
	r := ints([]string{"a", "b"}, []int64{1, 2})
	got := Rename(r, "b", "c")
	if !got.Schema().Equal(schema.New("a", "c")) {
		t.Errorf("Rename schema = %v", got.Schema())
	}
	got2 := RenameAll(r, "x", "y")
	if !got2.Schema().Equal(schema.New("x", "y")) {
		t.Errorf("RenameAll schema = %v", got2.Schema())
	}
	defer func() {
		if recover() == nil {
			t.Error("RenameAll arity mismatch should panic")
		}
	}()
	RenameAll(r, "x")
}

func TestGroupPaperFigure10(t *testing.T) {
	// Fig. 10(a,b): r1 = aγsum(x)→b(r0).
	r0 := ints([]string{"a", "x"},
		[]int64{1, 1}, []int64{1, 2}, []int64{1, 3},
		[]int64{2, 1}, []int64{2, 3},
		[]int64{3, 1}, []int64{3, 3}, []int64{3, 4})
	got := Group(r0, []string{"a"}, []AggSpec{{Func: Sum, Attr: "x", As: "b"}})
	want := ints([]string{"a", "b"}, []int64{1, 6}, []int64{2, 4}, []int64{3, 8})
	if !got.Equal(want) {
		t.Errorf("Group sum = %v want %v", got, want)
	}
}

func TestGroupAggregates(t *testing.T) {
	r := ints([]string{"g", "x"},
		[]int64{1, 4}, []int64{1, 2}, []int64{2, 10})
	got := Group(r, []string{"g"}, []AggSpec{
		{Func: Count, As: "c"},
		{Func: Sum, Attr: "x", As: "s"},
		{Func: Min, Attr: "x", As: "lo"},
		{Func: Max, Attr: "x", As: "hi"},
		{Func: Avg, Attr: "x", As: "m"},
	})
	if got.Len() != 2 {
		t.Fatalf("groups = %d", got.Len())
	}
	want1 := relation.Tuple{value.Int(1), value.Int(2), value.Int(6), value.Int(2), value.Int(4), value.Float(3)}
	want2 := relation.Tuple{value.Int(2), value.Int(1), value.Int(10), value.Int(10), value.Int(10), value.Float(10)}
	if !got.Contains(want1) || !got.Contains(want2) {
		t.Errorf("Group aggregates = %v", got)
	}
}

func TestGroupCountAttr(t *testing.T) {
	// count(B) with explicit attribute, as in Law 11's side condition.
	r := ints([]string{"b"}, []int64{1}, []int64{3})
	got := Group(r, nil, []AggSpec{{Func: Count, Attr: "b", As: "c"}})
	if got.Len() != 1 || !got.Tuples()[0][0].Equal(value.Int(2)) {
		t.Errorf("global count = %v", got)
	}
}

func TestGroupGlobalOnEmpty(t *testing.T) {
	r := relation.New(schema.New("x"))
	got := Group(r, nil, []AggSpec{
		{Func: Count, As: "c"},
		{Func: Sum, Attr: "x", As: "s"},
	})
	if got.Len() != 1 {
		t.Fatalf("global agg over empty = %v", got)
	}
	tpl := got.Tuples()[0]
	if !tpl[0].Equal(value.Int(0)) || !tpl[1].IsNull() {
		t.Errorf("empty-input aggregates = %v", tpl)
	}
}

func TestGroupByEmptyInputWithKeys(t *testing.T) {
	r := relation.New(schema.New("g", "x"))
	got := Group(r, []string{"g"}, []AggSpec{{Func: Count, As: "c"}})
	if !got.Empty() {
		t.Errorf("grouped agg over empty should be empty, got %v", got)
	}
}

func TestAggSpecString(t *testing.T) {
	if got := (AggSpec{Func: Sum, Attr: "x", As: "b"}).String(); got != "sum(x)->b" {
		t.Errorf("AggSpec String = %q", got)
	}
	if got := (AggSpec{Func: Count, As: "c"}).String(); got != "count(*)->c" {
		t.Errorf("Count String = %q", got)
	}
}

func TestAggFuncString(t *testing.T) {
	names := map[AggFunc]string{Count: "count", Sum: "sum", Min: "min", Max: "max", Avg: "avg", AggFunc(9): "agg(9)"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("AggFunc(%d) = %q want %q", f, f.String(), want)
		}
	}
}

// --- algebraic identities as property tests ---

func randRel(attrs []string, rows []uint8, width int) *relation.Relation {
	r := relation.New(schema.New(attrs...))
	for i := 0; i+width <= len(rows); i += width {
		t := make(relation.Tuple, width)
		for j := 0; j < width; j++ {
			t[j] = value.Int(int64(rows[i+j] % 8)) // small domain to force overlaps
		}
		r.Insert(t)
	}
	return r
}

func TestSetAlgebraProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		r := randRel([]string{"a", "b"}, xs, 2)
		s := randRel([]string{"a", "b"}, ys, 2)
		// Commutativity of ∪ and ∩.
		if !Union(r, s).Equal(Union(s, r)) || !Intersect(r, s).Equal(Intersect(s, r)) {
			return false
		}
		// r − s = r − (r ∩ s).
		if !Diff(r, s).Equal(Diff(r, Intersect(r, s))) {
			return false
		}
		// (r − s) ∪ (r ∩ s) = r.
		if !Union(Diff(r, s), Intersect(r, s)).Equal(r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestJoinDecompositionProperty(t *testing.T) {
	// r ⋈ s over shared attr b equals π(σ(r × s')) with rename.
	f := func(xs, ys []uint8) bool {
		r := randRel([]string{"a", "b"}, xs, 2)
		s := randRel([]string{"b", "c"}, ys, 2)
		viaJoin := NaturalJoin(r, s)
		s2 := RenameAll(s, "b2", "c")
		eq := pred.Compare(pred.Attr("b"), pred.Eq, pred.Attr("b2"))
		viaProduct := Project(Select(Product(r, s2), eq), "a", "b", "c")
		return viaJoin.Equal(viaProduct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupNonNumericAggregatesYieldNull(t *testing.T) {
	// SUM/AVG over string columns must be NULL, not a crash; MIN/MAX
	// still work via the total order.
	r := relation.FromRows(schema.New("g", "s"), [][]any{
		{1, "b"}, {1, "a"},
	})
	got := Group(r, []string{"g"}, []AggSpec{
		{Func: Sum, Attr: "s", As: "sum"},
		{Func: Avg, Attr: "s", As: "avg"},
		{Func: Min, Attr: "s", As: "lo"},
		{Func: Max, Attr: "s", As: "hi"},
	})
	tpl := got.Tuples()[0]
	if !tpl[1].IsNull() || !tpl[2].IsNull() {
		t.Errorf("sum/avg over strings = %v, %v; want NULLs", tpl[1], tpl[2])
	}
	if !tpl[3].Equal(value.String("a")) || !tpl[4].Equal(value.String("b")) {
		t.Errorf("min/max over strings = %v, %v", tpl[3], tpl[4])
	}
}
