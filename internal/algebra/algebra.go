// Package algebra implements the basic relational operators of the
// paper's Appendix A with set semantics: union, intersection,
// difference, Cartesian product, projection, selection, theta-join,
// natural join, semi-join, anti-semi-join, left outer join, grouping
// with aggregation, and rename.
//
// Division (small and great divide) is a derived operator built on
// these; it lives in package division.
package algebra

import (
	"fmt"

	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// align returns s with its columns reordered to match r's schema.
// It panics if the attribute sets differ: the set operators are only
// defined over union-compatible relations.
func align(r, s *relation.Relation) *relation.Relation {
	if r.Schema().Equal(s.Schema()) {
		return s
	}
	if !r.Schema().EqualSet(s.Schema()) {
		panic(fmt.Sprintf("algebra: set operator over incompatible schemas %v and %v",
			r.Schema(), s.Schema()))
	}
	return s.Reorder(r.Schema().Attrs())
}

// Union returns r ∪ s.
func Union(r, s *relation.Relation) *relation.Relation {
	s = align(r, s)
	out := relation.New(r.Schema())
	out.InsertAll(r)
	out.InsertAll(s)
	return out
}

// Intersect returns r ∩ s.
func Intersect(r, s *relation.Relation) *relation.Relation {
	s = align(r, s)
	out := relation.New(r.Schema())
	for _, t := range r.Tuples() {
		if s.Contains(t) {
			out.InsertOwned(t)
		}
	}
	return out
}

// Diff returns r − s.
func Diff(r, s *relation.Relation) *relation.Relation {
	s = align(r, s)
	out := relation.New(r.Schema())
	for _, t := range r.Tuples() {
		if !s.Contains(t) {
			out.InsertOwned(t)
		}
	}
	return out
}

// Product returns the Cartesian product r × s. The schemas must be
// disjoint (rename first otherwise).
func Product(r, s *relation.Relation) *relation.Relation {
	out := relation.New(r.Schema().Concat(s.Schema()))
	for _, t := range r.Tuples() {
		for _, u := range s.Tuples() {
			out.InsertOwned(t.Concat(u))
		}
	}
	return out
}

// Project returns π_attrs(r), eliminating duplicates.
func Project(r *relation.Relation, attrs ...string) *relation.Relation {
	sch, pos := r.Schema().Project(attrs)
	out := relation.New(sch)
	for _, t := range r.Tuples() {
		out.InsertOwned(t.Project(pos))
	}
	return out
}

// Select returns σ_p(r).
func Select(r *relation.Relation, p pred.Predicate) *relation.Relation {
	out := relation.New(r.Schema())
	for _, t := range r.Tuples() {
		if p.Eval(t, r.Schema()) {
			out.InsertOwned(t)
		}
	}
	return out
}

// ThetaJoin returns r ⋈θ s = σθ(r × s). The schemas must be
// disjoint; qualify or rename attributes first.
func ThetaJoin(r, s *relation.Relation, theta pred.Predicate) *relation.Relation {
	out := relation.New(r.Schema().Concat(s.Schema()))
	outSch := out.Schema()
	for _, t := range r.Tuples() {
		for _, u := range s.Tuples() {
			joined := t.Concat(u)
			if theta.Eval(joined, outSch) {
				out.InsertOwned(joined)
			}
		}
	}
	return out
}

// NaturalJoin returns r ⋈ s, joining on the attributes common to both
// schemas and emitting each common attribute once. With no common
// attributes it degenerates to the Cartesian product, as in the
// textbook definition.
func NaturalJoin(r, s *relation.Relation) *relation.Relation {
	common := r.Schema().Intersect(s.Schema())
	if common.Len() == 0 {
		return Product(r, s)
	}
	rPos := r.Schema().Positions(common.Attrs())
	sPos := s.Schema().Positions(common.Attrs())
	sExtra := s.Schema().Minus(common)
	sExtraPos := s.Schema().Positions(sExtra.Attrs())

	// Hash s on the common attributes: key id -> matching s tuples.
	var keyIx relation.TupleIndex
	var rows [][]relation.Tuple
	for _, u := range s.Tuples() {
		id, created := keyIx.IDProj(u, sPos)
		if created {
			rows = append(rows, nil)
		}
		rows[id] = append(rows[id], u)
	}

	out := relation.New(r.Schema().Union(sExtra))
	for _, t := range r.Tuples() {
		if id := keyIx.LookupProj(t, rPos); id >= 0 {
			for _, u := range rows[id] {
				out.InsertOwned(t.ConcatProj(u, sExtraPos))
			}
		}
	}
	return out
}

// SemiJoin returns the left semi-join r ⋉ s: tuples of r that join
// with at least one tuple of s on the common attributes.
func SemiJoin(r, s *relation.Relation) *relation.Relation {
	common := r.Schema().Intersect(s.Schema())
	out := relation.New(r.Schema())
	if common.Len() == 0 {
		// Degenerate: natural join is a product, so r ⋉ s is r when s
		// is nonempty and ∅ otherwise.
		if !s.Empty() {
			out.InsertAll(r)
		}
		return out
	}
	rPos := r.Schema().Positions(common.Attrs())
	sPos := s.Schema().Positions(common.Attrs())
	var keys relation.TupleIndex
	for _, u := range s.Tuples() {
		keys.IDProj(u, sPos)
	}
	for _, t := range r.Tuples() {
		if keys.LookupProj(t, rPos) >= 0 {
			out.InsertOwned(t)
		}
	}
	return out
}

// AntiSemiJoin returns r ▷ s = r − (r ⋉ s): tuples of r with no join
// partner in s.
func AntiSemiJoin(r, s *relation.Relation) *relation.Relation {
	return Diff(r, SemiJoin(r, s))
}

// LeftOuterJoin returns r ⟕ s: the natural join plus the dangling
// tuples of r padded with NULLs for s's extra attributes (paper
// Appendix A, after Griffin & Kumar).
func LeftOuterJoin(r, s *relation.Relation) *relation.Relation {
	inner := NaturalJoin(r, s)
	out := relation.New(inner.Schema())
	out.InsertAll(inner)
	pad := inner.Schema().Len() - r.Schema().Len()
	for _, t := range AntiSemiJoin(r, s).Tuples() {
		padded := t.Clone()
		for i := 0; i < pad; i++ {
			padded = append(padded, value.Null)
		}
		out.InsertOwned(padded)
	}
	return out
}

// Rename returns r with attribute from renamed to to.
func Rename(r *relation.Relation, from, to string) *relation.Relation {
	out := relation.New(r.Schema().Rename(from, to))
	for _, t := range r.Tuples() {
		out.InsertOwned(t)
	}
	return out
}

// RenameAll returns r with its schema replaced by the given attribute
// names (same arity), used to qualify operands apart before products.
func RenameAll(r *relation.Relation, attrs ...string) *relation.Relation {
	if len(attrs) != r.Schema().Len() {
		panic(fmt.Sprintf("algebra: RenameAll arity %d vs schema %v", len(attrs), r.Schema()))
	}
	out := relation.New(schema.New(attrs...))
	for _, t := range r.Tuples() {
		out.InsertOwned(t)
	}
	return out
}
