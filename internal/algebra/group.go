package algebra

import (
	"fmt"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// AggFunc identifies an aggregation function for the grouping
// operator GγF (paper Appendix A).
type AggFunc uint8

// The supported aggregation functions.
const (
	Count AggFunc = iota // count of tuples in the group
	Sum
	Min
	Max
	Avg
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// AggSpec is one entry of the aggregation list F: Func applied to
// input attribute Attr, producing output attribute As. Count ignores
// Attr (it counts tuples; the paper writes count(B) but relations are
// sets so the count of tuples equals the count of attribute values).
type AggSpec struct {
	Func AggFunc
	Attr string // input attribute; unused for Count
	As   string // output attribute name
}

// String renders the spec like the paper: sum(x)→b.
func (a AggSpec) String() string {
	in := a.Attr
	if a.Func == Count && in == "" {
		in = "*"
	}
	return fmt.Sprintf("%s(%s)->%s", a.Func, in, a.As)
}

type aggState struct {
	count int64
	sum   value.Value
	min   value.Value
	max   value.Value
	init  bool
}

func (s *aggState) add(v value.Value) {
	s.count++
	if !s.init {
		s.sum, s.min, s.max, s.init = v, v, v, true
		return
	}
	if v.IsNumeric() && s.sum.IsNumeric() {
		s.sum = value.Add(s.sum, v)
	}
	s.min = value.Min(s.min, v)
	s.max = value.Max(s.max, v)
}

func (s *aggState) result(f AggFunc) value.Value {
	switch f {
	case Count:
		return value.Int(s.count)
	case Sum:
		if !s.init || !s.sum.IsNumeric() {
			// SUM over non-numeric values is NULL, like SQL engines
			// that reject it at runtime rather than crash.
			return value.Null
		}
		return s.sum
	case Min:
		if !s.init {
			return value.Null
		}
		return s.min
	case Max:
		if !s.init {
			return value.Null
		}
		return s.max
	case Avg:
		if !s.init || s.count == 0 || !s.sum.IsNumeric() {
			return value.Null
		}
		return value.Float(s.sum.AsFloat() / float64(s.count))
	default:
		panic(fmt.Sprintf("algebra: unknown aggregate %d", uint8(f)))
	}
}

// Group implements the grouping operator GγF(r): group r's tuples by
// the attributes in by and evaluate each AggSpec within each group.
// The result schema is by ∪ the output names, in that order. With an
// empty by list it produces a single tuple over the whole relation
// (global aggregation), even for an empty input.
func Group(r *relation.Relation, by []string, aggs []AggSpec) *relation.Relation {
	outAttrs := append(append([]string(nil), by...), make([]string, 0, len(aggs))...)
	for _, a := range aggs {
		outAttrs = append(outAttrs, a.As)
	}
	out := relation.New(schema.New(outAttrs...))

	byPos := r.Schema().Positions(by)
	inPos := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == Count && a.Attr == "" {
			inPos[i] = -1
			continue
		}
		inPos[i] = r.Schema().MustIndex(a.Attr)
	}

	// Group keys get dense ids in first-seen order (the deterministic
	// output order); states[id] holds that group's aggregate states.
	var keyIx relation.TupleIndex
	var states [][]aggState
	for _, t := range r.Tuples() {
		id, created := keyIx.IDProj(t, byPos)
		if created {
			states = append(states, make([]aggState, len(aggs)))
		}
		st := states[id]
		for i := range aggs {
			if inPos[i] < 0 {
				st[i].count++
				continue
			}
			st[i].add(t[inPos[i]])
		}
	}
	if len(by) == 0 && keyIx.Len() == 0 {
		// Global aggregation over an empty relation yields one tuple
		// of aggregate identities (count = 0, others NULL).
		keyIx.ID(relation.Tuple{})
		states = append(states, make([]aggState, len(aggs)))
	}
	for id, st := range states {
		key := keyIx.Key(id)
		row := make(relation.Tuple, 0, len(key)+len(aggs))
		row = append(row, key...)
		for i, a := range aggs {
			row = append(row, st[i].result(a.Func))
		}
		out.InsertOwned(row)
	}
	return out
}
