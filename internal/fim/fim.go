// Package fim implements frequent itemset discovery (paper §3), the
// paper's showcase application for the great divide: the support
// counting phase of each Apriori iteration is a single
//
//	quotient = transactions ÷* candidates
//
// over vertical (tid, item) / (itemset, item) tables, followed by
// grouping on itemset and filtering by minimum support. A classical
// hash-counting Apriori serves as the baseline comparator.
package fim

import (
	"fmt"
	"sort"
	"strings"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// Itemset is a sorted list of item ids.
type Itemset []int64

// Key renders the canonical identity of the itemset. The miners
// themselves track itemsets through the engine's TupleIndex; the
// string key is retained as the independent identity the
// string-keyed collision-test oracle is built on.
func (s Itemset) Key() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = fmt.Sprintf("%d", it)
	}
	return strings.Join(parts, ",")
}

// itemsetTuple encodes an itemset as the tuple of its items, the
// injective representation the TupleIndex hashes.
func itemsetTuple(s Itemset) relation.Tuple {
	t := make(relation.Tuple, len(s))
	for i, it := range s {
		t[i] = value.Int(it)
	}
	return t
}

// itemsetIndex assigns dense ids to itemsets through the engine's
// TupleIndex, replacing per-itemset string keys in the miners'
// candidate bookkeeping. Ids are first-seen order.
type itemsetIndex struct {
	ix   relation.TupleIndex
	sets []Itemset
}

// add indexes s, returning its dense id (stable across duplicates).
func (x *itemsetIndex) add(s Itemset) int {
	id, created := x.ix.ID(itemsetTuple(s))
	if created {
		x.sets = append(x.sets, s)
	}
	return id
}

// contains reports whether s is indexed.
func (x *itemsetIndex) contains(s Itemset) bool {
	return x.ix.Lookup(itemsetTuple(s)) >= 0
}

// set returns the itemset with the given id.
func (x *itemsetIndex) set(id int) Itemset { return x.sets[id] }

// len returns the number of indexed itemsets.
func (x *itemsetIndex) len() int { return len(x.sets) }

// Result is one discovered frequent itemset with its support count.
type Result struct {
	Items   Itemset
	Support int
}

// sortResults orders results canonically for comparison.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Items, rs[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Transactions is the vertical transaction table abstraction both
// miners consume: a list of (tid, sorted items).
type Transactions struct {
	rows map[int64][]int64
	ids  []int64
}

// FromLists builds Transactions from id → items lists.
func FromLists(lists map[int64][]int64) *Transactions {
	t := &Transactions{rows: make(map[int64][]int64, len(lists))}
	for id, items := range lists {
		sorted := append([]int64(nil), items...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		// Deduplicate.
		out := sorted[:0]
		for i, x := range sorted {
			if i == 0 || sorted[i-1] != x {
				out = append(out, x)
			}
		}
		t.rows[id] = out
		t.ids = append(t.ids, id)
	}
	sort.Slice(t.ids, func(i, j int) bool { return t.ids[i] < t.ids[j] })
	return t
}

// Len returns the number of transactions.
func (t *Transactions) Len() int { return len(t.ids) }

// Relation renders the vertical transactions(tid, item) table.
func (t *Transactions) Relation() *relation.Relation {
	r := relation.New(schema.New("tid", "item"))
	for _, id := range t.ids {
		for _, it := range t.rows[id] {
			r.Insert(relation.Tuple{value.Int(id), value.Int(it)})
		}
	}
	return r
}

// Miner discovers frequent itemsets above a minimum support.
type Miner interface {
	// Mine returns every itemset with support >= minSupport,
	// canonically sorted.
	Mine(t *Transactions, minSupport int) []Result
	// Name identifies the algorithm in benchmark output.
	Name() string
}

// --- great-divide Apriori ---

// DivideMiner is the paper's §3 strategy: candidate generation as in
// Apriori, support counting via one great divide per level.
type DivideMiner struct{}

// Name implements Miner.
func (DivideMiner) Name() string { return "apriori-great-divide" }

// Mine implements Miner.
func (DivideMiner) Mine(t *Transactions, minSupport int) []Result {
	transactions := t.Relation()
	var results []Result

	// Level 1: frequent single items by plain counting.
	freq := frequentItems(t, minSupport)
	for _, f := range freq {
		results = append(results, f)
	}
	current := make([]Itemset, len(freq))
	for i, f := range freq {
		current[i] = f.Items
	}

	for k := 2; len(current) > 0; k++ {
		candidates := generateCandidates(current, k)
		if len(candidates) == 0 {
			break
		}
		// Vertical candidates(itemset, item) table keyed by the dense
		// TupleIndex id of each itemset. The paper notes the candidates
		// need not share a size, but Apriori levels do.
		cand := relation.New(schema.New("itemset", "item"))
		var candIx itemsetIndex
		for _, c := range candidates {
			id := candIx.add(c)
			for _, it := range c {
				cand.Insert(relation.Tuple{value.Int(int64(id)), value.Int(it)})
			}
		}

		// quotient = transactions ÷* candidates (schema tid, itemset).
		quotient := division.GreatDivide(transactions, cand)

		// Support = count of tid per itemset; keep frequent ones.
		counted := algebra.Group(quotient, []string{"itemset"},
			[]algebra.AggSpec{{Func: algebra.Count, As: "support"}})
		frequent := algebra.Select(counted,
			pred.Compare(pred.Attr("support"), pred.Ge, pred.ConstInt(int64(minSupport))))

		current = current[:0]
		for _, row := range frequent.Tuples() {
			items := candIx.set(int(row[0].AsInt()))
			results = append(results, Result{Items: items, Support: int(row[1].AsInt())})
			current = append(current, items)
		}
		sortItemsets(current)
	}
	sortResults(results)
	return results
}

// --- classical baseline Apriori ---

// HashMiner is the classical Apriori baseline: per-transaction
// subset counting against a candidate hash map.
type HashMiner struct{}

// Name implements Miner.
func (HashMiner) Name() string { return "apriori-hash-count" }

// Mine implements Miner.
func (HashMiner) Mine(t *Transactions, minSupport int) []Result {
	var results []Result
	freq := frequentItems(t, minSupport)
	results = append(results, freq...)
	current := make([]Itemset, len(freq))
	for i, f := range freq {
		current[i] = f.Items
	}

	for k := 2; len(current) > 0; k++ {
		candidates := generateCandidates(current, k)
		if len(candidates) == 0 {
			break
		}
		var candIx itemsetIndex
		for _, c := range candidates {
			candIx.add(c)
		}
		counts := make([]int, candIx.len())
		for _, id := range t.ids {
			items := t.rows[id]
			for cid := 0; cid < candIx.len(); cid++ {
				if containsSorted(items, candIx.set(cid)) {
					counts[cid]++
				}
			}
		}
		current = current[:0]
		for cid, n := range counts {
			if n >= minSupport {
				items := candIx.set(cid)
				results = append(results, Result{Items: items, Support: n})
				current = append(current, items)
			}
		}
		sortItemsets(current)
	}
	sortResults(results)
	return results
}

// mineStringKeyed is the string-keyed Apriori reference retained as
// the collision-test oracle: all candidate bookkeeping goes through
// Itemset.Key strings and Go maps, never the TupleIndex, so the
// masked-hash tests have an independent result to compare both
// miners against.
func mineStringKeyed(t *Transactions, minSupport int) []Result {
	var results []Result
	freq := frequentItems(t, minSupport)
	results = append(results, freq...)
	current := make([]Itemset, len(freq))
	for i, f := range freq {
		current[i] = f.Items
	}

	for k := 2; len(current) > 0; k++ {
		// Apriori-gen over string keys.
		prev := make(map[string]bool, len(current))
		for _, s := range current {
			prev[s.Key()] = true
		}
		var candidates []Itemset
		for i := 0; i < len(current); i++ {
			for j := i + 1; j < len(current); j++ {
				a, b := current[i], current[j]
				if len(a) != k-1 || len(b) != k-1 {
					continue
				}
				if !samePrefix(a, b) || a[len(a)-1] >= b[len(b)-1] {
					continue
				}
				cand := append(append(Itemset{}, a...), b[len(b)-1])
				ok := true
				sub := make(Itemset, 0, len(cand)-1)
				for skip := range cand {
					sub = sub[:0]
					for i, it := range cand {
						if i != skip {
							sub = append(sub, it)
						}
					}
					if !prev[sub.Key()] {
						ok = false
						break
					}
				}
				if ok {
					candidates = append(candidates, cand)
				}
			}
		}
		if len(candidates) == 0 {
			break
		}
		counts := make(map[string]int, len(candidates))
		byKey := make(map[string]Itemset, len(candidates))
		for _, c := range candidates {
			byKey[c.Key()] = c
		}
		for _, id := range t.ids {
			items := t.rows[id]
			for _, c := range candidates {
				if containsSorted(items, c) {
					counts[c.Key()]++
				}
			}
		}
		current = current[:0]
		for key, n := range counts {
			if n >= minSupport {
				items := byKey[key]
				results = append(results, Result{Items: items, Support: n})
				current = append(current, items)
			}
		}
		sortItemsets(current)
	}
	sortResults(results)
	return results
}

// frequentItems counts single-item supports.
func frequentItems(t *Transactions, minSupport int) []Result {
	counts := make(map[int64]int)
	for _, id := range t.ids {
		for _, it := range t.rows[id] {
			counts[it]++
		}
	}
	var out []Result
	for it, n := range counts {
		if n >= minSupport {
			out = append(out, Result{Items: Itemset{it}, Support: n})
		}
	}
	sortResults(out)
	return out
}

// generateCandidates joins frequent (k-1)-itemsets sharing a
// (k-2)-prefix and prunes candidates with an infrequent subset — the
// classic Apriori-gen. Frequent-subset membership runs through the
// TupleIndex, not string keys.
func generateCandidates(frequent []Itemset, k int) []Itemset {
	var prev itemsetIndex
	for _, s := range frequent {
		prev.add(s)
	}
	var out []Itemset
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			if len(a) != k-1 || len(b) != k-1 {
				continue
			}
			if !samePrefix(a, b) || a[len(a)-1] >= b[len(b)-1] {
				continue
			}
			cand := append(append(Itemset{}, a...), b[len(b)-1])
			if allSubsetsFrequent(cand, &prev) {
				out = append(out, cand)
			}
		}
	}
	sortItemsets(out)
	return out
}

func samePrefix(a, b Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand Itemset, prev *itemsetIndex) bool {
	sub := make(Itemset, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !prev.contains(sub) {
			return false
		}
	}
	return true
}

// containsSorted reports whether the sorted list super contains all
// of the sorted list sub.
func containsSorted(super []int64, sub Itemset) bool {
	i := 0
	for _, want := range sub {
		for i < len(super) && super[i] < want {
			i++
		}
		if i >= len(super) || super[i] != want {
			return false
		}
		i++
	}
	return true
}

func sortItemsets(ss []Itemset) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
