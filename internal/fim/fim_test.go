package fim

import (
	"math/rand"
	"reflect"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/hashkey"
)

// paperBaskets is a small hand-checked dataset.
//
//	t1: A B C    t2: A B    t3: B C    t4: A B D
//
// minSupport 2 → frequent: {A}:3 {B}:4 {C}:2 {AB}:3 {BC}:2 and
// {AC} has support 1 (infrequent); {ABC} pruned.
func paperBaskets() *Transactions {
	return FromLists(map[int64][]int64{
		1: {1, 2, 3}, // A=1 B=2 C=3
		2: {1, 2},
		3: {2, 3},
		4: {1, 2, 4},
	})
}

func TestDivideMinerHandChecked(t *testing.T) {
	got := DivideMiner{}.Mine(paperBaskets(), 2)
	want := []Result{
		{Items: Itemset{1}, Support: 3},
		{Items: Itemset{2}, Support: 4},
		{Items: Itemset{3}, Support: 2},
		{Items: Itemset{1, 2}, Support: 3},
		{Items: Itemset{2, 3}, Support: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Mine = %v, want %v", got, want)
	}
}

func TestMinersAgreeOnHandChecked(t *testing.T) {
	d := DivideMiner{}.Mine(paperBaskets(), 2)
	h := HashMiner{}.Mine(paperBaskets(), 2)
	if !reflect.DeepEqual(d, h) {
		t.Errorf("miners disagree:\ndivide: %v\nhash:   %v", d, h)
	}
}

func TestMinersAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		gen := datagen.Baskets{
			Transactions: 20 + rng.Intn(40),
			Items:        6 + rng.Intn(6),
			AvgSize:      3,
			Skew:         float64(trial%3) * 0.5,
			Seed:         int64(trial),
		}
		txs := gen.Generate()
		lists := make(map[int64][]int64, len(txs))
		for _, tx := range txs {
			lists[tx.ID] = tx.Items
		}
		trans := FromLists(lists)
		minSup := 2 + rng.Intn(4)
		d := DivideMiner{}.Mine(trans, minSup)
		h := HashMiner{}.Mine(trans, minSup)
		if !reflect.DeepEqual(d, h) {
			t.Fatalf("trial %d (minSup %d): miners disagree\ndivide: %v\nhash:   %v",
				trial, minSup, d, h)
		}
	}
}

func TestHighSupportYieldsNothing(t *testing.T) {
	for _, m := range []Miner{DivideMiner{}, HashMiner{}} {
		if got := m.Mine(paperBaskets(), 100); len(got) != 0 {
			t.Errorf("%s: expected no frequent itemsets, got %v", m.Name(), got)
		}
	}
}

func TestSupportOneKeepsEverything(t *testing.T) {
	// minSupport 1 keeps every subset of every transaction that
	// Apriori reaches; both miners must still agree.
	d := DivideMiner{}.Mine(paperBaskets(), 1)
	h := HashMiner{}.Mine(paperBaskets(), 1)
	if !reflect.DeepEqual(d, h) {
		t.Errorf("miners disagree at minSupport 1:\n%v\nvs\n%v", d, h)
	}
	// {ABD} is a 3-itemset with support 1 and must be found.
	found := false
	for _, r := range d {
		if r.Items.Key() == "1,2,4" {
			found = true
			if r.Support != 1 {
				t.Errorf("{A,B,D} support = %d", r.Support)
			}
		}
	}
	if !found {
		t.Error("{A,B,D} missing at minSupport 1")
	}
}

func TestGenerateCandidatesPrunes(t *testing.T) {
	// {1,2} and {1,3} join to {1,2,3}, but {2,3} is not frequent →
	// pruned.
	frequent := []Itemset{{1, 2}, {1, 3}}
	if got := generateCandidates(frequent, 3); len(got) != 0 {
		t.Errorf("candidates = %v, want none (subset pruning)", got)
	}
	// With {2,3} present the candidate survives.
	frequent = []Itemset{{1, 2}, {1, 3}, {2, 3}}
	got := generateCandidates(frequent, 3)
	if len(got) != 1 || got[0].Key() != "1,2,3" {
		t.Errorf("candidates = %v, want [{1,2,3}]", got)
	}
}

func TestContainsSorted(t *testing.T) {
	cases := []struct {
		super []int64
		sub   Itemset
		want  bool
	}{
		{[]int64{1, 2, 3}, Itemset{1, 3}, true},
		{[]int64{1, 2, 3}, Itemset{}, true},
		{[]int64{1, 3}, Itemset{2}, false},
		{[]int64{1, 3}, Itemset{1, 2, 3}, false},
		{[]int64{}, Itemset{1}, false},
	}
	for _, tc := range cases {
		if got := containsSorted(tc.super, tc.sub); got != tc.want {
			t.Errorf("containsSorted(%v, %v) = %t", tc.super, tc.sub, got)
		}
	}
}

func TestTransactionsDedupAndSort(t *testing.T) {
	trans := FromLists(map[int64][]int64{7: {3, 1, 3, 2, 1}})
	rel := trans.Relation()
	if rel.Len() != 3 {
		t.Errorf("vertical relation Len = %d, want 3 (dedup)", rel.Len())
	}
	if trans.Len() != 1 {
		t.Errorf("Len = %d", trans.Len())
	}
}

func TestItemsetKey(t *testing.T) {
	s := Itemset{1, 2, 10}
	if s.Key() != "1,2,10" {
		t.Errorf("Key = %q", s.Key())
	}
}

func TestMinerNames(t *testing.T) {
	var d DivideMiner
	var h HashMiner
	if d.Name() == h.Name() {
		t.Error("miners must have distinct names")
	}
}

// TestMinersCollisions degrades every hash to 3 bits, so the
// TupleIndex-based candidate bookkeeping of both miners (and the
// division underneath DivideMiner) collides constantly, and checks
// both against the fully string-keyed reference miner.
func TestMinersCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(7)
	defer restore()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		gen := datagen.Baskets{
			Transactions: 15 + rng.Intn(25),
			Items:        5 + rng.Intn(5),
			AvgSize:      3,
			Seed:         int64(100 + trial),
		}
		txs := gen.Generate()
		lists := make(map[int64][]int64, len(txs))
		for _, tx := range txs {
			lists[tx.ID] = tx.Items
		}
		trans := FromLists(lists)
		minSup := 2 + rng.Intn(3)
		want := mineStringKeyed(trans, minSup)
		for _, m := range []Miner{DivideMiner{}, HashMiner{}} {
			if got := m.Mine(trans, minSup); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (%s, minSup %d): masked mining diverged\ngot:  %v\nwant: %v",
					trial, m.Name(), minSup, got, want)
			}
		}
	}
}
