package exec

import (
	"context"
	"fmt"
	"sort"

	"divlaws/internal/algebra"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// ScanIter streams a materialized relation. It is dual-mode: Next
// and NextBatch share one cursor, the batches being zero-copy windows
// over the relation's tuple slice.
type ScanIter struct {
	Label string
	Rel   *relation.Relation
	Stats *Stats
	windowBatcher
	pos  int
	open bool
}

// Open implements Iterator.
func (s *ScanIter) Open(ctx context.Context) error { s.pos, s.open = 0, true; return nil }

// OpenBatch implements BatchIterator.
func (s *ScanIter) OpenBatch(ctx context.Context) error { return s.Open(ctx) }

// Next implements Iterator.
func (s *ScanIter) Next() (relation.Tuple, bool, error) {
	if !s.open {
		return nil, false, errNotOpen("ScanIter")
	}
	if s.pos >= s.Rel.Len() {
		return nil, false, nil
	}
	t := s.Rel.Tuples()[s.pos]
	s.pos++
	s.Stats.count(s.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (s *ScanIter) NextBatch() (*relation.Batch, error) {
	if !s.open {
		return nil, errNotOpen("ScanIter")
	}
	b := s.window(s.Rel.Tuples(), &s.pos)
	if b != nil {
		s.Stats.count(s.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (s *ScanIter) Close() error { s.open = false; s.release(); return nil }

// Schema implements Iterator.
func (s *ScanIter) Schema() schema.Schema { return s.Rel.Schema() }

// FilterIter applies a predicate, fully pipelined.
type FilterIter struct {
	Label string
	Input Iterator
	Pred  pred.Predicate
	Stats *Stats
}

// Open implements Iterator.
func (f *FilterIter) Open(ctx context.Context) error { return f.Input.Open(ctx) }

// Next implements Iterator.
func (f *FilterIter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := f.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred.Eval(t, f.Input.Schema()) {
			f.Stats.count(f.Label, 1)
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (f *FilterIter) Close() error { return f.Input.Close() }

// Schema implements Iterator.
func (f *FilterIter) Schema() schema.Schema { return f.Input.Schema() }

// ProjectIter projects attributes and eliminates duplicates with a
// streaming hash set (set semantics). The projection is only
// materialized for tuples that survive the dedup.
type ProjectIter struct {
	Label string
	Input Iterator
	Attrs []string
	Stats *Stats
	pos   []int
	out   schema.Schema
	seen  *relation.TupleIndex
}

// Open implements Iterator.
func (p *ProjectIter) Open(ctx context.Context) error {
	p.out, p.pos = p.Input.Schema().Project(p.Attrs)
	p.seen = new(relation.TupleIndex)
	return p.Input.Open(ctx)
}

// Next implements Iterator.
func (p *ProjectIter) Next() (relation.Tuple, bool, error) {
	if p.seen == nil {
		return nil, false, errNotOpen("ProjectIter")
	}
	for {
		t, ok, err := p.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		id, created := p.seen.IDProj(t, p.pos)
		if !created {
			continue
		}
		p.Stats.count(p.Label, 1)
		return p.seen.Key(id), true, nil
	}
}

// Close implements Iterator.
func (p *ProjectIter) Close() error { p.seen = nil; return p.Input.Close() }

// Schema implements Iterator.
func (p *ProjectIter) Schema() schema.Schema {
	if p.out.Len() == 0 {
		p.out, p.pos = p.Input.Schema().Project(p.Attrs)
	}
	return p.out
}

// UnionIter streams left then right, deduplicating.
type UnionIter struct {
	Label       string
	Left, Right Iterator
	Stats       *Stats
	seen        *relation.TupleIndex
	onRight     bool
	rightPos    []int
}

// Open implements Iterator.
func (u *UnionIter) Open(ctx context.Context) error {
	u.seen = new(relation.TupleIndex)
	u.onRight = false
	if !u.Left.Schema().EqualSet(u.Right.Schema()) {
		return schemaErr("Union", u.Left.Schema(), u.Right.Schema())
	}
	u.rightPos = u.Right.Schema().Positions(u.Left.Schema().Attrs())
	if err := u.Left.Open(ctx); err != nil {
		return err
	}
	return u.Right.Open(ctx)
}

// Next implements Iterator.
func (u *UnionIter) Next() (relation.Tuple, bool, error) {
	if u.seen == nil {
		return nil, false, errNotOpen("UnionIter")
	}
	for {
		if !u.onRight {
			t, ok, err := u.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				u.onRight = true
				continue
			}
			if _, created := u.seen.ID(t); !created {
				continue
			}
			u.Stats.count(u.Label, 1)
			return t, true, nil
		}
		t, ok, err := u.Right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		id, created := u.seen.IDProj(t, u.rightPos)
		if !created {
			continue
		}
		u.Stats.count(u.Label, 1)
		return u.seen.Key(id), true, nil
	}
}

// Close implements Iterator.
func (u *UnionIter) Close() error {
	u.seen = nil
	err1 := u.Left.Close()
	err2 := u.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (u *UnionIter) Schema() schema.Schema { return u.Left.Schema() }

// HashSetOpIter implements intersection and difference by building a
// hash set over the right input, then streaming the left.
type HashSetOpIter struct {
	Label       string
	Left, Right Iterator
	Keep        bool // true: intersect (keep hits); false: diff (keep misses)
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every     int
	rightKeys *relation.TupleIndex
	emitted   *relation.TupleIndex
}

// Open implements Iterator.
func (h *HashSetOpIter) Open(ctx context.Context) error {
	if !h.Left.Schema().EqualSet(h.Right.Schema()) {
		return schemaErr("set operator", h.Left.Schema(), h.Right.Schema())
	}
	if err := h.Left.Open(ctx); err != nil {
		return err
	}
	if err := h.Right.Open(ctx); err != nil {
		return err
	}
	pos := h.Right.Schema().Positions(h.Left.Schema().Attrs())
	h.rightKeys = new(relation.TupleIndex)
	if err := drainEvery(ctx, h.Right, h.Every, func(t relation.Tuple) {
		h.rightKeys.IDProj(t, pos)
	}); err != nil {
		return err
	}
	h.emitted = new(relation.TupleIndex)
	return nil
}

// Next implements Iterator.
func (h *HashSetOpIter) Next() (relation.Tuple, bool, error) {
	if h.rightKeys == nil {
		return nil, false, errNotOpen("HashSetOpIter")
	}
	for {
		t, ok, err := h.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		hit := h.rightKeys.Lookup(t) >= 0
		if hit != h.Keep {
			continue
		}
		if _, created := h.emitted.ID(t); !created {
			continue
		}
		h.Stats.count(h.Label, 1)
		return t, true, nil
	}
}

// Close implements Iterator.
func (h *HashSetOpIter) Close() error {
	h.rightKeys, h.emitted = nil, nil
	err1 := h.Left.Close()
	err2 := h.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (h *HashSetOpIter) Schema() schema.Schema { return h.Left.Schema() }

// ProductIter is a blocking nested-loop Cartesian product: the right
// input is materialized, the left streamed.
type ProductIter struct {
	Label       string
	Left, Right Iterator
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	right []relation.Tuple
	cur   relation.Tuple
	idx   int
	done  bool
}

// Open implements Iterator.
func (p *ProductIter) Open(ctx context.Context) error {
	if err := p.Left.Open(ctx); err != nil {
		return err
	}
	if err := p.Right.Open(ctx); err != nil {
		return err
	}
	p.right = nil
	if err := drainEvery(ctx, p.Right, p.Every, func(t relation.Tuple) {
		p.right = append(p.right, t)
	}); err != nil {
		return err
	}
	p.cur, p.idx, p.done = nil, 0, false
	return nil
}

// Next implements Iterator.
func (p *ProductIter) Next() (relation.Tuple, bool, error) {
	if p.done {
		return nil, false, nil
	}
	for {
		if p.cur == nil || p.idx >= len(p.right) {
			t, ok, err := p.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				p.done = true
				return nil, false, nil
			}
			p.cur, p.idx = t, 0
		}
		if len(p.right) == 0 {
			p.done = true
			return nil, false, nil
		}
		out := p.cur.Concat(p.right[p.idx])
		p.idx++
		p.Stats.count(p.Label, 1)
		return out, true, nil
	}
}

// Close implements Iterator.
func (p *ProductIter) Close() error {
	p.right = nil
	err1 := p.Left.Close()
	err2 := p.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (p *ProductIter) Schema() schema.Schema {
	return p.Left.Schema().Concat(p.Right.Schema())
}

// HashJoinIter is a natural hash join: build on the right input's
// common-attribute key, probe with the left.
type HashJoinIter struct {
	Label       string
	Left, Right Iterator
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int

	out       schema.Schema
	leftPos   []int
	extraPos  []int
	keyIx     *relation.TupleIndex
	rows      [][]relation.Tuple
	cur       relation.Tuple
	matches   []relation.Tuple
	mIdx      int
	dedup     *relation.TupleIndex
	isProduct bool
	prod      *ProductIter
}

// Open implements Iterator.
func (j *HashJoinIter) Open(ctx context.Context) error {
	common := j.Left.Schema().Intersect(j.Right.Schema())
	if common.Len() == 0 {
		// Degenerate to a product, as the logical definition does.
		j.isProduct = true
		j.prod = &ProductIter{Label: j.Label, Left: j.Left, Right: j.Right, Stats: j.Stats, Every: j.Every}
		j.out = j.Left.Schema().Concat(j.Right.Schema())
		return j.prod.Open(ctx)
	}
	j.isProduct = false
	j.leftPos = j.Left.Schema().Positions(common.Attrs())
	rightPos := j.Right.Schema().Positions(common.Attrs())
	extra := j.Right.Schema().Minus(common)
	j.extraPos = j.Right.Schema().Positions(extra.Attrs())
	j.out = j.Left.Schema().Union(extra)

	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	j.keyIx = new(relation.TupleIndex)
	j.rows = nil
	if err := drainEvery(ctx, j.Right, j.Every, func(t relation.Tuple) {
		id, created := j.keyIx.IDProj(t, rightPos)
		if created {
			j.rows = append(j.rows, nil)
		}
		j.rows[id] = append(j.rows[id], t.Project(j.extraPos))
	}); err != nil {
		return err
	}
	j.cur, j.matches, j.mIdx = nil, nil, 0
	j.dedup = new(relation.TupleIndex)
	return nil
}

// Next implements Iterator.
func (j *HashJoinIter) Next() (relation.Tuple, bool, error) {
	if j.isProduct {
		return j.prod.Next()
	}
	if j.keyIx == nil {
		return nil, false, errNotOpen("HashJoinIter")
	}
	for {
		if j.mIdx >= len(j.matches) {
			t, ok, err := j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t
			if id := j.keyIx.LookupProj(t, j.leftPos); id >= 0 {
				j.matches = j.rows[id]
			} else {
				j.matches = nil
			}
			j.mIdx = 0
			continue
		}
		out := j.cur.Concat(j.matches[j.mIdx])
		j.mIdx++
		if _, created := j.dedup.ID(out); !created {
			continue
		}
		j.Stats.count(j.Label, 1)
		return out, true, nil
	}
}

// Close implements Iterator.
func (j *HashJoinIter) Close() error {
	if j.isProduct {
		return j.prod.Close()
	}
	j.keyIx, j.rows, j.dedup = nil, nil, nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (j *HashJoinIter) Schema() schema.Schema {
	if j.out.Len() == 0 {
		common := j.Left.Schema().Intersect(j.Right.Schema())
		j.out = j.Left.Schema().Union(j.Right.Schema().Minus(common))
	}
	return j.out
}

// SemiJoinIter streams left tuples that have a partner in the right
// input on the common attributes. Keep=false turns it into the
// anti-semi-join.
type SemiJoinIter struct {
	Label       string
	Left, Right Iterator
	Keep        bool
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every      int
	keys       *relation.TupleIndex
	leftPos    []int
	degenerate bool // no common attributes
	rightAny   bool
}

// Open implements Iterator.
func (s *SemiJoinIter) Open(ctx context.Context) error {
	common := s.Left.Schema().Intersect(s.Right.Schema())
	if err := s.Left.Open(ctx); err != nil {
		return err
	}
	if err := s.Right.Open(ctx); err != nil {
		return err
	}
	s.keys = new(relation.TupleIndex)
	if common.Len() == 0 {
		s.degenerate = true
		_, ok, err := s.Right.Next()
		if err != nil {
			return err
		}
		s.rightAny = ok
		return nil
	}
	s.degenerate = false
	s.leftPos = s.Left.Schema().Positions(common.Attrs())
	rightPos := s.Right.Schema().Positions(common.Attrs())
	return drainEvery(ctx, s.Right, s.Every, func(t relation.Tuple) {
		s.keys.IDProj(t, rightPos)
	})
}

// Next implements Iterator.
func (s *SemiJoinIter) Next() (relation.Tuple, bool, error) {
	if s.keys == nil {
		return nil, false, errNotOpen("SemiJoinIter")
	}
	for {
		t, ok, err := s.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		var hit bool
		if s.degenerate {
			hit = s.rightAny
		} else {
			hit = s.keys.LookupProj(t, s.leftPos) >= 0
		}
		if hit == s.Keep {
			s.Stats.count(s.Label, 1)
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (s *SemiJoinIter) Close() error {
	s.keys = nil
	err1 := s.Left.Close()
	err2 := s.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (s *SemiJoinIter) Schema() schema.Schema { return s.Left.Schema() }

// GroupIter is the blocking grouping operator; it materializes its
// input and delegates to algebra.Group. It is dual-mode: the grouped
// result is emitted per tuple or per batch over one shared cursor.
type GroupIter struct {
	Label string
	Input Iterator
	By    []string
	Aggs  []algebra.AggSpec
	Stats *Stats
	// Every is the cooperative ctx-poll interval of the input drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher
	rows  []relation.Tuple
	pos   int
	outSc schema.Schema
}

// Open implements Iterator.
func (g *GroupIter) Open(ctx context.Context) error {
	if err := g.Input.Open(ctx); err != nil {
		return err
	}
	in := relation.New(g.Input.Schema())
	if err := drainEvery(ctx, g.Input, g.Every, func(t relation.Tuple) {
		in.InsertOwned(t)
	}); err != nil {
		return err
	}
	out := algebra.Group(in, g.By, g.Aggs)
	g.rows = out.Tuples()
	g.outSc = out.Schema()
	g.pos = 0
	return nil
}

// OpenBatch implements BatchIterator.
func (g *GroupIter) OpenBatch(ctx context.Context) error { return g.Open(ctx) }

// Next implements Iterator.
func (g *GroupIter) Next() (relation.Tuple, bool, error) {
	if g.outSc.Len() == 0 && g.rows == nil {
		return nil, false, errNotOpen("GroupIter")
	}
	if g.pos >= len(g.rows) {
		return nil, false, nil
	}
	t := g.rows[g.pos]
	g.pos++
	g.Stats.count(g.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (g *GroupIter) NextBatch() (*relation.Batch, error) {
	if g.outSc.Len() == 0 && g.rows == nil {
		return nil, errNotOpen("GroupIter")
	}
	b := g.window(g.rows, &g.pos)
	if b != nil {
		g.Stats.count(g.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (g *GroupIter) Close() error { g.rows = nil; g.release(); return g.Input.Close() }

// Schema implements Iterator.
func (g *GroupIter) Schema() schema.Schema {
	if g.outSc.Len() > 0 {
		return g.outSc
	}
	attrs := append([]string(nil), g.By...)
	for _, a := range g.Aggs {
		attrs = append(attrs, a.As)
	}
	return schema.New(attrs...)
}

// SortIter is the blocking physical ordering operator: it
// materializes its input, sorts with the reusable keyed tuple
// comparator (relation.KeyedCompare — per-key ASC/DESC, canonical
// tie-break), and emits in order. It implements plan.Sort and feeds
// the merge-group division. It is dual-mode: the sorted run is
// emitted per tuple or per zero-copy batch over one shared cursor.
type SortIter struct {
	Label string
	Input Iterator
	// ByPos optionally sorts by specific column positions first.
	ByPos []int
	// Desc optionally inverts the matching ByPos key; nil means all
	// ascending. When set, len(Desc) must equal len(ByPos).
	Desc  []bool
	Stats *Stats
	// Every is the cooperative ctx-poll interval of the input drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher
	rows []relation.Tuple
	pos  int
	open bool
}

// Open implements Iterator.
func (s *SortIter) Open(ctx context.Context) error {
	if err := s.Input.Open(ctx); err != nil {
		return err
	}
	s.rows = nil
	s.open = true
	if err := drainEvery(ctx, s.Input, s.Every, func(t relation.Tuple) {
		s.rows = append(s.rows, t)
	}); err != nil {
		return err
	}
	cmp := relation.KeyedCompare(s.ByPos, s.Desc)
	sort.Slice(s.rows, func(i, j int) bool { return cmp(s.rows[i], s.rows[j]) < 0 })
	s.pos = 0
	return nil
}

// OpenBatch implements BatchIterator.
func (s *SortIter) OpenBatch(ctx context.Context) error { return s.Open(ctx) }

// Next implements Iterator.
func (s *SortIter) Next() (relation.Tuple, bool, error) {
	if !s.open {
		return nil, false, errNotOpen("SortIter")
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	s.Stats.count(s.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (s *SortIter) NextBatch() (*relation.Batch, error) {
	if !s.open {
		return nil, errNotOpen("SortIter")
	}
	b := s.window(s.rows, &s.pos)
	if b != nil {
		s.Stats.count(s.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (s *SortIter) Close() error {
	s.rows, s.open = nil, false
	s.release()
	return s.Input.Close()
}

// Schema implements Iterator.
func (s *SortIter) Schema() schema.Schema { return s.Input.Schema() }

// RenameIter relabels attributes without touching tuples.
type RenameIter struct {
	Input    Iterator
	From, To string
}

// Open implements Iterator.
func (r *RenameIter) Open(ctx context.Context) error { return r.Input.Open(ctx) }

// Next implements Iterator.
func (r *RenameIter) Next() (relation.Tuple, bool, error) { return r.Input.Next() }

// Close implements Iterator.
func (r *RenameIter) Close() error { return r.Input.Close() }

// Schema implements Iterator.
func (r *RenameIter) Schema() schema.Schema { return r.Input.Schema().Rename(r.From, r.To) }

func schemaErr(op string, a, b schema.Schema) error {
	return fmt.Errorf("exec: %s over incompatible schemas %v and %v", op, a, b)
}
