package exec

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"

	"divlaws/internal/algebra"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/spill"
)

// ScanIter streams a materialized relation. It is dual-mode: Next
// and NextBatch share one cursor, the batches being zero-copy windows
// over the relation's tuple slice.
type ScanIter struct {
	Label string
	Rel   *relation.Relation
	Stats *Stats
	windowBatcher
	pos  int
	open bool
}

// Open implements Iterator.
func (s *ScanIter) Open(ctx context.Context) error { s.pos, s.open = 0, true; return nil }

// OpenBatch implements BatchIterator.
func (s *ScanIter) OpenBatch(ctx context.Context) error { return s.Open(ctx) }

// Next implements Iterator.
func (s *ScanIter) Next() (relation.Tuple, bool, error) {
	if !s.open {
		return nil, false, errNotOpen("ScanIter")
	}
	if s.pos >= s.Rel.Len() {
		return nil, false, nil
	}
	t := s.Rel.Tuples()[s.pos]
	s.pos++
	s.Stats.count(s.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (s *ScanIter) NextBatch() (*relation.Batch, error) {
	if !s.open {
		return nil, errNotOpen("ScanIter")
	}
	b := s.window(s.Rel.Tuples(), &s.pos)
	if b != nil {
		s.Stats.count(s.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (s *ScanIter) Close() error { s.open = false; s.release(); return nil }

// Schema implements Iterator.
func (s *ScanIter) Schema() schema.Schema { return s.Rel.Schema() }

// FilterIter applies a predicate, fully pipelined.
type FilterIter struct {
	Label string
	Input Iterator
	Pred  pred.Predicate
	Stats *Stats
}

// Open implements Iterator.
func (f *FilterIter) Open(ctx context.Context) error { return f.Input.Open(ctx) }

// Next implements Iterator.
func (f *FilterIter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := f.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred.Eval(t, f.Input.Schema()) {
			f.Stats.count(f.Label, 1)
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (f *FilterIter) Close() error { return f.Input.Close() }

// Schema implements Iterator.
func (f *FilterIter) Schema() schema.Schema { return f.Input.Schema() }

// ProjectIter projects attributes and eliminates duplicates with a
// streaming hash set (set semantics). The projection is only
// materialized for tuples that survive the dedup.
type ProjectIter struct {
	Label string
	Input Iterator
	Attrs []string
	Stats *Stats
	pos   []int
	out   schema.Schema
	seen  *relation.TupleIndex
}

// Open implements Iterator.
func (p *ProjectIter) Open(ctx context.Context) error {
	p.out, p.pos = p.Input.Schema().Project(p.Attrs)
	p.seen = new(relation.TupleIndex)
	return p.Input.Open(ctx)
}

// Next implements Iterator.
func (p *ProjectIter) Next() (relation.Tuple, bool, error) {
	if p.seen == nil {
		return nil, false, errNotOpen("ProjectIter")
	}
	for {
		t, ok, err := p.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		id, created := p.seen.IDProj(t, p.pos)
		if !created {
			continue
		}
		p.Stats.count(p.Label, 1)
		return p.seen.Key(id), true, nil
	}
}

// Close implements Iterator.
func (p *ProjectIter) Close() error { p.seen = nil; return p.Input.Close() }

// Schema implements Iterator.
func (p *ProjectIter) Schema() schema.Schema {
	if p.out.Len() == 0 {
		p.out, p.pos = p.Input.Schema().Project(p.Attrs)
	}
	return p.out
}

// UnionIter streams left then right, deduplicating. It is dual-mode:
// NextBatch dedups whole child batches into a pooled output batch
// (batch-capable children stream their own batches through, tuple-only
// children are accumulated), sharing the seen-set and side cursor with
// Next.
type UnionIter struct {
	Label       string
	Left, Right Iterator
	Stats       *Stats
	windowBatcher
	seen      *relation.TupleIndex
	onRight   bool
	rightPos  []int
	leftFeed  batchFeed
	rightFeed batchFeed
}

// Open implements Iterator.
func (u *UnionIter) Open(ctx context.Context) error {
	u.seen = new(relation.TupleIndex)
	u.onRight = false
	u.leftFeed = batchFeed{child: u.Left, size: u.BatchSize}
	u.rightFeed = batchFeed{child: u.Right, size: u.BatchSize}
	if !u.Left.Schema().EqualSet(u.Right.Schema()) {
		return schemaErr("Union", u.Left.Schema(), u.Right.Schema())
	}
	u.rightPos = u.Right.Schema().Positions(u.Left.Schema().Attrs())
	if err := u.Left.Open(ctx); err != nil {
		return err
	}
	return u.Right.Open(ctx)
}

// OpenBatch implements BatchIterator.
func (u *UnionIter) OpenBatch(ctx context.Context) error { return u.Open(ctx) }

// NextBatch implements BatchIterator: whole child batches are probed
// against the shared seen-set, survivors emitted into a pooled output
// batch. The armed row budget flows to the child feeds (dedup only
// shrinks batches, so the child's bound is ours).
func (u *UnionIter) NextBatch() (*relation.Batch, error) {
	if u.seen == nil {
		return nil, errNotOpen("UnionIter")
	}
	for {
		var ts []relation.Tuple
		var err error
		if !u.onRight {
			ts, err = u.leftFeed.next(u.budget)
			if err != nil {
				return nil, err
			}
			if ts == nil {
				u.onRight = true
				continue
			}
		} else {
			ts, err = u.rightFeed.next(u.budget)
			if err != nil || ts == nil {
				return nil, err
			}
		}
		out := u.outBatch()
		if !u.onRight {
			for _, t := range ts {
				if _, created := u.seen.ID(t); created {
					out.Append(t)
				}
			}
		} else {
			for _, t := range ts {
				if id, created := u.seen.IDProj(t, u.rightPos); created {
					out.Append(u.seen.Key(id))
				}
			}
		}
		if n := out.Len(); n > 0 {
			u.Stats.count(u.Label, int64(n))
			return out, nil
		}
	}
}

// Next implements Iterator.
func (u *UnionIter) Next() (relation.Tuple, bool, error) {
	if u.seen == nil {
		return nil, false, errNotOpen("UnionIter")
	}
	for {
		if !u.onRight {
			t, ok, err := u.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				u.onRight = true
				continue
			}
			if _, created := u.seen.ID(t); !created {
				continue
			}
			u.Stats.count(u.Label, 1)
			return t, true, nil
		}
		t, ok, err := u.Right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		id, created := u.seen.IDProj(t, u.rightPos)
		if !created {
			continue
		}
		u.Stats.count(u.Label, 1)
		return u.seen.Key(id), true, nil
	}
}

// Close implements Iterator.
func (u *UnionIter) Close() error {
	u.seen = nil
	u.release()
	u.leftFeed.release()
	u.rightFeed.release()
	err1 := u.Left.Close()
	err2 := u.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (u *UnionIter) Schema() schema.Schema { return u.Left.Schema() }

// HashSetOpIter implements intersection and difference by building a
// hash set over the right input, then streaming the left. It is
// dual-mode: NextBatch probes a whole left batch against the build
// set at once (relation.TupleIndex.LookupBatch) and emits survivors
// into a pooled output batch, sharing the build set with Next.
//
// Every iterator's output is a set (the operators whose construction
// could create duplicates — Project, Union, the divisions — dedup
// internally), so the streamed left input is distinct and both
// results, being subsets of it, need no output dedup — like
// ProductIter, the emit path trusts that invariant.
type HashSetOpIter struct {
	Label       string
	Left, Right Iterator
	Keep        bool // true: intersect (keep hits); false: diff (keep misses)
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher
	rightKeys *relation.TupleIndex
	leftFeed  batchFeed
	ids       []int
}

// Open implements Iterator.
func (h *HashSetOpIter) Open(ctx context.Context) error {
	if !h.Left.Schema().EqualSet(h.Right.Schema()) {
		return schemaErr("set operator", h.Left.Schema(), h.Right.Schema())
	}
	if err := h.Left.Open(ctx); err != nil {
		return err
	}
	if err := h.Right.Open(ctx); err != nil {
		return err
	}
	pos := h.Right.Schema().Positions(h.Left.Schema().Attrs())
	h.rightKeys = new(relation.TupleIndex)
	if err := drainEvery(ctx, h.Right, h.Every, func(t relation.Tuple) {
		h.rightKeys.IDProj(t, pos)
	}); err != nil {
		return err
	}
	h.leftFeed = batchFeed{child: h.Left, size: h.BatchSize}
	return nil
}

// OpenBatch implements BatchIterator.
func (h *HashSetOpIter) OpenBatch(ctx context.Context) error { return h.Open(ctx) }

// NextBatch implements BatchIterator: the whole probe batch is hashed
// against the build set in one pass, survivors emitted into a pooled
// output batch. The armed row budget flows to the probe feed (the
// probe phase only shrinks batches).
func (h *HashSetOpIter) NextBatch() (*relation.Batch, error) {
	if h.rightKeys == nil {
		return nil, errNotOpen("HashSetOpIter")
	}
	for {
		ts, err := h.leftFeed.next(h.budget)
		if err != nil || ts == nil {
			return nil, err
		}
		h.ids = h.rightKeys.LookupBatch(ts, h.ids[:0])
		out := h.outBatch()
		for i, t := range ts {
			if (h.ids[i] >= 0) == h.Keep {
				out.Append(t)
			}
		}
		if n := out.Len(); n > 0 {
			h.Stats.count(h.Label, int64(n))
			return out, nil
		}
	}
}

// Next implements Iterator.
func (h *HashSetOpIter) Next() (relation.Tuple, bool, error) {
	if h.rightKeys == nil {
		return nil, false, errNotOpen("HashSetOpIter")
	}
	for {
		t, ok, err := h.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		hit := h.rightKeys.Lookup(t) >= 0
		if hit != h.Keep {
			continue
		}
		h.Stats.count(h.Label, 1)
		return t, true, nil
	}
}

// Close implements Iterator.
func (h *HashSetOpIter) Close() error {
	h.rightKeys, h.ids = nil, nil
	h.release()
	h.leftFeed.release()
	err1 := h.Left.Close()
	err2 := h.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (h *HashSetOpIter) Schema() schema.Schema { return h.Left.Schema() }

// ProductIter is a blocking nested-loop Cartesian product: the right
// input is materialized, the left streamed. It is dual-mode: NextBatch
// pulls the probe (left) side a batch at a time and fills a pooled
// output batch with concatenations, sharing the (cur, idx) inner-loop
// cursor with Next — an armed row budget bounds both the output batch
// and how much probe input is pulled.
type ProductIter struct {
	Label       string
	Left, Right Iterator
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher
	right    []relation.Tuple
	cur      relation.Tuple
	idx      int
	done     bool
	leftFeed batchFeed
	probe    []relation.Tuple
	pPos     int
	slab     relation.Slab // emit allocator; output tuples are sliced from it
}

// Open implements Iterator.
func (p *ProductIter) Open(ctx context.Context) error {
	if err := p.Left.Open(ctx); err != nil {
		return err
	}
	if err := p.Right.Open(ctx); err != nil {
		return err
	}
	p.right = nil
	if err := drainEvery(ctx, p.Right, p.Every, func(t relation.Tuple) {
		p.right = append(p.right, t)
	}); err != nil {
		return err
	}
	p.cur, p.idx, p.done = nil, 0, false
	p.leftFeed = batchFeed{child: p.Left, size: p.BatchSize}
	p.probe, p.pPos = nil, 0
	return nil
}

// OpenBatch implements BatchIterator.
func (p *ProductIter) OpenBatch(ctx context.Context) error { return p.Open(ctx) }

// NextBatch implements BatchIterator.
func (p *ProductIter) NextBatch() (*relation.Batch, error) {
	if p.done {
		return nil, nil
	}
	if len(p.right) == 0 {
		// Mirror Next: one probe pull decides emptiness, then done.
		if _, err := p.leftFeed.next(1); err != nil {
			return nil, err
		}
		p.done = true
		return nil, nil
	}
	out := p.outBatch()
	bound := p.effectiveCap()
	for out.Len() < bound {
		if p.cur == nil || p.idx >= len(p.right) {
			if p.pPos >= len(p.probe) {
				// The probe feed is pulled with just the rows the output
				// still needs: every probe tuple expands by len(right).
				var fb int64
				if p.budget > 0 {
					need := int64(bound - out.Len())
					fb = (need + int64(len(p.right)) - 1) / int64(len(p.right))
				}
				ts, err := p.leftFeed.next(fb)
				if err != nil {
					return nil, err
				}
				if ts == nil {
					p.done = true
					// No more emissions: stop squatting on the budget
					// (already-emitted tuples stay valid).
					p.slab.Close()
					break
				}
				p.probe, p.pPos = ts, 0
			}
			p.cur, p.idx = p.probe[p.pPos], 0
			p.pPos++
		}
		out.Append(p.slab.Concat(p.cur, p.right[p.idx]))
		p.idx++
	}
	if out.Len() == 0 {
		return nil, nil
	}
	p.Stats.count(p.Label, int64(out.Len()))
	return out, nil
}

// Next implements Iterator.
func (p *ProductIter) Next() (relation.Tuple, bool, error) {
	if p.done {
		return nil, false, nil
	}
	for {
		if p.cur == nil || p.idx >= len(p.right) {
			t, ok, err := p.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				p.done = true
				p.slab.Close()
				return nil, false, nil
			}
			p.cur, p.idx = t, 0
		}
		if len(p.right) == 0 {
			p.done = true
			p.slab.Close()
			return nil, false, nil
		}
		out := p.slab.Concat(p.cur, p.right[p.idx])
		p.idx++
		p.Stats.count(p.Label, 1)
		return out, true, nil
	}
}

// Close implements Iterator.
func (p *ProductIter) Close() error {
	p.slab.Close()
	p.right, p.probe, p.pPos = nil, nil, 0
	p.release()
	p.leftFeed.release()
	err1 := p.Left.Close()
	err2 := p.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (p *ProductIter) Schema() schema.Schema {
	return p.Left.Schema().Concat(p.Right.Schema())
}

// HashJoinIter is a natural hash join: build on the right input's
// common-attribute key, probe with the left. It is dual-mode: the
// build side is drained batch-at-a-time when the child allows it, and
// NextBatch streams whole probe batches from the left feed, probing
// each row at its cursor advance and emitting concatenated matches
// into a pooled output batch — the pending-match cursor is shared
// with Next.
//
// The output needs no dedup: iterator outputs are sets, so left
// tuples are distinct and each build key's extras are distinct
// (key+extra is the whole right tuple), making every concatenation
// distinct — the same invariant ProductIter's emit path trusts.
type HashJoinIter struct {
	Label       string
	Left, Right Iterator
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	// Spill, when non-nil, bounds the build side: on budget pressure
	// both sides grace-hash partition to temp files and the partition
	// pairs are joined independently. The degenerate product case is
	// exempt (it holds only one right-side materialization the budget
	// cannot shrink by partitioning).
	Spill *spill.Tracker
	windowBatcher

	out         schema.Schema
	leftPos     []int
	extraPos    []int
	keyIx       *relation.TupleIndex
	rows        [][]relation.Tuple
	cur         relation.Tuple
	matches     []relation.Tuple
	mIdx        int
	isProduct   bool
	prod        *ProductIter
	leftFeed    batchFeed
	probe       []relation.Tuple
	pPos        int
	grace       *graceJoin
	graceStream bool
	gctx        context.Context
	slab        relation.Slab // emit allocator; output tuples are sliced from it
}

// Open implements Iterator.
func (j *HashJoinIter) Open(ctx context.Context) error {
	common := j.Left.Schema().Intersect(j.Right.Schema())
	if common.Len() == 0 {
		// Degenerate to a product, as the logical definition does.
		j.isProduct = true
		j.prod = &ProductIter{Label: j.Label, Left: j.Left, Right: j.Right, Stats: j.Stats, Every: j.Every,
			windowBatcher: windowBatcher{BatchSize: j.BatchSize}}
		j.out = j.Left.Schema().Concat(j.Right.Schema())
		return j.prod.Open(ctx)
	}
	j.isProduct = false
	j.leftPos = j.Left.Schema().Positions(common.Attrs())
	rightPos := j.Right.Schema().Positions(common.Attrs())
	extra := j.Right.Schema().Minus(common)
	j.extraPos = j.Right.Schema().Positions(extra.Attrs())
	j.out = j.Left.Schema().Union(extra)

	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	if j.Spill != nil {
		// Budgeted runs account the emit slab's live chunk too.
		j.slab.Charge, j.slab.Release = j.Spill.Charge, j.Spill.Release
		g := &graceJoin{tr: j.Spill, leftPos: j.leftPos, nk: len(rightPos), every: effEvery(j.Every)}
		g.slab.Charge, g.slab.Release = j.Spill.Charge, j.Spill.Release
		j.grace = g
		j.gctx = ctx
		if err := drainEveryErr(ctx, j.Right, j.Every, func(t relation.Tuple) error {
			return g.addBuild(t, rightPos, j.extraPos)
		}); err != nil {
			return err
		}
		if g.partitioned {
			// The build side spilled: partition the probe side the same
			// way and join the pairs lazily on Next.
			j.graceStream = true
			if err := drainEveryErr(ctx, j.Left, j.Every, g.addProbe); err != nil {
				return err
			}
			j.cur, j.matches, j.mIdx = nil, nil, 0
			return nil
		}
		// Everything fit: probe through the normal streaming path over
		// the grace-built index; the charge is released on Close.
		j.keyIx = &g.keyIx
		j.rows = g.rows
		j.cur, j.matches, j.mIdx = nil, nil, 0
		j.leftFeed = batchFeed{child: j.Left, size: j.BatchSize}
		j.probe, j.pPos = nil, 0
		return nil
	}
	j.keyIx = new(relation.TupleIndex)
	j.rows = nil
	if err := drainEvery(ctx, j.Right, j.Every, func(t relation.Tuple) {
		id, created := j.keyIx.IDProj(t, rightPos)
		if created {
			j.rows = append(j.rows, nil)
		}
		j.rows[id] = append(j.rows[id], t.Project(j.extraPos))
	}); err != nil {
		return err
	}
	j.cur, j.matches, j.mIdx = nil, nil, 0
	j.leftFeed = batchFeed{child: j.Left, size: j.BatchSize}
	j.probe, j.pPos = nil, 0
	return nil
}

// OpenBatch implements BatchIterator.
func (j *HashJoinIter) OpenBatch(ctx context.Context) error { return j.Open(ctx) }

// SetRowBudget implements rowBudgeter; the degenerate product carries
// its own budget.
func (j *HashJoinIter) SetRowBudget(n int64) {
	j.windowBatcher.SetRowBudget(n)
	if j.isProduct && j.prod != nil {
		j.prod.SetRowBudget(n)
	}
}

// NextBatch implements BatchIterator: pending matches of the current
// probe tuple flush first, then the next probe batch streams through
// the cursor, each row probed and its matches emitted until the
// output batch fills. An armed row budget bounds the output batch and
// the probe pulls.
func (j *HashJoinIter) NextBatch() (*relation.Batch, error) {
	if j.isProduct {
		return j.prod.NextBatch()
	}
	if j.graceStream {
		out := j.outBatch()
		bound := j.effectiveCap()
		for out.Len() < bound {
			t, ok, err := j.grace.next(j.gctx)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			out.Append(t)
		}
		if out.Len() == 0 {
			return nil, nil
		}
		j.Stats.count(j.Label, int64(out.Len()))
		return out, nil
	}
	if j.keyIx == nil {
		return nil, errNotOpen("HashJoinIter")
	}
	out := j.outBatch()
	bound := j.effectiveCap()
	for out.Len() < bound {
		if j.mIdx < len(j.matches) {
			out.Append(j.slab.Concat(j.cur, j.matches[j.mIdx]))
			j.mIdx++
			continue
		}
		if j.pPos >= len(j.probe) {
			// Pull the next probe batch, row-budgeted by what the output
			// still needs (a key can match many build rows, so this only
			// bounds, never starves).
			var fb int64
			if j.budget > 0 {
				fb = int64(bound - out.Len())
			}
			ts, err := j.leftFeed.next(fb)
			if err != nil {
				return nil, err
			}
			if ts == nil {
				// Probe side exhausted: no more emissions, so release the
				// emit slab's and the build index's budget charges early
				// (already-emitted tuples stay valid; blocking consumers
				// downstream get the budget back).
				j.slab.Close()
				if j.grace != nil {
					j.grace.close()
				}
				break
			}
			j.probe, j.pPos = ts, 0
			continue
		}
		// Probe at the cursor advance rather than materializing ids or
		// hashes per batch row: a side array costs a write and a
		// re-read per row, and the fused LookupProj (hash plus walk in
		// one frame) measured faster than a separate batch hash pass
		// on this loop, where the key is short and the walk is L1-hot.
		j.cur = j.probe[j.pPos]
		if id := j.keyIx.LookupProj(j.cur, j.leftPos); id >= 0 {
			j.matches = j.rows[id]
		} else {
			j.matches = nil
		}
		j.mIdx = 0
		j.pPos++
	}
	if out.Len() == 0 {
		return nil, nil
	}
	j.Stats.count(j.Label, int64(out.Len()))
	return out, nil
}

// Next implements Iterator.
func (j *HashJoinIter) Next() (relation.Tuple, bool, error) {
	if j.isProduct {
		return j.prod.Next()
	}
	if j.graceStream {
		t, ok, err := j.grace.next(j.gctx)
		if ok {
			j.Stats.count(j.Label, 1)
		}
		return t, ok, err
	}
	if j.keyIx == nil {
		return nil, false, errNotOpen("HashJoinIter")
	}
	for {
		if j.mIdx >= len(j.matches) {
			t, ok, err := j.Left.Next()
			if err != nil || !ok {
				if err == nil {
					// Clean exhaustion: release the emit slab's and the
					// build index's budget charges early (emitted tuples
					// stay valid; Close handles the error paths).
					j.slab.Close()
					if j.grace != nil {
						j.grace.close()
					}
				}
				return nil, false, err
			}
			j.cur = t
			if id := j.keyIx.LookupProj(t, j.leftPos); id >= 0 {
				j.matches = j.rows[id]
			} else {
				j.matches = nil
			}
			j.mIdx = 0
			continue
		}
		out := j.slab.Concat(j.cur, j.matches[j.mIdx])
		j.mIdx++
		j.Stats.count(j.Label, 1)
		return out, true, nil
	}
}

// Close implements Iterator.
func (j *HashJoinIter) Close() error {
	if j.isProduct {
		return j.prod.Close()
	}
	if j.grace != nil {
		j.grace.close()
		j.grace, j.graceStream = nil, false
	}
	j.slab.Close()
	j.keyIx, j.rows = nil, nil
	j.probe, j.pPos = nil, 0
	j.release()
	j.leftFeed.release()
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (j *HashJoinIter) Schema() schema.Schema {
	if j.out.Len() == 0 {
		common := j.Left.Schema().Intersect(j.Right.Schema())
		j.out = j.Left.Schema().Union(j.Right.Schema().Minus(common))
	}
	return j.out
}

// SemiJoinIter streams left tuples that have a partner in the right
// input on the common attributes. Keep=false turns it into the
// anti-semi-join.
type SemiJoinIter struct {
	Label       string
	Left, Right Iterator
	Keep        bool
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the build drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher
	keys       *relation.TupleIndex
	leftPos    []int
	degenerate bool // no common attributes
	rightAny   bool
	leftFeed   batchFeed
	ids        []int
}

// Open implements Iterator.
func (s *SemiJoinIter) Open(ctx context.Context) error {
	common := s.Left.Schema().Intersect(s.Right.Schema())
	if err := s.Left.Open(ctx); err != nil {
		return err
	}
	if err := s.Right.Open(ctx); err != nil {
		return err
	}
	s.keys = new(relation.TupleIndex)
	s.leftFeed = batchFeed{child: s.Left, size: s.BatchSize}
	if common.Len() == 0 {
		s.degenerate = true
		_, ok, err := s.Right.Next()
		if err != nil {
			return err
		}
		s.rightAny = ok
		return nil
	}
	s.degenerate = false
	s.leftPos = s.Left.Schema().Positions(common.Attrs())
	rightPos := s.Right.Schema().Positions(common.Attrs())
	return drainEvery(ctx, s.Right, s.Every, func(t relation.Tuple) {
		s.keys.IDProj(t, rightPos)
	})
}

// OpenBatch implements BatchIterator.
func (s *SemiJoinIter) OpenBatch(ctx context.Context) error { return s.Open(ctx) }

// NextBatch implements BatchIterator: a whole probe batch is hashed
// against the build keys in one pass, survivors emitted into a pooled
// output batch. The armed row budget flows to the probe feed (a
// semi-join only shrinks batches).
func (s *SemiJoinIter) NextBatch() (*relation.Batch, error) {
	if s.keys == nil {
		return nil, errNotOpen("SemiJoinIter")
	}
	for {
		ts, err := s.leftFeed.next(s.budget)
		if err != nil || ts == nil {
			return nil, err
		}
		out := s.outBatch()
		if s.degenerate {
			if s.rightAny == s.Keep {
				for _, t := range ts {
					out.Append(t)
				}
			}
		} else {
			s.ids = s.keys.LookupProjBatch(ts, s.leftPos, s.ids[:0])
			for i, t := range ts {
				if (s.ids[i] >= 0) == s.Keep {
					out.Append(t)
				}
			}
		}
		if n := out.Len(); n > 0 {
			s.Stats.count(s.Label, int64(n))
			return out, nil
		}
	}
}

// Next implements Iterator.
func (s *SemiJoinIter) Next() (relation.Tuple, bool, error) {
	if s.keys == nil {
		return nil, false, errNotOpen("SemiJoinIter")
	}
	for {
		t, ok, err := s.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		var hit bool
		if s.degenerate {
			hit = s.rightAny
		} else {
			hit = s.keys.LookupProj(t, s.leftPos) >= 0
		}
		if hit == s.Keep {
			s.Stats.count(s.Label, 1)
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (s *SemiJoinIter) Close() error {
	s.keys, s.ids = nil, nil
	s.release()
	s.leftFeed.release()
	err1 := s.Left.Close()
	err2 := s.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (s *SemiJoinIter) Schema() schema.Schema { return s.Left.Schema() }

// GroupIter is the blocking grouping operator; it materializes its
// input and delegates to algebra.Group. It is dual-mode: the grouped
// result is emitted per tuple or per batch over one shared cursor.
type GroupIter struct {
	Label string
	Input Iterator
	By    []string
	Aggs  []algebra.AggSpec
	Stats *Stats
	// Every is the cooperative ctx-poll interval of the input drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher
	rows  []relation.Tuple
	pos   int
	outSc schema.Schema
}

// Open implements Iterator.
func (g *GroupIter) Open(ctx context.Context) error {
	if err := g.Input.Open(ctx); err != nil {
		return err
	}
	in := relation.New(g.Input.Schema())
	if err := drainEvery(ctx, g.Input, g.Every, func(t relation.Tuple) {
		in.InsertOwned(t)
	}); err != nil {
		return err
	}
	out := algebra.Group(in, g.By, g.Aggs)
	g.rows = out.Tuples()
	g.outSc = out.Schema()
	g.pos = 0
	return nil
}

// OpenBatch implements BatchIterator.
func (g *GroupIter) OpenBatch(ctx context.Context) error { return g.Open(ctx) }

// Next implements Iterator.
func (g *GroupIter) Next() (relation.Tuple, bool, error) {
	if g.outSc.Len() == 0 && g.rows == nil {
		return nil, false, errNotOpen("GroupIter")
	}
	if g.pos >= len(g.rows) {
		return nil, false, nil
	}
	t := g.rows[g.pos]
	g.pos++
	g.Stats.count(g.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (g *GroupIter) NextBatch() (*relation.Batch, error) {
	if g.outSc.Len() == 0 && g.rows == nil {
		return nil, errNotOpen("GroupIter")
	}
	b := g.window(g.rows, &g.pos)
	if b != nil {
		g.Stats.count(g.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (g *GroupIter) Close() error { g.rows = nil; g.release(); return g.Input.Close() }

// Schema implements Iterator.
func (g *GroupIter) Schema() schema.Schema {
	if g.outSc.Len() > 0 {
		return g.outSc
	}
	attrs := append([]string(nil), g.By...)
	for _, a := range g.Aggs {
		attrs = append(attrs, a.As)
	}
	return schema.New(attrs...)
}

// SortIter is the blocking physical ordering operator: it
// materializes its input, sorts with the reusable keyed tuple
// comparator (relation.KeyedCompare — per-key ASC/DESC, canonical
// tie-break), and emits in order. It implements plan.Sort and feeds
// the merge-group division. It is dual-mode: the sorted run is
// emitted per tuple or per zero-copy batch over one shared cursor.
//
// Under a memory budget (Spill != nil) it degrades to an external
// merge sort: the buffer is charged against the tracker, flushed to a
// sorted temp-file run whenever it would exceed the budget, and the
// runs are k-way merged on Next. KeyedCompare's canonical tie-break
// makes the merged order identical to the in-memory sort's.
type SortIter struct {
	Label string
	Input Iterator
	// ByPos optionally sorts by specific column positions first.
	ByPos []int
	// Desc optionally inverts the matching ByPos key; nil means all
	// ascending. When set, len(Desc) must equal len(ByPos).
	Desc  []bool
	Stats *Stats
	// Every is the cooperative ctx-poll interval of the input drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	// Spill, when non-nil, bounds the sort buffer: on budget pressure
	// sorted runs spill to temp files and are merged on emit.
	Spill *spill.Tracker
	windowBatcher
	rows []relation.Tuple
	pos  int
	open bool

	charged int64
	runs    []*spill.Run
	mh      *sortMerge
	mctx    context.Context
	pollN   int
}

// Open implements Iterator.
func (s *SortIter) Open(ctx context.Context) error {
	if err := s.Input.Open(ctx); err != nil {
		return err
	}
	s.rows = nil
	s.open = true
	cmp := relation.KeyedCompare(s.ByPos, s.Desc)
	if s.Spill == nil {
		if err := drainEvery(ctx, s.Input, s.Every, func(t relation.Tuple) {
			s.rows = append(s.rows, t)
		}); err != nil {
			return err
		}
		sort.Slice(s.rows, func(i, j int) bool { return cmp(s.rows[i], s.rows[j]) < 0 })
		s.pos = 0
		return nil
	}
	if err := drainEveryErr(ctx, s.Input, s.Every, func(t relation.Tuple) error {
		fp := t.Footprint()
		err := s.Spill.Charge(fp)
		if err == nil {
			s.charged += fp
			s.rows = append(s.rows, t)
			return nil
		}
		if !errors.Is(err, spill.ErrBudget) {
			return err
		}
		if err := s.spillBuffer(cmp); err != nil {
			return err
		}
		// After a flush the buffer is empty; if a single tuple still
		// does not fit the query genuinely cannot run in the budget.
		if err := s.Spill.Charge(fp); err != nil {
			return err
		}
		s.charged += fp
		s.rows = append(s.rows, t)
		return nil
	}); err != nil {
		return err
	}
	sort.Slice(s.rows, func(i, j int) bool { return cmp(s.rows[i], s.rows[j]) < 0 })
	s.pos = 0
	if len(s.runs) == 0 {
		return nil // everything fit: serve the in-memory run
	}
	// K-way merge across the spilled runs plus the final in-memory
	// buffer.
	srcs := make([]*sortSource, 0, len(s.runs)+1)
	for _, r := range s.runs {
		if err := r.Rewind(); err != nil {
			return err
		}
		srcs = append(srcs, &sortSource{run: r})
	}
	if len(s.rows) > 0 {
		srcs = append(srcs, &sortSource{rows: s.rows})
	}
	live := srcs[:0]
	for _, src := range srcs {
		t, ok, err := src.advance()
		if err != nil {
			return err
		}
		if ok {
			src.head = t
			live = append(live, src)
		}
	}
	s.mh = &sortMerge{srcs: live, cmp: cmp}
	heap.Init(s.mh)
	s.mctx = ctx
	return nil
}

// spillBuffer sorts the in-memory buffer, writes it out as one run,
// and releases its charge.
func (s *SortIter) spillBuffer(cmp func(a, b relation.Tuple) int) error {
	sort.Slice(s.rows, func(i, j int) bool { return cmp(s.rows[i], s.rows[j]) < 0 })
	run, err := s.Spill.NewRun()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	for _, t := range s.rows {
		if err := run.Append(t); err != nil {
			return err
		}
	}
	s.Spill.Release(s.charged)
	s.charged = 0
	s.rows = s.rows[:0]
	return nil
}

// mergeNext pulls the next tuple off the k-way merge.
func (s *SortIter) mergeNext() (relation.Tuple, bool, error) {
	if s.mh.Len() == 0 {
		return nil, false, nil
	}
	every := s.Every
	if every <= 0 {
		every = DefaultCheckEvery
	}
	if s.pollN++; s.pollN >= every {
		s.pollN = 0
		if err := s.mctx.Err(); err != nil {
			return nil, false, err
		}
	}
	src := s.mh.srcs[0]
	t := src.head
	nt, ok, err := src.advance()
	if err != nil {
		return nil, false, err
	}
	if ok {
		src.head = nt
		heap.Fix(s.mh, 0)
	} else {
		heap.Pop(s.mh)
		if src.run != nil {
			src.run.Close()
		}
	}
	return t, true, nil
}

// OpenBatch implements BatchIterator.
func (s *SortIter) OpenBatch(ctx context.Context) error { return s.Open(ctx) }

// Next implements Iterator.
func (s *SortIter) Next() (relation.Tuple, bool, error) {
	if !s.open {
		return nil, false, errNotOpen("SortIter")
	}
	if s.mh != nil {
		t, ok, err := s.mergeNext()
		if ok {
			s.Stats.count(s.Label, 1)
		}
		return t, ok, err
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	s.Stats.count(s.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (s *SortIter) NextBatch() (*relation.Batch, error) {
	if !s.open {
		return nil, errNotOpen("SortIter")
	}
	if s.mh != nil {
		out := s.outBatch()
		bound := s.effectiveCap()
		for out.Len() < bound {
			t, ok, err := s.mergeNext()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			out.Append(t)
		}
		if out.Len() == 0 {
			return nil, nil
		}
		s.Stats.count(s.Label, int64(out.Len()))
		return out, nil
	}
	b := s.window(s.rows, &s.pos)
	if b != nil {
		s.Stats.count(s.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (s *SortIter) Close() error {
	s.rows, s.open = nil, false
	for _, r := range s.runs {
		r.Close() // idempotent: merged-out runs are already closed
	}
	s.runs, s.mh = nil, nil
	s.Spill.Release(s.charged)
	s.charged = 0
	s.release()
	return s.Input.Close()
}

// Schema implements Iterator.
func (s *SortIter) Schema() schema.Schema { return s.Input.Schema() }

// RenameIter relabels attributes without touching tuples.
type RenameIter struct {
	Input    Iterator
	From, To string
}

// Open implements Iterator.
func (r *RenameIter) Open(ctx context.Context) error { return r.Input.Open(ctx) }

// Next implements Iterator.
func (r *RenameIter) Next() (relation.Tuple, bool, error) { return r.Input.Next() }

// Close implements Iterator.
func (r *RenameIter) Close() error { return r.Input.Close() }

// Schema implements Iterator.
func (r *RenameIter) Schema() schema.Schema { return r.Input.Schema().Rename(r.From, r.To) }

func schemaErr(op string, a, b schema.Schema) error {
	return fmt.Errorf("exec: %s over incompatible schemas %v and %v", op, a, b)
}
