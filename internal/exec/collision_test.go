package exec

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"divlaws/internal/hashkey"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
)

// These tests force hashkey collisions (3-bit hashes) and compare
// the hash-based iterators against string-keyed nested-loop oracles
// built from Tuple.Key maps — independent of every hashkey code
// path — proving the collision-verification logic in the join, set
// operator, dedup, and division iterators.

func sortedKeys(keys []string) string {
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func relKeys(r *relation.Relation) string {
	keys := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		keys = append(keys, t.Key())
	}
	return sortedKeys(keys)
}

// oracleJoin is the natural join over string keys: nested loops with
// map-free comparison on the common columns.
func oracleJoin(r, s *relation.Relation) string {
	common := r.Schema().Intersect(s.Schema())
	rPos := r.Schema().Positions(common.Attrs())
	sPos := s.Schema().Positions(common.Attrs())
	extra := s.Schema().Minus(common)
	ePos := s.Schema().Positions(extra.Attrs())
	seen := map[string]bool{}
	var keys []string
	for _, t := range r.Tuples() {
		for _, u := range s.Tuples() {
			if t.Project(rPos).Key() != u.Project(sPos).Key() {
				continue
			}
			k := t.Concat(u.Project(ePos)).Key()
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return sortedKeys(keys)
}

func oracleSetOp(r, s *relation.Relation, keep bool) string {
	right := map[string]bool{}
	for _, u := range s.Tuples() {
		right[u.Key()] = true
	}
	seen := map[string]bool{}
	var keys []string
	for _, t := range r.Tuples() {
		k := t.Key()
		if right[k] == keep && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return sortedKeys(keys)
}

func oracleProject(r *relation.Relation, attrs []string) string {
	_, pos := r.Schema().Project(attrs)
	seen := map[string]bool{}
	var keys []string
	for _, t := range r.Tuples() {
		k := t.Project(pos).Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return sortedKeys(keys)
}

func oracleUnion(r, s *relation.Relation) string {
	seen := map[string]bool{}
	var keys []string
	for _, rel := range []*relation.Relation{r, s} {
		for _, t := range rel.Tuples() {
			k := t.Key()
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return sortedKeys(keys)
}

func oracleSemiJoin(r, s *relation.Relation, keep bool) string {
	common := r.Schema().Intersect(s.Schema())
	rPos := r.Schema().Positions(common.Attrs())
	sPos := s.Schema().Positions(common.Attrs())
	right := map[string]bool{}
	for _, u := range s.Tuples() {
		right[u.Project(sPos).Key()] = true
	}
	var keys []string
	for _, t := range r.Tuples() {
		if right[t.Project(rPos).Key()] == keep {
			keys = append(keys, t.Key())
		}
	}
	return sortedKeys(keys)
}

func TestIteratorsUnderForcedCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x7)
	defer restore()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		// Alternate value kinds so the masked probes exercise both the
		// single-mix integer path and the wide string kernel.
		gen := randRelation
		if trial%2 == 1 {
			gen = randWideRelation
		}
		r := gen(rng, []string{"a", "b"}, 5+rng.Intn(40), 6)
		s := gen(rng, []string{"b", "c"}, 1+rng.Intn(12), 6)
		u := gen(rng, []string{"a", "b"}, 5+rng.Intn(40), 6)
		rs := plan.NewScan("r", r)
		ss := plan.NewScan("s", s)
		us := plan.NewScan("u", u)

		cases := []struct {
			name string
			node plan.Node
			want string
		}{
			{"join", &plan.Join{Left: rs, Right: ss}, oracleJoin(r, s)},
			{"intersect", plan.Intersect(rs, us), oracleSetOp(r, u, true)},
			{"diff", plan.Diff(rs, us), oracleSetOp(r, u, false)},
			{"union", plan.Union(rs, us), oracleUnion(r, u)},
			{"project", &plan.Project{Input: rs, Attrs: []string{"a"}}, oracleProject(r, []string{"a"})},
			{"semijoin", &plan.SemiJoin{Left: rs, Right: ss}, oracleSemiJoin(r, s, true)},
			{"antisemijoin", &plan.AntiSemiJoin{Left: rs, Right: ss}, oracleSemiJoin(r, s, false)},
		}
		for _, c := range cases {
			if got := relKeys(mustRun(t, c.node, nil)); got != c.want {
				t.Fatalf("trial %d %s: got %q, want %q", trial, c.name, got, c.want)
			}
		}
	}
}

// TestDivideItersUnderForcedCollisions drives the streaming division
// iterators (which consume raw child streams, not pre-deduplicated
// relations) against plan.Eval of the logical definitions computed
// without masking interference via string-keyed checks in
// internal/division's collision tests; here it is enough to pin the
// compiled operators to the reference interpreter under collisions.
func TestDivideItersUnderForcedCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x7)
	defer restore()
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 60; trial++ {
		gen := randRelation
		if trial%2 == 1 {
			gen = randWideRelation
		}
		r1 := plan.NewScan("r1", gen(rng, []string{"a", "b"}, 5+rng.Intn(40), 6))
		r2 := plan.NewScan("r2", gen(rng, []string{"b"}, 1+rng.Intn(4), 6))
		r2g := plan.NewScan("r2g", gen(rng, []string{"b", "c"}, 1+rng.Intn(8), 6))
		for _, pl := range []plan.Node{
			&plan.Divide{Dividend: r1, Divisor: r2},
			&plan.GreatDivide{Dividend: r1, Divisor: r2g},
			&plan.ParallelDivide{Dividend: r1, Divisor: r2, Workers: 3},
			&plan.ParallelGreatDivide{Dividend: r1, Divisor: r2g, Workers: 3},
		} {
			want := plan.Eval(pl)
			got := mustRun(t, pl, nil)
			if relKeys(got) != relKeys(want) {
				t.Fatalf("trial %d: %s diverges under collisions:\ngot %v\nwant %v",
					trial, plan.Format(pl), got, want)
			}
		}
	}
}
