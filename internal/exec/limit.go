package exec

import (
	"context"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// LimitIter passes through the first N tuples of its input and ends
// the stream, closing the child as soon as the limit is reached —
// not when the parent eventually calls Close — so blocking and
// streaming subtrees stop working immediately. Over a parallel
// exchange this is the early-exit pushdown: reaching the limit
// cancels the exchange and every partition worker mid-stream, and
// the rest of the quotient is never computed. A limit of zero never
// opens the child at all.
type LimitIter struct {
	Label string
	Input Iterator
	N     int64
	Stats *Stats

	seen    int64
	opened  bool
	stopped bool  // child released early, before Close
	stopErr error // error from the early child Close, reported once
}

// Open implements Iterator.
func (l *LimitIter) Open(ctx context.Context) error {
	l.seen = 0
	l.stopped = l.N <= 0
	l.stopErr = nil
	if !l.stopped {
		if err := l.Input.Open(ctx); err != nil {
			return err
		}
	}
	l.opened = true
	return nil
}

// Next implements Iterator.
func (l *LimitIter) Next() (relation.Tuple, bool, error) {
	if !l.opened {
		return nil, false, errNotOpen("LimitIter")
	}
	if l.stopped || l.seen >= l.N {
		// Report an early-teardown error once, at end of stream —
		// never in place of the valid final tuple.
		err := l.stopErr
		l.stopErr = nil
		return nil, false, err
	}
	t, ok, err := l.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	l.Stats.count(l.Label, 1)
	if l.seen >= l.N {
		// Limit reached: release the subtree now. Close is idempotent,
		// so the parent's eventual Close stays harmless. A teardown
		// error must not eat the tuple the consumer asked for; it
		// surfaces on the next call (or from Close).
		l.stopped = true
		l.stopErr = l.Input.Close()
	}
	return t, true, nil
}

// Close implements Iterator.
func (l *LimitIter) Close() error {
	l.opened = false
	err := l.Input.Close()
	if err == nil {
		err = l.stopErr
	}
	l.stopErr = nil
	return err
}

// Schema implements Iterator.
func (l *LimitIter) Schema() schema.Schema { return l.Input.Schema() }
