package exec

import (
	"fmt"
	"os"
	"sync"

	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/spill"
)

// BatchMode selects how the compiler uses the batch-at-a-time fast
// path.
type BatchMode int

const (
	// BatchAuto (the zero value) selects the batch path for every
	// maximal subtree whose operators are all batch-capable, leaving
	// mixed subtrees on the tuple path — no adapter cost anywhere.
	BatchAuto BatchMode = iota
	// BatchOff compiles everything tuple-at-a-time; the correctness
	// oracle for equivalence tests.
	BatchOff
	// BatchForce compiles every batch-capable operator onto the batch
	// path, inserting ToBatch adapters over tuple-only children. Used
	// by the CI leg that runs the whole suite batch-first.
	BatchForce
)

// forceBatchEnv reports whether DIVLAWS_FORCE_BATCH=1 is set; it
// upgrades BatchAuto to BatchForce (an explicit BatchOff still wins,
// so equivalence oracles hold even under the forced-batch CI leg).
var forceBatchEnv = sync.OnceValue(func() bool {
	return os.Getenv("DIVLAWS_FORCE_BATCH") == "1"
})

// CompileOptions tunes physical operator construction. It unifies the
// engine's sizing knobs — emission batch size, context-poll interval,
// exchange buffering — which are independently tunable and all
// default to their package constants when zero.
type CompileOptions struct {
	// ExchangeBuffer is the bounded-channel capacity, in batches, of
	// streaming parallel exchange operators; 0 means
	// DefaultExchangeBuffer. It governs backpressure: how far workers
	// may run ahead of the consumer.
	ExchangeBuffer int
	// BatchSize is the tuple capacity of batch-path batches and the
	// emission batch size of parallel exchange workers; 0 means
	// relation.DefaultBatchCap (== parallel.EmitBatchSize). It governs
	// amortization: how many tuples share one interface call.
	BatchSize int
	// CheckEvery is the cooperative ctx-poll interval of blocking
	// drains and parallel worker feeds, in tuples; 0 means
	// DefaultCheckEvery. It governs cancellation latency.
	CheckEvery int
	// Batch selects the batch-path policy; the zero value is
	// BatchAuto.
	Batch BatchMode
	// MemoryLimit bounds the bytes of input state the plan's blocking
	// operators may hold live, in bytes. 0 defers to the
	// DIVLAWS_FORCE_SPILL environment override (unlimited when that is
	// unset too); negative is explicitly unlimited, overriding the
	// environment. Under a limit, sorts spill sorted runs and the hash
	// division/join operators grace-hash partition to temp files.
	MemoryLimit int64
	// Spill is the budget tracker shared by the plan's operators.
	// Usually nil: CompileWith builds one from MemoryLimit and ties its
	// lifetime (including temp-file cleanup) to the root iterator's
	// Close. A caller that needs to read spill counters after the query
	// passes its own tracker and owns its Close.
	Spill *spill.Tracker
}

// EffectiveMemoryLimit resolves the budget in bytes after the
// DIVLAWS_FORCE_SPILL environment override; 0 is unlimited. Callers
// that want to own the tracker (to read its counters after the query)
// use this to decide whether to build one before CompileWith.
func (o CompileOptions) EffectiveMemoryLimit() int64 {
	if o.MemoryLimit < 0 {
		return 0
	}
	if o.MemoryLimit > 0 {
		return o.MemoryLimit
	}
	return forceSpillEnv()
}

// mode resolves the effective batch policy, including the
// DIVLAWS_FORCE_BATCH environment upgrade of Auto to Force.
func (o CompileOptions) mode() BatchMode {
	if o.Batch == BatchAuto && forceBatchEnv() {
		return BatchForce
	}
	return o.Batch
}

// Compile lowers a logical plan to a physical iterator tree with
// default options. Every operator is labelled by its position so
// Stats exposes per-operator tuple counts. stats may be nil.
func Compile(n plan.Node, stats *Stats) Iterator {
	return CompileWith(n, stats, CompileOptions{})
}

// CompileWith is Compile with explicit options.
func CompileWith(n plan.Node, stats *Stats, opts CompileOptions) Iterator {
	owned := false
	if opts.Spill == nil {
		if lim := opts.EffectiveMemoryLimit(); lim > 0 {
			opts.Spill = spill.NewTracker(lim)
			owned = opts.Spill != nil
		}
	}
	it := compile(n, stats, "root", opts)
	if owned {
		it = ownTracker(it, opts.Spill)
	}
	return it
}

// batchCapable reports whether one plan node has a batch-native (or
// dual-mode) physical operator. Since the probe-side operators (joins,
// set ops, products, merge division) grew NextBatch, every plan node
// qualifies — the switch stays explicit so a future tuple-only node
// fails safe.
func batchCapable(n plan.Node) bool {
	switch n.(type) {
	case *plan.Scan, *plan.Select, *plan.Project, *plan.Limit, *plan.Rename,
		*plan.GreatDivide, *plan.Sort, *plan.TopK, *plan.Group,
		*plan.ParallelDivide, *plan.ParallelGreatDivide,
		*plan.Divide, *plan.Set, *plan.Product, *plan.Join,
		*plan.ThetaJoin, *plan.SemiJoin, *plan.AntiSemiJoin:
		return true
	default:
		return false
	}
}

// autoBatchable reports whether compiling n on the batch path needs
// no adapter (and no per-tuple probe accumulation) anywhere:
// streaming operators require a batchable child, while blocking
// emitters (sorts, divisions, groupings, exchanges) are batch sources
// regardless of their children — the children are drained during
// Open, not composed into the emitting pipeline. The probe-side
// operators sit in between: their build side is an Open-time drain
// (batch-upgraded when possible, never an adapter), but their probe
// side streams, so they join the batch path only when the probe child
// does. Merge-sort division is a batch source: its probe is the
// compiler-inserted SortIter.
func autoBatchable(n plan.Node) bool {
	if !batchCapable(n) {
		return false
	}
	switch t := n.(type) {
	case *plan.Select:
		return autoBatchable(t.Input)
	case *plan.Project:
		return autoBatchable(t.Input)
	case *plan.Limit:
		return autoBatchable(t.Input)
	case *plan.Rename:
		return autoBatchable(t.Input)
	case *plan.Set:
		if t.Op == plan.UnionOp {
			// Both sides stream through a union.
			return autoBatchable(t.Left) && autoBatchable(t.Right)
		}
		return autoBatchable(t.Left)
	case *plan.Product:
		return autoBatchable(t.Left)
	case *plan.Join:
		return autoBatchable(t.Left)
	case *plan.ThetaJoin:
		return autoBatchable(t.Left)
	case *plan.SemiJoin:
		return autoBatchable(t.Left)
	case *plan.AntiSemiJoin:
		return autoBatchable(t.Left)
	}
	return true
}

// onBatchPath reports whether the given options compile n's root onto
// the batch path.
func onBatchPath(n plan.Node, opts CompileOptions) bool {
	switch opts.mode() {
	case BatchAuto:
		return autoBatchable(n)
	case BatchForce:
		return batchCapable(n)
	}
	return false
}

// BatchNodes returns the set of plan nodes the given options would
// execute batch-at-a-time, by replaying the compiler's selection
// rule over the tree. Explain uses it to annotate plans with
// [batch].
func BatchNodes(n plan.Node, opts CompileOptions) map[plan.Node]bool {
	out := make(map[plan.Node]bool)
	markBatch(n, opts, out)
	return out
}

// markBatch mirrors compile: enter the batch pipeline where the root
// qualifies, recurse tuple-wise otherwise.
func markBatch(n plan.Node, opts CompileOptions, out map[plan.Node]bool) {
	if onBatchPath(n, opts) {
		markBatchPipeline(n, opts, out)
		return
	}
	for _, c := range n.Children() {
		markBatch(c, opts, out)
	}
}

// markBatchPipeline mirrors compileBatch: streaming operators extend
// the pipeline through batchable children — for the probe-side
// operators that is the probe (left, or both union sides) child,
// while build children restart the selection (they are drained at
// Open, a separate region) — and emitters restart it below
// themselves.
func markBatchPipeline(n plan.Node, opts CompileOptions, out map[plan.Node]bool) {
	out[n] = true
	probeThrough := func(probe plan.Node, builds ...plan.Node) {
		if onBatchPath(probe, opts) {
			markBatchPipeline(probe, opts, out)
		} else {
			// Forced mode only: the probe feed accumulates the tuple
			// compilation of the child.
			markBatch(probe, opts, out)
		}
		for _, b := range builds {
			markBatch(b, opts, out)
		}
	}
	switch t := n.(type) {
	case *plan.Select, *plan.Project, *plan.Limit, *plan.Rename:
		probeThrough(n.Children()[0])
	case *plan.Set:
		if t.Op == plan.UnionOp {
			probeThrough(t.Left)
			probeThrough(t.Right)
		} else {
			probeThrough(t.Left, t.Right)
		}
	case *plan.Product:
		probeThrough(t.Left, t.Right)
	case *plan.Join:
		probeThrough(t.Left, t.Right)
	case *plan.ThetaJoin:
		probeThrough(t.Left, t.Right)
	case *plan.SemiJoin:
		probeThrough(t.Left, t.Right)
	case *plan.AntiSemiJoin:
		probeThrough(t.Left, t.Right)
	default:
		for _, c := range n.Children() {
			markBatch(c, opts, out)
		}
	}
}

// compile dispatches between the batch and tuple paths, then lowers
// the node. Dual-mode operators satisfy both interfaces, so choosing
// the batch path never forces an adapter above it: consumers that
// want tuples call Next, batch drains call NextBatch.
func compile(n plan.Node, stats *Stats, label string, opts CompileOptions) Iterator {
	if onBatchPath(n, opts) {
		return asIterator(compileBatch(n, stats, label, opts))
	}
	it := compileNode(n, stats, label, opts)
	if opts.mode() == BatchOff {
		it = tupleOnly{it}
	}
	return it
}

// tupleOnly hides the batch surface of a dual-mode operator. Drains
// discover NextBatch by type assertion at runtime, so without this
// wrapper an explicit BatchOff compile would still be batch-drained
// wherever a dual-mode operator sits under a drain — leaving the
// correctness oracle and benchmark baseline partially vectorized.
// Wrapping every node of a BatchOff tree keeps it pure Volcano.
type tupleOnly struct{ Iterator }

// asIterator exposes a batch pipeline to a tuple consumer: dual-mode
// operators pass through, pure batch operators get a FromBatch.
func asIterator(b BatchIterator) Iterator {
	if it, ok := b.(Iterator); ok {
		return it
	}
	return &FromBatch{Input: b}
}

// compileBatch lowers a batch-path subtree rooted at a batch-capable
// node. Streaming operators get their batch-native forms; blocking
// emitters reuse the dual-mode lowering of compileNode.
func compileBatch(n plan.Node, stats *Stats, label string, opts CompileOptions) BatchIterator {
	switch t := n.(type) {
	case *plan.Select:
		return &FilterBatch{
			Label: label + "/filter",
			Input: compileBatchChild(t.Input, stats, label+".0", opts),
			Pred:  t.Pred,
			Stats: stats,
		}
	case *plan.Project:
		return &ProjectBatch{
			Label: label + "/project",
			Input: compileBatchChild(t.Input, stats, label+".0", opts),
			Attrs: t.Attrs,
			Stats: stats,
		}
	case *plan.Limit:
		return &LimitBatch{
			Label:         label + "/limit",
			Input:         compileBatchChild(t.Input, stats, label+".0", opts),
			N:             t.N,
			Stats:         stats,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.Rename:
		return &RenameBatch{
			Input: compileBatchChild(t.Input, stats, label+".0", opts),
			From:  t.From,
			To:    t.To,
		}
	default:
		// Blocking emitters and scans are dual-mode; their tuple
		// lowering IS the batch lowering.
		return compileNode(n, stats, label, opts).(BatchIterator)
	}
}

// compileBatchChild compiles a batch operator's input: the batch
// pipeline continues through qualifying children; otherwise (forced
// mode over a tuple-only subtree) a ToBatch adapter bridges the gap.
func compileBatchChild(n plan.Node, stats *Stats, label string, opts CompileOptions) BatchIterator {
	if onBatchPath(n, opts) {
		return compileBatch(n, stats, label, opts)
	}
	return &ToBatch{Input: compile(n, stats, label, opts), BatchSize: opts.BatchSize}
}

// compileNode lowers one plan node tuple-wise (producing dual-mode
// operators where they exist), recursing through compile so batchable
// subtrees below tuple-only operators still take the batch path.
func compileNode(n plan.Node, stats *Stats, label string, opts CompileOptions) Iterator {
	switch t := n.(type) {
	case *plan.Scan:
		return &ScanIter{
			Label:         label + "/scan(" + t.Name + ")",
			Rel:           t.Rel,
			Stats:         stats,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.Select:
		return &FilterIter{
			Label: label + "/filter",
			Input: compile(t.Input, stats, label+".0", opts),
			Pred:  t.Pred,
			Stats: stats,
		}
	case *plan.Project:
		return &ProjectIter{
			Label: label + "/project",
			Input: compile(t.Input, stats, label+".0", opts),
			Attrs: t.Attrs,
			Stats: stats,
		}
	case *plan.Limit:
		return &LimitIter{
			Label: label + "/limit",
			Input: compile(t.Input, stats, label+".0", opts),
			N:     t.N,
			Stats: stats,
		}
	case *plan.Sort:
		pos, desc := resolveSortKeys(t.Input.Schema(), t.Keys)
		return &SortIter{
			Label:         label + "/sort",
			Input:         compile(t.Input, stats, label+".0", opts),
			ByPos:         pos,
			Desc:          desc,
			Stats:         stats,
			Every:         opts.CheckEvery,
			Spill:         opts.Spill,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.TopK:
		pos, desc := resolveSortKeys(t.Input.Schema(), t.Keys)
		// Over a parallel exchange the bound is pushed into the
		// partition workers: each keeps an O(k) heap and the exchange
		// k-way merges the per-partition runs, so the operator IS the
		// exchange — no separate heap above it. K <= 0 keeps the
		// generic TopKIter, which never opens the subtree.
		if t.K > 0 {
			switch c := t.Input.(type) {
			case *plan.ParallelDivide:
				return &ParallelDivideIter{
					Label:         label + "/topk-paralleldivide",
					Dividend:      compile(c.Dividend, stats, label+".0.0", opts),
					Divisor:       compile(c.Divisor, stats, label+".0.1", opts),
					Algo:          c.Algo,
					Workers:       c.Workers,
					Buffer:        opts.ExchangeBuffer,
					TopKN:         t.K,
					TopKPos:       pos,
					TopKDesc:      desc,
					Stats:         stats,
					Every:         opts.CheckEvery,
					Spill:         opts.Spill,
					windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
				}
			case *plan.ParallelGreatDivide:
				return &ParallelGreatDivideIter{
					Label:         label + "/topk-parallelgreatdivide",
					Dividend:      compile(c.Dividend, stats, label+".0.0", opts),
					Divisor:       compile(c.Divisor, stats, label+".0.1", opts),
					Algo:          c.Algo,
					Workers:       c.Workers,
					Buffer:        opts.ExchangeBuffer,
					TopKN:         t.K,
					TopKPos:       pos,
					TopKDesc:      desc,
					Stats:         stats,
					Every:         opts.CheckEvery,
					Spill:         opts.Spill,
					windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
				}
			}
		}
		return &TopKIter{
			Label:         label + "/topk",
			Input:         compile(t.Input, stats, label+".0", opts),
			ByPos:         pos,
			Desc:          desc,
			K:             t.K,
			Stats:         stats,
			Every:         opts.CheckEvery,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.Set:
		l := compile(t.Left, stats, label+".0", opts)
		r := compile(t.Right, stats, label+".1", opts)
		wb := windowBatcher{BatchSize: opts.BatchSize}
		switch t.Op {
		case plan.UnionOp:
			return &UnionIter{Label: label + "/union", Left: l, Right: r, Stats: stats, windowBatcher: wb}
		case plan.IntersectOp:
			return &HashSetOpIter{Label: label + "/intersect", Left: l, Right: r, Keep: true, Stats: stats, Every: opts.CheckEvery, windowBatcher: wb}
		default:
			return &HashSetOpIter{Label: label + "/diff", Left: l, Right: r, Keep: false, Stats: stats, Every: opts.CheckEvery, windowBatcher: wb}
		}
	case *plan.Product:
		return &ProductIter{
			Label:         label + "/product",
			Left:          compile(t.Left, stats, label+".0", opts),
			Right:         compile(t.Right, stats, label+".1", opts),
			Stats:         stats,
			Every:         opts.CheckEvery,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.Join:
		return &HashJoinIter{
			Label:         label + "/hashjoin",
			Left:          compile(t.Left, stats, label+".0", opts),
			Right:         compile(t.Right, stats, label+".1", opts),
			Stats:         stats,
			Every:         opts.CheckEvery,
			Spill:         opts.Spill,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.ThetaJoin:
		return &ThetaJoinIter{
			Label:         label + "/thetajoin",
			Left:          compile(t.Left, stats, label+".0", opts),
			Right:         compile(t.Right, stats, label+".1", opts),
			Pred:          t.Pred,
			Stats:         stats,
			Every:         opts.CheckEvery,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.SemiJoin:
		return &SemiJoinIter{
			Label:         label + "/semijoin",
			Left:          compile(t.Left, stats, label+".0", opts),
			Right:         compile(t.Right, stats, label+".1", opts),
			Keep:          true,
			Stats:         stats,
			Every:         opts.CheckEvery,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.AntiSemiJoin:
		return &SemiJoinIter{
			Label:         label + "/antisemijoin",
			Left:          compile(t.Left, stats, label+".0", opts),
			Right:         compile(t.Right, stats, label+".1", opts),
			Keep:          false,
			Stats:         stats,
			Every:         opts.CheckEvery,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.Divide:
		dividend := compile(t.Dividend, stats, label+".0", opts)
		divisor := compile(t.Divisor, stats, label+".1", opts)
		if t.Algo == division.AlgoMergeSort {
			// Sort the dividend on A so the group-preserving
			// pipelined operator applies.
			split, err := division.SmallSplit(t.Dividend.Schema(), t.Divisor.Schema())
			if err == nil {
				sorted := &SortIter{
					Label:         label + "/sort",
					Input:         dividend,
					ByPos:         t.Dividend.Schema().Positions(split.A.Attrs()),
					Stats:         stats,
					Every:         opts.CheckEvery,
					Spill:         opts.Spill,
					windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
				}
				return &MergeGroupDivideIter{
					Label:         label + "/mergedivide",
					Dividend:      sorted,
					Divisor:       divisor,
					Stats:         stats,
					Every:         opts.CheckEvery,
					windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
				}
			}
		}
		return &HashDivideIter{
			Label:         label + "/hashdivide",
			Dividend:      dividend,
			Divisor:       divisor,
			Stats:         stats,
			Every:         opts.CheckEvery,
			Spill:         opts.Spill,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.GreatDivide:
		return &GreatDivideIter{
			Label:         label + "/greatdivide",
			Dividend:      compile(t.Dividend, stats, label+".0", opts),
			Divisor:       compile(t.Divisor, stats, label+".1", opts),
			Stats:         stats,
			Every:         opts.CheckEvery,
			Spill:         opts.Spill,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.ParallelDivide:
		return &ParallelDivideIter{
			Label:         label + "/paralleldivide",
			Dividend:      compile(t.Dividend, stats, label+".0", opts),
			Divisor:       compile(t.Divisor, stats, label+".1", opts),
			Algo:          t.Algo,
			Workers:       t.Workers,
			Buffer:        opts.ExchangeBuffer,
			Stats:         stats,
			Every:         opts.CheckEvery,
			Spill:         opts.Spill,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.ParallelGreatDivide:
		return &ParallelGreatDivideIter{
			Label:         label + "/parallelgreatdivide",
			Dividend:      compile(t.Dividend, stats, label+".0", opts),
			Divisor:       compile(t.Divisor, stats, label+".1", opts),
			Algo:          t.Algo,
			Workers:       t.Workers,
			Buffer:        opts.ExchangeBuffer,
			Stats:         stats,
			Every:         opts.CheckEvery,
			Spill:         opts.Spill,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.Group:
		return &GroupIter{
			Label:         label + "/group",
			Input:         compile(t.Input, stats, label+".0", opts),
			By:            t.By,
			Aggs:          t.Aggs,
			Stats:         stats,
			Every:         opts.CheckEvery,
			windowBatcher: windowBatcher{BatchSize: opts.BatchSize},
		}
	case *plan.Rename:
		return &RenameIter{
			Input: compile(t.Input, stats, label+".0", opts),
			From:  t.From,
			To:    t.To,
		}
	default:
		panic(fmt.Sprintf("exec: cannot compile %T", n))
	}
}

// SimulatedDividePlan builds the basic-algebra simulation of
// r1 ÷ r2 (Healy's Definition 2) as a logical plan:
//
//	πA(r1) − πA((πA(r1) × r2) − r1)
//
// Compiling and running it through the engine demonstrates the
// quadratic intermediate result πA(r1) × r2 that Leinders & Van den
// Bussche proved unavoidable for basic-algebra expressions [25];
// compare its Stats against a first-class Divide node.
func SimulatedDividePlan(r1Name string, r1 *relation.Relation, r2Name string, r2 *relation.Relation) plan.Node {
	split, err := division.SmallSplit(r1.Schema(), r2.Schema())
	if err != nil {
		panic(err)
	}
	a := split.A.Attrs()
	r1Scan := plan.NewScan(r1Name, r1)
	// The product emits columns A then B; align r1 to that order so
	// the difference is positional-compatible.
	aligned := append(append([]string(nil), a...), split.B.Attrs()...)
	r1Aligned := plan.NewScan(r1Name+"(aligned)", r1.Reorder(aligned))
	piA := &plan.Project{Input: r1Scan, Attrs: a}
	candidates := &plan.Product{Left: piA, Right: plan.NewScan(r2Name, r2)}
	missing := &plan.Project{Input: plan.Diff(candidates, r1Aligned), Attrs: a}
	return plan.Diff(piA, missing)
}
