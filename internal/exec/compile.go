package exec

import (
	"fmt"

	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
)

// CompileOptions tunes physical operator construction.
type CompileOptions struct {
	// ExchangeBuffer is the bounded-channel capacity of streaming
	// parallel exchange operators; 0 means DefaultExchangeBuffer.
	ExchangeBuffer int
}

// Compile lowers a logical plan to a physical iterator tree with
// default options. Every operator is labelled by its position so
// Stats exposes per-operator tuple counts. stats may be nil.
func Compile(n plan.Node, stats *Stats) Iterator {
	return CompileWith(n, stats, CompileOptions{})
}

// CompileWith is Compile with explicit options.
func CompileWith(n plan.Node, stats *Stats, opts CompileOptions) Iterator {
	return compile(n, stats, "root", opts)
}

func compile(n plan.Node, stats *Stats, label string, opts CompileOptions) Iterator {
	switch t := n.(type) {
	case *plan.Scan:
		return &ScanIter{Label: label + "/scan(" + t.Name + ")", Rel: t.Rel, Stats: stats}
	case *plan.Select:
		return &FilterIter{
			Label: label + "/filter",
			Input: compile(t.Input, stats, label+".0", opts),
			Pred:  t.Pred,
			Stats: stats,
		}
	case *plan.Project:
		return &ProjectIter{
			Label: label + "/project",
			Input: compile(t.Input, stats, label+".0", opts),
			Attrs: t.Attrs,
			Stats: stats,
		}
	case *plan.Limit:
		return &LimitIter{
			Label: label + "/limit",
			Input: compile(t.Input, stats, label+".0", opts),
			N:     t.N,
			Stats: stats,
		}
	case *plan.Sort:
		pos, desc := resolveSortKeys(t.Input.Schema(), t.Keys)
		return &SortIter{
			Label: label + "/sort",
			Input: compile(t.Input, stats, label+".0", opts),
			ByPos: pos,
			Desc:  desc,
			Stats: stats,
		}
	case *plan.TopK:
		pos, desc := resolveSortKeys(t.Input.Schema(), t.Keys)
		// Over a parallel exchange the bound is pushed into the
		// partition workers: each keeps an O(k) heap and the exchange
		// k-way merges the per-partition runs, so the operator IS the
		// exchange — no separate heap above it. K <= 0 keeps the
		// generic TopKIter, which never opens the subtree.
		if t.K > 0 {
			switch c := t.Input.(type) {
			case *plan.ParallelDivide:
				return &ParallelDivideIter{
					Label:    label + "/topk-paralleldivide",
					Dividend: compile(c.Dividend, stats, label+".0.0", opts),
					Divisor:  compile(c.Divisor, stats, label+".0.1", opts),
					Algo:     c.Algo,
					Workers:  c.Workers,
					Buffer:   opts.ExchangeBuffer,
					TopKN:    t.K,
					TopKPos:  pos,
					TopKDesc: desc,
					Stats:    stats,
				}
			case *plan.ParallelGreatDivide:
				return &ParallelGreatDivideIter{
					Label:    label + "/topk-parallelgreatdivide",
					Dividend: compile(c.Dividend, stats, label+".0.0", opts),
					Divisor:  compile(c.Divisor, stats, label+".0.1", opts),
					Algo:     c.Algo,
					Workers:  c.Workers,
					Buffer:   opts.ExchangeBuffer,
					TopKN:    t.K,
					TopKPos:  pos,
					TopKDesc: desc,
					Stats:    stats,
				}
			}
		}
		return &TopKIter{
			Label: label + "/topk",
			Input: compile(t.Input, stats, label+".0", opts),
			ByPos: pos,
			Desc:  desc,
			K:     t.K,
			Stats: stats,
		}
	case *plan.Set:
		l := compile(t.Left, stats, label+".0", opts)
		r := compile(t.Right, stats, label+".1", opts)
		switch t.Op {
		case plan.UnionOp:
			return &UnionIter{Label: label + "/union", Left: l, Right: r, Stats: stats}
		case plan.IntersectOp:
			return &HashSetOpIter{Label: label + "/intersect", Left: l, Right: r, Keep: true, Stats: stats}
		default:
			return &HashSetOpIter{Label: label + "/diff", Left: l, Right: r, Keep: false, Stats: stats}
		}
	case *plan.Product:
		return &ProductIter{
			Label: label + "/product",
			Left:  compile(t.Left, stats, label+".0", opts),
			Right: compile(t.Right, stats, label+".1", opts),
			Stats: stats,
		}
	case *plan.Join:
		return &HashJoinIter{
			Label: label + "/hashjoin",
			Left:  compile(t.Left, stats, label+".0", opts),
			Right: compile(t.Right, stats, label+".1", opts),
			Stats: stats,
		}
	case *plan.ThetaJoin:
		return &ThetaJoinIter{
			Label: label + "/thetajoin",
			Left:  compile(t.Left, stats, label+".0", opts),
			Right: compile(t.Right, stats, label+".1", opts),
			Pred:  t.Pred,
			Stats: stats,
		}
	case *plan.SemiJoin:
		return &SemiJoinIter{
			Label: label + "/semijoin",
			Left:  compile(t.Left, stats, label+".0", opts),
			Right: compile(t.Right, stats, label+".1", opts),
			Keep:  true,
			Stats: stats,
		}
	case *plan.AntiSemiJoin:
		return &SemiJoinIter{
			Label: label + "/antisemijoin",
			Left:  compile(t.Left, stats, label+".0", opts),
			Right: compile(t.Right, stats, label+".1", opts),
			Keep:  false,
			Stats: stats,
		}
	case *plan.Divide:
		dividend := compile(t.Dividend, stats, label+".0", opts)
		divisor := compile(t.Divisor, stats, label+".1", opts)
		if t.Algo == division.AlgoMergeSort {
			// Sort the dividend on A so the group-preserving
			// pipelined operator applies.
			split, err := division.SmallSplit(t.Dividend.Schema(), t.Divisor.Schema())
			if err == nil {
				sorted := &SortIter{
					Label: label + "/sort",
					Input: dividend,
					ByPos: t.Dividend.Schema().Positions(split.A.Attrs()),
					Stats: stats,
				}
				return &MergeGroupDivideIter{
					Label:    label + "/mergedivide",
					Dividend: sorted,
					Divisor:  divisor,
					Stats:    stats,
				}
			}
		}
		return &HashDivideIter{
			Label:    label + "/hashdivide",
			Dividend: dividend,
			Divisor:  divisor,
			Stats:    stats,
		}
	case *plan.GreatDivide:
		return &GreatDivideIter{
			Label:    label + "/greatdivide",
			Dividend: compile(t.Dividend, stats, label+".0", opts),
			Divisor:  compile(t.Divisor, stats, label+".1", opts),
			Stats:    stats,
		}
	case *plan.ParallelDivide:
		return &ParallelDivideIter{
			Label:    label + "/paralleldivide",
			Dividend: compile(t.Dividend, stats, label+".0", opts),
			Divisor:  compile(t.Divisor, stats, label+".1", opts),
			Algo:     t.Algo,
			Workers:  t.Workers,
			Buffer:   opts.ExchangeBuffer,
			Stats:    stats,
		}
	case *plan.ParallelGreatDivide:
		return &ParallelGreatDivideIter{
			Label:    label + "/parallelgreatdivide",
			Dividend: compile(t.Dividend, stats, label+".0", opts),
			Divisor:  compile(t.Divisor, stats, label+".1", opts),
			Algo:     t.Algo,
			Workers:  t.Workers,
			Buffer:   opts.ExchangeBuffer,
			Stats:    stats,
		}
	case *plan.Group:
		return &GroupIter{
			Label: label + "/group",
			Input: compile(t.Input, stats, label+".0", opts),
			By:    t.By,
			Aggs:  t.Aggs,
			Stats: stats,
		}
	case *plan.Rename:
		return &RenameIter{
			Input: compile(t.Input, stats, label+".0", opts),
			From:  t.From,
			To:    t.To,
		}
	default:
		panic(fmt.Sprintf("exec: cannot compile %T", n))
	}
}

// SimulatedDividePlan builds the basic-algebra simulation of
// r1 ÷ r2 (Healy's Definition 2) as a logical plan:
//
//	πA(r1) − πA((πA(r1) × r2) − r1)
//
// Compiling and running it through the engine demonstrates the
// quadratic intermediate result πA(r1) × r2 that Leinders & Van den
// Bussche proved unavoidable for basic-algebra expressions [25];
// compare its Stats against a first-class Divide node.
func SimulatedDividePlan(r1Name string, r1 *relation.Relation, r2Name string, r2 *relation.Relation) plan.Node {
	split, err := division.SmallSplit(r1.Schema(), r2.Schema())
	if err != nil {
		panic(err)
	}
	a := split.A.Attrs()
	r1Scan := plan.NewScan(r1Name, r1)
	// The product emits columns A then B; align r1 to that order so
	// the difference is positional-compatible.
	aligned := append(append([]string(nil), a...), split.B.Attrs()...)
	r1Aligned := plan.NewScan(r1Name+"(aligned)", r1.Reorder(aligned))
	piA := &plan.Project{Input: r1Scan, Attrs: a}
	candidates := &plan.Product{Left: piA, Right: plan.NewScan(r2Name, r2)}
	missing := &plan.Project{Input: plan.Diff(candidates, r1Aligned), Attrs: a}
	return plan.Diff(piA, missing)
}
