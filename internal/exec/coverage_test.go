package exec

import (
	"context"
	"testing"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

func TestCloseIdempotent(t *testing.T) {
	r := relation.Ints([]string{"a"}, [][]int64{{1}})
	iters := []Iterator{
		&ScanIter{Rel: r},
		&FilterIter{Input: &ScanIter{Rel: r}, Pred: truePred{}},
		&ProjectIter{Input: &ScanIter{Rel: r}, Attrs: []string{"a"}},
		&SortIter{Input: &ScanIter{Rel: r}},
	}
	for _, it := range iters {
		if err := it.Open(context.Background()); err != nil {
			t.Fatalf("%T open: %v", it, err)
		}
		if err := it.Close(); err != nil {
			t.Errorf("%T close: %v", it, err)
		}
		if err := it.Close(); err != nil {
			t.Errorf("%T second close: %v", it, err)
		}
	}
}

type truePred struct{}

func (truePred) Eval(relation.Tuple, schema.Schema) bool { return true }
func (truePred) Attrs() []string                         { return nil }
func (truePred) String() string                          { return "TRUE" }

func TestHashSetOpIncompatibleSchemas(t *testing.T) {
	op := &HashSetOpIter{
		Left:  &ScanIter{Rel: relation.Ints([]string{"a"}, nil)},
		Right: &ScanIter{Rel: relation.Ints([]string{"z"}, nil)},
	}
	if err := op.Open(context.Background()); err == nil {
		t.Error("expected schema error")
	}
}

func TestProductIterEmptyRight(t *testing.T) {
	p := &ProductIter{
		Left:  &ScanIter{Rel: relation.Ints([]string{"a"}, [][]int64{{1}, {2}})},
		Right: &ScanIter{Rel: relation.Ints([]string{"b"}, nil)},
	}
	out, err := Run(context.Background(), p)
	if err != nil || !out.Empty() {
		t.Errorf("product with empty right = %v, %v", out, err)
	}
}

func TestDivideItersRejectBadSchemasAtOpen(t *testing.T) {
	good := &ScanIter{Rel: relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})}
	bad := &ScanIter{Rel: relation.Ints([]string{"z"}, [][]int64{{1}})}
	h := &HashDivideIter{Dividend: good, Divisor: bad}
	if err := h.Open(context.Background()); err == nil {
		t.Error("hash divide should reject schema violation")
	}
	m := &MergeGroupDivideIter{Dividend: good, Divisor: bad}
	if err := m.Open(context.Background()); err == nil {
		t.Error("merge divide should reject schema violation")
	}
	g := &GreatDivideIter{Dividend: bad, Divisor: bad}
	if err := g.Open(context.Background()); err == nil {
		t.Error("great divide should reject schema violation")
	}
}

func TestDivideItersNotOpen(t *testing.T) {
	r1 := &ScanIter{Rel: relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})}
	r2 := &ScanIter{Rel: relation.Ints([]string{"b"}, [][]int64{{1}})}
	for _, it := range []Iterator{
		&HashDivideIter{Dividend: r1, Divisor: r2},
		&MergeGroupDivideIter{Dividend: r1, Divisor: r2},
		&GreatDivideIter{
			Dividend: &ScanIter{Rel: relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}})},
			Divisor:  &ScanIter{Rel: relation.Ints([]string{"b", "c"}, [][]int64{{1, 1}})},
		},
		&SemiJoinIter{Left: r1, Right: r2},
		&GroupIter{Input: r1, By: []string{"a"}},
		&ThetaJoinIter{Left: r1, Right: r2, Pred: truePred{}},
	} {
		if _, _, err := it.Next(); err == nil {
			t.Errorf("%T.Next before Open should error", it)
		}
	}
}

func TestRunPropagatesOpenError(t *testing.T) {
	op := &HashSetOpIter{
		Left:  &ScanIter{Rel: relation.Ints([]string{"a"}, nil)},
		Right: &ScanIter{Rel: relation.Ints([]string{"z"}, nil)},
	}
	if _, err := Run(context.Background(), op); err == nil {
		t.Error("Run must surface Open errors")
	}
	if _, err := Drain(context.Background(), op); err == nil {
		t.Error("Drain must surface Open errors")
	}
}
