package exec

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"divlaws/internal/division"
	"divlaws/internal/hashkey"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
)

// These tests pin the tentpole invariant: the vectorized batch path
// is an exact drop-in for the tuple path. Every plan is compiled
// twice — BatchOff (the tuple-at-a-time oracle) and BatchForce — and
// compared tuple-for-tuple: ordered plans by sequence, unordered by
// multiset-free set equality. Both drain styles are exercised: the
// Iterator surface (Next, through FromBatch where the root is
// batch-only) and the raw BatchIterator surface (NextBatch).

// drainSeq collects the full output sequence through the Iterator
// surface.
func drainSeq(t *testing.T, it Iterator) []relation.Tuple {
	t.Helper()
	if err := it.Open(context.Background()); err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer it.Close()
	var out []relation.Tuple
	for {
		tup, ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, tup)
	}
}

// drainBatchSeq collects the full output sequence through NextBatch,
// copying each batch before the next call (the ownership contract:
// a batch is valid only until the producer's next call).
func drainBatchSeq(t *testing.T, b BatchIterator) []relation.Tuple {
	t.Helper()
	if err := b.OpenBatch(context.Background()); err != nil {
		t.Fatalf("OpenBatch: %v", err)
	}
	defer b.Close()
	var out []relation.Tuple
	for {
		batch, err := b.NextBatch()
		if err != nil {
			t.Fatalf("NextBatch: %v", err)
		}
		if batch == nil {
			return out
		}
		if batch.Len() == 0 {
			t.Fatal("NextBatch returned an empty non-nil batch")
		}
		for _, tup := range batch.Tuples() {
			if tup == nil {
				t.Fatal("NextBatch returned a batch containing a nil tuple")
			}
			out = append(out, tup)
		}
	}
}

func seqKeys(ts []relation.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	return out
}

func sameSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equivPlans is the operator-pair matrix: one entry per physical
// operator with a batch counterpart or batch drain — including the
// probe-side operators batched in PR 7 (joins, set ops, products,
// merge division) — plus mixed trees crossing build/probe region
// boundaries (division over a join, set ops feeding divisions).
func equivPlans(rng *rand.Rand) []struct {
	name    string
	node    plan.Node
	ordered bool
} {
	return equivPlansGen(rng, randRelation)
}

// equivPlansGen is equivPlans over an arbitrary relation generator,
// so the sweeps can run the same matrix with string-keyed inputs
// (randWideRelation) against the wide hash kernels.
func equivPlansGen(rng *rand.Rand, gen func(*rand.Rand, []string, int, int) *relation.Relation) []struct {
	name    string
	node    plan.Node
	ordered bool
} {
	r1 := plan.NewScan("r1", gen(rng, []string{"a", "b"}, 5+rng.Intn(60), 6))
	r2 := plan.NewScan("r2", gen(rng, []string{"b"}, 1+rng.Intn(4), 6))
	r2g := plan.NewScan("r2g", gen(rng, []string{"b", "c"}, 1+rng.Intn(8), 6))
	u := plan.NewScan("u", gen(rng, []string{"a", "b"}, 5+rng.Intn(40), 6))
	rc := plan.NewScan("rc", gen(rng, []string{"c"}, rng.Intn(5), 6))
	p := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(int64(rng.Intn(6))))
	div := &plan.Divide{Dividend: r1, Divisor: r2}
	join := &plan.Join{Left: r1, Right: r2g}
	keysA := []plan.SortKey{{Attr: "a"}, {Attr: "b", Desc: true}}
	return []struct {
		name    string
		node    plan.Node
		ordered bool
	}{
		{"scan", r1, false},
		{"filter", &plan.Select{Input: r1, Pred: p}, false},
		{"project", &plan.Project{Input: r1, Attrs: []string{"a"}}, false},
		{"rename", &plan.Rename{Input: r1, From: "a", To: "x"}, false},
		{"limit", &plan.Limit{Input: r1, N: int64(rng.Intn(12))}, false},
		{"divide", div, false},
		{"greatdivide", &plan.GreatDivide{Dividend: r1, Divisor: r2g}, false},
		{"group", &plan.Group{Input: r1, By: []string{"a"}}, false},
		{"sort", &plan.Sort{Input: r1, Keys: keysA}, true},
		{"topk", &plan.TopK{Input: r1, Keys: keysA, K: int64(1 + rng.Intn(10))}, true},
		{"paralleldivide", &plan.ParallelDivide{Dividend: r1, Divisor: r2, Workers: 3}, false},
		{"parallelgreatdivide", &plan.ParallelGreatDivide{Dividend: r1, Divisor: r2g, Workers: 3}, false},
		{"topk-over-parallel", &plan.TopK{
			Input: &plan.ParallelDivide{Dividend: r1, Divisor: r2, Workers: 3},
			Keys:  []plan.SortKey{{Attr: "a"}}, K: 3,
		}, true},
		{"pipeline-over-divide", &plan.Limit{
			Input: &plan.Project{Input: &plan.Select{Input: div, Pred: p}, Attrs: []string{"a"}},
			N:     int64(1 + rng.Intn(6)),
		}, false},
		// The probe-side operators batched in PR 7.
		{"union", plan.Union(r1, u), false},
		{"intersect", plan.Intersect(r1, u), false},
		{"diff", plan.Diff(r1, u), false},
		{"join", join, false},
		{"join-degenerate-product", &plan.Join{Left: r2, Right: rc}, false},
		{"product", &plan.Product{Left: r1, Right: rc}, false},
		{"thetajoin", &plan.ThetaJoin{
			Left: r1, Right: rc,
			Pred: pred.Compare(pred.Attr("a"), pred.Lt, pred.Attr("c")),
		}, false},
		{"semijoin", &plan.SemiJoin{Left: r1, Right: r2g}, false},
		{"antisemijoin", &plan.AntiSemiJoin{Left: r1, Right: r2g}, false},
		{"mergedivide", &plan.Divide{Dividend: r1, Divisor: r2, Algo: division.AlgoMergeSort}, false},
		// Mixed trees: probe pipelines feeding and fed by divisions.
		{"divide-over-join", &plan.Divide{Dividend: join, Divisor: r2}, false},
		{"divide-over-union", &plan.Divide{Dividend: plan.Union(r1, u), Divisor: r2}, false},
		{"mergedivide-over-union", &plan.Divide{
			Dividend: plan.Union(r1, u), Divisor: r2, Algo: division.AlgoMergeSort,
		}, false},
		{"limit-over-join", &plan.Limit{Input: join, N: int64(1 + rng.Intn(8))}, false},
		{"filter-over-union", &plan.Select{Input: plan.Union(r1, u), Pred: p}, false},
		{"sort-over-union", &plan.Sort{Input: plan.Union(r1, u), Keys: keysA}, true},
		{"project-over-semijoin", &plan.Project{
			Input: &plan.SemiJoin{Left: r1, Right: r2g}, Attrs: []string{"a"},
		}, false},
	}
}

// TestBatchMatchesTuplePath is the per-operator-pair equivalence
// sweep: for every plan shape, the forced batch path must produce
// exactly what the tuple path produces — the same sequence for
// ordered plans, the same set otherwise — through both drain styles,
// across batch sizes chosen to hit window boundaries (1, a prime
// smaller than most outputs, and the default).
func TestBatchMatchesTuplePath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		for _, c := range equivPlans(rng) {
			want := seqKeys(drainSeq(t, CompileWith(c.node, nil, CompileOptions{Batch: BatchOff})))
			for _, size := range []int{1, 7, 0} {
				opts := CompileOptions{Batch: BatchForce, BatchSize: size}
				got := seqKeys(drainSeq(t, CompileWith(c.node, nil, opts)))
				check := func(got []string, via string) {
					t.Helper()
					if c.ordered && !sameSeq(got, want) {
						t.Fatalf("trial %d %s (size %d, %s): sequence diverges\ngot  %v\nwant %v",
							trial, c.name, size, via, got, want)
					}
					if !c.ordered && sortedKeys(append([]string(nil), got...)) != sortedKeys(append([]string(nil), want...)) {
						t.Fatalf("trial %d %s (size %d, %s): set diverges\ngot  %v\nwant %v",
							trial, c.name, size, via, got, want)
					}
				}
				check(got, "Next")
				if b, ok := CompileWith(c.node, nil, opts).(BatchIterator); ok {
					check(seqKeys(drainBatchSeq(t, b)), "NextBatch")
				}
			}
		}
	}
}

// TestBatchMatchesTupleUnderForcedCollisions repeats the sweep with
// 3-bit hashes, so every hash-table probe in the batch drains and the
// batch projection dedup runs its collision-verification logic.
func TestBatchMatchesTupleUnderForcedCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(0x7)
	defer restore()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		// Alternate kinds: even trials probe with single-mix integer
		// hashes, odd trials with the wide string kernel.
		plans := equivPlans(rng)
		if trial%2 == 1 {
			plans = equivPlansGen(rng, randWideRelation)
		}
		for _, c := range plans {
			want := seqKeys(drainSeq(t, CompileWith(c.node, nil, CompileOptions{Batch: BatchOff})))
			got := seqKeys(drainSeq(t, CompileWith(c.node, nil, CompileOptions{Batch: BatchForce, BatchSize: 3})))
			if c.ordered && !sameSeq(got, want) {
				t.Fatalf("trial %d %s: sequence diverges under collisions\ngot  %v\nwant %v",
					trial, c.name, got, want)
			}
			if !c.ordered && sortedKeys(append([]string(nil), got...)) != sortedKeys(append([]string(nil), want...)) {
				t.Fatalf("trial %d %s: set diverges under collisions\ngot  %v\nwant %v",
					trial, c.name, got, want)
			}
		}
	}
}

// TestBatchStatsParity: both paths label operators identically, so a
// compiled plan reports the same per-operator tuple counts whichever
// path ran it.
func TestBatchStatsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	r1 := plan.NewScan("r1", randRelation(rng, []string{"a", "b"}, 50, 6))
	r2 := plan.NewScan("r2", randRelation(rng, []string{"b"}, 3, 6))
	node := &plan.Project{
		Input: &plan.Select{
			Input: &plan.Divide{Dividend: r1, Divisor: r2},
			Pred:  pred.Compare(pred.Attr("a"), pred.Ge, pred.ConstInt(0)),
		},
		Attrs: []string{"a"},
	}
	tupleStats, batchStats := NewStats(), NewStats()
	drainSeq(t, CompileWith(node, tupleStats, CompileOptions{Batch: BatchOff}))
	drainSeq(t, CompileWith(node, batchStats, CompileOptions{Batch: BatchForce}))
	want := tupleStats.Snapshot()
	got := batchStats.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("label sets diverge:\nbatch %v\ntuple %v", got, want)
	}
	for label, n := range want {
		if got[label] != n {
			t.Errorf("stats[%q] = %d on the batch path, %d on the tuple path", label, got[label], n)
		}
	}
}

// TestBatchMixedNextThenBatch pins the dual-mode shared-cursor
// contract: consuming a few tuples via Next and then switching to
// NextBatch continues from the same cursor without loss or repeats.
func TestBatchMixedNextThenBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rel := randRelation(rng, []string{"a", "b"}, 100, 25)
	node := plan.NewScan("r", rel)
	want := seqKeys(drainSeq(t, CompileWith(node, nil, CompileOptions{Batch: BatchOff})))

	it := CompileWith(node, nil, CompileOptions{Batch: BatchForce, BatchSize: 8})
	b, ok := it.(BatchIterator)
	if !ok {
		t.Fatalf("forced batch compile of a scan is %T, want a dual-mode BatchIterator", it)
	}
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for i := 0; i < 5; i++ {
		tup, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("Next %d = (%t, %v)", i, ok, err)
		}
		got = append(got, tup.Key())
	}
	for {
		batch, err := b.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		got = append(got, seqKeys(batch.Tuples())...)
	}
	if !sameSeq(got, want) {
		t.Fatalf("mixed Next/NextBatch lost or repeated tuples:\ngot  %v\nwant %v", got, want)
	}
}

// TestBatchGoroutineLeaks mirrors TestExchangeGoroutineLeaks for the
// batch surface: the exchange workers behind a parallel division
// must die on every teardown path when the consumer drives NextBatch
// instead of Next.
func TestBatchGoroutineLeaks(t *testing.T) {
	node, _ := streamFixture()
	opts := CompileOptions{ExchangeBuffer: 2, Batch: BatchForce}

	openBatchRoot := func(t *testing.T, ctx context.Context) BatchIterator {
		t.Helper()
		b, ok := CompileWith(node, nil, opts).(BatchIterator)
		if !ok {
			t.Fatal("forced batch compile of a parallel divide must be a BatchIterator")
		}
		if err := b.OpenBatch(ctx); err != nil {
			t.Fatal(err)
		}
		return b
	}

	t.Run("CloseMidStream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		b := openBatchRoot(t, context.Background())
		for i := 0; i < 3; i++ {
			if batch, err := b.NextBatch(); err != nil || batch == nil {
				t.Fatalf("NextBatch %d = (%v, %v)", i, batch, err)
			}
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("CancelMidBatch", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		b := openBatchRoot(t, ctx)
		if batch, err := b.NextBatch(); err != nil || batch == nil {
			t.Fatalf("NextBatch = (%v, %v)", batch, err)
		}
		cancel()
		// Drain to the cancellation error or end of stream; the
		// workers must die either way.
		for {
			batch, err := b.NextBatch()
			if err != nil || batch == nil {
				break
			}
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("JoinOverExchangeCloseMidStream", func(t *testing.T) {
		// A hash join probing a batch exchange natively: Close after the
		// first probe batch must kill the workers even though the join's
		// feed still holds a retained exchange window.
		baseline := runtime.NumGoroutine()
		rng := rand.New(rand.NewSource(61))
		join := &plan.Join{Left: node, Right: plan.NewScan("w", randRelation(rng, []string{"a", "c"}, 120, 50))}
		b, ok := CompileWith(join, nil, opts).(BatchIterator)
		if !ok {
			t.Fatal("forced batch compile of join-over-parallel must be a BatchIterator")
		}
		if err := b.OpenBatch(context.Background()); err != nil {
			t.Fatal(err)
		}
		if batch, err := b.NextBatch(); err != nil || batch == nil {
			t.Fatalf("NextBatch = (%v, %v), want a first batch of join matches", batch, err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("LimitOverBatchExchange", func(t *testing.T) {
		// The LIMIT early-exit above a batch exchange: the limit closes
		// the subtree after the first batch; no workers may survive,
		// and the served batch must stay intact past the child Close.
		baseline := runtime.NumGoroutine()
		lim := &plan.Limit{Input: node, N: 1}
		b, ok := CompileWith(lim, nil, opts).(BatchIterator)
		if !ok {
			t.Fatal("forced batch compile of limit-over-parallel must be a BatchIterator")
		}
		if err := b.OpenBatch(context.Background()); err != nil {
			t.Fatal(err)
		}
		batch, err := b.NextBatch()
		if err != nil || batch == nil || batch.Len() != 1 {
			t.Fatalf("NextBatch = (%v, %v), want one surviving tuple", batch, err)
		}
		if batch.Tuple(0) == nil {
			t.Fatal("limit served a recycled (nil) tuple after closing its child")
		}
		if batch, err := b.NextBatch(); err != nil || batch != nil {
			t.Fatalf("second NextBatch = (%v, %v), want end of stream", batch, err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})
}

// TestBatchLimitNoOvershoot pins the row-budget protocol: LIMIT on
// the batch path must not drain a full slab past the limit. Before
// PR 7, LIMIT 1 over a 64-tuple batch scan pulled all 64 rows and
// truncated after the fact; with budgets threaded through NextBatch,
// the child serves a partial window and stops at row N — the same
// consumption the tuple-path LimitIter has always had.
func TestBatchLimitNoOvershoot(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	scan := plan.NewScan("r", randRelation(rng, []string{"a", "b"}, 200, 50))

	t.Run("LimitOneReadsOneRow", func(t *testing.T) {
		for _, size := range []int{1, 7, 0} {
			stats := NewStats()
			out := drainSeq(t, CompileWith(&plan.Limit{Input: scan, N: 1}, stats,
				CompileOptions{Batch: BatchForce, BatchSize: size}))
			if len(out) != 1 {
				t.Fatalf("size %d: LIMIT 1 returned %d tuples", size, len(out))
			}
			if n := stats.Get("root.0/scan(r)"); n != 1 {
				t.Errorf("size %d: scan emitted %d rows under LIMIT 1, want exactly 1", size, n)
			}
		}
	})

	t.Run("LimitNOverScanReadsNRows", func(t *testing.T) {
		stats := NewStats()
		out := drainSeq(t, CompileWith(&plan.Limit{Input: scan, N: 5}, stats,
			CompileOptions{Batch: BatchForce}))
		if len(out) != 5 {
			t.Fatalf("LIMIT 5 returned %d tuples", len(out))
		}
		if n := stats.Get("root.0/scan(r)"); n != 5 {
			t.Errorf("scan emitted %d rows under LIMIT 5, want exactly 5", n)
		}
	})

	t.Run("StatsMatchTuplePathUnderLimitOne", func(t *testing.T) {
		// With a budget of 1 every window is one row, so child
		// consumption matches the tuple path exactly — even through a
		// selective filter, where larger budgets may legitimately
		// overscan inside the final window.
		p := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(30))
		node := &plan.Limit{Input: &plan.Select{Input: scan, Pred: p}, N: 1}
		tupleStats := NewStats()
		drainSeq(t, CompileWith(node, tupleStats, CompileOptions{Batch: BatchOff}))
		for _, size := range []int{1, 7, 0} {
			batchStats := NewStats()
			drainSeq(t, CompileWith(node, batchStats, CompileOptions{Batch: BatchForce, BatchSize: size}))
			want, got := tupleStats.Snapshot(), batchStats.Snapshot()
			for label, n := range want {
				if got[label] != n {
					t.Errorf("size %d: stats[%q] = %d on the batch path, %d on the tuple path",
						size, label, got[label], n)
				}
			}
		}
	})

	t.Run("BatchDrainServesTruncatedBatch", func(t *testing.T) {
		// The raw NextBatch surface under LIMIT 1: one single-tuple
		// batch, then end of stream — not a truncated 64-row slab.
		stats := NewStats()
		b, ok := CompileWith(&plan.Limit{Input: scan, N: 1}, stats,
			CompileOptions{Batch: BatchForce}).(BatchIterator)
		if !ok {
			t.Fatal("forced batch compile of a limit must be a BatchIterator")
		}
		out := drainBatchSeq(t, b)
		if len(out) != 1 {
			t.Fatalf("NextBatch drain of LIMIT 1 yielded %d tuples", len(out))
		}
		if n := stats.Get("root.0/scan(r)"); n != 1 {
			t.Errorf("scan emitted %d rows under batch-drained LIMIT 1, want exactly 1", n)
		}
	})
}
