package exec

import (
	"context"

	"divlaws/internal/division"
	"divlaws/internal/hashkey"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/spill"
)

// ThetaJoinIter is a nested-loop join with an arbitrary predicate
// over the concatenated schemas (which must be disjoint). It is
// dual-mode: NextBatch filters whole batches of the inner product
// into a pooled output batch, the predicate evaluated per tuple but
// all interface costs per batch.
type ThetaJoinIter struct {
	Label       string
	Left, Right Iterator
	Pred        pred.Predicate
	Stats       *Stats
	// Every is the cooperative ctx-poll interval of the inner build
	// drain, in tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher
	inner *ProductIter
	out   schema.Schema
}

// Open implements Iterator.
func (j *ThetaJoinIter) Open(ctx context.Context) error {
	j.inner = &ProductIter{Label: j.Label + ".product", Left: j.Left, Right: j.Right, Stats: nil, Every: j.Every,
		windowBatcher: windowBatcher{BatchSize: j.BatchSize}}
	j.out = j.Left.Schema().Concat(j.Right.Schema())
	return j.inner.Open(ctx)
}

// OpenBatch implements BatchIterator.
func (j *ThetaJoinIter) OpenBatch(ctx context.Context) error { return j.Open(ctx) }

// NextBatch implements BatchIterator: each inner product batch is
// filtered through the predicate into a pooled output batch. The
// armed row budget is re-armed on the inner product before every pull
// (the filter only shrinks batches).
func (j *ThetaJoinIter) NextBatch() (*relation.Batch, error) {
	if j.inner == nil {
		return nil, errNotOpen("ThetaJoinIter")
	}
	for {
		j.inner.SetRowBudget(j.budget)
		in, err := j.inner.NextBatch()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		out := j.outBatch()
		for _, t := range in.Tuples() {
			if j.Pred.Eval(t, j.out) {
				out.Append(t)
			}
		}
		if n := out.Len(); n > 0 {
			j.Stats.count(j.Label, int64(n))
			return out, nil
		}
	}
}

// Next implements Iterator.
func (j *ThetaJoinIter) Next() (relation.Tuple, bool, error) {
	if j.inner == nil {
		return nil, false, errNotOpen("ThetaJoinIter")
	}
	for {
		t, ok, err := j.inner.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if j.Pred.Eval(t, j.out) {
			j.Stats.count(j.Label, 1)
			return t, true, nil
		}
	}
}

// Close implements Iterator. It is a no-op before Open (the inner
// product, and with it the children, only exist after Open).
func (j *ThetaJoinIter) Close() error {
	j.release()
	if j.inner == nil {
		return nil
	}
	inner := j.inner
	j.inner = nil
	return inner.Close()
}

// Schema implements Iterator.
func (j *ThetaJoinIter) Schema() schema.Schema {
	if j.out.Len() == 0 {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// HashDivideIter is the physical hash-division operator (Graefe):
// the divisor is streamed into a bit-numbering table on Open, the
// dividend consumed in one pass straight off its child iterator —
// neither input is materialized into an intermediate relation — and
// qualifying quotient groups emitted afterwards. It is blocking on
// the dividend but needs no sorted inputs. It is dual-mode: the
// quotient is emitted per tuple or per zero-copy batch over one
// shared cursor, and batch-capable children are drained in batches.
type HashDivideIter struct {
	Label             string
	Dividend, Divisor Iterator
	Stats             *Stats
	// Every is the cooperative ctx-poll interval of the build drains,
	// in tuples; 0 means DefaultCheckEvery.
	Every int
	// Spill, when non-nil, bounds the division state: on budget
	// pressure the dividend grace-hash partitions to temp files and
	// each partition is divided against the (retained) divisor.
	Spill *spill.Tracker
	windowBatcher
	out     schema.Schema
	results []relation.Tuple
	pos     int
	opened  bool
	grace   *graceDivide
	gctx    context.Context
}

// Open implements Iterator.
func (h *HashDivideIter) Open(ctx context.Context) error {
	dividendSch, divisorSch := h.Dividend.Schema(), h.Divisor.Schema()
	st, err := division.NewDivideState(dividendSch, divisorSch)
	if err != nil {
		return err
	}
	if err := h.Dividend.Open(ctx); err != nil {
		return err
	}
	if err := h.Divisor.Open(ctx); err != nil {
		return err
	}
	if h.Spill != nil {
		split, err := division.SmallSplit(dividendSch, divisorSch)
		if err != nil {
			return err
		}
		g := newGraceDivide(h.Spill, dividendSch.Positions(split.A.Attrs()), h.Every,
			func() (divSpillState, error) { return division.NewDivideState(dividendSch, divisorSch) })
		h.grace, h.gctx = g, ctx
		if err := drainEveryErr(ctx, h.Divisor, h.Every, g.addDivisor); err != nil {
			return err
		}
		if err := drainEveryErr(ctx, h.Dividend, h.Every, func(t relation.Tuple) error {
			return g.addDividend(ctx, t)
		}); err != nil {
			return err
		}
		if err := g.finish(ctx); err != nil {
			return err
		}
		h.opened = true
		return nil
	}
	if err := drainEvery(ctx, h.Divisor, h.Every, st.AddDivisor); err != nil {
		return err
	}
	if err := drainEvery(ctx, h.Dividend, h.Every, st.AddDividend); err != nil {
		return err
	}
	h.results = st.Result().Tuples()
	h.pos = 0
	h.opened = true
	return nil
}

// OpenBatch implements BatchIterator.
func (h *HashDivideIter) OpenBatch(ctx context.Context) error { return h.Open(ctx) }

// Next implements Iterator.
func (h *HashDivideIter) Next() (relation.Tuple, bool, error) {
	if !h.opened {
		return nil, false, errNotOpen("HashDivideIter")
	}
	if h.grace != nil {
		t, ok, err := h.grace.next(h.gctx)
		if ok {
			h.Stats.count(h.Label, 1)
		}
		return t, ok, err
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	t := h.results[h.pos]
	h.pos++
	h.Stats.count(h.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (h *HashDivideIter) NextBatch() (*relation.Batch, error) {
	if !h.opened {
		return nil, errNotOpen("HashDivideIter")
	}
	if h.grace != nil {
		return graceBatch(h.grace, h.gctx, &h.windowBatcher, h.Stats, h.Label)
	}
	b := h.window(h.results, &h.pos)
	if b != nil {
		h.Stats.count(h.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (h *HashDivideIter) Close() error {
	h.results, h.opened = nil, false
	if h.grace != nil {
		h.grace.close()
		h.grace = nil
	}
	h.release()
	err1 := h.Dividend.Close()
	err2 := h.Divisor.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator. It is derived from the children's
// schemas so parents may call it before Open.
func (h *HashDivideIter) Schema() schema.Schema {
	if h.out.Len() == 0 {
		split, err := division.SmallSplit(h.Dividend.Schema(), h.Divisor.Schema())
		if err != nil {
			panic(err)
		}
		h.out = split.A
	}
	return h.out
}

// MergeGroupDivideIter is the group-preserving pipelined division of
// §5.1.1: it requires its dividend sorted (grouped) on the quotient
// attributes A and emits each qualifying quotient as soon as its
// group ends, holding only the divisor table and the current group's
// progress in memory. This is the operator shape that makes Law 1's
// pipeline parallelism possible. It is dual-mode: NextBatch consumes
// the sorted dividend a batch at a time, runs the same group machinery
// over the whole batch, and emits finished quotients into a pooled
// output batch — the group-in-progress state is shared with Next.
type MergeGroupDivideIter struct {
	Label             string
	Dividend, Divisor Iterator
	Stats             *Stats
	// Every is the cooperative ctx-poll interval of the divisor drain,
	// in tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher

	out      schema.Schema
	aPos     []int
	bPos     []int
	divisor  relation.TupleIndex
	nDivisor int

	curA    relation.Tuple
	curBits hashkey.Bitset
	curSeen int
	srcDone bool
	opened  bool

	srcFeed batchFeed
	div     []relation.Tuple
	dPos    int
}

// Open implements Iterator.
func (m *MergeGroupDivideIter) Open(ctx context.Context) error {
	split, err := division.SmallSplit(m.Dividend.Schema(), m.Divisor.Schema())
	if err != nil {
		return err
	}
	m.aPos = m.Dividend.Schema().Positions(split.A.Attrs())
	m.bPos = m.Dividend.Schema().Positions(split.B.Attrs())
	bOrder := m.Divisor.Schema().Positions(split.B.Attrs())

	if err := m.Divisor.Open(ctx); err != nil {
		return err
	}
	m.divisor.Reset()
	if err := drainEvery(ctx, m.Divisor, m.Every, func(t relation.Tuple) {
		m.divisor.IDProj(t, bOrder)
	}); err != nil {
		return err
	}
	m.nDivisor = m.divisor.Len()

	if err := m.Dividend.Open(ctx); err != nil {
		return err
	}
	m.curA, m.curBits, m.curSeen = nil, nil, 0
	m.srcDone = false
	m.opened = true
	m.srcFeed = batchFeed{child: m.Dividend, size: m.BatchSize}
	m.div, m.dPos = nil, 0
	return nil
}

// OpenBatch implements BatchIterator.
func (m *MergeGroupDivideIter) OpenBatch(ctx context.Context) error { return m.Open(ctx) }

// NextBatch implements BatchIterator: the sorted dividend flows in a
// batch at a time, the group machinery runs over whole batches, and
// each qualifying quotient lands in a pooled output batch the moment
// its group ends. An armed row budget bounds the output batch (the
// dividend feed is unbounded: group sizes are unknown ahead of time).
func (m *MergeGroupDivideIter) NextBatch() (*relation.Batch, error) {
	if !m.opened {
		return nil, errNotOpen("MergeGroupDivideIter")
	}
	out := m.outBatch()
	bound := m.effectiveCap()
	for out.Len() < bound {
		if m.srcDone {
			// Flush the final group, once.
			if m.curA != nil {
				q, qualifies := m.finishGroup()
				m.curA = nil
				if qualifies {
					out.Append(q)
				}
			}
			break
		}
		if m.dPos >= len(m.div) {
			ts, err := m.srcFeed.next(0)
			if err != nil {
				return nil, err
			}
			if ts == nil {
				m.srcDone = true
				continue
			}
			m.div, m.dPos = ts, 0
		}
		t := m.div[m.dPos]
		m.dPos++
		at := t.Project(m.aPos)
		if m.curA == nil {
			m.startGroup(at)
		} else if at.Compare(m.curA) != 0 {
			q, qualifies := m.finishGroup()
			m.startGroup(at)
			m.absorb(t)
			if qualifies {
				out.Append(q)
			}
			continue
		}
		m.absorb(t)
	}
	if out.Len() == 0 {
		return nil, nil
	}
	m.Stats.count(m.Label, int64(out.Len()))
	return out, nil
}

// Next implements Iterator.
func (m *MergeGroupDivideIter) Next() (relation.Tuple, bool, error) {
	if !m.opened {
		return nil, false, errNotOpen("MergeGroupDivideIter")
	}
	for {
		if m.srcDone {
			// Flush the final group, once.
			if m.curA != nil {
				q, qualifies := m.finishGroup()
				m.curA = nil
				if qualifies {
					m.Stats.count(m.Label, 1)
					return q, true, nil
				}
			}
			return nil, false, nil
		}
		t, ok, err := m.Dividend.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			m.srcDone = true
			continue
		}
		at := t.Project(m.aPos)
		if m.curA == nil {
			m.startGroup(at)
		} else if at.Compare(m.curA) != 0 {
			// Group boundary: finish current, stash the tuple.
			q, qualifies := m.finishGroup()
			m.startGroup(at)
			m.absorb(t)
			if qualifies {
				m.Stats.count(m.Label, 1)
				return q, true, nil
			}
			continue
		}
		m.absorb(t)
	}
}

func (m *MergeGroupDivideIter) startGroup(a relation.Tuple) {
	m.curA = a
	// Reuse the bitmap across groups; it is fixed-size per Open.
	if m.curBits == nil {
		m.curBits = hashkey.NewBitset(m.nDivisor)
	} else {
		for i := range m.curBits {
			m.curBits[i] = 0
		}
	}
	m.curSeen = 0
}

func (m *MergeGroupDivideIter) absorb(t relation.Tuple) {
	if bit := m.divisor.LookupProj(t, m.bPos); bit >= 0 {
		if m.curBits.Set(bit) {
			m.curSeen++
		}
	}
}

func (m *MergeGroupDivideIter) finishGroup() (relation.Tuple, bool) {
	return m.curA, m.curSeen == m.nDivisor
}

// Close implements Iterator.
func (m *MergeGroupDivideIter) Close() error {
	m.divisor.Reset()
	m.opened = false
	m.div, m.dPos = nil, 0
	m.release()
	m.srcFeed.release()
	err1 := m.Dividend.Close()
	err2 := m.Divisor.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator. It is derived from the children's
// schemas so parents may call it before Open.
func (m *MergeGroupDivideIter) Schema() schema.Schema {
	if m.out.Len() == 0 {
		split, err := division.SmallSplit(m.Dividend.Schema(), m.Divisor.Schema())
		if err != nil {
			panic(err)
		}
		m.out = split.A
	}
	return m.out
}

// GreatDivideIter is the physical set-containment-division operator:
// blocking on both inputs, hash-based counting. Both inputs are
// consumed straight off the child iterators into the counting state,
// which absorbs duplicates itself — no intermediate relations. It is
// dual-mode like HashDivideIter: per-tuple or per-batch emission over
// one shared cursor, batch drains of batch-capable children.
type GreatDivideIter struct {
	Label             string
	Dividend, Divisor Iterator
	Stats             *Stats
	// Every is the cooperative ctx-poll interval of the build drains,
	// in tuples; 0 means DefaultCheckEvery.
	Every int
	// Spill, when non-nil, bounds the counting state: on budget
	// pressure the dividend grace-hash partitions on A to temp files —
	// lossless because a candidate's (a, c) verdicts depend only on its
	// own tuples plus the whole (retained) divisor.
	Spill *spill.Tracker
	windowBatcher
	out     schema.Schema
	results []relation.Tuple
	pos     int
	opened  bool
	grace   *graceDivide
	gctx    context.Context
}

// Open implements Iterator.
func (g *GreatDivideIter) Open(ctx context.Context) error {
	dividendSch, divisorSch := g.Dividend.Schema(), g.Divisor.Schema()
	st, err := division.NewGreatDivideState(dividendSch, divisorSch)
	if err != nil {
		return err
	}
	if err := g.Dividend.Open(ctx); err != nil {
		return err
	}
	if err := g.Divisor.Open(ctx); err != nil {
		return err
	}
	if g.Spill != nil {
		split, err := division.GreatSplit(dividendSch, divisorSch)
		if err != nil {
			return err
		}
		gd := newGraceDivide(g.Spill, dividendSch.Positions(split.A.Attrs()), g.Every,
			func() (divSpillState, error) { return division.NewGreatDivideState(dividendSch, divisorSch) })
		g.grace, g.gctx = gd, ctx
		if err := drainEveryErr(ctx, g.Divisor, g.Every, gd.addDivisor); err != nil {
			return err
		}
		if err := drainEveryErr(ctx, g.Dividend, g.Every, func(t relation.Tuple) error {
			return gd.addDividend(ctx, t)
		}); err != nil {
			return err
		}
		if err := gd.finish(ctx); err != nil {
			return err
		}
		g.opened = true
		return nil
	}
	if err := drainEvery(ctx, g.Divisor, g.Every, st.AddDivisor); err != nil {
		return err
	}
	if err := drainEvery(ctx, g.Dividend, g.Every, st.AddDividend); err != nil {
		return err
	}
	g.results = st.Result().Tuples()
	g.pos = 0
	g.opened = true
	return nil
}

// OpenBatch implements BatchIterator.
func (g *GreatDivideIter) OpenBatch(ctx context.Context) error { return g.Open(ctx) }

// Next implements Iterator.
func (g *GreatDivideIter) Next() (relation.Tuple, bool, error) {
	if !g.opened {
		return nil, false, errNotOpen("GreatDivideIter")
	}
	if g.grace != nil {
		t, ok, err := g.grace.next(g.gctx)
		if ok {
			g.Stats.count(g.Label, 1)
		}
		return t, ok, err
	}
	if g.pos >= len(g.results) {
		return nil, false, nil
	}
	t := g.results[g.pos]
	g.pos++
	g.Stats.count(g.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (g *GreatDivideIter) NextBatch() (*relation.Batch, error) {
	if !g.opened {
		return nil, errNotOpen("GreatDivideIter")
	}
	if g.grace != nil {
		return graceBatch(g.grace, g.gctx, &g.windowBatcher, g.Stats, g.Label)
	}
	b := g.window(g.results, &g.pos)
	if b != nil {
		g.Stats.count(g.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (g *GreatDivideIter) Close() error {
	g.results, g.opened = nil, false
	if g.grace != nil {
		g.grace.close()
		g.grace = nil
	}
	g.release()
	err1 := g.Dividend.Close()
	err2 := g.Divisor.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator. It is derived from the children's
// schemas so parents may call it before Open.
func (g *GreatDivideIter) Schema() schema.Schema {
	if g.out.Len() == 0 {
		split, err := division.GreatSplit(g.Dividend.Schema(), g.Divisor.Schema())
		if err != nil {
			panic(err)
		}
		g.out = split.A.Concat(split.C)
	}
	return g.out
}
