package exec

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func sortInput() *relation.Relation {
	r := relation.New(schema.New("a", "b"))
	for _, row := range [][2]int64{{3, 1}, {1, 2}, {2, 0}, {5, 9}, {4, 4}} {
		r.Insert(relation.Tuple{value.Int(row[0]), value.Int(row[1])})
	}
	return r
}

func drainAll(t *testing.T, it Iterator) []relation.Tuple {
	t.Helper()
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []relation.Tuple
	for {
		tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, tup)
	}
}

func TestSortIterDesc(t *testing.T) {
	it := &SortIter{
		Label: "s",
		Input: &ScanIter{Rel: sortInput()},
		ByPos: []int{0},
		Desc:  []bool{true},
	}
	rows := drainAll(t, it)
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].AsInt() < rows[i][0].AsInt() {
			t.Fatalf("not descending at %d: %v", i, rows)
		}
	}
}

// closeCounter records how often (and when) Close was called.
type closeCounter struct {
	Iterator
	closes int
}

func (c *closeCounter) Close() error {
	c.closes++
	return c.Iterator.Close()
}

func TestTopKIter(t *testing.T) {
	child := &closeCounter{Iterator: &ScanIter{Rel: sortInput()}}
	it := &TopKIter{Label: "k", Input: child, ByPos: []int{0}, K: 2}
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Child closed on exhaustion, during Open — before any emission.
	if child.closes != 1 {
		t.Fatalf("child closed %d times after Open, want 1 (LimitIter-style early release)", child.closes)
	}
	var got []int64
	for {
		tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, tup[0].AsInt())
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("top-2 = %v, want [1 2]", got)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTopKIterZeroNeverOpensChild(t *testing.T) {
	stats := NewStats()
	it := &TopKIter{
		Label: "k",
		Input: &ScanIter{Label: "scan", Rel: sortInput(), Stats: stats},
		ByPos: []int{0},
		K:     0,
		Stats: stats,
	}
	rows := drainAll(t, it)
	if len(rows) != 0 {
		t.Fatalf("k=0 emitted %d rows", len(rows))
	}
	if total := stats.Total(); total != 0 {
		t.Fatalf("k=0 did work: %v", stats.Snapshot())
	}
}

func TestTopKIterOversized(t *testing.T) {
	it := &TopKIter{Label: "k", Input: &ScanIter{Rel: sortInput()}, ByPos: []int{0}, K: 50}
	if got := drainAll(t, it); len(got) != 5 {
		t.Fatalf("oversized k emitted %d rows, want all 5", len(got))
	}
}

// topkFixture builds TopK-over-ParallelDivide, the shape the
// compiler lowers to the order-aware exchange, plus the expected
// global top-k computed sequentially.
func topkFixture(k int64, desc bool) (node *plan.TopK, want []relation.Tuple) {
	r1, r2 := datagen.DividePair{
		Groups: 2000, GroupSize: 4, DivisorSize: 4,
		Domain: 40, HitRate: 0.9, Seed: 9,
	}.Generate()
	quotient := division.Divide(r1, r2)
	par := &plan.ParallelDivide{
		Dividend: plan.NewScan("r1", r1),
		Divisor:  plan.NewScan("r2", r2),
		Workers:  4,
	}
	keys := []plan.SortKey{{Attr: quotient.Schema().Attrs()[0], Desc: desc}}
	node = &plan.TopK{Input: par, Keys: keys, K: k}
	want = plan.SortedTuples(quotient, keys)
	if int64(len(want)) > k {
		want = want[:k]
	}
	return node, want
}

// TestTopKExchangeMatchesSequential is the end-to-end correctness
// check for the per-partition pushdown: the k-way merged stream
// equals the sequential sort-then-truncate, in order, both ASC and
// DESC — and the compiler really produced the fused exchange.
func TestTopKExchangeMatchesSequential(t *testing.T) {
	for _, desc := range []bool{false, true} {
		node, want := topkFixture(17, desc)
		// MemoryLimit -1 pins the unlimited path even when
		// DIVLAWS_FORCE_SPILL is set: this test asserts the fused
		// exchange structure, which a budget wrapper would hide.
		it := CompileWith(node, nil, CompileOptions{MemoryLimit: -1})
		if _, ok := it.(*ParallelDivideIter); !ok {
			t.Fatalf("compiled to %T, want the fused ParallelDivideIter", it)
		}
		got := drainAll(t, it)
		if len(got) != len(want) {
			t.Fatalf("desc=%t: %d rows, want %d", desc, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("desc=%t: row %d = %v, want %v", desc, i, got[i], want[i])
			}
		}
	}
}

// TestTopKExchangeBoundsPartitionEmission pins the O(k)-per-worker
// property: under the pushdown every partition emits at most k
// tuples into the exchange, far below its partition's quotient.
func TestTopKExchangeBoundsPartitionEmission(t *testing.T) {
	const k = 5
	node, _ := topkFixture(k, false)
	stats := NewStats()
	// The O(k) emission bound is a property of the partitioned
	// exchange, so opt out of any ambient forced-spill budget.
	it := CompileWith(node, stats, CompileOptions{MemoryLimit: -1})
	rows := drainAll(t, it)
	if len(rows) != k {
		t.Fatalf("%d rows, want %d", len(rows), k)
	}
	var parts int
	for label, n := range stats.Snapshot() {
		if !strings.Contains(label, "/part") {
			continue
		}
		parts++
		if n > k {
			t.Errorf("partition %s emitted %d tuples, bound is %d", label, n, k)
		}
	}
	if parts < 2 {
		t.Fatalf("fixture only produced %d partitions", parts)
	}
}

// TestTopKExchangeHugeLimit: k comes straight from the user's LIMIT,
// so an absurdly large bound must not panic the exchange goroutine
// or pre-allocate k slots — the merge caps its allocation at what
// the partitions supplied.
func TestTopKExchangeHugeLimit(t *testing.T) {
	node, want := topkFixture(int64(1)<<60, false)
	got := drainAll(t, Compile(node, nil))
	if len(got) != len(want) {
		t.Fatalf("%d rows, want the full quotient (%d)", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTopKGreatDivideExchange covers the Law 13 exchange's fused
// form.
func TestTopKGreatDivideExchange(t *testing.T) {
	g1, g2 := datagen.GreatDividePair{
		Groups: 400, GroupSize: 8,
		DivisorGroups: 16, DivisorGroupSize: 5,
		Domain: 80, HitRate: 0.3, Seed: 1,
	}.Generate()
	quotient := division.GreatDivide(g1, g2)
	keys := []plan.SortKey{
		{Attr: quotient.Schema().Attrs()[0]},
		{Attr: quotient.Schema().Attrs()[1], Desc: true},
	}
	node := &plan.TopK{
		Input: &plan.ParallelGreatDivide{
			Dividend: plan.NewScan("g1", g1),
			Divisor:  plan.NewScan("g2", g2),
			Workers:  4,
		},
		Keys: keys,
		K:    9,
	}
	it := CompileWith(node, nil, CompileOptions{MemoryLimit: -1})
	if _, ok := it.(*ParallelGreatDivideIter); !ok {
		t.Fatalf("compiled to %T, want the fused ParallelGreatDivideIter", it)
	}
	want := plan.SortedTuples(quotient, keys)[:9]
	got := drainAll(t, it)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTopKExchangeGoroutineLeaks drives the teardown paths of the
// order-aware exchange — early Close after k rows, Close mid-stream
// before the merge completes, and cancel mid-stream — checking the
// goroutine count returns to baseline each time (the satellite
// mirror of TestExchangeGoroutineLeaks for the top-k form).
func TestTopKExchangeGoroutineLeaks(t *testing.T) {
	t.Run("CloseAfterKRows", func(t *testing.T) {
		node, _ := topkFixture(3, false)
		baseline := runtime.NumGoroutine()
		it := CompileWith(node, nil, CompileOptions{ExchangeBuffer: 1})
		if err := it.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				t.Fatalf("Next %d = (%t, %v)", i, ok, err)
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("CloseBeforeFirstRow", func(t *testing.T) {
		// The merge is a barrier: Close before any Next must reap the
		// fan-out even while workers are still computing or the
		// coordinator holds the merged result.
		node, _ := topkFixture(3, false)
		baseline := runtime.NumGoroutine()
		it := CompileWith(node, nil, CompileOptions{ExchangeBuffer: 1})
		if err := it.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("CancelMidStream", func(t *testing.T) {
		node, _ := topkFixture(3, false)
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		it := CompileWith(node, nil, CompileOptions{ExchangeBuffer: 1})
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		// Drain to the cancellation error or the end; workers must die
		// either way.
		for {
			_, ok, err := it.Next()
			if err != nil || !ok {
				break
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("TopKIterOverExchange", func(t *testing.T) {
		// The generic TopKIter above an unfused exchange (the shape a
		// narrowing projection forces): its Open drains and closes the
		// exchange, so by the first row every worker is already gone.
		r1, r2 := datagen.DividePair{
			Groups: 2000, GroupSize: 4, DivisorSize: 4,
			Domain: 40, HitRate: 0.9, Seed: 9,
		}.Generate()
		baseline := runtime.NumGoroutine()
		ex := CompileWith(&plan.ParallelDivide{
			Dividend: plan.NewScan("r1", r1),
			Divisor:  plan.NewScan("r2", r2),
			Workers:  4,
		}, nil, CompileOptions{ExchangeBuffer: 2})
		it := &TopKIter{Label: "k", Input: ex, ByPos: []int{0}, K: 3}
		if err := it.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("Next = (%t, %v)", ok, err)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})
}
