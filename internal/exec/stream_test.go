package exec

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"divlaws/internal/datagen"
	"divlaws/internal/division"
	"divlaws/internal/parallel"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/value"
)

// waitGoroutines polls until the goroutine count returns to (or
// below) baseline, failing after a deadline — the leak check for
// every exchange teardown path.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// streamFixture builds a parallel-divide plan with a quotient large
// enough to span several partitions and many exchange buffers.
func streamFixture() (node *plan.ParallelDivide, quotientLen int) {
	r1, r2 := datagen.DividePair{
		Groups: 2000, GroupSize: 4, DivisorSize: 4,
		Domain: 40, HitRate: 0.9, Seed: 9,
	}.Generate()
	want := division.Divide(r1, r2)
	return &plan.ParallelDivide{
		Dividend: plan.NewScan("r1", r1),
		Divisor:  plan.NewScan("r2", r2),
		Workers:  4,
	}, want.Len()
}

// TestExchangeStreamsBeforeSlowestPartition is the instrumented
// first-row proof: every partition but one is stalled on a gate, and
// the consumer still receives rows — so first-row latency does not
// wait on the slowest partition. The gate then opens and the full
// quotient arrives.
func TestExchangeStreamsBeforeSlowestPartition(t *testing.T) {
	node, quotientLen := streamFixture()
	release := make(chan struct{})
	var releaseOnce sync.Once
	openGate := func() { releaseOnce.Do(func() { close(release) }) }
	restore := parallel.SetPartitionGateForTesting(func(part int) {
		if part != 0 {
			<-release
		}
	})
	defer restore()

	stats := NewStats()
	it := CompileWith(node, stats, CompileOptions{ExchangeBuffer: 8})
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Close waits for the workers, and stalled workers wait on the
	// gate: open it before Close runs, whatever path the test takes.
	defer openGate()

	// First row must arrive while partitions 1..n-1 are still stalled
	// before their first tuple of work.
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first Next = (%t, %v) with all but one partition blocked", ok, err)
	}
	for label, n := range stats.Snapshot() {
		if strings.Contains(label, "/part") && !strings.HasSuffix(label, "/part0") && n > 0 {
			t.Errorf("stalled partition emitted %d tuples (%s)", n, label)
		}
	}

	// Release the gate; the stream must complete to the full quotient.
	openGate()
	n := 1
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != quotientLen {
		t.Fatalf("streamed %d rows, want %d", n, quotientLen)
	}
}

// TestLimitCancelsParallelDivide proves the early-exit pushdown: a
// LIMIT 1 above a parallel division tears the exchange down after
// one row, and the tight exchange buffer keeps the workers from
// having computed more than a handful of quotient tuples (observed
// via per-partition Stats staying far below the full quotient).
func TestLimitCancelsParallelDivide(t *testing.T) {
	node, quotientLen := streamFixture()
	if quotientLen < 100 {
		t.Fatalf("fixture quotient too small (%d) to observe early exit", quotientLen)
	}
	stats := NewStats()
	limited := &plan.Limit{Input: node, N: 1}
	it := CompileWith(limited, stats, CompileOptions{ExchangeBuffer: 1})
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("Next = (%t, %v)", ok, err)
	}
	// The limit is reached, so LimitIter has already closed the
	// exchange; the second Next ends the stream.
	if _, ok, _ := it.Next(); ok {
		t.Fatal("LIMIT 1 produced a second row")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	var partTotal int64
	for label, n := range stats.Snapshot() {
		if strings.Contains(label, "/part") {
			partTotal += n
		}
	}
	if partTotal >= int64(quotientLen)/2 {
		t.Fatalf("workers emitted %d of %d quotient tuples despite LIMIT 1", partTotal, quotientLen)
	}
	if got := stats.Get("root/limit"); got != 1 {
		t.Fatalf("limit emitted %d rows, want 1", got)
	}
}

// TestLimitIterEdgeCases covers limits of 0 (child never opened), 1,
// the exact result size, and beyond the result size.
func TestLimitIterEdgeCases(t *testing.T) {
	node, quotientLen := streamFixture()
	for _, tc := range []struct {
		n    int64
		want int
	}{
		{0, 0},
		{1, 1},
		{int64(quotientLen), quotientLen},
		{int64(quotientLen) + 50, quotientLen},
	} {
		stats := NewStats()
		it := Compile(&plan.Limit{Input: node, N: tc.n}, stats)
		got, err := Drain(context.Background(), it)
		if err != nil {
			t.Fatalf("LIMIT %d: %v", tc.n, err)
		}
		if got != int64(tc.want) {
			t.Errorf("LIMIT %d: drained %d rows, want %d", tc.n, got, tc.want)
		}
		if tc.n == 0 {
			if total := stats.Total(); total != 0 {
				t.Errorf("LIMIT 0: child did work (%d tuples): %v", total, stats.Snapshot())
			}
		}
	}
}

// TestExchangeGoroutineLeaks drives every teardown path of the
// streaming exchange — Close mid-stream, context cancellation
// mid-partition, and a worker error surfacing through Next — and
// checks the goroutine count returns to baseline each time.
func TestExchangeGoroutineLeaks(t *testing.T) {
	node, _ := streamFixture()

	t.Run("CloseMidStream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		it := CompileWith(node, nil, CompileOptions{ExchangeBuffer: 2})
		if err := it.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				t.Fatalf("Next %d = (%t, %v)", i, ok, err)
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("CancelMidPartition", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		it := CompileWith(node, nil, CompileOptions{ExchangeBuffer: 2})
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("Next = (%t, %v)", ok, err)
		}
		cancel()
		// Drain to the error or end; either way the workers must die.
		for {
			_, ok, err := it.Next()
			if err != nil || !ok {
				break
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("WorkerError", func(t *testing.T) {
		// A worker that fails mid-stream (after emitting part of its
		// output) must surface its error through next() at end of
		// stream and leave no goroutines behind.
		baseline := runtime.NumGoroutine()
		errBoom := errors.New("boom")
		ex := startExchange(context.Background(), 2, func(ctx context.Context, send func([]relation.Tuple) error) error {
			for i := 0; i < 5; i++ {
				if err := send([]relation.Tuple{{value.Int(int64(i))}}); err != nil {
					return err
				}
			}
			return errBoom
		})
		seen := 0
		for {
			_, ok, err := ex.next()
			if !ok {
				if err != errBoom {
					t.Fatalf("exchange error = %v, want boom", err)
				}
				break
			}
			seen++
		}
		if seen != 5 {
			t.Fatalf("received %d tuples before the worker error, want 5", seen)
		}
		ex.stop()
		waitGoroutines(t, baseline)
	})

	t.Run("WorkerErrorUnconsumed", func(t *testing.T) {
		// The same failing worker, but the consumer walks away without
		// draining: stop() alone must unblock the pending sends and
		// reap the fan-out.
		baseline := runtime.NumGoroutine()
		errBoom := errors.New("boom")
		ex := startExchange(context.Background(), 1, func(ctx context.Context, send func([]relation.Tuple) error) error {
			for i := 0; i < 100; i++ {
				if err := send([]relation.Tuple{{value.Int(int64(i))}}); err != nil {
					return err
				}
			}
			return errBoom
		})
		if _, ok, err := ex.next(); !ok || err != nil {
			t.Fatalf("next = (%t, %v)", ok, err)
		}
		ex.stop()
		waitGoroutines(t, baseline)
	})
}

// closeErrIter wraps an iterator, failing the first Close with a
// fixed error (idempotent afterwards, like real iterators).
type closeErrIter struct {
	Iterator
	err error
}

func (c *closeErrIter) Close() error {
	c.Iterator.Close()
	err := c.err
	c.err = nil
	return err
}

// TestLimitKeepsFinalTupleOnCloseError pins the contract that the
// early child Close at the limit boundary never eats the valid N-th
// tuple: the tuple is delivered, and the teardown error surfaces at
// end of stream instead.
func TestLimitKeepsFinalTupleOnCloseError(t *testing.T) {
	node, _ := streamFixture()
	errBoom := errors.New("boom")
	lim := &LimitIter{
		Label: "l",
		Input: &closeErrIter{Iterator: Compile(node, nil), err: errBoom},
		N:     1,
	}
	if err := lim.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	tup, ok, err := lim.Next()
	if err != nil || !ok || tup == nil {
		t.Fatalf("Next = (%v, %t, %v); the final tuple must survive a close error", tup, ok, err)
	}
	if _, ok, err := lim.Next(); ok || err != errBoom {
		t.Fatalf("second Next = (%t, %v), want end of stream with boom", ok, err)
	}
	// Reported once; the stream then ends cleanly and Close is quiet.
	if _, ok, err := lim.Next(); ok || err != nil {
		t.Fatalf("third Next = (%t, %v)", ok, err)
	}
	if err := lim.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
}
