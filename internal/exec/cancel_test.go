package exec

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
)

// countdownCtx reports context.Canceled after a fixed number of Err
// calls, making mid-drain cancellation deterministic.
type countdownCtx struct {
	remaining atomic.Int64
}

func newCountdownCtx(calls int64) *countdownCtx {
	c := &countdownCtx{}
	c.remaining.Store(calls)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// bigDividePlan builds a division plan whose dividend spans many
// DefaultCheckEvery intervals, so blocking drains must poll repeatedly.
func bigDividePlan(parallel bool) plan.Node {
	n := 8 * DefaultCheckEvery
	rows := make([][]int64, 0, n)
	for i := 0; i < n; i++ {
		// i is unique per row so set-semantics dedup keeps all n.
		rows = append(rows, []int64{int64(i), int64(i % 16)})
	}
	r1 := plan.NewScan("r1", relation.Ints([]string{"a", "b"}, rows))
	r2 := plan.NewScan("r2", relation.Ints([]string{"b"}, [][]int64{{1}, {2}}))
	if parallel {
		return &plan.ParallelDivide{Dividend: r1, Divisor: r2, Workers: 4}
	}
	return &plan.Divide{Dividend: r1, Divisor: r2}
}

func TestBlockingOpenHonorsCancellation(t *testing.T) {
	for _, tc := range []struct {
		name     string
		parallel bool
	}{
		{"HashDivideIter", false},
		{"ParallelDivideIter", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			it := Compile(bigDividePlan(tc.parallel), nil)
			err := it.Open(newCountdownCtx(2))
			it.Close()
			if err != context.Canceled {
				t.Fatalf("Open = %v, want context.Canceled", err)
			}
		})
	}
}

func TestRunPropagatesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Compile(bigDividePlan(true), nil)); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

// BenchmarkCancellationOverhead measures the cost of the cooperative
// cancellation designs the context plumbing chose between: polling
// ctx.Err() on every tuple of a blocking drain versus polling once
// per DefaultCheckEvery tuples (the shipped design). The batched variant is
// indistinguishable from no check at all, which is why the engine
// batches instead of threading a per-Next context check through
// every iterator.
func BenchmarkCancellationOverhead(b *testing.B) {
	n := 64 * 1024
	rows := make([][]int64, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []int64{int64(i), int64(i % 16)})
	}
	rel := relation.Ints([]string{"a", "b"}, rows)
	ctx := context.Background()

	b.Run("none", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := &ScanIter{Label: "scan", Rel: rel}
			if err := it.Open(ctx); err != nil {
				b.Fatal(err)
			}
			for {
				_, ok, err := it.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
			it.Close()
		}
	})
	b.Run("per-tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := &ScanIter{Label: "scan", Rel: rel}
			if err := it.Open(ctx); err != nil {
				b.Fatal(err)
			}
			for {
				_, ok, err := it.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				if err := ctx.Err(); err != nil {
					b.Fatal(err)
				}
			}
			it.Close()
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := &ScanIter{Label: "scan", Rel: rel}
			if err := it.Open(ctx); err != nil {
				b.Fatal(err)
			}
			if err := drain(ctx, it, func(relation.Tuple) {}); err != nil {
				b.Fatal(err)
			}
			it.Close()
		}
	})
}
