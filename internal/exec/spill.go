package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"divlaws/internal/relation"
	"divlaws/internal/spill"
)

// This file holds the out-of-core machinery shared by the blocking
// operators: budget-aware drains, the external-sort merge used by
// SortIter, the recursive grace-hash partitioner used by the division
// and join operators, and the wrappers that tie a compile-owned
// spill.Tracker's lifetime to the root iterator's Close.
//
// Budget model: only the operators whose live state grows with input
// size charge the tracker — SortIter's sort buffer, the two hash
// division states, the hash join's build side, and the parallel
// exchanges' materialized inputs. Since PR 10 that accounting covers
// the hash-table backing arrays too (division states fold TableBytes
// into Bytes; the grace join delta-charges its index table as it
// grows) and the emit slabs' one live chunk (charged on refill,
// released on retire — a slab that the budget refuses degrades to
// exact uncharged allocations, so output equivalence is unaffected).
// Streaming operators (selection, projection, merge division, top-k's
// O(k) heap) and the degenerate product join stay uncharged; the
// budget governs the dominant spillable state, not every transient
// allocation.

// spillFanout is the number of partitions each grace-hash split
// produces. It is a power of two so successive splits can consume
// disjoint slices of the 64-bit tuple hash.
const spillFanout = 8

// spillFanoutBits is log2(spillFanout): the hash bits consumed per
// recursion level.
const spillFanoutBits = 3

// maxSpillDepth bounds grace-hash recursion. A partition that still
// exceeds the budget after this many splits is dominated by a single
// key group (every split lands its tuples in one child), so deeper
// recursion cannot help and the query fails with a budget error.
const maxSpillDepth = 6

// effEvery resolves a ctx-poll interval, 0 meaning DefaultCheckEvery.
func effEvery(n int) int {
	if n <= 0 {
		return DefaultCheckEvery
	}
	return n
}

// spillPart selects the partition for a tuple hash at the given
// recursion depth, consuming a fresh bit slice per level so recursive
// splits genuinely redistribute.
func spillPart(h uint64, depth int) int {
	return int((h >> (spillFanoutBits * depth)) & (spillFanout - 1))
}

// forceSpillEnv reads DIVLAWS_FORCE_SPILL once: "1" selects a 64KB
// budget (small enough to force spilling in every suite), any other
// positive integer is a budget in bytes. It lets CI run the full test
// matrix down the spill paths without touching call sites.
var forceSpillEnv = sync.OnceValue(func() int64 {
	v := os.Getenv("DIVLAWS_FORCE_SPILL")
	if v == "" {
		return 0
	}
	if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 1 {
		return n
	}
	return 64 << 10
})

// drainEveryErr is drainEvery with an erroring sink: the drain stops
// at the sink's first error and returns it. Like drainEvery it
// upgrades batch-capable children to whole-batch pulls and polls ctx
// at least every `every` tuples.
func drainEveryErr(ctx context.Context, child Iterator, every int, sink func(relation.Tuple) error) error {
	if every <= 0 {
		every = DefaultCheckEvery
	}
	if bc, ok := child.(BatchIterator); ok {
		n := 0
		for {
			b, err := bc.NextBatch()
			if err != nil {
				return err
			}
			if b == nil {
				return nil
			}
			for _, t := range b.Tuples() {
				if err := sink(t); err != nil {
					return err
				}
			}
			if n += b.Len(); n >= every {
				n = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
	}
	n := 0
	for {
		t, ok, err := child.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := sink(t); err != nil {
			return err
		}
		if n++; n >= every {
			n = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

// sortSource is one input of the external-merge heap: either a spilled
// run on disk or the final in-memory sorted buffer.
type sortSource struct {
	run  *spill.Run
	rows []relation.Tuple
	pos  int
	head relation.Tuple
}

// advance pulls the source's next tuple.
func (s *sortSource) advance() (relation.Tuple, bool, error) {
	if s.run == nil {
		if s.pos >= len(s.rows) {
			return nil, false, nil
		}
		t := s.rows[s.pos]
		s.pos++
		return t, true, nil
	}
	t, err := s.run.Next()
	if err == io.EOF {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// sortMerge is a k-way merge over sorted sources, a container/heap
// implementation ordered by the sort comparator. KeyedCompare's
// canonical full-tuple tie-break makes the merged order deterministic,
// so a spilled sort emits exactly the sequence the in-memory sort
// would.
type sortMerge struct {
	srcs []*sortSource
	cmp  func(a, b relation.Tuple) int
}

func (m *sortMerge) Len() int           { return len(m.srcs) }
func (m *sortMerge) Less(i, j int) bool { return m.cmp(m.srcs[i].head, m.srcs[j].head) < 0 }
func (m *sortMerge) Swap(i, j int)      { m.srcs[i], m.srcs[j] = m.srcs[j], m.srcs[i] }
func (m *sortMerge) Push(x any)         { m.srcs = append(m.srcs, x.(*sortSource)) }
func (m *sortMerge) Pop() any {
	n := len(m.srcs)
	s := m.srcs[n-1]
	m.srcs = m.srcs[:n-1]
	return s
}

// divSpillState is the slice of the division state API graceDivide
// needs; both DivideState and GreatDivideState satisfy it.
type divSpillState interface {
	AddDivisor(relation.Tuple)
	AddDividend(relation.Tuple)
	Bytes() int64
	Result() *relation.Relation
}

// gracePart is one pending dividend partition run awaiting division.
type gracePart struct {
	run   *spill.Run
	depth int
}

// graceDivide runs hash division under a memory budget with the
// classic grace-hash degradation: the dividend is buffered in memory
// (charged) while it fits; on budget pressure it is hash-partitioned
// on the quotient attributes A into temp-file runs and each partition
// divided independently against the full divisor, recursing on
// partitions whose division state still exceeds the budget.
// Partitioning on A is lossless for both division variants because a
// quotient group's verdict depends only on its own tuples plus the
// whole (replicated) divisor.
//
// The divisor itself must fit in the budget — it is replicated into
// every partition's state, so spilling it cannot reduce the working
// set. A divisor larger than the budget fails with spill.ErrBudget.
//
// The API is push-style (addDivisor/addDividend/finish/next) so the
// parallel operators can fall back to it mid-drain.
type graceDivide struct {
	tr       *spill.Tracker
	newState func() (divSpillState, error)
	aPos     []int
	every    int

	divisor    []relation.Tuple
	divCharged int64

	buf         []relation.Tuple
	bufCharged  int64
	partitioned bool
	parts       []*gracePart

	results   []relation.Tuple
	rPos      int
	stCharged int64
	done      bool
	pollN     int
}

func newGraceDivide(tr *spill.Tracker, aPos []int, every int, newState func() (divSpillState, error)) *graceDivide {
	if every <= 0 {
		every = DefaultCheckEvery
	}
	return &graceDivide{tr: tr, newState: newState, aPos: aPos, every: every}
}

// addDivisor retains one divisor tuple, charged against the budget.
func (g *graceDivide) addDivisor(t relation.Tuple) error {
	fp := t.Footprint()
	if err := g.tr.Charge(fp); err != nil {
		if errors.Is(err, spill.ErrBudget) {
			return fmt.Errorf("divisor does not fit in the memory budget (it is replicated into every grace partition): %w", err)
		}
		return err
	}
	g.divCharged += fp
	g.divisor = append(g.divisor, t)
	return nil
}

// addDividend buffers one dividend tuple, degrading to partition runs
// at the first budget overflow.
func (g *graceDivide) addDividend(ctx context.Context, t relation.Tuple) error {
	if g.partitioned {
		return g.writePart(t)
	}
	fp := t.Footprint()
	err := g.tr.Charge(fp)
	if err == nil {
		g.bufCharged += fp
		g.buf = append(g.buf, t)
		return nil
	}
	if !errors.Is(err, spill.ErrBudget) {
		return err
	}
	if err := g.spillBuffer(); err != nil {
		return err
	}
	return g.writePart(t)
}

// spillBuffer converts the in-memory dividend buffer into depth-0
// partition runs and releases its charge.
func (g *graceDivide) spillBuffer() error {
	parts := make([]*gracePart, spillFanout)
	for i := range parts {
		run, err := g.tr.NewRun()
		if err != nil {
			closeParts(parts)
			return err
		}
		parts[i] = &gracePart{run: run}
	}
	g.parts = parts
	g.partitioned = true
	for _, t := range g.buf {
		if err := g.writePart(t); err != nil {
			return err
		}
	}
	g.tr.Release(g.bufCharged)
	g.bufCharged = 0
	g.buf = nil
	g.tr.AddPartitions(1)
	return nil
}

// writePart routes a dividend tuple to its depth-0 partition run.
// Valid only during the build phase, when g.parts holds exactly the
// fanout depth-0 partitions.
func (g *graceDivide) writePart(t relation.Tuple) error {
	return g.parts[spillPart(t.Hash64Proj(g.aPos), 0)].run.Append(t)
}

// finish seals the input. If nothing spilled it runs the division in
// memory, charging the state's growth — and degrades to partitioning
// after all if the state itself (bitmaps, counters, group tables)
// outgrows the budget even though the raw buffer fit.
func (g *graceDivide) finish(ctx context.Context) error {
	if g.partitioned {
		return nil // partitions are divided lazily in next
	}
	st, charged, err := g.feedState(ctx, func(yield func(relation.Tuple) error) error {
		for _, t := range g.buf {
			if err := yield(t); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		g.results = st.Result().Tuples()
		g.stCharged = charged
		g.tr.Release(g.bufCharged)
		g.bufCharged = 0
		g.buf = nil
		g.done = true
		return nil
	}
	if !errors.Is(err, spill.ErrBudget) {
		return err
	}
	// The division state outgrew the budget even though the raw
	// buffer fit: partition from the (still complete) buffer and
	// divide per partition instead.
	return g.spillBuffer()
}

// feedState builds a fresh division state from the divisor plus the
// dividend tuples produced by src, charging the state's growth. On
// success it returns the state and its outstanding charge; on any
// error the charge has been released.
func (g *graceDivide) feedState(ctx context.Context, src func(yield func(relation.Tuple) error) error) (divSpillState, int64, error) {
	st, err := g.newState()
	if err != nil {
		return nil, 0, err
	}
	for _, t := range g.divisor {
		st.AddDivisor(t)
	}
	last := st.Bytes()
	if err := g.tr.Charge(last); err != nil {
		if errors.Is(err, spill.ErrBudget) {
			return nil, 0, fmt.Errorf("division state for the divisor alone exceeds the memory budget: %w", err)
		}
		return nil, 0, err
	}
	charged := last
	n := 0
	err = src(func(t relation.Tuple) error {
		st.AddDividend(t)
		if now := st.Bytes(); now > last {
			if err := g.tr.Charge(now - last); err != nil {
				return err
			}
			charged += now - last
			last = now
		}
		if n++; n >= g.every {
			n = 0
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		g.tr.Release(charged)
		return nil, 0, err
	}
	return st, charged, nil
}

// next returns the next quotient tuple, dividing pending partitions
// lazily — at most one partition's division state is live at a time.
func (g *graceDivide) next(ctx context.Context) (relation.Tuple, bool, error) {
	for {
		if g.rPos < len(g.results) {
			t := g.results[g.rPos]
			g.rPos++
			return t, true, nil
		}
		// The served partition's results are done: drop its state
		// charge before loading the next one.
		g.tr.Release(g.stCharged)
		g.stCharged = 0
		g.results, g.rPos = nil, 0
		if g.done || len(g.parts) == 0 {
			g.done = true
			return nil, false, nil
		}
		p := g.parts[0]
		g.parts = g.parts[1:]
		if err := g.processPart(ctx, p); err != nil {
			return nil, false, err
		}
	}
}

// processPart divides one partition run against the retained divisor.
// If its state exceeds the budget the run is split one level deeper.
func (g *graceDivide) processPart(ctx context.Context, p *gracePart) error {
	if p.run.Len() == 0 {
		return p.run.Close()
	}
	if err := p.run.Rewind(); err != nil {
		p.run.Close()
		return err
	}
	st, charged, err := g.feedState(ctx, func(yield func(relation.Tuple) error) error {
		for {
			t, err := p.run.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := yield(t); err != nil {
				return err
			}
		}
	})
	if err != nil {
		if errors.Is(err, spill.ErrBudget) {
			return g.splitPart(ctx, p)
		}
		p.run.Close()
		return err
	}
	g.results = st.Result().Tuples()
	g.rPos = 0
	g.stCharged = charged
	return p.run.Close()
}

// splitPart re-partitions a run one recursion level deeper and
// prepends the children to the worklist (depth-first keeps the
// pending-run count small).
func (g *graceDivide) splitPart(ctx context.Context, p *gracePart) error {
	children, err := splitRun(ctx, g.tr, p.run, p.depth, g.every, func(t relation.Tuple) uint64 {
		return t.Hash64Proj(g.aPos)
	})
	p.run.Close()
	if err != nil {
		return err
	}
	g.parts = append(children, g.parts...)
	g.tr.AddPartitions(1)
	return nil
}

// splitRun redistributes a partition run into spillFanout children at
// depth+1 using a fresh slice of the given hash. It fails when the
// recursion depth is exhausted — at that point the partition is
// dominated by a single key group and splitting cannot shrink it.
func splitRun(ctx context.Context, tr *spill.Tracker, run *spill.Run, depth, every int, hash func(relation.Tuple) uint64) ([]*gracePart, error) {
	next := depth + 1
	if next > maxSpillDepth {
		return nil, fmt.Errorf("exec: partition still exceeds the memory budget after %d recursive splits (one key group is larger than the budget): %w", maxSpillDepth, spill.ErrBudget)
	}
	children := make([]*gracePart, spillFanout)
	for i := range children {
		r, err := tr.NewRun()
		if err != nil {
			closeParts(children)
			return nil, err
		}
		children[i] = &gracePart{run: r, depth: next}
	}
	if err := run.Rewind(); err != nil {
		closeParts(children)
		return nil, err
	}
	n := 0
	for {
		t, err := run.Next()
		if err == io.EOF {
			return children, nil
		}
		if err != nil {
			closeParts(children)
			return nil, err
		}
		if err := children[spillPart(hash(t), next)].run.Append(t); err != nil {
			closeParts(children)
			return nil, err
		}
		if n++; n >= every {
			n = 0
			if err := ctx.Err(); err != nil {
				closeParts(children)
				return nil, err
			}
		}
	}
}

func closeParts(parts []*gracePart) {
	for _, p := range parts {
		if p != nil {
			p.run.Close()
		}
	}
}

// close releases every outstanding charge and temp run. Idempotent.
func (g *graceDivide) close() {
	g.tr.Release(g.divCharged + g.bufCharged + g.stCharged)
	g.divCharged, g.bufCharged, g.stCharged = 0, 0, 0
	g.divisor, g.buf, g.results = nil, nil, nil
	closeParts(g.parts)
	g.parts = nil
	g.done = true
}

// drained reports whether every partition has been divided and served.
func (g *graceDivide) drained() bool {
	return g.done && g.rPos >= len(g.results)
}

// graceBatch fills a pooled output batch from a graceDivide, the
// shared NextBatch body of the budgeted division operators.
func graceBatch(g *graceDivide, ctx context.Context, wb *windowBatcher, stats *Stats, label string) (*relation.Batch, error) {
	out := wb.outBatch()
	bound := wb.effectiveCap()
	for out.Len() < bound {
		t, ok, err := g.next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out.Append(t)
	}
	if out.Len() == 0 {
		return nil, nil
	}
	stats.count(label, int64(out.Len()))
	return out, nil
}

// topKFromGrace drains a grace divider and keeps the k smallest
// quotient tuples under the keyed order — the sequential fallback of a
// budget-degraded top-k exchange, O(k) live beyond the divider itself.
func topKFromGrace(ctx context.Context, g *graceDivide, pos []int, desc []bool, k int64) ([]relation.Tuple, error) {
	h := relation.NewTopKHeap(int(k), relation.KeyedCompare(pos, desc))
	for {
		t, ok, err := g.next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return h.Sorted(), nil
		}
		h.Add(t)
	}
}

// graceJoinPart pairs a build-side and probe-side partition run.
type graceJoinPart struct {
	build, probe *spill.Run
	depth        int
}

// graceJoin is HashJoinIter's budgeted engine: the build side is
// charged while the index fits; on overflow both sides are
// hash-partitioned on the join key into temp runs and each partition
// pair joined independently, recursing on build partitions whose
// index still exceeds the budget. Build-partition runs store the
// reordered tuple key ◦ extra so a partition's index can be rebuilt
// without the original schema's positions.
type graceJoin struct {
	tr      *spill.Tracker
	leftPos []int // probe-side key positions (original left schema)
	nk      int   // key arity
	every   int
	charged int64
	// tableBytes is the index hash-table footprint already folded into
	// charged; chargeTableDelta tops it up as the table grows.
	tableBytes int64
	// slab carves build and emit tuples; its live chunk is charged
	// against tr.
	slab relation.Slab

	// in-memory build (pre-overflow)
	keyIx relation.TupleIndex
	rows  [][]relation.Tuple

	partitioned bool
	parts       []*graceJoinPart

	// streaming probe state
	probe   *spill.Run
	cur     relation.Tuple
	matches []relation.Tuple
	mIdx    int
	pollN   int
}

// graceJoinOverhead approximates the per-build-tuple index bookkeeping
// beyond the tuple itself: the keys-slice slot and the rows-slice
// entry. The hash-table backing arrays are charged exactly through
// chargeTableDelta, so they are deliberately not estimated here.
const graceJoinOverhead = 24

// addBuild charges and indexes one build-side (right) tuple,
// degrading to partition runs at the first overflow. keyPos/extraPos
// are the key and payload positions in the right schema.
func (g *graceJoin) addBuild(t relation.Tuple, keyPos, extraPos []int) error {
	if g.partitioned {
		return g.writeBuild(g.stored(t, keyPos, extraPos))
	}
	fp := t.Footprint() + graceJoinOverhead
	err := g.tr.Charge(fp)
	if err == nil {
		g.charged += fp
		g.index(g.stored(t, keyPos, extraPos))
		if terr := g.chargeTableDelta(); terr != nil {
			if !errors.Is(terr, spill.ErrBudget) {
				return terr
			}
			// The tuple is already indexed, and flushBuild writes every
			// indexed tuple to the partition runs — nothing is lost.
			return g.flushBuild()
		}
		return nil
	}
	if !errors.Is(err, spill.ErrBudget) {
		return err
	}
	if err := g.flushBuild(); err != nil {
		return err
	}
	return g.writeBuild(g.stored(t, keyPos, extraPos))
}

// stored builds the reordered tuple key ◦ extra in one slab
// allocation (Project + ConcatProj fused).
func (g *graceJoin) stored(t relation.Tuple, keyPos, extraPos []int) relation.Tuple {
	out := g.slab.Alloc(len(keyPos) + len(extraPos))
	for i, p := range keyPos {
		out[i] = t[p]
	}
	for i, p := range extraPos {
		out[len(keyPos)+i] = t[p]
	}
	return out
}

// chargeTableDelta charges the growth of the index's hash-table
// backing arrays since the last check. The delta joins g.charged, so
// every site that releases the build charge drops it automatically
// (tableBytes is re-zeroed there; a Reset table keeps its capacity
// and is re-charged in full on reuse).
func (g *graceJoin) chargeTableDelta() error {
	d := g.keyIx.TableBytes() - g.tableBytes
	if d <= 0 {
		return nil
	}
	if err := g.tr.Charge(d); err != nil {
		return err
	}
	g.charged += d
	g.tableBytes += d
	return nil
}

// index inserts one reordered build tuple (key ◦ extra) into the live
// in-memory index.
func (g *graceJoin) index(stored relation.Tuple) {
	keyPos := identityPos(g.nk)
	id, created := g.keyIx.IDProj(stored, keyPos)
	if created {
		g.rows = append(g.rows, nil)
	}
	g.rows[id] = append(g.rows[id], stored[g.nk:])
}

// identityPos returns [0, 1, ..., n-1].
func identityPos(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	return pos
}

// flushBuild spills the in-memory index into depth-0 partition pairs
// and releases its charge.
func (g *graceJoin) flushBuild() error {
	parts := make([]*graceJoinPart, spillFanout)
	for i := range parts {
		b, err := g.tr.NewRun()
		if err != nil {
			g.closePartRuns(parts)
			return err
		}
		p, err := g.tr.NewRun()
		if err != nil {
			b.Close()
			g.closePartRuns(parts)
			return err
		}
		parts[i] = &graceJoinPart{build: b, probe: p}
	}
	g.parts = parts
	g.partitioned = true
	for id, key := range g.keyIx.Keys() {
		for _, extra := range g.rows[id] {
			if err := g.writeBuild(g.slab.Concat(key, extra)); err != nil {
				return err
			}
		}
	}
	g.slab.Close()
	g.tr.Release(g.charged)
	g.charged, g.tableBytes = 0, 0
	g.keyIx = relation.TupleIndex{}
	g.rows = nil
	g.tr.AddPartitions(1)
	return nil
}

// writeBuild routes a reordered build tuple to its depth-0 partition.
// The key occupies positions 0..nk-1, so its projection hash equals
// the probe side's Hash64Proj(leftPos).
func (g *graceJoin) writeBuild(stored relation.Tuple) error {
	return g.parts[spillPart(stored.Hash64Proj(identityPos(g.nk)), 0)].build.Append(stored)
}

// addProbe routes a probe-side (left) tuple to its depth-0 partition.
// Only called once the build side has partitioned.
func (g *graceJoin) addProbe(t relation.Tuple) error {
	return g.parts[spillPart(t.Hash64Proj(g.leftPos), 0)].probe.Append(t)
}

// next returns the next joined tuple: probe-side cursor over the
// current partition, loading and recursing partition pairs lazily.
func (g *graceJoin) next(ctx context.Context) (relation.Tuple, bool, error) {
	for {
		if g.mIdx < len(g.matches) {
			t := g.slab.Concat(g.cur, g.matches[g.mIdx])
			g.mIdx++
			return t, true, nil
		}
		g.matches = nil
		if g.probe != nil {
			if g.pollN++; g.pollN >= g.every {
				g.pollN = 0
				if err := ctx.Err(); err != nil {
					return nil, false, err
				}
			}
			t, err := g.probe.Next()
			if err == io.EOF {
				g.probe.Close()
				g.probe = nil
				g.slab.Close()
				g.tr.Release(g.charged)
				g.charged, g.tableBytes = 0, 0
				g.keyIx = relation.TupleIndex{}
				g.rows = nil
				continue
			}
			if err != nil {
				return nil, false, err
			}
			if id := g.keyIx.LookupProj(t, g.leftPos); id >= 0 {
				g.cur = t
				g.matches = g.rows[id]
				g.mIdx = 0
			}
			continue
		}
		if len(g.parts) == 0 {
			g.slab.Close()
			return nil, false, nil
		}
		p := g.parts[0]
		g.parts = g.parts[1:]
		if err := g.openPart(ctx, p); err != nil {
			return nil, false, err
		}
	}
}

// openPart rebuilds the index from one build run and arms the probe
// run, splitting the pair one level deeper if the index exceeds the
// budget.
func (g *graceJoin) openPart(ctx context.Context, p *graceJoinPart) error {
	if p.build.Len() == 0 || p.probe.Len() == 0 {
		p.build.Close()
		p.probe.Close()
		return nil
	}
	if err := p.build.Rewind(); err != nil {
		p.build.Close()
		p.probe.Close()
		return err
	}
	n := 0
	for {
		stored, err := p.build.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			g.dropPart(p)
			return err
		}
		fp := stored.Footprint() + graceJoinOverhead
		if err := g.tr.Charge(fp); err != nil {
			g.slab.Close()
			g.tr.Release(g.charged)
			g.charged, g.tableBytes = 0, 0
			g.keyIx = relation.TupleIndex{}
			g.rows = nil
			if errors.Is(err, spill.ErrBudget) {
				return g.splitPair(ctx, p)
			}
			g.dropPart(p)
			return err
		}
		g.charged += fp
		g.index(stored)
		if err := g.chargeTableDelta(); err != nil {
			g.slab.Close()
			g.tr.Release(g.charged)
			g.charged, g.tableBytes = 0, 0
			g.keyIx = relation.TupleIndex{}
			g.rows = nil
			if errors.Is(err, spill.ErrBudget) {
				return g.splitPair(ctx, p)
			}
			g.dropPart(p)
			return err
		}
		if n++; n >= g.every {
			n = 0
			if err := ctx.Err(); err != nil {
				g.dropPart(p)
				return err
			}
		}
	}
	p.build.Close()
	if err := p.probe.Rewind(); err != nil {
		p.probe.Close()
		return err
	}
	g.probe = p.probe
	return nil
}

// splitPair re-partitions both runs of a pair one level deeper and
// prepends the child pairs to the worklist.
func (g *graceJoin) splitPair(ctx context.Context, p *graceJoinPart) error {
	keyPos := identityPos(g.nk)
	builds, err := splitRun(ctx, g.tr, p.build, p.depth, g.every, func(t relation.Tuple) uint64 {
		return t.Hash64Proj(keyPos)
	})
	p.build.Close()
	if err != nil {
		p.probe.Close()
		return err
	}
	probes, err := splitRun(ctx, g.tr, p.probe, p.depth, g.every, func(t relation.Tuple) uint64 {
		return t.Hash64Proj(g.leftPos)
	})
	p.probe.Close()
	if err != nil {
		closeParts(builds)
		return err
	}
	children := make([]*graceJoinPart, spillFanout)
	for i := range children {
		children[i] = &graceJoinPart{build: builds[i].run, probe: probes[i].run, depth: p.depth + 1}
	}
	g.parts = append(children, g.parts...)
	g.tr.AddPartitions(1)
	return nil
}

func (g *graceJoin) dropPart(p *graceJoinPart) {
	g.slab.Close()
	g.tr.Release(g.charged)
	g.charged, g.tableBytes = 0, 0
	g.keyIx = relation.TupleIndex{}
	g.rows = nil
	p.build.Close()
	p.probe.Close()
}

func (g *graceJoin) closePartRuns(parts []*graceJoinPart) {
	for _, p := range parts {
		if p != nil {
			p.build.Close()
			p.probe.Close()
		}
	}
}

// close releases the outstanding charge and every temp run.
func (g *graceJoin) close() {
	g.slab.Close()
	g.tr.Release(g.charged)
	g.charged, g.tableBytes = 0, 0
	g.keyIx = relation.TupleIndex{}
	g.rows, g.matches = nil, nil
	if g.probe != nil {
		g.probe.Close()
		g.probe = nil
	}
	g.closePartRuns(g.parts)
	g.parts = nil
}

// trackerCloser ties a compile-owned spill.Tracker's lifetime to the
// root iterator: Close tears down the plan first, then removes the
// spill directory. It deliberately hides the batch surface — use
// dualTrackerCloser for batch-capable roots.
type trackerCloser struct {
	Iterator
	tr *spill.Tracker
}

func (c trackerCloser) Close() error {
	err := c.Iterator.Close()
	if cerr := c.tr.Close(); err == nil {
		err = cerr
	}
	return err
}

// dualTrackerCloser is trackerCloser for dual-mode roots, preserving
// the BatchIterator fast path alongside the tuple surface.
type dualTrackerCloser struct {
	Iterator
	batch BatchIterator
	tr    *spill.Tracker
}

func (c dualTrackerCloser) OpenBatch(ctx context.Context) error { return c.batch.OpenBatch(ctx) }

func (c dualTrackerCloser) NextBatch() (*relation.Batch, error) { return c.batch.NextBatch() }

func (c dualTrackerCloser) Close() error {
	err := c.Iterator.Close()
	if cerr := c.tr.Close(); err == nil {
		err = cerr
	}
	return err
}

// ownTracker wraps the root iterator so closing it also closes the
// tracker, preserving batch capability when the root has it.
func ownTracker(it Iterator, tr *spill.Tracker) Iterator {
	if bc, ok := it.(BatchIterator); ok {
		return dualTrackerCloser{Iterator: it, batch: bc, tr: tr}
	}
	return trackerCloser{Iterator: it, tr: tr}
}
