package exec

import (
	"context"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func randRelation(rng *rand.Rand, attrs []string, n, dom int) *relation.Relation {
	r := relation.New(schema.New(attrs...))
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, len(attrs))
		for j := range attrs {
			t[j] = value.Int(int64(rng.Intn(dom)))
		}
		r.Insert(t)
	}
	return r
}

// randWideRelation is randRelation over decorated identifier strings
// of varying length, so suites built on it drive the word-at-a-time
// string hash kernel — chunked bodies and every tail length — rather
// than the single-mix integer path.
func randWideRelation(rng *rand.Rand, attrs []string, n, dom int) *relation.Relation {
	r := relation.New(schema.New(attrs...))
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, len(attrs))
		for j := range attrs {
			t[j] = value.String("id-" + strings.Repeat("x", rng.Intn(11)) + "-" + strconv.Itoa(rng.Intn(dom)))
		}
		r.Insert(t)
	}
	return r
}

// mustRun compiles and runs the plan, failing the test on error.
func mustRun(t *testing.T, n plan.Node, stats *Stats) *relation.Relation {
	t.Helper()
	out, err := Run(context.Background(), Compile(n, stats))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out
}

func TestCompileMatchesReferenceInterpreter(t *testing.T) {
	// Fuzz: every compiled plan must produce exactly what plan.Eval
	// produces.
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 80; trial++ {
		r1 := plan.NewScan("r1", randRelation(rng, []string{"a", "b"}, 5+rng.Intn(40), 6))
		r2 := plan.NewScan("r2", randRelation(rng, []string{"b"}, 1+rng.Intn(4), 6))
		r2g := plan.NewScan("r2g", randRelation(rng, []string{"b", "c"}, 1+rng.Intn(8), 6))
		r3 := plan.NewScan("r3", randRelation(rng, []string{"a"}, rng.Intn(4), 6))
		p := pred.Compare(pred.Attr("a"), pred.Gt, pred.ConstInt(int64(rng.Intn(6))))

		plans := []plan.Node{
			r1,
			&plan.Select{Input: r1, Pred: p},
			&plan.Project{Input: r1, Attrs: []string{"a"}},
			plan.Union(r1, r1),
			plan.Intersect(r1, &plan.Select{Input: r1, Pred: p}),
			plan.Diff(r1, &plan.Select{Input: r1, Pred: p}),
			&plan.Product{Left: &plan.Project{Input: r1, Attrs: []string{"a"}}, Right: r2},
			&plan.Join{Left: r1, Right: r2g},
			&plan.SemiJoin{Left: r1, Right: r2},
			&plan.AntiSemiJoin{Left: r1, Right: r2},
			&plan.Divide{Dividend: r1, Divisor: r2},
			&plan.Divide{Dividend: r1, Divisor: r2, Algo: division.AlgoMergeSort},
			&plan.GreatDivide{Dividend: r1, Divisor: r2g},
			&plan.SemiJoin{Left: &plan.Divide{Dividend: r1, Divisor: r2}, Right: r3},
			&plan.Group{Input: r1, By: []string{"a"}, Aggs: []algebra.AggSpec{
				{Func: algebra.Count, As: "c"}, {Func: algebra.Sum, Attr: "b", As: "s"},
			}},
			&plan.Rename{Input: r2, From: "b", To: "x"},
			&plan.ThetaJoin{
				Left:  &plan.Project{Input: r1, Attrs: []string{"a"}},
				Right: &plan.Rename{Input: r2, From: "b", To: "x"},
				Pred:  pred.Compare(pred.Attr("a"), pred.Lt, pred.Attr("x")),
			},
		}
		for _, pl := range plans {
			want := plan.Eval(pl)
			got := mustRun(t, pl, nil)
			if !got.Equal(want) {
				t.Fatalf("trial %d: compiled plan diverges for\n%s\ngot:\n%v\nwant:\n%v",
					trial, plan.Format(pl), got, want)
			}
		}
	}
}

func TestStatsCountsQuadraticIntermediate(t *testing.T) {
	// The simulated division's product must emit |πA(r1)|·|r2|
	// tuples, while the first-class operator touches only
	// |r1| + |r2| input tuples — the measurable version of [25].
	rng := rand.New(rand.NewSource(21))
	r1 := randRelation(rng, []string{"a", "b"}, 300, 60)
	r2 := randRelation(rng, []string{"b"}, 8, 60)

	simulated := SimulatedDividePlan("r1", r1, "r2", r2)
	simStats := NewStats()
	simResult := mustRun(t, simulated, simStats)

	direct := &plan.Divide{Dividend: plan.NewScan("r1", r1), Divisor: plan.NewScan("r2", r2)}
	dirStats := NewStats()
	dirResult := mustRun(t, direct, dirStats)

	if !simResult.Equal(dirResult.Reorder(simResult.Schema().Attrs())) && !simResult.Equal(dirResult) {
		t.Fatalf("simulation and operator disagree:\n%v\nvs\n%v", simResult, dirResult)
	}

	var productEmitted int64
	for label, n := range simStats.Snapshot() {
		if strings.Contains(label, "/product") {
			productEmitted += n
		}
	}
	piA := algebra.Project(r1, "a")
	wantProduct := int64(piA.Len() * r2.Len())
	if productEmitted != wantProduct {
		t.Errorf("product emitted %d tuples, want %d", productEmitted, wantProduct)
	}
	if simStats.Total() <= dirStats.Total() {
		t.Errorf("simulation should move more tuples: sim=%d direct=%d",
			simStats.Total(), dirStats.Total())
	}
}

func TestMergeGroupDividePipelines(t *testing.T) {
	// The merge-group operator must emit quotients in sorted group
	// order and agree with the reference on edge cases.
	cases := []struct {
		name     string
		dividend [][]int64
		divisor  [][]int64
	}{
		{"figure1", [][]int64{{1, 1}, {1, 4}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 1}, {3, 3}, {3, 4}}, [][]int64{{1}, {3}}},
		{"empty dividend", nil, [][]int64{{1}}},
		{"empty divisor", [][]int64{{1, 1}, {2, 5}}, nil},
		{"last group qualifies", [][]int64{{1, 2}, {5, 1}}, [][]int64{{1}}},
		{"no group qualifies", [][]int64{{1, 2}, {5, 2}}, [][]int64{{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r1 := relation.Ints([]string{"a", "b"}, tc.dividend)
			r2 := relation.Ints([]string{"b"}, tc.divisor)
			pl := &plan.Divide{
				Dividend: plan.NewScan("r1", r1),
				Divisor:  plan.NewScan("r2", r2),
				Algo:     division.AlgoMergeSort,
			}
			got := mustRun(t, pl, nil)
			want := division.Divide(r1, r2)
			if !got.Equal(want) {
				t.Errorf("merge-group divide = %v, want %v", got, want)
			}
		})
	}
}

func TestIteratorProtocolErrors(t *testing.T) {
	r := relation.Ints([]string{"a"}, [][]int64{{1}})
	iters := []Iterator{
		&ScanIter{Rel: r},
		&ProjectIter{Input: &ScanIter{Rel: r}, Attrs: []string{"a"}},
		&UnionIter{Left: &ScanIter{Rel: r}, Right: &ScanIter{Rel: r}},
		&HashSetOpIter{Left: &ScanIter{Rel: r}, Right: &ScanIter{Rel: r}},
	}
	for _, it := range iters {
		if _, _, err := it.Next(); err == nil {
			t.Errorf("%T.Next before Open should error", it)
		}
	}
}

func TestUnionIterAlignsColumns(t *testing.T) {
	l := relation.Ints([]string{"a", "b"}, [][]int64{{1, 2}})
	r := relation.Ints([]string{"b", "a"}, [][]int64{{4, 3}})
	u := &UnionIter{
		Left:  &ScanIter{Rel: l},
		Right: &ScanIter{Rel: r},
	}
	out, err := Run(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.Ints([]string{"a", "b"}, [][]int64{{1, 2}, {3, 4}})
	if !out.Equal(want) {
		t.Errorf("aligned union = %v", out)
	}
}

func TestUnionIterIncompatibleSchemas(t *testing.T) {
	u := &UnionIter{
		Left:  &ScanIter{Rel: relation.Ints([]string{"a"}, nil)},
		Right: &ScanIter{Rel: relation.Ints([]string{"z"}, nil)},
	}
	if err := u.Open(context.Background()); err == nil {
		t.Error("expected schema error")
	}
}

func TestHashJoinDegeneratesToProduct(t *testing.T) {
	l := relation.Ints([]string{"a"}, [][]int64{{1}, {2}})
	r := relation.Ints([]string{"b"}, [][]int64{{10}})
	j := &HashJoinIter{Left: &ScanIter{Rel: l}, Right: &ScanIter{Rel: r}}
	out, err := Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("degenerate join Len = %d", out.Len())
	}
}

func TestDrain(t *testing.T) {
	r := relation.Ints([]string{"a"}, [][]int64{{1}, {2}, {3}})
	n, err := Drain(context.Background(), &ScanIter{Rel: r})
	if err != nil || n != 3 {
		t.Errorf("Drain = %d, %v", n, err)
	}
}

func TestCompileUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Compile(unknownNode{}, nil)
}

type unknownNode struct{}

func (unknownNode) Schema() schema.Schema                 { return schema.New("x") }
func (unknownNode) Children() []plan.Node                 { return nil }
func (unknownNode) WithChildren(ch []plan.Node) plan.Node { return unknownNode{} }
func (unknownNode) String() string                        { return "Unknown" }

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.count("x", 1) // must not panic
	r := relation.Ints([]string{"a"}, [][]int64{{1}})
	if _, err := Run(context.Background(), &ScanIter{Rel: r, Stats: nil}); err != nil {
		t.Fatal(err)
	}
}

func TestSortIterByPos(t *testing.T) {
	r := relation.Ints([]string{"a", "b"}, [][]int64{{2, 1}, {1, 9}, {1, 3}})
	s := &SortIter{Input: &ScanIter{Rel: r}, ByPos: []int{0}}
	if err := s.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	var got []relation.Tuple
	for {
		tp, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, tp)
	}
	if len(got) != 3 || got[0][0].AsInt() != 1 || got[2][0].AsInt() != 2 {
		t.Errorf("sorted order wrong: %v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
