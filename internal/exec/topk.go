package exec

import (
	"context"

	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// resolveSortKeys lowers a plan node's resolved sort keys to column
// positions and per-key directions against the input schema, the
// physical form the keyed tuple comparator takes.
func resolveSortKeys(sch schema.Schema, keys []plan.SortKey) (pos []int, desc []bool) {
	pos = make([]int, len(keys))
	desc = make([]bool, len(keys))
	for i, k := range keys {
		pos[i] = sch.MustIndex(k.Attr)
		desc[i] = k.Desc
	}
	return pos, desc
}

// TopKIter emits the K smallest tuples of its input in key order,
// holding O(K) tuples live: Open drains the child into a bounded
// max-heap (relation.TopKHeap) and — like LimitIter at the limit
// boundary — closes the child the moment it is exhausted, so
// blocking and streaming subtrees release their resources before the
// first result tuple is served. K <= 0 never opens the child at all.
// It is dual-mode: the top-k run is emitted per tuple or per
// zero-copy batch over one shared cursor.
type TopKIter struct {
	Label string
	Input Iterator
	// ByPos and Desc are the sort-key positions and directions, as in
	// SortIter.
	ByPos []int
	Desc  []bool
	K     int64
	Stats *Stats
	// Every is the cooperative ctx-poll interval of the input drain, in
	// tuples; 0 means DefaultCheckEvery.
	Every int
	windowBatcher

	rows   []relation.Tuple
	pos    int
	opened bool
}

// Open implements Iterator.
func (t *TopKIter) Open(ctx context.Context) error {
	t.rows, t.pos = nil, 0
	t.opened = true
	if t.K <= 0 {
		return nil
	}
	if err := t.Input.Open(ctx); err != nil {
		return err
	}
	heap := relation.NewTopKHeap(int(t.K), relation.KeyedCompare(t.ByPos, t.Desc))
	if err := drainEvery(ctx, t.Input, t.Every, func(tup relation.Tuple) { heap.Add(tup) }); err != nil {
		return err
	}
	// Child exhausted: release the subtree now, before any tuple is
	// emitted. Close is idempotent, so TopKIter.Close stays harmless.
	if err := t.Input.Close(); err != nil {
		return err
	}
	t.rows = heap.Sorted()
	return nil
}

// OpenBatch implements BatchIterator.
func (t *TopKIter) OpenBatch(ctx context.Context) error { return t.Open(ctx) }

// Next implements Iterator.
func (t *TopKIter) Next() (relation.Tuple, bool, error) {
	if !t.opened {
		return nil, false, errNotOpen("TopKIter")
	}
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	tup := t.rows[t.pos]
	t.pos++
	t.Stats.count(t.Label, 1)
	return tup, true, nil
}

// NextBatch implements BatchIterator.
func (t *TopKIter) NextBatch() (*relation.Batch, error) {
	if !t.opened {
		return nil, errNotOpen("TopKIter")
	}
	b := t.window(t.rows, &t.pos)
	if b != nil {
		t.Stats.count(t.Label, int64(b.Len()))
	}
	return b, nil
}

// Close implements Iterator.
func (t *TopKIter) Close() error {
	t.rows, t.opened = nil, false
	t.release()
	return t.Input.Close()
}

// Schema implements Iterator.
func (t *TopKIter) Schema() schema.Schema { return t.Input.Schema() }

// mergeRuns k-way merges per-partition runs — each already in
// ascending cmp order — into the first k tuples of the combined
// order. Runs hold at most k tuples each, so the merge touches
// O(k·runs) tuples; with the handful of runs a worker fan-out
// produces, a linear scan over the run heads is the whole merge.
func mergeRuns(runs [][]relation.Tuple, cmp func(a, b relation.Tuple) int, k int64) []relation.Tuple {
	heads := make([]int, len(runs))
	// k comes straight from the user's LIMIT; cap the allocation by
	// what the runs can actually supply.
	capacity := k
	var avail int64
	for _, run := range runs {
		avail += int64(len(run))
	}
	if avail < capacity {
		capacity = avail
	}
	out := make([]relation.Tuple, 0, capacity)
	for int64(len(out)) < k {
		best := -1
		for i, run := range runs {
			if heads[i] >= len(run) {
				continue
			}
			if best < 0 || cmp(run[heads[i]], runs[best][heads[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}
