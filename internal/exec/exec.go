// Package exec is a Volcano-style physical execution engine: every
// operator is an Iterator with Open/Next/Close, tuples flow through
// pipelines without materializing intermediate relations unless an
// operator is inherently blocking.
//
// The engine exists to make the paper's execution-level arguments
// measurable: hash-division consumes its dividend in one pass
// (Graefe), merge-group division preserves dividend grouping and
// pipelines quotient tuples out per group (the Law 1 discussion in
// §5.1.1), and the basic-algebra simulation of division materializes
// a quadratic intermediate (Leinders & Van den Bussche [25]), which
// the Stats counters expose.
package exec

import (
	"fmt"
	"sync"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// Iterator is the physical operator interface.
type Iterator interface {
	// Open prepares the operator (allocating hash tables, opening
	// children). It must be called before Next.
	Open() error
	// Next produces the next tuple. ok is false at end of stream.
	Next() (t relation.Tuple, ok bool, err error)
	// Close releases resources. Close is idempotent.
	Close() error
	// Schema describes the produced tuples.
	Schema() schema.Schema
}

// Stats counts tuples emitted per operator label, making
// intermediate-result sizes observable (the quadratic-intermediate
// measurement of [25] relies on this). It is safe for concurrent use
// so parallel operators can share one collector across goroutines.
type Stats struct {
	mu sync.Mutex
	// Emitted maps operator labels to tuple counts. Read it only
	// after execution finishes, or via Get/Snapshot while operators
	// may still be running.
	Emitted map[string]int64
}

// NewStats returns an empty Stats collector.
func NewStats() *Stats { return &Stats{Emitted: make(map[string]int64)} }

// count records n tuples emitted by the labelled operator.
func (s *Stats) count(label string, n int64) {
	if s != nil {
		s.mu.Lock()
		s.Emitted[label] += n
		s.mu.Unlock()
	}
}

// Get returns the tuple count recorded for one operator label.
func (s *Stats) Get(label string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Emitted[label]
}

// Snapshot returns a copy of the per-operator counts.
func (s *Stats) Snapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.Emitted))
	for k, v := range s.Emitted {
		out[k] = v
	}
	return out
}

// Total returns the total number of tuples emitted by all operators,
// the engine's measure of intermediate-result volume.
func (s *Stats) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, n := range s.Emitted {
		t += n
	}
	return t
}

// Run drains the iterator into a set-semantics relation.
func Run(it Iterator) (*relation.Relation, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	out := relation.New(it.Schema())
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Insert(t)
	}
}

// Drain consumes the iterator, returning only the tuple count; used
// by benchmarks that do not need the result.
func Drain(it Iterator) (int64, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	defer it.Close()
	var n int64
	for {
		_, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// errNotOpen guards against protocol misuse.
func errNotOpen(op string) error { return fmt.Errorf("exec: %s.Next before Open", op) }
