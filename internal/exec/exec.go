// Package exec is a Volcano-style physical execution engine: every
// operator is an Iterator with Open/Next/Close, tuples flow through
// pipelines without materializing intermediate relations unless an
// operator is inherently blocking.
//
// The engine exists to make the paper's execution-level arguments
// measurable: hash-division consumes its dividend in one pass
// (Graefe), merge-group division preserves dividend grouping and
// pipelines quotient tuples out per group (the Law 1 discussion in
// §5.1.1), and the basic-algebra simulation of division materializes
// a quadratic intermediate (Leinders & Van den Bussche [25]), which
// the Stats counters expose.
//
// # Cancellation
//
// Open takes a context.Context which governs the whole life of the
// pipeline: blocking operators (hash builds, sorts, divisions,
// parallel exchanges) poll it every CheckEvery tuples (default
// DefaultCheckEvery, tunable via CompileOptions) while they drain
// their children, and the parallel division workers observe it
// mid-partition, so a cancelled context tears the pipeline down
// promptly instead of after the current blocking phase. The polling
// is deliberately batched rather than per-tuple: a ctx.Err() call per
// tuple costs a mutex acquisition in the hot loop, while the batched
// check is amortized to noise (see BenchmarkCancellationOverhead for
// the measurement that picked this design over per-Next checks).
//
// # Batch execution
//
// Beside the tuple-at-a-time Iterator protocol sits BatchIterator,
// the batch-at-a-time fast path: operators exchange reused
// relation.Batch slabs so per-tuple interface calls and context
// bookkeeping are amortized across a whole batch. CompileWith selects
// it automatically for every fully batch-capable subtree; the tuple
// path remains intact as the correctness oracle (see the equivalence
// tests) and for the operators that stay tuple-only.
//
// Two per-row costs are attacked on top of that protocol, each with
// the structure measurement picked. Set-op and semijoin batch probes
// hash each incoming batch in one pass through the wide hash kernel
// (relation.Hash64ProjBatch over hashkey's word-at-a-time string
// mixer) and then walk the table with precomputed hashes; the hash
// join instead probes row-at-the-cursor through the fused
// TupleIndex.LookupProj — hash plus walk in one frame — because on
// its short-key, L1-hot probe loop a separate hash pass costs a
// write and a re-read per row that the fusion avoids. Emit paths
// (join, product, theta join) carve output tuples out of a
// per-iterator relation.Slab instead of calling make per
// concatenation; slab chunks are append-only and GC-owned, so
// emitted tuples stay valid for as long as any consumer holds them,
// and under a memory budget the live chunk is charged against the
// spill tracker (see relation.Slab for the lifetime and accounting
// rules).
package exec

import (
	"context"
	"fmt"
	"sync"

	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// Iterator is the physical operator interface.
type Iterator interface {
	// Open prepares the operator (allocating hash tables, opening
	// children) under the given context. It must be called before
	// Next. Blocking operators honor ctx cancellation while they
	// consume their children; the context must stay valid until
	// Close.
	Open(ctx context.Context) error
	// Next produces the next tuple. ok is false at end of stream.
	Next() (t relation.Tuple, ok bool, err error)
	// Close releases resources. Close is idempotent and safe to call
	// mid-stream (after a context cancellation, for example).
	Close() error
	// Schema describes the produced tuples.
	Schema() schema.Schema
}

// DefaultCheckEvery is the default interval, in tuples, of the
// cooperative context checks inside blocking drain loops; tunable per
// query via CompileOptions.CheckEvery.
const DefaultCheckEvery = 1024

// drain consumes child into sink with the default poll interval. It
// is the shared inner loop of every blocking operator.
func drain(ctx context.Context, child Iterator, sink func(relation.Tuple)) error {
	return drainEvery(ctx, child, 0, sink)
}

// drainEvery consumes child into sink, polling ctx at least every
// `every` tuples (DefaultCheckEvery when every <= 0). When the child
// is batch-capable, it drains whole batches instead — the per-tuple
// Next calls and context bookkeeping collapse to one indexed loop and
// one counter update per batch.
func drainEvery(ctx context.Context, child Iterator, every int, sink func(relation.Tuple)) error {
	if b, ok := child.(BatchIterator); ok {
		return drainBatches(ctx, b, every, func(ts []relation.Tuple) {
			for _, t := range ts {
				sink(t)
			}
		})
	}
	if every <= 0 {
		every = DefaultCheckEvery
	}
	n := 0
	for {
		t, ok, err := child.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		sink(t)
		if n++; n >= every {
			n = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

// Stats counts tuples emitted per operator label, making
// intermediate-result sizes observable (the quadratic-intermediate
// measurement of [25] relies on this). It is safe for concurrent use
// so parallel operators can share one collector across goroutines;
// read it with Get, Total, or Snapshot — never by reaching into the
// map while operators may still be running.
type Stats struct {
	mu      sync.Mutex
	emitted map[string]int64
}

// NewStats returns an empty Stats collector.
func NewStats() *Stats { return &Stats{emitted: make(map[string]int64)} }

// count records n tuples emitted by the labelled operator.
func (s *Stats) count(label string, n int64) {
	if s != nil {
		s.mu.Lock()
		s.emitted[label] += n
		s.mu.Unlock()
	}
}

// Get returns the tuple count recorded for one operator label.
func (s *Stats) Get(label string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted[label]
}

// Snapshot returns a copy of the per-operator counts. It is the
// supported way to read the whole collector — safe even while
// parallel operators are still appending — and the representation
// behind the public QueryStats surface.
func (s *Stats) Snapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.emitted))
	for k, v := range s.emitted {
		out[k] = v
	}
	return out
}

// Total returns the total number of tuples emitted by all operators,
// the engine's measure of intermediate-result volume.
func (s *Stats) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, n := range s.emitted {
		t += n
	}
	return t
}

// Run drains the iterator into a set-semantics relation.
func Run(ctx context.Context, it Iterator) (*relation.Relation, error) {
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	defer it.Close()
	out := relation.New(it.Schema())
	if err := drain(ctx, it, func(t relation.Tuple) { out.Insert(t) }); err != nil {
		return nil, err
	}
	return out, nil
}

// Drain consumes the iterator, returning only the tuple count; used
// by benchmarks that do not need the result.
func Drain(ctx context.Context, it Iterator) (int64, error) {
	if err := it.Open(ctx); err != nil {
		return 0, err
	}
	defer it.Close()
	var n int64
	if err := drain(ctx, it, func(relation.Tuple) { n++ }); err != nil {
		return n, err
	}
	return n, nil
}

// errNotOpen guards against protocol misuse.
func errNotOpen(op string) error { return fmt.Errorf("exec: %s.Next before Open", op) }
