package exec

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/division"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func TestParallelDivideIterMatchesSequential(t *testing.T) {
	r1, r2 := datagen.DividePair{
		Groups: 200, GroupSize: 5, DivisorSize: 6,
		Domain: 50, HitRate: 0.3, Seed: 3,
	}.Generate()
	want := division.Divide(r1, r2)
	for _, algo := range division.Algorithms() {
		for _, workers := range []int{0, 1, 2, 4, 8} {
			node := &plan.ParallelDivide{
				Dividend: plan.NewScan("r1", r1),
				Divisor:  plan.NewScan("r2", r2),
				Algo:     algo, Workers: workers,
			}
			got, err := Run(context.Background(), Compile(node, NewStats()))
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", algo, workers, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s/workers=%d: diverged (%d vs %d rows)", algo, workers, got.Len(), want.Len())
			}
		}
	}
}

func TestParallelGreatDivideIterMatchesSequential(t *testing.T) {
	r1, r2 := datagen.GreatDividePair{
		Groups: 150, GroupSize: 5,
		DivisorGroups: 12, DivisorGroupSize: 4,
		Domain: 50, HitRate: 0.3, Seed: 3,
	}.Generate()
	want := division.GreatDivide(r1, r2)
	for _, algo := range division.GreatAlgorithms() {
		for _, workers := range []int{0, 1, 2, 4, 8} {
			node := &plan.ParallelGreatDivide{
				Dividend: plan.NewScan("r1", r1),
				Divisor:  plan.NewScan("r2", r2),
				Algo:     algo, Workers: workers,
			}
			got, err := Run(context.Background(), Compile(node, NewStats()))
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", algo, workers, err)
			}
			if !got.EquivalentTo(want) {
				t.Errorf("%s/workers=%d: diverged (%d vs %d rows)", algo, workers, got.Len(), want.Len())
			}
		}
	}
}

// TestParallelDivideIterProperty drives random inputs, algorithms,
// and worker counts through the compiled iterator and checks set
// equality against the sequential reference.
func TestParallelDivideIterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	algos := division.Algorithms()
	for trial := 0; trial < 50; trial++ {
		r1 := relation.New(schema.New("a", "b"))
		for i := 0; i < rng.Intn(120); i++ {
			r1.Insert(relation.Tuple{
				value.Int(int64(rng.Intn(15))), value.Int(int64(rng.Intn(9))),
			})
		}
		r2 := relation.New(schema.New("b"))
		for i := 0; i < 1+rng.Intn(5); i++ {
			r2.Insert(relation.Tuple{value.Int(int64(rng.Intn(9)))})
		}
		algo := algos[rng.Intn(len(algos))]
		workers := 1 + rng.Intn(8)
		node := &plan.ParallelDivide{
			Dividend: plan.NewScan("r1", r1),
			Divisor:  plan.NewScan("r2", r2),
			Algo:     algo, Workers: workers,
		}
		got, err := Run(context.Background(), Compile(node, NewStats()))
		if err != nil {
			t.Fatalf("trial %d (%s, workers=%d): %v", trial, algo, workers, err)
		}
		want := division.DivideWith(algo, r1, r2)
		if !got.Equal(want) {
			t.Fatalf("trial %d (%s, workers=%d): %d vs %d rows\nr1:\n%v\nr2:\n%v",
				trial, algo, workers, got.Len(), want.Len(), r1, r2)
		}
	}
}

// TestParallelDivideIterPartitionStats checks that the exchange
// operator records per-partition quotient sizes that sum to the
// merged output.
func TestParallelDivideIterPartitionStats(t *testing.T) {
	r1, r2 := datagen.DividePair{
		Groups: 100, GroupSize: 4, DivisorSize: 5,
		Domain: 40, HitRate: 0.5, Seed: 7,
	}.Generate()
	stats := NewStats()
	node := &plan.ParallelDivide{
		Dividend: plan.NewScan("r1", r1),
		Divisor:  plan.NewScan("r2", r2),
		Workers:  4,
	}
	got, err := Run(context.Background(), Compile(node, stats))
	if err != nil {
		t.Fatal(err)
	}
	var partTotal int64
	var parts int
	for label, n := range stats.Snapshot() {
		if strings.Contains(label, "/part") {
			partTotal += n
			parts++
		}
	}
	if parts < 2 {
		t.Fatalf("expected multiple partitions in stats, got %d: %v", parts, stats.Snapshot())
	}
	if partTotal != int64(got.Len()) {
		t.Errorf("partition outputs sum to %d, merged quotient has %d rows", partTotal, got.Len())
	}
}

// TestStatsConcurrent hammers one Stats collector from many
// goroutines; run with -race to validate the locking.
func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := fmt.Sprintf("op%d", g%3)
			for i := 0; i < 1000; i++ {
				s.count(label, 1)
				_ = s.Total()
				_ = s.Get(label)
			}
		}(g)
	}
	wg.Wait()
	if s.Total() != 8000 {
		t.Errorf("Total = %d, want 8000", s.Total())
	}
}

// TestSharedStatsAcrossConcurrentIterators runs two compiled plans
// concurrently against one Stats collector, the situation the mutex
// exists for; meaningful under -race.
func TestSharedStatsAcrossConcurrentIterators(t *testing.T) {
	r1, r2 := datagen.DividePair{
		Groups: 150, GroupSize: 5, DivisorSize: 6,
		Domain: 50, HitRate: 0.3, Seed: 5,
	}.Generate()
	stats := NewStats()
	want := division.Divide(r1, r2)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := &plan.ParallelDivide{
				Dividend: plan.NewScan("r1", r1),
				Divisor:  plan.NewScan("r2", r2),
				Workers:  4,
			}
			got, err := Run(context.Background(), Compile(node, stats))
			if err != nil {
				errs[i] = err
				return
			}
			if !got.Equal(want) {
				errs[i] = fmt.Errorf("run %d diverged", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
