package exec

import (
	"context"

	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// BatchIterator is the batch-at-a-time physical operator interface,
// the fast path beside Iterator: operators exchange slabs of up to
// CompileOptions.BatchSize tuples instead of single tuples, so the
// per-call interface overhead — and the cooperative context polls —
// are amortized across a whole batch.
//
// Protocol: OpenBatch before the first NextBatch; NextBatch returns
// nil at end of stream; the returned batch is owned by the operator
// and valid only until the next NextBatch or Close (the tuples inside
// are immutable and may be retained). Close is idempotent.
//
// Several operators implement both interfaces over one shared cursor
// (ScanIter, the blocking emitters, the parallel exchanges), so a
// consumer may drain them tuple-at-a-time or batch-at-a-time — but
// must not interleave arbitrary Next and NextBatch calls beyond
// "Next a few, then batch-drain the rest", which the shared cursor
// keeps exact.
type BatchIterator interface {
	// OpenBatch prepares the operator under the given context, exactly
	// as Iterator.Open does; dual-mode operators treat Open and
	// OpenBatch as the same call.
	OpenBatch(ctx context.Context) error
	// NextBatch produces the next batch, nil at end of stream. The
	// batch is reused: it is valid only until the next call.
	NextBatch() (*relation.Batch, error)
	// Close releases resources; idempotent.
	Close() error
	// Schema describes the produced tuples.
	Schema() schema.Schema
}

// rowBudgeter is the optional row-budget hint of the batch path: a
// bounded consumer (LimitBatch, a fused top-k) arms its child with the
// number of rows it still needs before each NextBatch pull, and a
// budget-aware child emits a batch no larger than that instead of
// draining a full slab past the limit. The budget is a cap, not a
// promise — smaller batches stay legal — and it persists until
// re-armed, so an operator that re-pulls (a selective filter) keeps
// its own child bounded. A hint of n <= 0 clears the budget.
type rowBudgeter interface {
	SetRowBudget(n int64)
}

// setRowBudget arms x with a row budget when it understands the hint;
// budget-unaware operators are left alone (the consumer's own
// truncation still bounds what it emits, just not what the child
// produced).
func setRowBudget(x any, n int64) {
	if rb, ok := x.(rowBudgeter); ok {
		rb.SetRowBudget(n)
	}
}

// windowBatcher equips an operator holding (or receiving) tuple
// slices with zero-copy batch emission: window serves consecutive
// BatchSize-capped views over a results slice, adopt wraps a foreign
// slice (an exchange batch) as-is. The *relation.Batch comes from the
// shared free-list and is returned to it by release. It also carries
// the operator's row budget (see rowBudgeter), so every embedder is
// budget-aware: armed windows shrink to the budget.
type windowBatcher struct {
	// BatchSize caps emitted windows; 0 means relation.DefaultBatchCap.
	BatchSize int
	wb        *relation.Batch
	budget    int64
}

// SetRowBudget implements rowBudgeter for every embedder.
func (w *windowBatcher) SetRowBudget(n int64) {
	if n < 0 {
		n = 0
	}
	w.budget = n
}

// batchCap resolves the configured window capacity.
func (w *windowBatcher) batchCap() int {
	if w.BatchSize > 0 {
		return w.BatchSize
	}
	return relation.DefaultBatchCap
}

// effectiveCap is batchCap further bounded by the armed row budget.
func (w *windowBatcher) effectiveCap() int {
	c := w.batchCap()
	if w.budget > 0 && w.budget < int64(c) {
		c = int(w.budget)
	}
	return c
}

// window serves the next view of up to effectiveCap tuples of rows
// starting at *pos, advancing *pos; nil when rows are exhausted.
func (w *windowBatcher) window(rows []relation.Tuple, pos *int) *relation.Batch {
	if *pos >= len(rows) {
		return nil
	}
	end := *pos + w.effectiveCap()
	if end > len(rows) {
		end = len(rows)
	}
	b := w.adopt(rows[*pos:end])
	*pos = end
	return b
}

// adopt wraps ts as the emitted batch without copying.
func (w *windowBatcher) adopt(ts []relation.Tuple) *relation.Batch {
	if w.wb == nil {
		w.wb = relation.GetBatch(w.batchCap())
	}
	w.wb.SetTuples(ts)
	return w.wb
}

// outBatch returns the reusable owned output batch, reset and ready
// for Append — the emission mode of operators that build batches
// (joins, set ops) rather than windowing a materialized slice.
func (w *windowBatcher) outBatch() *relation.Batch {
	if w.wb == nil {
		w.wb = relation.GetBatch(w.batchCap())
	}
	w.wb.Reset()
	return w.wb
}

// release returns the batch to the free-list and disarms any budget;
// called from Close.
func (w *windowBatcher) release() {
	relation.PutBatch(w.wb)
	w.wb = nil
	w.budget = 0
}

// batchFeed pulls probe-side input a batch at a time from a child
// that may or may not expose the batch surface: batch-capable
// children stream their own batches through (budget hint forwarded),
// tuple-only children are accumulated into a pooled slab. It is the
// probe-side twin of drainEvery's build-side batch upgrade, letting
// one NextBatch implementation serve both child kinds without an
// adapter seam.
type batchFeed struct {
	child Iterator
	// size caps accumulated fallback batches; 0 means
	// relation.DefaultBatchCap.
	size int

	bi      BatchIterator
	checked bool
	acc     *relation.Batch
}

// next serves the child's next non-empty tuple window, nil at end of
// stream. budget > 0 caps the window (and is forwarded to
// batch-capable children); the returned slice is valid only until the
// following next call.
func (f *batchFeed) next(budget int64) ([]relation.Tuple, error) {
	if !f.checked {
		f.checked = true
		f.bi, _ = f.child.(BatchIterator)
	}
	if f.bi != nil {
		setRowBudget(f.bi, budget)
		b, err := f.bi.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		return b.Tuples(), nil
	}
	bound := int64(f.size)
	if bound <= 0 {
		bound = relation.DefaultBatchCap
	}
	if budget > 0 && budget < bound {
		bound = budget
	}
	if f.acc == nil {
		f.acc = relation.GetBatch(f.size)
	}
	f.acc.Reset()
	for int64(f.acc.Len()) < bound {
		t, ok, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		f.acc.Append(t)
	}
	if f.acc.Len() == 0 {
		return nil, nil
	}
	return f.acc.Tuples(), nil
}

// release returns the fallback slab to the free-list and resets the
// type check; called from Close.
func (f *batchFeed) release() {
	relation.PutBatch(f.acc)
	f.acc = nil
	f.bi, f.checked = nil, false
}

// ToBatch adapts a tuple-at-a-time Iterator to the batch protocol by
// accumulating BatchSize tuples per NextBatch. It is the boundary
// adapter the compiler inserts when a batch-capable operator sits
// above a tuple-only subtree (forced-batch mode); the plain tuple
// path never pays for it.
type ToBatch struct {
	Input Iterator
	// BatchSize caps the accumulated batches; 0 means
	// relation.DefaultBatchCap.
	BatchSize int

	out    *relation.Batch
	open   bool
	budget int64
}

// OpenBatch implements BatchIterator.
func (a *ToBatch) OpenBatch(ctx context.Context) error {
	a.open = true
	return a.Input.Open(ctx)
}

// SetRowBudget implements rowBudgeter: accumulation stops at the
// budget, so the tuple-only subtree below is not over-pulled either.
func (a *ToBatch) SetRowBudget(n int64) {
	if n < 0 {
		n = 0
	}
	a.budget = n
}

// NextBatch implements BatchIterator.
func (a *ToBatch) NextBatch() (*relation.Batch, error) {
	if !a.open {
		return nil, errNotOpen("ToBatch")
	}
	if a.out == nil {
		a.out = relation.GetBatch(a.BatchSize)
	}
	a.out.Reset()
	for !a.out.Full() {
		if a.budget > 0 && int64(a.out.Len()) >= a.budget {
			break
		}
		t, ok, err := a.Input.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		a.out.Append(t)
	}
	if a.out.Len() == 0 {
		return nil, nil
	}
	return a.out, nil
}

// Close implements BatchIterator.
func (a *ToBatch) Close() error {
	a.open = false
	a.budget = 0
	relation.PutBatch(a.out)
	a.out = nil
	return a.Input.Close()
}

// Schema implements BatchIterator.
func (a *ToBatch) Schema() schema.Schema { return a.Input.Schema() }

// FromBatch adapts a BatchIterator to the tuple protocol: Next serves
// tuples out of the current batch and pulls the next one on demand.
// It also passes the batch protocol straight through, so a blocking
// drain above it consumes whole batches without re-tuplifying (any
// partially Next-consumed batch is served as a remainder window
// first).
type FromBatch struct {
	Input BatchIterator

	windowBatcher
	cur []relation.Tuple
	pos int
}

// Open implements Iterator.
func (f *FromBatch) Open(ctx context.Context) error {
	f.cur, f.pos = nil, 0
	return f.Input.OpenBatch(ctx)
}

// OpenBatch implements BatchIterator.
func (f *FromBatch) OpenBatch(ctx context.Context) error { return f.Open(ctx) }

// Next implements Iterator.
func (f *FromBatch) Next() (relation.Tuple, bool, error) {
	for f.pos >= len(f.cur) {
		b, err := f.Input.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		f.cur, f.pos = b.Tuples(), 0
	}
	t := f.cur[f.pos]
	f.pos++
	return t, true, nil
}

// SetRowBudget implements rowBudgeter: the hint bounds remainder
// windows and flows through to the child.
func (f *FromBatch) SetRowBudget(n int64) {
	f.windowBatcher.SetRowBudget(n)
	setRowBudget(f.Input, n)
}

// NextBatch implements BatchIterator: the remainder of a partially
// consumed batch first (budget-capped windows), then the child's
// batches untouched.
func (f *FromBatch) NextBatch() (*relation.Batch, error) {
	if f.pos < len(f.cur) {
		b := f.window(f.cur, &f.pos)
		if f.pos >= len(f.cur) {
			f.cur, f.pos = nil, 0
		}
		return b, nil
	}
	f.cur, f.pos = nil, 0
	return f.Input.NextBatch()
}

// Close implements Iterator.
func (f *FromBatch) Close() error {
	f.cur, f.pos = nil, 0
	f.release()
	return f.Input.Close()
}

// Schema implements Iterator.
func (f *FromBatch) Schema() schema.Schema { return f.Input.Schema() }

// FilterBatch is the batch-native predicate filter: each input batch
// is filtered into a reused output batch, with per-batch (not
// per-tuple) interface costs. Empty results keep pulling, so
// consumers never see zero-length batches.
type FilterBatch struct {
	Label string
	Input BatchIterator
	Pred  pred.Predicate
	Stats *Stats

	out    *relation.Batch
	open   bool
	budget int64
}

// OpenBatch implements BatchIterator.
func (f *FilterBatch) OpenBatch(ctx context.Context) error {
	f.open = true
	return f.Input.OpenBatch(ctx)
}

// SetRowBudget implements rowBudgeter: each child pull is armed with
// the hint (a filter emits at most as many rows as it reads, so the
// child's bound is ours).
func (f *FilterBatch) SetRowBudget(n int64) {
	if n < 0 {
		n = 0
	}
	f.budget = n
}

// NextBatch implements BatchIterator.
func (f *FilterBatch) NextBatch() (*relation.Batch, error) {
	if !f.open {
		return nil, errNotOpen("FilterBatch")
	}
	sch := f.Input.Schema()
	for {
		setRowBudget(f.Input, f.budget)
		in, err := f.Input.NextBatch()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		if f.out == nil {
			f.out = relation.GetBatch(in.Len())
		}
		f.out.Reset()
		for _, t := range in.Tuples() {
			if f.Pred.Eval(t, sch) {
				f.out.Append(t)
			}
		}
		if n := f.out.Len(); n > 0 {
			f.Stats.count(f.Label, int64(n))
			return f.out, nil
		}
	}
}

// Close implements BatchIterator.
func (f *FilterBatch) Close() error {
	f.open = false
	f.budget = 0
	relation.PutBatch(f.out)
	f.out = nil
	return f.Input.Close()
}

// Schema implements BatchIterator.
func (f *FilterBatch) Schema() schema.Schema { return f.Input.Schema() }

// ProjectBatch is the batch-native projection with streaming dedup:
// the same first-seen TupleIndex semantics as ProjectIter (exact
// under hash collisions), with the per-tuple interface overhead
// hoisted to the batch boundary.
type ProjectBatch struct {
	Label string
	Input BatchIterator
	Attrs []string
	Stats *Stats

	pos    []int
	out    schema.Schema
	seen   *relation.TupleIndex
	ob     *relation.Batch
	budget int64
}

// OpenBatch implements BatchIterator.
func (p *ProjectBatch) OpenBatch(ctx context.Context) error {
	p.out, p.pos = p.Input.Schema().Project(p.Attrs)
	p.seen = new(relation.TupleIndex)
	return p.Input.OpenBatch(ctx)
}

// SetRowBudget implements rowBudgeter: each child pull is armed with
// the hint (dedup only shrinks batches, so the child's bound is ours).
func (p *ProjectBatch) SetRowBudget(n int64) {
	if n < 0 {
		n = 0
	}
	p.budget = n
}

// NextBatch implements BatchIterator.
func (p *ProjectBatch) NextBatch() (*relation.Batch, error) {
	if p.seen == nil {
		return nil, errNotOpen("ProjectBatch")
	}
	for {
		setRowBudget(p.Input, p.budget)
		in, err := p.Input.NextBatch()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		if p.ob == nil {
			p.ob = relation.GetBatch(in.Len())
		}
		p.ob.Reset()
		for _, t := range in.Tuples() {
			if id, created := p.seen.IDProj(t, p.pos); created {
				p.ob.Append(p.seen.Key(id))
			}
		}
		if n := p.ob.Len(); n > 0 {
			p.Stats.count(p.Label, int64(n))
			return p.ob, nil
		}
	}
}

// Close implements BatchIterator.
func (p *ProjectBatch) Close() error {
	p.seen = nil
	p.budget = 0
	relation.PutBatch(p.ob)
	p.ob = nil
	return p.Input.Close()
}

// Schema implements BatchIterator.
func (p *ProjectBatch) Schema() schema.Schema {
	if p.out.Len() == 0 {
		p.out, p.pos = p.Input.Schema().Project(p.Attrs)
	}
	return p.out
}

// LimitBatch is the batch-native LIMIT with the same early-exit
// contract as LimitIter: the child is closed the moment the n-th
// tuple surfaces (cancelling streaming subtrees such as parallel
// exchanges mid-stream), the final batch is truncated to the bound,
// and a limit of zero never opens the child at all. Before every pull
// it arms the child with the remaining row budget (see rowBudgeter),
// so a budget-aware subtree produces exactly the rows the limit still
// needs instead of draining a full slab past it — batch-path LIMIT 1
// reads one row, as the tuple path does.
type LimitBatch struct {
	Label string
	Input BatchIterator
	N     int64
	Stats *Stats

	windowBatcher
	seen    int64
	opened  bool
	stopped bool
	stopErr error
}

// OpenBatch implements BatchIterator.
func (l *LimitBatch) OpenBatch(ctx context.Context) error {
	l.seen = 0
	l.stopped = l.N <= 0
	l.stopErr = nil
	if !l.stopped {
		if err := l.Input.OpenBatch(ctx); err != nil {
			return err
		}
	}
	l.opened = true
	return nil
}

// NextBatch implements BatchIterator.
func (l *LimitBatch) NextBatch() (*relation.Batch, error) {
	if !l.opened {
		return nil, errNotOpen("LimitBatch")
	}
	if l.stopped || l.seen >= l.N {
		err := l.stopErr
		l.stopErr = nil
		return nil, err
	}
	setRowBudget(l.Input, l.N-l.seen)
	in, err := l.Input.NextBatch()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return nil, nil
	}
	ts := in.Tuples()
	if rem := l.N - l.seen; int64(len(ts)) > rem {
		ts = ts[:rem]
	}
	l.seen += int64(len(ts))
	l.Stats.count(l.Label, int64(len(ts)))
	if l.seen < l.N {
		return l.adopt(ts), nil
	}
	// Limit reached: release the subtree now, exactly like LimitIter —
	// a teardown error surfaces on the next call, never in place of
	// the batch the consumer asked for. Closing the child recycles the
	// slab behind ts, so the final batch is copied, not adopted.
	if l.wb == nil {
		l.wb = relation.GetBatch(len(ts))
	}
	l.wb.Reset()
	for _, t := range ts {
		l.wb.Append(t)
	}
	l.stopped = true
	l.stopErr = l.Input.Close()
	return l.wb, nil
}

// Close implements BatchIterator.
func (l *LimitBatch) Close() error {
	l.opened = false
	l.release()
	err := l.Input.Close()
	if err == nil {
		err = l.stopErr
	}
	l.stopErr = nil
	return err
}

// Schema implements BatchIterator.
func (l *LimitBatch) Schema() schema.Schema { return l.Input.Schema() }

// RenameBatch relabels attributes without touching batches.
type RenameBatch struct {
	Input    BatchIterator
	From, To string
}

// OpenBatch implements BatchIterator.
func (r *RenameBatch) OpenBatch(ctx context.Context) error { return r.Input.OpenBatch(ctx) }

// SetRowBudget implements rowBudgeter; the hint flows through.
func (r *RenameBatch) SetRowBudget(n int64) { setRowBudget(r.Input, n) }

// NextBatch implements BatchIterator.
func (r *RenameBatch) NextBatch() (*relation.Batch, error) { return r.Input.NextBatch() }

// Close implements BatchIterator.
func (r *RenameBatch) Close() error { return r.Input.Close() }

// Schema implements BatchIterator.
func (r *RenameBatch) Schema() schema.Schema { return r.Input.Schema().Rename(r.From, r.To) }

// drainBatches is the batch twin of drain: it consumes whole batches
// from a batch-capable child, with the cooperative context poll
// hoisted from per-tuple bookkeeping to batch boundaries (still at
// least every `every` tuples).
func drainBatches(ctx context.Context, child BatchIterator, every int, sink func([]relation.Tuple)) error {
	if every <= 0 {
		every = DefaultCheckEvery
	}
	n := 0
	for {
		b, err := child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		sink(b.Tuples())
		if n += b.Len(); n >= every {
			n = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}
