package exec

import (
	"context"
	"errors"
	"strconv"
	"sync"

	"divlaws/internal/division"
	"divlaws/internal/parallel"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/spill"
)

// DefaultExchangeBuffer is the capacity, in tuple batches of up to
// parallel.EmitBatchSize, of the bounded channel between a streaming
// exchange's partition workers and its consumer. The bound is the
// backpressure mechanism: workers that outrun the consumer block on
// the channel instead of materializing the whole quotient, so an
// early-exiting parent (LIMIT, Rows.Close) leaves most of the
// quotient uncomputed.
const DefaultExchangeBuffer = 16

// exchange owns the worker fan-out of a streaming exchange operator:
// a bounded batch channel fed by partition workers via a coordinator
// goroutine, a cancel function tearing the fan-out down, and a done
// channel marking full termination. err is written by the
// coordinator before done closes, so readers must observe <-done (or
// a closed ch, which done ordering guarantees follows err) first.
// Batching (parallel.EmitBatchSize tuples per send) amortizes the
// channel handoff and the per-partition stats accounting to noise,
// keeping streamed throughput at parity with the old materializing
// exchange.
type exchange struct {
	ch     chan []relation.Tuple
	cancel context.CancelFunc
	done   chan struct{}
	err    error

	cur []relation.Tuple // batch being consumed
	pos int
}

// startExchange launches run in a coordinator goroutine streaming
// into a bounded batch channel of the given capacity (0 means
// DefaultExchangeBuffer). run receives a derived context and a send
// function that blocks under backpressure but aborts — returning the
// context's error — once the exchange is cancelled; run must return
// promptly after cancellation.
func startExchange(ctx context.Context, buffer int, run func(ctx context.Context, send func([]relation.Tuple) error) error) *exchange {
	if buffer <= 0 {
		buffer = DefaultExchangeBuffer
	}
	exCtx, cancel := context.WithCancel(ctx)
	ex := &exchange{
		ch:     make(chan []relation.Tuple, buffer),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(ex.done)
		defer close(ex.ch)
		ex.err = run(exCtx, func(batch []relation.Tuple) error {
			select {
			case ex.ch <- batch:
				return nil
			case <-exCtx.Done():
				return exCtx.Err()
			}
		})
	}()
	return ex
}

// next pulls one tuple off the exchange; ok is false at end of
// stream, in which case err reports how the workers finished.
func (ex *exchange) next() (t relation.Tuple, ok bool, err error) {
	for ex.pos >= len(ex.cur) {
		batch, ok := <-ex.ch
		if !ok {
			<-ex.done
			return nil, false, ex.err
		}
		ex.cur, ex.pos = batch, 0
	}
	t = ex.cur[ex.pos]
	ex.pos++
	return t, true, nil
}

// nextBatch pulls one worker batch off the exchange untouched — the
// batch pass-through of the batch execution path: the workers' tuple
// slices flow to the consumer without re-tuplifying. A batch
// partially consumed by next is served as its remainder first. A
// positive limit (the consumer's row budget) caps the served window,
// keeping the rest of the worker batch as the remainder cursor — a
// bounded consumer sees exactly the rows it asked for. nil tuples
// mark end of stream, with err reporting how the workers finished.
func (ex *exchange) nextBatch(limit int) ([]relation.Tuple, error) {
	if ex.pos >= len(ex.cur) {
		ex.cur, ex.pos = nil, 0
		batch, ok := <-ex.ch
		if !ok {
			<-ex.done
			return nil, ex.err
		}
		ex.cur, ex.pos = batch, 0
	}
	end := len(ex.cur)
	if limit > 0 && ex.pos+limit < end {
		end = ex.pos + limit
	}
	ts := ex.cur[ex.pos:end]
	if end == len(ex.cur) {
		ex.cur, ex.pos = nil, 0
	} else {
		ex.pos = end
	}
	return ts, nil
}

// stop cancels the fan-out and waits for every worker to exit, so
// callers get deterministic teardown with no goroutine leaks. It is
// idempotent.
func (ex *exchange) stop() {
	ex.cancel()
	<-ex.done
}

// startTopKExchange launches the order-aware form of a streaming
// exchange: stream runs the partition fan-out under a top-k bound
// (each worker emits only its k smallest quotient tuples, sorted —
// O(k) live per worker), the coordinator collects the per-partition
// runs, k-way merges them into the global top k, and streams the
// merged result through the usual bounded channel. The merge is
// inherently a barrier — any partition may hold the global minimum —
// but it touches at most k·workers tuples instead of the quotient.
func startTopKExchange(ctx context.Context, buffer, batch int, pos []int, desc []bool, k int64, label string, stats *Stats,
	stream func(ctx context.Context, bound parallel.TopKBound, emit parallel.EmitFunc) error) *exchange {
	cmp := relation.KeyedCompare(pos, desc)
	bound := parallel.TopKBound{K: int(k), Cmp: cmp}
	if batch <= 0 {
		batch = parallel.EmitBatchSize
	}
	return startExchange(ctx, buffer, func(exCtx context.Context, send func([]relation.Tuple) error) error {
		// Partitions emit their (tiny, ≤k) runs concurrently; the mutex
		// guards the map, not the hot tuple path.
		var mu sync.Mutex
		runs := make(map[int][]relation.Tuple)
		err := stream(exCtx, bound, func(part int, batch []relation.Tuple) error {
			mu.Lock()
			runs[part] = append(runs[part], batch...)
			mu.Unlock()
			stats.count(partLabel(label, part), int64(len(batch)))
			return exCtx.Err()
		})
		if err != nil {
			return err
		}
		ordered := make([][]relation.Tuple, 0, len(runs))
		for _, run := range runs {
			ordered = append(ordered, run)
		}
		merged := mergeRuns(ordered, cmp, k)
		for start := 0; start < len(merged); start += batch {
			end := start + batch
			if end > len(merged) {
				end = len(merged)
			}
			if err := send(merged[start:end]); err != nil {
				return err
			}
		}
		return nil
	})
}

// ParallelDivideIter is the streaming exchange operator for
// plan.ParallelDivide: Open materializes both inputs,
// range-partitions the dividend on the quotient attributes A (Law 2
// under c2, which the partitioning establishes by construction), and
// launches one goroutine per partition; each worker runs the
// streaming division.DivideState over its partition and emits its
// finished quotient tuples into a bounded channel. Next pulls from
// the channel, so the first row surfaces as soon as the first
// partition resolves — the pipeline above never waits for the
// slowest worker — and Close (or context cancellation) tears the
// workers down mid-stream. Per-partition emission counts are
// recorded in Stats under "<label>/part<i>" as tuples flow, so an
// early exit leaves them below the full quotient sizes.
type ParallelDivideIter struct {
	Label             string
	Dividend, Divisor Iterator
	// Algo is the per-partition algorithm; empty means hash-division.
	Algo division.Algorithm
	// Workers is the partition/goroutine count; 0 means GOMAXPROCS.
	Workers int
	// Buffer is the exchange channel capacity; 0 means
	// DefaultExchangeBuffer.
	Buffer int
	// TopKN, when positive, switches the exchange to its order-aware
	// top-k form: every partition worker keeps an O(TopKN) heap over
	// the TopKPos/TopKDesc keys and the consumer k-way merges the
	// per-partition runs, so Next serves the global top TopKN in key
	// order without the quotient ever materializing.
	TopKN    int64
	TopKPos  []int
	TopKDesc []bool
	Stats    *Stats
	// Every is the cooperative ctx-poll interval of the input drains
	// and worker feed loops, in tuples; 0 means DefaultCheckEvery.
	Every int
	// Spill, when non-nil, budgets the exchange: the dividend is
	// hash-partitioned on A while draining (streamed, charged) instead
	// of materialized first, and if even the partitions exceed the
	// budget the operator degrades to the sequential grace division.
	Spill *spill.Tracker
	windowBatcher

	out schema.Schema
	ex  *exchange

	charged  int64
	grace    *graceDivide
	gctx     context.Context
	fb       bool
	fallback []relation.Tuple
	fbTopK   bool
	fPos     int
}

// tuning bundles the iterator's knobs for the parallel fan-out.
func (p *ParallelDivideIter) tuning() parallel.Tuning {
	return parallel.Tuning{BatchSize: p.BatchSize, CheckEvery: p.Every}
}

// Open implements Iterator.
func (p *ParallelDivideIter) Open(ctx context.Context) error {
	split, err := division.SmallSplit(p.Dividend.Schema(), p.Divisor.Schema())
	if err != nil {
		return err
	}
	algo := p.Algo
	if algo == "" {
		algo = division.AlgoHash
	}
	if p.Spill != nil {
		p.out = split.A
		return p.openBudgeted(ctx, split, algo)
	}
	dividend, err := drainChild(ctx, p.Dividend, p.Every)
	if err != nil {
		return err
	}
	divisor, err := drainChild(ctx, p.Divisor, p.Every)
	if err != nil {
		return err
	}
	p.out = split.A
	if p.TopKN > 0 {
		p.ex = startTopKExchange(ctx, p.Buffer, p.BatchSize, p.TopKPos, p.TopKDesc, p.TopKN, p.Label, p.Stats,
			func(runCtx context.Context, bound parallel.TopKBound, emit parallel.EmitFunc) error {
				return parallel.DivideStreamTopK(runCtx, algo, dividend, divisor, p.Workers, bound, p.tuning(), emit)
			})
		return nil
	}
	p.ex = startExchange(ctx, p.Buffer, func(exCtx context.Context, send func([]relation.Tuple) error) error {
		return parallel.DivideStream(exCtx, algo, dividend, divisor, p.Workers, p.tuning(),
			func(part int, batch []relation.Tuple) error {
				if err := send(batch); err != nil {
					return err
				}
				p.Stats.count(partLabel(p.Label, part), int64(len(batch)))
				return nil
			})
	})
	return nil
}

// openBudgeted is Open under a memory budget: the divisor is drained
// charged (it is replicated to every worker and must fit), the
// dividend hash-partitioned on A straight off its child — streamed,
// never materialized whole before partitioning — and the workers run
// over the charged partitions. If the partitions themselves exceed the
// budget the operator falls back to the sequential grace division,
// which spills the dividend to temp-file runs.
func (p *ParallelDivideIter) openBudgeted(ctx context.Context, split division.Split, algo division.Algorithm) error {
	dividendSch, divisorSch := p.Dividend.Schema(), p.Divisor.Schema()
	aPos := dividendSch.Positions(split.A.Attrs())
	g := newGraceDivide(p.Spill, aPos, p.Every,
		func() (divSpillState, error) { return division.NewDivideState(dividendSch, divisorSch) })
	p.grace, p.gctx = g, ctx

	if err := p.Divisor.Open(ctx); err != nil {
		return err
	}
	if err := drainEveryErr(ctx, p.Divisor, p.Every, g.addDivisor); err != nil {
		return err
	}
	if err := p.Dividend.Open(ctx); err != nil {
		return err
	}
	w := p.Workers
	if w <= 0 {
		w = parallel.DefaultWorkers()
	}
	parts := make([]*relation.Relation, w)
	for i := range parts {
		parts[i] = relation.New(dividendSch)
	}
	hp := &hashPartitioner{pos: aPos, emit: func(t relation.Tuple, h uint64) error {
		if p.fb {
			return g.addDividend(ctx, t)
		}
		fp := t.Footprint()
		err := p.Spill.Charge(fp)
		if err == nil {
			p.charged += fp
			parts[int(h%uint64(w))].InsertOwned(t)
			return nil
		}
		if !errors.Is(err, spill.ErrBudget) {
			return err
		}
		// Budget hit mid-partitioning: hand everything to the grace
		// divider, which re-buffers (and spills) under its own charge.
		p.fb = true
		p.Spill.Release(p.charged)
		p.charged = 0
		for _, part := range parts {
			for _, pt := range part.Tuples() {
				if err := g.addDividend(ctx, pt); err != nil {
					return err
				}
			}
		}
		parts = nil
		return g.addDividend(ctx, t)
	}}
	if err := drainEveryErr(ctx, p.Dividend, p.Every, hp.add); err != nil {
		return err
	}
	if err := hp.flush(); err != nil {
		return err
	}
	if p.fb {
		if err := g.finish(ctx); err != nil {
			return err
		}
		if p.TopKN > 0 {
			top, err := topKFromGrace(ctx, g, p.TopKPos, p.TopKDesc, p.TopKN)
			if err != nil {
				return err
			}
			p.fallback, p.fPos, p.fbTopK = top, 0, true
		}
		return nil
	}
	live := parts[:0]
	for _, part := range parts {
		if !part.Empty() {
			live = append(live, part)
		}
	}
	divisor := relation.New(divisorSch)
	for _, t := range g.divisor {
		divisor.InsertOwned(t)
	}
	if p.TopKN > 0 {
		p.ex = startTopKExchange(ctx, p.Buffer, p.BatchSize, p.TopKPos, p.TopKDesc, p.TopKN, p.Label, p.Stats,
			func(runCtx context.Context, bound parallel.TopKBound, emit parallel.EmitFunc) error {
				return parallel.DividePartsStream(runCtx, algo, live, divisor, &bound, p.tuning(), emit)
			})
		return nil
	}
	p.ex = startExchange(ctx, p.Buffer, func(exCtx context.Context, send func([]relation.Tuple) error) error {
		return parallel.DividePartsStream(exCtx, algo, live, divisor, nil, p.tuning(),
			func(part int, batch []relation.Tuple) error {
				if err := send(batch); err != nil {
					return err
				}
				p.Stats.count(partLabel(p.Label, part), int64(len(batch)))
				return nil
			})
	})
	return nil
}

// OpenBatch implements BatchIterator.
func (p *ParallelDivideIter) OpenBatch(ctx context.Context) error { return p.Open(ctx) }

// Next implements Iterator.
func (p *ParallelDivideIter) Next() (relation.Tuple, bool, error) {
	if p.fbTopK {
		if p.fPos >= len(p.fallback) {
			return nil, false, nil
		}
		t := p.fallback[p.fPos]
		p.fPos++
		p.Stats.count(p.Label, 1)
		return t, true, nil
	}
	if p.fb {
		t, ok, err := p.grace.next(p.gctx)
		if ok {
			p.Stats.count(p.Label, 1)
		}
		return t, ok, err
	}
	if p.ex == nil {
		return nil, false, errNotOpen("ParallelDivideIter")
	}
	t, ok, err := p.ex.next()
	if !ok {
		return nil, false, err
	}
	p.Stats.count(p.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator: the workers' emission batches
// flow through untouched, capped by any armed row budget.
func (p *ParallelDivideIter) NextBatch() (*relation.Batch, error) {
	if p.fbTopK {
		b := p.window(p.fallback, &p.fPos)
		if b != nil {
			p.Stats.count(p.Label, int64(b.Len()))
		}
		return b, nil
	}
	if p.fb {
		return graceBatch(p.grace, p.gctx, &p.windowBatcher, p.Stats, p.Label)
	}
	if p.ex == nil {
		return nil, errNotOpen("ParallelDivideIter")
	}
	ts, err := p.ex.nextBatch(int(p.budget))
	if ts == nil {
		return nil, err
	}
	p.Stats.count(p.Label, int64(len(ts)))
	return p.adopt(ts), nil
}

// Close implements Iterator. It cancels the exchange and blocks until
// every partition worker has exited, so mid-stream teardown leaves no
// goroutines behind.
func (p *ParallelDivideIter) Close() error {
	if p.ex != nil {
		p.ex.stop()
		p.ex = nil
	}
	if p.grace != nil {
		p.grace.close()
		p.grace = nil
	}
	p.Spill.Release(p.charged)
	p.charged = 0
	p.fallback, p.fb, p.fbTopK = nil, false, false
	p.release()
	err1 := p.Dividend.Close()
	err2 := p.Divisor.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator. It is derived from the children's
// schemas so parents may call it before Open.
func (p *ParallelDivideIter) Schema() schema.Schema {
	if p.out.Len() == 0 {
		split, err := division.SmallSplit(p.Dividend.Schema(), p.Divisor.Schema())
		if err != nil {
			panic(err)
		}
		p.out = split.A
	}
	return p.out
}

// ParallelGreatDivideIter is the streaming exchange operator for
// plan.ParallelGreatDivide: the dividend is replicated, the divisor
// hash-partitioned on its group attributes C (Law 13, whose
// πC-disjointness premise the partitioning establishes by
// construction), and one worker per partition great-divides and
// streams its quotient tuples into the exchange channel; see
// ParallelDivideIter for the exchange mechanics.
type ParallelGreatDivideIter struct {
	Label             string
	Dividend, Divisor Iterator
	Algo              division.Algorithm
	Workers           int
	// Buffer is the exchange channel capacity; 0 means
	// DefaultExchangeBuffer.
	Buffer int
	// TopKN/TopKPos/TopKDesc enable the order-aware top-k exchange;
	// see ParallelDivideIter.
	TopKN    int64
	TopKPos  []int
	TopKDesc []bool
	Stats    *Stats
	// Every is the cooperative ctx-poll interval of the input drains
	// and worker feed loops, in tuples; 0 means DefaultCheckEvery.
	Every int
	// Spill, when non-nil, budgets the exchange: the divisor is
	// hash-partitioned on C while draining (streamed, charged) instead
	// of materialized first, and on budget pressure the operator
	// degrades to the sequential grace great-division.
	Spill *spill.Tracker
	windowBatcher

	out schema.Schema
	ex  *exchange

	charged  int64
	grace    *graceDivide
	gctx     context.Context
	fb       bool
	fallback []relation.Tuple
	fbTopK   bool
	fPos     int
}

// tuning bundles the iterator's knobs for the parallel fan-out.
func (g *ParallelGreatDivideIter) tuning() parallel.Tuning {
	return parallel.Tuning{BatchSize: g.BatchSize, CheckEvery: g.Every}
}

// Open implements Iterator.
func (g *ParallelGreatDivideIter) Open(ctx context.Context) error {
	split, err := division.GreatSplit(g.Dividend.Schema(), g.Divisor.Schema())
	if err != nil {
		return err
	}
	algo := g.Algo
	if algo == "" {
		algo = division.GreatAlgoHash
	}
	if g.Spill != nil {
		g.out = split.A.Concat(split.C)
		return g.openBudgeted(ctx, split, algo)
	}
	dividend, err := drainChild(ctx, g.Dividend, g.Every)
	if err != nil {
		return err
	}
	divisor, err := drainChild(ctx, g.Divisor, g.Every)
	if err != nil {
		return err
	}
	g.out = split.A.Concat(split.C)
	if g.TopKN > 0 {
		g.ex = startTopKExchange(ctx, g.Buffer, g.BatchSize, g.TopKPos, g.TopKDesc, g.TopKN, g.Label, g.Stats,
			func(runCtx context.Context, bound parallel.TopKBound, emit parallel.EmitFunc) error {
				return parallel.GreatDivideStreamTopK(runCtx, algo, dividend, divisor, g.Workers, bound, g.tuning(), emit)
			})
		return nil
	}
	g.ex = startExchange(ctx, g.Buffer, func(exCtx context.Context, send func([]relation.Tuple) error) error {
		return parallel.GreatDivideStream(exCtx, algo, dividend, divisor, g.Workers, g.tuning(),
			func(part int, batch []relation.Tuple) error {
				if err := send(batch); err != nil {
					return err
				}
				g.Stats.count(partLabel(g.Label, part), int64(len(batch)))
				return nil
			})
	})
	return nil
}

// partitionChunk is the number of tuples a hashPartitioner hashes per
// Hash64ProjBatch pass.
const partitionChunk = 256

// hashPartitioner chunks a per-tuple drain so partition hashes are
// computed batch-at-a-time: tuples buffer until a chunk fills, the
// whole chunk's key hashes come out of one Hash64ProjBatch pass, and
// emit receives each (tuple, hash) pair in arrival order. The caller
// must flush after the drain to push out the final partial chunk.
type hashPartitioner struct {
	pos    []int
	emit   func(t relation.Tuple, h uint64) error
	buf    []relation.Tuple
	hashes []uint64
}

func (hp *hashPartitioner) add(t relation.Tuple) error {
	hp.buf = append(hp.buf, t)
	if len(hp.buf) >= partitionChunk {
		return hp.flush()
	}
	return nil
}

func (hp *hashPartitioner) flush() error {
	if len(hp.buf) == 0 {
		return nil
	}
	hp.hashes = relation.Hash64ProjBatch(hp.buf, hp.pos, hp.hashes[:0])
	for i, t := range hp.buf {
		if err := hp.emit(t, hp.hashes[i]); err != nil {
			hp.buf = hp.buf[:0]
			return err
		}
	}
	hp.buf = hp.buf[:0]
	return nil
}

// openBudgeted is Open under a memory budget: the dividend is drained
// charged (it is replicated to every worker), the divisor
// hash-partitioned on its group attributes C straight off its child —
// preserving Law 13's πC-disjointness — and the workers run over the
// charged partitions. On budget pressure the operator falls back to
// the sequential grace great-division, which spills the dividend.
func (g *ParallelGreatDivideIter) openBudgeted(ctx context.Context, split division.Split, algo division.Algorithm) error {
	dividendSch, divisorSch := g.Dividend.Schema(), g.Divisor.Schema()
	aPos := dividendSch.Positions(split.A.Attrs())
	cPos := divisorSch.Positions(split.C.Attrs())
	gd := newGraceDivide(g.Spill, aPos, g.Every,
		func() (divSpillState, error) { return division.NewGreatDivideState(dividendSch, divisorSch) })
	g.grace, g.gctx = gd, ctx

	// The dividend is the replicated side here: buffer it charged, and
	// degrade to the grace division (which spills it) on overflow.
	if err := g.Dividend.Open(ctx); err != nil {
		return err
	}
	dividend := relation.New(dividendSch)
	if err := drainEveryErr(ctx, g.Dividend, g.Every, func(t relation.Tuple) error {
		if g.fb {
			return gd.addDividend(ctx, t)
		}
		fp := t.Footprint()
		err := g.Spill.Charge(fp)
		if err == nil {
			g.charged += fp
			dividend.InsertOwned(t)
			return nil
		}
		if !errors.Is(err, spill.ErrBudget) {
			return err
		}
		g.fb = true
		g.Spill.Release(g.charged)
		g.charged = 0
		for _, dt := range dividend.Tuples() {
			if err := gd.addDividend(ctx, dt); err != nil {
				return err
			}
		}
		dividend = nil
		return gd.addDividend(ctx, t)
	}); err != nil {
		return err
	}

	if err := g.Divisor.Open(ctx); err != nil {
		return err
	}
	w := g.Workers
	if w <= 0 {
		w = parallel.DefaultWorkers()
	}
	parts := make([]*relation.Relation, w)
	for i := range parts {
		parts[i] = relation.New(divisorSch)
	}
	hp := &hashPartitioner{pos: cPos, emit: func(t relation.Tuple, h uint64) error {
		if g.fb {
			return gd.addDivisor(t)
		}
		fp := t.Footprint()
		err := g.Spill.Charge(fp)
		if err == nil {
			g.charged += fp
			parts[int(h%uint64(w))].InsertOwned(t)
			return nil
		}
		if !errors.Is(err, spill.ErrBudget) {
			return err
		}
		// Budget hit while partitioning the divisor: hand everything
		// to the grace divider. It retains the divisor in memory, so a
		// divisor that genuinely cannot fit fails with a budget error.
		g.fb = true
		g.Spill.Release(g.charged)
		g.charged = 0
		for _, dt := range dividend.Tuples() {
			if err := gd.addDividend(ctx, dt); err != nil {
				return err
			}
		}
		dividend = nil
		for _, part := range parts {
			for _, pt := range part.Tuples() {
				if err := gd.addDivisor(pt); err != nil {
					return err
				}
			}
		}
		parts = nil
		return gd.addDivisor(t)
	}}
	if err := drainEveryErr(ctx, g.Divisor, g.Every, hp.add); err != nil {
		return err
	}
	if err := hp.flush(); err != nil {
		return err
	}
	if g.fb {
		if err := gd.finish(ctx); err != nil {
			return err
		}
		if g.TopKN > 0 {
			top, err := topKFromGrace(ctx, gd, g.TopKPos, g.TopKDesc, g.TopKN)
			if err != nil {
				return err
			}
			g.fallback, g.fPos, g.fbTopK = top, 0, true
		}
		return nil
	}
	live := parts[:0]
	for _, part := range parts {
		if !part.Empty() {
			live = append(live, part)
		}
	}
	if g.TopKN > 0 {
		g.ex = startTopKExchange(ctx, g.Buffer, g.BatchSize, g.TopKPos, g.TopKDesc, g.TopKN, g.Label, g.Stats,
			func(runCtx context.Context, bound parallel.TopKBound, emit parallel.EmitFunc) error {
				return parallel.GreatDividePartsStream(runCtx, algo, dividend, live, &bound, g.tuning(), emit)
			})
		return nil
	}
	g.ex = startExchange(ctx, g.Buffer, func(exCtx context.Context, send func([]relation.Tuple) error) error {
		return parallel.GreatDividePartsStream(exCtx, algo, dividend, live, nil, g.tuning(),
			func(part int, batch []relation.Tuple) error {
				if err := send(batch); err != nil {
					return err
				}
				g.Stats.count(partLabel(g.Label, part), int64(len(batch)))
				return nil
			})
	})
	return nil
}

// OpenBatch implements BatchIterator.
func (g *ParallelGreatDivideIter) OpenBatch(ctx context.Context) error { return g.Open(ctx) }

// Next implements Iterator.
func (g *ParallelGreatDivideIter) Next() (relation.Tuple, bool, error) {
	if g.fbTopK {
		if g.fPos >= len(g.fallback) {
			return nil, false, nil
		}
		t := g.fallback[g.fPos]
		g.fPos++
		g.Stats.count(g.Label, 1)
		return t, true, nil
	}
	if g.fb {
		t, ok, err := g.grace.next(g.gctx)
		if ok {
			g.Stats.count(g.Label, 1)
		}
		return t, ok, err
	}
	if g.ex == nil {
		return nil, false, errNotOpen("ParallelGreatDivideIter")
	}
	t, ok, err := g.ex.next()
	if !ok {
		return nil, false, err
	}
	g.Stats.count(g.Label, 1)
	return t, true, nil
}

// NextBatch implements BatchIterator: the workers' emission batches
// flow through untouched, capped by any armed row budget.
func (g *ParallelGreatDivideIter) NextBatch() (*relation.Batch, error) {
	if g.fbTopK {
		b := g.window(g.fallback, &g.fPos)
		if b != nil {
			g.Stats.count(g.Label, int64(b.Len()))
		}
		return b, nil
	}
	if g.fb {
		return graceBatch(g.grace, g.gctx, &g.windowBatcher, g.Stats, g.Label)
	}
	if g.ex == nil {
		return nil, errNotOpen("ParallelGreatDivideIter")
	}
	ts, err := g.ex.nextBatch(int(g.budget))
	if ts == nil {
		return nil, err
	}
	g.Stats.count(g.Label, int64(len(ts)))
	return g.adopt(ts), nil
}

// Close implements Iterator; see ParallelDivideIter.Close.
func (g *ParallelGreatDivideIter) Close() error {
	if g.ex != nil {
		g.ex.stop()
		g.ex = nil
	}
	if g.grace != nil {
		g.grace.close()
		g.grace = nil
	}
	g.Spill.Release(g.charged)
	g.charged = 0
	g.fallback, g.fb, g.fbTopK = nil, false, false
	g.release()
	err1 := g.Dividend.Close()
	err2 := g.Divisor.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator. It is derived from the children's
// schemas so parents may call it before Open.
func (g *ParallelGreatDivideIter) Schema() schema.Schema {
	if g.out.Len() == 0 {
		split, err := division.GreatSplit(g.Dividend.Schema(), g.Divisor.Schema())
		if err != nil {
			panic(err)
		}
		g.out = split.A.Concat(split.C)
	}
	return g.out
}

// drainChild opens a child iterator and materializes it, honoring
// ctx cancellation via the shared drain loop (batch drains for
// batch-capable children).
func drainChild(ctx context.Context, it Iterator, every int) (*relation.Relation, error) {
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	out := relation.New(it.Schema())
	if err := drainEvery(ctx, it, every, func(t relation.Tuple) { out.InsertOwned(t) }); err != nil {
		return nil, err
	}
	return out, nil
}

// partLabel names partition i of a parallel operator in Stats.
func partLabel(label string, i int) string {
	return label + "/part" + strconv.Itoa(i)
}
