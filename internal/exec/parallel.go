package exec

import (
	"context"
	"strconv"

	"divlaws/internal/division"
	"divlaws/internal/parallel"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// ParallelDivideIter is the exchange-style physical operator for
// plan.ParallelDivide: it materializes both inputs, range-partitions
// the dividend on the quotient attributes A (Law 2 under c2, which
// the partitioning establishes by construction), divides each
// partition on its own goroutine, and merges the disjoint partial
// quotients. Per-partition output sizes are recorded in Stats under
// "<label>/part<i>".
type ParallelDivideIter struct {
	Label             string
	Dividend, Divisor Iterator
	// Algo is the per-partition algorithm; empty means hash-division.
	Algo division.Algorithm
	// Workers is the partition/goroutine count; 0 means GOMAXPROCS.
	Workers int
	Stats   *Stats

	out     schema.Schema
	results []relation.Tuple
	pos     int
	opened  bool
}

// Open implements Iterator.
func (p *ParallelDivideIter) Open(ctx context.Context) error {
	split, err := division.SmallSplit(p.Dividend.Schema(), p.Divisor.Schema())
	if err != nil {
		return err
	}
	dividend, err := drainChild(ctx, p.Dividend)
	if err != nil {
		return err
	}
	divisor, err := drainChild(ctx, p.Divisor)
	if err != nil {
		return err
	}
	algo := p.Algo
	if algo == "" {
		algo = division.AlgoHash
	}
	// The per-partition quotients are materialized intermediates of
	// the exchange, so they are counted as their own Stats operators
	// ("<label>/part<i>") in addition to the merged output the
	// operator itself emits — sequential divides have no such
	// intermediate layer.
	quotients, err := parallel.DividePartitionedCtx(ctx, algo, dividend, divisor, p.Workers)
	if err != nil {
		return err
	}
	merged := relation.New(split.A)
	for i, q := range quotients {
		p.Stats.count(partLabel(p.Label, i), int64(q.Len()))
		merged.InsertAll(q)
	}
	p.out = split.A
	p.results = merged.Tuples()
	p.pos = 0
	p.opened = true
	return nil
}

// Next implements Iterator.
func (p *ParallelDivideIter) Next() (relation.Tuple, bool, error) {
	if !p.opened {
		return nil, false, errNotOpen("ParallelDivideIter")
	}
	if p.pos >= len(p.results) {
		return nil, false, nil
	}
	t := p.results[p.pos]
	p.pos++
	p.Stats.count(p.Label, 1)
	return t, true, nil
}

// Close implements Iterator.
func (p *ParallelDivideIter) Close() error {
	p.results, p.opened = nil, false
	err1 := p.Dividend.Close()
	err2 := p.Divisor.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator. It is derived from the children's
// schemas so parents may call it before Open.
func (p *ParallelDivideIter) Schema() schema.Schema {
	if p.out.Len() == 0 {
		split, err := division.SmallSplit(p.Dividend.Schema(), p.Divisor.Schema())
		if err != nil {
			panic(err)
		}
		p.out = split.A
	}
	return p.out
}

// ParallelGreatDivideIter is the exchange-style physical operator
// for plan.ParallelGreatDivide: the dividend is replicated, the
// divisor hash-partitioned on its group attributes C (Law 13, whose
// πC-disjointness premise the partitioning establishes by
// construction), each partition great-divided on its own goroutine,
// and the partial quotients merged.
type ParallelGreatDivideIter struct {
	Label             string
	Dividend, Divisor Iterator
	Algo              division.Algorithm
	Workers           int
	Stats             *Stats

	out     schema.Schema
	results []relation.Tuple
	pos     int
	opened  bool
}

// Open implements Iterator.
func (g *ParallelGreatDivideIter) Open(ctx context.Context) error {
	split, err := division.GreatSplit(g.Dividend.Schema(), g.Divisor.Schema())
	if err != nil {
		return err
	}
	dividend, err := drainChild(ctx, g.Dividend)
	if err != nil {
		return err
	}
	divisor, err := drainChild(ctx, g.Divisor)
	if err != nil {
		return err
	}
	algo := g.Algo
	if algo == "" {
		algo = division.GreatAlgoHash
	}
	quotients, err := parallel.GreatDividePartitionedCtx(ctx, algo, dividend, divisor, g.Workers)
	if err != nil {
		return err
	}
	merged := relation.New(split.A.Concat(split.C))
	for i, q := range quotients {
		g.Stats.count(partLabel(g.Label, i), int64(q.Len()))
		merged.InsertAll(q)
	}
	g.out = split.A.Concat(split.C)
	g.results = merged.Tuples()
	g.pos = 0
	g.opened = true
	return nil
}

// Next implements Iterator.
func (g *ParallelGreatDivideIter) Next() (relation.Tuple, bool, error) {
	if !g.opened {
		return nil, false, errNotOpen("ParallelGreatDivideIter")
	}
	if g.pos >= len(g.results) {
		return nil, false, nil
	}
	t := g.results[g.pos]
	g.pos++
	g.Stats.count(g.Label, 1)
	return t, true, nil
}

// Close implements Iterator.
func (g *ParallelGreatDivideIter) Close() error {
	g.results, g.opened = nil, false
	err1 := g.Dividend.Close()
	err2 := g.Divisor.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator. It is derived from the children's
// schemas so parents may call it before Open.
func (g *ParallelGreatDivideIter) Schema() schema.Schema {
	if g.out.Len() == 0 {
		split, err := division.GreatSplit(g.Dividend.Schema(), g.Divisor.Schema())
		if err != nil {
			panic(err)
		}
		g.out = split.A.Concat(split.C)
	}
	return g.out
}

// drainChild opens a child iterator and materializes it, honoring
// ctx cancellation via the shared drain loop.
func drainChild(ctx context.Context, it Iterator) (*relation.Relation, error) {
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	out := relation.New(it.Schema())
	if err := drain(ctx, it, func(t relation.Tuple) { out.InsertOwned(t) }); err != nil {
		return nil, err
	}
	return out, nil
}

// partLabel names partition i of a parallel operator in Stats.
func partLabel(label string, i int) string {
	return label + "/part" + strconv.Itoa(i)
}
