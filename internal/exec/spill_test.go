package exec

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/plan"
	"divlaws/internal/relation"
	"divlaws/internal/spill"
)

// These tests pin the out-of-core invariant: execution under a memory
// budget is an exact drop-in for unlimited execution. Every plan
// shape from the batch-equivalence matrix is compiled against the
// unlimited tuple-path oracle and against budgets small enough to
// force sorts into external merge runs and the hash operators into
// grace partitioning — and compared tuple-for-tuple, on both the
// tuple and batch surfaces. Teardown hygiene (no leaked run files, no
// leaked goroutines) and fault injection (spill write/read failures
// surfacing as query errors) ride the same fixtures.

// drainSeqErr is drainSeq without the t.Fatal on pipeline errors,
// for paths where an error is the expected outcome.
func drainSeqErr(ctx context.Context, it Iterator) ([]relation.Tuple, error) {
	if err := it.Open(ctx); err != nil {
		it.Close()
		return nil, err
	}
	defer it.Close()
	var out []relation.Tuple
	for {
		tup, ok, err := it.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, tup)
	}
}

// TestSpillMatchesUnlimited is the equivalence sweep: every plan
// shape, drained under budgets that force out-of-core execution, must
// produce exactly what the unlimited oracle produces — the same
// sequence for ordered plans (external merge preserves the canonical
// tie-broken sort order), the same set otherwise — on both the tuple
// and forced-batch paths.
func TestSpillMatchesUnlimited(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	var totalSpilled int64
	for trial := 0; trial < 10; trial++ {
		for _, c := range equivPlans(rng) {
			want := seqKeys(drainSeq(t, CompileWith(c.node, nil,
				CompileOptions{Batch: BatchOff, MemoryLimit: -1})))
			for _, budget := range []int64{4 << 10, 32 << 10} {
				for _, mode := range []BatchMode{BatchOff, BatchForce} {
					tr := spill.NewTracker(budget)
					got := seqKeys(drainSeq(t, CompileWith(c.node, nil,
						CompileOptions{Batch: mode, Spill: tr})))
					totalSpilled += tr.Snapshot().Spilled
					if n := tr.LiveRuns(); n != 0 {
						t.Errorf("trial %d %s (budget %d): %d run files leaked", trial, c.name, budget, n)
					}
					tr.Close()
					if c.ordered && !sameSeq(got, want) {
						t.Fatalf("trial %d %s (budget %d, batch %v): sequence diverges\ngot  %v\nwant %v",
							trial, c.name, budget, mode, got, want)
					}
					if !c.ordered && sortedKeys(append([]string(nil), got...)) != sortedKeys(append([]string(nil), want...)) {
						t.Fatalf("trial %d %s (budget %d, batch %v): set diverges\ngot  %v\nwant %v",
							trial, c.name, budget, mode, got, want)
					}
				}
			}
		}
	}
	if totalSpilled == 0 {
		t.Fatal("no plan in the sweep ever spilled — the budgets are not forcing out-of-core execution")
	}
}

// spillAcceptanceData builds a dividend whose in-memory footprint is
// more than 10x the 1MB acceptance budget.
func spillAcceptanceData() (r1, r2 *relation.Relation) {
	r1, r2 = datagen.DividePair{
		Groups: 30000, GroupSize: 5, DivisorSize: 5,
		Domain: 40, HitRate: 0.9, Seed: 21,
	}.Generate()
	return r1, r2
}

// TestSpillAcceptanceOneMegabyte is the issue's acceptance check:
// with a 1MB budget, a sort and a hash division whose working set is
// more than 10x the budget complete with results identical to
// unlimited execution, the charged high-water mark never exceeds the
// budget, and the spill volume is the working set, not a token.
func TestSpillAcceptanceOneMegabyte(t *testing.T) {
	const budget = 1 << 20
	r1, r2 := spillAcceptanceData()
	var working int64
	for _, tup := range r1.Tuples() {
		working += tup.Footprint()
	}
	if working < 10*budget {
		t.Fatalf("fixture working set %d bytes, need > %d", working, 10*budget)
	}
	r1s := plan.NewScan("r1", r1)
	for _, c := range []struct {
		name    string
		node    plan.Node
		ordered bool
	}{
		{"sort", &plan.Sort{Input: r1s, Keys: []plan.SortKey{{Attr: "b"}, {Attr: "a", Desc: true}}}, true},
		{"divide", &plan.Divide{Dividend: r1s, Divisor: plan.NewScan("r2", r2)}, false},
	} {
		want := seqKeys(drainSeq(t, CompileWith(c.node, nil, CompileOptions{MemoryLimit: -1})))
		tr := spill.NewTracker(budget)
		got := seqKeys(drainSeq(t, CompileWith(c.node, nil, CompileOptions{Spill: tr})))
		st := tr.Snapshot()
		tr.Close()
		if c.ordered && !sameSeq(got, want) {
			t.Fatalf("%s: budgeted sequence diverges from unlimited", c.name)
		}
		if !c.ordered && sortedKeys(got) != sortedKeys(want) {
			t.Fatalf("%s: budgeted set diverges from unlimited", c.name)
		}
		if st.Peak > budget {
			t.Errorf("%s: charged peak %d exceeds the %d budget", c.name, st.Peak, budget)
		}
		// Spilled counts encoded on-disk bytes (varint-packed, several
		// times smaller than the in-memory footprint); many multiples
		// of the budget still proves the bulk of the input went out of
		// core rather than a token run.
		if st.Spilled < 2*budget {
			t.Errorf("%s: only %d bytes spilled for a %d-byte working set", c.name, st.Spilled, working)
		}
	}
}

// TestSpillTempFileHygiene asserts the leak invariant on every
// teardown path: after a full drain, an early Close, or a mid-merge
// cancellation, no run files survive in the spill directory, and
// closing the tracker removes the directory itself.
func TestSpillTempFileHygiene(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rel := randRelation(rng, []string{"a", "b"}, 2000, 500)
	node := &plan.Sort{Input: plan.NewScan("r", rel), Keys: []plan.SortKey{{Attr: "a"}}}
	const budget = 8 << 10

	check := func(t *testing.T, tr *spill.Tracker) {
		t.Helper()
		if n := tr.LiveRuns(); n != 0 {
			t.Errorf("%d run files still open", n)
		}
		dir := tr.Dir()
		if dir != "" {
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("spill dir unreadable: %v", err)
			}
			if len(ents) != 0 {
				t.Errorf("%d files left in the spill dir after teardown", len(ents))
			}
		}
		if err := tr.Close(); err != nil {
			t.Errorf("tracker Close: %v", err)
		}
		if dir != "" {
			if _, err := os.Stat(dir); !os.IsNotExist(err) {
				t.Errorf("spill dir %s survives tracker Close", dir)
			}
		}
	}

	t.Run("FullDrain", func(t *testing.T) {
		tr := spill.NewTracker(budget)
		out, err := drainSeqErr(context.Background(), CompileWith(node, nil, CompileOptions{Spill: tr}))
		if err != nil || len(out) != rel.Len() {
			t.Fatalf("drain = (%d rows, %v), want %d", len(out), err, rel.Len())
		}
		if tr.Snapshot().Spilled == 0 {
			t.Fatal("fixture did not spill")
		}
		check(t, tr)
	})

	t.Run("CloseMidStream", func(t *testing.T) {
		tr := spill.NewTracker(budget)
		it := CompileWith(node, nil, CompileOptions{Spill: tr})
		if err := it.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, ok, err := it.Next(); !ok || err != nil {
				t.Fatalf("Next %d = (%t, %v)", i, ok, err)
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		check(t, tr)
	})

	t.Run("CancelMidMerge", func(t *testing.T) {
		tr := spill.NewTracker(budget)
		it := CompileWith(node, nil, CompileOptions{Spill: tr})
		ctx, cancel := context.WithCancel(context.Background())
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := it.Next(); !ok || err != nil {
			t.Fatalf("first Next = (%t, %v)", ok, err)
		}
		cancel()
		// The merge polls the context every Every tuples; it must stop
		// with the cancellation error, not run to completion.
		var err error
		for i := 0; i < rel.Len(); i++ {
			var ok bool
			if _, ok, err = it.Next(); err != nil || !ok {
				break
			}
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled merge ended with %v, want context.Canceled", err)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		check(t, tr)
	})

	t.Run("GraceDivideWorkerError", func(t *testing.T) {
		// A budgeted parallel divide that overflows into the inline
		// grace fallback, then cancelled mid-output: run files and
		// exchange goroutines must both die.
		baseline := runtime.NumGoroutine()
		fixture, _ := streamFixture()
		tr := spill.NewTracker(16 << 10)
		it := CompileWith(fixture, nil, CompileOptions{Spill: tr})
		ctx, cancel := context.WithCancel(context.Background())
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := it.Next(); !ok || err != nil {
			t.Fatalf("first Next = (%t, %v)", ok, err)
		}
		cancel()
		for {
			if _, ok, err := it.Next(); err != nil || !ok {
				break
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		check(t, tr)
		waitGoroutines(t, baseline)
	})
}

// TestSpillBudgetedExchangeTeardown mirrors the exchange leak tests
// for the budgeted partitioned path (budget large enough that the
// exchange runs partitioned, with its inputs charged): workers must
// die and charges drain on every teardown path.
func TestSpillBudgetedExchangeTeardown(t *testing.T) {
	fixture, quotientLen := streamFixture()
	const budget = 8 << 20 // roomy: the partitioned exchange, not the fallback

	t.Run("FullDrain", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		tr := spill.NewTracker(budget)
		out, err := drainSeqErr(context.Background(), CompileWith(fixture, nil, CompileOptions{Spill: tr}))
		if err != nil || len(out) != quotientLen {
			t.Fatalf("drain = (%d rows, %v), want %d", len(out), err, quotientLen)
		}
		if st := tr.Snapshot(); st.Used != 0 {
			t.Errorf("%d bytes still charged after Close", st.Used)
		}
		tr.Close()
		waitGoroutines(t, baseline)
	})

	t.Run("CloseMidStream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		tr := spill.NewTracker(budget)
		it := CompileWith(fixture, nil, CompileOptions{Spill: tr})
		if err := it.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := it.Next(); !ok || err != nil {
				t.Fatalf("Next %d = (%t, %v)", i, ok, err)
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if st := tr.Snapshot(); st.Used != 0 {
			t.Errorf("%d bytes still charged after Close", st.Used)
		}
		tr.Close()
		waitGoroutines(t, baseline)
	})
}

// TestSpillIOErrorsSurface injects temp-file write and read failures
// and asserts they surface as query errors wrapping spill.ErrIO — on
// the operator that spilled, promptly, never as a hang or a panic —
// and that teardown still leaves no run files behind.
func TestSpillIOErrorsSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	rel := randRelation(rng, []string{"a", "b"}, 2000, 500)
	sortNode := &plan.Sort{Input: plan.NewScan("r", rel), Keys: []plan.SortKey{{Attr: "a"}}}
	divNode := &plan.Divide{
		Dividend: plan.NewScan("r1", rel),
		Divisor:  plan.NewScan("r2", randRelation(rng, []string{"b"}, 2, 500)),
	}
	const budget = 8 << 10

	expectIO := func(t *testing.T, node plan.Node, arm func(*spill.Tracker)) {
		t.Helper()
		tr := spill.NewTracker(budget)
		arm(tr)
		_, err := drainSeqErr(context.Background(), CompileWith(node, nil, CompileOptions{Spill: tr}))
		if !errors.Is(err, spill.ErrIO) {
			t.Fatalf("injected spill I/O fault surfaced as %v, want spill.ErrIO", err)
		}
		if n := tr.LiveRuns(); n != 0 {
			t.Errorf("%d run files leaked after the injected failure", n)
		}
		tr.Close()
	}

	t.Run("SortWriteFails", func(t *testing.T) {
		expectIO(t, sortNode, func(tr *spill.Tracker) { tr.FailWriteAfter(10) })
	})
	t.Run("SortReadFails", func(t *testing.T) {
		expectIO(t, sortNode, func(tr *spill.Tracker) { tr.FailReadAfter(10) })
	})
	t.Run("DivideWriteFails", func(t *testing.T) {
		expectIO(t, divNode, func(tr *spill.Tracker) { tr.FailWriteAfter(10) })
	})
	t.Run("DivideReadFails", func(t *testing.T) {
		expectIO(t, divNode, func(tr *spill.Tracker) { tr.FailReadAfter(10) })
	})
}

// TestSpillBudgetErrorTyped: a budget below the irreducible state —
// here, smaller than the divisor itself — must fail with an error
// wrapping spill.ErrBudget, never succeed quietly or hang.
func TestSpillBudgetErrorTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	node := &plan.Divide{
		Dividend: plan.NewScan("r1", randRelation(rng, []string{"a", "b"}, 500, 50)),
		Divisor:  plan.NewScan("r2", randRelation(rng, []string{"b"}, 4, 50)),
	}
	tr := spill.NewTracker(64)
	defer tr.Close()
	_, err := drainSeqErr(context.Background(), CompileWith(node, nil, CompileOptions{Spill: tr}))
	if !errors.Is(err, spill.ErrBudget) {
		t.Fatalf("64-byte budget produced %v, want spill.ErrBudget", err)
	}
}

// TestSpillOwnedTrackerClosedByRoot: when CompileWith builds the
// tracker itself (MemoryLimit set, no caller tracker), the root
// iterator's Close must remove the temp directory — the caller never
// sees the tracker, so nobody else can.
func TestSpillOwnedTrackerClosedByRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	rel := randRelation(rng, []string{"a", "b"}, 2000, 500)
	node := &plan.Sort{Input: plan.NewScan("r", rel), Keys: []plan.SortKey{{Attr: "a"}}}
	it := CompileWith(node, nil, CompileOptions{MemoryLimit: 8 << 10})
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("Next = (%t, %v)", ok, err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// The tracker is unreachable; the observable invariant is that no
	// divlaws spill directory accumulates entries. Weak but honest:
	// Close is also exercised with a visible tracker in
	// TestSpillTempFileHygiene; here we assert Close is idempotent
	// through the wrapper.
	if err := it.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// BenchmarkSpillPeakAlloc reports the live-heap high-water mark of a
// budgeted external sort over a working set ~13x its 1MB budget,
// alongside the run time. The charged peak is asserted (≤ budget) in
// TestSpillAcceptanceOneMegabyte; here the benchmark surfaces what
// the Go heap actually does — sampled post-GC, so the number is live
// bytes, not allocation churn.
func BenchmarkSpillPeakAlloc(b *testing.B) {
	r1, _ := spillAcceptanceData()
	node := &plan.Sort{Input: plan.NewScan("r1", r1), Keys: []plan.SortKey{{Attr: "b"}}}
	const budget = 1 << 20
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := CompileWith(node, nil, CompileOptions{MemoryLimit: budget})
		if err := it.Open(context.Background()); err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, ok, err := it.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
			if rows%50000 == 0 {
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if d := ms.HeapAlloc - base.HeapAlloc; ms.HeapAlloc > base.HeapAlloc && d > peak {
					peak = d
				}
			}
		}
		it.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(peak), "peak-heap-B")
	b.ReportMetric(float64(budget), "budget-B")
}
