package exec

import (
	"context"
	"testing"

	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// TestIteratorCloseSafety audits every physical operator for the
// Close protocol: Close before Open must be a harmless no-op (a
// parent that fails partway through Open closes all its children,
// opened or not), and Close must be idempotent. Regression test for
// the ThetaJoinIter nil-pointer panic on Close-before-Open.
func TestIteratorCloseSafety(t *testing.T) {
	ab := relation.New(schema.New("a", "b"))
	ab2 := relation.New(schema.New("a", "b"))
	bOnly := relation.New(schema.New("b"))
	bc := relation.New(schema.New("b", "c"))
	cd := relation.New(schema.New("c", "d"))
	for i := int64(0); i < 6; i++ {
		ab.Insert(relation.Tuple{value.Int(i % 3), value.Int(i)})
		ab2.Insert(relation.Tuple{value.Int(i % 2), value.Int(i)})
		cd.Insert(relation.Tuple{value.Int(i), value.Int(i + 1)})
	}
	bOnly.Insert(relation.Tuple{value.Int(1)})
	bc.Insert(relation.Tuple{value.Int(1), value.Int(2)})

	scan := func(r *relation.Relation) Iterator { return &ScanIter{Label: "scan", Rel: r} }

	cases := []struct {
		name string
		mk   func() Iterator
	}{
		{"ScanIter", func() Iterator { return scan(ab) }},
		{"FilterIter", func() Iterator {
			return &FilterIter{Label: "f", Input: scan(ab), Pred: pred.Literal(true)}
		}},
		{"ProjectIter", func() Iterator {
			return &ProjectIter{Label: "p", Input: scan(ab), Attrs: []string{"a"}}
		}},
		{"UnionIter", func() Iterator {
			return &UnionIter{Label: "u", Left: scan(ab), Right: scan(ab2)}
		}},
		{"HashSetOpIter", func() Iterator {
			return &HashSetOpIter{Label: "s", Left: scan(ab), Right: scan(ab2), Keep: true}
		}},
		{"ProductIter", func() Iterator {
			return &ProductIter{Label: "x", Left: scan(ab), Right: scan(cd)}
		}},
		{"HashJoinIter", func() Iterator {
			return &HashJoinIter{Label: "j", Left: scan(ab), Right: scan(bc)}
		}},
		{"SemiJoinIter", func() Iterator {
			return &SemiJoinIter{Label: "sj", Left: scan(ab), Right: scan(bc), Keep: true}
		}},
		{"ThetaJoinIter", func() Iterator {
			return &ThetaJoinIter{Label: "tj", Left: scan(ab), Right: scan(cd), Pred: pred.Literal(true)}
		}},
		{"HashDivideIter", func() Iterator {
			return &HashDivideIter{Label: "hd", Dividend: scan(ab), Divisor: scan(bOnly)}
		}},
		{"MergeGroupDivideIter", func() Iterator {
			return &MergeGroupDivideIter{Label: "md", Dividend: scan(ab), Divisor: scan(bOnly)}
		}},
		{"GreatDivideIter", func() Iterator {
			return &GreatDivideIter{Label: "gd", Dividend: scan(ab), Divisor: scan(bc)}
		}},
		{"ParallelDivideIter", func() Iterator {
			return &ParallelDivideIter{Label: "pd", Dividend: scan(ab), Divisor: scan(bOnly), Workers: 2}
		}},
		{"ParallelGreatDivideIter", func() Iterator {
			return &ParallelGreatDivideIter{Label: "pgd", Dividend: scan(ab), Divisor: scan(bc), Workers: 2}
		}},
		{"GroupIter", func() Iterator {
			return &GroupIter{Label: "g", Input: scan(ab), By: []string{"a"}}
		}},
		{"LimitIter", func() Iterator {
			return &LimitIter{Label: "l", Input: scan(ab), N: 2}
		}},
		{"LimitIterZero", func() Iterator {
			return &LimitIter{Label: "l0", Input: scan(ab), N: 0}
		}},
		{"SortIter", func() Iterator {
			return &SortIter{Label: "so", Input: scan(ab)}
		}},
		{"RenameIter", func() Iterator {
			return &RenameIter{Input: scan(ab), From: "a", To: "z"}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Close before Open must neither panic nor error.
			it := tc.mk()
			if err := it.Close(); err != nil {
				t.Errorf("Close before Open: %v", err)
			}
			// And must stay idempotent even then.
			if err := it.Close(); err != nil {
				t.Errorf("second Close before Open: %v", err)
			}

			// Full lifecycle, then double Close.
			it = tc.mk()
			if err := it.Open(context.Background()); err != nil {
				t.Fatalf("Open: %v", err)
			}
			for {
				_, ok, err := it.Next()
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
				if !ok {
					break
				}
			}
			if err := it.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := it.Close(); err != nil {
				t.Errorf("Close twice: %v", err)
			}

			// Next after Close must not panic; it may report an error
			// or end-of-stream, but never a tuple.
			if tup, ok, _ := it.Next(); ok {
				t.Errorf("Next after Close produced a tuple: %v", tup)
			}
		})
	}
}
