// Package fuzzy implements division over fuzzy relations, the
// extension the paper surveys in its related work (§6, after Bosc,
// Dubois, Pivert & Prade and Yager): tuples carry membership grades
// in [0, 1], and the quotient grade of a candidate a is an
// aggregation of implication values
//
//	µ(a) = Agg_{b ∈ support(r2)} ( µ_r2(b) → µ_r1(a, b) )
//
// With the minimum aggregation and any residuated implication this
// is the standard fuzzy division; replacing the minimum with an
// ordered weighted average (OWA) realizes Yager's relaxed "almost
// all" quantifier — the fuzzy quotient operator the paper cites.
// Crisp relations (grades exactly 0 or 1) reduce to the classical
// small divide, which the tests verify against package division.
package fuzzy

import (
	"fmt"
	"math"
	"sort"

	"divlaws/internal/division"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
)

// Implication is a fuzzy implication operator x → y over [0, 1].
type Implication func(x, y float64) float64

// Goedel is the Gödel implication: 1 if x ≤ y, else y.
func Goedel(x, y float64) float64 {
	if x <= y {
		return 1
	}
	return y
}

// Goguen is the Goguen (product-residuum) implication:
// 1 if x ≤ y, else y/x.
func Goguen(x, y float64) float64 {
	if x <= y {
		return 1
	}
	return y / x
}

// Lukasiewicz is the Łukasiewicz implication: min(1, 1 − x + y).
func Lukasiewicz(x, y float64) float64 {
	return math.Min(1, 1-x+y)
}

// KleeneDienes is the Kleene-Dienes implication: max(1 − x, y).
func KleeneDienes(x, y float64) float64 {
	return math.Max(1-x, y)
}

// Relation is a fuzzy relation: a set of tuples with membership
// grades. Inserting a tuple twice keeps the maximum grade (fuzzy
// set union semantics). Tuple identity runs through the engine's
// 64-bit TupleIndex — no per-tuple key strings.
type Relation struct {
	sch    schema.Schema
	ix     relation.TupleIndex
	grades []float64 // per tuple id
}

// NewRelation returns an empty fuzzy relation over the schema.
func NewRelation(sch schema.Schema) *Relation {
	return &Relation{sch: sch}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() schema.Schema { return r.sch }

// Len returns the number of tuples with positive grade.
func (r *Relation) Len() int { return r.ix.Len() }

// Insert adds a tuple with the given grade, keeping the maximum
// grade on duplicates. Grades outside [0, 1] panic; a zero grade is
// ignored (a fuzzy set's support excludes grade-0 elements).
func (r *Relation) Insert(t relation.Tuple, grade float64) {
	if grade < 0 || grade > 1 {
		panic(fmt.Sprintf("fuzzy: grade %g outside [0, 1]", grade))
	}
	if len(t) != r.sch.Len() {
		panic(fmt.Sprintf("fuzzy: arity %d tuple into schema %v", len(t), r.sch))
	}
	if grade == 0 {
		return
	}
	if id := r.ix.Lookup(t); id >= 0 {
		if grade > r.grades[id] {
			r.grades[id] = grade
		}
		return
	}
	r.ix.ID(t.Clone())
	r.grades = append(r.grades, grade)
}

// Grade returns the membership grade of t (0 when absent).
func (r *Relation) Grade(t relation.Tuple) float64 {
	if id := r.ix.Lookup(t); id >= 0 {
		return r.grades[id]
	}
	return 0
}

// Each visits tuples and grades in insertion order. The tuples are
// owned by the relation and must not be mutated.
func (r *Relation) Each(fn func(t relation.Tuple, grade float64)) {
	for id, t := range r.ix.Keys() {
		fn(t, r.grades[id])
	}
}

// FromCrisp lifts a classical relation to a fuzzy one with grade 1
// everywhere.
func FromCrisp(r *relation.Relation) *Relation {
	out := NewRelation(r.Schema())
	for _, t := range r.Tuples() {
		out.Insert(t, 1)
	}
	return out
}

// Cut returns the α-cut as a crisp relation: tuples with grade ≥
// alpha.
func (r *Relation) Cut(alpha float64) *relation.Relation {
	out := relation.New(r.sch)
	r.Each(func(t relation.Tuple, g float64) {
		if g >= alpha {
			out.Insert(t)
		}
	})
	return out
}

// Divide computes the fuzzy quotient with the minimum aggregation:
//
//	µ(a) = min_{b ∈ support(r2)} impl(µ_r2(b), µ_r1(a, b))
//
// over the same A/B schema conventions as the crisp small divide.
// Candidates are the A-projections of r1's support; their quotient
// grade is capped by their own maximal tuple grade, keeping the
// crisp reduction exact.
func Divide(r1, r2 *Relation, impl Implication) *Relation {
	split, err := division.SmallSplit(r1.sch, r2.sch)
	if err != nil {
		panic(err)
	}
	return divide(r1, r2, split, func(impls []float64) float64 {
		m := 1.0
		for _, v := range impls {
			if v < m {
				m = v
			}
		}
		return m
	}, impl)
}

// OWADivide computes Yager's fuzzy quotient: the implication values
// are aggregated with an ordered weighted average instead of the
// minimum, realizing relaxed universal quantifiers such as "almost
// all". weights must be nonnegative and sum to 1; weights
// concentrated on the smallest values approach the strict
// quantifier, weights spread out relax it.
func OWADivide(r1, r2 *Relation, impl Implication, weights []float64) *Relation {
	split, err := division.SmallSplit(r1.sch, r2.sch)
	if err != nil {
		panic(err)
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("fuzzy: negative OWA weight")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("fuzzy: OWA weights sum to %g, want 1", sum))
	}
	return divide(r1, r2, split, func(impls []float64) float64 {
		if len(impls) != len(weights) {
			panic(fmt.Sprintf("fuzzy: %d OWA weights for %d divisor tuples", len(weights), len(impls)))
		}
		// OWA: sort descending, then weight positionally.
		sorted := append([]float64(nil), impls...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		total := 0.0
		for i, v := range sorted {
			total += weights[i] * v
		}
		return total
	}, impl)
}

// QuantifierWeights derives OWA weights from a monotone relative
// quantifier Q: [0,1] → [0,1] with Q(0) = 0, Q(1) = 1 (e.g. "almost
// all"): w_i = Q(i/n) − Q((i−1)/n). The classical "all" quantifier
// (Q = 1 at x = 1, else 0) puts all weight on the minimum.
func QuantifierWeights(q func(float64) float64, n int) []float64 {
	out := make([]float64, n)
	for i := 1; i <= n; i++ {
		out[i-1] = q(float64(i)/float64(n)) - q(float64(i-1)/float64(n))
	}
	return out
}

// AlmostAll is a standard relaxed quantifier: linear ramp from
// threshold lo to 1.
func AlmostAll(lo float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= lo {
			return 0
		}
		return (x - lo) / (1 - lo)
	}
}

// divide runs the shared candidate/implication machinery over the
// TupleIndex: the B universe is numbered once (divisor support
// first, then the dividend's B projections), each candidate keeps a
// dense per-B-id image of dividend grades, and the aggregation runs
// off integer ids — no key strings anywhere.
func divide(r1, r2 *Relation, split division.Split, agg func([]float64) float64, impl Implication) *Relation {
	aPos := r1.sch.Positions(split.A.Attrs())
	bPos := r1.sch.Positions(split.B.Attrs())
	bOrder := r2.sch.Positions(split.B.Attrs())

	// Number the B universe.
	var bIx relation.TupleIndex
	r2.Each(func(t relation.Tuple, _ float64) { bIx.IDProj(t, bOrder) })
	r1.Each(func(t relation.Tuple, _ float64) { bIx.IDProj(t, bPos) })
	m := bIx.Len()

	// Candidates with dense images: per candidate, grade per B id.
	var cands relation.TupleIndex
	var images [][]float64
	var best []float64
	r1.Each(func(t relation.Tuple, g float64) {
		id, created := cands.IDProj(t, aPos)
		if created {
			images = append(images, make([]float64, m))
			best = append(best, 0)
		}
		bid := bIx.LookupProj(t, bPos)
		if g > images[id][bid] {
			images[id][bid] = g
		}
		if g > best[id] {
			best[id] = g
		}
	})

	// Divisor support in deterministic order.
	type divisorTuple struct {
		id    int
		grade float64
	}
	var divisor []divisorTuple
	r2.Each(func(t relation.Tuple, g float64) {
		divisor = append(divisor, divisorTuple{id: bIx.LookupProj(t, bOrder), grade: g})
	})

	out := NewRelation(split.A)
	for cid, a := range cands.Keys() {
		if len(divisor) == 0 {
			// Empty divisor: candidate qualifies with its own grade
			// (crisp reduction of r ÷ ∅ = πA(r)).
			out.Insert(a, best[cid])
			continue
		}
		impls := make([]float64, len(divisor))
		for i, d := range divisor {
			impls[i] = impl(d.grade, images[cid][d.id])
		}
		grade := math.Min(agg(impls), best[cid])
		out.Insert(a, grade)
	}
	return out
}

// divideStringKeyed is the string-keyed reference implementation of
// the shared divide machinery, retained as the collision-test
// oracle: candidate images in Go maps keyed on Tuple.Key strings.
func divideStringKeyed(r1, r2 *Relation, split division.Split, agg func([]float64) float64, impl Implication) *Relation {
	aPos := r1.sch.Positions(split.A.Attrs())
	bPos := r1.sch.Positions(split.B.Attrs())
	bOrder := r2.sch.Positions(split.B.Attrs())

	type candidate struct {
		a     relation.Tuple
		image map[string]float64
		best  float64
	}
	cands := make(map[string]*candidate)
	var order []string
	r1.Each(func(t relation.Tuple, g float64) {
		at := t.Project(aPos)
		k := at.Key()
		c, ok := cands[k]
		if !ok {
			c = &candidate{a: at, image: make(map[string]float64)}
			cands[k] = c
			order = append(order, k)
		}
		bk := t.Project(bPos).Key()
		if g > c.image[bk] {
			c.image[bk] = g
		}
		if g > c.best {
			c.best = g
		}
	})

	type divisorTuple struct {
		key   string
		grade float64
	}
	var divisor []divisorTuple
	r2.Each(func(t relation.Tuple, g float64) {
		divisor = append(divisor, divisorTuple{key: t.Project(bOrder).Key(), grade: g})
	})

	out := NewRelation(split.A)
	for _, k := range order {
		c := cands[k]
		if len(divisor) == 0 {
			out.Insert(c.a, c.best)
			continue
		}
		impls := make([]float64, len(divisor))
		for i, d := range divisor {
			impls[i] = impl(d.grade, c.image[d.key])
		}
		out.Insert(c.a, math.Min(agg(impls), c.best))
	}
	return out
}

// CrispDivide is a convenience: lift, divide with Gödel implication,
// and 1-cut — equal to division.Divide on classical inputs.
func CrispDivide(r1, r2 *relation.Relation) *relation.Relation {
	return Divide(FromCrisp(r1), FromCrisp(r2), Goedel).Cut(1)
}
