package fuzzy

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"divlaws/internal/division"
	"divlaws/internal/hashkey"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func tup(xs ...int64) relation.Tuple {
	t := make(relation.Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.Int(x)
	}
	return t
}

func TestImplications(t *testing.T) {
	cases := []struct {
		name string
		impl Implication
		x, y float64
		want float64
	}{
		{"goedel x<=y", Goedel, 0.3, 0.7, 1},
		{"goedel x>y", Goedel, 0.8, 0.5, 0.5},
		{"goguen x<=y", Goguen, 0.3, 0.7, 1},
		{"goguen x>y", Goguen, 0.8, 0.4, 0.5},
		{"lukasiewicz", Lukasiewicz, 0.8, 0.5, 0.7},
		{"lukasiewicz cap", Lukasiewicz, 0.2, 0.9, 1},
		{"kleene-dienes", KleeneDienes, 0.8, 0.5, 0.5},
		{"kleene-dienes neg", KleeneDienes, 0.2, 0.5, 0.8},
	}
	for _, tc := range cases {
		if got := tc.impl(tc.x, tc.y); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: impl(%g, %g) = %g, want %g", tc.name, tc.x, tc.y, got, tc.want)
		}
	}
	// Boundary behaviour shared by all residuated implications:
	// 1 → y = y, x → 1 = 1, 0 → y = 1.
	for _, impl := range []Implication{Goedel, Goguen, Lukasiewicz} {
		for _, y := range []float64{0, 0.4, 1} {
			if got := impl(1, y); math.Abs(got-y) > 1e-12 {
				t.Errorf("impl(1, %g) = %g, want %g", y, got, y)
			}
			if got := impl(0, y); got != 1 {
				t.Errorf("impl(0, %g) = %g, want 1", y, got)
			}
		}
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(schema.New("a", "b"))
	r.Insert(tup(1, 1), 0.5)
	r.Insert(tup(1, 1), 0.8) // max wins
	r.Insert(tup(1, 1), 0.3) // ignored
	r.Insert(tup(2, 2), 0)   // grade 0 excluded from support
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if g := r.Grade(tup(1, 1)); g != 0.8 {
		t.Errorf("Grade = %g", g)
	}
	if g := r.Grade(tup(9, 9)); g != 0 {
		t.Errorf("absent Grade = %g", g)
	}
	cut := r.Cut(0.9)
	if !cut.Empty() {
		t.Errorf("0.9-cut = %v", cut)
	}
	if got := r.Cut(0.5); got.Len() != 1 {
		t.Errorf("0.5-cut = %v", got)
	}
}

func TestInsertValidation(t *testing.T) {
	r := NewRelation(schema.New("a"))
	for _, fn := range []func(){
		func() { r.Insert(tup(1), -0.1) },
		func() { r.Insert(tup(1), 1.1) },
		func() { r.Insert(tup(1, 2), 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCrispReduction(t *testing.T) {
	// On crisp inputs every implication's min-aggregated division,
	// 1-cut, equals the classical small divide.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		r1 := relation.New(schema.New("a", "b"))
		for i := 0; i < rng.Intn(30); i++ {
			r1.Insert(tup(int64(rng.Intn(6)), int64(rng.Intn(5))))
		}
		r2 := relation.New(schema.New("b"))
		for i := 0; i < 1+rng.Intn(4); i++ {
			r2.Insert(tup(int64(rng.Intn(5))))
		}
		want := division.Divide(r1, r2)
		for _, impl := range []Implication{Goedel, Goguen, Lukasiewicz, KleeneDienes} {
			got := Divide(FromCrisp(r1), FromCrisp(r2), impl).Cut(1)
			if !got.Equal(want) {
				t.Fatalf("trial %d: crisp reduction failed\nr1:\n%v\nr2:\n%v\ngot:\n%v\nwant:\n%v",
					trial, r1, r2, got, want)
			}
		}
		if got := CrispDivide(r1, r2); !got.Equal(want) {
			t.Fatalf("CrispDivide diverged")
		}
	}
}

func TestGradedQuotient(t *testing.T) {
	// Supplier 1 fully supplies both divisor parts; supplier 2
	// supplies part 2 only weakly.
	r1 := NewRelation(schema.New("a", "b"))
	r1.Insert(tup(1, 1), 1.0)
	r1.Insert(tup(1, 2), 0.9)
	r1.Insert(tup(2, 1), 1.0)
	r1.Insert(tup(2, 2), 0.4)
	r2 := NewRelation(schema.New("b"))
	r2.Insert(tup(1), 1.0)
	r2.Insert(tup(2), 0.8)

	q := Divide(r1, r2, Goedel)
	// Supplier 1: impl(1,1)=1, impl(0.8,0.9)=1 → grade 1.
	if g := q.Grade(tup(1)); g != 1 {
		t.Errorf("supplier 1 grade = %g, want 1", g)
	}
	// Supplier 2: impl(1,1)=1, impl(0.8,0.4)=0.4 → grade 0.4.
	if g := q.Grade(tup(2)); g != 0.4 {
		t.Errorf("supplier 2 grade = %g, want 0.4", g)
	}

	// Goguen softens the failure: impl(0.8, 0.4) = 0.5.
	qg := Divide(r1, r2, Goguen)
	if g := qg.Grade(tup(2)); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("Goguen supplier 2 grade = %g, want 0.5", g)
	}
	// Łukasiewicz: 1 − 0.8 + 0.4 = 0.6.
	ql := Divide(r1, r2, Lukasiewicz)
	if g := ql.Grade(tup(2)); math.Abs(g-0.6) > 1e-12 {
		t.Errorf("Lukasiewicz supplier 2 grade = %g, want 0.6", g)
	}
}

func TestOWAAllQuantifierEqualsMin(t *testing.T) {
	// Weights all on the last (smallest) value = strict "all".
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		r1 := NewRelation(schema.New("a", "b"))
		for i := 0; i < 5+rng.Intn(20); i++ {
			r1.Insert(tup(int64(rng.Intn(4)), int64(rng.Intn(4))), rng.Float64())
		}
		r2 := NewRelation(schema.New("b"))
		n := 0
		for i := 0; i < 4 && n < 3; i++ {
			g := rng.Float64()
			before := r2.Len()
			r2.Insert(tup(int64(i)), g)
			if r2.Len() > before {
				n++
			}
		}
		if r2.Len() == 0 {
			continue
		}
		weights := make([]float64, r2.Len())
		weights[len(weights)-1] = 1
		minQ := Divide(r1, r2, Goedel)
		owaQ := OWADivide(r1, r2, Goedel, weights)
		minQ.Each(func(tp relation.Tuple, g float64) {
			if og := owaQ.Grade(tp); math.Abs(og-g) > 1e-9 {
				t.Fatalf("trial %d: OWA(min weights) %g vs min %g for %v", trial, og, g, tp)
			}
		})
	}
}

func TestOWAAlmostAllRelaxes(t *testing.T) {
	// A supplier missing one of four parts: strict division grades 0,
	// "almost all" grades it positively.
	r1 := NewRelation(schema.New("a", "b"))
	for b := int64(1); b <= 3; b++ {
		r1.Insert(tup(1, b), 1)
	}
	r2 := NewRelation(schema.New("b"))
	for b := int64(1); b <= 4; b++ {
		r2.Insert(tup(b), 1)
	}
	strict := Divide(r1, r2, Goedel)
	if g := strict.Grade(tup(1)); g != 0 {
		t.Fatalf("strict grade = %g, want 0", g)
	}
	weights := QuantifierWeights(AlmostAll(0.5), 4)
	relaxed := OWADivide(r1, r2, Goedel, weights)
	if g := relaxed.Grade(tup(1)); g <= 0 || g > 1 {
		t.Errorf("almost-all grade = %g, want in (0, 1]", g)
	}
}

func TestQuantifierWeights(t *testing.T) {
	w := QuantifierWeights(AlmostAll(0.5), 4)
	sum := 0.0
	for _, x := range w {
		if x < -1e-12 {
			t.Errorf("negative weight %g", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
	// Monotone quantifier → later (smaller) positions get weight for
	// AlmostAll(0.5): first half zero.
	if w[0] != 0 {
		t.Errorf("w[0] = %g, want 0", w[0])
	}
}

func TestOWAValidation(t *testing.T) {
	r1 := NewRelation(schema.New("a", "b"))
	r1.Insert(tup(1, 1), 1)
	r2 := NewRelation(schema.New("b"))
	r2.Insert(tup(1), 1)
	for _, weights := range [][]float64{
		{0.5, 0.4},  // sums to 0.9
		{-0.5, 1.5}, // negative
		{0.5, 0.5},  // wrong arity vs 1 divisor tuple
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v should panic", weights)
				}
			}()
			OWADivide(r1, r2, Goedel, weights)
		}()
	}
}

func TestEmptyDivisorKeepsCandidates(t *testing.T) {
	r1 := NewRelation(schema.New("a", "b"))
	r1.Insert(tup(1, 1), 0.7)
	r2 := NewRelation(schema.New("b"))
	q := Divide(r1, r2, Goedel)
	if g := q.Grade(tup(1)); g != 0.7 {
		t.Errorf("empty-divisor grade = %g, want 0.7", g)
	}
}

func TestDivideMonotoneInImplication(t *testing.T) {
	// Kleene-Dienes ≥ Gödel pointwise when x > y … not in general;
	// instead check the quotient grade never exceeds the candidate's
	// own best grade (the cap invariant).
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 80; trial++ {
		r1 := NewRelation(schema.New("a", "b"))
		best := map[string]float64{}
		for i := 0; i < 4+rng.Intn(25); i++ {
			tpl := tup(int64(rng.Intn(4)), int64(rng.Intn(4)))
			g := rng.Float64()
			r1.Insert(tpl, g)
		}
		r1.Each(func(tp relation.Tuple, g float64) {
			k := tp[:1].Key()
			if g > best[k] {
				best[k] = g
			}
		})
		r2 := NewRelation(schema.New("b"))
		for i := 0; i < 1+rng.Intn(3); i++ {
			r2.Insert(tup(int64(rng.Intn(4))), rng.Float64())
		}
		for _, impl := range []Implication{Goedel, Goguen, Lukasiewicz, KleeneDienes} {
			q := Divide(r1, r2, impl)
			q.Each(func(tp relation.Tuple, g float64) {
				if g > best[tp.Key()]+1e-12 {
					t.Fatalf("grade %g exceeds candidate cap %g", g, best[tp.Key()])
				}
			})
		}
	}
}

// TestFuzzyDivideCollisions degrades every hash to 3 bits and checks
// the TupleIndex-based divide (minimum and OWA aggregation, several
// implications) against the string-keyed reference on random graded
// relations.
func TestFuzzyDivideCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(7)
	defer restore()
	rng := rand.New(rand.NewSource(55))
	impls := []Implication{Goedel, Goguen, Lukasiewicz, KleeneDienes}
	for trial := 0; trial < 40; trial++ {
		r1 := NewRelation(schema.New("a", "b"))
		for i := 0; i < rng.Intn(40); i++ {
			r1.Insert(relation.Tuple{
				value.Int(int64(rng.Intn(8))), value.Int(int64(rng.Intn(5))),
			}, float64(1+rng.Intn(10))/10)
		}
		r2 := NewRelation(schema.New("b"))
		for i := 0; i < rng.Intn(4); i++ {
			r2.Insert(relation.Tuple{value.Int(int64(rng.Intn(5)))}, float64(1+rng.Intn(10))/10)
		}
		split, err := division.SmallSplit(r1.Schema(), r2.Schema())
		if err != nil {
			t.Fatal(err)
		}
		impl := impls[trial%len(impls)]
		minAgg := func(vals []float64) float64 {
			m := 1.0
			for _, v := range vals {
				if v < m {
					m = v
				}
			}
			return m
		}
		got := Divide(r1, r2, impl)
		want := divideStringKeyed(r1, r2, split, minAgg, impl)
		if !sameFuzzy(got, want) {
			t.Fatalf("trial %d: masked fuzzy divide diverged", trial)
		}
		if r2.Len() > 0 {
			w := QuantifierWeights(AlmostAll(0.3), r2.Len())
			got := OWADivide(r1, r2, impl, w)
			want := divideStringKeyed(r1, r2, split, func(vals []float64) float64 {
				sorted := append([]float64(nil), vals...)
				sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
				total := 0.0
				for i, v := range sorted {
					total += w[i] * v
				}
				return total
			}, impl)
			if !sameFuzzy(got, want) {
				t.Fatalf("trial %d: masked OWA divide diverged", trial)
			}
		}
	}
}

// sameFuzzy compares two fuzzy relations as graded sets.
func sameFuzzy(a, b *Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	same := true
	a.Each(func(t relation.Tuple, g float64) {
		if math.Abs(b.Grade(t)-g) > 1e-12 {
			same = false
		}
	})
	return same
}
