// Package figures regenerates every figure of the paper (Figures
// 1-11) from the library's operators: the inputs are the figures'
// example relations and all derived tables are computed, not
// transcribed. The figures command prints them; the tests compare
// each against the values printed in the paper.
package figures

import (
	"strings"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/pred"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/scj"
	"divlaws/internal/texttab"
	"divlaws/internal/value"
)

// Figure names one reproducible paper figure.
type Figure struct {
	ID     string
	Title  string
	Render func() string
}

// All returns the figures in paper order.
func All() []Figure {
	return []Figure{
		{"figure-1", "Division: r1 ÷ r2 = r3", Figure1},
		{"figure-2", "Generalized division: r1 ÷* r2 = r3", Figure2},
		{"figure-3", "Set containment join: r1 ⋈(b1⊇b2) r2 = r3", Figure3},
		{"figure-4", "An example for Law 1", Figure4},
		{"figure-5", "A counterexample to Law 2's precondition", Figure5},
		{"figure-6", "An illustration for Example 1", Figure6},
		{"figure-7", "An example for Law 8", Figure7},
		{"figure-8", "An example for Law 9", Figure8},
		{"figure-9", "An illustration of Example 3", Figure9},
		{"figure-10", "An example for Law 11", Figure10},
		{"figure-11", "An example for Law 12", Figure11},
	}
}

// ByID returns the named figure.
func ByID(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// Fig1Dividend is relation r1 of Figures 1 and 2.
func Fig1Dividend() *relation.Relation {
	return relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
	})
}

// Figure1 renders the small divide of Figure 1.
func Figure1() string {
	r1 := Fig1Dividend()
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	r3 := division.Divide(r1, r2)
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1 (dividend)", Rel: r1},
		texttab.Item{Caption: "(b) r2 (divisor)", Rel: r2},
		texttab.Item{Caption: "(c) r3 (quotient)", Rel: r3},
	)
}

// Figure2 renders the generalized division of Figure 2.
func Figure2() string {
	r1 := Fig1Dividend()
	r2 := relation.Ints([]string{"b", "c"}, [][]int64{
		{1, 1}, {2, 1}, {4, 1}, {1, 2}, {3, 2},
	})
	r3 := division.GreatDivide(r1, r2)
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1 (dividend)", Rel: r1},
		texttab.Item{Caption: "(b) r2 (divisor)", Rel: r2},
		texttab.Item{Caption: "(c) r3 (quotient)", Rel: r3},
	)
}

// Figure3 renders the set containment join of Figure 3 using the
// nested (non-1NF) representation.
func Figure3() string {
	left := scj.NewNested(schema.New("a"), "b1")
	left.Insert(scj.Row{Scalars: relation.Tuple{value.Int(1)}, Set: scj.IntSet(1, 4)})
	left.Insert(scj.Row{Scalars: relation.Tuple{value.Int(2)}, Set: scj.IntSet(1, 2, 3, 4)})
	left.Insert(scj.Row{Scalars: relation.Tuple{value.Int(3)}, Set: scj.IntSet(1, 3, 4)})
	right := scj.NewNested(schema.New("c"), "b2")
	right.Insert(scj.Row{Scalars: relation.Tuple{value.Int(1)}, Set: scj.IntSet(1, 2, 4)})
	right.Insert(scj.Row{Scalars: relation.Tuple{value.Int(2)}, Set: scj.IntSet(1, 3)})

	var b strings.Builder
	b.WriteString("a  b1\n")
	for _, row := range left.Rows() {
		b.WriteString(row.Scalars.String() + "  " + row.Set.String() + "\n")
	}
	b.WriteString("(a) r1\n\n")
	b.WriteString("b2  c\n")
	for _, row := range right.Rows() {
		b.WriteString(row.Set.String() + "  " + row.Scalars.String() + "\n")
	}
	b.WriteString("(b) r2\n\n")
	b.WriteString("a  b1  b2  c\n")
	for _, j := range scj.ContainmentJoin(left, right) {
		b.WriteString(j.LeftScalars.String() + "  " + j.LeftSet.String() + "  " +
			j.RightSet.String() + "  " + j.RightScalars.String() + "\n")
	}
	b.WriteString("(c) r3\n")
	return b.String()
}

// Figure4 renders Law 1's walkthrough with all intermediates.
func Figure4() string {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
		{4, 1}, {4, 3},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}, {4}})
	r2a := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	r2b := relation.Ints([]string{"b"}, [][]int64{{3}, {4}})
	inner := division.Divide(r1, r2a)
	mid := algebra.SemiJoin(r1, inner)
	r3 := division.Divide(mid, r2b)
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1", Rel: r1},
		texttab.Item{Caption: "(b) r2", Rel: r2},
		texttab.Item{Caption: "(c) r2'", Rel: r2a},
		texttab.Item{Caption: "(d) r2''", Rel: r2b},
		texttab.Item{Caption: "(e) r1 ÷ r2'", Rel: inner},
		texttab.Item{Caption: "(f) r1 ⋉ (r1 ÷ r2')", Rel: mid},
		texttab.Item{Caption: "(g) r3", Rel: r3},
	)
}

// Figure5 renders the Law 2 precondition counterexample with the
// conflicting results.
func Figure5() string {
	r1a := relation.Ints([]string{"a", "b"}, [][]int64{{1, 1}, {1, 2}, {1, 3}})
	r1b := relation.Ints([]string{"a", "b"}, [][]int64{{1, 2}, {1, 4}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {4}})
	union := division.Divide(algebra.Union(r1a, r1b), r2)
	distributed := algebra.Union(division.Divide(r1a, r2), division.Divide(r1b, r2))
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1'", Rel: r1a},
		texttab.Item{Caption: "(b) r1''", Rel: r1b},
		texttab.Item{Caption: "(c) r2", Rel: r2},
		texttab.Item{Caption: "(r1' ∪ r1'') ÷ r2  [correct]", Rel: union},
		texttab.Item{Caption: "(r1' ÷ r2) ∪ (r1'' ÷ r2)  [wrong without c1]", Rel: distributed},
	)
}

// Figure6 renders Example 1's intermediates with p ≡ b < 3.
func Figure6() string {
	r1 := relation.Ints([]string{"a", "b"}, [][]int64{
		{1, 1}, {1, 4},
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
		{3, 1}, {3, 3}, {3, 4},
		{4, 1}, {4, 3},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}, {4}})
	p := pred.Compare(pred.Attr("b"), pred.Lt, pred.ConstInt(3))
	selR1 := algebra.Select(r1, p)
	selR2 := algebra.Select(r2, p)
	lhs := division.Divide(selR1, r2)
	positive := division.Divide(selR1, selR2)
	killSrc := algebra.Product(algebra.Project(r1, "a"), algebra.Select(r2, pred.Negate(p)))
	kill := algebra.Project(killSrc, "a")
	rhs := algebra.Diff(positive, kill)
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1", Rel: r1},
		texttab.Item{Caption: "(b) σ(b<3)(r1)", Rel: selR1},
		texttab.Item{Caption: "(c) r2", Rel: r2},
		texttab.Item{Caption: "(d) σ(b<3)(r2)", Rel: selR2},
		texttab.Item{Caption: "(e) σ(b<3)(r1) ÷ r2", Rel: lhs},
		texttab.Item{Caption: "(f) σ(b<3)(r1) ÷ σ(b<3)(r2)", Rel: positive},
		texttab.Item{Caption: "(g) πa(r1) × σ(b>=3)(r2)", Rel: killSrc},
		texttab.Item{Caption: "(h) πa(πa(r1) × σ(b>=3)(r2))", Rel: kill},
		texttab.Item{Caption: "(i) (f) − (h)", Rel: rhs},
	)
}

// Figure7 renders Law 8's example.
func Figure7() string {
	r1s := relation.Ints([]string{"a1"}, [][]int64{{1}, {2}})
	r1ss := relation.Ints([]string{"a2", "b"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 2}, {3, 3},
	})
	r2 := relation.Ints([]string{"b"}, [][]int64{{2}, {3}})
	product := algebra.Product(r1s, r1ss)
	inner := division.Divide(r1ss, r2)
	r3 := algebra.Product(r1s, inner)
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1*", Rel: r1s},
		texttab.Item{Caption: "(b) r1**", Rel: r1ss},
		texttab.Item{Caption: "(c) r2", Rel: r2},
		texttab.Item{Caption: "(d) r1* × r1**", Rel: product},
		texttab.Item{Caption: "(e) r1** ÷ r2", Rel: inner},
		texttab.Item{Caption: "(f) r3", Rel: r3},
	)
}

// Figure8 renders Law 9's example.
func Figure8() string {
	r1s := relation.Ints([]string{"a", "b1"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	r1ss := relation.Ints([]string{"b2"}, [][]int64{{1}, {2}})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 2}, {3, 1}, {3, 2}})
	product := algebra.Product(r1s, r1ss)
	piB1 := algebra.Project(r2, "b1")
	piB2 := algebra.Project(r2, "b2")
	r3 := division.Divide(r1s, piB1)
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1*", Rel: r1s},
		texttab.Item{Caption: "(b) r1**", Rel: r1ss},
		texttab.Item{Caption: "(c) r2", Rel: r2},
		texttab.Item{Caption: "(d) r1* × r1**", Rel: product},
		texttab.Item{Caption: "(e) πb1(r2)", Rel: piB1},
		texttab.Item{Caption: "(f) πb2(r2)", Rel: piB2},
		texttab.Item{Caption: "(g) r3", Rel: r3},
	)
}

// Figure9 renders Example 3's intermediates.
func Figure9() string {
	r1s := relation.Ints([]string{"a", "b1"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	r1ss := relation.Ints([]string{"b2"}, [][]int64{{1}, {2}, {4}})
	r2 := relation.Ints([]string{"b1", "b2"}, [][]int64{{1, 4}, {3, 4}})
	lt := pred.Compare(pred.Attr("b1"), pred.Lt, pred.Attr("b2"))
	joined := algebra.ThetaJoin(r1s, r1ss, lt)
	restricted := algebra.Project(algebra.Select(r2, lt), "b1")
	r3 := division.Divide(joined, r2)
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r1*", Rel: r1s},
		texttab.Item{Caption: "(b) r1**", Rel: r1ss},
		texttab.Item{Caption: "(c) r2", Rel: r2},
		texttab.Item{Caption: "(d) r1* ⋈(b1<b2) r1**", Rel: joined},
		texttab.Item{Caption: "(e) πb1(σ(b1<b2)(r2))", Rel: restricted},
		texttab.Item{Caption: "(f) r3", Rel: r3},
	)
}

// Figure10 renders Law 11's example: a singleton-group dividend from
// grouping on a.
func Figure10() string {
	r0 := relation.Ints([]string{"a", "x"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	r1 := algebra.Group(r0, []string{"a"}, []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "b"}})
	r2 := relation.Ints([]string{"b"}, [][]int64{{4}})
	semi := algebra.SemiJoin(r1, r2)
	result := algebra.Project(semi, "a")
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r0", Rel: r0},
		texttab.Item{Caption: "(b) r1 = aγsum(x)→b(r0)", Rel: r1},
		texttab.Item{Caption: "(c) r2", Rel: r2},
		texttab.Item{Caption: "(d) r1 ⋉ r2", Rel: semi},
		texttab.Item{Caption: "(e) πA(r1 ⋉ r2)", Rel: result},
	)
}

// Figure11 renders Law 12's example: singleton groups per divisor
// value from grouping on b.
func Figure11() string {
	r0 := relation.Ints([]string{"x", "b"}, [][]int64{
		{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 3}, {3, 4},
	})
	r1 := algebra.Group(r0, []string{"b"}, []algebra.AggSpec{{Func: algebra.Sum, Attr: "x", As: "a"}})
	r1 = r1.Reorder([]string{"a", "b"})
	r2 := relation.Ints([]string{"b"}, [][]int64{{1}, {3}})
	semi := algebra.SemiJoin(r1, r2)
	result := algebra.Project(semi, "a")
	return texttab.SideBySide(
		texttab.Item{Caption: "(a) r0", Rel: r0},
		texttab.Item{Caption: "(b) r1 = bγsum(x)→a(r0)", Rel: r1},
		texttab.Item{Caption: "(c) r2", Rel: r2},
		texttab.Item{Caption: "(d) r1 ⋉ r2", Rel: semi},
		texttab.Item{Caption: "(e) πA(r1 ⋉ r2)", Rel: result},
	)
}
