package figures

import (
	"strings"
	"testing"
)

// contains asserts the rendered figure includes every needle.
func contains(t *testing.T, rendered string, needles ...string) {
	t.Helper()
	for _, n := range needles {
		if !strings.Contains(rendered, n) {
			t.Errorf("rendered figure missing %q:\n%s", n, rendered)
		}
	}
}

func TestAllFiguresRender(t *testing.T) {
	figs := All()
	if len(figs) != 11 {
		t.Fatalf("figure count = %d, want 11", len(figs))
	}
	for _, f := range figs {
		out := f.Render()
		if len(out) == 0 {
			t.Errorf("%s rendered empty", f.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if f, ok := ByID("figure-7"); !ok || f.ID != "figure-7" {
		t.Error("ByID(figure-7)")
	}
	if _, ok := ByID("figure-99"); ok {
		t.Error("ByID should miss unknown ids")
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	// Figure 1(c): quotient {2, 3}.
	out := Figure1()
	contains(t, out, "(c) r3 (quotient)")
	quotientBlock := out[strings.Index(out, "(b) r2"):]
	contains(t, quotientBlock, "a\n2\n3\n(c) r3 (quotient)")
}

func TestFigure2MatchesPaper(t *testing.T) {
	// Figure 2(c): quotient {(2,1), (2,2), (3,2)}.
	out := Figure2()
	contains(t, out, "a c\n2 1\n2 2\n3 2\n(c) r3 (quotient)")
}

func TestFigure3MatchesPaper(t *testing.T) {
	out := Figure3()
	// The three join rows of Figure 3(c).
	contains(t, out,
		"2  {1, 2, 3, 4}  {1, 2, 4}  1",
		"2  {1, 2, 3, 4}  {1, 3}  2",
		"3  {1, 3, 4}  {1, 3}  2",
	)
}

func TestFigure4MatchesPaper(t *testing.T) {
	out := Figure4()
	// (e) r1 ÷ r2' = {2, 3, 4}; (g) r3 = {2, 3}.
	contains(t, out, "a\n2\n3\n4\n(e) r1 ÷ r2'")
	contains(t, out, "a\n2\n3\n(g) r3")
	// (f) has 9 tuples.
	fBlock := out[strings.Index(out, "(e) r1 ÷ r2'"):strings.Index(out, "(g) r3")]
	if strings.Count(fBlock, "\n") < 10 {
		t.Errorf("(f) block looks too small:\n%s", fBlock)
	}
}

func TestFigure5ShowsDiscrepancy(t *testing.T) {
	out := Figure5()
	contains(t, out, "a\n1\n(r1' ∪ r1'') ÷ r2  [correct]")
	contains(t, out, "a\n(r1' ÷ r2) ∪ (r1'' ÷ r2)  [wrong without c1]")
}

func TestFigure6BothSidesEmpty(t *testing.T) {
	out := Figure6()
	// (e) and (i) are empty; (f) and (h) are {1,2,3,4}.
	contains(t, out, "a\n(e) σ(b<3)(r1) ÷ r2")
	contains(t, out, "a\n1\n2\n3\n4\n(f)")
	contains(t, out, "a\n1\n2\n3\n4\n(h)")
	contains(t, out, "a\n(i) (f) − (h)")
}

func TestFigure7MatchesPaper(t *testing.T) {
	out := Figure7()
	contains(t, out, "a2\n1\n3\n(e) r1** ÷ r2")
	contains(t, out, "a1 a2\n1  1\n1  3\n2  1\n2  3\n(f) r3")
}

func TestFigure8MatchesPaper(t *testing.T) {
	out := Figure8()
	contains(t, out, "b1\n1\n3\n(e) πb1(r2)")
	contains(t, out, "a\n1\n3\n(g) r3")
}

func TestFigure9MatchesPaper(t *testing.T) {
	out := Figure9()
	contains(t, out, "b1\n1\n3\n(e)")
	contains(t, out, "a\n1\n3\n(f) r3")
	// (d) has the 9 join tuples of the paper.
	dBlock := out[strings.Index(out, "(c) r2"):strings.Index(out, "(e)")]
	if strings.Count(dBlock, "\n") < 10 {
		t.Errorf("(d) block too small:\n%s", dBlock)
	}
}

func TestFigure10MatchesPaper(t *testing.T) {
	out := Figure10()
	contains(t, out, "a b\n1 6\n2 4\n3 8\n(b) r1")
	contains(t, out, "a b\n2 4\n(d) r1 ⋉ r2")
	contains(t, out, "a\n2\n(e) πA(r1 ⋉ r2)")
}

func TestFigure11MatchesPaper(t *testing.T) {
	out := Figure11()
	contains(t, out, "(b) r1 = bγsum(x)→a(r0)")
	contains(t, out, "a\n6\n(e) πA(r1 ⋉ r2)")
	// r1 of Figure 11(b): (6,1), (1,2), (6,3), (3,4).
	contains(t, out, "1 2", "3 4", "6 1", "6 3")
}
