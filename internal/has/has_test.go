package has

import (
	"math/rand"
	"strings"
	"testing"

	"divlaws/internal/algebra"
	"divlaws/internal/division"
	"divlaws/internal/hashkey"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

// fixture: suppliers s1..s5, parts p1..p3, qualification {p1, p2}.
//
//	s1 -> {p1, p2}         exactly
//	s2 -> {p1, p2, p3}     strictly more than
//	s3 -> {p1}             strictly less than
//	s4 -> {p1, p3}         some but not all plus else
//	s5 -> {p3}             none of plus else
//	s6 -> {}               none at all
func fixture() (r1, r3, r2 *relation.Relation) {
	r1 = relation.FromRows(schema.New("s"), [][]any{
		{"s1"}, {"s2"}, {"s3"}, {"s4"}, {"s5"}, {"s6"},
	})
	r3 = relation.FromRows(schema.New("s", "p"), [][]any{
		{"s1", "p1"}, {"s1", "p2"},
		{"s2", "p1"}, {"s2", "p2"}, {"s2", "p3"},
		{"s3", "p1"},
		{"s4", "p1"}, {"s4", "p3"},
		{"s5", "p3"},
	})
	r2 = relation.FromRows(schema.New("p"), [][]any{{"p1"}, {"p2"}})
	return r1, r3, r2
}

func want(ids ...string) *relation.Relation {
	rows := make([][]any, len(ids))
	for i, id := range ids {
		rows[i] = []any{id}
	}
	return relation.FromRows(schema.New("s"), rows)
}

func TestEachAssociation(t *testing.T) {
	r1, r3, r2 := fixture()
	cases := []struct {
		assoc Association
		want  *relation.Relation
	}{
		{Exactly, want("s1")},
		{StrictlyMoreThan, want("s2")},
		{StrictlyLessThan, want("s3")},
		{SomeButNotAllPlusElse, want("s4")},
		{NoneOfPlusElse, want("s5")},
		{NoneAtAll, want("s6")},
	}
	for _, tc := range cases {
		got := HAS(r1, r3, r2, tc.assoc)
		if !got.Equal(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.assoc, got, tc.want)
		}
	}
}

func TestAssociationsPartition(t *testing.T) {
	// Every entity classifies under exactly one association, so HAS
	// with All returns all of r1 and the six singleton results are
	// pairwise disjoint and cover r1.
	r1, r3, r2 := fixture()
	if got := HAS(r1, r3, r2, All); !got.Equal(r1) {
		t.Fatalf("HAS(All) = %v", got)
	}
	union := relation.New(r1.Schema())
	for _, a := range []Association{
		StrictlyMoreThan, StrictlyLessThan, SomeButNotAllPlusElse,
		Exactly, NoneOfPlusElse, NoneAtAll,
	} {
		part := HAS(r1, r3, r2, a)
		for _, tp := range part.Tuples() {
			if union.Contains(tp) {
				t.Errorf("entity %v classified twice", tp)
			}
		}
		union.InsertAll(part)
	}
	if !union.Equal(r1) {
		t.Errorf("associations do not cover r1: %v", union)
	}
}

func TestAtLeastEqualsSmallDivide(t *testing.T) {
	// The paper's §6 correspondence: r1 VIA r3 HAS (exactly or
	// strictly more than) OF r2 is r3 ÷ r2.
	r1, r3, r2 := fixture()
	got := HAS(r1, r3, r2, AtLeast)
	wantDiv := division.Divide(r3, r2)
	if !got.Equal(wantDiv) {
		t.Errorf("HAS(AtLeast) = %v, divide = %v", got, wantDiv)
	}
}

func TestAtLeastEqualsSmallDivideProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		r3 := relation.New(schema.New("a", "b"))
		for i := 0; i < rng.Intn(40); i++ {
			r3.Insert(relation.Tuple{
				value.Int(int64(rng.Intn(8))), value.Int(int64(rng.Intn(6))),
			})
		}
		r2 := relation.New(schema.New("b"))
		for i := 0; i < 1+rng.Intn(4); i++ {
			r2.Insert(relation.Tuple{value.Int(int64(rng.Intn(6)))})
		}
		// Entities = those appearing in r3 (division's candidates).
		r1 := algebra.Project(r3, "a")
		got := HAS(r1, r3, r2, AtLeast)
		wantDiv := division.Divide(r3, r2)
		if r3.Empty() {
			continue
		}
		if !got.Equal(wantDiv) {
			t.Fatalf("trial %d: HAS=%v divide=%v\nr3:\n%v\nr2:\n%v", trial, got, wantDiv, r3, r2)
		}
	}
}

func TestEmptyQualification(t *testing.T) {
	// With Q = ∅: entities with no relationships are NoneAtAll;
	// entities with relationships are StrictlyMoreThan (S ⊋ ∅).
	r1, r3, _ := fixture()
	empty := relation.New(schema.New("p"))
	if got := HAS(r1, r3, empty, StrictlyMoreThan); got.Len() != 5 {
		t.Errorf("S ⊋ ∅ should match the 5 related entities, got %v", got)
	}
	if got := HAS(r1, r3, empty, NoneAtAll); !got.Equal(want("s6")) {
		t.Errorf("NoneAtAll with empty Q = %v", got)
	}
}

func TestCombinationString(t *testing.T) {
	s := AtLeast.String()
	if !strings.Contains(s, "exactly") || !strings.Contains(s, "strictly more than") {
		t.Errorf("AtLeast.String() = %q", s)
	}
	if Association(0).String() != "(no association)" {
		t.Error("zero association string")
	}
}

func TestSchemaValidation(t *testing.T) {
	r1, r3, r2 := fixture()
	bad := relation.FromRows(schema.New("x"), [][]any{{"x1"}})
	for _, fn := range []func(){
		func() { HAS(r1, r3, bad, All) }, // relationship schema mismatch
		func() { HAS(bad, r3, r2, All) }, // entity schema mismatch
		func() { HAS(r2, r3, r2, All) },  // overlapping schemas
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestClassifyDirect(t *testing.T) {
	mk := func(keys ...string) map[string]struct{} {
		m := map[string]struct{}{}
		for _, k := range keys {
			m[k] = struct{}{}
		}
		return m
	}
	q := mk("a", "b")
	cases := []struct {
		s    map[string]struct{}
		want Association
	}{
		{mk(), NoneAtAll},
		{mk("c"), NoneOfPlusElse},
		{mk("a"), StrictlyLessThan},
		{mk("a", "b"), Exactly},
		{mk("a", "b", "c"), StrictlyMoreThan},
		{mk("a", "c"), SomeButNotAllPlusElse},
	}
	for _, tc := range cases {
		if got := Classify(tc.s, q); got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.s, got, tc.want)
		}
	}
}

// TestHASCollisions degrades every hash to 3 bits so TupleIndex
// probes walk collision chains constantly, and checks HAS against
// the string-keyed reference for every association on random inputs:
// the collision verification, not hash uniqueness, carries the
// classification.
func TestHASCollisions(t *testing.T) {
	restore := hashkey.SetMaskForTesting(7)
	defer restore()
	rng := rand.New(rand.NewSource(71))
	assocs := []Association{
		StrictlyMoreThan, StrictlyLessThan, SomeButNotAllPlusElse,
		Exactly, NoneOfPlusElse, NoneAtAll, AtLeast, All,
	}
	for trial := 0; trial < 60; trial++ {
		r1 := relation.New(schema.New("a"))
		for i := 0; i < rng.Intn(10); i++ {
			r1.Insert(relation.Tuple{value.Int(int64(rng.Intn(8)))})
		}
		r3 := relation.New(schema.New("a", "b"))
		for i := 0; i < rng.Intn(30); i++ {
			r3.Insert(relation.Tuple{
				value.Int(int64(rng.Intn(8))), value.Int(int64(rng.Intn(6))),
			})
		}
		r2 := relation.New(schema.New("b"))
		for i := 0; i < rng.Intn(4); i++ {
			r2.Insert(relation.Tuple{value.Int(int64(rng.Intn(6)))})
		}
		for _, a := range assocs {
			got := HAS(r1, r3, r2, a)
			want := hasStringKeyed(r1, r3, r2, a)
			if !got.Equal(want) {
				t.Fatalf("trial %d, %s: masked HAS=%v want %v\nr3:\n%v\nr2:\n%v",
					trial, a, got, want, r3, r2)
			}
		}
	}
}
