// Package has implements Carlis's HAS operator, the generalization
// of division the paper discusses in its related work (§6): given
// entities r1, qualification entities r2, and a relationship table
// r3, HAS qualifies each r1 entity by comparing its related set
// S(e) = { y | (e, y) ∈ r3 } against the qualification set Q = r2
// using a disjunction of six mutually exclusive "associations"
// (adverbs). Small divide is the special case
//
//	r1 VIA r3 HAS (exactly OR strictly more than) OF r2
//
// i.e. the "at least" adverb, which the tests verify against the
// division package.
package has

import (
	"fmt"
	"strings"

	"divlaws/internal/relation"
)

// Association is one of Carlis's six adverbs describing how an
// entity's related set S compares with the qualification set Q.
type Association uint8

// The six associations. They partition all possible (S, Q)
// relationships: every entity falls under exactly one.
const (
	// StrictlyMoreThan: S ⊋ Q.
	StrictlyMoreThan Association = 1 << iota
	// StrictlyLessThan: S ⊊ Q (including S = ∅ only when Q ≠ ∅ is
	// handled by NoneAtAll first; see Classify).
	StrictlyLessThan
	// SomeButNotAllPlusElse: S shares some but not all of Q and has
	// extra elements outside Q.
	SomeButNotAllPlusElse
	// Exactly: S = Q.
	Exactly
	// NoneOfPlusElse: S ∩ Q = ∅ and S ≠ ∅.
	NoneOfPlusElse
	// NoneAtAll: S = ∅.
	NoneAtAll
)

// AtLeast is the combination equivalent to relational division:
// "exactly or strictly more than".
const AtLeast = Exactly | StrictlyMoreThan

// All is the disjunction of every association; HAS with All returns
// every entity of r1.
const All = StrictlyMoreThan | StrictlyLessThan | SomeButNotAllPlusElse |
	Exactly | NoneOfPlusElse | NoneAtAll

// String names the association combination.
func (a Association) String() string {
	names := []struct {
		bit  Association
		name string
	}{
		{StrictlyMoreThan, "strictly more than"},
		{StrictlyLessThan, "strictly less than"},
		{SomeButNotAllPlusElse, "some but not all plus else"},
		{Exactly, "exactly"},
		{NoneOfPlusElse, "none of plus else"},
		{NoneAtAll, "none at all"},
	}
	var parts []string
	for _, n := range names {
		if a&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "(no association)"
	}
	return strings.Join(parts, " or ")
}

// Classify determines the unique association between a related set
// S and a qualification set Q, both given as key sets. It is the
// map-based classification kept for direct use in tests and the
// string-keyed reference; HAS itself classifies from TupleIndex
// counts.
func Classify(s, q map[string]struct{}) Association {
	common := 0
	for k := range s {
		if _, ok := q[k]; ok {
			common++
		}
	}
	return classifyCounts(len(s), common, len(q))
}

// classifyCounts determines the association from set cardinalities:
// |S|, |S ∩ Q|, and |Q|.
func classifyCounts(sLen, common, qLen int) Association {
	if sLen == 0 {
		return NoneAtAll
	}
	extra := sLen - common
	// Coverage of Q is checked before disjointness so an empty Q
	// classifies nonempty S as "strictly more than" (S ⊋ ∅), keeping
	// the division correspondence exact for empty divisors.
	switch {
	case common == qLen && extra == 0:
		return Exactly
	case common == qLen:
		return StrictlyMoreThan
	case common == 0:
		return NoneOfPlusElse
	case extra == 0:
		return StrictlyLessThan
	default:
		return SomeButNotAllPlusElse
	}
}

// HAS evaluates r1 VIA r3 HAS assocs OF r2.
//
// r1 holds the candidate entities (schema A), r2 the qualification
// entities (schema B), and r3 the relationships (schema A ∪ B).
// The result has schema A: the entities whose association with Q is
// among assocs. Entities of r1 without any relationship in r3
// classify as NoneAtAll.
//
// Classification runs over the engine's 64-bit TupleIndex with no
// per-tuple key strings: Q is indexed once, and each entity only
// needs |S| and |S ∩ Q| — r3's tuples are distinct over A ∪ B, so
// every relationship tuple contributes exactly one distinct B value
// to its entity and plain counting suffices.
func HAS(r1, r3, r2 *relation.Relation, assocs Association) *relation.Relation {
	a := r1.Schema()
	b := r2.Schema()
	if !a.Union(b).EqualSet(r3.Schema()) {
		panic(fmt.Sprintf("has: relationship schema %v must be %v ∪ %v",
			r3.Schema(), a, b))
	}
	if !a.DisjointFrom(b) {
		panic(fmt.Sprintf("has: entity schemas %v and %v must be disjoint", a, b))
	}
	aPos := r3.Schema().Positions(a.Attrs())
	// bPos lists r3's B columns in r2's attribute order, so projected
	// lookups align with Q's index directly.
	bPos := r3.Schema().Positions(b.Attrs())

	var qIx relation.TupleIndex
	for _, t := range r2.Tuples() {
		qIx.ID(t)
	}
	qLen := qIx.Len()

	var eIx relation.TupleIndex
	var total, common []int
	for _, t := range r3.Tuples() {
		id, created := eIx.IDProj(t, aPos)
		if created {
			total = append(total, 0)
			common = append(common, 0)
		}
		total[id]++
		if qIx.LookupProj(t, bPos) >= 0 {
			common[id]++
		}
	}

	out := relation.New(a)
	for _, e := range r1.Tuples() {
		sLen, c := 0, 0
		if id := eIx.Lookup(e); id >= 0 {
			sLen, c = total[id], common[id]
		}
		if classifyCounts(sLen, c, qLen)&assocs != 0 {
			out.Insert(e)
		}
	}
	return out
}

// hasStringKeyed is the string-keyed reference implementation of
// HAS, retained as the collision-test oracle: the masked-hash tests
// compare HAS under a 3-bit hash space against it to prove the
// TupleIndex verification keeps classification exact.
func hasStringKeyed(r1, r3, r2 *relation.Relation, assocs Association) *relation.Relation {
	a := r1.Schema()
	aPos := r3.Schema().Positions(a.Attrs())
	bPos := r3.Schema().Positions(r2.Schema().Attrs())

	q := make(map[string]struct{}, r2.Len())
	for _, t := range r2.Tuples() {
		q[t.Key()] = struct{}{}
	}
	related := make(map[string]map[string]struct{})
	for _, t := range r3.Tuples() {
		ak := t.Project(aPos).Key()
		s, ok := related[ak]
		if !ok {
			s = make(map[string]struct{})
			related[ak] = s
		}
		s[t.Project(bPos).Key()] = struct{}{}
	}
	out := relation.New(a)
	for _, e := range r1.Tuples() {
		s := related[e.Key()]
		if s == nil {
			s = map[string]struct{}{}
		}
		if Classify(s, q)&assocs != 0 {
			out.Insert(e)
		}
	}
	return out
}
