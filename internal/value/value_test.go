package value

import (
	"divlaws/internal/hashkey"

	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindBool:   "bool",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		Kind(99):   "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null should be null")
	}
	if got := Bool(true); !got.AsBool() || got.Kind() != KindBool {
		t.Errorf("Bool(true) = %v", got)
	}
	if got := Bool(false); got.AsBool() {
		t.Errorf("Bool(false).AsBool() = true")
	}
	if got := Int(-42); got.AsInt() != -42 {
		t.Errorf("Int(-42).AsInt() = %d", got.AsInt())
	}
	if got := Float(2.5); got.AsFloat() != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %g", got.AsFloat())
	}
	if got := String("abc"); got.AsString() != "abc" {
		t.Errorf("String(abc).AsString() = %q", got.AsString())
	}
	if !Int(7).IsNumeric() || !Float(1).IsNumeric() || String("x").IsNumeric() {
		t.Error("IsNumeric misclassifies")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat should widen ints")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"AsBool on int", func() { Int(1).AsBool() }},
		{"AsInt on string", func() { String("x").AsInt() }},
		{"AsFloat on string", func() { String("x").AsFloat() }},
		{"AsString on null", func() { Null.AsString() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestCompareWithinKinds(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{String("c"), String("b"), 1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null, Null, 0},
		{Int(2), Float(2.0), 0},  // cross-numeric equality
		{Int(2), Float(2.5), -1}, // cross-numeric order
		{Float(3.5), Int(3), 1},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAcrossKinds(t *testing.T) {
	// Total order across kinds: null < bool < numeric < string.
	ordered := []Value{Null, Bool(false), Bool(true), Int(-5), Float(0.5), Int(7), String(""), String("z")}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // Equal is kind-strict, unlike Compare
		{String("a"), String("a"), true},
		{Null, Null, true},
		{Null, Int(0), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Float(math.NaN()), Float(math.NaN()), true},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%v.Equal(%v) = %t, want %t", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAppendKeyInjective(t *testing.T) {
	vals := []Value{
		Null, Bool(false), Bool(true),
		Int(0), Int(1), Int(-1), Int(256),
		Float(0), Float(1), Float(-1), Float(math.NaN()),
		String(""), String("a"), String("ab"), String("b"),
	}
	for i, a := range vals {
		for j, b := range vals {
			ka, kb := a.AppendKey(nil), b.AppendKey(nil)
			same := bytes.Equal(ka, kb)
			if same != a.Equal(b) {
				t.Errorf("key equality mismatch: vals[%d]=%v vals[%d]=%v key-equal=%t Equal=%t",
					i, a, j, b, same, a.Equal(b))
			}
		}
	}
}

func TestAppendKeyPrefixFree(t *testing.T) {
	// Keys of strings must not collide when concatenated in tuples:
	// ("a","bc") vs ("ab","c").
	k1 := String("a").AppendKey(String("bc").AppendKey(nil))
	k2 := String("ab").AppendKey(String("c").AppendKey(nil))
	// Note arguments: AppendKey appends to dst, so build in order.
	k1 = append(String("a").AppendKey(nil), String("bc").AppendKey(nil)...)
	k2 = append(String("ab").AppendKey(nil), String("c").AppendKey(nil)...)
	if bytes.Equal(k1, k2) {
		t.Error("tuple keys collide for (a,bc) vs (ab,c)")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{String("blue"), "blue"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestGoString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "value.Null"},
		{Bool(true), "value.Bool(true)"},
		{Int(3), "value.Int(3)"},
		{Float(1.5), "value.Float(1.5)"},
		{String("x"), `value.String("x")`},
	}
	for _, tc := range cases {
		if got := tc.v.GoString(); got != tc.want {
			t.Errorf("GoString = %q, want %q", got, tc.want)
		}
	}
}

func TestAdd(t *testing.T) {
	if got := Add(Int(2), Int(3)); !got.Equal(Int(5)) {
		t.Errorf("Add(2,3) = %v", got)
	}
	if got := Add(Int(2), Float(0.5)); !got.Equal(Float(2.5)) {
		t.Errorf("Add(2,0.5) = %v", got)
	}
	if got := Add(Float(1), Float(1)); !got.Equal(Float(2)) {
		t.Errorf("Add(1.0,1.0) = %v", got)
	}
}

func TestMinMaxLess(t *testing.T) {
	if !Less(Int(1), Int(2)) || Less(Int(2), Int(1)) || Less(Int(2), Int(2)) {
		t.Error("Less wrong")
	}
	if got := Min(Int(3), Int(1)); !got.Equal(Int(1)) {
		t.Errorf("Min = %v", got)
	}
	if got := Max(Int(3), Int(1)); !got.Equal(Int(3)) {
		t.Errorf("Max = %v", got)
	}
	// Stability: Min/Max return the first argument on ties.
	a, b := Int(2), Float(2)
	if got := Min(a, b); !got.Equal(a) {
		t.Errorf("Min tie should keep first arg, got %v", got)
	}
	if got := Max(a, b); !got.Equal(a) {
		t.Errorf("Max tie should keep first arg, got %v", got)
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Compare must be antisymmetric and consistent with sorting.
	f := func(xs []int64) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			// Mix kinds deterministically from the payload.
			switch x % 3 {
			case 0:
				vals[i] = Int(x)
			case 1, -1:
				vals[i] = Float(float64(x) / 2)
			default:
				vals[i] = String(Int(x).String())
			}
		}
		sort.Slice(vals, func(i, j int) bool { return Less(vals[i], vals[j]) })
		for i := 1; i < len(vals); i++ {
			if Compare(vals[i-1], vals[i]) > 0 {
				return false
			}
		}
		for i := range vals {
			for j := range vals {
				if Compare(vals[i], vals[j]) != -Compare(vals[j], vals[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashEncodedKeyMatchesHashKey(t *testing.T) {
	vals := []Value{
		Null, Bool(true), Bool(false), Int(0), Int(-7), Int(1 << 40),
		Float(0), Float(-2.5), Float(math.NaN()), Float(math.Inf(1)),
		String(""), String("ab"), String("a longer string with spaces"),
	}
	for _, v := range vals {
		want := v.HashKey(hashkey.New())
		got := HashEncodedKey(hashkey.New(), string(v.AppendKey(nil)))
		if got != want {
			t.Errorf("HashEncodedKey(%v) = %#x, want %#x", v, got, want)
		}
	}
	// Whole-tuple concatenations must fold identically too, including
	// with a non-initial running state.
	for i, a := range vals {
		b := vals[(i*7+3)%len(vals)]
		key := string(b.AppendKey(a.AppendKey(nil)))
		want := b.HashKey(a.HashKey(hashkey.AddByte(hashkey.New(), 42)))
		if got := HashEncodedKey(hashkey.AddByte(hashkey.New(), 42), key); got != want {
			t.Errorf("HashEncodedKey(%v,%v) = %#x, want %#x", a, b, got, want)
		}
	}
	// Truncated encodings must not panic and must stay deterministic.
	full := string(String("abcdef").AppendKey(Int(5).AppendKey(nil)))
	for n := 0; n <= len(full); n++ {
		if HashEncodedKey(hashkey.New(), full[:n]) != HashEncodedKey(hashkey.New(), full[:n]) {
			t.Errorf("truncated key of length %d hashes nondeterministically", n)
		}
	}
}
