// Package value defines the typed scalar values stored in relation
// tuples: 64-bit integers, 64-bit floats, strings, booleans, and NULL.
//
// Values carry a total order (NULL < bool < int/float < string across
// kinds; natural order within a kind, with ints and floats compared
// numerically) so relations can be sorted deterministically, and an
// injective encoding used for hashing tuples under set semantics.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"divlaws/internal/hashkey"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64   // KindInt and KindBool (0/1)
	f    float64 // KindFloat
	s    string  // KindString
}

// Null is the NULL value.
var Null = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it panics for non-bool kinds.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.i != 0
}

// AsInt returns the integer payload; it panics for non-int kinds.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload as float64 for int and float
// kinds; it panics for other kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
	}
}

// AsString returns the string payload; it panics for non-string kinds.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// rank orders kinds for the cross-kind total order.
func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat: // numerics compare with each other
		return 2
	case KindString:
		return 3
	default:
		return 4
	}
}

// Compare returns -1, 0, or +1 ordering v against w under the total
// order. Numerics of different kinds compare by numeric value; an int
// and a float that are numerically equal are equal under Compare but
// remain distinguishable by Equal and by the set-semantics key.
func Compare(v, w Value) int {
	if rv, rw := v.rank(), w.rank(); rv != rw {
		return cmpInt(rv, rw)
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return cmpInt64(v.i, w.i)
	case KindString:
		return strings.Compare(v.s, w.s)
	default: // numeric
		if v.kind == KindInt && w.kind == KindInt {
			return cmpInt64(v.i, w.i)
		}
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports exact equality: same kind and same payload. NULL
// equals NULL under Equal (set semantics treat NULL as a regular
// domain element, as the paper's relations contain no NULLs anyway).
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool, KindInt:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f || (math.IsNaN(v.f) && math.IsNaN(w.f))
	case KindString:
		return v.s == w.s
	default:
		return false
	}
}

// AppendKey appends an injective binary encoding of v to dst. Two
// values have identical encodings iff Equal reports true, so the
// encoding can key hash maps implementing set semantics.
func (v Value) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool, KindInt:
		dst = appendUint64(dst, uint64(v.i))
	case KindFloat:
		f := v.f
		if math.IsNaN(f) {
			f = math.NaN() // canonical NaN
		}
		dst = appendUint64(dst, math.Float64bits(f))
	case KindString:
		dst = appendUint64(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// Per-kind 64-bit salts XORed into a value's payload word before the
// single AddUint64 mix in HashKey. The salts keep same-payload values
// of different kinds (Null, Bool(false), Int(0), Float(0)) from
// hashing alike without spending a second mix on the kind tag; cross-
// kind collisions are merely improbable, not impossible, which is
// fine — every hash consumer verifies candidates against stored keys.
// Arbitrary odd constants; indexed kind&7 to elide bounds checks.
var kindSalt = [8]uint64{
	KindNull:   0x9ae16a3b2f90404f,
	KindBool:   0xc2b2ae3d27d4eb4f,
	KindInt:    0x165667b19e3779f9,
	KindFloat:  0x27d4eb2f165667c5,
	KindString: 0x85ebca77c2b2ae63,
	5:          0x2545f4914f6cdd1d,
	6:          0x5851f42d4c957f2d,
	7:          0x14057b7ef767814f,
}

// canonicalNaN is math.Float64bits(math.NaN()), the representative
// every NaN payload collapses to so all NaNs hash and encode alike
// (Equal treats them as equal).
const canonicalNaN = 0x7ff8000000000001

// HashKey folds v into the running hash h without materializing any
// bytes. Non-string kinds cost exactly one AddUint64 round: the
// payload word (i and the float bits occupy disjoint fields, so their
// XOR is whichever is set) XORed with the kind's salt. Strings salt h
// and hand the contents to hashkey.AddString's word-at-a-time kernel,
// which folds the length itself. Equal values hash alike (NaN is
// canonicalized first), and HashEncodedKey recomputes the identical
// hash from an AppendKey encoding — the bridge string-keyed callers
// use.
func (v Value) HashKey(h uint64) uint64 {
	switch v.kind {
	case KindString:
		return hashkey.AddString(h^kindSalt[KindString], v.s)
	case KindFloat:
		bits := math.Float64bits(v.f)
		if v.f != v.f {
			bits = canonicalNaN
		}
		return hashkey.AddUint64(h, bits^kindSalt[KindFloat])
	default:
		// Null, Bool, Int: the integer payload word (zero for Null)
		// under the kind's salt. The switch keeps the all-int hot path
		// free of the float load the Float arm needs; the arms produce
		// bit-identical hashes to a branchless payload-XOR form, so
		// HashEncodedKey's replay is unaffected.
		return hashkey.AddUint64(h, uint64(v.i)^kindSalt[v.kind&7])
	}
}

// HashEncodedKey folds an AppendKey-produced encoding (one value or
// a whole tuple's concatenation) into h exactly as the corresponding
// HashKey calls would, so a tuple's hash can be recomputed from its
// stored string key alone. The string length prefix is consumed for
// framing only — HashKey does not mix it separately (AddString folds
// the length into its tail round). Trailing bytes that do not form a
// valid encoding are folded through AddString; keys produced by
// AppendKey never have any.
func HashEncodedKey(h uint64, key string) uint64 {
	for len(key) > 0 {
		kind := Kind(key[0])
		key = key[1:]
		switch kind {
		case KindNull:
			h = hashkey.AddUint64(h, kindSalt[KindNull])
		case KindBool, KindInt, KindFloat:
			if len(key) < 8 {
				return hashkey.AddString(h, key)
			}
			h = hashkey.AddUint64(h, readUint64(key)^kindSalt[kind&7])
			key = key[8:]
		case KindString:
			if len(key) < 8 {
				return hashkey.AddString(h, key)
			}
			n := readUint64(key)
			key = key[8:]
			if uint64(len(key)) < n {
				return hashkey.AddString(h, key)
			}
			h = hashkey.AddString(h^kindSalt[KindString], key[:n])
			key = key[n:]
		default:
			return hashkey.AddString(h, key)
		}
	}
	return h
}

// DecodeKey decodes one value from the front of an AppendKey-produced
// encoding, returning the value and the remaining bytes. It is the
// exact inverse of AppendKey (modulo NaN canonicalization, which
// AppendKey already applied), which lets spilled tuples round-trip
// through temp files using the same injective encoding that keys the
// engine's hash maps. A truncated or unknown-kind prefix returns an
// error rather than a partial value.
func DecodeKey(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, b, fmt.Errorf("value: DecodeKey on empty input")
	}
	kind := Kind(b[0])
	b = b[1:]
	switch kind {
	case KindNull:
		return Null, b, nil
	case KindBool, KindInt, KindFloat:
		if len(b) < 8 {
			return Value{}, b, fmt.Errorf("value: DecodeKey: truncated %s payload", kind)
		}
		u := readUint64(string(b[:8]))
		b = b[8:]
		switch kind {
		case KindBool:
			return Bool(u != 0), b, nil
		case KindInt:
			return Int(int64(u)), b, nil
		default:
			return Float(math.Float64frombits(u)), b, nil
		}
	case KindString:
		if len(b) < 8 {
			return Value{}, b, fmt.Errorf("value: DecodeKey: truncated string length")
		}
		n := readUint64(string(b[:8]))
		b = b[8:]
		if uint64(len(b)) < n {
			return Value{}, b, fmt.Errorf("value: DecodeKey: truncated string payload (want %d bytes, have %d)", n, len(b))
		}
		return String(string(b[:n])), b[n:], nil
	default:
		return Value{}, b, fmt.Errorf("value: DecodeKey: unknown kind %d", uint8(kind))
	}
}

// Footprint approximates the live heap bytes held by v: the struct
// itself plus string payload. It intentionally overestimates shared
// string backing arrays — memory accounting rounds up, never down.
func (v Value) Footprint() int64 {
	const structSize = 32 // kind + padding + i + f + string header
	return structSize + int64(len(v.s))
}

func readUint64(s string) uint64 {
	return uint64(s[0])<<56 | uint64(s[1])<<48 | uint64(s[2])<<40 |
		uint64(s[3])<<32 | uint64(s[4])<<24 | uint64(s[5])<<16 |
		uint64(s[6])<<8 | uint64(s[7])
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// String renders the value the way the paper's figures print domain
// elements: bare numerals, unquoted strings, NULL for null.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// Native returns the value as the natural Go type: nil, bool, int64,
// float64, or string. It is the inverse of the row constructors and
// backs scanning into *any destinations.
func (v Value) Native() any {
	switch v.kind {
	case KindBool:
		return v.i != 0
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	default:
		return nil
	}
}

// GoString renders the value as a Go expression, for test diagnostics.
func (v Value) GoString() string {
	switch v.kind {
	case KindNull:
		return "value.Null"
	case KindBool:
		return fmt.Sprintf("value.Bool(%t)", v.i != 0)
	case KindInt:
		return fmt.Sprintf("value.Int(%d)", v.i)
	case KindFloat:
		return fmt.Sprintf("value.Float(%g)", v.f)
	case KindString:
		return fmt.Sprintf("value.String(%q)", v.s)
	default:
		return "value.Value{?}"
	}
}

// Add returns the numeric sum of v and w. Ints stay ints; any float
// operand promotes the result to float. It panics on non-numerics.
func Add(v, w Value) Value {
	if v.kind == KindInt && w.kind == KindInt {
		return Int(v.i + w.i)
	}
	return Float(v.AsFloat() + w.AsFloat())
}

// Less reports whether v sorts strictly before w.
func Less(v, w Value) bool { return Compare(v, w) < 0 }

// Min returns the smaller of v and w under Compare.
func Min(v, w Value) Value {
	if Compare(w, v) < 0 {
		return w
	}
	return v
}

// Max returns the larger of v and w under Compare.
func Max(v, w Value) Value {
	if Compare(w, v) > 0 {
		return w
	}
	return v
}
