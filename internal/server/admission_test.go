package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateFastPath(t *testing.T) {
	g := NewGate(2, 4, 0)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	r1()
	r2()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	if admitted, _, rejected, _ := g.Counters(); admitted != 2 || rejected != 0 {
		t.Fatalf("counters = (%d admitted, %d rejected), want (2, 0)", admitted, rejected)
	}
}

// TestGateRejectsPastQueueLimit is the fast-429 contract: with every
// slot busy and the queue full, Acquire fails immediately instead of
// blocking.
func TestGateRejectsPastQueueLimit(t *testing.T) {
	g := NewGate(1, 1, 0)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Fill the single queue seat with a blocked waiter.
	waiterIn := make(chan struct{})
	waiterOut := make(chan error, 1)
	go func() {
		close(waiterIn)
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		waiterOut <- err
	}()
	<-waiterIn
	// Wait until the waiter occupies the queue.
	deadline := time.Now().Add(2 * time.Second)
	for g.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the queue")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire past full queue = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("overload rejection took %v, want immediate", elapsed)
	}
	if _, _, rejected, _ := g.Counters(); rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}

	// Free the slot: the queued waiter must get it.
	release()
	if err := <-waiterOut; err != nil {
		t.Fatalf("queued waiter = %v, want admission", err)
	}
}

func TestGateQueueWaitTimeout(t *testing.T) {
	g := NewGate(1, 4, 20*time.Millisecond)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueWait) {
		t.Fatalf("Acquire = %v, want ErrQueueWait", err)
	}
	if _, _, _, timeouts := g.Counters(); timeouts != 1 {
		t.Fatalf("queueTimeouts = %d, want 1", timeouts)
	}
}

func TestGateCtxCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 4, 0)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire = %v, want context.Canceled", err)
	}
	if g.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after cancelled wait, want 0", g.QueueDepth())
	}
}

// TestGateConcurrent churns the gate from many goroutines under the
// race detector: the in-flight bound must hold at every instant.
func TestGateConcurrent(t *testing.T) {
	const slots = 3
	g := NewGate(slots, 64, 0)
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxSeen := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				release, err := g.Acquire(context.Background())
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				mu.Lock()
				if n := g.InFlight(); n > maxSeen {
					maxSeen = n
				}
				mu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	if maxSeen > slots {
		t.Fatalf("observed %d in flight, bound is %d", maxSeen, slots)
	}
	if g.InFlight() != 0 || g.QueueDepth() != 0 {
		t.Fatalf("gate not drained: %d in flight, %d queued", g.InFlight(), g.QueueDepth())
	}
}
