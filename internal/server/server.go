package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"divlaws"
)

// Config tunes a Server. The zero value gets sane defaults from New;
// see each field for its default.
type Config struct {
	// MaxInFlight is the number of queries executing concurrently
	// (admission gate slots). Default 4.
	MaxInFlight int
	// MaxQueue is the bounded wait queue behind the in-flight slots;
	// requests arriving past it are rejected with 429 immediately.
	// Default 16. Negative disables queueing entirely.
	MaxQueue int
	// QueueWait caps how long a request may wait for a slot,
	// independent of its own deadline. Default 2s; negative disables
	// the cap (the request's deadline still applies).
	QueueWait time.Duration
	// DefaultDeadline applies to requests that do not set
	// deadline_ms. Default 30s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines. Default 2m.
	MaxDeadline time.Duration
	// StmtCacheSize bounds the prepared-statement cache. Default
	// 256; negative disables caching.
	StmtCacheSize int
	// FlushRows flushes the response stream every n row lines (the
	// header and trailer always flush), bounding how long a slow
	// quotient can sit invisible in server buffers. Default 64.
	FlushRows int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.QueueWait == 0 {
		c.QueueWait = 2 * time.Second
	} else if c.QueueWait < 0 {
		c.QueueWait = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.StmtCacheSize == 0 {
		c.StmtCacheSize = 256
	}
	if c.FlushRows <= 0 {
		c.FlushRows = 64
	}
	return c
}

// Server is the HTTP front end over one embedded divlaws.DB. It is
// an http.Handler serving:
//
//	POST /query   run SQL, stream the result as ndjson
//	GET  /query   same, via ?q=...&args=[...]&deadline_ms=...
//	GET  /stats   server counters (admission, cache, queries)
//	GET  /healthz "ok", or "draining" with 503 during shutdown
//
// Construct with New.
type Server struct {
	db    *divlaws.DB
	cfg   Config
	gate  *Gate
	cache *StmtCache
	mux   *http.ServeMux

	draining atomic.Bool
	active   atomic.Int64 // /query handlers currently running

	started   atomic.Int64
	completed atomic.Int64
	errored   atomic.Int64
	rowsSent  atomic.Int64

	// Out-of-core activity, aggregated from each query's SpillStats.
	bytesSpilled    atomic.Int64
	spillRuns       atomic.Int64
	spillPartitions atomic.Int64
	budgetErrors    atomic.Int64
}

// New builds a Server over db. Zero-valued Config fields take the
// documented defaults.
func New(db *divlaws.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:    db,
		cfg:   cfg,
		gate:  NewGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		cache: NewStmtCache(cfg.StmtCacheSize),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain flips the server into draining mode: new queries are
// refused with 503 while queries already admitted keep streaming to
// completion (or their deadlines). Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Active returns the number of /query requests currently being
// handled (queued or executing).
func (s *Server) Active() int64 { return s.active.Load() }

// Drain begins draining and blocks until every in-flight query has
// finished or ctx expires, returning ctx.Err() in the latter case.
// The caller typically pairs it with http.Server.Shutdown, which
// stops the listener; Drain is the handler-level half that also
// works for in-process servers.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.active.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() Metrics {
	admitted, queued, rejected, timeouts := s.gate.Counters()
	hits, misses, evictions := s.cache.Counters()
	return Metrics{
		Draining:           s.draining.Load(),
		Started:            s.started.Load(),
		Completed:          s.completed.Load(),
		Errored:            s.errored.Load(),
		RowsSent:           s.rowsSent.Load(),
		InFlight:           int64(s.gate.InFlight()),
		QueueDepth:         int64(s.gate.QueueDepth()),
		Admitted:           admitted,
		Queued:             queued,
		Rejected:           rejected,
		QueueTimeouts:      timeouts,
		StmtCacheSize:      s.cache.Len(),
		StmtCacheCap:       s.cache.Cap(),
		StmtCacheHits:      hits,
		StmtCacheMisses:    misses,
		StmtCacheEvictions: evictions,

		BytesSpilled:    s.bytesSpilled.Load(),
		SpillRuns:       s.spillRuns.Load(),
		SpillPartitions: s.spillPartitions.Load(),
		BudgetErrors:    s.budgetErrors.Load(),

		EngineWorkers:        s.db.Workers(),
		EngineBatchSize:      s.db.BatchSize(),
		EngineExchangeBuffer: s.db.ExchangeBuffer(),
		EngineMemoryLimit:    s.db.MemoryLimit(),
	}
}

// recordSpill folds one finished query's out-of-core ledger into the
// server totals.
func (s *Server) recordSpill(st divlaws.SpillStats) {
	if st.SpilledBytes > 0 {
		s.bytesSpilled.Add(st.SpilledBytes)
	}
	if st.Runs > 0 {
		s.spillRuns.Add(st.Runs)
	}
	if st.Partitions > 0 {
		s.spillPartitions.Add(st.Partitions)
	}
}

// budgetCode classifies a pipeline error for the wire: a non-empty
// code marks the typed out-of-core failures a client can react to
// (shrink the query, raise the limit) without parsing prose.
func (s *Server) budgetCode(err error) string {
	switch {
	case errors.Is(err, divlaws.ErrMemoryBudget):
		s.budgetErrors.Add(1)
		return CodeMemoryBudget
	case errors.Is(err, divlaws.ErrSpillIO):
		s.budgetErrors.Add(1)
		return CodeSpillIO
	}
	return ""
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Metrics())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleQuery is the streaming query path: admission, statement
// cache, execution, and chunked ndjson emission.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.active.Add(1)
	defer s.active.Add(-1)

	req, err := parseRequest(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Map the request deadline onto a context derived from the HTTP
	// request's own: client disconnect and deadline expiry both
	// cancel the same ctx, and the engine tears down its pipeline —
	// parallel division workers included — when it fires.
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Admission: the queue wait burns the same deadline budget.
	release, err := s.gate.Acquire(ctx)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded), errors.Is(err, ErrQueueWait):
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusTooManyRequests, err.Error())
		default: // request deadline or disconnect while queued
			writeJSONError(w, http.StatusRequestTimeout, err.Error())
		}
		return
	}
	defer release()

	stmt, releaseStmt, hit, err := s.cache.Get(s.db, req.Query)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer releaseStmt()

	s.started.Add(1)
	start := time.Now()
	rows, err := stmt.Query(ctx, req.Args...)
	if err != nil {
		s.errored.Add(1)
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status = http.StatusRequestTimeout
		case s.budgetCode(err) != "":
			// The query cannot run under the engine's memory budget
			// (or spilling itself failed) before any row was
			// produced: refuse with 507 so clients can tell capacity
			// from syntax.
			status = http.StatusInsufficientStorage
		}
		writeJSONError(w, status, err.Error())
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	enc.Encode(Line{Header: &Header{
		Columns:   rows.Columns(),
		Ordered:   rows.Ordered(),
		StmtCache: cacheState,
	}})
	if flusher != nil {
		flusher.Flush()
	}

	// Stream: each tuple is scanned into natives, encoded, and
	// written as its own line; the cursor pulls the next tuple only
	// after this one is on the wire (modulo FlushRows buffering), so
	// the server never holds more than a chunk of the quotient.
	cols := len(rows.Columns())
	vals := make([]any, cols)
	ptrs := make([]any, cols)
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	var n int64
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			s.errored.Add(1)
			enc.Encode(Line{Error: err.Error()})
			return
		}
		if err := enc.Encode(Line{Row: vals}); err != nil {
			// Client went away mid-stream; rows.Close (deferred)
			// cancels the pipeline.
			s.errored.Add(1)
			return
		}
		n++
		if flusher != nil && n%int64(s.cfg.FlushRows) == 0 {
			flusher.Flush()
		}
	}
	s.rowsSent.Add(n)
	if err := rows.Err(); err != nil {
		// Mid-stream failure (deadline expiry, pipeline error, budget
		// exhaustion during a recursive repartition): the stream ends
		// with an error line instead of a trailer — never a killed
		// connection. Flush it now — the deferred rows.Close may block
		// reaping workers. Budget and spill-I/O failures carry a typed
		// code so clients can react without parsing the message.
		s.errored.Add(1)
		s.recordSpill(rows.Stats().Spill)
		enc.Encode(Line{Error: err.Error(), Code: s.budgetCode(err)})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}

	stats := rows.Stats()
	s.recordSpill(stats.Spill)
	enc.Encode(Line{Trailer: &Trailer{
		Rows:         n,
		Ordered:      rows.Ordered(),
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1000,
		StatsTotal:   stats.Total(),
		Stats:        stats.Emitted,
		SpilledBytes: stats.Spill.SpilledBytes,
	}})
	if flusher != nil {
		flusher.Flush()
	}
	s.completed.Add(1)
}

// parseRequest extracts a Request from either verb: a JSON body on
// POST, query parameters on GET.
func parseRequest(r *http.Request) (Request, error) {
	var req Request
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.UseNumber()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		if raw := q.Get("args"); raw != "" {
			dec := json.NewDecoder(strings.NewReader(raw))
			dec.UseNumber()
			if err := dec.Decode(&req.Args); err != nil {
				return req, fmt.Errorf("bad args parameter (want a JSON array): %w", err)
			}
		}
		if raw := q.Get("deadline_ms"); raw != "" {
			ms, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad deadline_ms: %w", err)
			}
			req.DeadlineMS = ms
		}
	default:
		return req, fmt.Errorf("method %s not allowed on /query", r.Method)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("empty query")
	}
	req.Args = normalizeArgs(req.Args)
	return req, nil
}

// normalizeArgs converts json.Number placeholders into the engine's
// scalar types: int64 when integral, float64 otherwise.
func normalizeArgs(args []any) []any {
	for i, a := range args {
		num, ok := a.(json.Number)
		if !ok {
			continue
		}
		if v, err := num.Int64(); err == nil {
			args[i] = v
		} else if f, err := num.Float64(); err == nil {
			args[i] = f
		}
	}
	return args
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
