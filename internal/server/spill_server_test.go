package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"divlaws"
)

// TestQueryCompletesUnderMemoryBudget is the server-side out-of-core
// acceptance: a division whose working set dwarfs the engine's memory
// budget completes over the wire — same row count as the unlimited
// server, a proper trailer reporting the spill volume — instead of a
// 5xx or a killed process. /stats aggregates the activity.
func TestQueryCompletesUnderMemoryBudget(t *testing.T) {
	const scale = 2000
	_, unlimited := newTestServer(t, scale, Config{})
	resp := postQuery(t, unlimited.URL, Request{Query: testQ1})
	oracle := readStream(t, resp.Body)
	resp.Body.Close()
	if oracle.trailer == nil || oracle.rows == 0 {
		t.Fatalf("unlimited oracle failed: %+v", oracle)
	}

	const budget = 64 << 10
	srv, ts := newTestServer(t, scale, Config{}, divlaws.WithMemoryLimit(budget))
	resp = postQuery(t, ts.URL, Request{Query: testQ1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted query status = %d", resp.StatusCode)
	}
	got := readStream(t, resp.Body)
	resp.Body.Close()
	if got.errLine != "" {
		t.Fatalf("budgeted query errored: %s (code %s)", got.errLine, got.errCode)
	}
	if got.trailer == nil {
		t.Fatal("budgeted stream ended without a trailer")
	}
	if got.rows != oracle.rows {
		t.Fatalf("budgeted query streamed %d rows, unlimited %d", got.rows, oracle.rows)
	}
	if got.trailer.SpilledBytes == 0 {
		t.Fatal("working set 10x the budget but the trailer reports no spill")
	}

	var m Metrics
	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if m.BytesSpilled == 0 || m.SpillRuns == 0 {
		t.Errorf("stats spill counters = %d bytes / %d runs, want > 0", m.BytesSpilled, m.SpillRuns)
	}
	if m.EngineMemoryLimit != budget {
		t.Errorf("engine_memory_limit = %d, want %d", m.EngineMemoryLimit, budget)
	}
	if m.BudgetErrors != 0 {
		t.Errorf("budget_errors = %d, want 0 — the query completed", m.BudgetErrors)
	}
	_ = srv
}

// TestBudgetTooSmallRefusedTyped: a budget smaller than the query's
// irreducible state (the divisor itself) cannot be saved by spilling.
// The server must refuse with 507 before streaming, and count it.
func TestBudgetTooSmallRefusedTyped(t *testing.T) {
	srv, ts := newTestServer(t, 200, Config{}, divlaws.WithMemoryLimit(256))
	resp := postQuery(t, ts.URL, Request{Query: testQ1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("status = %d, want 507", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Fatal("507 without an error message")
	}
	if m := srv.Metrics(); m.BudgetErrors != 1 {
		t.Errorf("budget_errors = %d, want 1", m.BudgetErrors)
	}
}
