// Lifecycle tests for the streaming query server, run under -race in
// CI: deadline expiry mid-stream tears down parallel workers, client
// disconnect closes the cursor, graceful drain finishes in-flight
// queries, the admission gate rejects past the queue limit, and every
// teardown path returns the process to its goroutine baseline.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"divlaws"
	"divlaws/internal/datagen"
	"divlaws/internal/parallel"
)

const testQ1 = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#"

// newTestServer builds a Server over a generated suppliers-and-parts
// dataset and serves it from an httptest listener.
func newTestServer(t *testing.T, scale int, cfg Config, opts ...divlaws.Option) (*Server, *httptest.Server) {
	t.Helper()
	sup, par := datagen.SuppliersParts{
		Suppliers: scale, Parts: 32, Colors: 8, AvgSupplied: 16, Seed: 11,
	}.Generate()
	// Default to an explicitly unlimited budget so an ambient
	// DIVLAWS_FORCE_SPILL does not perturb the timing- and
	// partition-sensitive fixtures; tests exercising the budget pass
	// their own WithMemoryLimit later in opts, which wins.
	db := divlaws.Open(append([]divlaws.Option{divlaws.WithMemoryLimit(-1)}, opts...)...)
	db.MustRegister("supplies", divlaws.MustNewRelation(sup.Schema().Attrs(), sup.Rows()))
	db.MustRegister("parts", divlaws.MustNewRelation(par.Schema().Attrs(), par.Rows()))
	srv := New(db, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// waitGoroutines polls until the goroutine count settles back to
// baseline, failing after a deadline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// waitFor polls a condition with a deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// stream is one parsed ndjson response.
type stream struct {
	header  *Header
	rows    int64
	trailer *Trailer
	errLine string
	errCode string
}

func readStream(t *testing.T, body io.Reader) stream {
	t.Helper()
	var s stream
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		var l Line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		switch {
		case l.Header != nil:
			s.header = l.Header
		case l.Row != nil:
			s.rows++
		case l.Trailer != nil:
			s.trailer = l.Trailer
		case l.Error != "":
			s.errLine = l.Error
			s.errCode = l.Code
		}
	}
	return s
}

func postQuery(t *testing.T, url string, req Request) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	return resp
}

// gateAllBut stalls every partition worker except part 0 until the
// returned release func runs (idempotent). Restore is registered on
// t.Cleanup, gate release too — tests can fail at any point without
// deadlocking Close.
func gateAllBut0(t *testing.T) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(ch) }) }
	restore := parallel.SetPartitionGateForTesting(func(part int) {
		if part != 0 {
			<-ch
		}
	})
	t.Cleanup(func() { release(); restore() })
	return release
}

// TestQueryStreamAndTrailerIntegrity is the basic wire contract:
// header, row lines, and a trailer whose row count, ordering flag,
// and per-operator stats let a client verify the stream cheaply. The
// second run of the same text must be a statement-cache hit.
func TestQueryStreamAndTrailerIntegrity(t *testing.T) {
	_, ts := newTestServer(t, 100, Config{FlushRows: 1})
	for i, wantCache := range []string{"miss", "hit"} {
		resp := postQuery(t, ts.URL, Request{Query: testQ1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
		s := readStream(t, resp.Body)
		resp.Body.Close()
		if s.header == nil || s.trailer == nil || s.errLine != "" {
			t.Fatalf("run %d: incomplete stream: header=%v trailer=%v err=%q", i, s.header, s.trailer, s.errLine)
		}
		if got := strings.Join(s.header.Columns, ","); got != "s#,color" {
			t.Errorf("run %d: columns = %q", i, got)
		}
		if s.header.StmtCache != wantCache {
			t.Errorf("run %d: stmt_cache = %q, want %q", i, s.header.StmtCache, wantCache)
		}
		if s.rows == 0 || s.trailer.Rows != s.rows {
			t.Errorf("run %d: %d row lines, trailer says %d", i, s.rows, s.trailer.Rows)
		}
		if s.trailer.StatsTotal <= 0 || len(s.trailer.Stats) == 0 {
			t.Errorf("run %d: missing QueryStats in trailer: %+v", i, s.trailer)
		}
		if s.trailer.Ordered || s.header.Ordered {
			t.Errorf("run %d: unordered query reported ordered", i)
		}
	}
}

// TestOrderedQueryReportsGuarantee: an ORDER BY ... LIMIT query must
// surface Rows.Ordered through header and trailer.
func TestOrderedQueryReportsGuarantee(t *testing.T) {
	_, ts := newTestServer(t, 100, Config{})
	resp := postQuery(t, ts.URL, Request{Query: testQ1 + " ORDER BY s# LIMIT 5"})
	defer resp.Body.Close()
	s := readStream(t, resp.Body)
	if s.trailer == nil || !s.trailer.Ordered || s.header == nil || !s.header.Ordered {
		t.Fatalf("ordered query not flagged: header=%+v trailer=%+v", s.header, s.trailer)
	}
	var prev string
	resp2 := postQuery(t, ts.URL, Request{Query: testQ1 + " ORDER BY s# LIMIT 5"})
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		var l Line
		json.Unmarshal(sc.Bytes(), &l)
		if l.Row == nil {
			continue
		}
		cur := l.Row[0].(string)
		if prev != "" && cur < prev {
			t.Fatalf("ordered stream out of order: %q after %q", cur, prev)
		}
		prev = cur
	}
}

// TestDeadlineExpiryMidStreamCancelsWorkers slows every partition
// but one (a sleep in the partition-gate hook, simulating a heavy
// partition), so the stream provably starts — rows from the fast
// partition arrive while most of the division is still pending, the
// streaming, non-materializing path — and then hits its deadline
// mid-stream. The response must end with an error line and no
// trailer, and the cancelled workers must exit once they observe the
// expired context: goroutines return to baseline.
func TestDeadlineExpiryMidStreamCancelsWorkers(t *testing.T) {
	const stall = 2500 * time.Millisecond
	restore := parallel.SetPartitionGateForTesting(func(part int) {
		if part != 0 {
			time.Sleep(stall)
		}
	})
	defer restore()
	srv, ts := newTestServer(t, 200, Config{FlushRows: 1},
		divlaws.WithWorkers(4), divlaws.WithParallelThreshold(1))
	client := &http.Client{}
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	body, _ := json.Marshal(Request{Query: testQ1, DeadlineMS: 500})
	resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	s := readStream(t, resp.Body)
	resp.Body.Close()
	if s.header == nil {
		t.Fatal("no header line: query never started streaming")
	}
	if s.rows == 0 {
		t.Error("no rows before the deadline: stream did not start mid-division")
	}
	if s.trailer != nil || s.errLine == "" || !strings.Contains(s.errLine, "deadline") {
		t.Fatalf("want a deadline error line and no trailer, got trailer=%+v err=%q", s.trailer, s.errLine)
	}
	waitFor(t, "handler exit", func() bool { return srv.Active() == 0 })
	client.CloseIdleConnections()
	waitGoroutines(t, baseline)
	if m := srv.Metrics(); m.Errored != 1 || m.Completed != 0 {
		t.Errorf("metrics = %d errored / %d completed, want 1/0", m.Errored, m.Completed)
	}
}

// TestClientDisconnectClosesRows: a client that goes away mid-stream
// must cancel the query context, close the cursor, and release every
// exchange worker. Stalling all partitions but one guarantees the
// query is genuinely mid-flight when the client vanishes; the gate
// opens only after the disconnect, so the workers wake into an
// already-cancelled context and must be reaped.
func TestClientDisconnectClosesRows(t *testing.T) {
	release := gateAllBut0(t)
	srv, ts := newTestServer(t, 200, Config{FlushRows: 1},
		divlaws.WithWorkers(4), divlaws.WithParallelThreshold(1))
	client := &http.Client{}
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(Request{Query: testQ1})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the header — the stream is live — then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading header: %v", err)
	}
	cancel()
	resp.Body.Close()
	release()

	// The server observes the disconnect (context cancellation or a
	// failed write), errors the query, and rows.Close reaps every
	// exchange worker.
	waitFor(t, "query errored", func() bool { return srv.Metrics().Errored == 1 })
	waitFor(t, "handler exit", func() bool { return srv.Active() == 0 })
	client.CloseIdleConnections()
	waitGoroutines(t, baseline)
}

// TestGracefulDrainCompletesInFlight: draining refuses new work with
// 503 while an already-admitted query keeps streaming to a clean
// trailer, and Drain returns once it finishes.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	release := gateAllBut0(t)
	srv, ts := newTestServer(t, 200, Config{FlushRows: 1},
		divlaws.WithWorkers(4), divlaws.WithParallelThreshold(1))

	type result struct {
		s      stream
		status int
	}
	done := make(chan result, 1)
	go func() {
		resp := postQuery(t, ts.URL, Request{Query: testQ1})
		defer resp.Body.Close()
		done <- result{readStream(t, resp.Body), resp.StatusCode}
	}()
	waitFor(t, "query in flight", func() bool { return srv.Active() == 1 })

	srv.BeginDrain()
	resp := postQuery(t, ts.URL, Request{Query: testQ1})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hresp.StatusCode)
	}

	// Open the gate: the in-flight query must complete cleanly and
	// Drain must return nil.
	release()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	r := <-done
	if r.status != http.StatusOK || r.s.trailer == nil || r.s.trailer.Rows != r.s.rows || r.s.rows == 0 {
		t.Fatalf("in-flight query did not complete cleanly: status=%d stream=%+v", r.status, r.s)
	}
}

// TestAdmissionRejectsOverHTTP: with one slot held and no queue, the
// next request must get an immediate 429; after the slot frees, the
// held query still completes.
func TestAdmissionRejectsOverHTTP(t *testing.T) {
	release := gateAllBut0(t)
	srv, ts := newTestServer(t, 200, Config{MaxInFlight: 1, MaxQueue: -1, FlushRows: 1},
		divlaws.WithWorkers(4), divlaws.WithParallelThreshold(1))

	done := make(chan stream, 1)
	go func() {
		resp := postQuery(t, ts.URL, Request{Query: testQ1})
		defer resp.Body.Close()
		done <- readStream(t, resp.Body)
	}()
	waitFor(t, "slot occupied", func() bool { return srv.Metrics().InFlight == 1 })

	start := time.Now()
	resp := postQuery(t, ts.URL, Request{Query: testQ1})
	var errBody map[string]string
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %v", resp.StatusCode, errBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("rejection took %v, want fast", elapsed)
	}
	if m := srv.Metrics(); m.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", m.Rejected)
	}

	release()
	s := <-done
	if s.trailer == nil || s.trailer.Rows != s.rows {
		t.Fatalf("held query did not complete: %+v", s)
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees: a request that found every
// slot busy but queue room available must run once the slot frees —
// bounded queueing, not rejection.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	release := gateAllBut0(t)
	srv, ts := newTestServer(t, 200, Config{MaxInFlight: 1, MaxQueue: 4, QueueWait: 5 * time.Second, FlushRows: 1},
		divlaws.WithWorkers(4), divlaws.WithParallelThreshold(1))

	first := make(chan stream, 1)
	go func() {
		resp := postQuery(t, ts.URL, Request{Query: testQ1})
		defer resp.Body.Close()
		first <- readStream(t, resp.Body)
	}()
	waitFor(t, "slot occupied", func() bool { return srv.Metrics().InFlight == 1 })

	second := make(chan stream, 1)
	go func() {
		resp := postQuery(t, ts.URL, Request{Query: testQ1 + " LIMIT 1"})
		defer resp.Body.Close()
		second <- readStream(t, resp.Body)
	}()
	waitFor(t, "request queued", func() bool { return srv.Metrics().QueueDepth == 1 })

	release()
	s1, s2 := <-first, <-second
	if s1.trailer == nil || s2.trailer == nil {
		t.Fatalf("queued execution failed: first=%+v second=%+v", s1, s2)
	}
	if m := srv.Metrics(); m.Queued != 1 || m.Rejected != 0 {
		t.Errorf("metrics = %d queued / %d rejected, want 1/0", m.Queued, m.Rejected)
	}
}

// TestLimitOneOverHTTPCancelsWorkers is the end-to-end early-exit
// acceptance over the wire: LIMIT 1 on a large parallel division
// must leave most of the quotient uncomputed, observable in the
// trailer's per-partition stats.
func TestLimitOneOverHTTPCancelsWorkers(t *testing.T) {
	sup, par := datagen.SuppliersParts{
		Suppliers: 3000, Parts: 40, Colors: 4, AvgSupplied: 20, Seed: 7,
	}.Generate()
	// WithMemoryLimit(-1): the per-partition stats asserted below only
	// exist on the partitioned-exchange path, which a forced tiny
	// budget from the environment would replace with inline fallback.
	db := divlaws.Open(divlaws.WithWorkers(4), divlaws.WithParallelThreshold(1),
		divlaws.WithExchangeBuffer(1), divlaws.WithMemoryLimit(-1))
	db.MustRegister("supplies", divlaws.MustNewRelation(sup.Schema().Attrs(), sup.Rows()))
	db.MustRegister("parts", divlaws.MustNewRelation(par.Schema().Attrs(), par.Rows()))
	srv := New(db, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	partTotal := func(stats map[string]int64) int64 {
		var total int64
		for label, n := range stats {
			if strings.Contains(label, "/part") {
				total += n
			}
		}
		return total
	}

	resp := postQuery(t, ts.URL, Request{Query: testQ1})
	full := readStream(t, resp.Body)
	resp.Body.Close()
	if full.trailer == nil || full.rows < 1000 {
		t.Fatalf("fixture too small: %+v", full.trailer)
	}
	fullParts := partTotal(full.trailer.Stats)

	resp = postQuery(t, ts.URL, Request{Query: testQ1 + " LIMIT 1"})
	limited := readStream(t, resp.Body)
	resp.Body.Close()
	if limited.trailer == nil || limited.rows != 1 {
		t.Fatalf("LIMIT 1 stream: %+v", limited)
	}
	if got := partTotal(limited.trailer.Stats); got >= fullParts/2 {
		t.Errorf("workers emitted %d of %d quotient tuples despite LIMIT 1", got, fullParts)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 50, Config{})
	for _, tc := range []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"empty query", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":""}`))
		}, http.StatusBadRequest},
		{"bad json", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{`))
		}, http.StatusBadRequest},
		{"bad sql", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":"SELECT FROM WHERE"}`))
		}, http.StatusBadRequest},
		{"unknown table", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":"SELECT x FROM nope"}`))
		}, http.StatusBadRequest},
		{"bad method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusBadRequest},
		{"get missing q", func() (*http.Response, error) {
			return http.Get(ts.URL + "/query")
		}, http.StatusBadRequest},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestGetQueryWithArgs exercises the GET form: ?q= with a JSON args
// array binding a ? placeholder.
func TestGetQueryWithArgs(t *testing.T) {
	_, ts := newTestServer(t, 50, Config{})
	u := fmt.Sprintf("%s/query?q=%s&args=%s", ts.URL,
		"SELECT+p%23+FROM+parts+WHERE+color+%3D+%3F", "%5B%22color0%22%5D")
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	s := readStream(t, resp.Body)
	if s.trailer == nil || s.rows == 0 || s.rows != s.trailer.Rows {
		t.Fatalf("GET stream: %+v", s)
	}
}

// TestConcurrentQueriesUnderGate floods the server with more clients
// than slots+queue: every response must be either a clean stream or
// a fast 429 — and afterwards the goroutine count returns to
// baseline and the gate is empty.
func TestConcurrentQueriesUnderGate(t *testing.T) {
	srv, ts := newTestServer(t, 150, Config{MaxInFlight: 2, MaxQueue: 2, QueueWait: 2 * time.Second},
		divlaws.WithWorkers(2), divlaws.WithParallelThreshold(1))
	client := &http.Client{}
	baseline := runtime.NumGoroutine()

	const n = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, rejected := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(Request{Query: testQ1, DeadlineMS: 10000})
			resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				s := readStream(t, resp.Body)
				if s.trailer == nil || s.trailer.Rows != s.rows {
					t.Errorf("bad stream: %+v", s)
					return
				}
				mu.Lock()
				ok++
				mu.Unlock()
			case http.StatusTooManyRequests:
				io.Copy(io.Discard, resp.Body)
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("status %d: %s", resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no query succeeded under load")
	}
	if ok+rejected != n {
		t.Fatalf("accounted %d of %d requests", ok+rejected, n)
	}
	t.Logf("flood: %d ok, %d rejected", ok, rejected)
	waitFor(t, "gate empty", func() bool {
		m := srv.Metrics()
		return m.InFlight == 0 && m.QueueDepth == 0
	})
	client.CloseIdleConnections()
	waitGoroutines(t, baseline)
}
