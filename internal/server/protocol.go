// Package server is the network front end over the embedding API: an
// HTTP/JSON query server that streams result rows chunk-by-chunk off
// a divlaws.Rows cursor — the quotient is never materialized
// server-side — with a bounded-concurrency admission gate, a
// server-side prepared-statement cache, per-request deadlines mapped
// onto context.Context, and graceful drain.
//
// The wire protocol is newline-delimited JSON (ndjson). A successful
// query response is one header line, zero or more row lines, and one
// trailer line; a stream that fails mid-flight ends with an error
// line instead of a trailer:
//
//	{"header":{"columns":["s#","color"],"ordered":false,"stmt_cache":"hit"}}
//	{"row":["s1","red"]}
//	{"row":["s3","red"]}
//	{"trailer":{"rows":2,"ordered":false,"elapsed_ms":1.42,"stats_total":96,"stats":{...}}}
//
// Requests the server will not run are refused before any streaming
// starts, with a plain JSON error object and an HTTP status:
// 400 (bad SQL or malformed request), 429 (admission queue full or
// queue wait exceeded), 503 (server draining).
package server

// Request is the body of POST /query. GET /query?q=...&args=...
// &deadline_ms=... maps onto the same fields.
type Request struct {
	// Query is the SQL text, DIVIDE BY included. Positional ?
	// placeholders are bound to Args at execution time, which is what
	// makes the server-side statement cache effective: the cache key
	// is the text, so repeated calls with different Args reuse the
	// parsed statement.
	Query string `json:"query"`
	// Args are the values for the query's ? placeholders. JSON
	// numbers are bound as int64 when integral, float64 otherwise.
	Args []any `json:"args,omitempty"`
	// DeadlineMS caps the query's wall-clock time, queue wait
	// included. Zero means the server default; values above the
	// server maximum are clamped to it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Line is one ndjson response line: exactly one field is set.
type Line struct {
	Header  *Header  `json:"header,omitempty"`
	Row     []any    `json:"row,omitempty"`
	Trailer *Trailer `json:"trailer,omitempty"`
	// Error terminates a stream that failed after the header was
	// sent (deadline expiry mid-stream, pipeline failure). Streams
	// refused before execution use the HTTP status instead.
	Error string `json:"error,omitempty"`
	// Code accompanies Error for typed failures a client can react
	// to programmatically; see the Code* constants. Empty for
	// untyped failures.
	Code string `json:"code,omitempty"`
}

// Typed error codes carried by Line.Code and mirrored in the HTTP
// status (507) when the failure happens before streaming starts.
const (
	// CodeMemoryBudget: the query cannot run under the engine's
	// per-query memory budget even after spilling — its irreducible
	// state (the divisor, or one key group after maximal recursive
	// partitioning) exceeds the limit.
	CodeMemoryBudget = "memory_budget"
	// CodeSpillIO: the engine tried to spill but the temp-file I/O
	// failed (disk full, permissions).
	CodeSpillIO = "spill_io"
)

// Header opens every accepted query stream.
type Header struct {
	// Columns are the result column names in output order.
	Columns []string `json:"columns"`
	// Ordered mirrors Rows.Ordered: whether the stream carries the
	// plan's physical ordering guarantee (ORDER BY / top-k).
	Ordered bool `json:"ordered"`
	// StmtCache reports whether this query's prepared statement was
	// a cache "hit" or a "miss".
	StmtCache string `json:"stmt_cache"`
}

// Trailer closes every successful query stream. It carries the
// integrity data a client needs to verify the stream cheaply:
// the row count it should have seen, the ordering guarantee, and the
// engine's per-operator tuple counters.
type Trailer struct {
	// Rows is the number of row lines the server wrote.
	Rows int64 `json:"rows"`
	// Ordered mirrors Rows.Ordered, repeated from the header so a
	// trailer alone is self-describing.
	Ordered bool `json:"ordered"`
	// ElapsedMS is the server-side wall time from admission to the
	// last row.
	ElapsedMS float64 `json:"elapsed_ms"`
	// StatsTotal is QueryStats.Total(): tuples moved by all plan
	// operators, the engine's measure of intermediate volume.
	StatsTotal int64 `json:"stats_total"`
	// Stats is the full per-operator emission map
	// (QueryStats.Emitted), keyed by plan position.
	Stats map[string]int64 `json:"stats,omitempty"`
	// SpilledBytes is the query's out-of-core volume: bytes written
	// to spill runs under the engine's memory budget. Zero when the
	// query ran entirely in memory.
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
}

// Metrics is the response of GET /stats: a point-in-time snapshot of
// the server's counters.
type Metrics struct {
	Draining bool `json:"draining"`

	// Queries.
	Started   int64 `json:"queries_started"`
	Completed int64 `json:"queries_completed"`
	Errored   int64 `json:"queries_errored"`
	RowsSent  int64 `json:"rows_streamed"`

	// Admission gate.
	InFlight      int64 `json:"inflight"`
	QueueDepth    int64 `json:"queue_depth"`
	Admitted      int64 `json:"admitted"`
	Queued        int64 `json:"queued"`
	Rejected      int64 `json:"rejected"`
	QueueTimeouts int64 `json:"queue_timeouts"`

	// Statement cache.
	StmtCacheSize      int   `json:"stmt_cache_size"`
	StmtCacheCap       int   `json:"stmt_cache_cap"`
	StmtCacheHits      int64 `json:"stmt_cache_hits"`
	StmtCacheMisses    int64 `json:"stmt_cache_misses"`
	StmtCacheEvictions int64 `json:"stmt_cache_evictions"`

	// Out-of-core execution, aggregated across finished queries.
	BytesSpilled    int64 `json:"bytes_spilled"`
	SpillRuns       int64 `json:"spill_runs"`
	SpillPartitions int64 `json:"spill_partitions"`
	BudgetErrors    int64 `json:"budget_errors"`

	// Engine configuration, for honest benchmark labeling.
	EngineWorkers        int   `json:"engine_workers"`
	EngineBatchSize      int   `json:"engine_batch_size"`
	EngineExchangeBuffer int   `json:"engine_exchange_buffer"`
	EngineMemoryLimit    int64 `json:"engine_memory_limit"`
}
