package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Gate.Acquire when the wait queue is
// already full: the request is refused immediately (the fast 429)
// instead of joining an unbounded line.
var ErrOverloaded = errors.New("server overloaded: admission queue full")

// ErrQueueWait is returned when a request was admitted to the wait
// queue but its context expired (request deadline or the gate's
// queue-wait cap) before an execution slot freed up.
var ErrQueueWait = errors.New("timed out waiting for an execution slot")

// Gate is the admission controller: at most maxInFlight queries
// execute concurrently, at most maxQueue more wait for a slot, and
// everything beyond that is rejected immediately. Under a burst of
// heavy divisions the server therefore degrades to bounded queueing
// — bounded memory, bounded latency — rather than admitting
// arbitrarily many concurrent pipelines.
type Gate struct {
	sem       chan struct{} // execution slots; len(sem) = in-flight
	queue     chan struct{} // wait-queue tokens; len(queue) = queued
	queueWait time.Duration // cap on time spent queued; 0 = deadline only

	admitted      atomic.Int64
	queued        atomic.Int64
	rejected      atomic.Int64
	queueTimeouts atomic.Int64
}

// NewGate builds a gate with the given slot and queue bounds.
// maxInFlight < 1 is treated as 1; maxQueue < 0 as 0 (no queueing:
// every request past the in-flight limit is rejected outright).
func NewGate(maxInFlight, maxQueue int, queueWait time.Duration) *Gate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{
		sem:       make(chan struct{}, maxInFlight),
		queue:     make(chan struct{}, maxQueue),
		queueWait: queueWait,
	}
}

// Acquire claims an execution slot, blocking in the bounded wait
// queue if none is free. It returns a release function — idempotent,
// so a defer'd release composes with an explicit early one — on
// success. It fails fast with ErrOverloaded when the queue is full,
// with ErrQueueWait when the gate's queue-wait cap expires first,
// and with ctx.Err() when the caller's context does.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a slot is free right now.
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return g.releaseFunc(), nil
	default:
	}
	// Slow path: join the wait queue — if there is room.
	select {
	case g.queue <- struct{}{}:
	default:
		g.rejected.Add(1)
		return nil, ErrOverloaded
	}
	g.queued.Add(1)
	defer func() { <-g.queue }()

	wait := ctx
	if g.queueWait > 0 {
		var cancel context.CancelFunc
		wait, cancel = context.WithTimeout(ctx, g.queueWait)
		defer cancel()
	}
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return g.releaseFunc(), nil
	case <-wait.Done():
		g.queueTimeouts.Add(1)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, ErrQueueWait
	}
}

// releaseFunc wraps the slot return in a Once so double-release is
// harmless (it would otherwise block on — or steal from — the
// semaphore).
func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-g.sem }) }
}

// InFlight returns the number of currently executing queries.
func (g *Gate) InFlight() int { return len(g.sem) }

// QueueDepth returns the number of requests currently waiting.
func (g *Gate) QueueDepth() int { return len(g.queue) }

// Counters returns the gate's lifetime totals: admitted, queued,
// rejected (queue full), and queue-wait timeouts.
func (g *Gate) Counters() (admitted, queued, rejected, queueTimeouts int64) {
	return g.admitted.Load(), g.queued.Load(), g.rejected.Load(), g.queueTimeouts.Load()
}
