package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"divlaws"
)

func cacheDB() *divlaws.DB {
	db := divlaws.Open()
	db.MustRegister("parts", divlaws.MustNewRelation(
		[]string{"p#", "color"},
		[][]any{{"p1", "red"}, {"p2", "blue"}}))
	return db
}

func TestStmtCacheHitMiss(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(4)
	const q = "SELECT p# FROM parts"
	st1, rel1, hit, err := c.Get(db, q)
	if err != nil || hit {
		t.Fatalf("first Get = (hit=%t, %v), want miss", hit, err)
	}
	rel1()
	st2, rel2, hit, err := c.Get(db, q)
	if err != nil || !hit {
		t.Fatalf("second Get = (hit=%t, %v), want hit", hit, err)
	}
	rel2()
	if st1 != st2 {
		t.Fatal("hit returned a different statement")
	}
	if hits, misses, _ := c.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("counters = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestStmtCacheParseErrorNotCached(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(4)
	for i := 0; i < 2; i++ {
		if _, _, hit, err := c.Get(db, "SELECT FROM nothing WHERE"); err == nil || hit {
			t.Fatalf("Get #%d on bad SQL = (hit=%t, err=%v), want miss+error", i, hit, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("bad SQL cached: len = %d", c.Len())
	}
}

// TestStmtCacheLRUEviction fills the cache past capacity and checks
// that the least recently used entry — not the most recent — is the
// one evicted.
func TestStmtCacheLRUEviction(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(2)
	get := func(q string) bool {
		t.Helper()
		_, release, hit, err := c.Get(db, q)
		if err != nil {
			t.Fatal(err)
		}
		release()
		return hit
	}
	qa := "SELECT p# FROM parts"
	qb := "SELECT color FROM parts"
	qc := "SELECT p#, color FROM parts"
	get(qa)
	get(qb)
	get(qa) // refresh qa: qb is now LRU
	get(qc) // evicts qb
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if !get(qa) {
		t.Error("qa evicted despite being recently used")
	}
	if !get(qc) {
		t.Error("qc evicted despite being newest")
	}
	if get(qb) {
		t.Error("qb not evicted despite being LRU")
	}
	if _, _, evictions := c.Counters(); evictions != 2 {
		// qc's insert evicted qb; qb's re-insert evicted qa or qc.
		t.Fatalf("evictions = %d, want 2", evictions)
	}
}

// TestStmtCacheEvictedStmtStillRuns pins the refcounted eviction
// policy: a request that got its statement just before eviction must
// still be able to execute it, and the statement is Closed only when
// that request releases it.
func TestStmtCacheEvictedStmtStillRuns(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(1)
	st, release, _, err := c.Get(db, "SELECT p# FROM parts")
	if err != nil {
		t.Fatal(err)
	}
	_, rel2, _, err := c.Get(db, "SELECT color FROM parts")
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if _, _, evictions := c.Counters(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	rows, err := st.Query(context.Background())
	if err != nil {
		t.Fatalf("evicted-but-pinned statement no longer runs: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 2 {
		t.Fatalf("evicted statement streamed %d rows, want 2", n)
	}
	// The last release closes the evicted statement.
	release()
	if _, err := st.Query(context.Background()); err == nil {
		t.Fatal("evicted statement still runnable after the last release")
	}
}

// TestStmtCacheEvictionClosesIdle is the other half of the leak fix:
// an evicted statement with no in-flight queries is Closed
// immediately, not left for the garbage collector to maybe find.
func TestStmtCacheEvictionClosesIdle(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(1)
	st, release, _, err := c.Get(db, "SELECT p# FROM parts")
	if err != nil {
		t.Fatal(err)
	}
	release() // idle before the eviction below
	_, rel2, _, err := c.Get(db, "SELECT color FROM parts")
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if _, err := st.Query(context.Background()); err == nil {
		t.Fatal("idle evicted statement was not Closed")
	}
}

func TestStmtCacheDisabled(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(0)
	for i := 0; i < 3; i++ {
		st, release, hit, err := c.Get(db, "SELECT p# FROM parts")
		if err != nil || hit {
			t.Fatalf("disabled cache Get = (hit=%t, %v), want fresh miss", hit, err)
		}
		release()
		if _, err := st.Query(context.Background()); err == nil {
			t.Fatal("uncached statement not Closed by its release")
		}
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}

// TestStmtCacheConcurrent hammers hits, misses, and evictions from
// many goroutines under -race; every Get must return a runnable
// statement for its own text.
func TestStmtCacheConcurrent(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(4) // smaller than the working set: constant eviction
	texts := make([]string, 8)
	for i := range texts {
		texts[i] = fmt.Sprintf("SELECT p# FROM parts WHERE color = 'c%d'", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				text := texts[(g+j)%len(texts)]
				st, release, _, err := c.Get(db, text)
				if err != nil {
					t.Errorf("Get(%q): %v", text, err)
					return
				}
				if st.Text() != text {
					t.Errorf("Get(%q) returned statement for %q", text, st.Text())
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
	hits, misses, evictions := c.Counters()
	if hits+misses != 16*50 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 16*50)
	}
	if evictions == 0 {
		t.Fatal("expected evictions with working set > capacity")
	}
}

// TestStmtCacheEvictUnderConcurrentQuery is the regression test for
// the eviction/close race: goroutines continuously run queries
// through statements they pinned with Get while a churn goroutine
// forces evictions of those same entries. A pinned statement must
// keep executing until its release; -race verifies the Close
// handoff is properly synchronized.
func TestStmtCacheEvictUnderConcurrentQuery(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(1) // every distinct text evicts the previous one
	texts := make([]string, 4)
	for i := range texts {
		texts[i] = fmt.Sprintf("SELECT p# FROM parts WHERE color = 'r%d'", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				st, release, _, err := c.Get(db, texts[(g+j)%len(texts)])
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				// By the time we run it, other goroutines have very
				// likely evicted the entry; the pin must keep it alive.
				rows, err := st.Query(context.Background())
				if err != nil {
					t.Errorf("pinned statement failed to run: %v", err)
					release()
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					t.Errorf("stream error: %v", err)
				}
				rows.Close()
				release()
			}
		}(g)
	}
	wg.Wait()
	if _, _, evictions := c.Counters(); evictions == 0 {
		t.Fatal("fixture produced no evictions — the race went untested")
	}
}
