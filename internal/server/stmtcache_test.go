package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"divlaws"
)

func cacheDB() *divlaws.DB {
	db := divlaws.Open()
	db.MustRegister("parts", divlaws.MustNewRelation(
		[]string{"p#", "color"},
		[][]any{{"p1", "red"}, {"p2", "blue"}}))
	return db
}

func TestStmtCacheHitMiss(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(4)
	const q = "SELECT p# FROM parts"
	st1, hit, err := c.Get(db, q)
	if err != nil || hit {
		t.Fatalf("first Get = (hit=%t, %v), want miss", hit, err)
	}
	st2, hit, err := c.Get(db, q)
	if err != nil || !hit {
		t.Fatalf("second Get = (hit=%t, %v), want hit", hit, err)
	}
	if st1 != st2 {
		t.Fatal("hit returned a different statement")
	}
	if hits, misses, _ := c.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("counters = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestStmtCacheParseErrorNotCached(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(4)
	for i := 0; i < 2; i++ {
		if _, hit, err := c.Get(db, "SELECT FROM nothing WHERE"); err == nil || hit {
			t.Fatalf("Get #%d on bad SQL = (hit=%t, err=%v), want miss+error", i, hit, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("bad SQL cached: len = %d", c.Len())
	}
}

// TestStmtCacheLRUEviction fills the cache past capacity and checks
// that the least recently used entry — not the most recent — is the
// one evicted.
func TestStmtCacheLRUEviction(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(2)
	qa := "SELECT p# FROM parts"
	qb := "SELECT color FROM parts"
	qc := "SELECT p#, color FROM parts"
	c.Get(db, qa)
	c.Get(db, qb)
	c.Get(db, qa) // refresh qa: qb is now LRU
	c.Get(db, qc) // evicts qb
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, hit, _ := c.Get(db, qa); !hit {
		t.Error("qa evicted despite being recently used")
	}
	if _, hit, _ := c.Get(db, qc); !hit {
		t.Error("qc evicted despite being newest")
	}
	if _, hit, _ := c.Get(db, qb); hit {
		t.Error("qb not evicted despite being LRU")
	}
	if _, _, evictions := c.Counters(); evictions != 2 {
		// qc's insert evicted qb; qb's re-insert evicted qa or qc.
		t.Fatalf("evictions = %d, want 2", evictions)
	}
}

// TestStmtCacheEvictedStmtStillRuns pins the no-Close eviction
// policy: a request that got its statement just before eviction must
// still be able to execute it.
func TestStmtCacheEvictedStmtStillRuns(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(1)
	st, _, err := c.Get(db, "SELECT p# FROM parts")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(db, "SELECT color FROM parts"); err != nil {
		t.Fatal(err)
	}
	if _, _, evictions := c.Counters(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	rows, err := st.Query(context.Background())
	if err != nil {
		t.Fatalf("evicted statement no longer runs: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 2 {
		t.Fatalf("evicted statement streamed %d rows, want 2", n)
	}
}

func TestStmtCacheDisabled(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(0)
	for i := 0; i < 3; i++ {
		if _, hit, err := c.Get(db, "SELECT p# FROM parts"); err != nil || hit {
			t.Fatalf("disabled cache Get = (hit=%t, %v), want fresh miss", hit, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}

// TestStmtCacheConcurrent hammers hits, misses, and evictions from
// many goroutines under -race; every Get must return a runnable
// statement for its own text.
func TestStmtCacheConcurrent(t *testing.T) {
	db := cacheDB()
	c := NewStmtCache(4) // smaller than the working set: constant eviction
	texts := make([]string, 8)
	for i := range texts {
		texts[i] = fmt.Sprintf("SELECT p# FROM parts WHERE color = 'c%d'", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				text := texts[(g+j)%len(texts)]
				st, _, err := c.Get(db, text)
				if err != nil {
					t.Errorf("Get(%q): %v", text, err)
					return
				}
				if st.Text() != text {
					t.Errorf("Get(%q) returned statement for %q", text, st.Text())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
	hits, misses, evictions := c.Counters()
	if hits+misses != 16*50 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 16*50)
	}
	if evictions == 0 {
		t.Fatal("expected evictions with working set > capacity")
	}
}
