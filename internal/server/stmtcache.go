package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"divlaws"
)

// StmtCache is the server-side prepared-statement cache: a bounded,
// LRU-evicted map from query text to *divlaws.Stmt. Repeated queries
// — the common shape of a server workload, where many clients send
// the same parameterized text with different arguments — skip the
// parse entirely.
//
// Eviction is reference-counted: each Get pins the statement until
// its release func is called, so an in-flight request that obtained
// the statement just before eviction can still run it. The evicted
// statement is Closed exactly once — immediately when idle, otherwise
// by the last release to drain.
type StmtCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	text string
	stmt *divlaws.Stmt
	// refs counts Gets not yet released; guarded by StmtCache.mu.
	refs int
	// evicted marks an entry dropped from the LRU whose statement
	// close is deferred to the last release; guarded by StmtCache.mu.
	evicted bool
}

// NewStmtCache builds a cache holding at most capacity statements.
// capacity < 1 disables caching: every Get prepares fresh.
func NewStmtCache(capacity int) *StmtCache {
	return &StmtCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached statement for text, preparing and inserting
// it on a miss. The caller must call release exactly once when it is
// done executing the statement: release unpins the entry so a
// concurrent eviction can Close it once the last in-flight query
// drains. The hit return reports which path was taken. Get is safe
// for concurrent use; a race between two misses on the same text
// costs a redundant parse, never a wrong result (the second insert
// finds the first and reuses it).
func (c *StmtCache) Get(db *divlaws.DB, text string) (stmt *divlaws.Stmt, release func(), hit bool, err error) {
	if c.cap < 1 {
		c.misses.Add(1)
		st, err := db.Prepare(text)
		if err != nil {
			return nil, nil, false, err
		}
		// Uncached: the caller is the only holder, so release closes.
		return st, func() { st.Close() }, false, nil
	}
	c.mu.Lock()
	if el, ok := c.entries[text]; ok {
		e := el.Value.(*cacheEntry)
		c.lru.MoveToFront(el)
		e.refs++
		c.mu.Unlock()
		c.hits.Add(1)
		return e.stmt, func() { c.release(e) }, true, nil
	}
	c.mu.Unlock()

	// Parse outside the lock so a slow parse never serializes the
	// hit path of other queries.
	c.misses.Add(1)
	st, err := db.Prepare(text)
	if err != nil {
		return nil, nil, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[text]; ok {
		// A concurrent miss beat us to the insert; reuse its entry and
		// drop ours (it holds nothing an eviction would need to free).
		e := el.Value.(*cacheEntry)
		c.lru.MoveToFront(el)
		e.refs++
		st.Close()
		return e.stmt, func() { c.release(e) }, false, nil
	}
	e := &cacheEntry{text: text, stmt: st, refs: 1}
	c.entries[text] = c.lru.PushFront(e)
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		old := oldest.Value.(*cacheEntry)
		delete(c.entries, old.text)
		old.evicted = true
		if old.refs == 0 {
			old.stmt.Close()
		}
		c.evictions.Add(1)
	}
	return e.stmt, func() { c.release(e) }, false, nil
}

// release unpins one Get. The last release of an evicted entry closes
// its statement; entries still cached stay open for the next hit.
func (c *StmtCache) release(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	closeNow := e.evicted && e.refs == 0
	c.mu.Unlock()
	if closeNow {
		e.stmt.Close()
	}
}

// Len returns the number of cached statements.
func (c *StmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Cap returns the cache's capacity.
func (c *StmtCache) Cap() int { return c.cap }

// Counters returns lifetime hit, miss, and eviction totals.
func (c *StmtCache) Counters() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
