package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"divlaws"
)

// StmtCache is the server-side prepared-statement cache: a bounded,
// LRU-evicted map from query text to *divlaws.Stmt. Repeated queries
// — the common shape of a server workload, where many clients send
// the same parameterized text with different arguments — skip the
// parse entirely.
//
// Evicted statements are simply dropped, never Closed: a Stmt holds
// no resources beyond its parsed AST, and an in-flight request that
// obtained the statement just before eviction must still be able to
// run it. The garbage collector reclaims the AST once the last
// reference is gone.
type StmtCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	text string
	stmt *divlaws.Stmt
}

// NewStmtCache builds a cache holding at most capacity statements.
// capacity < 1 disables caching: every Get prepares fresh.
func NewStmtCache(capacity int) *StmtCache {
	return &StmtCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached statement for text, preparing and inserting
// it on a miss. The hit return reports which path was taken. Get is
// safe for concurrent use; a race between two misses on the same
// text costs a redundant parse, never a wrong result (the second
// insert finds the first and reuses it).
func (c *StmtCache) Get(db *divlaws.DB, text string) (stmt *divlaws.Stmt, hit bool, err error) {
	if c.cap < 1 {
		c.misses.Add(1)
		st, err := db.Prepare(text)
		return st, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[text]; ok {
		c.lru.MoveToFront(el)
		st := el.Value.(*cacheEntry).stmt
		c.mu.Unlock()
		c.hits.Add(1)
		return st, true, nil
	}
	c.mu.Unlock()

	// Parse outside the lock so a slow parse never serializes the
	// hit path of other queries.
	c.misses.Add(1)
	st, err := db.Prepare(text)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[text]; ok {
		// A concurrent miss beat us to the insert; reuse its entry.
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).stmt, false, nil
	}
	c.entries[text] = c.lru.PushFront(&cacheEntry{text: text, stmt: st})
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).text)
		c.evictions.Add(1)
	}
	return st, false, nil
}

// Len returns the number of cached statements.
func (c *StmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Cap returns the cache's capacity.
func (c *StmtCache) Cap() int { return c.cap }

// Counters returns lifetime hit, miss, and eviction totals.
func (c *StmtCache) Counters() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
