package parallel

import (
	"testing"

	"divlaws/internal/datagen"
	"divlaws/internal/division"
	"divlaws/internal/relation"
	"divlaws/internal/schema"
	"divlaws/internal/value"
)

func TestParallelDivideEmptyDividend(t *testing.T) {
	r1 := relation.New(schema.New("a", "b"))
	r2 := relation.New(schema.New("b"))
	r2.Insert(relation.Tuple{value.Int(1)})
	for _, workers := range []int{1, 4} {
		got := Divide(r1, r2, workers)
		if !got.Equal(division.Divide(r1, r2)) {
			t.Errorf("workers=%d: empty dividend diverged from sequential", workers)
		}
		if !got.Empty() {
			t.Errorf("workers=%d: empty dividend produced %d rows", workers, got.Len())
		}
	}
}

func TestParallelDivideEmptyDivisor(t *testing.T) {
	r1 := relation.New(schema.New("a", "b"))
	for i := int64(0); i < 20; i++ {
		r1.Insert(relation.Tuple{value.Int(i % 5), value.Int(i)})
	}
	r2 := relation.New(schema.New("b"))
	for _, workers := range []int{1, 4} {
		got := Divide(r1, r2, workers)
		want := division.Divide(r1, r2)
		if !got.Equal(want) {
			t.Errorf("workers=%d: empty divisor diverged (%d vs %d rows)", workers, got.Len(), want.Len())
		}
	}
}

func TestParallelGreatDivideEmptyInputs(t *testing.T) {
	empty1 := relation.New(schema.New("a", "b"))
	empty2 := relation.New(schema.New("b", "c"))
	full1 := relation.New(schema.New("a", "b"))
	full2 := relation.New(schema.New("b", "c"))
	for i := int64(0); i < 16; i++ {
		full1.Insert(relation.Tuple{value.Int(i % 4), value.Int(i % 3)})
		full2.Insert(relation.Tuple{value.Int(i % 3), value.Int(i % 2)})
	}
	cases := []struct {
		name   string
		r1, r2 *relation.Relation
	}{
		{"empty-dividend", empty1, full2},
		{"empty-divisor", full1, empty2},
		{"both-empty", empty1, empty2},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			got := GreatDivide(tc.r1, tc.r2, workers)
			want := division.GreatDivide(tc.r1, tc.r2)
			if !got.EquivalentTo(want) {
				t.Errorf("%s workers=%d: diverged (%d vs %d rows)", tc.name, workers, got.Len(), want.Len())
			}
		}
	}
}

// TestWorkersExceedPartitions asks for far more workers than the
// dividend has distinct quotient values (and the divisor has
// groups); the partitioners must cap gracefully and results must
// still match the sequential reference.
func TestWorkersExceedPartitions(t *testing.T) {
	r1 := relation.New(schema.New("a", "b"))
	for i := int64(0); i < 12; i++ {
		r1.Insert(relation.Tuple{value.Int(i % 2), value.Int(i)}) // 2 quotient values
	}
	r2 := relation.New(schema.New("b"))
	r2.Insert(relation.Tuple{value.Int(1)})
	r2.Insert(relation.Tuple{value.Int(3)})

	if got := Divide(r1, r2, 16); !got.Equal(division.Divide(r1, r2)) {
		t.Error("workers=16 over 2 quotient groups diverged")
	}
	if parts := PartitionDividend(r1, r2, 16); len(parts) > 2 {
		t.Errorf("PartitionDividend produced %d partitions for 2 quotient values", len(parts))
	}

	g1, g2 := datagen.GreatDividePair{
		Groups: 40, GroupSize: 4,
		DivisorGroups: 3, DivisorGroupSize: 3,
		Domain: 30, HitRate: 0.4, Seed: 4,
	}.Generate()
	if got := GreatDivide(g1, g2, 32); !got.EquivalentTo(division.GreatDivide(g1, g2)) {
		t.Error("great divide with workers=32 over 3 divisor groups diverged")
	}
}

// TestWorkerOneEquivalence pins the contract that workers=1 is
// exactly the sequential algorithm, per registered algorithm.
func TestWorkerOneEquivalence(t *testing.T) {
	r1, r2 := datagen.DividePair{
		Groups: 120, GroupSize: 5, DivisorSize: 5,
		Domain: 40, HitRate: 0.3, Seed: 6,
	}.Generate()
	for _, algo := range division.Algorithms() {
		if !DivideWith(algo, r1, r2, 1).Equal(division.DivideWith(algo, r1, r2)) {
			t.Errorf("%s: workers=1 diverged from sequential", algo)
		}
	}
	g1, g2 := datagen.GreatDividePair{
		Groups: 80, GroupSize: 5,
		DivisorGroups: 8, DivisorGroupSize: 4,
		Domain: 40, HitRate: 0.3, Seed: 6,
	}.Generate()
	for _, algo := range division.GreatAlgorithms() {
		if !GreatDivideWith(algo, g1, g2, 1).EquivalentTo(division.GreatDivideWith(algo, g1, g2)) {
			t.Errorf("great %s: workers=1 diverged from sequential", algo)
		}
	}
}
